package route

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"disksig/internal/core"
	"disksig/internal/fleet"
	"disksig/internal/monitor"
	"disksig/internal/regression"
	"disksig/internal/server"
	"disksig/internal/smart"
	"disksig/internal/wire"
)

// rampPredictor scores records by their RRER value directly, the same
// idiom the fleet and server tests use.
type rampPredictor struct{}

func (rampPredictor) Predict(x []float64) float64 { return x[smart.RRER] }

// The handoff plane ships states as gob bootstrap images, so the test
// predictor must be registered like any real model's would be.
func init() { gob.Register(rampPredictor{}) }

func testStore(t testing.TB) *fleet.Store {
	t.Helper()
	norm := smart.NewNormalizer()
	var lo, hi smart.Values
	for a := range lo {
		lo[a] = -1
		hi[a] = 1
	}
	norm.Observe(lo)
	norm.Observe(hi)
	models := []monitor.GroupModel{{
		Group:     1,
		Type:      core.Logical,
		Form:      regression.FormQuadratic,
		WindowD:   12,
		Predictor: rampPredictor{},
	}}
	s, err := fleet.New(models, norm, fleet.Config{Shards: 2, Monitor: monitor.Config{Smoothing: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// testNode is one in-process cluster node: a real internal/server over
// a real store, on a loopback httptest listener.
type testNode struct {
	id    string
	store *fleet.Store
	ts    *httptest.Server
}

func startCluster(t *testing.T, n int) ([]testNode, *Map) {
	t.Helper()
	nodes := make([]testNode, n)
	mapNodes := make([]Node, n)
	for i := range nodes {
		store := testStore(t)
		srv := server.New(store, server.Config{})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		id := fmt.Sprintf("node-%d", i)
		nodes[i] = testNode{id: id, store: store, ts: ts}
		mapNodes[i] = Node{ID: id, URL: ts.URL}
	}
	m, err := NewMap(1, mapNodes)
	if err != nil {
		t.Fatal(err)
	}
	return nodes, m
}

func startRouter(t *testing.T, m *Map, mut func(*Config)) (*Router, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Map:          m,
		ProbeEvery:   50 * time.Millisecond,
		MaxRetryWait: 10 * time.Millisecond,
		GateWait:     5 * time.Second,
		DualWriteMax: 30 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

// testObs builds one observation with the score in the RRER slot.
func testObs(serial string, hour int, score float64) fleet.Observation {
	var v smart.Values
	v[smart.RRER] = score
	return fleet.Observation{Serial: serial, Record: smart.Record{Hour: hour, Values: v}}
}

func jsonBody(t *testing.T, obs []fleet.Observation) []byte {
	t.Helper()
	type rec struct {
		Serial string    `json:"serial"`
		Hour   int       `json:"hour"`
		Values []float64 `json:"values"`
	}
	rs := make([]rec, len(obs))
	for i, o := range obs {
		rs[i] = rec{Serial: o.Serial, Hour: o.Record.Hour, Values: o.Record.Values[:]}
	}
	body, err := json.Marshal(map[string]any{"records": rs})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postIngest(t *testing.T, url, ct string, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest", ct, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, doc
}

func clusterObs(n int, hour int) []fleet.Observation {
	obs := make([]fleet.Observation, n)
	for i := range obs {
		obs[i] = testObs(fmt.Sprintf("rt-%04d", i), hour, 0.5)
	}
	return obs
}

// checkAck asserts the merged ack balances: ingested == sent ==
// kept + quarantined.
func checkAck(t *testing.T, doc map[string]any, sent, kept int) {
	t.Helper()
	if int(doc["ingested"].(float64)) != sent {
		t.Fatalf("ingested = %v, want %d (doc %v)", doc["ingested"], sent, doc)
	}
	if int(doc["kept"].(float64)) != kept {
		t.Fatalf("kept = %v, want %d (doc %v)", doc["kept"], kept, doc)
	}
	if int(doc["quarantined"].(float64)) != sent-kept {
		t.Fatalf("quarantined = %v, want %d", doc["quarantined"], sent-kept)
	}
}

func TestRouterSplitsIngestAcrossOwners(t *testing.T) {
	for _, tc := range []struct {
		name string
		ct   string
		body func(*testing.T, []fleet.Observation) []byte
	}{
		{"json", "application/json", jsonBody},
		{"binary", wire.ContentType, func(t *testing.T, obs []fleet.Observation) []byte {
			return wire.EncodeBatch(obs)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nodes, m := startCluster(t, 3)
			_, ts := startRouter(t, m, nil)

			obs := clusterObs(60, 0)
			code, doc := postIngest(t, ts.URL, tc.ct, tc.body(t, obs))
			if code != http.StatusOK {
				t.Fatalf("ingest status %d: %v", code, doc)
			}
			checkAck(t, doc, 60, 60)

			// Every record landed on exactly the node the map owns it to.
			total := 0
			for i, n := range nodes {
				got := n.store.Summary(0).Drives
				want := 0
				for _, o := range obs {
					if m.OwnerID(o.Serial) == n.id {
						want++
					}
				}
				if got != want {
					t.Fatalf("node %d holds %d drives, map assigns %d", i, got, want)
				}
				total += got
			}
			if total != 60 {
				t.Fatalf("cluster holds %d drives, want 60", total)
			}

			// Reads route to the owner through the router.
			for _, o := range obs[:10] {
				resp, err := http.Get(ts.URL + "/v1/drives/" + o.Serial)
				if err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("drive %s status %d via router", o.Serial, resp.StatusCode)
				}
				resp.Body.Close()
			}
		})
	}
}

// A record the store quarantines (non-finite score) must still balance
// in the merged ack, and the defect must surface in the merged ledger.
func TestRouterMergesQuarantineAccounting(t *testing.T) {
	_, m := startCluster(t, 3)
	_, ts := startRouter(t, m, nil)

	obs := clusterObs(12, 0)
	body := jsonBody(t, obs)
	// Null out one record's values: missing-at-source, NaN on the node,
	// store-side quarantine.
	var req struct {
		Records []map[string]any `json:"records"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	req.Records[3]["values"] = nil
	mut, _ := json.Marshal(map[string]any{"records": req.Records})

	code, doc := postIngest(t, ts.URL, "application/json", mut)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, doc)
	}
	checkAck(t, doc, 12, 12-1)
	q := doc["quality"].(map[string]any)
	if int(q["rows_read"].(float64)) != 12 || int(q["rows_quarantined"].(float64)) != 1 {
		t.Fatalf("merged ledger %v, want 12 read / 1 quarantined", q)
	}
}

// A body the router cannot parse goes to a node verbatim, which answers
// the canonical 400; unsupported content types are rejected at the
// router with the nodes' message shape.
func TestRouterIngestErrorContract(t *testing.T) {
	_, m := startCluster(t, 2)
	_, ts := startRouter(t, m, nil)

	code, doc := postIngest(t, ts.URL, "application/json", []byte(`{"records": [`))
	if code != http.StatusBadRequest || doc["quality"] == nil {
		t.Fatalf("truncated JSON: status %d doc %v, want node-shaped 400", code, doc)
	}

	code, doc = postIngest(t, ts.URL, "text/csv", []byte("a,b\n"))
	if code != http.StatusUnsupportedMediaType {
		t.Fatalf("csv status %d: %v", code, doc)
	}

	// A torn binary frame is the router's own 400: it cannot split what
	// it cannot checksum, and no node should see any part of it.
	frame := wire.EncodeBatch(clusterObs(4, 0))
	code, doc = postIngest(t, ts.URL, wire.ContentType, frame[:len(frame)-3])
	if code != http.StatusBadRequest || doc["quality"] == nil {
		t.Fatalf("torn frame: status %d doc %v", code, doc)
	}
}

func TestRouterSummaryMerge(t *testing.T) {
	_, m := startCluster(t, 3)
	_, ts := startRouter(t, m, nil)

	obs := clusterObs(30, 0)
	// Push one drive to an alerting score so at_risk is non-empty.
	obs = append(obs, testObs("rt-risky", 4, 0.99))
	code, doc := postIngest(t, ts.URL, "application/json", jsonBody(t, obs))
	if code != http.StatusOK {
		t.Fatalf("ingest status %d: %v", code, doc)
	}

	resp, err := http.Get(ts.URL + "/v1/fleet/summary?top=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sum map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if int(sum["drives"].(float64)) != 31 {
		t.Fatalf("merged drives = %v, want 31", sum["drives"])
	}
	if int(sum["max_hour"].(float64)) != 4 {
		t.Fatalf("merged max_hour = %v, want 4", sum["max_hour"])
	}
	if nodes := sum["nodes"].([]any); len(nodes) != 3 {
		t.Fatalf("summary lists %d nodes, want 3", len(nodes))
	}
	q := sum["quality"].(map[string]any)
	if int(q["rows_read"].(float64)) != 31 {
		t.Fatalf("merged summary ledger reads %v rows, want 31", q["rows_read"])
	}
}

func TestRouterMetricsAndHealth(t *testing.T) {
	nodes, m := startCluster(t, 2)
	rt, ts := startRouter(t, m, nil)

	code, _ := postIngest(t, ts.URL, "application/json", jsonBody(t, clusterObs(8, 0)))
	if code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	router := doc["router"].(map[string]any)
	if int(router["records_routed"].(float64)) != 8 {
		t.Fatalf("records_routed = %v, want 8", router["records_routed"])
	}
	if len(doc["nodes"].(map[string]any)) != 2 {
		t.Fatalf("metrics cover %v nodes, want 2", doc["nodes"])
	}

	rt.ForceProbe()
	resp, err = http.Get(ts.URL + "/healthz/ready")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready status %d with all nodes up", resp.StatusCode)
	}

	// Kill a node: the cluster is degraded and says so.
	nodes[0].ts.Close()
	rt.ForceProbe()
	resp, err = http.Get(ts.URL + "/healthz/ready")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ready status %d with a node down, want 503", resp.StatusCode)
	}
}

// TestRebalanceJoin walks the full live handoff: a populated 3-node
// cluster absorbs a fourth node, every moved serial keeps answering
// through the router, lands intact on its new owner, and is gone from
// its old one.
func TestRebalanceJoin(t *testing.T) {
	nodes, m := startCluster(t, 3)
	rt, ts := startRouter(t, m, nil)

	obs := clusterObs(80, 0)
	for hour := 0; hour < 3; hour++ {
		code, doc := postIngest(t, ts.URL, wire.ContentType, wire.EncodeBatch(clusterObs(80, hour)))
		if code != http.StatusOK {
			t.Fatalf("hour %d ingest status %d: %v", hour, code, doc)
		}
	}

	// Join node-3.
	joiner := testStore(t)
	jts := httptest.NewServer(server.New(joiner, server.Config{}).Handler())
	t.Cleanup(jts.Close)
	next, err := NewMap(2, append(append([]Node{}, m.Nodes...), Node{ID: "node-3", URL: jts.URL}))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := rt.Rebalance(context.Background(), next)
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if stats.Moved == 0 || stats.Transfers == 0 {
		t.Fatalf("rebalance stats %+v, want movement", stats)
	}
	if rt.Epoch() != 2 {
		t.Fatalf("epoch %d after rebalance, want 2", rt.Epoch())
	}

	// Every serial answers through the router with its full history.
	moved := 0
	for _, o := range obs {
		resp, err := http.Get(ts.URL + "/v1/drives/" + o.Serial)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("drive %s status %d after rebalance: %v", o.Serial, resp.StatusCode, doc)
		}
		if doc["last_hour"].(float64) != 2 {
			t.Fatalf("drive %s last_hour %v after rebalance, want 2", o.Serial, doc["last_hour"])
		}
		if next.OwnerID(o.Serial) == "node-3" {
			moved++
		}
	}
	if got := joiner.Summary(0).Drives; got != moved {
		t.Fatalf("joiner holds %d drives, map assigns %d", got, moved)
	}
	// Old owners no longer answer for moved serials.
	for _, o := range obs {
		if next.OwnerID(o.Serial) != "node-3" {
			continue
		}
		old := m.OwnerIndex([]byte(o.Serial))
		resp, err := http.Get(nodes[old].ts.URL + "/v1/drives/" + o.Serial)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("moved drive %s still answers %d on its old owner", o.Serial, resp.StatusCode)
		}
	}

	// Post-cutover ingest routes by the new map.
	code, doc := postIngest(t, ts.URL, wire.ContentType, wire.EncodeBatch(clusterObs(80, 3)))
	if code != http.StatusOK {
		t.Fatalf("post-rebalance ingest status %d: %v", code, doc)
	}
	checkAck(t, doc, 80, 80)
}

func TestRebalanceRejectsStaleEpoch(t *testing.T) {
	_, m := startCluster(t, 2)
	rt, ts := startRouter(t, m, nil)

	stale := &Map{Epoch: 1, Nodes: m.Nodes}
	if _, err := rt.Rebalance(context.Background(), stale); err == nil {
		t.Fatal("rebalance accepted a non-advancing epoch")
	}

	// The HTTP surface maps validation failures to 400.
	body, _ := json.Marshal(stale)
	resp, err := http.Post(ts.URL+"/v1/cluster/rebalance", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stale rebalance status %d, want 400", resp.StatusCode)
	}
}

// TestRebalanceOverHTTPWithLiveTraffic drives the cutover through the
// HTTP control plane while an ingest stream is running, and checks the
// cluster status surface on the way.
func TestRebalanceOverHTTPWithLiveTraffic(t *testing.T) {
	_, m := startCluster(t, 2)
	_, ts := startRouter(t, m, nil)

	// Seed state so the handoff has something to bulk-copy; the goroutine
	// then keeps the stream alive across the cutover.
	for hour := 0; hour < 2; hour++ {
		if code, doc := postIngest(t, ts.URL, wire.ContentType, wire.EncodeBatch(clusterObs(40, hour))); code != http.StatusOK {
			t.Fatalf("seed ingest status %d: %v", code, doc)
		}
	}

	stop := make(chan struct{})
	ingestErr := make(chan error, 1)
	go func() {
		defer close(ingestErr)
		for hour := 2; ; hour++ {
			select {
			case <-stop:
				return
			default:
			}
			code, doc := postIngestNoFatal(ts.URL, wire.ContentType, wire.EncodeBatch(clusterObs(40, hour)))
			if code != http.StatusOK {
				ingestErr <- fmt.Errorf("live ingest status %d: %v", code, doc)
				return
			}
		}
	}()

	joiner := httptest.NewServer(server.New(testStore(t), server.Config{}).Handler())
	t.Cleanup(joiner.Close)
	next, err := NewMap(2, append(append([]Node{}, m.Nodes...), Node{ID: "node-2", URL: joiner.URL}))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(next)
	resp, err := http.Post(ts.URL+"/v1/cluster/rebalance", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var stats RebalanceStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebalance status %d", resp.StatusCode)
	}
	close(stop)
	if err := <-ingestErr; err != nil {
		t.Fatal(err)
	}
	if stats.Moved == 0 {
		t.Fatalf("stats %+v, want movement", stats)
	}

	resp, err = http.Get(ts.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if int(status["epoch"].(float64)) != 2 || status["stage"] != "idle" {
		t.Fatalf("cluster status %v, want idle at epoch 2", status)
	}
}

func postIngestNoFatal(url, ct string, body []byte) (int, map[string]any) {
	resp, err := http.Post(url+"/v1/ingest", ct, bytes.NewReader(body))
	if err != nil {
		return 0, map[string]any{"error": err.Error()}
	}
	defer resp.Body.Close()
	var doc map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&doc)
	return resp.StatusCode, doc
}
