package route

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// NodeHealth is one node's probed state: which of its URLs answers
// ready, what role it claims, and how far behind it says it is.
type NodeHealth struct {
	ID string `json:"id"`
	// Active is the base URL the router currently forwards to: the
	// node's primary URL, or a ready follower when the primary is down.
	Active string `json:"active"`
	// Ready is whether Active answered /healthz/ready with 200.
	Ready bool   `json:"ready"`
	Role  string `json:"role,omitempty"`
	// LagMs and ReadyLagMs echo a follower's reported replication lag
	// and the gate it is judged against.
	LagMs      float64 `json:"lag_ms,omitempty"`
	ReadyLagMs float64 `json:"ready_lag_ms,omitempty"`
	LastError  string  `json:"last_error,omitempty"`
}

// prober tracks per-node health by polling every candidate URL's
// /healthz/ready. It prefers a URL that is both ready and writable
// (role primary or standalone) — during a pair's failover the deposed
// primary stops being ready and the promoted follower takes over as the
// node's active URL — falling back to any ready URL, then to the
// configured primary.
type prober struct {
	client *http.Client
	every  time.Duration

	mu    sync.Mutex
	nodes map[string]Node       // by node ID; the URL candidates
	state map[string]NodeHealth // by node ID; latest probe result

	stop chan struct{}
	done chan struct{}
}

func newProber(client *http.Client, every time.Duration) *prober {
	if every <= 0 {
		every = 500 * time.Millisecond
	}
	return &prober{
		client: client,
		every:  every,
		nodes:  map[string]Node{},
		state:  map[string]NodeHealth{},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// setNodes replaces the probed node set (the union of the current and
// next maps during a migration). Unknown nodes start pessimistic —
// Ready: false, so they are not forwarding targets — and are probed
// synchronously before setNodes returns: a node joining mid-rebalance
// may still be bootstrapping (replaying a snapshot, warming models),
// and the old optimistic default let the router forward batches into
// its startup window. Known nodes keep their latest probe result.
func (p *prober) setNodes(nodes []Node) {
	p.mu.Lock()
	next := make(map[string]Node, len(nodes))
	var unknown []Node
	for _, n := range nodes {
		next[n.ID] = n
		if _, ok := p.state[n.ID]; !ok {
			p.state[n.ID] = NodeHealth{ID: n.ID, Active: n.URL}
			unknown = append(unknown, n)
		}
	}
	for id := range p.state {
		if _, ok := next[id]; !ok {
			delete(p.state, id)
		}
	}
	p.nodes = next
	p.mu.Unlock()
	// Probe outside the lock: a slow node must not freeze health reads.
	for _, n := range unknown {
		h := p.probeNode(n)
		p.mu.Lock()
		if _, ok := p.nodes[n.ID]; ok {
			p.state[n.ID] = h
		}
		p.mu.Unlock()
	}
}

// run polls until stop closes.
func (p *prober) run() {
	defer close(p.done)
	t := time.NewTicker(p.every)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probeAll()
		}
	}
}

func (p *prober) close() {
	close(p.stop)
	<-p.done
}

// probeAll probes every node once. Exported through ForceProbe for
// startup and tests; the loop calls it on its ticker.
func (p *prober) probeAll() {
	p.mu.Lock()
	nodes := make([]Node, 0, len(p.nodes))
	for _, n := range p.nodes {
		nodes = append(nodes, n)
	}
	p.mu.Unlock()
	for _, n := range nodes {
		h := p.probeNode(n)
		p.mu.Lock()
		if _, ok := p.nodes[n.ID]; ok {
			p.state[n.ID] = h
		}
		p.mu.Unlock()
	}
}

// readyDoc is the /healthz/ready response body of internal/server.
type readyDoc struct {
	Status     string  `json:"status"`
	Role       string  `json:"role"`
	LagMs      float64 `json:"lag_ms"`
	ReadyLagMs float64 `json:"ready_lag_ms"`
}

// probeNode tries the node's URLs in order (primary first, then
// followers) and picks the best ready one: writable beats merely-ready,
// earlier beats later.
func (p *prober) probeNode(n Node) NodeHealth {
	h := NodeHealth{ID: n.ID, Active: n.URL}
	var fallback string // first URL that was ready but not writable
	for _, u := range n.URLs() {
		doc, err := p.probeURL(u)
		if err != nil {
			if h.LastError == "" {
				h.LastError = err.Error()
			}
			continue
		}
		if doc.Role == "primary" || doc.Role == "standalone" || doc.Role == "" {
			h.Active, h.Ready, h.Role = u, true, doc.Role
			h.LagMs, h.ReadyLagMs = doc.LagMs, doc.ReadyLagMs
			h.LastError = ""
			return h
		}
		if fallback == "" {
			fallback = u
			h.Role, h.LagMs, h.ReadyLagMs = doc.Role, doc.LagMs, doc.ReadyLagMs
		}
	}
	if fallback != "" {
		h.Active, h.Ready, h.LastError = fallback, true, ""
	}
	return h
}

func (p *prober) probeURL(u string) (readyDoc, error) {
	var doc readyDoc
	resp, err := p.client.Get(u + "/healthz/ready")
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	_ = json.Unmarshal(body, &doc)
	if resp.StatusCode != http.StatusOK {
		return doc, &probeNotReady{status: resp.StatusCode}
	}
	return doc, nil
}

type probeNotReady struct{ status int }

func (e *probeNotReady) Error() string {
	return http.StatusText(e.status) + " from ready probe"
}

// health returns the latest probe result for a node ID.
func (p *prober) health(id string) (NodeHealth, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	h, ok := p.state[id]
	return h, ok
}

// activeURL returns the base URL to forward to for a node. An unknown
// node (should not happen: setNodes covers both maps) falls back to the
// map's primary URL via the caller.
func (p *prober) activeURL(n Node) string {
	if h, ok := p.health(n.ID); ok && h.Active != "" {
		return h.Active
	}
	return n.URL
}

// candidates returns the forward-order URL list for a node: the active
// URL first, then the remaining configured URLs.
func (p *prober) candidates(n Node) []string {
	active := p.activeURL(n)
	urls := make([]string, 0, 1+len(n.Followers))
	urls = append(urls, active)
	for _, u := range n.URLs() {
		if u != active {
			urls = append(urls, u)
		}
	}
	return urls
}
