package route

import (
	"fmt"
	"path/filepath"
	"testing"
)

func testNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{
			ID:  fmt.Sprintf("node-%d", i),
			URL: fmt.Sprintf("http://10.0.0.%d:8080", i+1),
		}
	}
	return nodes
}

func testSerials(n int) []string {
	serials := make([]string, n)
	for i := range serials {
		serials[i] = fmt.Sprintf("ld-%06d", i)
	}
	return serials
}

func mustMap(t *testing.T, epoch uint64, nodes []Node) *Map {
	t.Helper()
	m, err := NewMap(epoch, nodes)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	return m
}

// Placement must be a pure function of (map, serial): two independently
// constructed maps with the same nodes assign every serial identically,
// and the string and byte entry points agree.
func TestOwnerDeterministic(t *testing.T) {
	a := mustMap(t, 1, testNodes(5))
	b := mustMap(t, 99, testNodes(5)) // epoch must not affect placement
	for _, s := range testSerials(1000) {
		ia, ib := a.OwnerIndex([]byte(s)), b.OwnerIndex([]byte(s))
		if ia != ib {
			t.Fatalf("serial %s: owner %d under epoch 1, %d under epoch 99", s, ia, ib)
		}
		if got := a.Owner(s).ID; got != a.Nodes[ia].ID {
			t.Fatalf("serial %s: Owner %s != OwnerIndex %s", s, got, a.Nodes[ia].ID)
		}
	}
}

// 1k serials over 5 equal-weight nodes must land within ±10% of the
// 200-per-node ideal. The workload is deterministic, so this pins the
// concrete hash quality rather than sampling it.
func TestBalanceWithinTenPercent(t *testing.T) {
	m := mustMap(t, 1, testNodes(5))
	counts := make([]int, len(m.Nodes))
	for _, s := range testSerials(1000) {
		counts[m.OwnerIndex([]byte(s))]++
	}
	for i, c := range counts {
		if c < 180 || c > 220 {
			t.Errorf("node %s owns %d serials, outside [180, 220] (counts %v)", m.Nodes[i].ID, c, counts)
		}
	}
}

// Adding a node must move only serials that the new node wins — nothing
// reshuffles between surviving nodes — and roughly 1/N of the keyspace.
func TestMinimalMovementOnJoin(t *testing.T) {
	const nSerials = 1000
	old := mustMap(t, 1, testNodes(5))
	next := mustMap(t, 2, testNodes(6)) // adds node-5
	moves := Diff(old, next, testSerials(nSerials))
	if len(moves) == 0 {
		t.Fatal("no serials moved on join")
	}
	for _, mv := range moves {
		if mv.To != "node-5" {
			t.Fatalf("join moved %s from %s to %s; only moves to the new node are allowed", mv.Serial, mv.From, mv.To)
		}
	}
	expected := nSerials / 6
	if len(moves) < expected/2 || len(moves) > expected*2 {
		t.Errorf("join moved %d serials, want ~1/N = %d", len(moves), expected)
	}
}

// Removing a node must move only the serials it owned.
func TestMinimalMovementOnLeave(t *testing.T) {
	const nSerials = 1000
	old := mustMap(t, 1, testNodes(5))
	nodes := testNodes(5)
	shrunk := append(nodes[:2:2], nodes[3:]...) // drop node-2
	next := mustMap(t, 2, shrunk)

	owned := 0
	serials := testSerials(nSerials)
	for _, s := range serials {
		if old.OwnerID(s) == "node-2" {
			owned++
		}
	}
	moves := Diff(old, next, serials)
	if len(moves) != owned {
		t.Fatalf("leave moved %d serials, but node-2 owned %d", len(moves), owned)
	}
	for _, mv := range moves {
		if mv.From != "node-2" {
			t.Fatalf("leave moved %s from %s; only the removed node's serials may move", mv.Serial, mv.From)
		}
	}
	expected := nSerials / 5
	if owned < expected/2 || owned > expected*2 {
		t.Errorf("removed node owned %d serials, want ~1/N = %d", owned, expected)
	}
}

// A node with weight 2 should own about twice the share of an
// equal-weight peer.
func TestWeightedPlacement(t *testing.T) {
	nodes := testNodes(4)
	nodes[0].Weight = 2 // shares: 2/5, 1/5, 1/5, 1/5
	m := mustMap(t, 1, nodes)
	counts := make([]int, len(nodes))
	for _, s := range testSerials(5000) {
		counts[m.OwnerIndex([]byte(s))]++
	}
	want := 5000 * 2 / 5
	if counts[0] < want*3/4 || counts[0] > want*5/4 {
		t.Errorf("weight-2 node owns %d of 5000, want ~%d (counts %v)", counts[0], want, counts)
	}
}

func TestMapValidate(t *testing.T) {
	cases := []struct {
		name  string
		nodes []Node
	}{
		{"empty", nil},
		{"blank id", []Node{{ID: "", URL: "http://x"}}},
		{"dup id", []Node{{ID: "a", URL: "http://x"}, {ID: "a", URL: "http://y"}}},
		{"blank url", []Node{{ID: "a", URL: ""}}},
	}
	for _, tc := range cases {
		if _, err := NewMap(1, tc.nodes); err == nil {
			t.Errorf("%s: NewMap accepted invalid nodes", tc.name)
		}
	}
	var nilMap *Map
	if err := nilMap.Validate(); err == nil {
		t.Error("nil map validated")
	}
}

func TestLoadWriteRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cluster.json")
	m := mustMap(t, 7, []Node{
		{ID: "a", URL: "http://a:1", Followers: []string{"http://a2:1"}, Weight: 2},
		{ID: "b", URL: "http://b:1"},
	})
	if err := WriteMap(path, m); err != nil {
		t.Fatalf("WriteMap: %v", err)
	}
	got, err := LoadMap(path)
	if err != nil {
		t.Fatalf("LoadMap: %v", err)
	}
	if got.Epoch != 7 || len(got.Nodes) != 2 || got.Nodes[0].Weight != 2 ||
		len(got.Nodes[0].Followers) != 1 || got.Nodes[0].Followers[0] != "http://a2:1" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := LoadMap(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadMap accepted a missing file")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := WriteMap(bad, &Map{Epoch: 1}); err == nil {
		t.Error("WriteMap accepted an invalid map")
	}
}

func TestGroupMoves(t *testing.T) {
	moves := []Move{
		{Serial: "s3", From: "a", To: "b"},
		{Serial: "s1", From: "a", To: "b"},
		{Serial: "s2", From: "c", To: "b"},
	}
	got := GroupMoves(moves)
	if len(got) != 2 {
		t.Fatalf("got %d transfers, want 2", len(got))
	}
	if got[0].From != "a" || got[0].To != "b" || len(got[0].Serials) != 2 || got[0].Serials[0] != "s1" {
		t.Fatalf("transfer 0 wrong: %+v", got[0])
	}
	if got[1].From != "c" || len(got[1].Serials) != 1 {
		t.Fatalf("transfer 1 wrong: %+v", got[1])
	}
}

func TestNodeURLs(t *testing.T) {
	n := Node{ID: "a", URL: "http://p", Followers: []string{"http://f1", "http://f2"}}
	urls := n.URLs()
	if len(urls) != 3 || urls[0] != "http://p" || urls[2] != "http://f2" {
		t.Fatalf("URLs: %v", urls)
	}
}
