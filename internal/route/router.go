package route

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"disksig/internal/quality"
	"disksig/internal/wire"
)

// Config tunes a Router.
type Config struct {
	// Map is the initial cluster map. Required.
	Map *Map
	// Client issues all node-bound requests. Defaults to a client with a
	// 30s timeout.
	Client *http.Client
	// ProbeEvery is the per-node health poll interval (default 500ms).
	ProbeEvery time.Duration
	// ForwardAttempts bounds retries per forwarded sub-request across a
	// node's candidate URLs (default 12).
	ForwardAttempts int
	// MaxRetryWait caps the between-attempt backoff (default 250ms).
	MaxRetryWait time.Duration
	// GateWait bounds how long an ingest batch touching moving serials
	// waits at the copy gate before being told to retry (default 30s).
	GateWait time.Duration
	// DualWriteMin is how many dual-written records the cutover dwell
	// waits for before flipping the map epoch (default 1).
	DualWriteMin int
	// DualWriteMax caps the cutover dwell (default 3s).
	DualWriteMax time.Duration
	// MaxBodyBytes caps ingest request bodies (default 8 MiB).
	MaxBodyBytes int64
	// SummaryTopN is the merged summary's at-risk list length when the
	// client does not pass ?top= (default 10).
	SummaryTopN int
	Log         *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 500 * time.Millisecond
	}
	if c.ForwardAttempts <= 0 {
		c.ForwardAttempts = 12
	}
	if c.MaxRetryWait <= 0 {
		c.MaxRetryWait = 250 * time.Millisecond
	}
	if c.GateWait <= 0 {
		c.GateWait = 30 * time.Second
	}
	if c.DualWriteMin <= 0 {
		c.DualWriteMin = 1
	}
	if c.DualWriteMax <= 0 {
		c.DualWriteMax = 3 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.SummaryTopN <= 0 {
		c.SummaryTopN = 10
	}
	return c
}

// stage is where the router is in a map migration.
type stage int

const (
	// stageIdle routes everything by the current map.
	stageIdle stage = iota
	// stageCopy freezes moving serials: ingest batches touching them
	// wait (bounded) for the bulk copy to finish. Everything else flows.
	stageCopy
	// stageDual writes moving records to both the old and new owner;
	// acks and alerts come from the old owner, which still serves reads.
	stageDual
)

func (s stage) String() string {
	switch s {
	case stageCopy:
		return "copy"
	case stageDual:
		return "dual-write"
	default:
		return "idle"
	}
}

// routeState is the snapshot handlers work against. cur is always set;
// next is non-nil only mid-migration, and copyDone closes when the bulk
// copy commits (the copy→dual transition).
type routeState struct {
	cur      *Map
	next     *Map
	stage    stage
	copyDone chan struct{}
}

// moving reports whether a serial changes owner between cur and next.
func (s routeState) moving(serial []byte) bool {
	if s.next == nil {
		return false
	}
	return s.cur.Nodes[s.cur.OwnerIndex(serial)].ID != s.next.Nodes[s.next.OwnerIndex(serial)].ID
}

type routerMetrics struct {
	ingestBatches  atomic.Int64
	recordsRouted  atomic.Int64
	dualWrites     atomic.Int64
	gatedRequests  atomic.Int64
	forwards       atomic.Int64
	forwardRetries atomic.Int64
	proxyErrors    atomic.Int64
	rebalances     atomic.Int64
}

// Router is the cluster routing tier: a thin proxy that splits ingest
// batches across the nodes owning their serials, forwards reads to the
// owning node, merges fleet-wide roll-ups, and drives live shard
// handoff when the cluster map changes.
type Router struct {
	cfg    Config
	client *http.Client
	probe  *prober
	m      routerMetrics

	mu sync.RWMutex // guards the routeState fields below
	routeState

	// rebalanceMu serializes map migrations; TryLock failure is the 409.
	rebalanceMu sync.Mutex
}

// NewRouter builds a router over a validated cluster map and starts its
// health prober. Call Close to stop probing.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.Map == nil {
		return nil, fmt.Errorf("route: router requires a cluster map")
	}
	if err := cfg.Map.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rt := &Router{cfg: cfg, client: cfg.Client}
	rt.cur = cfg.Map
	rt.probe = newProber(cfg.Client, cfg.ProbeEvery)
	rt.probe.setNodes(cfg.Map.Nodes)
	go rt.probe.run()
	return rt, nil
}

// Close stops the background prober.
func (rt *Router) Close() { rt.probe.close() }

// ForceProbe runs one synchronous health sweep; startup and tests use
// it instead of waiting out a probe interval.
func (rt *Router) ForceProbe() { rt.probe.probeAll() }

// Epoch returns the current map epoch.
func (rt *Router) Epoch() uint64 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.cur.Epoch
}

// snapshot copies the route state under RLock.
func (rt *Router) snapshot() routeState {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.routeState
}

// Handler returns the router's HTTP surface: the node API endpoints a
// client already speaks, plus the cluster control plane.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", rt.handleIngest)
	mux.HandleFunc("GET /v1/drives/{serial}", rt.handleDrive)
	mux.HandleFunc("GET /v1/fleet/summary", rt.handleSummary)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /healthz", rt.handleLive)
	mux.HandleFunc("GET /healthz/live", rt.handleLive)
	mux.HandleFunc("GET /healthz/ready", rt.handleReady)
	mux.HandleFunc("GET /v1/cluster/status", rt.handleStatus)
	mux.HandleFunc("POST /v1/cluster/rebalance", rt.handleRebalance)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	body, err := json.Marshal(doc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(body, '\n'))
}

// mediaType mirrors the node servers' Content-Type negotiation.
func mediaType(ct string) string {
	ct, _, _ = strings.Cut(ct, ";")
	return strings.ToLower(strings.TrimSpace(ct))
}

// forward sends one sub-request to a node, retrying across its
// candidate URLs on connection errors and 503s (a node mid-failover
// answers 503 from the not-yet-promoted follower). Terminal responses —
// any other status — are returned with their body read.
func (rt *Router) forward(ctx context.Context, n Node, method, path, ct string, body []byte) (*http.Response, []byte, error) {
	var lastErr error
	wait := 2 * time.Millisecond
	for attempt := 0; attempt < rt.cfg.ForwardAttempts; attempt++ {
		if attempt > 0 {
			rt.m.forwardRetries.Add(1)
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
			if wait *= 2; wait > rt.cfg.MaxRetryWait {
				wait = rt.cfg.MaxRetryWait
			}
		}
		// Candidates refresh every attempt: the prober may have moved the
		// node's active URL to a promoted follower mid-loop.
		urls := rt.probe.candidates(n)
		u := urls[attempt%len(urls)]
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, u+path, rd)
		if err != nil {
			return nil, nil, err
		}
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		rt.m.forwards.Add(1)
		resp, err := rt.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		rb, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			lastErr = fmt.Errorf("node %s answered 503: %s", n.ID, strings.TrimSpace(string(rb)))
			continue
		}
		return resp, rb, nil
	}
	return nil, nil, fmt.Errorf("node %s unreachable after %d attempts: %w", n.ID, rt.cfg.ForwardAttempts, lastErr)
}

// ingestAckDoc is the slice of a node's ingest ack the router needs to
// merge; alerts stay raw so their JSON passes through byte-identical.
type ingestAckDoc struct {
	Ingested    int               `json:"ingested"`
	Kept        int               `json:"kept"`
	Quarantined int               `json:"quarantined"`
	Alerts      []json.RawMessage `json:"alerts"`
	Quality     ledgerDoc         `json:"quality"`
}

type ledgerDoc struct {
	RowsRead        int            `json:"rows_read"`
	RowsKept        int            `json:"rows_kept"`
	RowsQuarantined int            `json:"rows_quarantined"`
	ByKind          map[string]int `json:"by_kind"`
}

func (l *ledgerDoc) add(o ledgerDoc) {
	l.RowsRead += o.RowsRead
	l.RowsKept += o.RowsKept
	l.RowsQuarantined += o.RowsQuarantined
	for k, v := range o.ByKind {
		if l.ByKind == nil {
			l.ByKind = map[string]int{}
		}
		l.ByKind[k] += v
	}
}

func ledgerDocOf(rep *quality.Report) ledgerDoc {
	byKind := map[string]int{}
	for k := range rep.ByKind {
		if rep.ByKind[k] != 0 {
			byKind[quality.Kind(k).String()] = rep.ByKind[k]
		}
	}
	return ledgerDoc{
		RowsRead:        rep.RowsRead,
		RowsKept:        rep.RowsKept(),
		RowsQuarantined: rep.RowsQuarantined,
		ByKind:          byKind,
	}
}

// splitBatch is one ingest batch split per owning node: primary bodies
// indexed by cur-map node, dual bodies (moving records only) indexed by
// next-map node, plus the router-level quarantine ledger and whether
// any record in the batch is mid-move.
type splitBatch struct {
	primary  [][]byte
	primaryN []int // record count per primary body
	dual     [][]byte
	dualN    []int
	records  int
	hasMover bool
	rep      quality.Report
}

func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := err.(*http.MaxBytesError); ok {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, map[string]any{
			"error": fmt.Sprintf("reading request body: %v", err),
		})
		return
	}
	rt.m.ingestBatches.Add(1)

	ct := mediaType(r.Header.Get("Content-Type"))
	switch ct {
	case "", "application/json":
		ct = "application/json"
	case wire.ContentType:
	default:
		writeJSON(w, http.StatusUnsupportedMediaType, map[string]any{
			"error": fmt.Sprintf("unsupported Content-Type %q (want application/json or %s)", ct, wire.ContentType),
		})
		return
	}

	deadline := time.Now().Add(rt.cfg.GateWait)
	for {
		rt.mu.RLock()
		st := rt.routeState
		sb, handled := rt.splitIngest(w, st, ct, body)
		if handled {
			rt.mu.RUnlock()
			return
		}
		if st.stage == stageCopy && sb.hasMover {
			// Copy gate: the batch touches serials whose bulk copy is in
			// flight. Wait for the copy→dual transition (re-splitting after:
			// the dual pass needs the new stage), bounded by GateWait — on
			// timeout the client is told to come back, not to go elsewhere.
			ch := st.copyDone
			rt.mu.RUnlock()
			rt.m.gatedRequests.Add(1)
			remain := time.Until(deadline)
			if remain <= 0 {
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusServiceUnavailable, map[string]any{
					"error": "shard handoff in progress; retry shortly",
				})
				return
			}
			t := time.NewTimer(remain)
			select {
			case <-ch:
				t.Stop()
				continue
			case <-t.C:
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusServiceUnavailable, map[string]any{
					"error": "shard handoff in progress; retry shortly",
				})
				return
			case <-r.Context().Done():
				t.Stop()
				return
			}
		}
		// Forward while holding the read lock: a migration's stage flips
		// take the write lock, so every in-flight forward drains before the
		// routing epoch changes — no batch is ever split across two maps.
		rt.forwardIngest(w, r, st, ct, sb)
		rt.mu.RUnlock()
		return
	}
}

// splitIngest splits the raw batch body per owning node under the given
// route state. If it wrote a terminal response (malformed frame), it
// reports handled=true.
func (rt *Router) splitIngest(w http.ResponseWriter, st routeState, ct string, body []byte) (*splitBatch, bool) {
	if ct == wire.ContentType {
		return rt.splitBinary(w, st, body)
	}
	return rt.splitJSON(st, body)
}

func (rt *Router) splitBinary(w http.ResponseWriter, st routeState, frame []byte) (*splitBatch, bool) {
	sb := &splitBatch{}
	assign := func(serial []byte) int {
		if st.moving(serial) {
			sb.hasMover = true
		}
		sb.records++
		return st.cur.OwnerIndex(serial)
	}
	bodies, err := wire.SplitFrame(frame, len(st.cur.Nodes), assign, &sb.rep)
	if err != nil {
		// Frame-level defect: same contract and ledger shape as a node.
		var rep quality.Report
		if fe, ok := wire.IsFrameError(err); ok {
			rep.Note(fe.Issue(), quality.Config{})
		} else {
			rep.Note(quality.Issue{Kind: quality.MalformedRow, Detail: err.Error()}, quality.Config{})
		}
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error":   fmt.Sprintf("malformed request body: %v", err),
			"quality": ledgerDocOf(&rep),
		})
		return nil, true
	}
	sb.primary = bodies
	sb.primaryN = frameCounts(bodies)
	if st.stage == stageDual && sb.hasMover {
		dual, err := wire.SplitFrame(frame, len(st.next.Nodes), func(serial []byte) int {
			if !st.moving(serial) {
				return -1
			}
			return st.next.OwnerIndex(serial)
		}, nil)
		if err != nil {
			// The first pass accepted this frame; the second sees the same
			// bytes. Defensive only.
			writeJSON(w, http.StatusInternalServerError, map[string]any{
				"error": fmt.Sprintf("splitting dual-write frame: %v", err),
			})
			return nil, true
		}
		sb.dual = dual
		sb.dualN = frameCounts(dual)
	}
	return sb, false
}

// frameCounts reads each split frame's record count from its header.
func frameCounts(bodies [][]byte) []int {
	counts := make([]int, len(bodies))
	for i, b := range bodies {
		if len(b) >= 5 {
			counts[i] = int(uint32(b[1]) | uint32(b[2])<<8 | uint32(b[3])<<16 | uint32(b[4])<<24)
		}
	}
	return counts
}

// jsonSerial is the one field the router reads out of a JSON record.
type jsonSerial struct {
	Serial string `json:"serial"`
}

func (rt *Router) splitJSON(st routeState, body []byte) (*splitBatch, bool) {
	var req struct {
		Records []json.RawMessage `json:"records"`
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		// The router cannot split what it cannot parse. Hand the whole
		// body to the first node verbatim: its stricter ingest path
		// produces the canonical 400 with the defect in the ledger.
		sb := &splitBatch{primary: make([][]byte, len(st.cur.Nodes)), primaryN: make([]int, len(st.cur.Nodes))}
		sb.primary[0] = body
		return sb, false
	}
	groups := make([][]json.RawMessage, len(st.cur.Nodes))
	var dualGroups [][]json.RawMessage
	if st.next != nil {
		dualGroups = make([][]json.RawMessage, len(st.next.Nodes))
	}
	sb := &splitBatch{records: len(req.Records)}
	for _, raw := range req.Records {
		var rec jsonSerial
		// A record the router cannot read a serial from (wrong shape,
		// empty serial) goes to the first node, whose per-record
		// validation quarantines it with the right ledger entry.
		_ = json.Unmarshal(raw, &rec)
		idx := 0
		if rec.Serial != "" {
			serial := []byte(rec.Serial)
			idx = st.cur.OwnerIndex(serial)
			if st.moving(serial) {
				sb.hasMover = true
				if st.stage == stageDual {
					j := st.next.OwnerIndex(serial)
					dualGroups[j] = append(dualGroups[j], raw)
				}
			}
		}
		groups[idx] = append(groups[idx], raw)
	}
	sb.primary, sb.primaryN = marshalGroups(groups)
	if st.stage == stageDual && sb.hasMover {
		sb.dual, sb.dualN = marshalGroups(dualGroups)
	}
	return sb, false
}

func marshalGroups(groups [][]json.RawMessage) ([][]byte, []int) {
	bodies := make([][]byte, len(groups))
	counts := make([]int, len(groups))
	for i, g := range groups {
		if g == nil {
			continue
		}
		b, _ := json.Marshal(map[string][]json.RawMessage{"records": g})
		bodies[i] = b
		counts[i] = len(g)
	}
	return bodies, counts
}

// forwardIngest sends the split batch: dual-write bodies to the new
// owners first, then primary bodies in node order, merging the primary
// acks. Both owners must accept a moving record before it is acked, and
// only the old owner's alerts reach the client — one answer per record.
func (rt *Router) forwardIngest(w http.ResponseWriter, r *http.Request, st routeState, ct string, sb *splitBatch) {
	ctx := r.Context()
	for j, body := range sb.dual {
		if body == nil {
			continue
		}
		n := st.next.Nodes[j]
		resp, rb, err := rt.forward(ctx, n, "POST", "/v1/ingest", ct, body)
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(rb)))
		}
		if err != nil {
			rt.m.proxyErrors.Add(1)
			writeJSON(w, http.StatusBadGateway, map[string]any{
				"error": fmt.Sprintf("dual-write to node %s failed: %v", n.ID, err),
			})
			return
		}
		rt.m.dualWrites.Add(int64(sb.dualN[j]))
	}

	merged := ingestAckDoc{Alerts: []json.RawMessage{}}
	for i, body := range sb.primary {
		if body == nil {
			continue
		}
		n := st.cur.Nodes[i]
		resp, rb, err := rt.forward(ctx, n, "POST", "/v1/ingest", ct, body)
		if err != nil {
			rt.m.proxyErrors.Add(1)
			writeJSON(w, http.StatusBadGateway, map[string]any{
				"error": fmt.Sprintf("forwarding to node %s: %v", n.ID, err),
			})
			return
		}
		if resp.StatusCode != http.StatusOK {
			// A single-node verdict (malformed sub-batch, 429, …) is the
			// batch's verdict; relay it as the node shaped it.
			rt.relay(w, resp, rb)
			return
		}
		var ack ingestAckDoc
		if err := json.Unmarshal(rb, &ack); err != nil {
			rt.m.proxyErrors.Add(1)
			writeJSON(w, http.StatusBadGateway, map[string]any{
				"error": fmt.Sprintf("node %s sent an unreadable ingest ack: %v", n.ID, err),
			})
			return
		}
		merged.Ingested += ack.Ingested
		merged.Kept += ack.Kept
		merged.Quarantined += ack.Quarantined
		merged.Alerts = append(merged.Alerts, ack.Alerts...)
		merged.Quality.add(ack.Quality)
	}

	// Fold in the router's own split-stage quarantines (records whose
	// header was too defective to route) so the batch accounting the
	// client checks — ingested == kept + quarantined == records sent —
	// still balances end to end.
	merged.Ingested += sb.rep.RowsQuarantined
	merged.Quarantined += sb.rep.RowsQuarantined
	merged.Quality.add(ledgerDocOf(&sb.rep))
	rt.m.recordsRouted.Add(int64(sb.records))
	writeJSON(w, http.StatusOK, &merged)
}

// relay copies a node response through verbatim.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, body []byte) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

func (rt *Router) handleDrive(w http.ResponseWriter, r *http.Request) {
	serial := r.PathValue("serial")
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	// Reads go to the current owner in every stage: during copy and
	// dual-write the old owner still has every record (dual writes land
	// on both), so no request is ever answered by two nodes at once.
	n := rt.cur.Owner(serial)
	resp, body, err := rt.forward(r.Context(), n, "GET", "/v1/drives/"+url.PathEscape(serial), "", nil)
	if err != nil {
		rt.m.proxyErrors.Add(1)
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error": fmt.Sprintf("forwarding to node %s: %v", n.ID, err),
		})
		return
	}
	rt.relay(w, resp, body)
}

// summaryDoc is the slice of a node summary the router merges.
type summaryDoc struct {
	Drives     int               `json:"drives"`
	MaxHour    int               `json:"max_hour"`
	BySeverity map[string]int    `json:"by_severity"`
	ByType     map[string]int    `json:"alerting_by_type"`
	AtRisk     []json.RawMessage `json:"at_risk"`
	EvictedNow int               `json:"evicted_now"`
	Quality    ledgerDoc         `json:"quality"`
}

func (rt *Router) handleSummary(w http.ResponseWriter, r *http.Request) {
	topN := rt.cfg.SummaryTopN
	if v := r.URL.Query().Get("top"); v != "" {
		n := 0
		if _, err := fmt.Sscanf(v, "%d", &n); err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": fmt.Sprintf("bad top parameter %q", v),
			})
			return
		}
		topN = n
	}
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	merged := summaryDoc{AtRisk: []json.RawMessage{}, ByType: map[string]int{}, BySeverity: map[string]int{}}
	type atRiskEntry struct {
		raw json.RawMessage
		deg float64
		ser string
	}
	var atRisk []atRiskEntry
	nodes := make([]map[string]any, 0, len(rt.cur.Nodes))
	for _, n := range rt.cur.Nodes {
		resp, body, err := rt.forward(r.Context(), n, "GET", "/v1/fleet/summary?top="+fmt.Sprint(topN), "", nil)
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		if err != nil {
			rt.m.proxyErrors.Add(1)
			writeJSON(w, http.StatusBadGateway, map[string]any{
				"error": fmt.Sprintf("summary from node %s: %v", n.ID, err),
			})
			return
		}
		var doc summaryDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			rt.m.proxyErrors.Add(1)
			writeJSON(w, http.StatusBadGateway, map[string]any{
				"error": fmt.Sprintf("node %s sent an unreadable summary: %v", n.ID, err),
			})
			return
		}
		merged.Drives += doc.Drives
		if doc.MaxHour > merged.MaxHour {
			merged.MaxHour = doc.MaxHour
		}
		for k, c := range doc.BySeverity {
			merged.BySeverity[k] += c
		}
		for k, v := range doc.ByType {
			merged.ByType[k] += v
		}
		merged.EvictedNow += doc.EvictedNow
		merged.Quality.add(doc.Quality)
		for _, raw := range doc.AtRisk {
			var d struct {
				Serial      string  `json:"serial"`
				Degradation float64 `json:"degradation"`
			}
			_ = json.Unmarshal(raw, &d)
			atRisk = append(atRisk, atRiskEntry{raw: raw, deg: d.Degradation, ser: d.Serial})
		}
		nodes = append(nodes, map[string]any{"id": n.ID, "drives": doc.Drives, "max_hour": doc.MaxHour})
	}
	// The merged at-risk list re-ranks the per-node lists the way each
	// node ranks its own: worst degradation first.
	sort.Slice(atRisk, func(i, j int) bool {
		if atRisk[i].deg != atRisk[j].deg {
			return atRisk[i].deg > atRisk[j].deg
		}
		return atRisk[i].ser < atRisk[j].ser
	})
	if len(atRisk) > topN {
		atRisk = atRisk[:topN]
	}
	for _, e := range atRisk {
		merged.AtRisk = append(merged.AtRisk, e.raw)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"drives":           merged.Drives,
		"max_hour":         merged.MaxHour,
		"by_severity":      merged.BySeverity,
		"alerting_by_type": merged.ByType,
		"at_risk":          merged.AtRisk,
		"evicted_now":      merged.EvictedNow,
		"quality":          merged.Quality,
		"nodes":            nodes,
		"epoch":            rt.cur.Epoch,
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := rt.snapshot()
	nodes := map[string]any{}
	for _, n := range st.cur.Nodes {
		resp, body, err := rt.forward(r.Context(), n, "GET", "/metrics", "", nil)
		if err != nil || resp.StatusCode != http.StatusOK {
			nodes[n.ID] = map[string]any{"error": fmt.Sprint(err)}
			continue
		}
		var doc map[string]any
		if json.Unmarshal(body, &doc) == nil {
			nodes[n.ID] = doc
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"router": map[string]any{
			"ingest_batches":  rt.m.ingestBatches.Load(),
			"records_routed":  rt.m.recordsRouted.Load(),
			"dual_writes":     rt.m.dualWrites.Load(),
			"gated_requests":  rt.m.gatedRequests.Load(),
			"forwards":        rt.m.forwards.Load(),
			"forward_retries": rt.m.forwardRetries.Load(),
			"proxy_errors":    rt.m.proxyErrors.Load(),
			"rebalances":      rt.m.rebalances.Load(),
		},
		"cluster": map[string]any{
			"epoch": st.cur.Epoch,
			"stage": st.stage.String(),
			"nodes": len(st.cur.Nodes),
		},
		"nodes": nodes,
	})
}

func (rt *Router) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "live", "mode": "router"})
}

// handleReady reports ready when every node in the current map has a
// ready URL; a cluster that cannot reach an owner would black-hole that
// owner's share of every batch.
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	st := rt.snapshot()
	healths := make([]NodeHealth, 0, len(st.cur.Nodes))
	ready := true
	for _, n := range st.cur.Nodes {
		h, ok := rt.probe.health(n.ID)
		if !ok {
			h = NodeHealth{ID: n.ID, Active: n.URL}
		}
		if !h.Ready {
			ready = false
		}
		healths = append(healths, h)
	}
	status, code := "ready", http.StatusOK
	if !ready {
		status, code = "degraded", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status": status,
		"mode":   "router",
		"epoch":  st.cur.Epoch,
		"stage":  st.stage.String(),
		"nodes":  healths,
	})
}

func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := rt.snapshot()
	doc := map[string]any{
		"epoch": st.cur.Epoch,
		"stage": st.stage.String(),
		"nodes": rt.nodeHealths(st.cur.Nodes),
	}
	if st.next != nil {
		doc["next_epoch"] = st.next.Epoch
		doc["next_nodes"] = rt.nodeHealths(st.next.Nodes)
	}
	writeJSON(w, http.StatusOK, doc)
}

func (rt *Router) nodeHealths(nodes []Node) []NodeHealth {
	out := make([]NodeHealth, 0, len(nodes))
	for _, n := range nodes {
		h, ok := rt.probe.health(n.ID)
		if !ok {
			h = NodeHealth{ID: n.ID, Active: n.URL}
		}
		out = append(out, h)
	}
	return out
}

// handleRebalance accepts a new cluster map and drives the live handoff
// synchronously; the 200 means the cutover is complete and the moved
// serials are dropped from their old owners.
func (rt *Router) handleRebalance(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var next Map
	if err := dec.Decode(&next); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("malformed cluster map: %v", err),
		})
		return
	}
	stats, err := rt.Rebalance(r.Context(), &next)
	if err != nil {
		status := http.StatusBadRequest
		if err == errRebalanceBusy {
			status = http.StatusConflict
		} else if stats != nil {
			// The migration started and failed mid-flight; that is a
			// server-side failure, not a bad request.
			status = http.StatusInternalServerError
		}
		writeJSON(w, status, map[string]any{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, stats)
}
