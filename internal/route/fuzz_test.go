package route

import (
	"testing"
)

// FuzzMapDiff checks the conservation law of a map diff: every serial is
// owned by exactly one node under each map, and the diff contains a
// serial exactly once iff its owner changed, with From/To matching the
// two maps' own placement. The fuzzer derives a node-set mutation
// (join, leave, or reweight) and a serial universe from raw bytes.
func FuzzMapDiff(f *testing.F) {
	f.Add(uint8(5), uint8(0), []byte("ld-000001\x00ld-000002\x00drive-x"))
	f.Add(uint8(2), uint8(1), []byte("a\x00b\x00c\x00d"))
	f.Add(uint8(8), uint8(2), []byte("serial"))
	f.Fuzz(func(t *testing.T, nNodes, mutation uint8, raw []byte) {
		n := 2 + int(nNodes%7) // 2..8 nodes
		old := &Map{Epoch: 1, Nodes: testNodes(n)}

		next := &Map{Epoch: 2, Nodes: testNodes(n)}
		switch mutation % 3 {
		case 0: // join
			next.Nodes = append(next.Nodes, Node{ID: "joined", URL: "http://joined"})
		case 1: // leave
			next.Nodes = next.Nodes[:n-1]
		case 2: // reweight
			next.Nodes[0].Weight = 3
		}
		if err := old.Validate(); err != nil {
			t.Fatalf("old map invalid: %v", err)
		}
		if err := next.Validate(); err != nil {
			t.Fatalf("next map invalid: %v", err)
		}

		// Serial universe: split raw bytes on NUL, drop empties, dedup.
		seen := map[string]bool{}
		var serials []string
		start := 0
		for i := 0; i <= len(raw); i++ {
			if i == len(raw) || raw[i] == 0 {
				if i > start {
					s := string(raw[start:i])
					if !seen[s] {
						seen[s] = true
						serials = append(serials, s)
					}
				}
				start = i + 1
			}
		}

		moves := Diff(old, next, serials)
		inDiff := make(map[string]Move, len(moves))
		for _, mv := range moves {
			if _, dup := inDiff[mv.Serial]; dup {
				t.Fatalf("serial %q appears twice in diff", mv.Serial)
			}
			inDiff[mv.Serial] = mv
		}
		for _, s := range serials {
			b := []byte(s)
			oi, ni := old.OwnerIndex(b), next.OwnerIndex(b)
			if oi < 0 || oi >= len(old.Nodes) || ni < 0 || ni >= len(next.Nodes) {
				t.Fatalf("serial %q: owner index out of range (%d, %d)", s, oi, ni)
			}
			from, to := old.Nodes[oi].ID, next.Nodes[ni].ID
			mv, moved := inDiff[s]
			if (from != to) != moved {
				t.Fatalf("serial %q: owner %s→%s but in-diff=%v", s, from, to, moved)
			}
			if moved && (mv.From != from || mv.To != to) {
				t.Fatalf("serial %q: diff says %s→%s, maps say %s→%s", s, mv.From, mv.To, from, to)
			}
		}

		// Grouping must conserve the moves: total serials across
		// transfers equals len(moves), every (from,to) matches.
		total := 0
		for _, tr := range GroupMoves(moves) {
			total += len(tr.Serials)
			for _, s := range tr.Serials {
				mv, ok := inDiff[s]
				if !ok || mv.From != tr.From || mv.To != tr.To {
					t.Fatalf("transfer %s→%s contains serial %q with move %+v", tr.From, tr.To, s, mv)
				}
			}
		}
		if total != len(moves) {
			t.Fatalf("transfers carry %d serials, diff has %d", total, len(moves))
		}
	})
}
