package route

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// bootNode is a deliberately-slow-to-ready node: /healthz/ready answers
// 503 until ready is flipped, like a server still replaying a snapshot.
type bootNode struct {
	ready atomic.Bool
	ts    *httptest.Server
}

func startBootNode(t *testing.T) *bootNode {
	t.Helper()
	n := &bootNode{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz/ready", func(w http.ResponseWriter, r *http.Request) {
		if !n.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"status":"starting"}`))
			return
		}
		w.Write([]byte(`{"status":"ready","role":"standalone"}`))
	})
	n.ts = httptest.NewServer(mux)
	t.Cleanup(n.ts.Close)
	return n
}

// TestSetNodesProbesUnknownNodesSynchronously pins the fix for the
// optimistic-ready race: a node added by setNodes used to be assumed
// Ready before its first probe, so a rebalance could forward batches to
// a node that was still bootstrapping.
func TestSetNodesProbesUnknownNodesSynchronously(t *testing.T) {
	boot := startBootNode(t)
	p := newProber(&http.Client{Timeout: 2 * time.Second}, time.Hour)

	p.setNodes([]Node{{ID: "boot", URL: boot.ts.URL}})
	h, ok := p.health("boot")
	if !ok {
		t.Fatal("no health entry after setNodes")
	}
	if h.Ready {
		t.Fatal("bootstrapping node reported Ready before its first successful probe")
	}
	if h.LastError == "" {
		t.Error("failed first probe left no LastError")
	}

	// The node finishes bootstrapping. A re-set of the same membership
	// must not reset it to unknown, and the next sweep turns it ready.
	boot.ready.Store(true)
	p.setNodes([]Node{{ID: "boot", URL: boot.ts.URL}})
	if h, _ := p.health("boot"); h.Ready {
		t.Fatal("known node re-probed by setNodes before its sweep")
	}
	p.probeAll()
	if h, _ := p.health("boot"); !h.Ready || h.Role != "standalone" {
		t.Fatalf("node not ready after probe sweep: %+v", h)
	}

	// A node that is already up when it joins is ready the moment
	// setNodes returns — the synchronous probe, not optimism.
	up := startBootNode(t)
	up.ready.Store(true)
	p.setNodes([]Node{{ID: "boot", URL: boot.ts.URL}, {ID: "up", URL: up.ts.URL}})
	if h, _ := p.health("up"); !h.Ready {
		t.Fatalf("already-up joiner not ready after setNodes: %+v", h)
	}
	// And the router never forwards to a not-ready joiner's URL blindly:
	// activeURL still resolves (fallback), but Ready gates usage.
	if got := p.activeURL(Node{ID: "boot", URL: boot.ts.URL}); got == "" {
		t.Fatal("activeURL empty for known node")
	}
}
