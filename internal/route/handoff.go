package route

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"time"

	"disksig/internal/fleet"
	"disksig/internal/persist"
	"disksig/internal/quality"
)

// errRebalanceBusy is returned when a migration is already in flight.
var errRebalanceBusy = errors.New("route: a rebalance is already in progress")

// transferChunkBytes is the handoff stream's chunk size. Small enough
// that a torn connection resumes cheaply, big enough that a realistic
// shard image moves in a handful of requests.
const transferChunkBytes = 256 << 10

var transferCRC = crc32.MakeTable(crc32.Castagnoli)

// RebalanceStats summarizes a completed map migration.
type RebalanceStats struct {
	Epoch      uint64  `json:"epoch"`
	Moved      int     `json:"moved"`     // serials that changed owner
	Transfers  int     `json:"transfers"` // (source, target) streams
	DualWrites int64   `json:"dual_writes"`
	DurationMs float64 `json:"duration_ms"`
}

// Rebalance migrates the cluster from the current map to next with live
// traffic flowing:
//
//  1. copy stage — ingest of moving serials gates (bounded wait), so
//     each mover's record stream is frozen on its old owner;
//  2. every current node exports its state, the router filters out the
//     entries that change owner and streams them to their new owners
//     over the resumable CRC-framed transfer API;
//  3. dual-write stage — the gate opens and moving records are written
//     to both owners (acked by the old one) for a short dwell;
//  4. the map epoch flips atomically (the routing lock drains every
//     in-flight request, so no batch straddles two maps), after which
//     the old owners drop their moved serials.
//
// A failure before the flip rolls the router back to the old map. A
// target that already committed a transfer keeps those entries, but the
// old map never routes to it for them; they are inert remnants that the
// next successful migration's ownership filter steps around.
func (rt *Router) Rebalance(ctx context.Context, next *Map) (*RebalanceStats, error) {
	if !rt.rebalanceMu.TryLock() {
		return nil, errRebalanceBusy
	}
	defer rt.rebalanceMu.Unlock()

	if err := next.Validate(); err != nil {
		return nil, err
	}
	cur := rt.snapshot().cur
	if next.Epoch <= cur.Epoch {
		return nil, fmt.Errorf("route: new map epoch %d is not newer than current epoch %d", next.Epoch, cur.Epoch)
	}
	start := time.Now()
	rt.m.rebalances.Add(1)

	// Enter the copy stage: moving-serial ingest gates from here on.
	copyDone := make(chan struct{})
	rt.mu.Lock()
	rt.next, rt.stage, rt.copyDone = next, stageCopy, copyDone
	rt.mu.Unlock()
	rt.probe.setNodes(unionNodes(cur.Nodes, next.Nodes))
	stats := &RebalanceStats{Epoch: next.Epoch}

	abort := func(err error) (*RebalanceStats, error) {
		rt.mu.Lock()
		rt.next, rt.stage, rt.copyDone = nil, stageIdle, nil
		rt.mu.Unlock()
		// Release any batches parked at the gate; they re-route by the
		// old map, which is still correct.
		close(copyDone)
		rt.probe.setNodes(cur.Nodes)
		if rt.cfg.Log != nil {
			rt.cfg.Log.Printf("rebalance to epoch %d aborted: %v", next.Epoch, err)
		}
		return stats, err
	}

	// Bulk copy: export each current node, carve out its movers, stream
	// them to their new owners. Mover streams are frozen by the gate, so
	// the export is complete for every moving serial.
	for _, src := range cur.Nodes {
		st, err := rt.exportNode(ctx, src)
		if err != nil {
			return abort(fmt.Errorf("exporting node %s: %w", src.ID, err))
		}
		perTarget := map[string][]fleet.DriveEntry{}
		for _, e := range st.Drives {
			serial := []byte(e.Serial)
			if cur.Nodes[cur.OwnerIndex(serial)].ID != src.ID {
				// Not this node's serial under the current map: a remnant
				// of an earlier aborted migration. Leave it alone.
				continue
			}
			to := next.Nodes[next.OwnerIndex(serial)].ID
			if to == src.ID {
				continue
			}
			perTarget[to] = append(perTarget[to], e)
			stats.Moved++
		}
		for _, tgt := range next.Nodes {
			entries := perTarget[tgt.ID]
			if len(entries) == 0 {
				continue
			}
			// Clear remnants of an earlier aborted migration first: the
			// import conflicts on any serial the target already tracks, and
			// under the current map these serials belong to src, so any
			// copy on the target is stale by definition.
			serials := make([]string, len(entries))
			for i, e := range entries {
				serials[i] = e.Serial
			}
			if err := rt.dropSerials(ctx, tgt, serials, false); err != nil {
				return abort(fmt.Errorf("clearing stale entries on node %s: %w", tgt.ID, err))
			}
			sub := &fleet.State{
				MonitorCfg: st.MonitorCfg,
				Models:     st.Models,
				Norm:       st.Norm,
				Drives:     entries,
				Quality:    quality.Report{},
				MaxHour:    st.MaxHour,
				HasHour:    st.HasHour,
			}
			id := fmt.Sprintf("rebalance-%d-%s-%s", next.Epoch, src.ID, tgt.ID)
			if err := rt.streamState(ctx, tgt, id, sub); err != nil {
				return abort(fmt.Errorf("streaming %d drives %s → %s: %w", len(entries), src.ID, tgt.ID, err))
			}
			stats.Transfers++
		}
	}

	// Open the gate into the dual-write stage. The write lock drains
	// in-flight batches split under the copy-stage map first.
	dualBase := rt.m.dualWrites.Load()
	rt.mu.Lock()
	rt.stage = stageDual
	rt.mu.Unlock()
	close(copyDone)

	// Dwell: let the dual-write window absorb live mover traffic before
	// cutting over, bounded so an idle cluster still converges.
	dwell := time.NewTimer(rt.cfg.DualWriteMax)
	defer dwell.Stop()
dwell:
	for rt.m.dualWrites.Load()-dualBase < int64(rt.cfg.DualWriteMin) {
		select {
		case <-dwell.C:
			break dwell
		case <-ctx.Done():
			break dwell
		case <-time.After(5 * time.Millisecond):
		}
	}
	stats.DualWrites = rt.m.dualWrites.Load() - dualBase

	// Cut over: the write lock drains every in-flight dual-write, then
	// the new map becomes the only map — one epoch, one owner per serial.
	rt.mu.Lock()
	rt.cur, rt.next, rt.stage, rt.copyDone = next, nil, stageIdle, nil
	rt.mu.Unlock()
	rt.probe.setNodes(next.Nodes)

	// Retire from each old node every serial the new map assigns
	// elsewhere. The list comes from a fresh post-flip export, not the
	// bulk-copy one: a serial first seen during the dual-write window
	// was written to both owners but never bulk-copied, and only a
	// post-flip inventory catches that copy on the old owner.
	for _, src := range cur.Nodes {
		st, err := rt.exportNode(ctx, src)
		if err != nil {
			return stats, fmt.Errorf("inventorying node %s after cutover: %w", src.ID, err)
		}
		var serials []string
		for _, e := range st.Drives {
			if next.Nodes[next.OwnerIndex([]byte(e.Serial))].ID != src.ID {
				serials = append(serials, e.Serial)
			}
		}
		if len(serials) == 0 {
			continue
		}
		if err := rt.dropSerials(ctx, src, serials, true); err != nil {
			return stats, fmt.Errorf("dropping %d moved serials from node %s: %w", len(serials), src.ID, err)
		}
	}

	stats.DurationMs = float64(time.Since(start)) / float64(time.Millisecond)
	if rt.cfg.Log != nil {
		rt.cfg.Log.Printf("rebalance: epoch %d→%d moved=%d transfers=%d dual_writes=%d dur=%.0fms",
			cur.Epoch, next.Epoch, stats.Moved, stats.Transfers, stats.DualWrites, stats.DurationMs)
	}
	return stats, nil
}

// unionNodes merges two node lists by ID, first list winning.
func unionNodes(a, b []Node) []Node {
	seen := map[string]bool{}
	out := make([]Node, 0, len(a)+len(b))
	for _, lists := range [2][]Node{a, b} {
		for _, n := range lists {
			if !seen[n.ID] {
				seen[n.ID] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// exportNode pulls a node's full bootstrap-image state.
func (rt *Router) exportNode(ctx context.Context, n Node) (*fleet.State, error) {
	resp, body, err := rt.forward(ctx, n, "GET", "/v1/admin/export", "", nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("export status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	st, _, _, err := persist.DecodeBootstrap(body)
	return st, err
}

// streamState encodes a state subset and streams it to the target node
// over the resumable transfer API, then commits the import. A chunk the
// target already has (409 with its expected offset) re-syncs the cursor
// instead of failing — the resume path a torn connection needs.
func (rt *Router) streamState(ctx context.Context, tgt Node, id string, st *fleet.State) error {
	img, err := persist.EncodeBootstrap(st, 0, persist.Position{})
	if err != nil {
		return err
	}
	offset := 0
	for offset < len(img) {
		end := offset + transferChunkBytes
		if end > len(img) {
			end = len(img)
		}
		sent, err := rt.postChunk(ctx, tgt, id, offset, img[offset:end])
		if err != nil {
			return err
		}
		offset = sent
	}
	resp, body, err := rt.forward(ctx, tgt, "POST", "/v1/admin/transfer/"+id+"/commit", "", nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("commit status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

// postChunk sends one CRC-sealed chunk and returns the target's next
// expected offset (from either a 200 or a 409 resume answer).
func (rt *Router) postChunk(ctx context.Context, tgt Node, id string, offset int, payload []byte) (int, error) {
	sum := crc32.Checksum(payload, transferCRC)
	chunk := make([]byte, 0, len(payload)+4)
	chunk = append(chunk, payload...)
	chunk = append(chunk, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))

	var lastErr error
	wait := 2 * time.Millisecond
	for attempt := 0; attempt < rt.cfg.ForwardAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return 0, ctx.Err()
			}
			if wait *= 2; wait > rt.cfg.MaxRetryWait {
				wait = rt.cfg.MaxRetryWait
			}
		}
		urls := rt.probe.candidates(tgt)
		u := urls[attempt%len(urls)]
		req, err := http.NewRequestWithContext(ctx, "POST", u+"/v1/admin/transfer/"+id, bytes.NewReader(chunk))
		if err != nil {
			return 0, err
		}
		req.Header.Set("X-Transfer-Offset", strconv.Itoa(offset))
		resp, err := rt.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var doc struct {
				Offset int `json:"offset"`
			}
			if err := json.Unmarshal(body, &doc); err != nil {
				return 0, fmt.Errorf("unreadable transfer ack: %v", err)
			}
			return doc.Offset, nil
		case http.StatusConflict:
			var doc struct {
				Expected int `json:"expected"`
			}
			if err := json.Unmarshal(body, &doc); err != nil {
				return 0, fmt.Errorf("unreadable transfer resume answer: %v", err)
			}
			return doc.Expected, nil
		case http.StatusServiceUnavailable:
			lastErr = fmt.Errorf("node %s transfer answered 503", tgt.ID)
			continue
		default:
			return 0, fmt.Errorf("transfer chunk status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
		}
	}
	return 0, fmt.Errorf("transfer chunk to node %s failed after %d attempts: %w", tgt.ID, rt.cfg.ForwardAttempts, lastErr)
}

// dropSerials removes serials from a node. With strict set, every
// serial must actually have been dropped (retiring movers from their
// old owner); without it, absent serials are fine (clearing remnants).
func (rt *Router) dropSerials(ctx context.Context, n Node, serials []string, strict bool) error {
	body, err := json.Marshal(map[string][]string{"serials": serials})
	if err != nil {
		return err
	}
	resp, rb, err := rt.forward(ctx, n, "POST", "/v1/admin/drop", "application/json", body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("drop status %d: %s", resp.StatusCode, bytes.TrimSpace(rb))
	}
	var doc struct {
		Dropped int `json:"dropped"`
	}
	if err := json.Unmarshal(rb, &doc); err != nil {
		return fmt.Errorf("unreadable drop answer: %v", err)
	}
	if strict && doc.Dropped != len(serials) {
		return fmt.Errorf("dropped %d of %d moved serials", doc.Dropped, len(serials))
	}
	return nil
}
