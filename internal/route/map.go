// Package route is the cluster routing tier above the per-node fleet
// stores: a versioned cluster map (node IDs, addresses, weights, an
// epoch) with deterministic rendezvous (highest-random-weight) serial →
// node placement, and a router that proxies the ingest/query API across
// the owning nodes (router.go) and live-migrates shard ownership
// between map versions (handoff.go).
//
// Placement is weighted rendezvous hashing: every (node, serial) pair
// hashes to a uniform score and the serial is owned by the node with the
// highest score. The scheme needs no coordination, no token ring and no
// stored assignment table — any process holding the same map computes
// the same owner — and it moves the provable minimum when the map
// changes: adding a node moves only the serials the new node wins
// (an expected weight-fraction of the keyspace), removing a node moves
// only the serials it owned. Unlike a hash ring there are no contiguous
// hash ranges; the unit of movement is the serial, so Diff enumerates
// exactly the serials that change owner between two map versions,
// grouped into per-(from,to) transfers.
package route

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Node is one ingest/query server in the cluster map.
type Node struct {
	// ID names the node; it is the stable identity rendezvous scores hash
	// over, so renaming a node reassigns its serials.
	ID string `json:"id"`
	// URL is the node's base URL (e.g. "http://10.0.0.1:8080").
	URL string `json:"url"`
	// Followers are warm-standby base URLs for the node (a replicated
	// pair's follower); the router's prober fails over to one when the
	// primary URL stops answering ready.
	Followers []string `json:"followers,omitempty"`
	// Weight scales the node's share of the keyspace; <= 0 means 1.
	Weight float64 `json:"weight,omitempty"`
}

// URLs returns the node's candidate base URLs, primary first.
func (n Node) URLs() []string {
	urls := make([]string, 0, 1+len(n.Followers))
	urls = append(urls, n.URL)
	urls = append(urls, n.Followers...)
	return urls
}

// weight returns the effective placement weight.
func (n Node) weight() float64 {
	if n.Weight <= 0 {
		return 1
	}
	return n.Weight
}

// Map is one version of the cluster layout. Maps are compared by Epoch:
// a router switches from map v to map v' only through the handoff
// protocol, which streams the moving serials before the epoch flips.
type Map struct {
	Epoch uint64 `json:"epoch"`
	Nodes []Node `json:"nodes"`
}

// NewMap builds a validated map.
func NewMap(epoch uint64, nodes []Node) (*Map, error) {
	m := &Map{Epoch: epoch, Nodes: nodes}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate checks the map invariants: at least one node, unique
// non-empty IDs, non-empty URLs, finite weights.
func (m *Map) Validate() error {
	if m == nil {
		return fmt.Errorf("route: nil cluster map")
	}
	if len(m.Nodes) == 0 {
		return fmt.Errorf("route: cluster map epoch %d has no nodes", m.Epoch)
	}
	seen := make(map[string]bool, len(m.Nodes))
	for i, n := range m.Nodes {
		if n.ID == "" {
			return fmt.Errorf("route: node %d has no id", i)
		}
		if seen[n.ID] {
			return fmt.Errorf("route: duplicate node id %q", n.ID)
		}
		seen[n.ID] = true
		if n.URL == "" {
			return fmt.Errorf("route: node %q has no url", n.ID)
		}
		if math.IsNaN(n.Weight) || math.IsInf(n.Weight, 0) {
			return fmt.Errorf("route: node %q has non-finite weight", n.ID)
		}
	}
	return nil
}

// Node returns the node with the given ID.
func (m *Map) Node(id string) (Node, bool) {
	for _, n := range m.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// LoadMap reads and validates a cluster map JSON file.
func LoadMap(path string) (*Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("route: reading cluster map: %w", err)
	}
	var m Map
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("route: parsing cluster map %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("route: %s: %w", path, err)
	}
	return &m, nil
}

// WriteMap writes a cluster map as indented JSON.
func WriteMap(path string, m *Map) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("route: encoding cluster map: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// OwnerIndex returns the index into m.Nodes of the serial's owner. The
// serial is passed as bytes so the router's binary split path can route
// without allocating a string per record.
func (m *Map) OwnerIndex(serial []byte) int {
	best, bestScore := 0, math.Inf(-1)
	for i, n := range m.Nodes {
		s := rendezvousScore(n.ID, serial, n.weight())
		// Ties break by node ID so placement is total even if two nodes'
		// scores collide exactly.
		if s > bestScore || (s == bestScore && n.ID < m.Nodes[best].ID) {
			best, bestScore = i, s
		}
	}
	return best
}

// Owner returns the node that owns a serial.
func (m *Map) Owner(serial string) Node {
	return m.Nodes[m.OwnerIndex([]byte(serial))]
}

// OwnerID returns the owning node's ID.
func (m *Map) OwnerID(serial string) string { return m.Owner(serial).ID }

// rendezvousScore is the weighted highest-random-weight score of a
// (node, serial) pair: the pair hashes to u uniform in (0, 1), and the
// score is -weight/ln(u) — the standard weighted-rendezvous transform,
// under which node i wins a serial with probability w_i / sum(w). With
// equal weights it reduces to plain HRW (the transform is monotone in
// the hash).
func rendezvousScore(nodeID string, serial []byte, weight float64) float64 {
	h := pairHash(nodeID, serial)
	// 53 high bits → u in (0, 1), never exactly 0 or 1.
	u := (float64(h>>11) + 0.5) / (1 << 53)
	return -weight / math.Log(u)
}

// pairHash hashes a (node, serial) pair to 64 well-mixed bits: node ID
// and serial are FNV-1a hashed and SplitMix64-finalized separately,
// then combined with a golden-ratio multiply and finalized again. FNV
// alone is too regular for rendezvous scoring (nearby serials produce
// nearby hashes, which skews per-node balance), and the two-sided
// finalize keeps the combination symmetric-collision-free — ("ab","c")
// and ("a","bc") hash differently by construction.
func pairHash(nodeID string, serial []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	hn := uint64(offset64)
	for i := 0; i < len(nodeID); i++ {
		hn ^= uint64(nodeID[i])
		hn *= prime64
	}
	hs := uint64(offset64)
	for i := 0; i < len(serial); i++ {
		hs ^= uint64(serial[i])
		hs *= prime64
	}
	return mix64(mix64(hn) ^ (mix64(hs) * 0x9e3779b97f4a7c15))
}

// mix64 is the SplitMix64 finalizer (Stafford mix 13).
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Move is one serial changing owner between two map versions.
type Move struct {
	Serial string
	From   string // owning node ID under the old map
	To     string // owning node ID under the new map
}

// Diff returns the serials (of those enumerated) whose owner differs
// between two maps, sorted by serial. Rendezvous hashing has no
// contiguous hash ranges, so movement is enumerated per serial: the
// caller supplies the serial universe (in practice, each node's
// exported drive list).
func Diff(old, new *Map, serials []string) []Move {
	var moves []Move
	for _, s := range serials {
		b := []byte(s)
		from := old.Nodes[old.OwnerIndex(b)].ID
		to := new.Nodes[new.OwnerIndex(b)].ID
		if from != to {
			moves = append(moves, Move{Serial: s, From: from, To: to})
		}
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].Serial < moves[j].Serial })
	return moves
}

// Transfer is the unit of a handoff: every moving serial that shares a
// (from, to) node pair, streamed as one state image.
type Transfer struct {
	From, To string
	Serials  []string
}

// GroupMoves groups moves into per-(from,to) transfers, each with its
// serials sorted, transfers ordered by (from, to).
func GroupMoves(moves []Move) []Transfer {
	byPair := map[[2]string][]string{}
	for _, mv := range moves {
		k := [2]string{mv.From, mv.To}
		byPair[k] = append(byPair[k], mv.Serial)
	}
	out := make([]Transfer, 0, len(byPair))
	for k, serials := range byPair {
		sort.Strings(serials)
		out = append(out, Transfer{From: k[0], To: k[1], Serials: serials})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}
