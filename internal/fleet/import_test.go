package fleet

import (
	"reflect"
	"testing"
)

// Importing every exported entry into an empty, identically-configured
// store must reproduce the source bit-for-bit — same contract as
// Restore, reached through the live-merge path.
func TestImportEntriesRoundTrip(t *testing.T) {
	cfg := Config{Shards: 8, Workers: 4}
	src := testStore(t, cfg)
	src.IngestBatch(dirtyFleetStream(30, 10))
	st := src.ExportState()

	dst := testStore(t, Config{Shards: 2, Workers: 1}) // layout is free to differ
	n, err := dst.ImportEntries(st)
	if err != nil {
		t.Fatalf("ImportEntries: %v", err)
	}
	if n != len(st.Drives) {
		t.Fatalf("imported %d entries, state has %d", n, len(st.Drives))
	}
	if dst.Tracked() != src.Tracked() {
		t.Fatalf("Tracked = %d, want %d", dst.Tracked(), src.Tracked())
	}
	if h, ok := dst.MaxHour(); !ok || h != st.MaxHour {
		t.Fatalf("MaxHour = %d,%v, want %d", h, ok, st.MaxHour)
	}
	want := canonicalState(st)
	got := canonicalState(dst.ExportState())
	if !reflect.DeepEqual(want, got) {
		t.Fatal("re-exported state differs after ImportEntries")
	}

	// Behavior parity: the moved drives score their next records exactly
	// as they would have on the source.
	next := dirtyFleetStream(30, 10)[:80]
	for i := range next {
		next[i].Record.Hour += 50
	}
	a, b := src.IngestBatch(next), dst.IngestBatch(next)
	a.Quality.StripDiagnostics()
	b.Quality.StripDiagnostics()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("post-import batch diverges from source")
	}
}

// A partial import merges alongside existing drives; re-importing any
// already-present serial is a conflict.
func TestImportEntriesMergeAndConflict(t *testing.T) {
	src := testStore(t, Config{Shards: 4})
	src.IngestBatch(dirtyFleetStream(12, 6))
	st := src.ExportState()
	half := *st
	half.Drives = st.Drives[:len(st.Drives)/2]

	dst := testStore(t, Config{Shards: 4})
	dst.Ingest("LOCAL-1", record(0, 0.9))
	n, err := dst.ImportEntries(&half)
	if err != nil {
		t.Fatalf("ImportEntries: %v", err)
	}
	if n != len(half.Drives) {
		t.Fatalf("imported %d, want %d", n, len(half.Drives))
	}
	for _, e := range half.Drives {
		if e.State.Tracked {
			if _, ok := dst.Drive(e.Serial); !ok {
				t.Fatalf("imported drive %s not queryable", e.Serial)
			}
		}
	}
	if _, ok := dst.Drive("LOCAL-1"); !ok {
		t.Fatal("pre-existing drive lost by import")
	}
	if _, err := dst.ImportEntries(&half); err == nil {
		t.Fatal("re-import of tracked serials accepted")
	}
}

func TestImportEntriesRejectsCorruptState(t *testing.T) {
	src := testStore(t, Config{Shards: 4})
	src.IngestBatch(dirtyFleetStream(6, 4))
	dst := testStore(t, Config{Shards: 4})

	for _, tc := range []struct {
		name   string
		mutate func(*State)
	}{
		{"empty serial", func(st *State) { st.Drives[0].Serial = "" }},
		{"duplicate serial", func(st *State) { st.Drives = append(st.Drives, st.Drives[0]) }},
		{"drives without hour", func(st *State) { st.HasHour = false }},
	} {
		st := src.ExportState()
		tc.mutate(st)
		if _, err := dst.ImportEntries(st); err == nil {
			t.Fatalf("%s: corrupt state imported", tc.name)
		}
	}
	if _, err := dst.ImportEntries(nil); err == nil {
		t.Fatal("nil state imported")
	}
}

// The exported MaxHour can exceed every drive's LastHour (quarantined
// records advance telemetry time); the surplus must survive the import
// so eviction does not rejuvenate moved fleets.
func TestImportEntriesKeepsMaxHourSurplus(t *testing.T) {
	src := testStore(t, Config{Shards: 2})
	src.Ingest("A", record(5, 0.9))
	src.Ingest("A", nonFiniteRecord(500)) // quarantined, but hour 500 observed
	st := src.ExportState()
	if st.MaxHour != 500 {
		t.Fatalf("exported MaxHour = %d, want 500", st.MaxHour)
	}
	dst := testStore(t, Config{Shards: 2})
	if _, err := dst.ImportEntries(st); err != nil {
		t.Fatal(err)
	}
	if h, ok := dst.MaxHour(); !ok || h != 500 {
		t.Fatalf("imported MaxHour = %d,%v, want 500", h, ok)
	}
}
