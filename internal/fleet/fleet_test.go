package fleet

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"disksig/internal/core"
	"disksig/internal/monitor"
	"disksig/internal/regression"
	"disksig/internal/smart"
)

// rampPredictor scores records by their RRER value directly, making test
// trajectories easy to construct (same idiom as the monitor tests).
type rampPredictor struct{}

func (rampPredictor) Predict(x []float64) float64 { return x[smart.RRER] }

func testNormalizer() *smart.Normalizer {
	n := smart.NewNormalizer()
	var lo, hi smart.Values
	for a := range lo {
		lo[a] = -1
		hi[a] = 1
	}
	n.Observe(lo)
	n.Observe(hi)
	return n
}

func testModels() []monitor.GroupModel {
	return []monitor.GroupModel{{
		Group:     1,
		Type:      core.Logical,
		Form:      regression.FormQuadratic,
		WindowD:   12,
		Predictor: rampPredictor{},
	}}
}

func testStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := New(testModels(), testNormalizer(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func record(hour int, score float64) smart.Record {
	var v smart.Values
	v[smart.RRER] = score
	return smart.Record{Hour: hour, Values: v}
}

func TestShardCountPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 8}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {16, 16},
	} {
		s := testStore(t, Config{Shards: tc.in})
		if s.Shards() != tc.want {
			t.Errorf("Shards(%d) = %d, want %d", tc.in, s.Shards(), tc.want)
		}
	}
}

func TestShardingIsStable(t *testing.T) {
	s := testStore(t, Config{Shards: 16})
	for i := 0; i < 100; i++ {
		serial := fmt.Sprintf("ZX%08d", i)
		if a, b := s.shardIndex(serial), s.shardIndex(serial); a != b {
			t.Fatalf("shardIndex(%q) unstable: %d vs %d", serial, a, b)
		}
	}
	// FNV-1a should spread distinct serials across shards.
	seen := map[int]bool{}
	for i := 0; i < 256; i++ {
		seen[s.shardIndex(fmt.Sprintf("ZX%08d", i))] = true
	}
	if len(seen) < 8 {
		t.Errorf("256 serials landed on only %d/16 shards", len(seen))
	}
}

func TestIngestAndQuery(t *testing.T) {
	s := testStore(t, Config{Shards: 4, Monitor: monitor.Config{Smoothing: 1}})
	if a := s.Ingest("SER-1", record(0, 0.9)); a != nil {
		t.Errorf("healthy record alerted: %v", a)
	}
	a := s.Ingest("SER-1", record(1, -0.9))
	if a == nil || a.Serial != "SER-1" || a.Severity < monitor.Warning {
		t.Fatalf("degraded record alert = %+v", a)
	}
	dh, ok := s.Drive("SER-1")
	if !ok || dh.Serial != "SER-1" || dh.LastHour != 1 {
		t.Fatalf("Drive = %+v, %v", dh, ok)
	}
	if _, ok := s.Drive("SER-404"); ok {
		t.Error("Drive succeeded for an unknown serial")
	}
	if s.Tracked() != 1 {
		t.Errorf("Tracked = %d, want 1", s.Tracked())
	}
}

func TestRemove(t *testing.T) {
	s := testStore(t, Config{Shards: 2})
	s.Ingest("SER-1", record(0, 0.9))
	if !s.Remove("SER-1") {
		t.Fatal("Remove of a tracked drive returned false")
	}
	if s.Remove("SER-1") || s.Remove("SER-404") {
		t.Fatal("Remove of an untracked drive returned true")
	}
	if s.Tracked() != 0 {
		t.Fatalf("Tracked = %d after Remove, want 0", s.Tracked())
	}
	// A removed drive that reports again restarts with fresh state: an
	// old hour is a fresh first sample, not an out-of-order drop.
	if _, ok := s.Drive("SER-1"); ok {
		t.Fatal("Drive succeeded after Remove")
	}
	s.Ingest("SER-1", record(0, 0.9))
	if dh, ok := s.Drive("SER-1"); !ok || dh.Severity != monitor.Healthy {
		t.Fatalf("re-ingested drive = %+v, %v", dh, ok)
	}
}

func TestEvictStale(t *testing.T) {
	s := testStore(t, Config{Shards: 4, TTLHours: 10})
	s.Ingest("OLD-1", record(0, 0.9))
	s.Ingest("OLD-2", record(5, 0.9))
	s.Ingest("NEW-1", record(100, 0.9))
	if n := s.EvictStale(); n != 2 {
		t.Fatalf("EvictStale = %d, want 2", n)
	}
	if _, ok := s.Drive("OLD-1"); ok {
		t.Error("stale drive OLD-1 survived eviction")
	}
	if _, ok := s.Drive("NEW-1"); !ok {
		t.Error("fresh drive NEW-1 was evicted")
	}
	if s.Tracked() != 1 {
		t.Errorf("Tracked = %d after eviction, want 1", s.Tracked())
	}
	// TTL disabled: never evicts.
	s2 := testStore(t, Config{Shards: 4})
	s2.Ingest("OLD-1", record(0, 0.9))
	s2.Ingest("NEW-1", record(1000, 0.9))
	if n := s2.EvictStale(); n != 0 {
		t.Errorf("EvictStale with TTL disabled = %d, want 0", n)
	}
}

// buildStream interleaves records of many drives: drive d degrades when
// d is odd, stays healthy when even; a few records are defective.
func buildStream(drives, hours int) []Observation {
	var obs []Observation
	for h := 0; h < hours; h++ {
		for d := 0; d < drives; d++ {
			score := 0.9
			if d%2 == 1 {
				score = 0.9 - 2*float64(h)/float64(hours-1) // ramp to -1.1
			}
			rec := record(h, score)
			if d%7 == 3 && h == hours/2 {
				rec.Values[smart.TC] = math.NaN() // quarantine bait
			}
			obs = append(obs, Observation{Serial: fmt.Sprintf("SER-%04d", d), Record: rec})
		}
	}
	return obs
}

func TestIngestBatchMatchesSequential(t *testing.T) {
	obs := buildStream(40, 20)

	seq := testStore(t, Config{Shards: 1, Workers: 1})
	var seqAlerts []Alert
	for _, o := range obs {
		if a := seq.Ingest(o.Serial, o.Record); a != nil {
			seqAlerts = append(seqAlerts, *a)
		}
	}
	seqQ := seq.Quality()

	for _, cfg := range []Config{
		{Shards: 1, Workers: 1},
		{Shards: 4, Workers: 8},
		{Shards: 16, Workers: 3},
	} {
		par := testStore(t, cfg)
		res := par.IngestBatch(obs)
		if res.Ingested != len(obs) {
			t.Fatalf("cfg %+v: Ingested = %d, want %d", cfg, res.Ingested, len(obs))
		}
		if len(res.Alerts) != len(seqAlerts) {
			t.Fatalf("cfg %+v: %d alerts, want %d", cfg, len(res.Alerts), len(seqAlerts))
		}
		for i := range res.Alerts {
			got, want := res.Alerts[i], seqAlerts[i]
			// DriveID is shard-local; compare the externally meaningful fields.
			got.DriveID, want.DriveID = 0, 0
			if got != want {
				t.Fatalf("cfg %+v: alert %d = %+v, want %+v", cfg, i, got, want)
			}
		}
		q := par.Quality()
		if q.RowsRead != seqQ.RowsRead || q.RowsQuarantined != seqQ.RowsQuarantined {
			t.Fatalf("cfg %+v: quality %d/%d, want %d/%d",
				cfg, q.RowsRead, q.RowsQuarantined, seqQ.RowsRead, seqQ.RowsQuarantined)
		}
		// Batch delta ledger matches the cumulative ledger of a fresh store.
		if res.Quality.RowsRead != q.RowsRead || res.Quality.RowsQuarantined != q.RowsQuarantined {
			t.Fatalf("cfg %+v: batch ledger %d/%d, cumulative %d/%d",
				cfg, res.Quality.RowsRead, res.Quality.RowsQuarantined, q.RowsRead, q.RowsQuarantined)
		}
		if res.Quality.RowsRead != res.Quality.RowsKept()+res.Quality.RowsQuarantined {
			t.Fatalf("cfg %+v: ledger invariant violated: %+v", cfg, res.Quality)
		}
		// Per-drive final state matches.
		for d := 0; d < 40; d++ {
			serial := fmt.Sprintf("SER-%04d", d)
			a, aok := seq.Drive(serial)
			b, bok := par.Drive(serial)
			if aok != bok {
				t.Fatalf("cfg %+v: drive %s presence mismatch", cfg, serial)
			}
			a.DriveID, b.DriveID = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("cfg %+v: drive %s = %+v, want %+v", cfg, serial, b, a)
			}
		}
	}
}

func TestSummary(t *testing.T) {
	s := testStore(t, Config{Shards: 4})
	s.IngestBatch(buildStream(20, 20))
	sum := s.Summary(5)
	if sum.Drives != 20 {
		t.Fatalf("Summary.Drives = %d, want 20", sum.Drives)
	}
	if sum.MaxHour != 19 {
		t.Errorf("Summary.MaxHour = %d, want 19", sum.MaxHour)
	}
	total := 0
	for _, n := range sum.BySeverity {
		total += n
	}
	if total != 20 {
		t.Errorf("BySeverity sums to %d, want 20", total)
	}
	// The 10 odd drives ramp to critical; they must dominate roll-ups.
	if sum.BySeverity[monitor.Critical.String()] != 10 {
		t.Errorf("critical drives = %d, want 10 (%v)", sum.BySeverity[monitor.Critical.String()], sum.BySeverity)
	}
	if sum.ByType[core.Logical.String()] != 10 {
		t.Errorf("alerting logical drives = %d, want 10 (%v)", sum.ByType[core.Logical.String()], sum.ByType)
	}
	if len(sum.AtRisk) != 5 {
		t.Fatalf("AtRisk has %d entries, want 5", len(sum.AtRisk))
	}
	for i := 1; i < len(sum.AtRisk); i++ {
		a, b := sum.AtRisk[i-1], sum.AtRisk[i]
		if a.Degradation > b.Degradation {
			t.Errorf("AtRisk not sorted: %v before %v", a, b)
		}
	}
	occupancy := 0
	for _, ss := range sum.Shards {
		occupancy += ss.Drives
	}
	if len(sum.Shards) != 4 || occupancy != 20 {
		t.Errorf("shard occupancy = %v (sum %d), want 4 shards summing to 20", sum.Shards, occupancy)
	}
	// Summary without an at-risk list.
	if got := s.Summary(0); got.AtRisk != nil {
		t.Errorf("Summary(0).AtRisk = %v, want nil", got.AtRisk)
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	// Race-detector workout: batched ingest, queries, summaries and
	// evictions from many goroutines at once.
	s := testStore(t, Config{Shards: 8, TTLHours: 1000})
	obs := buildStream(30, 10)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			s.Summary(3)
			s.Drive("SER-0001")
			s.Tracked()
			s.EvictStale()
			s.Quality()
		}
	}()
	for i := 0; i < 4; i++ {
		s.IngestBatch(obs)
	}
	<-done
}
