package fleet

import (
	"fmt"

	"disksig/internal/monitor"
	"disksig/internal/smart"
)

// ModelVersion returns the version of the model set currently scoring
// the fleet. Versions start at 1 for a freshly trained store and
// increase by every promoted swap.
func (s *Store) ModelVersion() int {
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	return s.version
}

// Models returns a copy of the model set currently scoring the fleet,
// consistent with the version ModelVersion reports at the same moment.
func (s *Store) Models() []monitor.GroupModel {
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	return append([]monitor.GroupModel(nil), s.models...)
}

// SwapModels hot-swaps the serving model set atomically across all
// shards. It is the promotion step of the online-learning cycle: the
// swap barrier (held exclusively here, shared by every ingest) means no
// batch is ever scored by two versions — batches in flight drain first,
// batches arriving during the swap score entirely on the new version.
//
// Per-drive monitor state migrates: severity, last hour, quality
// ledgers and retraining history survive, while the smoothing windows
// reset (scores from different model versions must never be median-
// filtered together). A drive therefore re-enters its smoothing ramp
// under the new models and alerts only on a further escalation, so a
// swap never re-alerts a stable fleet wholesale.
//
// The swap validates and stages every shard before committing any of
// them: on error the store still serves the old version unchanged.
//
// The incoming set replaces only the model sets of the classes it
// contains: the online-learning cycle retrains the HDD population from
// its harvested history, and that promotion must not drop the SSD model
// set (or vice versa). Classes absent from the incoming set keep their
// current models and normalizer.
func (s *Store) SwapModels(models []monitor.GroupModel, norm *smart.Normalizer, version int) error {
	for _, m := range models {
		if m.Class != smart.HDD {
			return fmt.Errorf("fleet: swap group %d is %v-class; a mixed swap needs SwapModelsMulti", m.Group, m.Class)
		}
	}
	return s.SwapModelsMulti(models, monitor.ClassNorms{HDD: norm}, version)
}

// SwapModelsMulti is SwapModels for class-stamped model sets: each class
// present in models (with its normalizer in norms) replaces the serving
// set of that class; absent classes are preserved.
func (s *Store) SwapModelsMulti(models []monitor.GroupModel, norms monitor.ClassNorms, version int) error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if version <= s.version {
		return fmt.Errorf("fleet: swap to version %d refused: serving version %d is not older", version, s.version)
	}

	// Merge with the preserved classes: incoming models first (they are
	// ordered by class already when built by ModelsFromMixed), then the
	// retained sets of untouched classes in their current order.
	var incoming [smart.NumClasses]bool
	for _, m := range models {
		if !m.Class.Valid() {
			return fmt.Errorf("fleet: swap to version %d: group %d has invalid class %d", version, m.Group, m.Class)
		}
		incoming[m.Class] = true
	}
	combined := append([]monitor.GroupModel(nil), models...)
	mergedNorms := norms
	for _, m := range s.models {
		if !incoming[m.Class] {
			combined = append(combined, m)
		}
	}
	for c := smart.DeviceClass(0); c < smart.NumClasses; c++ {
		if !incoming[c] {
			mergedNorms = setNorm(mergedNorms, c, s.norms)
		}
	}

	// Stage: build one replacement monitor per shard with every drive
	// migrated. Ingest is excluded by the barrier, but queries still
	// read shards, so each shard locks while its state is copied out.
	staged := make([]*monitor.Monitor, len(s.shards))
	for si, sh := range s.shards {
		mon, err := monitor.NewMulti(combined, mergedNorms, s.cfg.Monitor)
		if err != nil {
			return fmt.Errorf("fleet: swap to version %d: building shard %d: %w", version, si, err)
		}
		sh.mu.Lock()
		drives := sh.mon.ExportDrives()
		sh.mu.Unlock()
		for id, ds := range drives {
			if ds.Tracked {
				// Reset the smoothing windows to one empty window per
				// new model; everything else carries over.
				ds.Recent = make([][]float64, len(combined))
			}
			if err := mon.ImportDrive(id, ds); err != nil {
				return fmt.Errorf("fleet: swap to version %d: migrating shard %d drive %d: %w", version, si, id, err)
			}
		}
		staged[si] = mon
	}

	// Commit: infallible pointer swaps.
	for si, sh := range s.shards {
		sh.mu.Lock()
		sh.mon = staged[si]
		sh.mu.Unlock()
	}
	s.models = combined
	s.norms = mergedNorms
	s.version = version
	return nil
}

// setNorm copies class c's normalizer from src into dst.
func setNorm(dst monitor.ClassNorms, c smart.DeviceClass, src monitor.ClassNorms) monitor.ClassNorms {
	switch c {
	case smart.HDD:
		dst.HDD = src.HDD
	case smart.SSD:
		dst.SSD = src.SSD
	}
	return dst
}
