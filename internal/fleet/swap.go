package fleet

import (
	"fmt"

	"disksig/internal/monitor"
	"disksig/internal/smart"
)

// ModelVersion returns the version of the model set currently scoring
// the fleet. Versions start at 1 for a freshly trained store and
// increase by every promoted swap.
func (s *Store) ModelVersion() int {
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	return s.version
}

// Models returns a copy of the model set currently scoring the fleet,
// consistent with the version ModelVersion reports at the same moment.
func (s *Store) Models() []monitor.GroupModel {
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	return append([]monitor.GroupModel(nil), s.models...)
}

// SwapModels hot-swaps the serving model set atomically across all
// shards. It is the promotion step of the online-learning cycle: the
// swap barrier (held exclusively here, shared by every ingest) means no
// batch is ever scored by two versions — batches in flight drain first,
// batches arriving during the swap score entirely on the new version.
//
// Per-drive monitor state migrates: severity, last hour, quality
// ledgers and retraining history survive, while the smoothing windows
// reset (scores from different model versions must never be median-
// filtered together). A drive therefore re-enters its smoothing ramp
// under the new models and alerts only on a further escalation, so a
// swap never re-alerts a stable fleet wholesale.
//
// The swap validates and stages every shard before committing any of
// them: on error the store still serves the old version unchanged.
func (s *Store) SwapModels(models []monitor.GroupModel, norm *smart.Normalizer, version int) error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if version <= s.version {
		return fmt.Errorf("fleet: swap to version %d refused: serving version %d is not older", version, s.version)
	}

	// Stage: build one replacement monitor per shard with every drive
	// migrated. Ingest is excluded by the barrier, but queries still
	// read shards, so each shard locks while its state is copied out.
	staged := make([]*monitor.Monitor, len(s.shards))
	for si, sh := range s.shards {
		mon, err := monitor.New(models, norm, s.cfg.Monitor)
		if err != nil {
			return fmt.Errorf("fleet: swap to version %d: building shard %d: %w", version, si, err)
		}
		sh.mu.Lock()
		drives := sh.mon.ExportDrives()
		sh.mu.Unlock()
		for id, ds := range drives {
			if ds.Tracked {
				// Reset the smoothing windows to one empty window per
				// new model; everything else carries over.
				ds.Recent = make([][]float64, len(models))
			}
			if err := mon.ImportDrive(id, ds); err != nil {
				return fmt.Errorf("fleet: swap to version %d: migrating shard %d drive %d: %w", version, si, id, err)
			}
		}
		staged[si] = mon
	}

	// Commit: infallible pointer swaps.
	for si, sh := range s.shards {
		sh.mu.Lock()
		sh.mon = staged[si]
		sh.mu.Unlock()
	}
	s.models = models
	s.norm = norm
	s.version = version
	return nil
}
