package fleet

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"disksig/internal/core"
	"disksig/internal/monitor"
	"disksig/internal/regression"
	"disksig/internal/smart"
)

// shiftPredictor scores records by RRER plus a constant offset — a
// "retrained" model whose scores differ from rampPredictor's, so tests
// can tell which version scored a record.
type shiftPredictor struct{ off float64 }

func (p shiftPredictor) Predict(x []float64) float64 { return x[smart.RRER] + p.off }

func swappedModels(off float64) []monitor.GroupModel {
	return []monitor.GroupModel{{
		Group:     1,
		Type:      core.Logical,
		Form:      regression.FormQuadratic,
		WindowD:   12,
		Predictor: shiftPredictor{off: off},
	}}
}

func TestSwapModelsVersioning(t *testing.T) {
	s := testStore(t, Config{Shards: 4})
	if v := s.ModelVersion(); v != 1 {
		t.Fatalf("fresh store ModelVersion = %d, want 1", v)
	}
	// Same or older version: refused, store unchanged.
	for _, v := range []int{0, 1} {
		if err := s.SwapModels(swappedModels(0.5), testNormalizer(), v); err == nil {
			t.Fatalf("swap to version %d accepted, want refusal", v)
		}
	}
	if v := s.ModelVersion(); v != 1 {
		t.Fatalf("ModelVersion = %d after refused swaps, want 1", v)
	}
	if err := s.SwapModels(swappedModels(0.5), testNormalizer(), 2); err != nil {
		t.Fatal(err)
	}
	if v := s.ModelVersion(); v != 2 {
		t.Fatalf("ModelVersion = %d after swap, want 2", v)
	}
	m := s.Models()
	if len(m) != 1 {
		t.Fatalf("Models() = %d models, want 1", len(m))
	}
	if _, ok := m[0].Predictor.(shiftPredictor); !ok {
		t.Fatalf("Models()[0].Predictor = %T, want the swapped-in shiftPredictor", m[0].Predictor)
	}
	// Versions need not be consecutive — only increasing.
	if err := s.SwapModels(swappedModels(0.25), testNormalizer(), 7); err != nil {
		t.Fatal(err)
	}
	if v := s.ModelVersion(); v != 7 {
		t.Fatalf("ModelVersion = %d, want 7", v)
	}
}

func TestSwapPreservesStatePerDrive(t *testing.T) {
	s := testStore(t, Config{Shards: 2, Monitor: monitor.Config{Smoothing: 1}, HistoryHours: 100})
	s.Ingest("SER-1", record(0, 0.9))
	if a := s.Ingest("SER-1", record(1, -0.3)); a == nil || a.ModelVersion != 1 || a.Severity != monitor.Warning {
		t.Fatalf("pre-swap alert = %+v, want version-1 warning", a)
	}
	before, _ := s.Drive("SER-1")

	// The swap itself re-scores nothing: severity and last-hour carry
	// over as-is.
	if err := s.SwapModels(swappedModels(0.25), testNormalizer(), 2); err != nil {
		t.Fatal(err)
	}
	after, ok := s.Drive("SER-1")
	if !ok {
		t.Fatal("drive lost across swap")
	}
	if after.Severity != before.Severity || after.LastHour != before.LastHour {
		t.Fatalf("drive state across swap = %+v, want severity/hour of %+v", after, before)
	}
	// History survives the swap: the retrainer harvests across versions.
	st := s.ExportState()
	if len(st.Drives) != 1 || len(st.Drives[0].History) != 2 {
		t.Fatalf("exported history = %+v, want the 2 kept records", st.Drives)
	}
	// An old record is still stale after the swap (duplicate/stale
	// decisions are model-version-independent).
	if a := s.Ingest("SER-1", record(0, -0.9)); a != nil {
		t.Fatalf("stale record alerted after swap: %+v", a)
	}
	// A further escalation under the new models alerts, tagged with the
	// new version (score -0.9 + 0.25 = -0.65, past the critical
	// threshold).
	a := s.Ingest("SER-1", record(2, -0.9))
	if a == nil || a.ModelVersion != 2 || a.Severity != monitor.Critical {
		t.Fatalf("post-swap alert = %+v, want version-2 critical", a)
	}
}

// TestSwapBarrierUnderLoad hammers IngestBatch from several goroutines
// while model swaps land in between: the barrier must give every batch
// exactly one model version — the batch's own alerts all tagged with it
// — at every shard layout.
func TestSwapBarrierUnderLoad(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := testStore(t, Config{Shards: shards, Workers: 4, Monitor: monitor.Config{Smoothing: 1}})
			// Each batch uses fresh serials ramping to failure, so every
			// batch raises alerts no matter when it runs.
			batch := func(tag int) []Observation {
				var obs []Observation
				for d := 0; d < 20; d++ {
					serial := fmt.Sprintf("S%03d-%04d", tag, d)
					for h := 0; h < 4; h++ {
						obs = append(obs, Observation{Serial: serial, Record: record(h, 0.9-float64(h))})
					}
				}
				return obs
			}

			const ingesters, batches = 4, 25
			results := make(chan BatchResult, ingesters*batches)
			var wg sync.WaitGroup
			for g := 0; g < ingesters; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < batches; i++ {
						results <- s.IngestBatch(batch(g*batches + i))
					}
				}(g)
			}
			// Swaps race the ingest load; each lands between two batches,
			// never inside one.
			for v := 2; v <= 12; v++ {
				if err := s.SwapModels(swappedModels(float64(v)/100), testNormalizer(), v); err != nil {
					t.Error(err)
				}
			}
			wg.Wait()
			close(results)

			versions := map[int]int{}
			for res := range results {
				if res.ModelVersion < 1 || res.ModelVersion > 12 {
					t.Fatalf("batch scored by impossible version %d", res.ModelVersion)
				}
				versions[res.ModelVersion]++
				if len(res.Alerts) == 0 {
					t.Fatal("a batch of fresh degrading drives raised no alerts")
				}
				for _, a := range res.Alerts {
					if a.ModelVersion != res.ModelVersion {
						t.Fatalf("alert version %d inside a version-%d batch: the barrier leaked a swap mid-batch",
							a.ModelVersion, res.ModelVersion)
					}
				}
			}
			if v := s.ModelVersion(); v != 12 {
				t.Fatalf("final ModelVersion = %d, want 12", v)
			}
		})
	}
}

// TestRestoreAfterSwap proves a swapped store round-trips through
// export/restore at a different shard count: same drives, same promoted
// version, bit-identical state.
func TestRestoreAfterSwap(t *testing.T) {
	cfg := Config{Shards: 4, Monitor: monitor.Config{Smoothing: 1}, HistoryHours: 50}
	s := testStore(t, cfg)
	s.IngestBatch(buildStream(30, 10))
	if err := s.SwapModels(swappedModels(0.5), testNormalizer(), 3); err != nil {
		t.Fatal(err)
	}
	// Post-swap traffic shapes state under the new version.
	for d := 0; d < 30; d++ {
		s.Ingest(fmt.Sprintf("SER-%04d", d), record(11, 0.4))
	}

	st := s.ExportState()
	if st.ModelVersion != 3 {
		t.Fatalf("exported ModelVersion = %d, want 3", st.ModelVersion)
	}
	restored, err := Restore(st, Config{Shards: 16, Workers: 2, HistoryHours: 50})
	if err != nil {
		t.Fatal(err)
	}
	if v := restored.ModelVersion(); v != 3 {
		t.Fatalf("restored ModelVersion = %d, want 3", v)
	}
	if !reflect.DeepEqual(st, restored.ExportState()) {
		t.Fatal("restored state differs from exported state")
	}
	// The restored store keeps scoring under the promoted models, and a
	// swap to a version at or below the restored one is still refused.
	if err := restored.SwapModels(swappedModels(0.1), testNormalizer(), 3); err == nil {
		t.Fatal("restored store accepted a swap to its own version")
	}
	if a := restored.Ingest("SER-0001", record(12, -3)); a == nil || a.ModelVersion != 3 {
		t.Fatalf("restored store alert = %+v, want version-3 alert", a)
	}
}
