package fleet

import (
	"sort"

	"disksig/internal/monitor"
)

// ShardStats is one shard's occupancy, the load-balance view of the
// FNV-1a serial hashing.
type ShardStats struct {
	Shard  int
	Drives int
}

// ClassSummary is one device class's share of the fleet roll-up.
type ClassSummary struct {
	// Drives is the number of tracked drives of this class.
	Drives int
	// BySeverity counts the class's drives per severity name.
	BySeverity map[string]int
	// AtRisk lists the class's most degraded drives, ascending by
	// degradation (ties by serial), capped by the Summary call's topN —
	// the per-class triage list: an SSD cliff and a slowly degrading
	// HDD must not compete for the same dashboard slots.
	AtRisk []DriveHealth
}

// Summary is the fleet-wide roll-up served by /v1/fleet/summary.
type Summary struct {
	// Drives is the number of tracked drives.
	Drives int
	// MaxHour is the newest sample hour seen (telemetry time); -1 before
	// any ingest.
	MaxHour int
	// BySeverity counts tracked drives per severity name.
	BySeverity map[string]int
	// ByType counts drives at Watch or worse per failure-type name of
	// their most pessimistic group model — the alert roll-up that tells
	// an operator which failure mode is trending.
	ByType map[string]int
	// ByClass rolls the fleet up per device class, keyed by class name.
	// Classes with no tracked drives have no entry.
	ByClass map[string]*ClassSummary
	// Shards is the per-shard occupancy.
	Shards []ShardStats
	// AtRisk lists the most degraded drives, ascending by degradation
	// (worst first, ties by serial), capped by the Summary call's topN.
	AtRisk []DriveHealth
}

// Summary computes the fleet-wide roll-up. topN caps the AtRisk list;
// <= 0 means no at-risk list. Shards are snapshotted one at a time, so
// the summary is per-shard consistent but not a global atomic cut —
// the right trade for a dashboard read that must not stall ingestion.
func (s *Store) Summary(topN int) Summary {
	sum := Summary{
		MaxHour:    -1,
		BySeverity: map[string]int{},
		ByType:     map[string]int{},
		ByClass:    map[string]*ClassSummary{},
		Shards:     make([]ShardStats, len(s.shards)),
	}
	var all []DriveHealth
	perClass := map[string][]DriveHealth{}
	for si, sh := range s.shards {
		sh.mu.Lock()
		snap := sh.mon.Snapshot()
		sum.Shards[si] = ShardStats{Shard: si, Drives: sh.mon.Tracked()}
		if sh.mon.Tracked() > 0 && sh.maxHour > sum.MaxHour {
			sum.MaxHour = sh.maxHour
		}
		for _, st := range snap {
			sum.Drives++
			sum.BySeverity[st.Severity.String()]++
			if st.Severity >= monitor.Watch {
				sum.ByType[st.Type.String()]++
			}
			cname := st.Class.String()
			cs := sum.ByClass[cname]
			if cs == nil {
				cs = &ClassSummary{BySeverity: map[string]int{}}
				sum.ByClass[cname] = cs
			}
			cs.Drives++
			cs.BySeverity[st.Severity.String()]++
			if topN > 0 {
				dh := DriveHealth{Serial: sh.serials[st.DriveID], DriveStatus: st}
				all = append(all, dh)
				perClass[cname] = append(perClass[cname], dh)
			}
		}
		sh.mu.Unlock()
	}
	if topN > 0 {
		sum.AtRisk = topAtRisk(all, topN)
		for cname, drives := range perClass {
			sum.ByClass[cname].AtRisk = topAtRisk(drives, topN)
		}
	}
	return sum
}

// topAtRisk sorts drives ascending by degradation (ties by serial) and
// keeps the worst topN.
func topAtRisk(all []DriveHealth, topN int) []DriveHealth {
	sort.Slice(all, func(i, j int) bool {
		if all[i].Degradation != all[j].Degradation {
			return all[i].Degradation < all[j].Degradation
		}
		return all[i].Serial < all[j].Serial
	})
	if len(all) > topN {
		all = all[:topN]
	}
	return all
}
