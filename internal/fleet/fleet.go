// Package fleet is the fleet-state layer of the serving subsystem: a
// sharded, lock-striped store that owns one monitor-backed drive state
// per serial number. Serials hash onto a power-of-two number of shards
// with FNV-1a; each shard guards its own monitor.Monitor with its own
// mutex, so concurrent ingestion and queries for different drives
// contend only when they land on the same shard. Batched ingestion fans
// out across shards via internal/parallel while preserving per-drive
// arrival order, which keeps the per-drive alert stream identical to a
// sequential replay at any shard and worker count.
package fleet

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"disksig/internal/core"
	"disksig/internal/monitor"
	"disksig/internal/parallel"
	"disksig/internal/quality"
	"disksig/internal/smart"
)

// Config parameterizes the store.
type Config struct {
	// Shards is the number of lock stripes, rounded up to the next power
	// of two; <= 0 means 8.
	Shards int
	// Monitor configures every shard's monitor identically (thresholds,
	// smoothing).
	Monitor monitor.Config
	// TTLHours makes EvictStale discard drives whose last sample is more
	// than this many hours behind the fleet's newest sample; <= 0
	// disables TTL eviction.
	TTLHours int
	// Workers bounds the shard fan-out of IngestBatch; <= 0 means
	// GOMAXPROCS. Like everywhere else in the pipeline it is a resource
	// bound, never a result knob.
	Workers int
	// HistoryHours retains each drive's most recent kept records (one
	// per distinct hour, keep-latest on repeats) as retraining
	// telemetry; <= 0 retains nothing. It is a deployment knob like
	// Shards: restoring a state into a store with a smaller cap
	// truncates to the newest records, and a cap of 0 drops history.
	HistoryHours int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	c.Shards = nextPowerOfTwo(c.Shards)
	return c
}

func nextPowerOfTwo(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Observation is one serial-identified SMART sample, the unit of
// ingestion.
type Observation struct {
	Serial string
	// Class is the drive's device class; the zero value is HDD, so
	// observations from class-unaware sources score against the legacy
	// models unchanged.
	Class  smart.DeviceClass
	Record smart.Record
}

// Alert is a monitor alert tagged with the drive's serial number (the
// embedded Alert.DriveID is the store's internal per-shard ID and is not
// meaningful to callers).
type Alert struct {
	Serial string
	// ModelVersion is the version of the model set that scored the
	// record and raised this alert. The swap barrier guarantees a batch
	// is scored by exactly one version.
	ModelVersion int
	monitor.Alert
}

// DriveHealth is the store's current view of one drive, the /v1/drives
// query result.
type DriveHealth struct {
	Serial string
	monitor.DriveStatus
}

// BatchResult accounts for one IngestBatch call.
type BatchResult struct {
	// Ingested is the number of observations submitted.
	Ingested int
	// Alerts holds the escalations raised by this batch, in submission
	// order (deterministic at any worker count).
	Alerts []Alert
	// Quality is this batch's quarantine ledger delta: RowsRead equals
	// Ingested, and RowsRead = RowsKept() + RowsQuarantined.
	Quality quality.Report
	// ModelVersion is the model-set version that scored every record of
	// this batch. The swap barrier excludes hot swaps for the duration
	// of a batch, so a single version always applies.
	ModelVersion int
}

// shard is one lock stripe: a monitor plus the serial <-> local-ID
// mapping. Local IDs are dense per shard and never reused, so a drive
// that is evicted and reports again restarts with fresh state.
type shard struct {
	mu      sync.Mutex
	mon     *monitor.Monitor
	ids     map[string]int
	serials []string
	maxHour int
	// history holds each drive's newest kept records (cap histCap, ring
	// semantics), the raw telemetry the retrainer harvests. Quarantined
	// and dropped records never enter it: it mirrors exactly the records
	// that shaped monitor state.
	history map[int][]smart.Record
	histCap int
}

// recordHistory appends a kept record to a drive's history ring. A
// repeated hour replaces the tail (keep-latest, matching the monitor's
// smoothing-window semantics); a full ring slides in place.
func (sh *shard) recordHistory(id int, rec smart.Record) {
	if sh.histCap <= 0 {
		return
	}
	h := sh.history[id]
	switch {
	case len(h) > 0 && h[len(h)-1].Hour == rec.Hour:
		h[len(h)-1] = rec
	case len(h) < sh.histCap:
		h = append(h, rec)
	default:
		copy(h, h[1:])
		h[len(h)-1] = rec
	}
	sh.history[id] = h
}

// Store is the sharded fleet-state store.
type Store struct {
	cfg Config
	// swapMu is the model-swap barrier: Ingest/IngestBatch/ExportState
	// hold it shared, SwapModels holds it exclusively. No batch is ever
	// scored by two model versions, and no export straddles a swap.
	swapMu sync.RWMutex
	// models and norms are retained (read-only) so ExportState can emit a
	// self-contained snapshot that restores without retraining. Guarded
	// by swapMu once the store is live.
	models []monitor.GroupModel
	norms  monitor.ClassNorms
	// version numbers the serving model set, starting at 1 for a
	// freshly trained store; every promoted swap must increase it.
	version int
	shards  []*shard
	mask    uint64
	// scratch pools the per-batch fan-out buffers of IngestBatch so the
	// steady-state ingest hot path allocates nothing per batch.
	scratch sync.Pool
}

// indexedAlert is an alert tagged with its submission index, so alerts
// collected per shard can be merged back into submission order.
type indexedAlert struct {
	idx   int
	alert Alert
}

// batchScratch is the reusable fan-out state of one IngestBatch call.
type batchScratch struct {
	perShard [][]int
	alerts   [][]indexedAlert
	quality  []qualityCounters
	merged   []indexedAlert
}

func (s *Store) getScratch() *batchScratch {
	if sc, ok := s.scratch.Get().(*batchScratch); ok {
		for i := range sc.perShard {
			sc.perShard[i] = sc.perShard[i][:0]
			sc.alerts[i] = sc.alerts[i][:0]
		}
		sc.merged = sc.merged[:0]
		return sc
	}
	return &batchScratch{
		perShard: make([][]int, len(s.shards)),
		alerts:   make([][]indexedAlert, len(s.shards)),
		quality:  make([]qualityCounters, len(s.shards)),
		merged:   nil,
	}
}

// New builds a store whose shards each score drives with the given group
// models and normalizer (shared read-only across shards; predictors must
// be safe for concurrent Predict calls, which trees and forests are).
// The models must be HDD-class; a mixed fleet uses NewMulti.
func New(models []monitor.GroupModel, norm *smart.Normalizer, cfg Config) (*Store, error) {
	for _, m := range models {
		if m.Class != smart.HDD {
			return nil, fmt.Errorf("fleet: group %d is %v-class; a mixed model set needs NewMulti", m.Group, m.Class)
		}
	}
	return NewMulti(models, monitor.ClassNorms{HDD: norm}, cfg)
}

// NewMulti builds a store serving a heterogeneous fleet: models carry
// their device class and norms holds one fitted normalizer per served
// class. Observations are scored only against models of their own
// class.
func NewMulti(models []monitor.GroupModel, norms monitor.ClassNorms, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	shards := make([]*shard, cfg.Shards)
	for i := range shards {
		mon, err := monitor.NewMulti(models, norms, cfg.Monitor)
		if err != nil {
			return nil, fmt.Errorf("fleet: building shard %d: %w", i, err)
		}
		shards[i] = &shard{mon: mon, ids: map[string]int{}, maxHour: math.MinInt,
			history: map[int][]smart.Record{}, histCap: cfg.HistoryHours}
	}
	return &Store{cfg: cfg, models: models, norms: norms, version: 1,
		shards: shards, mask: uint64(cfg.Shards - 1)}, nil
}

// FromCharacterization builds a store directly from a pipeline run that
// included the prediction stage.
func FromCharacterization(ch *core.Characterization, cfg Config) (*Store, error) {
	models, err := monitor.ModelsFromCharacterization(ch)
	if err != nil {
		return nil, err
	}
	return New(models, ch.Dataset.Norm, cfg)
}

// FromMixed builds a store directly from a class-partitioned pipeline
// run: per-class model sets and per-class normalizers.
func FromMixed(mc *core.MixedCharacterization, cfg Config) (*Store, error) {
	models, norms, err := monitor.ModelsFromMixed(mc)
	if err != nil {
		return nil, err
	}
	return NewMulti(models, norms, cfg)
}

// fnv1a is the 64-bit FNV-1a hash of the serial, the shard-selection
// function.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

func (s *Store) shardIndex(serial string) int { return int(fnv1a(serial) & s.mask) }

// Shards returns the shard count (always a power of two).
func (s *Store) Shards() int { return len(s.shards) }

// Ingest scores one observation, returning a non-nil alert when the
// drive's severity escalates. Defective telemetry is quarantined by the
// shard monitor and accounted in Quality.
func (s *Store) Ingest(serial string, rec smart.Record) *Alert {
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	sh := s.shards[s.shardIndex(serial)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	a := sh.ingestLocked(serial, smart.HDD, rec)
	if a != nil {
		a.ModelVersion = s.version
	}
	return a
}

func (sh *shard) ingestLocked(serial string, class smart.DeviceClass, rec smart.Record) *Alert {
	id, ok := sh.ids[serial]
	if !ok {
		id = len(sh.serials)
		sh.ids[serial] = id
		sh.serials = append(sh.serials, serial)
	}
	if rec.Hour > sh.maxHour {
		sh.maxHour = rec.Hour
	}
	a, kept := sh.mon.IngestClass(id, class, rec)
	if kept {
		sh.recordHistory(id, rec)
	}
	if a != nil {
		return &Alert{Serial: serial, Alert: *a}
	}
	return nil
}

// IngestBatch scores a batch of observations concurrently, one worker
// per occupied shard (bounded by Config.Workers). Observations of the
// same drive are applied in submission order, and the returned alerts
// are in submission order, so the result is identical to calling Ingest
// sequentially — sharding and workers change only the wall clock.
func (s *Store) IngestBatch(obs []Observation) BatchResult {
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	res := BatchResult{Ingested: len(obs), ModelVersion: s.version}
	if len(obs) == 0 {
		return res
	}
	sc := s.getScratch()
	defer s.scratch.Put(sc)
	for i, o := range obs {
		si := s.shardIndex(o.Serial)
		sc.perShard[si] = append(sc.perShard[si], i)
	}
	parallel.ForEach(s.cfg.Workers, len(s.shards), func(si int) {
		idxs := sc.perShard[si]
		if len(idxs) == 0 {
			sc.quality[si] = qualityCounters{}
			return
		}
		sh := s.shards[si]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		before := snapshotCounters(sh.mon.Quality())
		for _, i := range idxs {
			if a := sh.ingestLocked(obs[i].Serial, obs[i].Class, obs[i].Record); a != nil {
				sc.alerts[si] = append(sc.alerts[si], indexedAlert{idx: i, alert: *a})
			}
		}
		sc.quality[si] = deltaCounters(before, sh.mon.Quality())
	})
	for _, as := range sc.alerts {
		sc.merged = append(sc.merged, as...)
	}
	if len(sc.merged) > 1 {
		sort.Slice(sc.merged, func(i, j int) bool { return sc.merged[i].idx < sc.merged[j].idx })
	}
	res.Alerts = make([]Alert, len(sc.merged))
	for i, ia := range sc.merged {
		res.Alerts[i] = ia.alert
		res.Alerts[i].ModelVersion = s.version
	}
	for si := range sc.quality {
		d := &sc.quality[si]
		res.Quality.RowsRead += d.rowsRead
		res.Quality.RowsQuarantined += d.rowsQuarantined
		for k, n := range d.byKind {
			res.Quality.ByKind[k] += n
		}
	}
	return res
}

// qualityCounters is the subtractable part of a quality.Report, used to
// compute per-batch ledger deltas from the shards' cumulative ledgers.
// ByKind mirrors quality.Report's fixed per-kind array, so snapshots and
// deltas are plain value copies with no per-batch map churn.
type qualityCounters struct {
	rowsRead, rowsQuarantined int
	byKind                    [len(quality.Report{}.ByKind)]int
}

func snapshotCounters(r *quality.Report) qualityCounters {
	return qualityCounters{
		rowsRead:        r.RowsRead,
		rowsQuarantined: r.RowsQuarantined,
		byKind:          r.ByKind,
	}
}

// deltaCounters subtracts a snapshot from a shard's cumulative ledger,
// yielding the batch's contribution.
func deltaCounters(before qualityCounters, after *quality.Report) qualityCounters {
	d := qualityCounters{
		rowsRead:        after.RowsRead - before.rowsRead,
		rowsQuarantined: after.RowsQuarantined - before.rowsQuarantined,
	}
	for k := range after.ByKind {
		d.byKind[k] = after.ByKind[k] - before.byKind[k]
	}
	return d
}

// Drive returns the current health of one drive.
func (s *Store) Drive(serial string) (DriveHealth, bool) {
	sh := s.shards[s.shardIndex(serial)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	id, ok := sh.ids[serial]
	if !ok {
		return DriveHealth{}, false
	}
	st, ok := sh.mon.Status(id)
	if !ok {
		return DriveHealth{}, false
	}
	return DriveHealth{Serial: serial, DriveStatus: st}, true
}

// Remove discards a decommissioned drive's state, reporting whether the
// drive was tracked.
func (s *Store) Remove(serial string) bool {
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	sh := s.shards[s.shardIndex(serial)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	id, ok := sh.ids[serial]
	if !ok {
		return false
	}
	delete(sh.ids, serial)
	delete(sh.history, id)
	return sh.mon.Forget(id)
}

// Tracked returns the number of drives currently tracked across all
// shards.
func (s *Store) Tracked() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.mon.Tracked()
		sh.mu.Unlock()
	}
	return n
}

// MaxHour returns the newest sample hour seen fleet-wide, or false when
// nothing has been ingested.
func (s *Store) MaxHour() (int, bool) {
	max, any := math.MinInt, false
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.mon.Tracked() > 0 || sh.maxHour > math.MinInt {
			any = true
			if sh.maxHour > max {
				max = sh.maxHour
			}
		}
		sh.mu.Unlock()
	}
	return max, any
}

// EvictStale discards drives whose last sample is more than
// Config.TTLHours behind the fleet's newest sample, returning how many
// were evicted. With TTLHours <= 0 it is a no-op. Time is telemetry
// time, not wall clock, so replayed fleets age deterministically.
func (s *Store) EvictStale() int {
	if s.cfg.TTLHours <= 0 {
		return 0
	}
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	max, ok := s.MaxHour()
	if !ok {
		return 0
	}
	cutoff := max - s.cfg.TTLHours
	if cutoff > max {
		// max - TTLHours underflowed (the fleet's newest hour is near
		// math.MinInt): a wrapped cutoff would evict every drive,
		// including one whose only sample just arrived. No hour can be
		// older than MinInt, so clamp to "evict nothing".
		cutoff = math.MinInt
	}
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, st := range sh.mon.Snapshot() {
			if st.LastHour < cutoff {
				sh.mon.Forget(st.DriveID)
				delete(sh.ids, sh.serials[st.DriveID])
				delete(sh.history, st.DriveID)
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Quality returns the merged quarantine ledger of every shard monitor.
func (s *Store) Quality() quality.Report {
	var rep quality.Report
	for _, sh := range s.shards {
		sh.mu.Lock()
		rep.Merge(sh.mon.Quality())
		sh.mu.Unlock()
	}
	return rep
}
