package fleet

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"disksig/internal/quality"
	"disksig/internal/smart"
)

func nonFiniteRecord(hour int) smart.Record {
	var v smart.Values
	v[smart.RRER] = math.NaN()
	return smart.Record{Hour: hour, Values: v}
}

// canonicalState strips best-effort diagnostics so states from
// different runs compare on exact content only.
func canonicalState(st *State) *State {
	st.Quality.StripDiagnostics()
	return st
}

// dirtyFleetStream builds a deterministic stream with clean records,
// duplicates, out-of-order records and non-finite records across many
// drives, exercising every ledger path.
func dirtyFleetStream(drives, hours int) []Observation {
	var obs []Observation
	for h := 0; h < hours; h++ {
		for d := 0; d < drives; d++ {
			serial := fmt.Sprintf("SN%04d", d)
			score := 1 - 2*float64(h)/float64(hours-1)
			switch {
			case d%7 == 3 && h%5 == 2:
				obs = append(obs, Observation{Serial: serial, Record: nonFiniteRecord(h)})
			case d%5 == 1 && h%4 == 3:
				obs = append(obs, Observation{Serial: serial, Record: record(h-2, score)}) // out of order
			case d%3 == 2 && h%6 == 1:
				obs = append(obs, Observation{Serial: serial, Record: record(h, score)})
				obs = append(obs, Observation{Serial: serial, Record: record(h, score-0.01)}) // duplicate
			default:
				obs = append(obs, Observation{Serial: serial, Record: record(h, score)})
			}
		}
	}
	// One drive that only ever reports garbage: ledger without tracking.
	obs = append(obs, Observation{Serial: "SN-GARBAGE", Record: nonFiniteRecord(0)})
	return obs
}

func TestExportRestoreRoundTrip(t *testing.T) {
	src := testStore(t, Config{Shards: 8, Workers: 4})
	src.IngestBatch(dirtyFleetStream(40, 12))

	st := src.ExportState()
	if len(st.Drives) != 41 {
		t.Fatalf("exported %d drives, want 41", len(st.Drives))
	}
	for i := 1; i < len(st.Drives); i++ {
		if st.Drives[i-1].Serial >= st.Drives[i].Serial {
			t.Fatal("exported drives not sorted by serial")
		}
	}
	if !st.HasHour {
		t.Fatal("exported state has no max hour")
	}

	// Restore at several shard/worker counts: the re-exported state must
	// be identical (modulo diagnostics) and behavior must match.
	for _, cfg := range []Config{
		{Shards: 1, Workers: 1},
		{Shards: 8, Workers: 4},
		{Shards: 32, Workers: 7},
	} {
		got, err := Restore(st, cfg)
		if err != nil {
			t.Fatalf("Restore(shards=%d): %v", cfg.Shards, err)
		}
		if got.Tracked() != src.Tracked() {
			t.Fatalf("Tracked = %d restored at %d shards, want %d", got.Tracked(), cfg.Shards, src.Tracked())
		}
		if h, ok := got.MaxHour(); !ok || h != st.MaxHour {
			t.Fatalf("MaxHour = %d,%v restored, want %d", h, ok, st.MaxHour)
		}
		want := canonicalState(src.ExportState())
		re := canonicalState(got.ExportState())
		if !reflect.DeepEqual(want, re) {
			t.Fatalf("state re-exported after restore at %d shards differs", cfg.Shards)
		}
		// Behavior parity: same follow-up batch, same alerts and deltas.
		next := dirtyFleetStream(40, 12)[:100]
		for i := range next {
			next[i].Record.Hour += 100
		}
		a := src.IngestBatch(next)
		b := got.IngestBatch(next)
		a.Quality.StripDiagnostics()
		b.Quality.StripDiagnostics()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("post-restore batch diverges at %d shards", cfg.Shards)
		}
		// Undo the parity batch on src so the next loop iteration compares
		// against the original exported state.
		src = testStore(t, Config{Shards: 8, Workers: 4})
		src.IngestBatch(dirtyFleetStream(40, 12))
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	src := testStore(t, Config{Shards: 4})
	src.IngestBatch(dirtyFleetStream(10, 6))
	base := src.ExportState()

	cases := []struct {
		name   string
		mutate func(*State)
	}{
		{"duplicate serial", func(st *State) { st.Drives = append(st.Drives, st.Drives[0]) }},
		{"empty serial", func(st *State) { st.Drives[0].Serial = "" }},
		{"ledger does not sum", func(st *State) { st.Quality.RowsRead++ }},
		{"bad severity", func(st *State) {
			for i := range st.Drives {
				if st.Drives[i].State.Tracked {
					st.Drives[i].State.Severity = 99
					return
				}
			}
			panic("no tracked drive in state")
		}},
		{"no models", func(st *State) { st.Models = nil }},
		{"nil normalizer", func(st *State) { st.Norm = nil }},
		{"drives without hour", func(st *State) { st.HasHour = false }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := src.ExportState()
			tc.mutate(st)
			if _, err := Restore(st, Config{Shards: 4}); err == nil {
				t.Fatal("corrupt state restored without error")
			}
		})
	}
	if _, err := Restore(base, Config{Shards: 4}); err != nil {
		t.Fatalf("pristine state failed to restore: %v", err)
	}
}

func TestRestoreEmptyFleet(t *testing.T) {
	src := testStore(t, Config{Shards: 4})
	got, err := Restore(src.ExportState(), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got.Tracked() != 0 {
		t.Fatalf("Tracked = %d for restored empty fleet", got.Tracked())
	}
	if _, ok := got.MaxHour(); ok {
		t.Fatal("restored empty fleet claims a max hour")
	}
}

func TestRemoveReleasesQuality(t *testing.T) {
	s := testStore(t, Config{Shards: 2})
	s.Ingest("A", record(0, 0.9))
	s.Ingest("A", nonFiniteRecord(1))
	s.Ingest("B", record(0, 0.9))
	if q := s.Quality(); q.RowsRead != 3 || q.RowsQuarantined != 1 {
		t.Fatalf("quality before Remove: %v", q.Summary())
	}
	if !s.Remove("A") {
		t.Fatal("Remove(A) = false")
	}
	q := s.Quality()
	if q.RowsRead != 1 || q.RowsQuarantined != 0 || q.Count(quality.NonFinite) != 0 {
		t.Fatalf("removed drive's quality contribution leaked: %v", q.Summary())
	}
	// Quarantine-only drive: Remove reports false (never tracked) but
	// must still release the accounting.
	s.Ingest("C", nonFiniteRecord(0))
	if s.Remove("C") {
		t.Fatal("Remove of a quarantine-only drive returned true")
	}
	if q := s.Quality(); q.RowsQuarantined != 0 {
		t.Fatalf("quarantine-only drive leaked on Remove: %v", q.Summary())
	}
}

func TestEvictStaleEmptyStore(t *testing.T) {
	s := testStore(t, Config{Shards: 2, TTLHours: 24})
	if n := s.EvictStale(); n != 0 {
		t.Fatalf("EvictStale on empty store evicted %d", n)
	}
}

func TestEvictStaleSingleDrive(t *testing.T) {
	// A drive whose only sample just arrived defines the fleet's newest
	// hour itself, so it can never be TTL-stale — whatever the hour.
	for _, hour := range []int{0, -5000, math.MinInt, math.MaxInt} {
		s := testStore(t, Config{Shards: 2, TTLHours: 24})
		s.Ingest("ONLY", record(hour, 0.9))
		if n := s.EvictStale(); n != 0 {
			t.Fatalf("EvictStale evicted the only drive (hour %d)", hour)
		}
		if _, ok := s.Drive("ONLY"); !ok {
			t.Fatalf("only drive lost after EvictStale (hour %d)", hour)
		}
	}
}

func TestEvictStaleMinIntDoesNotWrap(t *testing.T) {
	// Newest hour near MinInt: the cutoff subtraction underflows; a
	// wrapped cutoff would evict a fresh drive.
	s := testStore(t, Config{Shards: 2, TTLHours: 1000})
	s.Ingest("OLD", record(math.MinInt, 0.9))
	s.Ingest("NEW", record(math.MinInt+10, 0.9))
	if n := s.EvictStale(); n != 0 {
		t.Fatalf("underflowed cutoff evicted %d drives", n)
	}
}
