package fleet

import (
	"fmt"
	"reflect"
	"testing"

	"disksig/internal/monitor"
	"disksig/internal/smart"
)

// invPredictor inverts the RRER score so the SSD model disagrees with
// the HDD model on every record: any observation routed to the wrong
// class's models flips its alert stream and fails the invariance checks.
type invPredictor struct{}

func (invPredictor) Predict(x []float64) float64 { return -x[smart.RRER] }

func mixedModels() ([]monitor.GroupModel, monitor.ClassNorms) {
	hdd := testModels()[0]
	ssd := hdd
	ssd.Group = 2
	ssd.Class = smart.SSD
	ssd.Predictor = invPredictor{}
	return []monitor.GroupModel{hdd, ssd},
		monitor.ClassNorms{HDD: testNormalizer(), SSD: testNormalizer()}
}

// stripDriveIDs zeroes the per-shard internal drive IDs, which are not
// meaningful to callers and legitimately differ across shard layouts.
func stripDriveIDs(alerts []Alert) []Alert {
	out := append([]Alert(nil), alerts...)
	for i := range out {
		out[i].DriveID = 0
	}
	return out
}

func mixedTestStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	models, norms := mixedModels()
	s, err := NewMulti(models, norms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mixedStream interleaves degrading HDD drives, degrading SSD drives
// (scores inverted to match the inverted model), SSD cliff drives that
// stay healthy until a final sudden drop, and a class-mismatch
// observation that must be quarantined — one stream covering every
// class-aware ledger path.
func mixedStream(drives, hours int) []Observation {
	var obs []Observation
	for h := 0; h < hours; h++ {
		ramp := 1 - 2*float64(h)/float64(hours-1)
		for d := 0; d < drives; d++ {
			switch {
			case d%3 == 0:
				obs = append(obs, Observation{
					Serial: fmt.Sprintf("HDD%04d", d),
					Record: record(h, ramp),
				})
			case d%3 == 1:
				obs = append(obs, Observation{
					Serial: fmt.Sprintf("SSD%04d", d), Class: smart.SSD,
					Record: record(h, -ramp),
				})
			default:
				// Cliff SSD: flat healthy plateau, sudden death at the end.
				score := -0.9
				if h == hours-1 {
					score = 0.9
				}
				obs = append(obs, Observation{
					Serial: fmt.Sprintf("SSD%04d", d), Class: smart.SSD,
					Record: record(h, score),
				})
			}
		}
	}
	// An HDD drive reporting as SSD mid-stream: quarantined, not scored.
	obs = append(obs, Observation{Serial: "HDD0000", Class: smart.SSD, Record: record(hours, 0)})
	return obs
}

// TestMixedIngestShardWorkerInvariance extends the store's determinism
// guarantee to heterogeneous fleets: identical state and identical
// alert stream regardless of shard count or batch fan-out.
func TestMixedIngestShardWorkerInvariance(t *testing.T) {
	stream := mixedStream(30, 16)
	run := func(cfg Config) (*State, []Alert, int) {
		s := mixedTestStore(t, cfg)
		var alerts []Alert
		quarantined := 0
		for i := 0; i < len(stream); i += 100 {
			end := i + 100
			if end > len(stream) {
				end = len(stream)
			}
			res := s.IngestBatch(stream[i:end])
			alerts = append(alerts, res.Alerts...)
			quarantined += res.Quality.RowsQuarantined
		}
		return canonicalState(s.ExportState()), stripDriveIDs(alerts), quarantined
	}
	stA, alA, qA := run(Config{Shards: 2, Workers: 1, Monitor: monitor.Config{Smoothing: 1}})
	stB, alB, qB := run(Config{Shards: 32, Workers: 8, Monitor: monitor.Config{Smoothing: 1}})
	if !reflect.DeepEqual(stA, stB) {
		t.Error("mixed fleet state differs across shard/worker configs")
	}
	if !reflect.DeepEqual(alA, alB) {
		t.Errorf("alert streams differ: %d vs %d alerts", len(alA), len(alB))
	}
	if qA != qB || qA == 0 {
		t.Errorf("quarantine counts = %d vs %d, want equal and nonzero (class mismatch)", qA, qB)
	}
	// The stream must actually have exercised both classes' alerting.
	var hddAlerts, ssdAlerts int
	for _, a := range alA {
		if a.Class == smart.SSD {
			ssdAlerts++
		} else {
			hddAlerts++
		}
	}
	if hddAlerts == 0 || ssdAlerts == 0 {
		t.Fatalf("alert stream covers %d HDD / %d SSD alerts, want both nonzero", hddAlerts, ssdAlerts)
	}
}

// TestMixedSnapshotRestorePreservesClassModels round-trips a mixed
// fleet through ExportState/Restore at a different shard count and
// verifies the second half of the stream behaves identically — per-class
// models, the SSD normalizer and per-drive class tags all survive.
func TestMixedSnapshotRestorePreservesClassModels(t *testing.T) {
	stream := mixedStream(30, 16)
	half := len(stream) / 2
	cfg := Config{Shards: 8, Workers: 4, Monitor: monitor.Config{Smoothing: 1}}
	src := mixedTestStore(t, cfg)
	src.IngestBatch(stream[:half])

	st := src.ExportState()
	if st.SSDNorm == nil || !st.SSDNorm.Fitted() {
		t.Fatal("exported state lost the SSD normalizer")
	}
	classes := map[smart.DeviceClass]int{}
	for _, d := range st.Drives {
		classes[d.State.Class]++
	}
	if classes[smart.HDD] == 0 || classes[smart.SSD] == 0 {
		t.Fatalf("exported drive classes = %v, want both present", classes)
	}

	got, err := Restore(st, Config{Shards: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.ModelVersion() != src.ModelVersion() {
		t.Errorf("model version %d after restore, want %d", got.ModelVersion(), src.ModelVersion())
	}
	ra := src.IngestBatch(stream[half:])
	rb := got.IngestBatch(stream[half:])
	ra.Quality.StripDiagnostics()
	rb.Quality.StripDiagnostics()
	ra.Alerts = stripDriveIDs(ra.Alerts)
	rb.Alerts = stripDriveIDs(rb.Alerts)
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("post-restore mixed batch diverges from original store")
	}
	if !reflect.DeepEqual(canonicalState(src.ExportState()), canonicalState(got.ExportState())) {
		t.Fatal("final mixed states differ after restore")
	}
}

// TestSSDCliffCriticalInOneBatch pins sudden death at the batch layer:
// an SSD that falls off the cliff inside a single IngestBatch must
// surface a Critical alert in that same batch's result — not on some
// later poll, after the drive is already gone.
func TestSSDCliffCriticalInOneBatch(t *testing.T) {
	s := mixedTestStore(t, Config{Shards: 4, Monitor: monitor.Config{Smoothing: 1}})
	var obs []Observation
	for h := 0; h < 6; h++ {
		obs = append(obs, Observation{Serial: "SSD-CLIFF", Class: smart.SSD, Record: record(h, -0.9)})
	}
	obs = append(obs, Observation{Serial: "SSD-CLIFF", Class: smart.SSD, Record: record(6, 0.85)})
	res := s.IngestBatch(obs)
	if len(res.Alerts) != 1 {
		t.Fatalf("batch raised %d alerts, want exactly the cliff alert: %+v", len(res.Alerts), res.Alerts)
	}
	a := res.Alerts[0]
	if a.Serial != "SSD-CLIFF" || a.Class != smart.SSD {
		t.Errorf("alert identity = %s/%v, want SSD-CLIFF/ssd", a.Serial, a.Class)
	}
	if a.Severity != monitor.Critical {
		t.Errorf("cliff severity = %v, want straight to Critical", a.Severity)
	}
	if a.Hour != 6 {
		t.Errorf("cliff alert at hour %d, want 6", a.Hour)
	}
}
