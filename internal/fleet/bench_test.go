package fleet

import (
	"fmt"
	"testing"
)

// BenchmarkFleetIngest measures batched ingestion throughput across the
// shard × worker grid, the serving path's headline number (records/op is
// fixed at drives × hours, so ns/op divides straight into records/s).
func BenchmarkFleetIngest(b *testing.B) {
	const drives, hours = 256, 24
	obs := buildStream(drives, hours)
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(b *testing.B) {
				b.ReportAllocs()
				b.ReportMetric(float64(len(obs)), "recs/op")
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					s, err := New(testModels(), testNormalizer(), Config{Shards: shards, Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					res := s.IngestBatch(obs)
					if res.Ingested != len(obs) {
						b.Fatalf("ingested %d, want %d", res.Ingested, len(obs))
					}
				}
			})
		}
	}
}
