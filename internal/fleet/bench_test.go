package fleet

import (
	"fmt"
	"testing"
)

// BenchmarkFleetIngest measures batched ingestion throughput across the
// shard × worker grid, the serving path's headline number (records/op is
// fixed at drives × hours, so ns/op divides straight into records/s).
func BenchmarkFleetIngest(b *testing.B) {
	const drives, hours = 256, 24
	obs := buildStream(drives, hours)
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(b *testing.B) {
				b.ReportAllocs()
				b.ReportMetric(float64(len(obs)), "recs/op")
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					s, err := New(testModels(), testNormalizer(), Config{Shards: shards, Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					res := s.IngestBatch(obs)
					if res.Ingested != len(obs) {
						b.Fatalf("ingested %d, want %d", res.Ingested, len(obs))
					}
				}
			})
		}
	}
}

// BenchmarkIngestSteady measures the steady-state batch path the server
// sits on: every drive already tracked, every hour fresh, no
// quarantines and no escalations. This is where the <1 alloc/record
// budget of the binary ingest hot path is spent.
func BenchmarkIngestSteady(b *testing.B) {
	const drives, hours = 256, 4
	obs := make([]Observation, 0, drives*hours)
	serials := make([]string, drives)
	for d := range serials {
		serials[d] = fmt.Sprintf("SER-%04d", d)
	}
	for h := 0; h < hours; h++ {
		for d := 0; d < drives; d++ {
			obs = append(obs, Observation{Serial: serials[d], Record: record(h, 0.9)})
		}
	}
	s, err := New(testModels(), testNormalizer(), Config{Shards: 16, Workers: 8})
	if err != nil {
		b.Fatal(err)
	}
	if res := s.IngestBatch(obs); res.Ingested != len(obs) {
		b.Fatalf("warm-up ingested %d, want %d", res.Ingested, len(obs))
	}
	b.ReportAllocs()
	b.ReportMetric(float64(len(obs)), "recs/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range obs {
			obs[j].Record.Hour += hours
		}
		res := s.IngestBatch(obs)
		if res.Quality.RowsQuarantined != 0 {
			b.Fatalf("steady batch quarantined %d rows", res.Quality.RowsQuarantined)
		}
	}
	b.ReportMetric(float64(b.N*len(obs))/b.Elapsed().Seconds(), "records/s")
}
