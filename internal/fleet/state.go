package fleet

import (
	"fmt"
	"sort"

	"disksig/internal/monitor"
	"disksig/internal/parallel"
	"disksig/internal/quality"
	"disksig/internal/smart"
)

// DriveEntry is one drive's serialized state, keyed by serial number so
// the snapshot is independent of shard layout and internal drive IDs.
type DriveEntry struct {
	Serial string
	State  monitor.DriveState
	// History holds the drive's newest kept records (ascending hours),
	// the retraining telemetry retained under Config.HistoryHours. Nil
	// when history retention is off.
	History []smart.Record
}

// State is the serializable whole-fleet state: everything needed to
// rebuild a Store without retraining — trained group models, the fleet
// normalizer, the monitor thresholds, and every drive's monitor state
// and quality-ledger contribution. Drives are sorted by serial, so two
// stores with identical fleet state export identical States regardless
// of their shard or worker counts.
type State struct {
	// MonitorCfg is the threshold/smoothing configuration the state was
	// built under; restore reuses it (a different smoothing cap would
	// invalidate the serialized score windows).
	MonitorCfg monitor.Config
	// Models are the trained per-group scoring models; each carries its
	// device class (zero value HDD for pre-class snapshots).
	Models []monitor.GroupModel
	// Norm is the HDD-partition normalizer fitted during training.
	Norm *smart.Normalizer
	// SSDNorm is the SSD-partition normalizer; nil for a pure-HDD fleet,
	// which keeps the encoding of pre-class snapshots unchanged (gob
	// omits nil pointer fields).
	SSDNorm *smart.Normalizer
	// ModelVersion is the serving model-set version the state was
	// exported under. Old snapshots decode as 0; Restore maps that to 1
	// (the version every freshly trained store starts at).
	ModelVersion int
	// Drives holds per-drive state sorted by ascending serial.
	Drives []DriveEntry
	// Quality is the merged fleet ledger, kept as a restore-time
	// checksum: the per-drive ledgers must sum back to it.
	Quality quality.Report
	// MaxHour/HasHour preserve the fleet's newest observed hour, which
	// can exceed every tracked drive's LastHour (a quarantined record
	// still advances telemetry time).
	MaxHour int
	HasHour bool
}

// ExportState deep-copies the store's full state for serialization,
// collecting shards in parallel. Each shard is locked while it is
// copied, but the export is not a fleet-wide atomic cut: the caller
// must quiesce ingestion (the persistence layer's snapshot gate does)
// if a consistent point-in-time image is required.
func (s *Store) ExportState() *State {
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	st := &State{
		MonitorCfg:   s.cfg.Monitor,
		Models:       s.models,
		Norm:         s.norms.HDD,
		SSDNorm:      s.norms.SSD,
		ModelVersion: s.version,
	}
	perShard := parallel.Map(s.cfg.Workers, len(s.shards), func(si int) []DriveEntry {
		sh := s.shards[si]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		drives := sh.mon.ExportDrives()
		entries := make([]DriveEntry, 0, len(sh.ids))
		for serial, id := range sh.ids {
			if ds, ok := drives[id]; ok {
				e := DriveEntry{Serial: serial, State: ds}
				if h := sh.history[id]; len(h) > 0 {
					e.History = append([]smart.Record(nil), h...)
				}
				entries = append(entries, e)
			}
		}
		return entries
	})
	for _, entries := range perShard {
		st.Drives = append(st.Drives, entries...)
	}
	sortDriveEntries(st.Drives)
	st.Quality = s.Quality()
	st.MaxHour, st.HasHour = s.MaxHour()
	return st
}

func sortDriveEntries(entries []DriveEntry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Serial < entries[j].Serial })
}

// importHistory validates one drive's exported retraining history and
// installs it, truncating to the shard's cap — HistoryHours is a
// deployment knob, so a restore into a smaller cap keeps the newest
// records and a cap of 0 keeps none.
func (sh *shard) importHistory(id int, serial string, hist []smart.Record) error {
	for i := 1; i < len(hist); i++ {
		if hist[i].Hour <= hist[i-1].Hour {
			return fmt.Errorf("drive %s history hours not strictly increasing at index %d", serial, i)
		}
	}
	if sh.histCap <= 0 || len(hist) == 0 {
		return nil
	}
	if len(hist) > sh.histCap {
		hist = hist[len(hist)-sh.histCap:]
	}
	sh.history[id] = append([]smart.Record(nil), hist...)
	return nil
}

// Restore rebuilds a store from an exported State. The shard count,
// TTL and worker bound come from cfg (they are deployment knobs, free
// to change across restarts); the monitor configuration and trained
// models come from the state. Restoration validates as it goes — a
// corrupted state yields an error, never a panic — and finishes by
// checking that the per-drive ledgers sum back to the state's merged
// quality report. The restored store's behavior is bit-identical to
// the original's at any shard/worker count: same statuses, same alert
// decisions, same quality accounting.
func Restore(st *State, cfg Config) (*Store, error) {
	if st == nil {
		return nil, fmt.Errorf("fleet: restoring nil state")
	}
	cfg.Monitor = st.MonitorCfg
	store, err := NewMulti(st.Models, monitor.ClassNorms{HDD: st.Norm, SSD: st.SSDNorm}, cfg)
	if err != nil {
		return nil, fmt.Errorf("fleet: restoring: %w", err)
	}
	if st.ModelVersion > 0 {
		store.version = st.ModelVersion
	}
	perShard := make([][]DriveEntry, len(store.shards))
	seen := make(map[string]bool, len(st.Drives))
	for _, e := range st.Drives {
		if e.Serial == "" {
			return nil, fmt.Errorf("fleet: restoring: empty serial in state")
		}
		if seen[e.Serial] {
			return nil, fmt.Errorf("fleet: restoring: duplicate serial %q in state", e.Serial)
		}
		seen[e.Serial] = true
		si := store.shardIndex(e.Serial)
		perShard[si] = append(perShard[si], e)
	}
	err = parallel.ForEachErr(cfg.Workers, len(store.shards), func(si int) error {
		sh := store.shards[si]
		for _, e := range perShard[si] {
			id := len(sh.serials)
			sh.ids[e.Serial] = id
			sh.serials = append(sh.serials, e.Serial)
			if err := sh.mon.ImportDrive(id, e.State); err != nil {
				return fmt.Errorf("fleet: restoring drive %s: %w", e.Serial, err)
			}
			if err := sh.importHistory(id, e.Serial, e.History); err != nil {
				return fmt.Errorf("fleet: restoring: %w", err)
			}
			if e.State.Tracked && e.State.LastHour > sh.maxHour {
				sh.maxHour = e.State.LastHour
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if st.HasHour {
		// The fleet-wide newest hour can exceed every drive's LastHour
		// (quarantined records advance it); park the excess on shard 0 so
		// MaxHour() — and therefore EvictStale — sees the original value.
		if sh0 := store.shards[0]; st.MaxHour > sh0.maxHour {
			sh0.maxHour = st.MaxHour
		}
	} else if len(st.Drives) > 0 {
		return nil, fmt.Errorf("fleet: restoring: state has %d drives but no max hour", len(st.Drives))
	}
	if got := store.Quality(); !got.CountersEqual(&st.Quality) {
		return nil, fmt.Errorf("fleet: restoring: per-drive ledgers do not sum to the state's quality report (corrupt state)")
	}
	return store, nil
}

// ImportEntries merges an exported State's drives into a live store —
// the receive side of a shard handoff. Unlike Restore it does not build
// a fresh store: the receiving store keeps its own models, normalizer
// and monitor configuration (a handoff moves drive state between
// identically-trained nodes), and each drive's monitor state and
// quality-ledger contribution land exactly as exported, so the drive
// scores its next record as if it had never moved. The state's MaxHour
// surplus is absorbed too (a quarantined record can advance telemetry
// time past every surviving drive's LastHour, and eviction must not
// rejuvenate on a move).
//
// A serial that is already tracked is an error: the import aborts at the
// offending entry, leaving earlier entries imported (the merge is
// per-shard, not transactional). Callers must keep moving serials
// quiescent for the copy — the router's handoff gate does — so a
// conflict means an operator error, not a race to paper over.
func (s *Store) ImportEntries(st *State) (int, error) {
	if st == nil {
		return 0, fmt.Errorf("fleet: importing nil state")
	}
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	if len(st.Drives) > 0 && !st.HasHour {
		return 0, fmt.Errorf("fleet: importing: state has %d drives but no max hour", len(st.Drives))
	}
	perShard := make([][]DriveEntry, len(s.shards))
	seen := make(map[string]bool, len(st.Drives))
	for _, e := range st.Drives {
		if e.Serial == "" {
			return 0, fmt.Errorf("fleet: importing: empty serial in state")
		}
		if seen[e.Serial] {
			return 0, fmt.Errorf("fleet: importing: duplicate serial %q in state", e.Serial)
		}
		seen[e.Serial] = true
		si := s.shardIndex(e.Serial)
		perShard[si] = append(perShard[si], e)
	}
	imported := 0
	for si, entries := range perShard {
		if len(entries) == 0 {
			continue
		}
		sh := s.shards[si]
		sh.mu.Lock()
		for _, e := range entries {
			if _, exists := sh.ids[e.Serial]; exists {
				sh.mu.Unlock()
				return imported, fmt.Errorf("fleet: importing: serial %q already tracked", e.Serial)
			}
			id := len(sh.serials)
			sh.ids[e.Serial] = id
			sh.serials = append(sh.serials, e.Serial)
			if err := sh.mon.ImportDrive(id, e.State); err != nil {
				delete(sh.ids, e.Serial)
				sh.serials = sh.serials[:id]
				sh.mu.Unlock()
				return imported, fmt.Errorf("fleet: importing drive %s: %w", e.Serial, err)
			}
			if err := sh.importHistory(id, e.Serial, e.History); err != nil {
				sh.mu.Unlock()
				return imported, fmt.Errorf("fleet: importing: %w", err)
			}
			if e.State.Tracked && e.State.LastHour > sh.maxHour {
				sh.maxHour = e.State.LastHour
			}
			imported++
		}
		sh.mu.Unlock()
	}
	if st.HasHour {
		sh0 := s.shards[0]
		sh0.mu.Lock()
		if st.MaxHour > sh0.maxHour {
			sh0.maxHour = st.MaxHour
		}
		sh0.mu.Unlock()
	}
	return imported, nil
}
