// Package report renders the pipeline's tables and figures as plain text:
// aligned tables, bar histograms, line charts and scatter plots, all
// suitable for terminals and experiment logs.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, short
// rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v for strings/ints and %.4g for floats.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = formatFloat(x)
		case float32:
			cells[i] = formatFloat(float64(x))
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(cells...)
}

func formatFloat(x float64) string {
	if math.IsNaN(x) {
		return "-"
	}
	return fmt.Sprintf("%.4g", x)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// BarChart renders labeled horizontal bars scaled to maxWidth characters.
func BarChart(title string, labels []string, values []float64, maxWidth int) string {
	if maxWidth <= 0 {
		maxWidth = 50
	}
	var maxVal float64
	for _, v := range values {
		if v > maxVal {
			maxVal = v
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteString("\n")
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := 0
		if maxVal > 0 {
			n = int(v / maxVal * float64(maxWidth))
		}
		fmt.Fprintf(&b, "%-*s |%s %.4g\n", labelW, label, strings.Repeat("#", n), v)
	}
	return b.String()
}

// LineChart renders one or more equally-sampled series as an ASCII plot
// of the given height. Series are drawn with distinct glyphs; x runs left
// to right over the sample index.
func LineChart(title string, xs []float64, series map[string][]float64, width, height int) string {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 16
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, ys := range series {
		for _, y := range ys {
			if math.IsNaN(y) {
				continue
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
	}
	if math.IsInf(minY, 1) {
		return title + "\n(no data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}
	names := sortedKeys(series)
	for si, name := range names {
		ys := series[name]
		g := glyphs[si%len(glyphs)]
		for i, y := range ys {
			if math.IsNaN(y) || len(ys) == 0 {
				continue
			}
			col := 0
			if len(ys) > 1 {
				col = i * (width - 1) / (len(ys) - 1)
			}
			row := int((maxY - y) / (maxY - minY) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = g
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%10.4g +%s\n", maxY, "")
	for _, row := range grid {
		fmt.Fprintf(&b, "%10s |%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%10.4g +%s\n", minY, strings.Repeat("-", width))
	if len(xs) > 0 {
		fmt.Fprintf(&b, "%10s  x: %.4g .. %.4g\n", "", xs[0], xs[len(xs)-1])
	}
	for si, name := range names {
		fmt.Fprintf(&b, "%10s  %c = %s\n", "", glyphs[si%len(glyphs)], name)
	}
	return b.String()
}

// ScatterPlot renders labeled 2-D point groups (e.g. the Fig. 4 PCA
// clusters).
func ScatterPlot(title string, groups map[string][][2]float64, width, height int) string {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, pts := range groups {
		for _, p := range pts {
			minX = math.Min(minX, p[0])
			maxX = math.Max(maxX, p[0])
			minY = math.Min(minY, p[1])
			maxY = math.Max(maxY, p[1])
		}
	}
	if math.IsInf(minX, 1) {
		return title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	glyphs := []byte{'o', '^', 'x', '*', '#', '@'}
	names := sortedScatterKeys(groups)
	for gi, name := range names {
		g := glyphs[gi%len(glyphs)]
		for _, p := range groups[name] {
			col := int((p[0] - minX) / (maxX - minX) * float64(width-1))
			row := int((maxY - p[1]) / (maxY - minY) * float64(height-1))
			grid[row][col] = g
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteString("\n")
	}
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s\n", string(row))
	}
	fmt.Fprintf(&b, "+%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, " x: %.4g .. %.4g   y: %.4g .. %.4g\n", minX, maxX, minY, maxY)
	for gi, name := range names {
		fmt.Fprintf(&b, " %c = %s\n", glyphs[gi%len(glyphs)], name)
	}
	return b.String()
}

func sortedKeys(m map[string][]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

func sortedScatterKeys(m map[string][][2]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Markdown renders the table as GitHub-flavored markdown, the format used
// by the repository's EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("**")
		b.WriteString(t.Title)
		b.WriteString("**\n\n")
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
