package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	tb.AddRowf("gamma", math.NaN())
	out := tb.String()
	if !strings.Contains(out, "Table X") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.5") {
		t.Errorf("missing cells:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Error("missing separator")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + header + sep + 3 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	// NaN renders as "-".
	if !strings.Contains(lines[5], "-") {
		t.Errorf("NaN row: %q", lines[5])
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")             // short row padded
	tb.AddRow("1", "2", "3", "4") // long row truncated
	if len(tb.Rows[0]) != 3 || len(tb.Rows[1]) != 3 {
		t.Errorf("row lengths = %d, %d", len(tb.Rows[0]), len(tb.Rows[1]))
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("Bars", []string{"x", "longer"}, []float64{1, 2}, 10)
	if !strings.Contains(out, "Bars") || !strings.Contains(out, "##########") {
		t.Errorf("bar chart:\n%s", out)
	}
	// Zero max doesn't divide by zero.
	out = BarChart("", []string{"z"}, []float64{0}, 10)
	if !strings.Contains(out, "z") {
		t.Errorf("zero chart:\n%s", out)
	}
}

func TestLineChart(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	series := map[string][]float64{
		"up":   {0, 1, 2, 3},
		"down": {3, 2, 1, 0},
	}
	out := LineChart("Lines", xs, series, 40, 10)
	if !strings.Contains(out, "Lines") || !strings.Contains(out, "* = down") || !strings.Contains(out, "o = up") {
		t.Errorf("line chart:\n%s", out)
	}
	if !strings.Contains(out, "x: 0 .. 3") {
		t.Errorf("missing x range:\n%s", out)
	}
	// Empty series.
	if out := LineChart("E", nil, map[string][]float64{}, 10, 5); !strings.Contains(out, "no data") {
		t.Errorf("empty chart:\n%s", out)
	}
	// NaN values skipped without panic.
	out = LineChart("N", xs, map[string][]float64{"n": {math.NaN(), 1, math.NaN(), 2}}, 20, 5)
	if out == "" {
		t.Error("NaN chart empty")
	}
	// Constant series doesn't divide by zero.
	out = LineChart("C", xs, map[string][]float64{"c": {1, 1, 1, 1}}, 20, 5)
	if out == "" {
		t.Error("constant chart empty")
	}
}

func TestScatterPlot(t *testing.T) {
	groups := map[string][][2]float64{
		"a": {{0, 0}, {1, 1}},
		"b": {{2, 0}},
	}
	out := ScatterPlot("Scatter", groups, 30, 10)
	if !strings.Contains(out, "Scatter") || !strings.Contains(out, "o = a") || !strings.Contains(out, "^ = b") {
		t.Errorf("scatter:\n%s", out)
	}
	if out := ScatterPlot("E", map[string][][2]float64{}, 10, 5); !strings.Contains(out, "no data") {
		t.Errorf("empty scatter:\n%s", out)
	}
	// Degenerate ranges.
	out = ScatterPlot("D", map[string][][2]float64{"p": {{1, 1}}}, 10, 5)
	if out == "" {
		t.Error("degenerate scatter empty")
	}
}

func TestSortStrings(t *testing.T) {
	s := []string{"c", "a", "b"}
	sortStrings(s)
	if s[0] != "a" || s[2] != "c" {
		t.Errorf("sorted = %v", s)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("MD", "a", "b")
	tb.AddRow("x|y", "2")
	out := tb.Markdown()
	if !strings.Contains(out, "**MD**") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "| a | b |") || !strings.Contains(out, "| --- | --- |") {
		t.Errorf("missing header/separator:\n%s", out)
	}
	if !strings.Contains(out, `x\|y`) {
		t.Errorf("pipe not escaped:\n%s", out)
	}
}
