package tree

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Error("expected error for empty data")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, Config{}); err == nil {
		t.Error("expected error for length mismatch")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []float64{1, 2}, Config{}); err == nil {
		t.Error("expected error for ragged features")
	}
}

func TestStepFunction(t *testing.T) {
	// y = 0 for x < 5, y = 10 for x >= 5: one split suffices.
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		v := float64(i) / 10
		x = append(x, []float64{v})
		if v < 5 {
			y = append(y, 0)
		} else {
			y = append(y, 10)
		}
	}
	tr, err := Train(x, y, Config{MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{1}); got != 0 {
		t.Errorf("Predict(1) = %v, want 0", got)
	}
	if got := tr.Predict([]float64{9}); got != 10 {
		t.Errorf("Predict(9) = %v, want 10", got)
	}
	if tr.Leaves() != 2 || tr.Depth() != 1 {
		t.Errorf("leaves=%d depth=%d, want 2/1", tr.Leaves(), tr.Depth())
	}
}

func TestConstantTargetIsStump(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	tr, err := Train(x, y, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Leaves() != 1 {
		t.Errorf("leaves = %d, want 1 (no split on constant target)", tr.Leaves())
	}
	if got := tr.Predict([]float64{10}); got != 7 {
		t.Errorf("Predict = %v", got)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 10
		x = append(x, []float64{v})
		y = append(y, math.Sin(v))
	}
	tr, err := Train(x, y, Config{MaxDepth: 3, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 3 {
		t.Errorf("depth = %d, want <= 3", tr.Depth())
	}
}

func TestMinLeafRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		v := rng.Float64()
		x = append(x, []float64{v})
		y = append(y, v)
	}
	tr, err := Train(x, y, Config{MinLeaf: 30, MaxDepth: 20})
	if err != nil {
		t.Fatal(err)
	}
	counts := leafCounts(tr.root)
	for _, c := range counts {
		if c < 30 {
			t.Errorf("leaf with %d samples, want >= 30", c)
		}
	}
}

func leafCounts(n *node) []int {
	if n.feature < 0 {
		return []int{n.n}
	}
	return append(leafCounts(n.left), leafCounts(n.right)...)
}

func TestMultiFeatureSelectsInformative(t *testing.T) {
	// Feature 1 is pure noise; feature 0 determines y.
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a := rng.Float64()
		b := rng.Float64()
		x = append(x, []float64{a, b})
		if a < 0.5 {
			y = append(y, -1)
		} else {
			y = append(y, 1)
		}
	}
	tr, err := Train(x, y, Config{MinLeaf: 5})
	if err != nil {
		t.Fatal(err)
	}
	imp := tr.FeatureImportance(x, y)
	if !(imp[0] > 0.9) {
		t.Errorf("importance = %v, want feature 0 dominant", imp)
	}
	if s := imp[0] + imp[1]; math.Abs(s-1) > 1e-9 {
		t.Errorf("importance sums to %v", s)
	}
}

func TestFeatureImportanceStump(t *testing.T) {
	tr, err := Train([][]float64{{1}, {2}}, []float64{3, 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	imp := tr.FeatureImportance([][]float64{{1}, {2}}, []float64{3, 3})
	if imp[0] != 0 {
		t.Errorf("stump importance = %v", imp)
	}
}

// Property: leaf predictions are the mean of training targets routed to
// the leaf, so training RMSE never exceeds the target standard deviation.
func TestTrainingErrorBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			y[i] = x[i][0]*2 + rng.NormFloat64()*0.1
		}
		tr, err := Train(x, y, Config{MinLeaf: 2})
		if err != nil {
			return false
		}
		pred := tr.PredictAll(x)
		var mean float64
		for _, v := range y {
			mean += v
		}
		mean /= float64(n)
		var sseTree, sseMean float64
		for i := range y {
			sseTree += (pred[i] - y[i]) * (pred[i] - y[i])
			sseMean += (mean - y[i]) * (mean - y[i])
		}
		return sseTree <= sseMean+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPredictDimensionPanics(t *testing.T) {
	tr, _ := Train([][]float64{{1}, {2}}, []float64{1, 2}, Config{MinLeaf: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Predict([]float64{1, 2})
}

func TestRender(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		v := float64(i)
		x = append(x, []float64{v})
		if v < 25 {
			y = append(y, 0)
		} else {
			y = append(y, 1)
		}
	}
	tr, err := Train(x, y, Config{MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := tr.Render([]string{"POH"})
	if !strings.Contains(out, "POH <") {
		t.Errorf("render missing feature name:\n%s", out)
	}
	if !strings.Contains(out, "(100%)") {
		t.Errorf("render missing root share:\n%s", out)
	}
	// Generic names when nil.
	out2 := tr.Render(nil)
	if !strings.Contains(out2, "x0 <") {
		t.Errorf("render missing generic name:\n%s", out2)
	}
}

func TestDeepFitImprovesOverStump(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []float64
	for i := 0; i < 1000; i++ {
		v := rng.Float64() * 2 * math.Pi
		x = append(x, []float64{v})
		y = append(y, math.Sin(v))
	}
	shallow, _ := Train(x, y, Config{MaxDepth: 1, MinLeaf: 2})
	deep, _ := Train(x, y, Config{MaxDepth: 8, MinLeaf: 2})
	rmse := func(tr *Tree) float64 {
		var s float64
		for i := range x {
			d := tr.Predict(x[i]) - y[i]
			s += d * d
		}
		return math.Sqrt(s / float64(len(x)))
	}
	if !(rmse(deep) < rmse(shallow)/2) {
		t.Errorf("deep RMSE %v should be well below shallow %v", rmse(deep), rmse(shallow))
	}
}

func TestTrainWorkerEquivalence(t *testing.T) {
	// Large enough to cross both the parallel split-scan and the
	// concurrent-subtree thresholds.
	rng := rand.New(rand.NewSource(9))
	n, d := 6000, 4
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
		y[i] = 3*row[0] - 2*row[2] + rng.NormFloat64()*0.1
	}
	base, err := Train(x, y, Config{MaxDepth: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		tr, err := Train(x, y, Config{MaxDepth: 8, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Depth() != base.Depth() || tr.Leaves() != base.Leaves() {
			t.Fatalf("workers=%d: shape %d/%d, want %d/%d",
				workers, tr.Depth(), tr.Leaves(), base.Depth(), base.Leaves())
		}
		for i := range x {
			if tr.Predict(x[i]) != base.Predict(x[i]) {
				t.Fatalf("workers=%d: prediction differs at sample %d", workers, i)
			}
		}
	}
}
