package tree

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"
)

// trainedTree builds a non-trivial tree for round-trip tests.
func trainedTree(t *testing.T) *Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b})
		y = append(y, math.Sin(a)+0.3*b)
	}
	tr, err := Train(x, y, Config{MaxDepth: 6, MinLeaf: 3})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTreeGobRoundTrip(t *testing.T) {
	tr := trainedTree(t)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(tr); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var got Tree
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Leaves() != tr.Leaves() || got.Depth() != tr.Depth() {
		t.Fatalf("shape changed: leaves %d->%d depth %d->%d", tr.Leaves(), got.Leaves(), tr.Depth(), got.Depth())
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		p := []float64{rng.Float64() * 12, rng.Float64() * 12}
		if a, b := tr.Predict(p), got.Predict(p); a != b {
			t.Fatalf("Predict(%v) = %v after round trip, want %v", p, b, a)
		}
	}
}

func TestForestGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		x = append(x, []float64{a, b, c})
		y = append(y, 2*a-b+0.5*c)
	}
	f, err := TrainForest(x, y, ForestConfig{Trees: 8, Seed: 9, Tree: Config{MaxDepth: 5, MinLeaf: 2}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var got Forest
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := 0; i < 100; i++ {
		p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if a, b := f.Predict(p), got.Predict(p); a != b {
			t.Fatalf("forest Predict(%v) = %v after round trip, want %v", p, b, a)
		}
	}
}

// decodeTree round-trips a hand-built wire form through gob into a Tree.
func decodeTree(g gobTree) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&g); err != nil {
		return err
	}
	// Decode via the raw wire bytes GobDecode receives: re-encode as the
	// outer Tree frame by calling GobDecode on the inner payload.
	var t2 Tree
	return t2.GobDecode(buf.Bytes())
}

func TestTreeGobDecodeRejectsCorruption(t *testing.T) {
	leaf := flatNode{Feature: -1, Value: 1, N: 1, Left: -1, Right: -1}
	cases := []struct {
		name string
		g    gobTree
	}{
		{"empty nodes", gobTree{Features: 1}},
		{"zero features", gobTree{Features: 0, Nodes: []flatNode{leaf}}},
		{"child out of range", gobTree{Features: 1, Nodes: []flatNode{
			{Feature: 0, Threshold: 1, Left: 1, Right: 99}, leaf}}},
		{"negative child on split", gobTree{Features: 1, Nodes: []flatNode{
			{Feature: 0, Threshold: 1, Left: -1, Right: 1}, leaf}}},
		{"cycle", gobTree{Features: 1, Nodes: []flatNode{
			{Feature: 0, Threshold: 1, Left: 0, Right: 0}}}},
		{"shared child", gobTree{Features: 1, Nodes: []flatNode{
			{Feature: 0, Threshold: 1, Left: 1, Right: 1}, leaf}}},
		{"feature out of range", gobTree{Features: 1, Nodes: []flatNode{
			{Feature: 3, Threshold: 1, Left: 1, Right: 2}, leaf, leaf}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := decodeTree(tc.g); err == nil {
				t.Fatalf("decode accepted corrupt wire form %+v", tc.g)
			}
		})
	}
	if err := decodeTree(gobTree{Features: 1, Nodes: []flatNode{leaf}}); err != nil {
		t.Fatalf("decode rejected a valid stump: %v", err)
	}
	if err := decodeTree(gobTree{}); err == nil {
		t.Fatal("decode accepted an all-zero wire form")
	}
	var tr Tree
	if err := tr.GobDecode([]byte("not gob at all")); err == nil {
		t.Fatal("decode accepted garbage bytes")
	}
}
