package tree

import (
	"math"
	"math/rand"
	"testing"
)

func sineData(n int, rng *rand.Rand) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		v := rng.Float64() * 2 * math.Pi
		x[i] = []float64{v, rng.Float64()} // second feature is noise
		y[i] = math.Sin(v) + rng.NormFloat64()*0.05
	}
	return x, y
}

func rmseOf(pred, truth []float64) float64 {
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

func TestTrainForestErrors(t *testing.T) {
	if _, err := TrainForest(nil, nil, ForestConfig{}); err == nil {
		t.Error("expected error for empty data")
	}
	if _, err := TrainForest([][]float64{{1}}, []float64{1, 2}, ForestConfig{}); err == nil {
		t.Error("expected error for length mismatch")
	}
}

func TestForestFitsAndGeneralizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trainX, trainY := sineData(800, rng)
	testX, testY := sineData(200, rng)
	f, err := TrainForest(trainX, trainY, ForestConfig{Trees: 20, Tree: Config{MaxDepth: 8, MinLeaf: 5}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 20 {
		t.Errorf("size = %d", f.Size())
	}
	if r := rmseOf(f.PredictAll(testX), testY); r > 0.15 {
		t.Errorf("test RMSE = %v, want < 0.15", r)
	}
}

func TestForestBeatsSingleDeepTreeOnNoise(t *testing.T) {
	// With noisy targets and unconstrained depth, bagging reduces test
	// variance relative to one fully-grown tree.
	rng := rand.New(rand.NewSource(2))
	trainX, trainY := sineData(400, rng)
	testX, testY := sineData(400, rng)
	single, err := Train(trainX, trainY, Config{MaxDepth: 20, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := TrainForest(trainX, trainY, ForestConfig{
		Trees: 40, Tree: Config{MaxDepth: 20, MinLeaf: 1}, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := rmseOf(single.PredictAll(testX), testY)
	rf := rmseOf(forest.PredictAll(testX), testY)
	if !(rf < rs) {
		t.Errorf("forest RMSE %v should beat single deep tree %v", rf, rs)
	}
}

func TestForestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := sineData(200, rng)
	cfg := ForestConfig{Trees: 10, Seed: 7, Workers: 4, Tree: Config{MinLeaf: 2}}
	a, err := TrainForest(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := TrainForest(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		probe := []float64{rng.Float64() * 2 * math.Pi, rng.Float64()}
		if a.Predict(probe) != b.Predict(probe) {
			t.Fatal("forest not deterministic across worker counts")
		}
	}
}

func TestForestFeatureBagging(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := sineData(300, rng)
	f, err := TrainForest(x, y, ForestConfig{
		Trees: 10, FeatureFraction: 0.5, Seed: 1, Tree: Config{MinLeaf: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// With fraction 0.5 of 2 features, each tree sees exactly 1 feature.
	subsampled := 0
	for _, fs := range f.featureSets {
		if fs != nil {
			if len(fs) != 1 {
				t.Errorf("feature set = %v", fs)
			}
			subsampled++
		}
	}
	if subsampled != 10 {
		t.Errorf("subsampled trees = %d", subsampled)
	}
	// Predictions still work.
	if math.IsNaN(f.Predict([]float64{1, 0.5})) {
		t.Error("NaN prediction")
	}
}

func TestForestPredictDimensionPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := sineData(50, rng)
	f, err := TrainForest(x, y, ForestConfig{Trees: 2, Tree: Config{MinLeaf: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Predict([]float64{1})
}
