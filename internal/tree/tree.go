// Package tree implements CART least-squares regression trees, the
// method Sec. V-B uses for disk degradation prediction. Splits minimize
// the sum of squared errors of child-node means (Eq. 8); leaves predict
// the mean target of their training samples.
package tree

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"disksig/internal/parallel"
)

// Config controls tree induction.
type Config struct {
	// MaxDepth bounds the tree depth; 0 means 8.
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf; 0 means 5.
	MinLeaf int
	// MinImprovement is the minimum SSE reduction required to split;
	// 0 means 1e-7 of the root SSE.
	MinImprovement float64
	// Workers bounds induction parallelism — concurrent per-feature
	// split scans and concurrent subtree growth on large nodes; 0 means
	// GOMAXPROCS, 1 trains sequentially. The fitted tree is bit-for-bit
	// identical at every setting: feature scans are self-contained and
	// merged in feature order, and sibling subtrees share no state.
	Workers int
}

const (
	// splitParallelMin is the minimum samples×features at a node before
	// its split search fans out across features.
	splitParallelMin = 1 << 13
	// subtreeParallelMin is the minimum per-child sample count before
	// the two children grow concurrently.
	subtreeParallelMin = 1 << 11
)

func (c Config) withDefaults(rootSSE float64) Config {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 5
	}
	if c.MinImprovement <= 0 {
		c.MinImprovement = 1e-7 * (1 + rootSSE)
	}
	return c
}

// Tree is a trained regression tree.
type Tree struct {
	root     *node
	features int
}

type node struct {
	// feature < 0 marks a leaf.
	feature   int
	threshold float64
	left      *node
	right     *node
	value     float64 // mean target of the node's training samples
	n         int     // training samples reaching the node
}

// Train fits a regression tree to the row observations X with targets y.
func Train(x [][]float64, y []float64, cfg Config) (*Tree, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("tree: no training samples")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("tree: %d observations but %d targets", len(x), len(y))
	}
	d := len(x[0])
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("tree: observation %d has %d features, want %d", i, len(row), d)
		}
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	rootMean, rootSSE := meanSSE(idx, y)
	cfg = cfg.withDefaults(rootSSE)
	cfg.Workers = parallel.Workers(cfg.Workers)
	t := &Tree{features: d}
	t.root = grow(x, y, idx, rootMean, rootSSE, 0, cfg)
	return t, nil
}

// meanSSE computes the mean target and sum of squared errors of a sample
// subset.
func meanSSE(idx []int, y []float64) (mean, sse float64) {
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))
	for _, i := range idx {
		d := y[i] - mean
		sse += d * d
	}
	return mean, sse
}

func grow(x [][]float64, y []float64, idx []int, mean, sse float64, depth int, cfg Config) *node {
	n := &node{feature: -1, value: mean, n: len(idx)}
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf || sse <= cfg.MinImprovement {
		return n
	}
	feat, thr, gain, ok := bestSplit(x, y, idx, sse, cfg.MinLeaf, cfg.Workers)
	if !ok || gain < cfg.MinImprovement {
		return n
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x[i][feat] < thr {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	n.feature = feat
	n.threshold = thr
	lm, ls := meanSSE(leftIdx, y)
	rm, rs := meanSSE(rightIdx, y)
	if cfg.Workers > 1 && len(leftIdx) >= subtreeParallelMin && len(rightIdx) >= subtreeParallelMin {
		// Sibling subtrees read shared x/y but write disjoint nodes, so
		// growing them concurrently produces the same tree.
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.left = grow(x, y, leftIdx, lm, ls, depth+1, cfg)
		}()
		n.right = grow(x, y, rightIdx, rm, rs, depth+1, cfg)
		wg.Wait()
	} else {
		n.left = grow(x, y, leftIdx, lm, ls, depth+1, cfg)
		n.right = grow(x, y, rightIdx, rm, rs, depth+1, cfg)
	}
	return n
}

// featureSplit is one feature's best candidate split.
type featureSplit struct {
	sse       float64
	threshold float64
	ok        bool
}

// scanFeature finds feature f's lowest-SSE split over the node samples
// using sorted prefix sums. order is scratch space of len(idx). The scan
// is self-contained (it never reads other features' state), so scans can
// run concurrently and be merged in feature order with results identical
// to a single sequential pass.
func scanFeature(x [][]float64, y []float64, idx []int, f, minLeaf int, order []int) featureSplit {
	n := len(idx)
	copy(order, idx)
	sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
	// Prefix scan: left side accumulates sum and sum of squares.
	var lSum, lSq float64
	var tSum, tSq float64
	for _, i := range order {
		tSum += y[i]
		tSq += y[i] * y[i]
	}
	best := featureSplit{sse: math.Inf(1)}
	for k := 0; k < n-1; k++ {
		yi := y[order[k]]
		lSum += yi
		lSq += yi * yi
		// Can't split between equal feature values.
		if x[order[k]][f] == x[order[k+1]][f] {
			continue
		}
		nl, nr := k+1, n-k-1
		if nl < minLeaf || nr < minLeaf {
			continue
		}
		rSum := tSum - lSum
		rSq := tSq - lSq
		sse := (lSq - lSum*lSum/float64(nl)) + (rSq - rSum*rSum/float64(nr))
		if sse < best.sse {
			best = featureSplit{sse: sse, threshold: (x[order[k]][f] + x[order[k+1]][f]) / 2, ok: true}
		}
	}
	return best
}

// bestSplit scans every feature and threshold for the split that
// minimizes the summed child SSE. On large nodes the per-feature scans
// fan out across workers; merging their results in ascending feature
// order (strictly-lower SSE wins) reproduces the sequential pass
// exactly, ties and all.
func bestSplit(x [][]float64, y []float64, idx []int, parentSSE float64, minLeaf, workers int) (feature int, threshold, gain float64, ok bool) {
	n := len(idx)
	d := len(x[idx[0]])
	var splits []featureSplit
	if workers > 1 && n*d >= splitParallelMin {
		splits = parallel.Map(workers, d, func(f int) featureSplit {
			return scanFeature(x, y, idx, f, minLeaf, make([]int, n))
		})
	} else {
		order := make([]int, n)
		splits = make([]featureSplit, d)
		for f := 0; f < d; f++ {
			splits[f] = scanFeature(x, y, idx, f, minLeaf, order)
		}
	}
	bestSSE := math.Inf(1)
	for f, s := range splits {
		if s.ok && s.sse < bestSSE {
			bestSSE = s.sse
			feature = f
			threshold = s.threshold
			ok = true
		}
	}
	if !ok {
		return 0, 0, 0, false
	}
	return feature, threshold, parentSSE - bestSSE, true
}

// Predict returns the tree's prediction for one observation.
func (t *Tree) Predict(x []float64) float64 {
	if len(x) != t.features {
		panic(fmt.Sprintf("tree: observation has %d features, tree was trained on %d", len(x), t.features))
	}
	n := t.root
	for n.feature >= 0 {
		if x[n.feature] < n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// PredictAll predicts every observation.
func (t *Tree) PredictAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = t.Predict(row)
	}
	return out
}

// Depth returns the tree depth (a lone leaf has depth 0).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n.feature < 0 {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int { return leavesOf(t.root) }

func leavesOf(n *node) int {
	if n.feature < 0 {
		return 1
	}
	return leavesOf(n.left) + leavesOf(n.right)
}

// FeatureImportance returns, per feature, the total SSE reduction
// contributed by splits on that feature, normalized to sum to 1 (or all
// zeros for a stump). It identifies the "critical attributes" of Sec. V-B.
func (t *Tree) FeatureImportance(x [][]float64, y []float64) []float64 {
	imp := make([]float64, t.features)
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	accumulateImportance(t.root, x, y, idx, imp)
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

func accumulateImportance(n *node, x [][]float64, y []float64, idx []int, imp []float64) {
	if n.feature < 0 || len(idx) == 0 {
		return
	}
	_, parentSSE := meanSSE(idx, y)
	var left, right []int
	for _, i := range idx {
		if x[i][n.feature] < n.threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	var childSSE float64
	if len(left) > 0 {
		_, s := meanSSE(left, y)
		childSSE += s
	}
	if len(right) > 0 {
		_, s := meanSSE(right, y)
		childSSE += s
	}
	if gain := parentSSE - childSSE; gain > 0 {
		imp[n.feature] += gain
	}
	accumulateImportance(n.left, x, y, left, imp)
	accumulateImportance(n.right, x, y, right, imp)
}

// Render draws the tree in the style of Fig. 13: each node shows its mean
// target value and population share; internal nodes show their split.
// featNames labels the split features; nil uses generic names.
func (t *Tree) Render(featNames []string) string {
	var b strings.Builder
	total := t.root.n
	var walk func(n *node, prefix string, isLast bool)
	walk = func(n *node, prefix string, isLast bool) {
		connector := "├── "
		childPrefix := prefix + "│   "
		if isLast {
			connector = "└── "
			childPrefix = prefix + "    "
		}
		if prefix == "" {
			connector = ""
			childPrefix = ""
		}
		share := 100 * float64(n.n) / float64(total)
		if n.feature < 0 {
			fmt.Fprintf(&b, "%s%svalue=%.2f (%.0f%%)\n", prefix, connector, n.value, share)
			return
		}
		name := fmt.Sprintf("x%d", n.feature)
		if featNames != nil && n.feature < len(featNames) {
			name = featNames[n.feature]
		}
		fmt.Fprintf(&b, "%s%s%s < %.2f? value=%.2f (%.0f%%)\n", prefix, connector, name, n.threshold, n.value, share)
		walk(n.left, childPrefix, false)
		walk(n.right, childPrefix, true)
	}
	walk(t.root, "", true)
	return b.String()
}
