package tree

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// flatNode is the wire form of one tree node: the node slice is a
// preorder flattening with child links by index, which gob can encode
// (the in-memory node type is pointer-linked and unexported).
type flatNode struct {
	Feature   int
	Threshold float64
	Value     float64
	N         int
	// Left and Right index into the node slice; -1 marks a leaf side.
	Left, Right int
}

// gobTree is the gob wire form of a Tree.
type gobTree struct {
	Features int
	Nodes    []flatNode
}

// GobEncode implements gob.GobEncoder, flattening the tree so trained
// predictors can be persisted inside fleet snapshots.
func (t *Tree) GobEncode() ([]byte, error) {
	g := gobTree{Features: t.features}
	var flatten func(n *node) int
	flatten = func(n *node) int {
		i := len(g.Nodes)
		g.Nodes = append(g.Nodes, flatNode{
			Feature:   n.feature,
			Threshold: n.threshold,
			Value:     n.value,
			N:         n.n,
			Left:      -1,
			Right:     -1,
		})
		if n.feature >= 0 {
			g.Nodes[i].Left = flatten(n.left)
			g.Nodes[i].Right = flatten(n.right)
		}
		return i
	}
	if t.root != nil {
		flatten(t.root)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&g); err != nil {
		return nil, fmt.Errorf("tree: encoding: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder. The node slice is validated
// before reconstruction — child indices must stay in range and form a
// tree (each node reachable exactly once) — so a corrupted snapshot
// yields an error, never a panic or a cyclic structure.
func (t *Tree) GobDecode(data []byte) error {
	var g gobTree
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return fmt.Errorf("tree: decoding: %w", err)
	}
	if len(g.Nodes) == 0 {
		return fmt.Errorf("tree: decoding: empty node list")
	}
	if g.Features <= 0 {
		return fmt.Errorf("tree: decoding: invalid feature count %d", g.Features)
	}
	nodes := make([]node, len(g.Nodes))
	visited := make([]bool, len(g.Nodes))
	var build func(i int) (*node, error)
	build = func(i int) (*node, error) {
		if i < 0 || i >= len(g.Nodes) {
			return nil, fmt.Errorf("tree: decoding: node index %d out of range", i)
		}
		if visited[i] {
			return nil, fmt.Errorf("tree: decoding: node %d reachable twice (not a tree)", i)
		}
		visited[i] = true
		fn := g.Nodes[i]
		n := &nodes[i]
		n.feature, n.threshold, n.value, n.n = fn.Feature, fn.Threshold, fn.Value, fn.N
		if fn.Feature < 0 {
			return n, nil
		}
		if fn.Feature >= g.Features {
			return nil, fmt.Errorf("tree: decoding: node %d splits on feature %d of %d", i, fn.Feature, g.Features)
		}
		var err error
		if n.left, err = build(fn.Left); err != nil {
			return nil, err
		}
		if n.right, err = build(fn.Right); err != nil {
			return nil, err
		}
		return n, nil
	}
	root, err := build(0)
	if err != nil {
		return err
	}
	t.root = root
	t.features = g.Features
	return nil
}

// gobForest is the gob wire form of a Forest.
type gobForest struct {
	Features    int
	Trees       []*Tree
	FeatureSets [][]int
}

// GobEncode implements gob.GobEncoder for forests.
func (f *Forest) GobEncode() ([]byte, error) {
	g := gobForest{Features: f.features, Trees: f.trees, FeatureSets: f.featureSets}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&g); err != nil {
		return nil, fmt.Errorf("tree: encoding forest: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder for forests, validating member
// trees and feature-bag indices against the forest's feature count.
func (f *Forest) GobDecode(data []byte) error {
	var g gobForest
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return fmt.Errorf("tree: decoding forest: %w", err)
	}
	if g.Features <= 0 {
		return fmt.Errorf("tree: decoding forest: invalid feature count %d", g.Features)
	}
	if len(g.Trees) == 0 {
		return fmt.Errorf("tree: decoding forest: no trees")
	}
	if g.FeatureSets == nil {
		g.FeatureSets = make([][]int, len(g.Trees))
	}
	if len(g.FeatureSets) != len(g.Trees) {
		return fmt.Errorf("tree: decoding forest: %d feature sets for %d trees", len(g.FeatureSets), len(g.Trees))
	}
	for i, tr := range g.Trees {
		if tr == nil || tr.root == nil {
			return fmt.Errorf("tree: decoding forest: tree %d missing", i)
		}
		want := g.Features
		if g.FeatureSets[i] != nil {
			want = len(g.FeatureSets[i])
		}
		if tr.features != want {
			return fmt.Errorf("tree: decoding forest: tree %d has %d features, want %d", i, tr.features, want)
		}
		for _, fi := range g.FeatureSets[i] {
			if fi < 0 || fi >= g.Features {
				return fmt.Errorf("tree: decoding forest: tree %d bags feature %d of %d", i, fi, g.Features)
			}
		}
	}
	f.features = g.Features
	f.trees = g.Trees
	f.featureSets = g.FeatureSets
	return nil
}
