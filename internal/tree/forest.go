package tree

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// ForestConfig controls random-forest induction.
type ForestConfig struct {
	// Trees is the ensemble size; 0 means 30.
	Trees int
	// Tree configures each member tree.
	Tree Config
	// FeatureFraction is the fraction of features considered per split
	// tree (implemented as per-tree feature bagging); 0 means 1/sqrt of
	// one, i.e. all features. Values in (0, 1] subsample.
	FeatureFraction float64
	// SampleFraction is the bootstrap sample size as a fraction of the
	// training set; 0 means 1.0 (classic bootstrap with replacement).
	SampleFraction float64
	// Seed drives bootstrap sampling.
	Seed int64
	// Workers bounds training parallelism; 0 means GOMAXPROCS.
	Workers int
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.Trees <= 0 {
		c.Trees = 30
	}
	if c.FeatureFraction <= 0 || c.FeatureFraction > 1 {
		c.FeatureFraction = 1
	}
	if c.SampleFraction <= 0 || c.SampleFraction > 1 {
		c.SampleFraction = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Tree.Workers == 0 {
		// Trees already train concurrently; keep each induction
		// sequential unless the caller explicitly asks otherwise.
		c.Tree.Workers = 1
	}
	return c
}

// Forest is a bagged ensemble of regression trees (random forest), one of
// the additional prediction methods the paper lists as future work.
type Forest struct {
	trees    []*Tree
	features int
	// featureSets[i] holds the feature indices tree i was trained on
	// (per-tree feature bagging); nil means all features.
	featureSets [][]int
}

// TrainForest fits a random forest to the row observations x with targets
// y. Each tree trains on a bootstrap resample; when FeatureFraction < 1,
// each tree additionally sees a random feature subset.
func TrainForest(x [][]float64, y []float64, cfg ForestConfig) (*Forest, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("tree: no training samples")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("tree: %d observations but %d targets", len(x), len(y))
	}
	cfg = cfg.withDefaults()
	d := len(x[0])
	f := &Forest{
		trees:       make([]*Tree, cfg.Trees),
		features:    d,
		featureSets: make([][]int, cfg.Trees),
	}
	nFeat := int(cfg.FeatureFraction * float64(d))
	if nFeat < 1 {
		nFeat = 1
	}
	sampleN := int(cfg.SampleFraction * float64(len(x)))
	if sampleN < 1 {
		sampleN = 1
	}

	// Pre-draw all randomness sequentially so training is deterministic
	// regardless of scheduling.
	rng := rand.New(rand.NewSource(cfg.Seed))
	bootstraps := make([][]int, cfg.Trees)
	for t := range bootstraps {
		idx := make([]int, sampleN)
		for i := range idx {
			idx[i] = rng.Intn(len(x))
		}
		bootstraps[t] = idx
		if nFeat < d {
			f.featureSets[t] = rng.Perm(d)[:nFeat]
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, cfg.Trees)
	sem := make(chan struct{}, cfg.Workers)
	for t := 0; t < cfg.Trees; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			idx := bootstraps[t]
			bx := make([][]float64, len(idx))
			by := make([]float64, len(idx))
			feats := f.featureSets[t]
			for i, j := range idx {
				if feats == nil {
					bx[i] = x[j]
				} else {
					row := make([]float64, len(feats))
					for k, fi := range feats {
						row[k] = x[j][fi]
					}
					bx[i] = row
				}
				by[i] = y[j]
			}
			tr, err := Train(bx, by, cfg.Tree)
			if err != nil {
				errs[t] = err
				return
			}
			f.trees[t] = tr
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Predict returns the ensemble mean prediction for one observation.
func (f *Forest) Predict(x []float64) float64 {
	if len(x) != f.features {
		panic(fmt.Sprintf("tree: observation has %d features, forest was trained on %d", len(x), f.features))
	}
	var sum float64
	scratch := make([]float64, 0, f.features)
	for t, tr := range f.trees {
		feats := f.featureSets[t]
		if feats == nil {
			sum += tr.Predict(x)
			continue
		}
		scratch = scratch[:0]
		for _, fi := range feats {
			scratch = append(scratch, x[fi])
		}
		sum += tr.Predict(scratch)
	}
	return sum / float64(len(f.trees))
}

// PredictAll predicts every observation.
func (f *Forest) PredictAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = f.Predict(row)
	}
	return out
}

// Size returns the number of trees in the ensemble.
func (f *Forest) Size() int { return len(f.trees) }
