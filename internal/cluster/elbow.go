package cluster

import (
	"fmt"
	"math"

	"disksig/internal/parallel"
)

// ElbowPoint is the Fig. 3 statistic for one candidate cluster count.
type ElbowPoint struct {
	K                 int
	AvgWithinDistance float64
}

// Elbow runs K-means for every k in [1, maxK] and returns the average
// within-group distances, the curve the paper plots in Fig. 3 to choose
// the number of failure categories.
func Elbow(points [][]float64, maxK int, seed int64) ([]ElbowPoint, error) {
	return ElbowWithWorkers(points, maxK, seed, 0)
}

// ElbowWithWorkers is Elbow with an explicit parallelism bound
// (<= 0 means GOMAXPROCS). The candidate cluster counts are independent
// runs, so the sweep fans out across them; each k's K-means keeps the
// same (seed, restart)-derived RNG streams regardless of worker count,
// making the curve identical at every parallelism level.
func ElbowWithWorkers(points [][]float64, maxK int, seed int64, workers int) ([]ElbowPoint, error) {
	if maxK < 1 {
		return nil, fmt.Errorf("cluster: maxK must be >= 1, got %d", maxK)
	}
	if maxK > len(points) {
		maxK = len(points)
	}
	workers = parallel.Workers(workers)
	outer := workers
	if outer > maxK {
		outer = maxK
	}
	inner := workers / outer
	if inner < 1 {
		inner = 1
	}
	out := make([]ElbowPoint, maxK)
	err := parallel.ForEachErr(outer, maxK, func(i int) error {
		k := i + 1
		res, err := KMeans(points, KMeansConfig{K: k, Seed: seed, Workers: inner})
		if err != nil {
			return err
		}
		out[i] = ElbowPoint{K: k, AvgWithinDistance: res.AvgWithinDistance(points)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PickElbow selects the cluster count at the curve's elbow: the k whose
// point is farthest from the straight line connecting the first and last
// points of the curve (the "maximum distance to chord" criterion).
// It returns 1 for degenerate curves.
func PickElbow(curve []ElbowPoint) int {
	if len(curve) == 0 {
		return 1
	}
	if len(curve) < 3 {
		return curve[len(curve)-1].K
	}
	x0, y0 := float64(curve[0].K), curve[0].AvgWithinDistance
	x1, y1 := float64(curve[len(curve)-1].K), curve[len(curve)-1].AvgWithinDistance
	dx, dy := x1-x0, y1-y0
	norm := math.Hypot(dx, dy)
	if norm == 0 {
		return curve[0].K
	}
	bestK, bestDist := curve[0].K, -1.0
	for _, p := range curve {
		// Perpendicular distance from (k, d) to the chord.
		d := math.Abs(dy*float64(p.K)-dx*p.AvgWithinDistance+x1*y0-y1*x0) / norm
		if d > bestDist {
			bestK, bestDist = p.K, d
		}
	}
	return bestK
}

// Silhouette returns the mean silhouette coefficient of a clustering: for
// each point, (b-a)/max(a,b) with a the mean intra-cluster distance and b
// the smallest mean distance to another cluster. Values near 1 indicate
// compact, well-separated clusters. Returns NaN for clusterings with a
// single cluster or singleton-only clusters.
func Silhouette(points [][]float64, res *Result) float64 {
	if res.K < 2 {
		return math.NaN()
	}
	sizes := res.Sizes()
	var total float64
	var counted int
	for i, p := range points {
		own := res.Assign[i]
		if sizes[own] < 2 {
			continue
		}
		sums := make([]float64, res.K)
		for j, q := range points {
			if i == j {
				continue
			}
			sums[res.Assign[j]] += euclid(p, q)
		}
		a := sums[own] / float64(sizes[own]-1)
		b := math.Inf(1)
		for c := 0; c < res.K; c++ {
			if c == own || sizes[c] == 0 {
				continue
			}
			if m := sums[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
		counted++
	}
	if counted == 0 {
		return math.NaN()
	}
	return total / float64(counted)
}

// Agreement measures how consistently two clusterings of the same points
// group pairs together (the Rand index): the fraction of point pairs on
// which the clusterings agree (both together or both apart). The paper
// reports K-means and SVC "generate the same results"; this quantifies it.
func Agreement(a, b []int) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("cluster: Agreement length mismatch %d vs %d", len(a), len(b)))
	}
	n := len(a)
	if n < 2 {
		return 1
	}
	var agree, pairs int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameA := a[i] == a[j]
			sameB := b[i] == b[j]
			if sameA == sameB {
				agree++
			}
			pairs++
		}
	}
	return float64(agree) / float64(pairs)
}
