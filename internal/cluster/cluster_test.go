package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// threeBlobs generates three well-separated Gaussian blobs.
func threeBlobs(rng *rand.Rand, per int) (points [][]float64, labels []int) {
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	for c, center := range centers {
		for i := 0; i < per; i++ {
			points = append(points, []float64{
				center[0] + rng.NormFloat64()*0.5,
				center[1] + rng.NormFloat64()*0.5,
			})
			labels = append(labels, c)
		}
	}
	return points, labels
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points, truth := threeBlobs(rng, 40)
	res, err := KMeans(points, KMeansConfig{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatalf("K = %d", res.K)
	}
	if got := Agreement(res.Assign, truth); got < 0.99 {
		t.Errorf("agreement with ground truth = %v, want ~1", got)
	}
	sizes := res.Sizes()
	for c, s := range sizes {
		if s != 40 {
			t.Errorf("cluster %d size = %d, want 40", c, s)
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	pts := [][]float64{{1}, {2}}
	if _, err := KMeans(pts, KMeansConfig{K: 0}); err == nil {
		t.Error("expected error for K=0")
	}
	if _, err := KMeans(pts, KMeansConfig{K: 3}); err == nil {
		t.Error("expected error for K > n")
	}
	if _, err := KMeans([][]float64{{1}, {2, 3}}, KMeansConfig{K: 1}); err == nil {
		t.Error("expected error for ragged points")
	}
}

func TestKMeansK1Centroid(t *testing.T) {
	pts := [][]float64{{0, 0}, {2, 2}, {4, 4}}
	res, err := KMeans(pts, KMeansConfig{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Centroids[0][0], 2, 1e-9) || !almostEq(res.Centroids[0][1], 2, 1e-9) {
		t.Errorf("centroid = %v, want [2 2]", res.Centroids[0])
	}
	if res.AvgWithinDistance(pts) <= 0 {
		t.Error("avg within distance should be positive")
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestKMeansDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points, _ := threeBlobs(rng, 20)
	a, _ := KMeans(points, KMeansConfig{K: 3, Seed: 7})
	b, _ := KMeans(points, KMeansConfig{K: 3, Seed: 7})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestCentroidPoint(t *testing.T) {
	pts := [][]float64{{0}, {0.1}, {5}, {5.2}}
	res, err := KMeans(pts, KMeansConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		idx := res.CentroidPoint(pts, c)
		if idx < 0 || res.Assign[idx] != c {
			t.Errorf("CentroidPoint(%d) = %d", c, idx)
		}
	}
}

func TestMembers(t *testing.T) {
	res := &Result{K: 2, Assign: []int{0, 1, 0, 1, 0}}
	m := res.Members(0)
	if len(m) != 3 || m[0] != 0 || m[2] != 4 {
		t.Errorf("Members = %v", m)
	}
}

// Property: every point is assigned to its nearest centroid at
// convergence.
func TestKMeansNearestCentroidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		k := 2 + rng.Intn(3)
		res, err := KMeans(pts, KMeansConfig{K: k, Seed: seed})
		if err != nil {
			return false
		}
		for i, p := range pts {
			own := sqEuclid(p, res.Centroids[res.Assign[i]])
			for c := 0; c < k; c++ {
				if sqEuclid(p, res.Centroids[c]) < own-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestElbowCurveDecreasesAndPicks3(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	points, _ := threeBlobs(rng, 40)
	curve, err := Elbow(points, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 8 {
		t.Fatalf("curve length = %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].AvgWithinDistance > curve[i-1].AvgWithinDistance+1e-9 {
			t.Errorf("elbow curve increased at k=%d", curve[i].K)
		}
	}
	if got := PickElbow(curve); got != 3 {
		t.Errorf("PickElbow = %d, want 3", got)
	}
}

func TestElbowErrors(t *testing.T) {
	if _, err := Elbow([][]float64{{1}}, 0, 1); err == nil {
		t.Error("expected error for maxK=0")
	}
	// maxK clipped to n.
	curve, err := Elbow([][]float64{{1}, {2}}, 10, 1)
	if err != nil || len(curve) != 2 {
		t.Errorf("clipped curve = %v, %v", curve, err)
	}
}

func TestPickElbowDegenerate(t *testing.T) {
	if PickElbow(nil) != 1 {
		t.Error("empty curve should pick 1")
	}
	if PickElbow([]ElbowPoint{{K: 1, AvgWithinDistance: 5}}) != 1 {
		t.Error("single point should pick its k")
	}
	flat := []ElbowPoint{{1, 2}, {2, 2}, {3, 2}}
	if got := PickElbow(flat); got < 1 || got > 3 {
		t.Errorf("flat curve pick = %d", got)
	}
}

func TestSilhouetteSeparatedVsMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	points, truth := threeBlobs(rng, 25)
	good := &Result{K: 3, Assign: truth}
	mixed := &Result{K: 3, Assign: make([]int, len(points))}
	for i := range points {
		mixed.Assign[i] = i % 3
	}
	sGood := Silhouette(points, good)
	sMixed := Silhouette(points, mixed)
	if !(sGood > 0.8) {
		t.Errorf("silhouette of true clustering = %v, want > 0.8", sGood)
	}
	if !(sMixed < sGood) {
		t.Errorf("mixed silhouette %v should be below true %v", sMixed, sGood)
	}
	if !math.IsNaN(Silhouette(points, &Result{K: 1, Assign: make([]int, len(points))})) {
		t.Error("silhouette of single cluster should be NaN")
	}
}

func TestAgreement(t *testing.T) {
	a := []int{0, 0, 1, 1}
	if got := Agreement(a, a); got != 1 {
		t.Errorf("self agreement = %v", got)
	}
	relabeled := []int{1, 1, 0, 0}
	if got := Agreement(a, relabeled); got != 1 {
		t.Errorf("relabeled agreement = %v, want 1", got)
	}
	opposite := []int{0, 1, 0, 1}
	if got := Agreement(a, opposite); got >= 1 {
		t.Errorf("opposite agreement = %v, want < 1", got)
	}
	if got := Agreement([]int{0}, []int{5}); got != 1 {
		t.Errorf("single point agreement = %v", got)
	}
}

func TestAgreementMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Agreement([]int{0}, []int{0, 1})
}

func TestSVCRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	points, truth := threeBlobs(rng, 15)
	res, err := SVC(points, SVCConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatalf("SVC K = %d, want 3", res.K)
	}
	if got := Agreement(res.Assign, truth); got < 0.95 {
		t.Errorf("SVC agreement = %v", got)
	}
	// Cluster IDs ordered by size: equal sizes here, all 15.
	for c, s := range res.Sizes() {
		if s != 15 {
			t.Errorf("cluster %d size = %d", c, s)
		}
	}
}

func TestSVCAgreesWithKMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	points, _ := threeBlobs(rng, 15)
	km, err := KMeans(points, KMeansConfig{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := SVC(points, SVCConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := Agreement(km.Assign, svc.Assign); got < 0.95 {
		t.Errorf("KMeans/SVC agreement = %v, want ~1 (the paper's claim)", got)
	}
}

func TestSVCErrors(t *testing.T) {
	if _, err := SVC(nil, SVCConfig{}); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := SVC([][]float64{{1}, {1, 2}}, SVCConfig{}); err == nil {
		t.Error("expected error for ragged input")
	}
}

func TestSVCSingleCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var points [][]float64
	for i := 0; i < 20; i++ {
		points = append(points, []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3})
	}
	res, err := SVC(points, SVCConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Errorf("tight blob K = %d, want 1", res.K)
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(5)
	uf.union(0, 1)
	uf.union(3, 4)
	if uf.find(0) != uf.find(1) || uf.find(3) != uf.find(4) {
		t.Error("union failed")
	}
	if uf.find(0) == uf.find(3) {
		t.Error("separate components merged")
	}
	labels, k := uf.labelsBySize()
	if k != 3 {
		t.Errorf("components = %d, want 3", k)
	}
	if labels[0] != labels[1] || labels[3] != labels[4] {
		t.Error("labels inconsistent")
	}
	// The singleton {2} must have the last (smallest) label.
	if labels[2] != 2 {
		t.Errorf("singleton label = %d, want 2", labels[2])
	}
}

func TestKMeansWorkerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points, _ := threeBlobs(rng, 50)
	base, err := KMeans(points, KMeansConfig{K: 3, Seed: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		res, err := KMeans(points, KMeansConfig{K: 3, Seed: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := res.AvgWithinDistance(points), base.AvgWithinDistance(points); got != want {
			t.Fatalf("workers=%d: within-distance %v, want %v", workers, got, want)
		}
		for i := range res.Assign {
			if res.Assign[i] != base.Assign[i] {
				t.Fatalf("workers=%d: assignment differs at point %d", workers, i)
			}
		}
		for c := range res.Centroids {
			for j := range res.Centroids[c] {
				if res.Centroids[c][j] != base.Centroids[c][j] {
					t.Fatalf("workers=%d: centroid %d differs", workers, c)
				}
			}
		}
	}
}

func TestElbowWorkerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	points, _ := threeBlobs(rng, 30)
	base, err := ElbowWithWorkers(points, 6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		curve, err := ElbowWithWorkers(points, 6, 2, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range curve {
			if curve[i] != base[i] {
				t.Fatalf("workers=%d: elbow point %d = %+v, want %+v", workers, i, curve[i], base[i])
			}
		}
	}
}
