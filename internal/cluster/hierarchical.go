package cluster

import (
	"fmt"
	"math"
)

// Linkage selects how agglomerative clustering measures the distance
// between two clusters.
type Linkage int

const (
	// AverageLinkage uses the mean pairwise distance (UPGMA).
	AverageLinkage Linkage = iota
	// SingleLinkage uses the minimum pairwise distance.
	SingleLinkage
	// CompleteLinkage uses the maximum pairwise distance.
	CompleteLinkage
)

// String names the linkage.
func (l Linkage) String() string {
	switch l {
	case AverageLinkage:
		return "average"
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Hierarchical performs agglomerative clustering of points and cuts the
// dendrogram at k clusters. It is the third cross-check method (beyond
// K-means and SVC) for the failure categorization; a Lance–Williams
// update keeps the merge loop O(n²) per merge.
//
// Cluster IDs are ordered by decreasing cluster size. Centroids are the
// member means.
func Hierarchical(points [][]float64, k int, linkage Linkage) (*Result, error) {
	n := len(points)
	if k < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	if n < k {
		return nil, fmt.Errorf("cluster: %d points cannot form %d clusters", n, k)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}

	// Pairwise distance matrix between active clusters.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = euclid(points[i], points[j])
			}
		}
	}
	active := make([]bool, n)
	size := make([]int, n)
	uf := newUnionFind(n)
	for i := range active {
		active[i] = true
		size[i] = 1
	}

	for clusters := n; clusters > k; clusters-- {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if dist[i][j] < best {
					bi, bj, best = i, j, dist[i][j]
				}
			}
		}
		// Merge bj into bi; update distances by Lance–Williams.
		ni, nj := float64(size[bi]), float64(size[bj])
		for t := 0; t < n; t++ {
			if !active[t] || t == bi || t == bj {
				continue
			}
			var d float64
			switch linkage {
			case SingleLinkage:
				d = math.Min(dist[bi][t], dist[bj][t])
			case CompleteLinkage:
				d = math.Max(dist[bi][t], dist[bj][t])
			default: // average
				d = (ni*dist[bi][t] + nj*dist[bj][t]) / (ni + nj)
			}
			dist[bi][t] = d
			dist[t][bi] = d
		}
		size[bi] += size[bj]
		active[bj] = false
		uf.union(bi, bj)
	}

	assign, gotK := uf.labelsBySize()
	res := &Result{K: gotK, Assign: assign}
	res.Centroids = make([][]float64, gotK)
	counts := make([]int, gotK)
	for i, p := range points {
		c := assign[i]
		if res.Centroids[c] == nil {
			res.Centroids[c] = make([]float64, dim)
		}
		for d, v := range p {
			res.Centroids[c][d] += v
		}
		counts[c]++
	}
	for c := range res.Centroids {
		for d := range res.Centroids[c] {
			res.Centroids[c][d] /= float64(counts[c])
		}
	}
	return res, nil
}
