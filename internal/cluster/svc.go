package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// SVCConfig parameterizes Support Vector Clustering (Ben-Hur, Horn,
// Siegelmann & Vapnik), the method the paper cross-checks K-means against.
type SVCConfig struct {
	// Q is the Gaussian kernel width, K(a,b) = exp(-Q*||a-b||^2). If 0, a
	// data-driven default 1/median(||a-b||^2) is used.
	Q float64
	// C is the box constraint of the SVDD dual (soft-margin outlier
	// budget). If 0, 1.0 is used (no bounded support vectors).
	C float64
	// MaxPasses bounds the SMO-style optimization passes; 0 means 200.
	MaxPasses int
	// SegmentSamples is the number of points tested on each segment in
	// the cluster-labeling step; 0 means 12.
	SegmentSamples int
	// Seed drives pair selection in the optimizer.
	Seed int64
}

// SVC clusters points by support vector domain description: it finds the
// minimal enclosing sphere of the data in Gaussian-kernel feature space
// and labels two points as connected when the whole segment between them
// stays inside the sphere's pre-image contours. Connected components form
// the clusters. Cluster IDs are ordered by decreasing cluster size.
func SVC(points [][]float64, cfg SVCConfig) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: SVC requires at least one point")
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	q := cfg.Q
	if q <= 0 {
		q = defaultQ(points)
	}
	c := cfg.C
	if c <= 0 {
		c = 1
	}
	maxPasses := cfg.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 200
	}
	segs := cfg.SegmentSamples
	if segs <= 0 {
		segs = 12
	}

	// Kernel matrix. n is the number of failure records (hundreds), so a
	// dense matrix is fine.
	kern := make([][]float64, n)
	for i := range kern {
		kern[i] = make([]float64, n)
		for j := range kern[i] {
			kern[i][j] = math.Exp(-q * sqEuclid(points[i], points[j]))
		}
	}

	alpha := solveSVDD(kern, c, maxPasses, rand.New(rand.NewSource(cfg.Seed)))

	model := &svdd{points: points, alpha: alpha, q: q}
	model.finish(kern, c)

	// Label connected components: points i and j share a cluster when the
	// sampled segment between them stays inside the sphere.
	uf := newUnionFind(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if uf.find(i) == uf.find(j) {
				continue
			}
			if model.connected(points[i], points[j], segs) {
				uf.union(i, j)
			}
		}
	}
	assign, k := uf.labelsBySize()
	res := &Result{K: k, Assign: assign}
	res.Centroids = make([][]float64, k)
	counts := make([]int, k)
	for i, p := range points {
		cid := assign[i]
		if res.Centroids[cid] == nil {
			res.Centroids[cid] = make([]float64, dim)
		}
		for d, v := range p {
			res.Centroids[cid][d] += v
		}
		counts[cid]++
	}
	for cid := range res.Centroids {
		for d := range res.Centroids[cid] {
			res.Centroids[cid][d] /= float64(counts[cid])
		}
	}
	return res, nil
}

// defaultQ chooses the kernel width from the local data scale: the mean
// squared distance to the k-th nearest neighbor (k = 5). A local scale —
// rather than the median pairwise distance, which inter-cluster pairs
// dominate — keeps each cluster internally connected while separating
// clusters whose gap exceeds the local point spacing.
func defaultQ(points [][]float64) float64 {
	n := len(points)
	if n < 2 {
		return 1
	}
	k := 5
	if k > n-1 {
		k = n - 1
	}
	var total float64
	var counted int
	// Subsample reference points for large n; neighbors are always
	// searched over the full set.
	step := 1
	if n > 400 {
		step = n / 400
	}
	knn := make([]float64, 0, k)
	for i := 0; i < n; i += step {
		knn = knn[:0]
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := sqEuclid(points[i], points[j])
			// Insert into the running k smallest.
			if len(knn) < k {
				knn = append(knn, d)
				for x := len(knn) - 1; x > 0 && knn[x] < knn[x-1]; x-- {
					knn[x], knn[x-1] = knn[x-1], knn[x]
				}
			} else if d < knn[k-1] {
				knn[k-1] = d
				for x := k - 1; x > 0 && knn[x] < knn[x-1]; x-- {
					knn[x], knn[x-1] = knn[x-1], knn[x]
				}
			}
		}
		total += knn[len(knn)-1]
		counted++
	}
	scale := total / float64(counted)
	if scale <= 0 {
		return 1
	}
	return 1 / (2 * scale)
}

// solveSVDD maximizes the SVDD dual
//
//	W(a) = sum_i a_i K_ii - sum_ij a_i a_j K_ij,  0 <= a_i <= C, sum a_i = 1
//
// with SMO-style pairwise coordinate ascent (each update moves mass
// between two coefficients, preserving the simplex constraint).
func solveSVDD(kern [][]float64, c float64, maxPasses int, rng *rand.Rand) []float64 {
	n := len(kern)
	alpha := make([]float64, n)
	// Feasible start: uniform (respects 0 <= 1/n <= C since C*n >= 1).
	for i := range alpha {
		alpha[i] = 1 / float64(n)
	}
	// g_i = dW/da_i = K_ii - 2 sum_j a_j K_ij. Gaussian kernel: K_ii = 1.
	g := make([]float64, n)
	recompute := func() {
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += alpha[j] * kern[i][j]
			}
			g[i] = kern[i][i] - 2*s
		}
	}
	recompute()
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for t := 0; t < n; t++ {
			// Pick the most violating pair: max gradient among a_i < C,
			// min gradient among a_i > 0.
			up, down := -1, -1
			for i := 0; i < n; i++ {
				if alpha[i] < c-1e-12 && (up == -1 || g[i] > g[up]) {
					up = i
				}
				if alpha[i] > 1e-12 && (down == -1 || g[i] < g[down]) {
					down = i
				}
			}
			if up == -1 || down == -1 || up == down || g[up]-g[down] < 1e-10 {
				break
			}
			i, j := up, down
			denom := 2 * (kern[i][i] + kern[j][j] - 2*kern[i][j])
			var delta float64
			if denom <= 1e-12 {
				delta = alpha[j] // move everything
			} else {
				delta = (g[i] - g[j]) / denom
			}
			// Clip to the box: a_i + delta <= C, a_j - delta >= 0.
			if delta > c-alpha[i] {
				delta = c - alpha[i]
			}
			if delta > alpha[j] {
				delta = alpha[j]
			}
			if delta <= 1e-15 {
				break
			}
			alpha[i] += delta
			alpha[j] -= delta
			for k := 0; k < n; k++ {
				g[k] += -2 * delta * (kern[k][i] - kern[k][j])
			}
			improved = true
		}
		if !improved {
			break
		}
		_ = rng // reserved for randomized pair selection strategies
	}
	return alpha
}

// svdd is the trained sphere model used during labeling.
type svdd struct {
	points [][]float64
	alpha  []float64
	q      float64
	// aKa is sum_ij a_i a_j K_ij, precomputed.
	aKa float64
	// r2 is the squared sphere radius.
	r2 float64
}

func (m *svdd) finish(kern [][]float64, c float64) {
	n := len(m.alpha)
	for i := 0; i < n; i++ {
		if m.alpha[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			m.aKa += m.alpha[i] * m.alpha[j] * kern[i][j]
		}
	}
	// Radius: distance of an unbounded support vector (0 < a < C) to the
	// sphere center. Fall back to the max over all support vectors.
	var r2 float64
	found := false
	for i := 0; i < n; i++ {
		if m.alpha[i] > 1e-9 && m.alpha[i] < c-1e-9 {
			r2 = m.dist2(m.points[i])
			found = true
			break
		}
	}
	if !found {
		for i := 0; i < n; i++ {
			if m.alpha[i] > 1e-9 {
				if d := m.dist2(m.points[i]); d > r2 {
					r2 = d
				}
			}
		}
	}
	m.r2 = r2
}

// dist2 returns the squared feature-space distance of x to the sphere
// center: K(x,x) - 2 sum_j a_j K(x_j, x) + aKa.
func (m *svdd) dist2(x []float64) float64 {
	s := 0.0
	for j, a := range m.alpha {
		if a == 0 {
			continue
		}
		s += a * math.Exp(-m.q*sqEuclid(m.points[j], x))
	}
	return 1 - 2*s + m.aKa
}

// connected reports whether the straight segment between a and b stays
// inside the sphere at every sampled interior point.
func (m *svdd) connected(a, b []float64, samples int) bool {
	x := make([]float64, len(a))
	tol := m.r2 * 1.05 // small slack absorbs optimizer error
	for s := 1; s <= samples; s++ {
		t := float64(s) / float64(samples+1)
		for d := range x {
			x[d] = a[d]*(1-t) + b[d]*t
		}
		if m.dist2(x) > tol {
			return false
		}
	}
	return true
}

// unionFind is a standard disjoint-set forest.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// labelsBySize assigns dense cluster IDs ordered by decreasing component
// size and returns the labels and the cluster count.
func (u *unionFind) labelsBySize() ([]int, int) {
	n := len(u.parent)
	sizes := map[int]int{}
	for i := 0; i < n; i++ {
		sizes[u.find(i)]++
	}
	type comp struct{ root, size int }
	comps := make([]comp, 0, len(sizes))
	for r, s := range sizes {
		comps = append(comps, comp{r, s})
	}
	// Sort by size descending, root ascending for determinism.
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0; j-- {
			if comps[j].size > comps[j-1].size ||
				(comps[j].size == comps[j-1].size && comps[j].root < comps[j-1].root) {
				comps[j], comps[j-1] = comps[j-1], comps[j]
			} else {
				break
			}
		}
	}
	id := map[int]int{}
	for i, c := range comps {
		id[c.root] = i
	}
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = id[u.find(i)]
	}
	return labels, len(comps)
}
