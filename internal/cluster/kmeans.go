// Package cluster implements the clustering methods the paper uses to
// discover disk failure categories (Sec. IV-B): K-means with k-means++
// seeding, the average within-group distance statistic behind the Fig. 3
// elbow choice, Gaussian-kernel Support Vector Clustering as the
// cross-check method, and silhouette scores.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"disksig/internal/parallel"
)

// Result is a flat clustering of n points into k groups.
type Result struct {
	// K is the number of clusters.
	K int
	// Assign maps each point index to its cluster in [0, K).
	Assign []int
	// Centroids are the cluster mean vectors.
	Centroids [][]float64
	// Iterations is how many Lloyd iterations ran before convergence.
	Iterations int
}

// Sizes returns the number of points in each cluster.
func (r *Result) Sizes() []int {
	sizes := make([]int, r.K)
	for _, c := range r.Assign {
		sizes[c]++
	}
	return sizes
}

// Members returns the indices of the points in cluster c.
func (r *Result) Members(c int) []int {
	var out []int
	for i, a := range r.Assign {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

// AvgWithinDistance is the paper's Fig. 3 statistic: the mean Euclidean
// distance from each point to its cluster centroid.
func (r *Result) AvgWithinDistance(points [][]float64) float64 {
	if len(points) == 0 {
		return math.NaN()
	}
	var total float64
	for i, p := range points {
		total += euclid(p, r.Centroids[r.Assign[i]])
	}
	return total / float64(len(points))
}

// CentroidPoint returns, for cluster c, the index of the member point
// closest to the centroid (the paper's "centroid failure" drive).
func (r *Result) CentroidPoint(points [][]float64, c int) int {
	best, bestDist := -1, math.Inf(1)
	for i, a := range r.Assign {
		if a != c {
			continue
		}
		if d := euclid(points[i], r.Centroids[c]); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func sqEuclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// KMeansConfig parameterizes KMeans.
type KMeansConfig struct {
	// K is the number of clusters (required, >= 1).
	K int
	// MaxIterations bounds Lloyd's iterations; 0 means 100.
	MaxIterations int
	// Restarts runs the whole algorithm multiple times with different
	// seedings and keeps the lowest-inertia result; 0 means 8.
	Restarts int
	// Seed drives the k-means++ seeding. Each restart r draws its RNG
	// stream from (Seed, r), so restarts are independent of each other
	// and of how they are scheduled.
	Seed int64
	// Workers bounds the parallelism across restarts and within the
	// assignment step; <= 0 means GOMAXPROCS. The clustering is
	// identical at every worker count.
	Workers int
}

// assignParallelMin is the minimum number of point-centroid distance
// evaluations per Lloyd iteration before the assignment step fans out;
// below it goroutine overhead beats the arithmetic saved.
const assignParallelMin = 1 << 14

// KMeans clusters points with Lloyd's algorithm and k-means++ seeding.
// All points must have the same dimension. Restarts run concurrently,
// each on its own (Seed, restart)-derived RNG stream; the lowest-inertia
// result wins, ties broken by the lowest restart number, so the outcome
// is deterministic in Seed at any worker count.
func KMeans(points [][]float64, cfg KMeansConfig) (*Result, error) {
	n := len(points)
	if cfg.K < 1 {
		return nil, fmt.Errorf("cluster: K must be >= 1, got %d", cfg.K)
	}
	if n < cfg.K {
		return nil, fmt.Errorf("cluster: %d points cannot form %d clusters", n, cfg.K)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 100
	}
	restarts := cfg.Restarts
	if restarts <= 0 {
		restarts = 8
	}
	workers := parallel.Workers(cfg.Workers)
	outer := workers
	if outer > restarts {
		outer = restarts
	}
	inner := workers / outer
	if inner < 1 {
		inner = 1
	}

	type attempt struct {
		res     *Result
		inertia float64
	}
	attempts := parallel.Map(outer, restarts, func(r int) attempt {
		rng := rand.New(rand.NewSource(parallel.DeriveSeed(cfg.Seed, int64(r))))
		res, inertia := kmeansOnce(points, cfg.K, maxIter, rng, inner)
		return attempt{res, inertia}
	})
	best := attempts[0]
	for _, a := range attempts[1:] {
		if a.inertia < best.inertia {
			best = a
		}
	}
	return best.res, nil
}

func kmeansOnce(points [][]float64, k, maxIter int, rng *rand.Rand, workers int) (*Result, float64) {
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = -1
	}
	iter := 0
	for ; iter < maxIter; iter++ {
		if !assignPoints(points, centroids, assign, workers) {
			break
		}
		recomputeCentroids(points, assign, centroids, rng)
	}
	var inertia float64
	for i, p := range points {
		inertia += sqEuclid(p, centroids[assign[i]])
	}
	return &Result{K: k, Assign: assign, Centroids: centroids, Iterations: iter}, inertia
}

// assignPoints reassigns every point to its nearest centroid and reports
// whether any assignment changed. Each point's result depends only on
// the centroids, so the chunked fan-out is exact: assign[i] is written
// by exactly one goroutine and the per-chunk change flags are OR-merged.
func assignPoints(points [][]float64, centroids [][]float64, assign []int, workers int) bool {
	n := len(points)
	assignOne := func(i int) bool {
		best, bestDist := 0, math.Inf(1)
		for c, cent := range centroids {
			if d := sqEuclid(points[i], cent); d < bestDist {
				best, bestDist = c, d
			}
		}
		if assign[i] != best {
			assign[i] = best
			return true
		}
		return false
	}
	if workers <= 1 || n*len(centroids) < assignParallelMin {
		changed := false
		for i := 0; i < n; i++ {
			if assignOne(i) {
				changed = true
			}
		}
		return changed
	}
	chunk := (n + workers - 1) / workers
	flags := parallel.MapShards(workers, parallel.Shards(n, chunk), func(s parallel.Shard) bool {
		changed := false
		for i := s.Lo; i < s.Hi; i++ {
			if assignOne(i) {
				changed = true
			}
		}
		return changed
	})
	for _, f := range flags {
		if f {
			return true
		}
	}
	return false
}

// seedPlusPlus picks initial centroids with the k-means++ D² weighting.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	centroids = append(centroids, cloneVec(first))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqEuclid(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with centroids; duplicate one.
			centroids = append(centroids, cloneVec(points[rng.Intn(len(points))]))
			continue
		}
		target := rng.Float64() * total
		idx := 0
		for ; idx < len(points)-1; idx++ {
			target -= d2[idx]
			if target <= 0 {
				break
			}
		}
		centroids = append(centroids, cloneVec(points[idx]))
	}
	return centroids
}

func recomputeCentroids(points [][]float64, assign []int, centroids [][]float64, rng *rand.Rand) {
	dim := len(points[0])
	counts := make([]int, len(centroids))
	for c := range centroids {
		for j := 0; j < dim; j++ {
			centroids[c][j] = 0
		}
	}
	for i, p := range points {
		c := assign[i]
		counts[c]++
		for j, v := range p {
			centroids[c][j] += v
		}
	}
	for c := range centroids {
		if counts[c] == 0 {
			// Re-seed an emptied cluster at a random point.
			copy(centroids[c], points[rng.Intn(len(points))])
			continue
		}
		inv := 1 / float64(counts[c])
		for j := range centroids[c] {
			centroids[c][j] *= inv
		}
	}
}

func cloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}
