package cluster

import (
	"math/rand"
	"testing"
)

func TestHierarchicalRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points, truth := threeBlobs(rng, 30)
	for _, linkage := range []Linkage{AverageLinkage, SingleLinkage, CompleteLinkage} {
		res, err := Hierarchical(points, 3, linkage)
		if err != nil {
			t.Fatalf("%v: %v", linkage, err)
		}
		if res.K != 3 {
			t.Fatalf("%v: K = %d", linkage, res.K)
		}
		if got := Agreement(res.Assign, truth); got < 0.99 {
			t.Errorf("%v: agreement = %v", linkage, got)
		}
		sizes := res.Sizes()
		for c, s := range sizes {
			if s != 30 {
				t.Errorf("%v: cluster %d size = %d", linkage, c, s)
			}
		}
	}
}

func TestHierarchicalAgreesWithKMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	points, _ := threeBlobs(rng, 25)
	km, err := KMeans(points, KMeansConfig{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hc, err := Hierarchical(points, 3, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if got := Agreement(km.Assign, hc.Assign); got < 0.99 {
		t.Errorf("agreement = %v", got)
	}
}

func TestHierarchicalErrors(t *testing.T) {
	pts := [][]float64{{1}, {2}}
	if _, err := Hierarchical(pts, 0, AverageLinkage); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := Hierarchical(pts, 3, AverageLinkage); err == nil {
		t.Error("expected error for k > n")
	}
	if _, err := Hierarchical([][]float64{{1}, {1, 2}}, 1, AverageLinkage); err == nil {
		t.Error("expected error for ragged points")
	}
}

func TestHierarchicalK1AndKn(t *testing.T) {
	pts := [][]float64{{0}, {1}, {10}}
	one, err := Hierarchical(pts, 1, AverageLinkage)
	if err != nil || one.K != 1 {
		t.Fatalf("k=1: %v %v", one, err)
	}
	if one.Centroids[0][0] != (0.0+1+10)/3 {
		t.Errorf("k=1 centroid = %v", one.Centroids[0])
	}
	all, err := Hierarchical(pts, 3, AverageLinkage)
	if err != nil || all.K != 3 {
		t.Fatalf("k=n: %v %v", all, err)
	}
}

func TestHierarchicalMergesNearestFirst(t *testing.T) {
	// Points at 0, 1, 10: cutting at 2 clusters must group {0,1}.
	pts := [][]float64{{0}, {1}, {10}}
	res, err := Hierarchical(pts, 2, CompleteLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != res.Assign[1] || res.Assign[0] == res.Assign[2] {
		t.Errorf("assign = %v", res.Assign)
	}
}

func TestLinkageString(t *testing.T) {
	for _, l := range []Linkage{AverageLinkage, SingleLinkage, CompleteLinkage} {
		if l.String() == "" {
			t.Error("empty linkage name")
		}
	}
	if Linkage(9).String() == "" {
		t.Error("unknown linkage should render")
	}
}
