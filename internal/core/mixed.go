package core

import (
	"context"
	"fmt"

	"disksig/internal/dataset"
	"disksig/internal/smart"
)

// MixedCharacterization is the output of the class-partitioned pipeline:
// one full Characterization per device class present in the fleet. Each
// class is normalized, clustered and modeled on its own partition — its
// own Eq. (1) extrema, its own signature groups — so SSD wear magnitudes
// can never flatten HDD spans and neither class's cluster structure
// bleeds into the other's.
type MixedCharacterization struct {
	// ByClass holds one characterization per device class, nil for
	// classes with no drives in the fleet.
	ByClass [smart.NumClasses]*Characterization
}

// CharacterizeMixed partitions a heterogeneous fleet by device class and
// runs the complete characterization pipeline independently on each
// partition. Deterministic in cfg at any worker count, exactly like
// Characterize.
func CharacterizeMixed(ds *dataset.Dataset, cfg Config) (*MixedCharacterization, error) {
	return CharacterizeMixedCtx(context.Background(), ds, cfg)
}

// CharacterizeMixedCtx is CharacterizeMixed with cancellation.
func CharacterizeMixedCtx(ctx context.Context, ds *dataset.Dataset, cfg Config) (*MixedCharacterization, error) {
	var failed, good [smart.NumClasses][]*smart.Profile
	for _, p := range ds.Failed {
		if !p.Class.Valid() {
			return nil, fmt.Errorf("core: failed drive %d has invalid device class %d", p.DriveID, p.Class)
		}
		failed[p.Class] = append(failed[p.Class], p)
	}
	for _, p := range ds.Good {
		if !p.Class.Valid() {
			return nil, fmt.Errorf("core: good drive %d has invalid device class %d", p.DriveID, p.Class)
		}
		good[p.Class] = append(good[p.Class], p)
	}
	mc := &MixedCharacterization{}
	// The two classes run sequentially: each pipeline is internally
	// parallel up to cfg.Workers already, and a fixed class order keeps
	// any shared resource bound meaningful.
	for c := smart.DeviceClass(0); c < smart.NumClasses; c++ {
		if len(failed[c])+len(good[c]) == 0 {
			continue
		}
		if len(failed[c]) == 0 {
			return nil, fmt.Errorf("core: class %v has %d good drives but no failures to characterize", c, len(good[c]))
		}
		// dataset.New fits the partition's own normalizer: the class-keyed
		// bounds that keep cross-class magnitudes apart.
		ch, err := CharacterizeCtx(ctx, dataset.New(failed[c], good[c]), cfg)
		if err != nil {
			return nil, fmt.Errorf("core: characterizing %v partition: %w", c, err)
		}
		mc.ByClass[c] = ch
	}
	return mc, nil
}

// Classes returns the device classes present, in enum order.
func (mc *MixedCharacterization) Classes() []smart.DeviceClass {
	var out []smart.DeviceClass
	for c, ch := range mc.ByClass {
		if ch != nil {
			out = append(out, smart.DeviceClass(c))
		}
	}
	return out
}

// Contamination counts drives that ended up in the wrong class
// partition — profiles whose Class differs from the partition that
// clustered them. The partitioning is keyed on Class directly, so any
// nonzero count means the pipeline's class isolation is broken; scenario
// checks assert it is exactly zero.
func (mc *MixedCharacterization) Contamination() int {
	n := 0
	for c, ch := range mc.ByClass {
		if ch == nil {
			continue
		}
		for _, p := range ch.Dataset.Failed {
			if p.Class != smart.DeviceClass(c) {
				n++
			}
		}
		for _, p := range ch.Dataset.Good {
			if p.Class != smart.DeviceClass(c) {
				n++
			}
		}
	}
	return n
}
