package core

import (
	"fmt"
	"math"

	"disksig/internal/dataset"
	"disksig/internal/signature"
	"disksig/internal/smart"
	"disksig/internal/stats"
)

// AttrCorrelation is one attribute's correlation with a drive's failure
// degradation (Fig. 9).
type AttrCorrelation struct {
	Attr smart.Attr
	R    float64
}

// Influence quantifies which attributes drive a group's degradation
// (Sec. IV-D), computed on the group's centroid drive as in the paper.
type Influence struct {
	// GroupNumber is the paper group number.
	GroupNumber int
	// DriveID is the centroid drive the analysis ran on.
	DriveID int
	// ReadWrite holds the correlation of each R/W attribute's in-window
	// series with the degradation values (Fig. 9), Table I order.
	ReadWrite []AttrCorrelation
	// TopAttrs are the R/W attributes most correlated with degradation
	// (by |r|), used as the reference series for the environmental table.
	TopAttrs []smart.Attr
	// Env holds, for each environmental attribute and each horizon, its
	// correlation with each top attribute (Fig. 10).
	Env []EnvCorrelation
}

// Horizon identifies the analysis window of an environmental correlation.
type Horizon int

const (
	// HorizonWindow restricts the correlation to the degradation window.
	HorizonWindow Horizon = iota
	// Horizon24h uses the last 24 hours of the profile.
	Horizon24h
	// HorizonFull uses the whole recorded profile (up to 20 days).
	HorizonFull
)

// String names the horizon.
func (h Horizon) String() string {
	switch h {
	case HorizonWindow:
		return "degradation-window"
	case Horizon24h:
		return "24-hour"
	case HorizonFull:
		return "full-profile"
	default:
		return fmt.Sprintf("Horizon(%d)", int(h))
	}
}

// EnvCorrelation is one cell block of Fig. 10: the correlation of an
// environmental attribute with a degradation-correlated R/W attribute over
// one horizon.
type EnvCorrelation struct {
	Env     smart.Attr
	Target  smart.Attr
	Horizon Horizon
	R       float64
}

// AnalyzeInfluence computes the Fig. 9 / Fig. 10 attribute-influence
// analysis for one group using its centroid drive's derived signature.
func AnalyzeInfluence(ds *dataset.Dataset, g *Group, sig *signature.Signature, topN int) (*Influence, error) {
	if topN <= 0 {
		topN = 2
	}
	failed := ds.NormalizedFailed()
	if g.CentroidDrive < 0 || g.CentroidDrive >= len(failed) {
		return nil, fmt.Errorf("core: group %d has no centroid drive", g.Number)
	}
	p := failed[g.CentroidDrive]
	inf := &Influence{GroupNumber: g.Number, DriveID: p.DriveID}

	// Fig. 9: correlation of R/W attribute series with the degradation
	// values inside the window.
	w := sig.Window
	for _, a := range smart.ReadWriteAttrs() {
		series := windowSeries(p, a, w.Start)
		r := stats.Pearson(series, sig.Degradation)
		inf.ReadWrite = append(inf.ReadWrite, AttrCorrelation{Attr: a, R: r})
	}

	// Rank attributes by |r| to pick the degradation-correlated targets.
	// RSC is excluded as a linear transformation of R-RSC (the paper drops
	// it from per-attribute comparisons for the same reason).
	ranked := make([]AttrCorrelation, 0, len(inf.ReadWrite))
	for _, c := range inf.ReadWrite {
		if c.Attr != smart.RSC {
			ranked = append(ranked, c)
		}
	}
	for i := 1; i < len(ranked); i++ {
		for j := i; j > 0 && math.Abs(ranked[j].R) > math.Abs(ranked[j-1].R); j-- {
			ranked[j], ranked[j-1] = ranked[j-1], ranked[j]
		}
	}
	for i := 0; i < topN && i < len(ranked); i++ {
		inf.TopAttrs = append(inf.TopAttrs, ranked[i].Attr)
	}

	// Fig. 10: environmental attributes against the top attributes over
	// three horizons.
	for _, env := range smart.EnvironmentalAttrs() {
		for _, target := range inf.TopAttrs {
			for _, h := range []Horizon{HorizonWindow, Horizon24h, HorizonFull} {
				start := 0
				switch h {
				case HorizonWindow:
					start = w.Start
				case Horizon24h:
					start = p.Len() - 24
					if start < 0 {
						start = 0
					}
				}
				envSeries := windowSeries(p, env, start)
				targetSeries := windowSeries(p, target, start)
				inf.Env = append(inf.Env, EnvCorrelation{
					Env:     env,
					Target:  target,
					Horizon: h,
					R:       stats.Pearson(envSeries, targetSeries),
				})
			}
		}
	}
	return inf, nil
}

// windowSeries returns attribute a's values from record index start to the
// end of the profile.
func windowSeries(p *smart.Profile, a smart.Attr, start int) []float64 {
	out := make([]float64, 0, p.Len()-start)
	for i := start; i < p.Len(); i++ {
		out = append(out, p.Records[i].Values[a])
	}
	return out
}
