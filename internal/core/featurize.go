// Package core is the paper's primary contribution assembled as a
// library: failure categorization (Sec. IV-B), degradation-signature
// derivation (Sec. IV-C), attribute-influence quantification (Sec. IV-D),
// temporal z-score analysis (Sec. V-A) and degradation prediction
// (Sec. V-B), all driven from a dataset.Dataset.
package core

import (
	"disksig/internal/parallel"
	"disksig/internal/smart"
	"disksig/internal/stats"
)

// featureWindowHours is the trailing window over which the per-attribute
// standard deviation feature is computed ("the last 24 hours", Sec. IV-B).
const featureWindowHours = 24

// FeatureNames returns the 30 feature labels of the failure-record
// feature vector: for each of the ten R/W attributes its failure-record
// value, its 24-hour standard deviation, and its change rate.
func FeatureNames() []string {
	var names []string
	for _, a := range smart.ReadWriteAttrs() {
		names = append(names, a.String())
	}
	for _, a := range smart.ReadWriteAttrs() {
		names = append(names, a.String()+"(sd24h)")
	}
	for _, a := range smart.ReadWriteAttrs() {
		names = append(names, a.String()+"(rate)")
	}
	return names
}

// Featurize builds the paper's 30-dimensional clustering feature vector
// for one normalized failed profile: the failure record's ten R/W
// attribute values, each attribute's standard deviation over the last 24
// hours, and each attribute's change rate.
func Featurize(p *smart.Profile) []float64 {
	rw := smart.ReadWriteAttrs()
	features := make([]float64, 0, 3*len(rw))
	failure := p.FailureRecord().Values
	for _, a := range rw {
		features = append(features, failure[a])
	}
	tail := p.Tail(featureWindowHours)
	for _, a := range rw {
		series := make([]float64, len(tail))
		for i, r := range tail {
			series[i] = r.Values[a]
		}
		features = append(features, stats.StdDev(series))
	}
	for _, a := range rw {
		series := make([]float64, len(tail))
		for i, r := range tail {
			series[i] = r.Values[a]
		}
		features = append(features, stats.ChangeRate(series))
	}
	return features
}

// FeaturizeAll builds the feature matrix for a set of normalized failed
// profiles. Rows are independent, so they are computed in parallel into
// their own slots.
func FeaturizeAll(profiles []*smart.Profile) [][]float64 {
	return parallel.Map(0, len(profiles), func(i int) []float64 {
		return Featurize(profiles[i])
	})
}
