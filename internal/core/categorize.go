package core

import (
	"fmt"

	"disksig/internal/cluster"
	"disksig/internal/dataset"
	"disksig/internal/smart"
)

// FailureType is the semantic category derived from a failure group's
// manifestations (Table II).
type FailureType int

const (
	// Logical failures have R/W attributes close to good states; corrupt
	// files or software damage, not media damage.
	Logical FailureType = iota
	// BadSector failures show the highest uncorrectable-error counts and
	// elevated media errors.
	BadSector
	// ReadWriteHead failures show the highest reallocated-sector counts
	// and elevated high-fly writes.
	ReadWriteHead
)

// String names the failure type.
func (t FailureType) String() string {
	switch t {
	case Logical:
		return "logical"
	case BadSector:
		return "bad-sector"
	case ReadWriteHead:
		return "read/write-head"
	default:
		return fmt.Sprintf("FailureType(%d)", int(t))
	}
}

// Group is one discovered failure category.
type Group struct {
	// Number is the paper-style group number (1 = logical, 2 = bad
	// sector, 3 = read/write head).
	Number int
	// Type is the semantic category.
	Type FailureType
	// Members indexes the group's drives within Dataset.Failed.
	Members []int
	// CentroidDrive is the member index (into Dataset.Failed) of the
	// drive closest to the cluster centroid — the paper's "centroid
	// failure" used for the per-group deep dives.
	CentroidDrive int
}

// Population returns the group's share of all failed drives.
func (g *Group) Population(totalFailed int) float64 {
	if totalFailed == 0 {
		return 0
	}
	return float64(len(g.Members)) / float64(totalFailed)
}

// Categorization is the output of the Sec. IV-B analysis.
type Categorization struct {
	// Features is the 30-dimensional feature matrix, one row per failed
	// drive (Dataset.Failed order).
	Features [][]float64
	// Elbow is the Fig. 3 curve.
	Elbow []cluster.ElbowPoint
	// K is the selected number of clusters.
	K int
	// Clusters is the raw K-means result.
	Clusters *cluster.Result
	// Groups are the discovered failure categories keyed by paper group
	// number minus one; Groups[0] is Group 1 (logical).
	Groups []*Group
	// GroupOf maps each failed-drive index to its paper group number.
	GroupOf []int
}

// Categorize runs failure categorization: featurize the failure records,
// choose k by the elbow criterion (or use cfg.K when forced), cluster
// with K-means, and type each cluster from its manifestations.
func Categorize(ds *dataset.Dataset, cfg Config) (*Categorization, error) {
	cfg = cfg.withDefaults()
	failed := ds.NormalizedFailed()
	if len(failed) < cfg.MaxClusters {
		return nil, fmt.Errorf("core: %d failed drives are too few to categorize (need >= %d)", len(failed), cfg.MaxClusters)
	}
	features := FeaturizeAll(failed)
	curve, err := cluster.ElbowWithWorkers(features, cfg.MaxClusters, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: elbow analysis: %w", err)
	}
	k := cfg.K
	if k <= 0 {
		k = cluster.PickElbow(curve)
	}
	res, err := cluster.KMeans(features, cluster.KMeansConfig{K: k, Seed: cfg.Seed, Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("core: clustering: %w", err)
	}
	cat := &Categorization{
		Features: features,
		Elbow:    curve,
		K:        k,
		Clusters: res,
	}
	cat.Groups = typeGroups(ds, res, features)
	cat.GroupOf = make([]int, len(failed))
	for _, g := range cat.Groups {
		for _, m := range g.Members {
			cat.GroupOf[m] = g.Number
		}
	}
	return cat, nil
}

// typeGroups assigns paper group numbers and failure types to clusters by
// their centroid manifestations: the cluster with the lowest mean RUE
// health is the bad-sector group, the cluster with the highest mean raw
// reallocated count is the read/write-head group, and remaining clusters
// (nearest to good states) are logical failures. With k != 3 the
// extremes are still typed and every other cluster is labeled logical.
func typeGroups(ds *dataset.Dataset, res *cluster.Result, features [][]float64) []*Group {
	records := ds.NormalizedFailureRecords()
	k := res.K
	meanRUE := make([]float64, k)
	meanRawRSC := make([]float64, k)
	counts := make([]int, k)
	for i, rec := range records {
		c := res.Assign[i]
		meanRUE[c] += rec[smart.RUE]
		meanRawRSC[c] += rec[smart.RawRSC]
		counts[c]++
	}
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			meanRUE[c] /= float64(counts[c])
			meanRawRSC[c] /= float64(counts[c])
		}
	}
	badSector, head := 0, 0
	for c := 1; c < k; c++ {
		if meanRUE[c] < meanRUE[badSector] {
			badSector = c
		}
		if meanRawRSC[c] > meanRawRSC[head] {
			head = c
		}
	}
	types := make([]FailureType, k)
	for c := range types {
		types[c] = Logical
	}
	if k >= 2 {
		types[badSector] = BadSector
	}
	if k >= 3 && head != badSector {
		types[head] = ReadWriteHead
	}

	groups := make([]*Group, 0, k)
	// Paper numbering: logical groups first (largest first), then bad
	// sector, then head, then any extra clusters in cluster order.
	appendGroup := func(c int, t FailureType) {
		groups = append(groups, &Group{
			Number:        len(groups) + 1,
			Type:          t,
			Members:       res.Members(c),
			CentroidDrive: res.CentroidPoint(features, c),
		})
	}
	// Logical clusters sorted by descending size.
	logicals := make([]int, 0, k)
	for c := 0; c < k; c++ {
		if types[c] == Logical {
			logicals = append(logicals, c)
		}
	}
	for i := 1; i < len(logicals); i++ {
		for j := i; j > 0 && counts[logicals[j]] > counts[logicals[j-1]]; j-- {
			logicals[j], logicals[j-1] = logicals[j-1], logicals[j]
		}
	}
	for _, c := range logicals {
		appendGroup(c, Logical)
	}
	if k >= 2 {
		appendGroup(badSector, BadSector)
	}
	if k >= 3 && head != badSector {
		appendGroup(head, ReadWriteHead)
	}
	return groups
}

// GroupProfiles returns the normalized profiles of a group's members.
func GroupProfiles(ds *dataset.Dataset, g *Group) []*smart.Profile {
	failed := ds.NormalizedFailed()
	out := make([]*smart.Profile, len(g.Members))
	for i, m := range g.Members {
		out[i] = failed[m]
	}
	return out
}
