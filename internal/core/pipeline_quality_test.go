package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"disksig/internal/dataset"
	"disksig/internal/quality"
	"disksig/internal/smart"
)

// dirtyFleet deep-copies the shared small fleet and injects defects: a
// NaN field mid-profile on one failed drive, a duplicated hour on
// another, and a one-record good drive that must be dropped.
func dirtyFleet(t *testing.T) *dataset.Dataset {
	t.Helper()
	src := fleet(t)
	cp := func(ps []*smart.Profile) []*smart.Profile {
		out := make([]*smart.Profile, len(ps))
		for i, p := range ps {
			c := *p
			c.Records = append([]smart.Record(nil), p.Records...)
			out[i] = &c
		}
		return out
	}
	failed, good := cp(src.Failed), cp(src.Good)
	failed[0].Records[1].Values[smart.RRER] = math.NaN()
	failed[1].Records = append(failed[1].Records, failed[1].Records[len(failed[1].Records)-1])
	short := *good[0]
	short.DriveID = 1_000_000
	short.Records = good[0].Records[:1]
	good = append(good, &short)
	return dataset.New(failed, good)
}

func TestCharacterizeSurfacesQuarantine(t *testing.T) {
	ds := dirtyFleet(t)
	ch, err := Characterize(ds, Config{Seed: 1, SkipPrediction: true, GoodSample: 1000})
	if err != nil {
		t.Fatal(err)
	}
	q := ch.Quarantine
	if q == nil {
		t.Fatal("Characterization.Quarantine is nil")
	}
	if q.Count(quality.NonFinite) == 0 {
		t.Error("NaN field not counted")
	}
	if q.Count(quality.DuplicateTimestamp) == 0 {
		t.Error("duplicated hour not counted")
	}
	if q.Count(quality.ShortProfile) == 0 || q.DrivesDropped() != 1 {
		t.Errorf("short drive not dropped: %d short, %d dropped", q.Count(quality.ShortProfile), q.DrivesDropped())
	}
	if q.RowsRead != q.RowsKept()+q.RowsQuarantined+q.RowsDropped {
		t.Errorf("accounting: read %d != kept %d + quarantined %d + dropped %d",
			q.RowsRead, q.RowsKept(), q.RowsQuarantined, q.RowsDropped)
	}
	// The quarantined records must not reach the analysis: the sanitized
	// dataset the pipeline worked on is the one in the result.
	for _, p := range ch.Dataset.Failed {
		for _, r := range p.Records {
			for a := 0; a < int(smart.NumAttrs); a++ {
				if math.IsNaN(r.Values[a]) || math.IsInf(r.Values[a], 0) {
					t.Fatalf("drive %d kept a non-finite value", p.DriveID)
				}
			}
		}
	}
	if len(ch.Results) == 0 {
		t.Error("dirty fleet produced no groups")
	}
}

func TestCharacterizeStrictQualityFails(t *testing.T) {
	ds := dirtyFleet(t)
	_, err := Characterize(ds, Config{
		Seed: 1, SkipPrediction: true, GoodSample: 1000,
		Quality: quality.Config{Policy: quality.Strict},
	})
	var iss quality.Issue
	if !errors.As(err, &iss) {
		t.Fatalf("strict policy error = %v, want a quality.Issue", err)
	}
}

func TestCharacterizeCleanFleetSharesDataset(t *testing.T) {
	ds := fleet(t)
	ch, err := Characterize(ds, Config{Seed: 1, SkipPrediction: true, GoodSample: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Dataset != ds {
		t.Error("clean fleet should not be rebuilt")
	}
	if q := ch.Quarantine; q == nil || !q.Clean() {
		t.Errorf("clean fleet quarantine = %+v", q)
	}
}

func TestCharacterizeCtxCancelled(t *testing.T) {
	ds := fleet(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CharacterizeCtx(ctx, ds, Config{Seed: 1, SkipPrediction: true, GoodSample: 1000}); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled pipeline error = %v, want context.Canceled", err)
	}

	// Cancelling mid-run returns promptly with ctx.Err(): the deadline is
	// far shorter than the full prediction stage takes.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err := CharacterizeCtx(ctx2, ds, Config{Seed: 1, GoodSample: 20000})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("mid-run cancel error = %v, want context.DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 30*time.Second {
		t.Errorf("cancelled pipeline took %v to return", el)
	}
}
