package core

import (
	"testing"

	"disksig/internal/dataset"
	"disksig/internal/smart"
	"disksig/internal/synth"
)

func mixedFleet(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := synth.GenerateMixed(synth.DefaultMixedFleet(synth.ScaleSmall))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestCharacterizeMixedPartitionsCleanly(t *testing.T) {
	ds := mixedFleet(t)
	mc, err := CharacterizeMixed(ds, Config{Seed: 1, SkipPrediction: true, GoodSample: 1000})
	if err != nil {
		t.Fatal(err)
	}
	classes := mc.Classes()
	if len(classes) != 2 || classes[0] != smart.HDD || classes[1] != smart.SSD {
		t.Fatalf("classes = %v, want [hdd ssd]", classes)
	}
	if n := mc.Contamination(); n != 0 {
		t.Fatalf("cross-class contamination = %d drives", n)
	}
	// Each class must recover real per-class structure on its own
	// partition — at least two signature groups, a fitted normalizer, and
	// only its own drives.
	var wantFailed, wantGood [smart.NumClasses]int
	for _, p := range ds.Failed {
		wantFailed[p.Class]++
	}
	for _, p := range ds.Good {
		wantGood[p.Class]++
	}
	for _, c := range classes {
		ch := mc.ByClass[c]
		if len(ch.Results) < 2 {
			t.Errorf("%v partition found %d groups, want >= 2", c, len(ch.Results))
		}
		if !ch.Dataset.Norm.Fitted() {
			t.Errorf("%v partition normalizer not fitted", c)
		}
		if len(ch.Dataset.Failed) != wantFailed[c] || len(ch.Dataset.Good) != wantGood[c] {
			t.Errorf("%v partition holds %d failed / %d good drives, want %d / %d",
				c, len(ch.Dataset.Failed), len(ch.Dataset.Good), wantFailed[c], wantGood[c])
		}
	}
}

// TestCharacterizeMixedWorkerEquivalence extends the pipeline's
// determinism guarantee to the class-partitioned path: identical
// per-class categorizations at any worker count, on freshly generated
// fleets so each run rebuilds its own lazy views.
func TestCharacterizeMixedWorkerEquivalence(t *testing.T) {
	run := func(workers int) *MixedCharacterization {
		t.Helper()
		ds, err := synth.GenerateMixed(synth.DefaultMixedFleet(synth.ScaleSmall))
		if err != nil {
			t.Fatal(err)
		}
		mc, err := CharacterizeMixed(ds, Config{Seed: 1, SkipPrediction: true, GoodSample: 1000, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return mc
	}
	a, b := run(1), run(7)
	for _, c := range []smart.DeviceClass{smart.HDD, smart.SSD} {
		ca, cb := a.ByClass[c], b.ByClass[c]
		if ca == nil || cb == nil {
			t.Fatalf("%v partition missing: %v vs %v", c, ca != nil, cb != nil)
		}
		if ca.Categorization.K != cb.Categorization.K {
			t.Fatalf("%v K differs: %d vs %d", c, ca.Categorization.K, cb.Categorization.K)
		}
		for i := range ca.Categorization.Elbow {
			if ca.Categorization.Elbow[i] != cb.Categorization.Elbow[i] {
				t.Errorf("%v elbow point %d differs: %+v vs %+v", c, i, ca.Categorization.Elbow[i], cb.Categorization.Elbow[i])
			}
		}
		for i := range ca.Categorization.GroupOf {
			if ca.Categorization.GroupOf[i] != cb.Categorization.GroupOf[i] {
				t.Fatalf("%v group assignment differs at drive %d", c, i)
			}
		}
		for i, ga := range ca.Results {
			gb := cb.Results[i]
			if ga.Group.Number != gb.Group.Number || ga.Group.CentroidDrive != gb.Group.CentroidDrive {
				t.Errorf("%v group %d identity differs", c, i+1)
			}
			if ga.Summary.MajorityForm != gb.Summary.MajorityForm || ga.Summary.MedianD != gb.Summary.MedianD {
				t.Errorf("%v group %d summary differs", c, ga.Group.Number)
			}
		}
	}
}

func TestCharacterizeMixedErrors(t *testing.T) {
	ds := mixedFleet(t)
	// An invalid class anywhere in the fleet aborts before any pipeline
	// work: silently mis-partitioning would poison both classes' models.
	bad := dataset.New(ds.Failed, ds.Good)
	orig := bad.Failed[0].Class
	bad.Failed[0].Class = smart.DeviceClass(9)
	if _, err := CharacterizeMixed(bad, Config{Seed: 1, SkipPrediction: true}); err == nil {
		t.Error("invalid device class accepted")
	}
	bad.Failed[0].Class = orig

	// A class with good drives but no failures cannot be characterized —
	// there is nothing to cluster — and must fail loudly rather than
	// leave the class silently unserved.
	var failed, good []*smart.Profile
	for _, p := range ds.Failed {
		if p.Class == smart.HDD {
			failed = append(failed, p)
		}
	}
	for _, p := range ds.Good {
		good = append(good, p)
	}
	if _, err := CharacterizeMixed(dataset.New(failed, good), Config{Seed: 1, SkipPrediction: true}); err == nil {
		t.Error("good-only SSD partition accepted")
	}
}
