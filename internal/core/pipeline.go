package core

import (
	"context"
	"fmt"

	"disksig/internal/dataset"
	"disksig/internal/parallel"
	"disksig/internal/predict"
	"disksig/internal/quality"
	"disksig/internal/signature"
	"disksig/internal/smart"
	"disksig/internal/tree"
)

// Config parameterizes the characterization pipeline. The zero value
// selects the paper's defaults.
type Config struct {
	// Seed drives all randomized steps (clustering restarts, prediction
	// splits, sampling). Defaults to 1.
	Seed int64
	// MaxClusters is the largest k tried in the elbow analysis (paper:
	// 10). <= 0 means 10.
	MaxClusters int
	// K forces the number of clusters; <= 0 selects it by the elbow
	// criterion.
	K int
	// Signature configures window extraction and model fitting.
	Signature signature.Options
	// GoodSample is the size of the normalized good-record sample used by
	// prediction and decile comparisons; <= 0 means 100_000.
	GoodSample int
	// SkipPrediction disables the Sec. V-B prediction stage (it is the
	// most expensive stage; Figs. 1-12 don't need it).
	SkipPrediction bool
	// Workers bounds the pipeline's parallelism (clustering restarts,
	// the elbow sweep, per-group stages, tree induction, dataset
	// views); <= 0 means GOMAXPROCS. Every stage is deterministic in
	// Seed at any worker count: Workers is a resource bound, never a
	// result knob, and Workers: 1 runs the same algorithms serially.
	Workers int
	// Quality selects how defective telemetry (NaN/Inf or out-of-range
	// values, non-monotone or duplicate hours, too-short profiles) is
	// handled before analysis: quarantined (Lenient, the zero value),
	// repaired, or fatal (Strict). The outcome is accounted in
	// Characterization.Quarantine.
	Quality quality.Config
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxClusters <= 0 {
		c.MaxClusters = 10
	}
	if c.GoodSample <= 0 {
		c.GoodSample = 100_000
	}
	return c
}

// GroupResult bundles everything the pipeline derives for one failure
// group.
type GroupResult struct {
	Group *Group
	// Signature is the centroid drive's derived signature (the Fig. 7/8
	// subject).
	Signature *signature.Signature
	// Summary aggregates the signatures of every drive in the group.
	Summary *signature.GroupSummary
	// Influence is the Sec. IV-D attribute-influence analysis.
	Influence *Influence
	// Prediction is the Table III row (nil when SkipPrediction).
	Prediction *predict.DegradationResult
}

// Characterization is the full output of the pipeline.
type Characterization struct {
	Dataset        *dataset.Dataset
	Config         Config
	Categorization *Categorization
	// Results holds one entry per discovered group, ordered by group
	// number.
	Results []*GroupResult
	// TCZScores and POHZScores are the Figs. 11/12 series.
	TCZScores  []*ZScoreSeries
	POHZScores []*ZScoreSeries
	// GoodSample is the normalized good-record sample shared by the
	// prediction stage and decile reports.
	GoodSample []smart.Values
	// Quarantine accounts for every record and drive the pre-analysis
	// quality pass rejected, repaired or dropped (per Config.Quality).
	Quarantine *quality.Report
}

// Characterize runs the complete pipeline of the paper on a dataset:
// sanitize the telemetry per Config.Quality, categorize failures, derive
// degradation signatures, quantify attribute influence, compute
// environmental z-scores, and train degradation predictors.
func Characterize(ds *dataset.Dataset, cfg Config) (*Characterization, error) {
	return CharacterizeCtx(context.Background(), ds, cfg)
}

// CharacterizeCtx is Characterize with cancellation: once ctx is done,
// no further pipeline stage or per-group work item starts (in-flight
// items finish) and the error is ctx.Err(). A worker panic anywhere in
// the fan-out surfaces as a *parallel.PanicError, not a process crash.
func CharacterizeCtx(ctx context.Context, ds *dataset.Dataset, cfg Config) (*Characterization, error) {
	cfg = cfg.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ds, qrep, err := sanitizeDataset(ds, cfg)
	if err != nil {
		return nil, err
	}
	ds.SetWorkers(cfg.Workers)
	cat, err := Categorize(ds, cfg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ch := &Characterization{
		Dataset:        ds,
		Config:         cfg,
		Categorization: cat,
		GoodSample:     ds.NormalizedGoodSample(cfg.GoodSample, cfg.Seed),
		Quarantine:     qrep,
	}
	failed := ds.NormalizedFailed()

	// The per-group stages are independent of each other, and the two
	// temporal z-score passes are independent of the groups, so all of
	// it fans out; Results is assembled in group order and errors are
	// reported lowest-group-first, so the outcome (and the error, if
	// any) is the same as the sequential pass.
	maxHours := 0
	for _, p := range ds.Failed {
		if p.Len() > maxHours {
			maxHours = p.Len()
		}
	}
	ch.Results = make([]*GroupResult, len(cat.Groups))
	fan := parallel.GroupWithContext(ctx)
	fan.Go(func() error {
		return parallel.ForEachErrCtx(ctx, cfg.Workers, len(cat.Groups), func(i int) error {
			gr, err := characterizeGroup(ctx, ds, cfg, cat.Groups[i], failed, ch.GoodSample)
			if err != nil {
				return err
			}
			ch.Results[i] = gr
			return nil
		})
	})
	fan.Go(func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		tc, err := TemporalZScores(ds, cat.Groups, smart.TC, maxHours-1, 8)
		ch.TCZScores = tc
		return err
	})
	fan.Go(func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		poh, err := TemporalZScores(ds, cat.Groups, smart.POH, maxHours-1, 8)
		ch.POHZScores = poh
		return err
	})
	if err := fan.Wait(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return ch, nil
}

// sanitizeDataset applies cfg.Quality to the dataset's profiles. A clean
// fleet (the common case) is returned as-is; a dirty one is rebuilt from
// the surviving profiles so the Eq. (1) normalizer refits on clean
// records only.
func sanitizeDataset(ds *dataset.Dataset, cfg Config) (*dataset.Dataset, *quality.Report, error) {
	rep := &quality.Report{}
	failed, err := quality.SanitizeProfiles(ds.Failed, cfg.Quality, rep)
	if err != nil {
		return nil, rep, fmt.Errorf("core: sanitizing failed profiles: %w", err)
	}
	good, err := quality.SanitizeProfiles(ds.Good, cfg.Quality, rep)
	if err != nil {
		return nil, rep, fmt.Errorf("core: sanitizing good profiles: %w", err)
	}
	if rep.Clean() {
		return ds, rep, nil
	}
	return dataset.New(failed, good), rep, nil
}

// characterizeGroup derives one group's signature, summary, influence
// analysis and (unless skipped) degradation predictor. ctx is checked
// between the stages so a cancelled pipeline stops without starting the
// expensive prediction training.
func characterizeGroup(ctx context.Context, ds *dataset.Dataset, cfg Config, g *Group, failed []*smart.Profile, goodSample []smart.Values) (*GroupResult, error) {
	gr := &GroupResult{Group: g}

	centroid := failed[g.CentroidDrive]
	sig, err := signature.Derive(centroid, cfg.Signature)
	if err != nil {
		return nil, fmt.Errorf("core: deriving centroid signature of group %d: %w", g.Number, err)
	}
	gr.Signature = sig

	summary, err := signature.DeriveGroup(GroupProfiles(ds, g), cfg.Signature)
	if err != nil {
		return nil, fmt.Errorf("core: deriving group %d signatures: %w", g.Number, err)
	}
	gr.Summary = summary

	inf, err := AnalyzeInfluence(ds, g, sig, 2)
	if err != nil {
		return nil, fmt.Errorf("core: influence analysis of group %d: %w", g.Number, err)
	}
	gr.Influence = inf

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !cfg.SkipPrediction {
		pred, err := predict.TrainDegradation(GroupProfiles(ds, g), goodSample, predict.DegradationConfig{
			Form:    summary.MajorityForm,
			WindowD: float64(summary.MedianD),
			Seed:    cfg.Seed,
			Tree:    tree.Config{Workers: cfg.Workers},
		})
		if err != nil {
			return nil, fmt.Errorf("core: training group %d predictor: %w", g.Number, err)
		}
		gr.Prediction = pred
	}
	return gr, nil
}

// GroupByNumber returns the result for a paper group number, or nil.
func (c *Characterization) GroupByNumber(n int) *GroupResult {
	for _, r := range c.Results {
		if r.Group.Number == n {
			return r
		}
	}
	return nil
}
