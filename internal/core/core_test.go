package core

import (
	"math"
	"testing"

	"disksig/internal/dataset"
	"disksig/internal/regression"
	"disksig/internal/smart"
	"disksig/internal/synth"
)

// smallFleet is shared across the package's integration tests.
var smallFleet *dataset.Dataset

func fleet(t *testing.T) *dataset.Dataset {
	t.Helper()
	if smallFleet == nil {
		ds, err := synth.Generate(synth.DefaultConfig(synth.ScaleSmall))
		if err != nil {
			t.Fatal(err)
		}
		smallFleet = ds
	}
	return smallFleet
}

func TestFeaturize(t *testing.T) {
	ds := fleet(t)
	p := ds.NormalizedFailed()[0]
	f := Featurize(p)
	if len(f) != 30 {
		t.Fatalf("features = %d, want 30", len(f))
	}
	names := FeatureNames()
	if len(names) != 30 {
		t.Fatalf("names = %d", len(names))
	}
	if names[0] != "RRER" || names[10] != "RRER(sd24h)" || names[20] != "RRER(rate)" {
		t.Errorf("names = %v", names[:21])
	}
	// Failure-record features match the profile's last record.
	fr := p.FailureRecord().Values
	for i, a := range smart.ReadWriteAttrs() {
		if f[i] != fr[a] {
			t.Errorf("feature %d = %v, want failure value %v", i, f[i], fr[a])
		}
	}
}

func TestCategorizeRecoversThreeGroups(t *testing.T) {
	ds := fleet(t)
	cat, err := Categorize(ds, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cat.K != 3 {
		t.Fatalf("elbow picked K = %d, want 3 (curve %v)", cat.K, cat.Elbow)
	}
	if len(cat.Groups) != 3 {
		t.Fatalf("groups = %d", len(cat.Groups))
	}
	// Group numbers must be 1..3 with the right types.
	for i, g := range cat.Groups {
		if g.Number != i+1 {
			t.Errorf("group %d numbered %d", i, g.Number)
		}
	}
	if cat.Groups[0].Type != Logical || cat.Groups[1].Type != BadSector || cat.Groups[2].Type != ReadWriteHead {
		t.Errorf("types = %v %v %v", cat.Groups[0].Type, cat.Groups[1].Type, cat.Groups[2].Type)
	}
	// Populations follow the paper's proportions (59.6/7.6/32.8).
	total := len(ds.Failed)
	if p := cat.Groups[0].Population(total); math.Abs(p-0.596) > 0.08 {
		t.Errorf("logical population = %v", p)
	}
	if p := cat.Groups[1].Population(total); math.Abs(p-0.076) > 0.05 {
		t.Errorf("bad-sector population = %v", p)
	}
	if p := cat.Groups[2].Population(total); math.Abs(p-0.328) > 0.08 {
		t.Errorf("head population = %v", p)
	}
	// The clustering must recover the generative labels.
	agreement := 0
	for i, p := range ds.Failed {
		if cat.GroupOf[i] == p.TrueGroup {
			agreement++
		}
	}
	if frac := float64(agreement) / float64(total); frac < 0.95 {
		t.Errorf("cluster/generative agreement = %v, want >= 0.95", frac)
	}
}

func TestCategorizeForcedK(t *testing.T) {
	ds := fleet(t)
	cat, err := Categorize(ds, Config{Seed: 1, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cat.K != 2 || len(cat.Groups) != 2 {
		t.Errorf("K = %d groups = %d", cat.K, len(cat.Groups))
	}
}

func TestCategorizeTooFewDrives(t *testing.T) {
	tiny := dataset.New(fleet(t).Failed[:3], fleet(t).Good[:3])
	if _, err := Categorize(tiny, Config{}); err == nil {
		t.Error("expected error for tiny dataset")
	}
}

func TestCharacterizeFullPipeline(t *testing.T) {
	ds := fleet(t)
	ch, err := Characterize(ds, Config{Seed: 1, GoodSample: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Results) != 3 {
		t.Fatalf("results = %d", len(ch.Results))
	}

	// Signature forms per group (Eqs. 3, 4, 6).
	wantForms := []regression.SignatureForm{
		regression.FormQuadratic, regression.FormLinear, regression.FormCubic,
	}
	for i, gr := range ch.Results {
		if gr.Summary.MajorityForm != wantForms[i] {
			t.Errorf("group %d majority form = %v, want %v (votes %v)",
				gr.Group.Number, gr.Summary.MajorityForm, wantForms[i], gr.Summary.FormVotes)
		}
	}

	// Window sizes: group 1 small (<= ~14), group 2 long (>= 250), group
	// 3 in between (~10-26).
	g1, g2, g3 := ch.Results[0], ch.Results[1], ch.Results[2]
	if g1.Summary.MedianD > 14 {
		t.Errorf("group 1 median window = %d, want <= 14", g1.Summary.MedianD)
	}
	// Censored profiles clip some group-2 windows, but the median must
	// still dwarf the short windows of groups 1 and 3.
	if g2.Summary.MedianD < 8*g1.Summary.MedianD || g2.Summary.MedianD < 100 {
		t.Errorf("group 2 median window = %d, want long (g1 median %d)", g2.Summary.MedianD, g1.Summary.MedianD)
	}
	if g3.Summary.MedianD < 9 || g3.Summary.MedianD > 27 {
		t.Errorf("group 3 median window = %d, want ~10-24", g3.Summary.MedianD)
	}

	// Fig. 11: group 1 has the most negative TC z-scores (hottest).
	tcMeans := map[int]float64{}
	for _, s := range ch.TCZScores {
		tcMeans[s.GroupNumber] = s.MeanZ()
	}
	if !(tcMeans[1] < tcMeans[2] && tcMeans[1] < tcMeans[3]) {
		t.Errorf("TC mean z-scores = %v, want group 1 most negative", tcMeans)
	}
	for g, z := range tcMeans {
		if z >= 0 {
			t.Errorf("group %d TC z = %v, want negative (failed drives hotter)", g, z)
		}
	}

	// Fig. 12: group 3 has the most negative POH z-scores (oldest).
	pohMeans := map[int]float64{}
	for _, s := range ch.POHZScores {
		pohMeans[s.GroupNumber] = s.MeanZ()
	}
	if !(pohMeans[3] < pohMeans[1] && pohMeans[3] < pohMeans[2]) {
		t.Errorf("POH mean z-scores = %v, want group 3 most negative", pohMeans)
	}

	// Table III: prediction error rates are small; group 1 (short window,
	// near-good attributes) is the hardest.
	for _, gr := range ch.Results {
		if gr.Prediction == nil {
			t.Fatalf("group %d missing prediction", gr.Group.Number)
		}
		if gr.Prediction.ErrorRate > 0.2 {
			t.Errorf("group %d error rate = %v, want <= 0.2", gr.Group.Number, gr.Prediction.ErrorRate)
		}
	}
	if !(g1.Prediction.ErrorRate > g2.Prediction.ErrorRate) {
		t.Errorf("group 1 error %v should exceed group 2 error %v (paper: 10.8%% vs 5.7%%)",
			g1.Prediction.ErrorRate, g2.Prediction.ErrorRate)
	}

	// Fig. 9: RRER strongly correlates with degradation for groups 1 and
	// 3; RUE and R-RSC are top-two for group 2.
	rrerAbs := func(inf *Influence) float64 {
		for _, c := range inf.ReadWrite {
			if c.Attr == smart.RRER {
				return math.Abs(c.R)
			}
		}
		return 0
	}
	if rrerAbs(g1.Influence) < 0.7 {
		t.Errorf("group 1 |corr(RRER)| = %v, want strong", rrerAbs(g1.Influence))
	}
	top2 := map[smart.Attr]bool{}
	for _, a := range g2.Influence.TopAttrs {
		top2[a] = true
	}
	if !top2[smart.RUE] && !top2[smart.RawRSC] && !top2[smart.CPSC] {
		t.Errorf("group 2 top attrs = %v, want sector-error attributes", g2.Influence.TopAttrs)
	}

	if ch.GroupByNumber(2) != g2 || ch.GroupByNumber(99) != nil {
		t.Error("GroupByNumber lookup")
	}
}

func TestCharacterizeSkipPrediction(t *testing.T) {
	ds := fleet(t)
	ch, err := Characterize(ds, Config{Seed: 1, SkipPrediction: true, GoodSample: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, gr := range ch.Results {
		if gr.Prediction != nil {
			t.Error("prediction should be skipped")
		}
	}
}

func TestTemporalZScoresErrors(t *testing.T) {
	ds := fleet(t)
	cat, err := Categorize(ds, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TemporalZScores(ds, cat.Groups, smart.TC, 0, 8); err == nil {
		t.Error("expected error for maxHours=0")
	}
	empty := dataset.New(ds.Failed, nil)
	if _, err := TemporalZScores(empty, cat.Groups, smart.TC, 100, 8); err == nil {
		t.Error("expected error with no good records")
	}
}

func TestFailureTypeString(t *testing.T) {
	if Logical.String() != "logical" || BadSector.String() != "bad-sector" || ReadWriteHead.String() != "read/write-head" {
		t.Error("type names")
	}
	if FailureType(9).String() == "" {
		t.Error("unknown type should render")
	}
}

func TestHorizonString(t *testing.T) {
	for _, h := range []Horizon{HorizonWindow, Horizon24h, HorizonFull} {
		if h.String() == "" {
			t.Error("empty horizon name")
		}
	}
	if Horizon(9).String() == "" {
		t.Error("unknown horizon should render")
	}
}

func TestCharacterizeDeterministic(t *testing.T) {
	ds := fleet(t)
	a, err := Characterize(ds, Config{Seed: 1, SkipPrediction: true, GoodSample: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh dataset (same generation) and the same seed must reproduce
	// the categorization exactly.
	ds2, err := synth.Generate(synth.DefaultConfig(synth.ScaleSmall))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Characterize(ds2, Config{Seed: 1, SkipPrediction: true, GoodSample: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Categorization.GroupOf {
		if a.Categorization.GroupOf[i] != b.Categorization.GroupOf[i] {
			t.Fatalf("group assignment differs at drive %d", i)
		}
	}
	for g := 1; g <= 3; g++ {
		ga, gb := a.GroupByNumber(g), b.GroupByNumber(g)
		if ga.Summary.MajorityForm != gb.Summary.MajorityForm || ga.Summary.MedianD != gb.Summary.MedianD {
			t.Errorf("group %d signature differs between runs", g)
		}
	}
}

func TestCharacterizeForcedK2HasTypedExtremes(t *testing.T) {
	ds := fleet(t)
	cat, err := Categorize(ds, Config{Seed: 1, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	types := map[FailureType]bool{}
	for _, g := range cat.Groups {
		types[g.Type] = true
	}
	// With two clusters, the bad-sector extreme is still identified.
	if !types[BadSector] {
		t.Errorf("k=2 types = %v, want a bad-sector group", types)
	}
}

func TestAnalyzeInfluenceBadCentroid(t *testing.T) {
	ds := fleet(t)
	cat, err := Categorize(ds, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := &Group{Number: 1, CentroidDrive: -1}
	if _, err := AnalyzeInfluence(ds, g, nil, 2); err == nil {
		t.Error("expected error for invalid centroid index")
	}
	_ = cat
}

func TestGroupPopulationEmpty(t *testing.T) {
	g := &Group{}
	if g.Population(0) != 0 {
		t.Error("empty population should be 0")
	}
}

// TestCharacterizeWorkerEquivalence is the tentpole determinism check:
// the pipeline must produce an identical Characterization whether it runs
// serially or with many workers. Two fresh fleets are used so each run
// also rebuilds the dataset's lazy views under its own worker count.
func TestCharacterizeWorkerEquivalence(t *testing.T) {
	run := func(workers int) *Characterization {
		t.Helper()
		ds, err := synth.Generate(synth.DefaultConfig(synth.ScaleSmall))
		if err != nil {
			t.Fatal(err)
		}
		ch, err := Characterize(ds, Config{Seed: 1, GoodSample: 2000, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return ch
	}
	a, b := run(1), run(4)

	if len(a.Categorization.Elbow) != len(b.Categorization.Elbow) {
		t.Fatalf("elbow lengths differ: %d vs %d", len(a.Categorization.Elbow), len(b.Categorization.Elbow))
	}
	for i := range a.Categorization.Elbow {
		if a.Categorization.Elbow[i] != b.Categorization.Elbow[i] {
			t.Errorf("elbow point %d: %+v vs %+v", i, a.Categorization.Elbow[i], b.Categorization.Elbow[i])
		}
	}
	if a.Categorization.K != b.Categorization.K {
		t.Fatalf("K differs: %d vs %d", a.Categorization.K, b.Categorization.K)
	}
	for i := range a.Categorization.GroupOf {
		if a.Categorization.GroupOf[i] != b.Categorization.GroupOf[i] {
			t.Fatalf("group assignment differs at drive %d", i)
		}
	}
	if len(a.GoodSample) != len(b.GoodSample) {
		t.Fatalf("good sample sizes differ: %d vs %d", len(a.GoodSample), len(b.GoodSample))
	}
	for i := range a.GoodSample {
		if a.GoodSample[i] != b.GoodSample[i] {
			t.Fatalf("good sample differs at record %d", i)
		}
	}
	for i, ga := range a.Results {
		gb := b.Results[i]
		if ga.Group.Number != gb.Group.Number || ga.Group.CentroidDrive != gb.Group.CentroidDrive {
			t.Errorf("group %d identity differs", i+1)
		}
		if ga.Signature.Best != gb.Signature.Best || ga.Signature.BestRMSE != gb.Signature.BestRMSE {
			t.Errorf("group %d centroid signature differs", ga.Group.Number)
		}
		if ga.Summary.MajorityForm != gb.Summary.MajorityForm || ga.Summary.MedianD != gb.Summary.MedianD {
			t.Errorf("group %d summary differs", ga.Group.Number)
		}
		pa, pb := ga.Prediction, gb.Prediction
		if pa.RMSE != pb.RMSE || pa.ErrorRate != pb.ErrorRate ||
			pa.TrainSamples != pb.TrainSamples || pa.TestSamples != pb.TestSamples {
			t.Errorf("group %d prediction differs: %+v vs %+v", ga.Group.Number, pa, pb)
		}
		for f := range pa.Importance {
			if pa.Importance[f] != pb.Importance[f] {
				t.Errorf("group %d importance %d differs: %v vs %v", ga.Group.Number, f, pa.Importance[f], pb.Importance[f])
			}
		}
	}
	sameSeries := func(name string, sa, sb []*ZScoreSeries) {
		if len(sa) != len(sb) {
			t.Fatalf("%s series counts differ: %d vs %d", name, len(sa), len(sb))
		}
		for i := range sa {
			for j := range sa[i].Z {
				za, zb := sa[i].Z[j], sb[i].Z[j]
				if za != zb && !(math.IsNaN(za) && math.IsNaN(zb)) {
					t.Errorf("%s series %d point %d differs: %v vs %v", name, i, j, za, zb)
				}
			}
		}
	}
	sameSeries("TC", a.TCZScores, b.TCZScores)
	sameSeries("POH", a.POHZScores, b.POHZScores)
}
