package core

import (
	"fmt"

	"disksig/internal/dataset"
	"disksig/internal/smart"
	"disksig/internal/stats"
)

// ZScoreSeries is the temporal z-score analysis of one attribute for one
// failure group (Figs. 11 and 12): at each number of hours before failure,
// Eq. (7) compares the group's samples at that time point against all
// good-drive records.
type ZScoreSeries struct {
	GroupNumber int
	Attr        smart.Attr
	// HoursBefore[i] is the time point (hours before failure) of Z[i].
	HoursBefore []int
	// Z holds the Eq. (7) z-scores; NaN where the group has no samples.
	Z []float64
}

// TemporalZScores computes the z-score series of attribute a for each
// group, sampling every step hours up to maxHours before failure. Good
// statistics are aggregated once, streaming, over all good records.
func TemporalZScores(ds *dataset.Dataset, groups []*Group, a smart.Attr, maxHours, step int) ([]*ZScoreSeries, error) {
	if step <= 0 || maxHours <= 0 {
		return nil, fmt.Errorf("core: invalid z-score sampling maxHours=%d step=%d", maxHours, step)
	}
	good := ds.GoodAttrStats(a)
	if good.N() == 0 {
		return nil, fmt.Errorf("core: no good records to compare against")
	}
	failed := ds.NormalizedFailed()
	var out []*ZScoreSeries
	for _, g := range groups {
		s := &ZScoreSeries{GroupNumber: g.Number, Attr: a}
		for h := 0; h <= maxHours; h += step {
			var sample stats.Running
			for _, m := range g.Members {
				p := failed[m]
				idx := p.Len() - 1 - h
				if idx < 0 {
					continue // censored profile shorter than h hours
				}
				sample.Add(p.Records[idx].Values[a])
			}
			s.HoursBefore = append(s.HoursBefore, h)
			s.Z = append(s.Z, stats.ZScore(
				sample.Mean(), sample.Variance(), sample.N(),
				good.Mean(), good.Variance(), good.N(),
			))
		}
		out = append(out, s)
	}
	return out, nil
}

// MeanZ returns the mean of the series' finite z-scores, a scalar summary
// used to order groups ("Group 1 is hottest").
func (s *ZScoreSeries) MeanZ() float64 {
	var r stats.Running
	for _, z := range s.Z {
		if z == z { // skip NaN
			r.Add(z)
		}
	}
	return r.Mean()
}
