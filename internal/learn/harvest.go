// Package learn is the online-learning subsystem: it harvests training
// telemetry from a live fleet snapshot, re-runs the characterization
// pipeline off the ingest hot path, shadow-evaluates the candidate
// model set against the serving one on held-out drives, and promotes
// the candidate only when it wins by a configurable margin. The paper
// extracts signatures once from a fixed observation window; a drifting
// production fleet (new drive generations, shifting degradation
// dynamics) needs this periodic re-characterization to keep alert
// quality from decaying (ROADMAP item 2).
package learn

import (
	"fmt"
	"hash/fnv"

	"disksig/internal/fleet"
	"disksig/internal/smart"
)

// Harvest labeling parameters. Labels are self-relative: a drive is
// called failing when its newest records are degraded relative to its
// own oldest retained records, so the heuristic needs no fleet-wide
// thresholds and survives cohort drift (the very thing retraining is
// for). The eight health-value attributes (indices RRER..SUT) decrease
// as errors mount; raw counters and environmental attributes are
// excluded (POH and TC drift for healthy drives too).
const (
	// harvestMinRecords is the least history a drive needs to be
	// labeled at all; shorter histories train as good drives only if
	// they are long enough to normalize (they never enter the failed
	// cohort).
	harvestMinRecords = 24
	// harvestWindow caps the head/tail comparison windows.
	harvestWindow = 48
	// strongDropPoints and moderateDropPoints are health-value drops
	// (head mean minus tail mean) that mark an attribute as strongly or
	// moderately degraded. Sample noise is well under one point, and
	// the synthetic failure modes ramp their attributes by tens of
	// points, so the bands are wide.
	strongDropPoints   = 10.0
	moderateDropPoints = 4.0
	// holdoutMod holds out every drive whose serial hash is 0 mod this
	// for shadow evaluation; they never enter training.
	holdoutMod = 5
)

// EvalDrive is one held-out drive: its retained telemetry and its
// harvest label, the ground truth of the shadow evaluation.
type EvalDrive struct {
	Serial  string
	Failing bool
	Records []smart.Record
}

// HarvestResult is the training and evaluation material extracted from
// one fleet snapshot.
type HarvestResult struct {
	// Failed and Good are the training profiles (held-out drives
	// excluded). DriveIDs are dense per cohort in serial order.
	Failed []*smart.Profile
	Good   []*smart.Profile
	// Eval holds the held-out drives in serial order.
	Eval []EvalDrive
	// Fingerprint is the deterministic FNV-64a digest of every
	// harvested drive's serial, hour range and label: two harvests of
	// identical telemetry agree exactly.
	Fingerprint string
	// Skipped counts drives with too little history to harvest.
	Skipped int
}

// Harvest extracts labeled training profiles and a held-out evaluation
// cohort from a fleet state's retained drive histories. It is
// deterministic: State.Drives is sorted by serial and the holdout split
// hashes serials, so the same state always yields the same harvest.
func Harvest(st *fleet.State) (*HarvestResult, error) {
	if st == nil {
		return nil, fmt.Errorf("learn: harvesting nil state")
	}
	res := &HarvestResult{}
	digest := fnv.New64a()
	for _, e := range st.Drives {
		n := len(e.History)
		if n < harvestMinRecords {
			res.Skipped++
			continue
		}
		failing := labelFailing(e.History)
		fmt.Fprintf(digest, "%s|%d|%d|%d|%v\n", e.Serial, e.History[0].Hour, e.History[n-1].Hour, n, failing)
		if serialHash(e.Serial)%holdoutMod == 0 {
			res.Eval = append(res.Eval, EvalDrive{Serial: e.Serial, Failing: failing, Records: e.History})
			continue
		}
		p := &smart.Profile{Failed: failing, Records: e.History}
		if failing {
			p.DriveID = len(res.Failed)
			res.Failed = append(res.Failed, p)
		} else {
			p.DriveID = len(res.Good)
			res.Good = append(res.Good, p)
		}
	}
	res.Fingerprint = fmt.Sprintf("%016x", digest.Sum64())
	return res, nil
}

// labelFailing compares the drive's oldest and newest retained records:
// any health attribute that dropped strongly, or two that dropped
// moderately, marks the drive as failing. Multi-attribute because the
// failure modes differ in which attributes ramp (and some terminal
// deltas can be near zero for a given group).
func labelFailing(hist []smart.Record) bool {
	w := len(hist) / 4
	if w > harvestWindow {
		w = harvestWindow
	}
	if w < 1 {
		w = 1
	}
	moderate := 0
	for a := int(smart.RRER); a <= int(smart.SUT); a++ {
		var head, tail float64
		for i := 0; i < w; i++ {
			head += hist[i].Values[a]
			tail += hist[len(hist)-w+i].Values[a]
		}
		drop := (head - tail) / float64(w)
		if drop >= strongDropPoints {
			return true
		}
		if drop >= moderateDropPoints {
			moderate++
		}
	}
	return moderate >= 2
}

// serialHash is the FNV-64a hash of a serial, the holdout selector.
func serialHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
