package learn

import (
	"fmt"

	"disksig/internal/monitor"
	"disksig/internal/parallel"
	"disksig/internal/smart"
)

// Score summarizes one model set's shadow evaluation on the held-out
// cohort: did the monitor flag (reach Warning or worse on) the drives
// the harvest labeled failing, and only those?
type Score struct {
	EvalDrives     int
	Flagged        int
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	Precision      float64
	Recall         float64
	// F1 is the promotion criterion: the harmonic precision/recall
	// mean, 0 when the model flags nothing real.
	F1 float64
}

func (s Score) String() string {
	return fmt.Sprintf("F1 %.3f (precision %.3f, recall %.3f, %d/%d flagged)",
		s.F1, s.Precision, s.Recall, s.Flagged, s.EvalDrives)
}

// Evaluate replays every held-out drive through a fresh monitor built
// from the given model set and scores the flag decisions against the
// harvest labels. It also returns the per-drive decisions (in eval
// order) so callers can measure agreement between two model sets. The
// replay fans out per drive via internal/parallel — evaluation runs off
// the ingest hot path and must not serialize on it.
func Evaluate(models []monitor.GroupModel, norm *smart.Normalizer, mcfg monitor.Config, eval []EvalDrive, workers int) (Score, []bool, error) {
	sc := Score{EvalDrives: len(eval)}
	if len(eval) == 0 {
		return sc, nil, nil
	}
	type outcome struct {
		flagged bool
		err     error
	}
	outcomes := parallel.Map(workers, len(eval), func(i int) outcome {
		m, err := monitor.New(models, norm, mcfg)
		if err != nil {
			return outcome{err: fmt.Errorf("learn: evaluating drive %s: %w", eval[i].Serial, err)}
		}
		for _, rec := range eval[i].Records {
			m.Ingest(0, rec)
		}
		st, ok := m.Status(0)
		return outcome{flagged: ok && st.Severity >= monitor.Warning}
	})
	flags := make([]bool, len(eval))
	for i, o := range outcomes {
		if o.err != nil {
			return sc, nil, o.err
		}
		flags[i] = o.flagged
		switch {
		case o.flagged && eval[i].Failing:
			sc.TruePositives++
		case o.flagged && !eval[i].Failing:
			sc.FalsePositives++
		case !o.flagged && eval[i].Failing:
			sc.FalseNegatives++
		}
		if o.flagged {
			sc.Flagged++
		}
	}
	if sc.TruePositives+sc.FalsePositives > 0 {
		sc.Precision = float64(sc.TruePositives) / float64(sc.TruePositives+sc.FalsePositives)
	}
	if sc.TruePositives+sc.FalseNegatives > 0 {
		sc.Recall = float64(sc.TruePositives) / float64(sc.TruePositives+sc.FalseNegatives)
	}
	if sc.Precision+sc.Recall > 0 {
		sc.F1 = 2 * sc.Precision * sc.Recall / (sc.Precision + sc.Recall)
	}
	return sc, flags, nil
}
