package learn

import (
	"fmt"
	"testing"

	"disksig/internal/core"
	"disksig/internal/fleet"
	"disksig/internal/monitor"
	"disksig/internal/persist"
	"disksig/internal/regression"
	"disksig/internal/smart"
)

// history synthesizes n hourly records whose health attributes start at
// base and whose attribute a ramps down by drop points over the run.
// Every other health attribute stays flat, so the label comes from a
// alone.
func history(n int, a smart.Attr, base, drop float64) []smart.Record {
	recs := make([]smart.Record, n)
	for i := range recs {
		var v smart.Values
		for x := int(smart.RRER); x <= int(smart.SUT); x++ {
			v[x] = base
		}
		v[a] = base - drop*float64(i)/float64(n-1)
		recs[i] = smart.Record{Hour: i, Values: v}
	}
	return recs
}

func stateWith(entries ...fleet.DriveEntry) *fleet.State {
	st := &fleet.State{Drives: entries, HasHour: true}
	for _, e := range entries {
		if n := len(e.History); n > 0 && e.History[n-1].Hour > st.MaxHour {
			st.MaxHour = e.History[n-1].Hour
		}
	}
	return st
}

func TestLabelFailing(t *testing.T) {
	for _, tc := range []struct {
		name string
		hist []smart.Record
		want bool
	}{
		{"flat-healthy", history(48, smart.RRER, 95, 0), false},
		{"strong-single-drop", history(48, smart.RRER, 95, 30), true},
		{"moderate-single-drop", history(48, smart.RRER, 95, 6), false},
		{"noise-below-moderate", history(48, smart.SER, 95, 2), false},
	} {
		if got := labelFailing(tc.hist); got != tc.want {
			t.Errorf("labelFailing(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Two moderate drops together mark the drive failing even though
	// neither alone is strong.
	hist := history(48, smart.RRER, 95, 6)
	for i := range hist {
		hist[i].Values[smart.RSC] = 95 - 6*float64(i)/float64(len(hist)-1)
	}
	if !labelFailing(hist) {
		t.Error("two moderate drops did not mark the drive failing")
	}
}

func TestHarvestCohortsAndDeterminism(t *testing.T) {
	var entries []fleet.DriveEntry
	wantFailed, wantGood, wantEval := 0, 0, 0
	for i := 0; i < 30; i++ {
		serial := fmt.Sprintf("drv-%04d", i)
		failing := i%3 == 0
		drop := 0.0
		if failing {
			drop = 25
		}
		entries = append(entries, fleet.DriveEntry{
			Serial:  serial,
			History: history(60, smart.RRER, 95, drop),
		})
		if serialHash(serial)%holdoutMod == 0 {
			wantEval++
		} else if failing {
			wantFailed++
		} else {
			wantGood++
		}
	}
	// Too little history: skipped, never labeled.
	entries = append(entries, fleet.DriveEntry{Serial: "short-1", History: history(10, smart.RRER, 95, 30)})

	h, err := Harvest(stateWith(entries...))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Failed) != wantFailed || len(h.Good) != wantGood || len(h.Eval) != wantEval {
		t.Fatalf("cohorts = %d failed / %d good / %d eval, want %d/%d/%d",
			len(h.Failed), len(h.Good), len(h.Eval), wantFailed, wantGood, wantEval)
	}
	if h.Skipped != 1 {
		t.Fatalf("Skipped = %d, want 1", h.Skipped)
	}
	for _, e := range h.Eval {
		// Every eval drive's label must match its construction.
		var i int
		fmt.Sscanf(e.Serial, "drv-%d", &i)
		if want := i%3 == 0; e.Failing != want {
			t.Errorf("eval drive %s labeled failing=%v, want %v", e.Serial, e.Failing, want)
		}
	}

	// Determinism: the same telemetry harvests to the same fingerprint;
	// any label-relevant change moves it.
	h2, err := Harvest(stateWith(entries...))
	if err != nil {
		t.Fatal(err)
	}
	if h.Fingerprint != h2.Fingerprint {
		t.Fatalf("fingerprints differ across identical harvests: %s vs %s", h.Fingerprint, h2.Fingerprint)
	}
	entries[0].History = history(61, smart.RRER, 95, 25)
	h3, err := Harvest(stateWith(entries...))
	if err != nil {
		t.Fatal(err)
	}
	if h3.Fingerprint == h.Fingerprint {
		t.Fatal("fingerprint unchanged after a drive's history changed")
	}
}

// scorePredictor maps one health attribute's normalized value straight
// to the degradation score, making eval outcomes easy to stage.
type scorePredictor struct{}

func (scorePredictor) Predict(x []float64) float64 { return x[smart.RRER] }

func evalNormalizer() *smart.Normalizer {
	n := smart.NewNormalizer()
	var lo, hi smart.Values
	for a := range lo {
		lo[a] = -1
		hi[a] = 1
	}
	n.Observe(lo)
	n.Observe(hi)
	return n
}

func evalModels() []monitor.GroupModel {
	return []monitor.GroupModel{{
		Group:     1,
		Type:      core.Logical,
		Form:      regression.FormQuadratic,
		WindowD:   12,
		Predictor: scorePredictor{},
	}}
}

// flatDrive builds an eval drive whose RRER sits at a constant score:
// negative scores degrade past Warning, positive ones stay healthy.
func flatDrive(serial string, failing bool, score float64) EvalDrive {
	recs := make([]smart.Record, 30)
	for i := range recs {
		var v smart.Values
		v[smart.RRER] = score
		recs[i] = smart.Record{Hour: i, Values: v}
	}
	return EvalDrive{Serial: serial, Failing: failing, Records: recs}
}

func TestEvaluateScoring(t *testing.T) {
	eval := []EvalDrive{
		flatDrive("tp-1", true, -0.9),  // failing, flagged: TP
		flatDrive("tp-2", true, -0.9),  // TP
		flatDrive("fn-1", true, 0.9),   // failing, missed: FN
		flatDrive("fp-1", false, -0.9), // healthy, flagged: FP
		flatDrive("tn-1", false, 0.9),  // healthy, clean
		flatDrive("tn-2", false, 0.9),
	}
	sc, flags, err := Evaluate(evalModels(), evalNormalizer(), monitor.Config{Smoothing: 1}, eval, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sc.TruePositives != 2 || sc.FalsePositives != 1 || sc.FalseNegatives != 1 {
		t.Fatalf("confusion = TP %d / FP %d / FN %d, want 2/1/1",
			sc.TruePositives, sc.FalsePositives, sc.FalseNegatives)
	}
	if sc.Flagged != 3 || sc.EvalDrives != 6 {
		t.Fatalf("Flagged/EvalDrives = %d/%d, want 3/6", sc.Flagged, sc.EvalDrives)
	}
	wantP, wantR := 2.0/3.0, 2.0/3.0
	wantF1 := 2 * wantP * wantR / (wantP + wantR)
	if sc.Precision != wantP || sc.Recall != wantR || sc.F1 != wantF1 {
		t.Fatalf("P/R/F1 = %.3f/%.3f/%.3f, want %.3f/%.3f/%.3f",
			sc.Precision, sc.Recall, sc.F1, wantP, wantR, wantF1)
	}
	wantFlags := []bool{true, true, false, true, false, false}
	for i, f := range flags {
		if f != wantFlags[i] {
			t.Errorf("flags[%d] (%s) = %v, want %v", i, eval[i].Serial, f, wantFlags[i])
		}
	}
	// Empty cohort: a zero score, no error.
	sc, flags, err = Evaluate(evalModels(), evalNormalizer(), monitor.Config{}, nil, 2)
	if err != nil || sc.EvalDrives != 0 || flags != nil {
		t.Fatalf("empty eval = %+v, %v, %v", sc, flags, err)
	}
}

func TestRetrainOnceSkipsSmallCohort(t *testing.T) {
	// A store with a handful of drives: the cycle must report a skipped
	// promotion (cohort too small), not an error, and never call Promote.
	store, err := fleet.New(evalModels(), evalNormalizer(), fleet.Config{Shards: 2, HistoryHours: 100})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		serial := fmt.Sprintf("tiny-%d", d)
		for h := 0; h < 30; h++ {
			var v smart.Values
			v[smart.RRER] = 0.9
			store.Ingest(serial, smart.Record{Hour: h, Values: v})
		}
	}
	r := &Retrainer{
		Store: store,
		Cfg:   Config{Core: core.Config{Seed: 1}},
		Promote: func(*persist.ModelArtifact) error {
			t.Fatal("Promote called for a skipped cycle")
			return nil
		},
	}
	res, err := r.RetrainOnce(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if res.Promoted {
		t.Fatal("undersized cohort was promoted")
	}
	if res.Reason == "" || res.ServingVersion != 1 || res.CandidateVersion != 2 {
		t.Fatalf("skipped cycle result = %+v", res)
	}
}
