package learn

import (
	"context"
	"fmt"
	"time"

	"disksig/internal/core"
	"disksig/internal/dataset"
	"disksig/internal/fleet"
	"disksig/internal/monitor"
	"disksig/internal/persist"
)

// Config parameterizes one retraining cycle.
type Config struct {
	// Core is the characterization configuration of the retrain run —
	// normally the same seed/worker settings the serving models were
	// trained with, so drift in the results means drift in the fleet,
	// not in the pipeline.
	Core core.Config
	// Margin is the shadow-evaluation margin: the candidate is promoted
	// only when its F1 beats the serving model's by at least this much.
	// Zero promotes on ties — set a positive margin to make promotions
	// conservative.
	Margin float64
	// MinFailed/MinGood are the smallest training cohorts worth
	// retraining on; <= 0 means 4 failed / 8 good.
	MinFailed int
	MinGood   int
}

func (c Config) withDefaults() Config {
	if c.MinFailed <= 0 {
		c.MinFailed = 4
	}
	if c.MinGood <= 0 {
		c.MinGood = 8
	}
	return c
}

// Result reports one retraining cycle: what was harvested, how both
// model sets scored, and whether the candidate was promoted.
type Result struct {
	// Fingerprint is the harvest's deterministic training fingerprint.
	Fingerprint string `json:"fingerprint"`
	// TrainedMaxHour is the fleet telemetry hour the snapshot was at.
	TrainedMaxHour int `json:"trained_max_hour"`
	// ServingVersion is the model version the cycle evaluated against;
	// CandidateVersion is what a promotion swapped (or would swap) to.
	ServingVersion   int `json:"serving_version"`
	CandidateVersion int `json:"candidate_version"`
	// Cohort sizes.
	FailedDrives  int `json:"failed_drives"`
	GoodDrives    int `json:"good_drives"`
	EvalDrives    int `json:"eval_drives"`
	SkippedDrives int `json:"skipped_drives"`
	// Serving and Candidate are the shadow-evaluation scores.
	Serving   Score `json:"serving"`
	Candidate Score `json:"candidate"`
	// Agreement is the fraction of held-out drives where both model
	// sets made the same flag decision.
	Agreement float64 `json:"agreement"`
	// Promoted reports whether the candidate was swapped in; Reason
	// explains a skipped promotion (or records the winning margin).
	Promoted bool   `json:"promoted"`
	Reason   string `json:"reason"`
	// Notes carries training-quality caveats (e.g. clamped windows).
	Notes []string `json:"notes,omitempty"`
	// TrainMillis and PromoteMillis time the characterization run and
	// the promotion (artifact save + swap + snapshot).
	TrainMillis   int64 `json:"train_millis"`
	PromoteMillis int64 `json:"promote_millis"`
}

// Retrainer runs retraining cycles against a live store. The cycle
// reads a state snapshot and trains entirely off the ingest hot path;
// only a promotion (the Promote hook) briefly excludes ingestion.
type Retrainer struct {
	Store *fleet.Store
	Cfg   Config
	// Promote commits a winning candidate — the server wires it to
	// persist the artifact and hot-swap the store under the snapshot
	// gate (persist.Manager.SnapshotWith + fleet.Store.SwapModels).
	// Required: a Retrainer without a Promote hook only evaluates.
	Promote func(*persist.ModelArtifact) error
}

// RetrainOnce runs one cycle: snapshot, harvest, characterize,
// shadow-evaluate, and promote when the candidate wins by the margin.
// An undersized or unlabelable fleet is a skipped cycle (Promoted
// false, Reason set), not an error; errors mean the cycle itself could
// not run.
func (r *Retrainer) RetrainOnce(ctx context.Context) (*Result, error) {
	cfg := r.Cfg.withDefaults()
	st := r.Store.ExportState()
	h, err := Harvest(st)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Fingerprint:      h.Fingerprint,
		TrainedMaxHour:   st.MaxHour,
		ServingVersion:   st.ModelVersion,
		CandidateVersion: st.ModelVersion + 1,
		FailedDrives:     len(h.Failed),
		GoodDrives:       len(h.Good),
		EvalDrives:       len(h.Eval),
		SkippedDrives:    h.Skipped,
	}
	if len(h.Failed) < cfg.MinFailed || len(h.Good) < cfg.MinGood {
		res.Reason = fmt.Sprintf("training cohort too small: %d failed / %d good (need %d/%d)",
			len(h.Failed), len(h.Good), cfg.MinFailed, cfg.MinGood)
		return res, nil
	}

	trainStart := time.Now()
	ds := dataset.New(h.Failed, h.Good)
	ch, err := core.CharacterizeCtx(ctx, ds, cfg.Core)
	if err != nil {
		return nil, fmt.Errorf("learn: characterizing harvested fleet: %w", err)
	}
	candModels, err := monitor.ModelsFromCharacterization(ch)
	if err != nil {
		return nil, fmt.Errorf("learn: extracting candidate models: %w", err)
	}
	res.TrainMillis = time.Since(trainStart).Milliseconds()
	for _, gm := range candModels {
		if gm.Note != "" {
			res.Notes = append(res.Notes, fmt.Sprintf("group %d: %s", gm.Group, gm.Note))
		}
	}

	serving, servFlags, err := Evaluate(st.Models, st.Norm, st.MonitorCfg, h.Eval, cfg.Core.Workers)
	if err != nil {
		return nil, err
	}
	candidate, candFlags, err := Evaluate(candModels, ch.Dataset.Norm, st.MonitorCfg, h.Eval, cfg.Core.Workers)
	if err != nil {
		return nil, err
	}
	res.Serving, res.Candidate = serving, candidate
	agree := 0
	for i := range servFlags {
		if servFlags[i] == candFlags[i] {
			agree++
		}
	}
	if len(servFlags) > 0 {
		res.Agreement = float64(agree) / float64(len(servFlags))
	}

	failingEval := candidate.TruePositives + candidate.FalseNegatives
	switch {
	case failingEval == 0:
		res.Reason = "no failing drives in the held-out cohort: recall unmeasurable"
		return res, nil
	case candidate.F1 < serving.F1+cfg.Margin:
		res.Reason = fmt.Sprintf("candidate F1 %.3f does not beat serving %.3f by margin %.3f",
			candidate.F1, serving.F1, cfg.Margin)
		return res, nil
	}

	if r.Promote == nil {
		res.Reason = fmt.Sprintf("candidate wins (F1 %.3f vs %.3f) but no promote hook is wired",
			candidate.F1, serving.F1)
		return res, nil
	}
	art := &persist.ModelArtifact{
		Version:        res.CandidateVersion,
		Fingerprint:    h.Fingerprint,
		TrainedMaxHour: st.MaxHour,
		FailedDrives:   len(h.Failed),
		GoodDrives:     len(h.Good),
		Models:         candModels,
		Norm:           ch.Dataset.Norm,
		Notes:          res.Notes,
	}
	promoteStart := time.Now()
	if err := r.Promote(art); err != nil {
		return nil, fmt.Errorf("learn: promoting version %d: %w", art.Version, err)
	}
	res.PromoteMillis = time.Since(promoteStart).Milliseconds()
	res.Promoted = true
	res.Reason = fmt.Sprintf("candidate F1 %.3f beat serving %.3f by >= %.3f", candidate.F1, serving.F1, cfg.Margin)
	return res, nil
}
