// Package synth generates synthetic data-center disk fleets with SMART
// health telemetry. It is the repository's substitute for the paper's
// proprietary eight-week production trace (23,395 drives, 433 failed).
//
// The generator reproduces the population structure the paper reports —
// failure fraction, the Fig. 1 censoring distribution of failed-drive
// profile lengths, and three failure modes in 59.6 / 7.6 / 32.8 %
// proportions — and drives each failed drive's raw error processes with a
// group-specific severity ramp (quadratic, linear, or cubic inside the
// final degradation window). The analysis pipeline never sees the
// generative labels; it must recover the cluster structure, degradation
// windows, signature polynomial orders, attribute correlations and
// z-score orderings from the telemetry alone.
package synth

import (
	"fmt"
	"math"
)

// Scale selects a fleet size preset.
type Scale int

const (
	// ScaleSmall is sized for unit tests: seconds to generate and analyze.
	ScaleSmall Scale = iota
	// ScaleMedium is the default for benches and examples: the paper's
	// 433 failed drives with a reduced good population.
	ScaleMedium
	// ScalePaper is the full population of the paper: 23,395 drives.
	// Generating it takes a few hundred MB of memory; use cmd/diskgen.
	ScalePaper
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScalePaper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale parses "small", "medium" or "paper".
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "paper":
		return ScalePaper, nil
	}
	return 0, fmt.Errorf("synth: unknown scale %q (want small, medium or paper)", s)
}

// Config parameterizes fleet generation. The zero value is not valid; use
// DefaultConfig or NewConfig.
type Config struct {
	// Seed drives all randomness. Two generations with equal Config
	// produce identical fleets.
	Seed int64

	// GoodDrives and FailedDrives are the population counts.
	GoodDrives   int
	FailedDrives int

	// GoodProfileHours is the monitoring length for good drives (the
	// paper provides up to seven days of records per good drive).
	GoodProfileHours int
	// FailedProfileHours is the maximum profile length of a failed drive
	// (the paper records 20 days prior to failure).
	FailedProfileHours int

	// GroupFractions are the proportions of the three failure modes
	// (logical, bad-sector, head). They must sum to 1.
	GroupFractions [3]float64

	// FullProfileFrac is the fraction of failed drives whose profile
	// spans the full FailedProfileHours (paper: 51.3 %); Over10DayFrac is
	// the fraction with more than half of it (paper: 78.5 %). The
	// remainder is censored to shorter lengths (drives that entered
	// monitoring late), reproducing Fig. 1.
	FullProfileFrac float64
	Over10DayFrac   float64

	// Workers bounds generation parallelism; <= 0 means GOMAXPROCS.
	Workers int
}

// DefaultConfig returns the configuration for a scale preset with seed 1.
func DefaultConfig(s Scale) Config {
	cfg := Config{
		Seed:               1,
		GoodProfileHours:   168, // 7 days
		FailedProfileHours: 480, // 20 days
		GroupFractions:     [3]float64{0.596, 0.076, 0.328},
		FullProfileFrac:    0.513,
		Over10DayFrac:      0.785,
	}
	switch s {
	case ScaleSmall:
		cfg.GoodDrives = 240
		cfg.FailedDrives = 72
		cfg.GoodProfileHours = 96
		cfg.FailedProfileHours = 480
	case ScaleMedium:
		cfg.GoodDrives = 2400
		cfg.FailedDrives = 433
	case ScalePaper:
		cfg.GoodDrives = 22962
		cfg.FailedDrives = 433
	default:
		panic(fmt.Sprintf("synth: unknown scale %v", s))
	}
	return cfg
}

// BackupWorkloadConfig returns a fleet configuration modeling a dedicated
// backup storage system, where bad-sector failures dominate (the paper
// contrasts its mixed-workload data center against EMC's RAIDShield
// backup systems, Sec. IV-B). The failure-mode mix flips toward Group 2.
func BackupWorkloadConfig(s Scale) Config {
	cfg := DefaultConfig(s)
	cfg.GroupFractions = [3]float64{0.18, 0.64, 0.18}
	return cfg
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.GoodDrives < 0 || c.FailedDrives < 0 {
		return fmt.Errorf("synth: negative drive counts %d/%d", c.GoodDrives, c.FailedDrives)
	}
	if c.GoodDrives+c.FailedDrives == 0 {
		return fmt.Errorf("synth: empty fleet")
	}
	if c.GoodProfileHours < 2 || c.FailedProfileHours < 48 {
		return fmt.Errorf("synth: profile hours too short (%d good, %d failed)", c.GoodProfileHours, c.FailedProfileHours)
	}
	var sum float64
	for _, f := range c.GroupFractions {
		if f < 0 {
			return fmt.Errorf("synth: negative group fraction %v", f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("synth: group fractions sum to %v, want 1", sum)
	}
	if c.FullProfileFrac < 0 || c.FullProfileFrac > 1 || c.Over10DayFrac < c.FullProfileFrac || c.Over10DayFrac > 1 {
		return fmt.Errorf("synth: invalid censoring fractions full=%v over10=%v", c.FullProfileFrac, c.Over10DayFrac)
	}
	return nil
}
