package synth

import (
	"math"
	"math/rand"

	"disksig/internal/smart"
)

// baseline is the healthy operating point of one drive. Every raw process
// fluctuates around it; failed drives additionally superimpose their
// group's degradation deltas scaled by the severity ramp.
type baseline struct {
	tempC    float64 // resting temperature, Celsius
	readErr  float64 // baseline raw read error rate
	ecc      float64 // baseline hardware-ECC-recovered rate
	seekErr  float64 // baseline seek error rate
	spinUpMs float64 // baseline spin-up time
	realloc  int     // benign factory-remapped sectors
	hfw      int     // benign high-fly write count
	poh0     float64 // drive age (powered-on hours) when monitoring began
}

// rawDelta is a failure mode's displacement of the raw processes at full
// severity (sev = 1, the failure record).
type rawDelta struct {
	readErr float64
	seekErr float64
	ecc     float64
	spinUp  float64
	realloc float64 // cumulative counters: ramp only inside the window
	uncorr  float64
	hfw     float64
	pending float64
}

// groupProfile captures a failure mode's generative parameters: the raw
// deltas at failure, the persistent temperature elevation (present through
// the whole profile, the Fig. 11 effect), and the drive-age distribution
// (the Fig. 12 effect).
type groupProfile struct {
	// delta returns the drive-specific displacement vector; called once
	// per drive so modes like group 2's "diverse R-RSC" can vary widely
	// between drives.
	delta func(rng *rand.Rand) rawDelta
	// persistentTempC is sampled once per drive.
	persistentTempC func(rng *rand.Rand) float64
	// ageHours is sampled once per drive.
	ageHours func(rng *rand.Rand) float64
}

// jit scales v by a uniform factor in [1-spread, 1+spread].
func jit(rng *rand.Rand, v, spread float64) float64 {
	return v * (1 + spread*(2*rng.Float64()-1))
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + (hi-lo)*rng.Float64()
}

// The three failure modes. Indices 0..2 correspond to the paper's Groups
// 1..3 (logical, bad-sector, read/write-head failures).
var groupProfiles = [3]groupProfile{
	// Group 1 — logical failures. Attribute values stay close to good
	// states: a small number of write errors and internal scan errors,
	// medium read errors. The distinguishing trait is a persistently
	// elevated temperature (hottest of all groups) and a short quadratic
	// degradation window.
	{
		delta: func(rng *rand.Rand) rawDelta {
			return rawDelta{
				readErr: jit(rng, 40, 0.25),
				seekErr: jit(rng, 2.0, 0.3),
				ecc:     jit(rng, 25, 0.3),
				spinUp:  jit(rng, 120, 0.3),
				realloc: jit(rng, 30, 0.5),
				uncorr:  math.Floor(uniform(rng, 0, 3)),
				hfw:     math.Floor(uniform(rng, 0, 2)),
				pending: jit(rng, 4, 0.5),
			}
		},
		persistentTempC: func(rng *rand.Rand) float64 { return uniform(rng, 4.5, 7) },
		ageHours:        func(rng *rand.Rand) float64 { return uniform(rng, 8000, 30000) },
	},
	// Group 2 — bad-sector failures. Highest number of uncorrectable
	// errors, more media (read) errors, widely varying reallocated
	// sectors, and a long monotone linear degradation.
	{
		delta: func(rng *rand.Rand) rawDelta {
			return rawDelta{
				readErr: jit(rng, 100, 0.2),
				seekErr: jit(rng, 1.5, 0.3),
				ecc:     jit(rng, 150, 0.25),
				spinUp:  jit(rng, 80, 0.3),
				realloc: uniform(rng, 0, 2500), // "diverse R-RSC"
				uncorr:  jit(rng, 70, 0.35),
				hfw:     uniform(rng, 0, 70), // the wide-range HFW minority of Fig. 2
				pending: jit(rng, 60, 0.3),
			}
		},
		persistentTempC: func(rng *rand.Rand) float64 { return uniform(rng, 2, 3.5) },
		ageHours:        func(rng *rand.Rand) float64 { return uniform(rng, 15000, 30000) },
	},
	// Group 3 — read/write-head failures. Highest number of reallocated
	// sectors (write errors), larger high-fly writes, longest power-on
	// hours, low media errors and internal scan errors; cubic window.
	{
		delta: func(rng *rand.Rand) rawDelta {
			return rawDelta{
				readErr: jit(rng, 10, 0.4),
				seekErr: jit(rng, 6, 0.3),
				ecc:     jit(rng, 15, 0.4),
				spinUp:  jit(rng, 800, 0.25),
				realloc: uniform(rng, 4350, 4500), // near the fleet maximum
				uncorr:  math.Floor(uniform(rng, 0, 3)),
				hfw:     uniform(rng, 4, 10), // larger than the other groups, yet modest
				pending: jit(rng, 6, 0.5),
			}
		},
		persistentTempC: func(rng *rand.Rand) float64 { return uniform(rng, 3, 4.5) },
		ageHours:        func(rng *rand.Rand) float64 { return uniform(rng, 30000, 40000) },
	},
}

// newBaseline samples a healthy operating point by first drawing the
// drive's workload and deriving the error processes from it. The wide
// utilization spread makes good and failed temperature distributions
// overlap — Group 1 is distinguishable by TC only statistically, not per
// drive.
func newBaseline(rng *rand.Rand) baseline {
	return baselineFor(drawWorkload(rng), rng)
}

// measurement noise of the rate-like raw processes, applied per sample.
const (
	noiseReadErr = 0.5
	noiseEcc     = 2.0
	noiseSeekErr = 0.08
	// Spin-up time only changes when the drive actually spins up, so the
	// hourly samples carry very little noise; a large value here would
	// dominate SUT's narrow fleet-wide span after Eq. (1) normalization.
	noiseSpinUp = 4.0
	// Temperature varies mildly hour to hour; a large diurnal swing would
	// put a 24-hour oscillation into every distance-to-failure curve and
	// drown the degradation windows of the near-good Group 1 drives.
	noiseTempC   = 0.2
	diurnalTempC = 0.25
)

// goodDrive generates the profile of a drive that never fails.
func goodDrive(id, hours int, rng *rand.Rand) *smart.Profile {
	b := newBaseline(rng)
	p := &smart.Profile{DriveID: id, Failed: false}
	p.Records = make([]smart.Record, 0, hours)
	phase := rng.Float64() * 24
	pending := 0
	for h := 0; h < hours; h++ {
		// Rare benign pending-sector episodes that the scrubber resolves.
		if pending == 0 && rng.Float64() < 0.002 {
			pending = 1 + rng.Intn(2)
		} else if pending > 0 && rng.Float64() < 0.3 {
			pending--
		}
		s := rawSample(b, h, phase, rng)
		s.PendingSectors = pending
		p.Records = append(p.Records, smart.Record{Hour: h, Values: smart.MapToRecord(s)})
	}
	return p
}

// rawSample draws the noisy healthy raw state at hour h.
func rawSample(b baseline, h int, phase float64, rng *rand.Rand) smart.RawState {
	diurnal := diurnalTempC * math.Sin(2*math.Pi*(float64(h)+phase)/24)
	return smart.RawState{
		ReadErrorRate: nonNeg(b.readErr + rng.NormFloat64()*noiseReadErr),
		Reallocated:   b.realloc,
		SeekErrorRate: nonNeg(b.seekErr + rng.NormFloat64()*noiseSeekErr),
		Uncorrectable: 0,
		HighFlyWrites: b.hfw,
		ECCRecovered:  nonNeg(b.ecc + rng.NormFloat64()*noiseEcc),
		SpinUpMillis:  nonNeg(b.spinUpMs + rng.NormFloat64()*noiseSpinUp),
		PowerOnHours:  b.poh0 + float64(h),
		TemperatureC:  b.tempC + diurnal + rng.NormFloat64()*noiseTempC,
	}
}

func nonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// failedDrive generates the profile of a drive that fails with the given
// mode (group 1..3) after profileHours of monitoring. The last record is
// the failure record.
func failedDrive(id, group, profileHours int, rng *rand.Rand) *smart.Profile {
	b := newBaseline(rng)
	gp := groupProfiles[group-1]
	b.poh0 = gp.ageHours(rng)
	delta := gp.delta(rng)
	persistentTemp := gp.persistentTempC(rng)
	sev := newSeverity(group, profileHours, rng)

	p := &smart.Profile{DriveID: id, Failed: true, TrueGroup: group}
	p.Records = make([]smart.Record, 0, profileHours)
	phase := rng.Float64() * 24
	for h := 0; h < profileHours; h++ {
		t := profileHours - 1 - h // hours remaining until failure
		sv := sev.at(t)
		// Cumulative counters ramp only inside the final window so they
		// never decrease; rate-like processes follow the full severity
		// including pre-window transient episodes.
		var winSv float64
		if t <= sev.window {
			winSv = sv
		}
		s := rawSample(b, h, phase, rng)
		s.ReadErrorRate = nonNeg(s.ReadErrorRate + delta.readErr*sv)
		s.SeekErrorRate = nonNeg(s.SeekErrorRate + delta.seekErr*sv)
		s.ECCRecovered = nonNeg(s.ECCRecovered + delta.ecc*sv)
		s.SpinUpMillis = nonNeg(s.SpinUpMillis + delta.spinUp*sv)
		s.PendingSectors = int(delta.pending * sv)
		s.Reallocated = b.realloc + int(delta.realloc*winSv)
		s.Uncorrectable = int(delta.uncorr * winSv)
		s.HighFlyWrites = b.hfw + int(delta.hfw*winSv)
		// The temperature elevation persists through the whole profile and
		// intensifies mildly toward the failure (Fig. 11's narrowing gap at
		// 480 hours before failure).
		ramp := 0.75 + 0.25*(1-float64(t)/float64(profileHours))
		s.TemperatureC += persistentTemp * ramp
		p.Records = append(p.Records, smart.Record{Hour: h, Values: smart.MapToRecord(s)})
	}
	return p
}
