package synth

import (
	"fmt"
	"math"
	"math/rand"

	"disksig/internal/dataset"
	"disksig/internal/parallel"
	"disksig/internal/smart"
)

// SSD failure modes. Group numbers are per-class labels: the mixed
// pipeline characterizes each device class separately, so they never
// collide with the HDD groups 1..3.
const (
	// SSDGroupWearOut is gradual wear-out: the cell population exhausts
	// its rated program/erase cycles while the reserved pool depletes
	// over a long linear window.
	SSDGroupWearOut = 1
	// SSDGroupCliff is sudden death: the drive looks healthy until a
	// controller/firmware collapse a few hours before failure.
	SSDGroupCliff = 2
)

// SSDConfig parameterizes flash sub-fleet generation. The zero value is
// not valid; use DefaultSSDConfig.
type SSDConfig struct {
	// Seed drives all randomness of the SSD sub-fleet.
	Seed int64

	GoodDrives   int
	FailedDrives int

	// GoodProfileHours and FailedProfileHours bound the monitoring
	// lengths, mirroring Config.
	GoodProfileHours   int
	FailedProfileHours int

	// CliffFraction is the fraction of failed SSDs that die suddenly
	// rather than wearing out ("The Life and Death of SSDs and HDDs"
	// reports sudden death as a substantial minority mode).
	CliffFraction float64

	// Workers bounds generation parallelism; <= 0 means GOMAXPROCS.
	Workers int
}

// DefaultSSDConfig returns the SSD sub-fleet configuration for a scale
// preset with seed 1.
func DefaultSSDConfig(s Scale) SSDConfig {
	cfg := SSDConfig{
		Seed:               1,
		GoodProfileHours:   168,
		FailedProfileHours: 480,
		CliffFraction:      0.4,
	}
	switch s {
	case ScaleSmall:
		cfg.GoodDrives = 160
		cfg.FailedDrives = 48
		cfg.GoodProfileHours = 96
	case ScaleMedium:
		cfg.GoodDrives = 1200
		cfg.FailedDrives = 200
	case ScalePaper:
		cfg.GoodDrives = 8000
		cfg.FailedDrives = 200
	default:
		panic(fmt.Sprintf("synth: unknown scale %v", s))
	}
	return cfg
}

// Validate reports whether the SSD configuration is usable.
func (c SSDConfig) Validate() error {
	if c.GoodDrives < 0 || c.FailedDrives < 0 {
		return fmt.Errorf("synth: negative SSD drive counts %d/%d", c.GoodDrives, c.FailedDrives)
	}
	if c.GoodDrives+c.FailedDrives == 0 {
		return fmt.Errorf("synth: empty SSD fleet")
	}
	if c.GoodProfileHours < 2 || c.FailedProfileHours < 48 {
		return fmt.Errorf("synth: SSD profile hours too short (%d good, %d failed)", c.GoodProfileHours, c.FailedProfileHours)
	}
	if c.CliffFraction < 0 || c.CliffFraction > 1 {
		return fmt.Errorf("synth: cliff fraction %v outside [0, 1]", c.CliffFraction)
	}
	return nil
}

// GenerateSSD produces a synthetic flash sub-fleet. Profiles carry
// Class == smart.SSD and per-class TrueGroup labels; drive IDs start at
// idBase 0. Deterministic in cfg at any worker count.
func GenerateSSD(cfg SSDConfig) (*dataset.Dataset, error) {
	failed, good, err := generateSSDProfiles(cfg, 0)
	if err != nil {
		return nil, err
	}
	return dataset.New(failed, good), nil
}

// generateSSDProfiles is GenerateSSD without the dataset fit, with drive
// IDs offset by idBase so a mixed fleet keeps IDs disjoint across
// classes.
func generateSSDProfiles(cfg SSDConfig, idBase int) (failed, good []*smart.Profile, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	plans := planSSDDrives(cfg, idBase)
	profiles := parallel.Map(cfg.Workers, len(plans), func(i int) *smart.Profile {
		p := plans[i]
		// The seed stream is offset from the HDD generator's so a mixed
		// fleet's two sub-populations are independent even at equal seeds.
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(p.id)*7919 + 524287))
		switch p.group {
		case SSDGroupWearOut:
			return wearOutSSD(p.id, p.hours, rng)
		case SSDGroupCliff:
			return cliffSSD(p.id, p.hours, rng)
		default:
			return goodSSD(p.id, p.hours, rng)
		}
	})
	for _, p := range profiles {
		if p.Failed {
			failed = append(failed, p)
		} else {
			good = append(good, p)
		}
	}
	return failed, good, nil
}

// planSSDDrives draws mode assignments and profile lengths with one
// sequential RNG, mirroring planDrives.
func planSSDDrives(cfg SSDConfig, idBase int) []drivePlan {
	rng := rand.New(rand.NewSource(cfg.Seed + 7_368_787))
	cliffs := int(math.Round(cfg.CliffFraction * float64(cfg.FailedDrives)))
	groups := make([]int, cfg.FailedDrives)
	for i := range groups {
		if i < cliffs {
			groups[i] = SSDGroupCliff
		} else {
			groups[i] = SSDGroupWearOut
		}
	}
	rng.Shuffle(len(groups), func(i, j int) { groups[i], groups[j] = groups[j], groups[i] })

	plans := make([]drivePlan, 0, cfg.FailedDrives+cfg.GoodDrives)
	for i := 0; i < cfg.FailedDrives; i++ {
		hours := cfg.FailedProfileHours
		// A minority entered monitoring late, as in the HDD fleet, but
		// every profile keeps at least two days.
		if rng.Float64() > 0.6 {
			hours = 48 + rng.Intn(cfg.FailedProfileHours-48+1)
		}
		plans = append(plans, drivePlan{id: idBase + i, group: groups[i], hours: hours})
	}
	for i := 0; i < cfg.GoodDrives; i++ {
		hours := cfg.GoodProfileHours
		if rng.Float64() < 0.15 {
			hours = cfg.GoodProfileHours/2 + rng.Intn(cfg.GoodProfileHours/2)
		}
		plans = append(plans, drivePlan{id: idBase + cfg.FailedDrives + i, group: 0, hours: hours})
	}
	return plans
}

// ssdBaseline is the healthy operating point of one flash drive.
type ssdBaseline struct {
	tempC    float64 // resting controller temperature, Celsius
	ratedPE  float64 // vendor endurance rating, cycles
	pe0      float64 // average P/E cycles when monitoring began
	peRate   float64 // cycles accrued per hour under the drive's workload
	reserved int     // total reserved block pool
	used0    int     // reserved blocks already consumed
	retired0 int     // NAND blocks already retired
	poh0     float64 // drive age when monitoring began
}

func newSSDBaseline(rng *rand.Rand) ssdBaseline {
	rated := uniform(rng, 30_000, 60_000)
	return ssdBaseline{
		tempC:    uniform(rng, 28, 40),
		ratedPE:  rated,
		pe0:      uniform(rng, 0.05, 0.45) * rated,
		peRate:   uniform(rng, 0.5, 3),
		reserved: 2000 + rng.Intn(2000),
		used0:    rng.Intn(40),
		retired0: rng.Intn(20),
		poh0:     uniform(rng, 2000, 20000),
	}
}

// ssdSample draws the noisy healthy raw state at hour h. Flash drives
// have no mechanics, so the noise is purely thermal.
func ssdSample(b ssdBaseline, h int, phase float64, rng *rand.Rand) smart.SSDRawState {
	diurnal := diurnalTempC * math.Sin(2*math.Pi*(float64(h)+phase)/24)
	return smart.SSDRawState{
		PECycles:      b.pe0 + b.peRate*float64(h),
		RatedPECycles: b.ratedPE,
		RetiredBlocks: b.retired0,
		ReservedTotal: b.reserved,
		ReservedUsed:  b.used0,
		PowerOnHours:  b.poh0 + float64(h),
		TemperatureC:  b.tempC + diurnal + rng.NormFloat64()*noiseTempC,
	}
}

// goodSSD generates the profile of a flash drive that never fails.
func goodSSD(id, hours int, rng *rand.Rand) *smart.Profile {
	b := newSSDBaseline(rng)
	p := &smart.Profile{DriveID: id, Class: smart.SSD, Failed: false}
	p.Records = make([]smart.Record, 0, hours)
	phase := rng.Float64() * 24
	retired := b.retired0
	for h := 0; h < hours; h++ {
		// Rare benign block retirements over the drive's life.
		if rng.Float64() < 0.001 {
			retired++
		}
		s := ssdSample(b, h, phase, rng)
		s.RetiredBlocks = retired
		s.ReservedUsed = b.used0 + (retired - b.retired0)
		p.Records = append(p.Records, smart.Record{Hour: h, Values: smart.MapSSDToRecord(s)})
	}
	return p
}

// wearOutSSD generates a gradual wear-out failure: the cell population
// runs out its rated endurance while block retirements consume the
// reserved pool over a long linear window ending at the failure record.
func wearOutSSD(id, hours int, rng *rand.Rand) *smart.Profile {
	b := newSSDBaseline(rng)
	// A worn starting point: most of the endurance already consumed.
	b.pe0 = uniform(rng, 0.72, 0.85) * b.ratedPE
	peEnd := uniform(rng, 0.98, 1.04) * b.ratedPE
	b.peRate = (peEnd - b.pe0) / float64(hours)
	window := hours / 2
	if w := 120 + rng.Intn(200); w < window {
		window = w
	}
	usedEnd := int(uniform(rng, 0.82, 0.98) * float64(b.reserved))
	retiredEnd := b.retired0 + int(uniform(rng, 1200, 1600))
	uncorrEnd := int(uniform(rng, 4, 12))

	p := &smart.Profile{DriveID: id, Class: smart.SSD, Failed: true, TrueGroup: SSDGroupWearOut}
	p.Records = make([]smart.Record, 0, hours)
	phase := rng.Float64() * 24
	for h := 0; h < hours; h++ {
		t := hours - 1 - h // hours remaining until failure
		var sv float64     // linear severity inside the window
		if t <= window {
			sv = 1 - float64(t)/float64(window)
		}
		s := ssdSample(b, h, phase, rng)
		s.RetiredBlocks = b.retired0 + int(float64(retiredEnd-b.retired0)*sv)
		s.ReservedUsed = b.used0 + int(float64(usedEnd-b.used0)*sv)
		s.Uncorrectable = int(float64(uncorrEnd) * sv)
		s.UncorrectedECC = int(uniform(rng, 0, 3) * sv)
		// Wear raises the program temperature slightly toward the end.
		s.TemperatureC += 2.5 * sv
		p.Records = append(p.Records, smart.Record{Hour: h, Values: smart.MapSSDToRecord(s)})
	}
	return p
}

// cliffSSD generates a sudden-death failure: a mid-life drive with no
// wear signal collapses within a few hours — program and erase
// failures, uncorrectable ECC, interface downshifts and reserved-pool
// exhaustion all spike together, and the failure record is the bottom
// of the cliff.
func cliffSSD(id, hours int, rng *rand.Rand) *smart.Profile {
	b := newSSDBaseline(rng)
	cliff := 2 + rng.Intn(4) // cliff window: the final 2..5 hours
	pfEnd := int(uniform(rng, 250, 400))
	efEnd := int(uniform(rng, 120, 220))
	ueccEnd := int(uniform(rng, 150, 280))
	uncorrEnd := int(uniform(rng, 70, 110))
	downEnd := int(uniform(rng, 15, 35))

	p := &smart.Profile{DriveID: id, Class: smart.SSD, Failed: true, TrueGroup: SSDGroupCliff}
	p.Records = make([]smart.Record, 0, hours)
	phase := rng.Float64() * 24
	for h := 0; h < hours; h++ {
		t := hours - 1 - h
		s := ssdSample(b, h, phase, rng)
		if t < cliff {
			// Cubic collapse: nearly all of the damage lands on the final
			// two records.
			x := 1 - float64(t)/float64(cliff)
			sv := x * x * x
			s.ProgramFails = int(float64(pfEnd) * sv)
			s.EraseFails = int(float64(efEnd) * sv)
			s.UncorrectedECC = int(float64(ueccEnd) * sv)
			s.Uncorrectable = int(float64(uncorrEnd) * sv)
			s.SATADownshifts = int(float64(downEnd) * sv)
			s.ReservedUsed = b.used0 + int(float64(b.reserved-b.used0)*sv)
			s.TemperatureC += 9 * sv
		}
		p.Records = append(p.Records, smart.Record{Hour: h, Values: smart.MapSSDToRecord(s)})
	}
	return p
}

// MixedFleet configures a heterogeneous HDD+SSD fleet.
type MixedFleet struct {
	HDD Config
	SSD SSDConfig
}

// DefaultMixedFleet returns the mixed-fleet configuration for a scale
// preset with seed 1 in both sub-fleets.
func DefaultMixedFleet(s Scale) MixedFleet {
	return MixedFleet{HDD: DefaultConfig(s), SSD: DefaultSSDConfig(s)}
}

// WithSeed returns the configuration with both sub-fleet seeds set.
func (m MixedFleet) WithSeed(seed int64) MixedFleet {
	m.HDD.Seed = seed
	m.SSD.Seed = seed
	return m
}

// Validate reports whether both sub-fleet configurations are usable.
func (m MixedFleet) Validate() error {
	if err := m.HDD.Validate(); err != nil {
		return err
	}
	return m.SSD.Validate()
}

// GenerateMixed produces one interleaved heterogeneous fleet: the HDD
// population (Class zero value) and the SSD population (Class stamped,
// drive IDs offset past the HDD range) in a single dataset. The
// dataset's global normalizer spans both classes and must not be used
// for analysis — the mixed characterization pipeline re-partitions by
// class and fits per-class normalizers (see core.CharacterizeMixed).
func GenerateMixed(cfg MixedFleet) (*dataset.Dataset, error) {
	hdd, err := Generate(cfg.HDD)
	if err != nil {
		return nil, err
	}
	sfailed, sgood, err := generateSSDProfiles(cfg.SSD, cfg.HDD.FailedDrives+cfg.HDD.GoodDrives)
	if err != nil {
		return nil, err
	}
	failed := append(append([]*smart.Profile{}, hdd.Failed...), sfailed...)
	good := append(append([]*smart.Profile{}, hdd.Good...), sgood...)
	return dataset.New(failed, good), nil
}

// GroupCountClass returns how many failed drives of the given device
// class were generated with the given per-class mode. Like GroupCount it
// reads generative labels and must only score the analysis.
func GroupCountClass(d *dataset.Dataset, class smart.DeviceClass, group int) int {
	n := 0
	for _, p := range d.Failed {
		if p.Class == class && p.TrueGroup == group {
			n++
		}
	}
	return n
}
