package synth

import (
	"math/rand"
	"reflect"
	"testing"

	"disksig/internal/smart"
)

func TestGenerateSSDDeterminism(t *testing.T) {
	cfg := DefaultSSDConfig(ScaleSmall)
	a, err := GenerateSSD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := GenerateSSD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 7
	c, err := GenerateSSD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Failed, b.Failed) || !reflect.DeepEqual(a.Good, b.Good) {
		t.Fatal("SSD generation differs between default and 1 worker")
	}
	if !reflect.DeepEqual(a.Failed, c.Failed) || !reflect.DeepEqual(a.Good, c.Good) {
		t.Fatal("SSD generation differs between default and 7 workers")
	}
	for _, p := range append(append([]*smart.Profile{}, a.Failed...), a.Good...) {
		if p.Class != smart.SSD {
			t.Fatalf("drive %d generated with class %v, want ssd", p.DriveID, p.Class)
		}
	}
}

// TestSSDTrajectories pins the two flash failure dynamics, table-driven:
// wear-out must be a gradual monotone run-down of endurance and spare
// blocks with no sudden collapse, while cliff failures must keep a
// healthy profile until a final few-hour window and then crash to the
// failure record.
func TestSSDTrajectories(t *testing.T) {
	cases := []struct {
		name  string
		gen   func(id, hours int, rng *rand.Rand) *smart.Profile
		group int
		// maxHourlyDrop bounds the worst single-hour fall of the
		// wear-health attribute (WLC, the RRER slot) across the profile.
		maxHourlyDrop float64
		// healthyUntil is the number of trailing hours outside of which
		// the error-count healths (PFC, UECC slots) must still be perfect.
		healthyUntil int
		// wantFinal constrains selected failure-record attributes.
		wantFinal func(t *testing.T, v smart.Values)
	}{
		{
			name:          "wear-out",
			gen:           wearOutSSD,
			group:         SSDGroupWearOut,
			maxHourlyDrop: 1.5,
			healthyUntil:  0, // uncorrectables may accrue through the window
			wantFinal: func(t *testing.T, v smart.Values) {
				if v[smart.RRER] > 6 {
					t.Errorf("wear-out failure record keeps WLC health %.1f; endurance not exhausted", v[smart.RRER])
				}
				if v[smart.HFW] > 25 {
					t.Errorf("wear-out failure record keeps %.1f%% reserved blocks; pool not depleted", v[smart.HFW])
				}
				if v[smart.SER] < 95 {
					t.Errorf("wear-out failure record shows program-fail health %.1f; that is a cliff signature", v[smart.SER])
				}
			},
		},
		{
			name:          "cliff",
			gen:           cliffSSD,
			group:         SSDGroupCliff,
			maxHourlyDrop: 100, // the cliff itself may fall arbitrarily fast
			healthyUntil:  6,
			wantFinal: func(t *testing.T, v smart.Values) {
				if v[smart.SER] > 10 || v[smart.CPSC] > 10 {
					t.Errorf("cliff failure record is too healthy (PFC %.1f, UECC %.1f)", v[smart.SER], v[smart.CPSC])
				}
				if v[smart.HFW] > 5 {
					t.Errorf("cliff failure record keeps %.1f%% reserved blocks", v[smart.HFW])
				}
				if v[smart.RRER] < 20 {
					t.Errorf("cliff drive died worn out (WLC %.1f); cliffs must strike mid-life", v[smart.RRER])
				}
			},
		},
	}
	const hours = 240
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				rng := rand.New(rand.NewSource(900 + seed))
				p := tc.gen(int(seed), hours, rng)
				if !p.Failed || p.TrueGroup != tc.group || p.Class != smart.SSD {
					t.Fatalf("seed %d: profile labeled Failed=%v group=%d class=%v", seed, p.Failed, p.TrueGroup, p.Class)
				}
				if p.Len() != hours {
					t.Fatalf("seed %d: %d records, want %d", seed, p.Len(), hours)
				}
				wlc := p.AttrSeries(smart.RRER)
				for h := 1; h < len(wlc); h++ {
					if drop := wlc[h-1] - wlc[h]; drop > tc.maxHourlyDrop {
						t.Fatalf("seed %d: WLC drops %.2f in one hour at h=%d (limit %.2f)", seed, drop, h, tc.maxHourlyDrop)
					}
					if wlc[h] > wlc[h-1] {
						t.Fatalf("seed %d: wear health recovered at h=%d; endurance is cumulative", seed, h)
					}
				}
				for h := 0; h < hours-tc.healthyUntil; h++ {
					v := p.Records[h].Values
					if v[smart.SER] != 100 || v[smart.CPSC] != 100 {
						if tc.healthyUntil > 0 {
							t.Fatalf("seed %d: error healths degraded at h=%d, %d hours before failure", seed, h, hours-1-h)
						}
					}
				}
				tc.wantFinal(t, p.FailureRecord().Values)
			}
		})
	}
}

func TestGenerateMixed(t *testing.T) {
	cfg := DefaultMixedFleet(ScaleSmall).WithSeed(5)
	ds, err := GenerateMixed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantFailed := cfg.HDD.FailedDrives + cfg.SSD.FailedDrives
	wantGood := cfg.HDD.GoodDrives + cfg.SSD.GoodDrives
	if len(ds.Failed) != wantFailed || len(ds.Good) != wantGood {
		t.Fatalf("mixed fleet has %d/%d drives, want %d/%d", len(ds.Failed), len(ds.Good), wantFailed, wantGood)
	}
	ids := map[int]bool{}
	byClass := map[smart.DeviceClass]int{}
	for _, p := range append(append([]*smart.Profile{}, ds.Failed...), ds.Good...) {
		if ids[p.DriveID] {
			t.Fatalf("duplicate drive ID %d across classes", p.DriveID)
		}
		ids[p.DriveID] = true
		byClass[p.Class]++
	}
	if byClass[smart.HDD] != cfg.HDD.FailedDrives+cfg.HDD.GoodDrives {
		t.Fatalf("HDD population %d, want %d", byClass[smart.HDD], cfg.HDD.FailedDrives+cfg.HDD.GoodDrives)
	}
	if byClass[smart.SSD] != cfg.SSD.FailedDrives+cfg.SSD.GoodDrives {
		t.Fatalf("SSD population %d, want %d", byClass[smart.SSD], cfg.SSD.FailedDrives+cfg.SSD.GoodDrives)
	}
	// Per-class mode accounting: every failed SSD is either wear-out or
	// cliff, with the configured split.
	wear := GroupCountClass(ds, smart.SSD, SSDGroupWearOut)
	cliff := GroupCountClass(ds, smart.SSD, SSDGroupCliff)
	if wear+cliff != cfg.SSD.FailedDrives {
		t.Fatalf("SSD modes %d+%d don't cover %d failed drives", wear, cliff, cfg.SSD.FailedDrives)
	}
	if cliff == 0 || wear == 0 {
		t.Fatalf("degenerate mode split wear=%d cliff=%d", wear, cliff)
	}
	// HDD generation must be bit-identical to a pure-HDD fleet: mixing in
	// SSDs must not perturb the legacy population.
	pure, err := Generate(cfg.HDD)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Failed[:cfg.HDD.FailedDrives], pure.Failed) {
		t.Fatal("HDD failed profiles differ between pure and mixed generation")
	}
}
