package synth

import (
	"math/rand"
	"sort"

	"disksig/internal/dataset"
	"disksig/internal/parallel"
	"disksig/internal/smart"
)

// Generate produces a synthetic fleet dataset for the configuration.
// Generation is deterministic in cfg (including cfg.Seed) and parallelized
// across drives.
func Generate(cfg Config) (*dataset.Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plans := planDrives(cfg)
	// A per-drive generator seeded from (fleet seed, drive ID) keeps
	// output independent of scheduling.
	profiles := parallel.Map(cfg.Workers, len(plans), func(i int) *smart.Profile {
		p := plans[i]
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(p.id)*7919))
		if p.group == 0 {
			return goodDrive(p.id, p.hours, rng)
		}
		return failedDrive(p.id, p.group, p.hours, rng)
	})

	var failed, good []*smart.Profile
	for _, p := range profiles {
		if p.Failed {
			failed = append(failed, p)
		} else {
			good = append(good, p)
		}
	}
	return dataset.New(failed, good), nil
}

// drivePlan is the pre-drawn identity of one drive: its ID, failure group
// (0 = good) and profile length.
type drivePlan struct {
	id    int
	group int
	hours int
}

// planDrives draws group assignments and censored profile lengths with a
// single sequential RNG so the fleet composition is independent of worker
// scheduling.
func planDrives(cfg Config) []drivePlan {
	rng := rand.New(rand.NewSource(cfg.Seed))
	plans := make([]drivePlan, 0, cfg.FailedDrives+cfg.GoodDrives)
	groups := groupAssignments(cfg.FailedDrives, cfg.GroupFractions)
	for i := 0; i < cfg.FailedDrives; i++ {
		plans = append(plans, drivePlan{
			id:    i,
			group: groups[i],
			hours: censoredHours(cfg, rng),
		})
	}
	for i := 0; i < cfg.GoodDrives; i++ {
		// Good drives are monitored for up to GoodProfileHours; most have
		// the full window, a minority joined late.
		hours := cfg.GoodProfileHours
		if rng.Float64() < 0.15 {
			hours = cfg.GoodProfileHours/2 + rng.Intn(cfg.GoodProfileHours/2)
		}
		plans = append(plans, drivePlan{id: cfg.FailedDrives + i, group: 0, hours: hours})
	}
	return plans
}

// groupAssignments splits n failed drives into the three groups by the
// largest-remainder method, then returns the per-drive group (1..3) in a
// deterministic interleaved order.
func groupAssignments(n int, fractions [3]float64) []int {
	counts := [3]int{}
	assigned := 0
	type rem struct {
		g int
		r float64
	}
	var rems []rem
	for g, f := range fractions {
		exact := f * float64(n)
		counts[g] = int(exact)
		assigned += counts[g]
		rems = append(rems, rem{g: g, r: exact - float64(counts[g])})
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].r != rems[j].r {
			return rems[i].r > rems[j].r
		}
		return rems[i].g < rems[j].g
	})
	for i := 0; assigned < n; i++ {
		counts[rems[i%3].g]++
		assigned++
	}
	out := make([]int, 0, n)
	for g, c := range counts {
		for i := 0; i < c; i++ {
			out = append(out, g+1)
		}
	}
	// Deterministically shuffle so drive IDs don't encode the group.
	rng := rand.New(rand.NewSource(int64(n)*2654435761 + 17))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// censoredHours draws a failed drive's monitored profile length per the
// Fig. 1 distribution: FullProfileFrac of drives have the full profile,
// Over10DayFrac have more than half of it, the rest are shorter (but at
// least two days, enough to hold any degradation window).
func censoredHours(cfg Config, rng *rand.Rand) int {
	full := cfg.FailedProfileHours
	half := full / 2
	u := rng.Float64()
	switch {
	case u < cfg.FullProfileFrac:
		return full
	case u < cfg.Over10DayFrac:
		return half + 1 + rng.Intn(full-half-1)
	default:
		return 48 + rng.Intn(half-48)
	}
}

// GroupCount returns how many failed drives in the dataset were generated
// with the given mode (1..3). It reads the generative labels and therefore
// must only be used to *score* the analysis, never inside it.
func GroupCount(d *dataset.Dataset, group int) int {
	n := 0
	for _, p := range d.Failed {
		if p.TrueGroup == group {
			n++
		}
	}
	return n
}
