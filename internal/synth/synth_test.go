package synth

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"disksig/internal/smart"
	"disksig/internal/stats"
)

func TestScaleParseString(t *testing.T) {
	for _, s := range []Scale{ScaleSmall, ScaleMedium, ScalePaper} {
		got, err := ParseScale(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScale(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("expected error for unknown scale")
	}
	if Scale(99).String() == "" {
		t.Error("unknown scale should still render")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	for _, s := range []Scale{ScaleSmall, ScaleMedium, ScalePaper} {
		if err := DefaultConfig(s).Validate(); err != nil {
			t.Errorf("DefaultConfig(%v) invalid: %v", s, err)
		}
	}
}

func TestConfigValidateRejects(t *testing.T) {
	base := DefaultConfig(ScaleSmall)
	cases := []func(*Config){
		func(c *Config) { c.GoodDrives = -1 },
		func(c *Config) { c.GoodDrives, c.FailedDrives = 0, 0 },
		func(c *Config) { c.GoodProfileHours = 1 },
		func(c *Config) { c.FailedProfileHours = 10 },
		func(c *Config) { c.GroupFractions = [3]float64{0.5, 0.5, 0.5} },
		func(c *Config) { c.GroupFractions = [3]float64{-0.1, 0.6, 0.5} },
		func(c *Config) { c.FullProfileFrac = 0.9; c.Over10DayFrac = 0.5 },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestGroupAssignmentsCounts(t *testing.T) {
	gs := groupAssignments(433, [3]float64{0.596, 0.076, 0.328})
	counts := map[int]int{}
	for _, g := range gs {
		counts[g]++
	}
	// Paper: 258 / 33 / 142.
	if counts[1] != 258 || counts[2] != 33 || counts[3] != 142 {
		t.Errorf("group counts = %v, want 258/33/142", counts)
	}
}

func TestGroupAssignmentsSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		gs := groupAssignments(n, [3]float64{0.596, 0.076, 0.328})
		if len(gs) != n {
			return false
		}
		for _, g := range gs {
			if g < 1 || g > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSeverityWindowRamp(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for group := 1; group <= 3; group++ {
		s := newSeverity(group, 480, rng)
		if s.at(0) != 1 {
			t.Errorf("group %d: sev(0) = %v, want 1", group, s.at(0))
		}
		if got := s.at(s.window); got != 0 {
			t.Errorf("group %d: sev(window) = %v, want 0", group, got)
		}
		// Monotone non-increasing in t inside the window.
		prev := math.Inf(1)
		for tt := 0; tt <= s.window; tt++ {
			v := s.at(tt)
			if v > prev {
				t.Errorf("group %d: severity not monotone at t=%d", group, tt)
				break
			}
			prev = v
		}
	}
}

func TestSeverityWindowSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		if w := newSeverity(1, 480, rng).window; w < 2 || w > 12 {
			t.Fatalf("group 1 window %d outside [2,12]", w)
		}
		if w := newSeverity(2, 480, rng).window; w < 300 || w > 460 {
			t.Fatalf("group 2 window %d outside [300,460]", w)
		}
		if w := newSeverity(3, 480, rng).window; w < 10 || w > 24 {
			t.Fatalf("group 3 window %d outside [10,24]", w)
		}
	}
}

func TestSeverityWindowClippedToProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := newSeverity(2, 100, rng)
	if s.window >= 100 {
		t.Errorf("window %d not clipped to profile 100", s.window)
	}
}

func TestSeverityGroup2NoBumps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := newSeverity(2, 480, rng)
	if len(s.bumps) != 0 {
		t.Errorf("group 2 should have no bumps, got %d", len(s.bumps))
	}
}

func TestSeverityBumpsStayOutsideWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		for _, g := range []int{1, 3} {
			s := newSeverity(g, 480, rng)
			for _, b := range s.bumps {
				if b.start <= s.window {
					t.Fatalf("group %d: bump at %d overlaps window %d", g, b.start, s.window)
				}
			}
		}
	}
}

func TestSeverityInvalidGroupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newSeverity(4, 480, rand.New(rand.NewSource(1)))
}

func TestGoodDriveProfile(t *testing.T) {
	p := goodDrive(5, 96, rand.New(rand.NewSource(1)))
	if p.Failed || p.DriveID != 5 || p.Len() != 96 {
		t.Fatalf("profile: failed=%v id=%d len=%d", p.Failed, p.DriveID, p.Len())
	}
	// Healthy drives stay near full health on error attributes.
	for _, a := range []smart.Attr{RUEAttr(), smart.HFW} {
		series := p.AttrSeries(a)
		if min, _ := stats.MinMax(series); min < 95 {
			t.Errorf("good drive %s dipped to %v", a, min)
		}
	}
	// POH advances by one hour per sample.
	poh := p.AttrSeries(smart.POH)
	if !(poh[0] > poh[len(poh)-1]) {
		t.Error("POH health value should decrease with age")
	}
}

// RUEAttr avoids an unused-import dance in table-driven tests.
func RUEAttr() smart.Attr { return smart.RUE }

func TestFailedDriveDeterministic(t *testing.T) {
	a := failedDrive(3, 1, 200, rand.New(rand.NewSource(42)))
	b := failedDrive(3, 1, 200, rand.New(rand.NewSource(42)))
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i].Values != b.Records[i].Values {
			t.Fatalf("records differ at %d", i)
		}
	}
}

func TestFailedDriveGroupManifestations(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g1 := failedDrive(0, 1, 480, rng)
	g2 := failedDrive(1, 2, 480, rng)
	g3 := failedDrive(2, 3, 480, rng)

	fr1 := g1.FailureRecord().Values
	fr2 := g2.FailureRecord().Values
	fr3 := g3.FailureRecord().Values

	if !(fr2[smart.RUE] < fr1[smart.RUE] && fr2[smart.RUE] < fr3[smart.RUE]) {
		t.Errorf("group 2 should have the lowest RUE health: %v %v %v",
			fr1[smart.RUE], fr2[smart.RUE], fr3[smart.RUE])
	}
	if !(fr3[smart.RawRSC] > fr1[smart.RawRSC] && fr3[smart.RawRSC] > fr2[smart.RawRSC]) {
		t.Errorf("group 3 should have the highest raw reallocated count: %v %v %v",
			fr1[smart.RawRSC], fr2[smart.RawRSC], fr3[smart.RawRSC])
	}
	if fr3[smart.RawRSC] < 4300 {
		t.Errorf("group 3 R-RSC = %v, want near fleet max", fr3[smart.RawRSC])
	}
	if !(fr3[smart.HFW] < fr1[smart.HFW]) {
		t.Errorf("group 3 should have more high-fly writes than group 1")
	}
	// Group 1 R/W attributes remain close to good states.
	if fr1[smart.RUE] < 95 || fr1[smart.RawRSC] > 60 {
		t.Errorf("group 1 failure record should look nearly healthy: RUE=%v R-RSC=%v",
			fr1[smart.RUE], fr1[smart.RawRSC])
	}
}

func TestFailedDriveCumulativeCountersMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for group := 1; group <= 3; group++ {
		p := failedDrive(group, group, 480, rng)
		for _, a := range []smart.Attr{smart.RawRSC} {
			prev := math.Inf(-1)
			for i, r := range p.Records {
				if r.Values[a] < prev {
					t.Errorf("group %d: cumulative %s decreased at hour %d", group, a, i)
					break
				}
				prev = r.Values[a]
			}
		}
	}
}

func TestFailedDriveHotterThanGood(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	good := goodDrive(0, 480, rng)
	g1 := failedDrive(1, 1, 480, rng)
	// TC is a health value: lower means hotter.
	goodTC := stats.Mean(good.AttrSeries(smart.TC))
	g1TC := stats.Mean(g1.AttrSeries(smart.TC))
	if g1TC >= goodTC-2 {
		t.Errorf("group 1 TC health %v should be well below good %v", g1TC, goodTC)
	}
}

func TestGenerateSmallFleet(t *testing.T) {
	cfg := DefaultConfig(ScaleSmall)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Failed) != cfg.FailedDrives || len(ds.Good) != cfg.GoodDrives {
		t.Fatalf("population = %d/%d, want %d/%d", len(ds.Failed), len(ds.Good), cfg.FailedDrives, cfg.GoodDrives)
	}
	// All three groups are represented.
	for g := 1; g <= 3; g++ {
		if GroupCount(ds, g) == 0 {
			t.Errorf("group %d empty", g)
		}
	}
	// Group proportions follow the configuration.
	if got := GroupCount(ds, 1); math.Abs(float64(got)/float64(cfg.FailedDrives)-0.596) > 0.03 {
		t.Errorf("group 1 fraction = %v", float64(got)/float64(cfg.FailedDrives))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(ScaleSmall)
	cfg.GoodDrives, cfg.FailedDrives = 20, 10
	cfg.Workers = 4
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Failed) != len(b.Failed) {
		t.Fatal("failed counts differ")
	}
	for i := range a.Failed {
		pa, pb := a.Failed[i], b.Failed[i]
		if pa.DriveID != pb.DriveID || pa.Len() != pb.Len() {
			t.Fatalf("profile %d metadata differs", i)
		}
		for j := range pa.Records {
			if pa.Records[j].Values != pb.Records[j].Values {
				t.Fatalf("drive %d record %d differs between worker counts", i, j)
			}
		}
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Fatal("expected error for zero config")
	}
}

func TestCensoredHoursDistribution(t *testing.T) {
	cfg := DefaultConfig(ScaleMedium)
	rng := rand.New(rand.NewSource(21))
	n := 20000
	full, over10 := 0, 0
	for i := 0; i < n; i++ {
		h := censoredHours(cfg, rng)
		if h < 48 || h > cfg.FailedProfileHours {
			t.Fatalf("censored hours %d out of range", h)
		}
		if h == cfg.FailedProfileHours {
			full++
		}
		if h > cfg.FailedProfileHours/2 {
			over10++
		}
	}
	if f := float64(full) / float64(n); math.Abs(f-0.513) > 0.02 {
		t.Errorf("full-profile fraction = %v, want ~0.513", f)
	}
	if f := float64(over10) / float64(n); math.Abs(f-0.785) > 0.02 {
		t.Errorf(">10-day fraction = %v, want ~0.785", f)
	}
}

func TestWorkloadDerivedBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// Busier drives run hotter; more random access means more seek errors.
	hot := baselineFor(Workload{Utilization: 0.9, ReadFraction: 0.5, RandomAccess: 0.2}, rng)
	cool := baselineFor(Workload{Utilization: 0.1, ReadFraction: 0.5, RandomAccess: 0.2}, rng)
	if !(hot.tempC > cool.tempC+5) {
		t.Errorf("tempC: busy %v vs idle %v", hot.tempC, cool.tempC)
	}
	if !(hot.readErr > cool.readErr) || !(hot.ecc > cool.ecc) {
		t.Errorf("read errors should scale with read volume: %v/%v vs %v/%v",
			hot.readErr, hot.ecc, cool.readErr, cool.ecc)
	}
	random := baselineFor(Workload{Utilization: 0.5, ReadFraction: 0.5, RandomAccess: 0.95}, rng)
	sequential := baselineFor(Workload{Utilization: 0.5, ReadFraction: 0.5, RandomAccess: 0.05}, rng)
	if !(random.seekErr > sequential.seekErr+1) {
		t.Errorf("seekErr: random %v vs sequential %v", random.seekErr, sequential.seekErr)
	}
}

func TestWorkloadBaselineEnvelopes(t *testing.T) {
	// The derived operating points stay inside the fleet envelopes the
	// analysis is calibrated against.
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 2000; i++ {
		b := baselineFor(drawWorkload(rng), rng)
		if b.tempC < 26 || b.tempC > 36 {
			t.Fatalf("tempC = %v outside [26, 36]", b.tempC)
		}
		if b.readErr < 1 || b.readErr > 5 {
			t.Fatalf("readErr = %v outside [1, 5]", b.readErr)
		}
		if b.ecc < 10 || b.ecc > 30 {
			t.Fatalf("ecc = %v outside [10, 30]", b.ecc)
		}
		if b.seekErr < 0.5 || b.seekErr > 3 {
			t.Fatalf("seekErr = %v outside [0.5, 3]", b.seekErr)
		}
	}
}

func TestGeneratePaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale fleet generation is memory- and time-intensive")
	}
	cfg := DefaultConfig(ScalePaper)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := ds.Counts()
	if c.FailedDrives != 433 || c.GoodDrives != 22962 {
		t.Fatalf("population = %d/%d, want 433/22962", c.FailedDrives, c.GoodDrives)
	}
	// The paper's 1.85% replacement rate.
	if r := ds.FailureRate(); math.Abs(r-0.0185) > 0.0005 {
		t.Errorf("failure rate = %v, want ~0.0185", r)
	}
	// Good drives contribute millions of records, failed drives ~150k
	// (censoring shortens some profiles), matching the paper's 3.85M/156k
	// proportions.
	if c.GoodRecords < 3_000_000 {
		t.Errorf("good records = %d, want millions", c.GoodRecords)
	}
	if c.FailedRecords < 120_000 || c.FailedRecords > 210_000 {
		t.Errorf("failed records = %d, want ~156k", c.FailedRecords)
	}
	// Exact paper group split at 433 drives.
	if GroupCount(ds, 1) != 258 || GroupCount(ds, 2) != 33 || GroupCount(ds, 3) != 142 {
		t.Errorf("groups = %d/%d/%d, want 258/33/142",
			GroupCount(ds, 1), GroupCount(ds, 2), GroupCount(ds, 3))
	}
}
