package synth

import (
	"math"
	"math/rand"
)

// severity models how far a failed drive's error processes have advanced
// toward the failure state: 0 is the drive's healthy baseline, 1 is the
// failure record. Inside the final degradation window of d hours the ramp
// follows the group's polynomial,
//
//	group 1 (logical):    sev(t) = 1 - (t/d)^2
//	group 2 (bad sector): sev(t) = 1 - (t/d)
//	group 3 (head):       sev(t) = 1 - (t/d)^3
//
// with t the hours remaining until failure. Groups 1 and 3 additionally
// exhibit episodic pre-window "bumps" (transient partial degradations that
// recover), which produce the fluctuating distance curves of Fig. 7(a)
// and 7(c); group 2 degrades monotonically over nearly the whole profile
// (Fig. 7(b)).
type severity struct {
	window int     // degradation window d, in hours
	order  int     // polynomial order of the in-window ramp (1, 2 or 3)
	bumps  []bump  // pre-window transient episodes
	floor  float64 // residual pre-window severity level (small)
}

// bump is a transient triangular degradation episode: severity rises
// linearly to peak at the midpoint of [start, start+width) hours before
// failure, then falls back.
type bump struct {
	start int // hours before failure at which the episode begins (nearest to failure)
	width int
	peak  float64
}

// at returns the severity t hours before failure.
func (s *severity) at(t int) float64 {
	if t < 0 {
		t = 0
	}
	if t <= s.window {
		x := float64(t) / float64(s.window)
		var ramp float64
		switch s.order {
		case 1:
			ramp = 1 - x
		case 2:
			ramp = 1 - x*x
		default:
			ramp = 1 - x*x*x
		}
		// The ramp dominates the bump floor inside the window.
		return ramp
	}
	v := s.floor
	for _, b := range s.bumps {
		if t >= b.start && t < b.start+b.width {
			// Triangular profile over the episode.
			pos := float64(t-b.start) / float64(b.width)
			tri := 1 - math.Abs(2*pos-1)
			v += b.peak * tri
		}
	}
	if v > 0.9 {
		v = 0.9 // episodes never reach the failure state
	}
	return v
}

// newSeverity draws a severity model for one failed drive.
//
// profileHours is the drive's (possibly censored) monitored length; the
// window is clipped so it fits inside the profile.
func newSeverity(group int, profileHours int, rng *rand.Rand) *severity {
	s := &severity{}
	switch group {
	case 1:
		s.order = 2
		s.window = 2 + rng.Intn(11) // 2..12, paper: "no greater than 12"
	case 2:
		s.order = 1
		// Nearly the whole profile degrades monotonically; the centroid in
		// the paper has d = 377 of a 480-hour profile.
		s.window = 300 + rng.Intn(161) // 300..460
	case 3:
		s.order = 3
		s.window = 10 + rng.Intn(15) // 10..24, paper: "ranges from 10 to 24"
	default:
		panic("synth: invalid failure group")
	}
	if s.window >= profileHours {
		s.window = profileHours - 1
	}
	if group == 2 {
		// Group 2 has no pre-window fluctuation: the distance decreases
		// monotonically to zero (Fig. 7(b)).
		return s
	}
	// Pre-window transient episodes for groups 1 and 3. Episodes never
	// overlap the final window (plus a small guard band) so the window
	// remains the unique final monotone stretch.
	guard := s.window + 6
	span := profileHours - guard
	if span <= 20 {
		return s
	}
	n := 2 + rng.Intn(4+span/120)
	for i := 0; i < n; i++ {
		b := bump{
			start: guard + rng.Intn(span-12),
			width: 10 + rng.Intn(30),
			peak:  0.10 + 0.20*rng.Float64(),
		}
		if b.start+b.width > profileHours {
			b.width = profileHours - b.start
		}
		if b.width >= 4 {
			s.bumps = append(s.bumps, b)
		}
	}
	return s
}
