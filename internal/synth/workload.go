package synth

import "math/rand"

// Workload is the I/O profile a drive serves. The studied data center
// "experiences diverse workloads" (Sec. IV-B); each drive's healthy
// operating point derives from its workload: busier drives run hotter,
// read-heavy drives surface more media and ECC-recovered errors, and
// random-access drives accumulate seek errors.
type Workload struct {
	// Utilization is the busy fraction of the drive in (0, 1).
	Utilization float64
	// ReadFraction is the share of operations that are reads.
	ReadFraction float64
	// RandomAccess is the seek intensity: 0 is fully sequential, 1 is
	// fully random.
	RandomAccess float64
}

// drawWorkload samples a drive's workload profile.
func drawWorkload(rng *rand.Rand) Workload {
	return Workload{
		Utilization:  rng.Float64(),
		ReadFraction: uniform(rng, 0.3, 0.9),
		RandomAccess: rng.Float64(),
	}
}

// baselineFor derives a drive's healthy operating point from its
// workload. The ranges match the fleet-wide envelopes the analysis is
// calibrated against (temperature 26-36 C, read error rate ~1-5, seek
// error rate ~0.5-3, ECC-recovered ~10-30).
func baselineFor(w Workload, rng *rand.Rand) baseline {
	readVolume := w.Utilization * w.ReadFraction // in (0, 0.9)
	return baseline{
		// Dissipated heat follows utilization; rack position adds a small
		// independent spread.
		tempC: 26 + 10*w.Utilization,
		// Media read errors surface in proportion to read volume.
		readErr: 1 + 4*clamp01(readVolume/0.9),
		// ECC-recovered errors likewise scale with read volume.
		ecc: 10 + 20*clamp01(readVolume/0.9),
		// Seek errors follow how random the access pattern is.
		seekErr:  0.5 + 2.5*w.RandomAccess,
		spinUpMs: uniform(rng, 3900, 4100),
		realloc:  rng.Intn(15),
		hfw:      rng.Intn(3),
		poh0:     uniform(rng, 500, 35000),
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
