package persist

import (
	"os"
	"path/filepath"
	"testing"

	"disksig/internal/fleet"
)

// FuzzRestore feeds arbitrary bytes to the snapshot and WAL decoders
// through the full Open+Restore path. The invariant: a corrupt state
// directory may fail the restore with an error, or recover with the
// corruption quarantined — it must never panic.
func FuzzRestore(f *testing.F) {
	// Seed with real files so the fuzzer starts from the actual formats.
	seedDir := f.TempDir()
	store, err := fleet.New(testModels(), testNormalizer(), fleet.Config{Shards: 2})
	if err != nil {
		f.Fatal(err)
	}
	for _, b := range dirtyBatches(5, 6, 1000) {
		store.IngestBatch(b)
	}
	m, err := Open(seedDir)
	if err != nil {
		f.Fatal(err)
	}
	obs := []fleet.Observation{{Serial: "SN0001", Record: record(99, 0.5)}}
	if _, _, err := m.LogBatch(obs, func() fleet.BatchResult { return store.IngestBatch(obs) }); err != nil {
		f.Fatal(err)
	}
	if _, err := m.Snapshot(store); err != nil {
		f.Fatal(err)
	}
	if _, _, err := m.LogBatch(obs, func() fleet.BatchResult { return store.IngestBatch(obs) }); err != nil {
		f.Fatal(err)
	}
	m.Close()
	snapBytes, err := os.ReadFile(filepath.Join(seedDir, "snapshot.bin"))
	if err != nil {
		f.Fatal(err)
	}
	walBytes, err := os.ReadFile(filepath.Join(seedDir, "wal.bin"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snapBytes, walBytes)
	f.Add(snapBytes[:len(snapBytes)/2], walBytes[:len(walBytes)-3]) // torn both
	f.Add([]byte{}, []byte{})
	f.Add(snapBytes, []byte("DSKWAL\x00\x01garbage-after-magic"))

	f.Fuzz(func(t *testing.T, snap, wal []byte) {
		dir := t.TempDir()
		if len(snap) > 0 {
			if err := os.WriteFile(filepath.Join(dir, "snapshot.bin"), snap, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if len(wal) > 0 {
			if err := os.WriteFile(filepath.Join(dir, "wal.bin"), wal, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		m, err := Open(dir)
		if err != nil {
			return
		}
		defer m.Close()
		st, rec, err := m.Restore(fleet.Config{Shards: 2})
		if err != nil {
			return
		}
		// A successful restore must hand back a usable store whose
		// recovery summary renders.
		_ = rec.String()
		st.Tracked()
		extra := []fleet.Observation{{Serial: "POST", Record: record(1000, 0.5)}}
		if _, _, err := m.LogBatch(extra, func() fleet.BatchResult { return st.IngestBatch(extra) }); err != nil {
			t.Fatalf("append after successful restore failed: %v", err)
		}
	})
}
