package persist

import (
	"encoding/gob"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"disksig/internal/core"
	"disksig/internal/fleet"
	"disksig/internal/monitor"
	"disksig/internal/quality"
	"disksig/internal/regression"
	"disksig/internal/smart"
)

// scalePredictor scores records by one attribute's value. Unlike the
// zero-field test predictors elsewhere, it has an exported field so gob
// can serialize it as an interface value inside fleet.State.
type scalePredictor struct{ Attr int }

func (p scalePredictor) Predict(x []float64) float64 { return x[p.Attr] }

func init() { gob.Register(scalePredictor{}) }

func testNormalizer() *smart.Normalizer {
	n := smart.NewNormalizer()
	var lo, hi smart.Values
	for a := range lo {
		lo[a] = -1
		hi[a] = 1
	}
	n.Observe(lo)
	n.Observe(hi)
	return n
}

func testModels() []monitor.GroupModel {
	return []monitor.GroupModel{{
		Group:     1,
		Type:      core.Logical,
		Form:      regression.FormQuadratic,
		WindowD:   12,
		Predictor: scalePredictor{Attr: int(smart.RRER)},
	}}
}

func testStore(t *testing.T, cfg fleet.Config) *fleet.Store {
	t.Helper()
	s, err := fleet.New(testModels(), testNormalizer(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func record(hour int, score float64) smart.Record {
	var v smart.Values
	v[smart.RRER] = score
	return smart.Record{Hour: hour, Values: v}
}

func nonFiniteRecord(hour int) smart.Record {
	var v smart.Values
	v[smart.RRER] = math.NaN()
	return smart.Record{Hour: hour, Values: v}
}

// dirtyBatches builds deterministic batches mixing clean, duplicate,
// out-of-order and non-finite records.
func dirtyBatches(drives, hours, batch int) [][]fleet.Observation {
	var obs []fleet.Observation
	for h := 0; h < hours; h++ {
		for d := 0; d < drives; d++ {
			serial := fmt.Sprintf("SN%04d", d)
			score := 1 - 2*float64(h)/float64(hours-1)
			switch {
			case d%7 == 3 && h%5 == 2:
				obs = append(obs, fleet.Observation{Serial: serial, Record: nonFiniteRecord(h)})
			case d%5 == 1 && h%4 == 3:
				obs = append(obs, fleet.Observation{Serial: serial, Record: record(h-2, score)})
			case d%3 == 2 && h%6 == 1:
				obs = append(obs, fleet.Observation{Serial: serial, Record: record(h, score)})
				obs = append(obs, fleet.Observation{Serial: serial, Record: record(h, score-0.01)})
			default:
				obs = append(obs, fleet.Observation{Serial: serial, Record: record(h, score)})
			}
		}
	}
	var batches [][]fleet.Observation
	for len(obs) > 0 {
		n := batch
		if n > len(obs) {
			n = len(obs)
		}
		batches = append(batches, obs[:n])
		obs = obs[n:]
	}
	return batches
}

func canonical(st *fleet.State) *fleet.State {
	st.Quality.StripDiagnostics()
	return st
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store := testStore(t, fleet.Config{Shards: 8, Workers: 4})
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.HasSnapshot() {
		t.Fatal("fresh dir claims a snapshot")
	}
	for _, b := range dirtyBatches(30, 10, 100) {
		if _, _, err := m.LogBatch(b, func() fleet.BatchResult { return store.IngestBatch(b) }); err != nil {
			t.Fatal(err)
		}
	}
	info, err := m.Snapshot(store)
	if err != nil {
		t.Fatal(err)
	}
	if info.Drives != 30 || info.Bytes <= 0 || info.Epoch != 1 {
		t.Fatalf("SnapshotInfo = %+v", info)
	}
	if !m.HasSnapshot() {
		t.Fatal("HasSnapshot = false after Snapshot")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	restored, rec, err := m2.Restore(fleet.Config{Shards: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotDrives != 30 || rec.WALBatches != 0 || rec.TornTail || rec.StaleWAL {
		t.Fatalf("Recovery = %+v", rec)
	}
	want := canonical(store.ExportState())
	got := canonical(restored.ExportState())
	if !reflect.DeepEqual(want, got) {
		t.Fatal("restored state differs from the original")
	}
}

func TestRestoreReplaysWALAfterKill(t *testing.T) {
	dir := t.TempDir()
	batches := dirtyBatches(25, 12, 120)
	half := len(batches) / 2

	// Reference: uninterrupted ingestion of everything.
	ref := testStore(t, fleet.Config{Shards: 4, Workers: 2})
	for _, b := range batches {
		ref.IngestBatch(b)
	}

	// Persisted run: snapshot mid-stream, keep logging, then "die"
	// without closing anything (appends are unbuffered, so abandoning
	// the manager leaves exactly what a kill would).
	store := testStore(t, fleet.Config{Shards: 4, Workers: 2})
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		if _, _, err := m.LogBatch(b, func() fleet.BatchResult { return store.IngestBatch(b) }); err != nil {
			t.Fatal(err)
		}
		if i == half {
			if _, err := m.Snapshot(store); err != nil {
				t.Fatal(err)
			}
		}
	}
	// No m.Close(), no final Snapshot: the tail of the stream lives only
	// in the WAL.

	m2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	restored, rec, err := m2.Restore(fleet.Config{Shards: 16, Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rec.WALBatches != len(batches)-half-1 {
		t.Fatalf("replayed %d WAL batches, want %d", rec.WALBatches, len(batches)-half-1)
	}
	if rec.TornTail || rec.StaleWAL {
		t.Fatalf("Recovery = %+v", rec)
	}
	want := canonical(ref.ExportState())
	got := canonical(restored.ExportState())
	if !reflect.DeepEqual(want, got) {
		t.Fatal("state restored from snapshot+WAL differs from an uninterrupted run")
	}

	// The reopened WAL accepts appends, and both stores stay in lockstep.
	extra := []fleet.Observation{{Serial: "SN0001", Record: record(500, -0.9)}}
	res, _, err := m2.LogBatch(extra, func() fleet.BatchResult { return restored.IngestBatch(extra) })
	if err != nil {
		t.Fatal(err)
	}
	refRes := ref.IngestBatch(extra)
	res.Quality.StripDiagnostics()
	refRes.Quality.StripDiagnostics()
	if !reflect.DeepEqual(res, refRes) {
		t.Fatalf("post-restore batch diverges: %+v vs %+v", res, refRes)
	}
}

func TestRestoreQuarantinesTornTail(t *testing.T) {
	dir := t.TempDir()
	store := testStore(t, fleet.Config{Shards: 4})
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Snapshot(store); err != nil {
		t.Fatal(err)
	}
	good := []fleet.Observation{{Serial: "A", Record: record(1, 0.9)}}
	sacrificial := []fleet.Observation{{Serial: "B", Record: record(1, 0.9)}}
	if _, _, err := m.LogBatch(good, func() fleet.BatchResult { return store.IngestBatch(good) }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.LogBatch(sacrificial, func() fleet.BatchResult { return store.IngestBatch(sacrificial) }); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record: chop a few bytes off the file.
	walPath := filepath.Join(dir, "wal.bin")
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	restored, rec, err := m2.Restore(fleet.Config{Shards: 4})
	if err != nil {
		t.Fatalf("torn tail failed the restore: %v", err)
	}
	if !rec.TornTail {
		t.Fatal("TornTail = false for a truncated WAL")
	}
	if rec.DroppedBytes <= 0 {
		t.Fatalf("DroppedBytes = %d", rec.DroppedBytes)
	}
	if rec.Quality.Count(quality.TruncatedInput) != 1 {
		t.Fatalf("TruncatedInput = %d, want 1", rec.Quality.Count(quality.TruncatedInput))
	}
	if rec.WALBatches != 1 {
		t.Fatalf("replayed %d batches before the tear, want 1", rec.WALBatches)
	}
	if _, ok := restored.Drive("A"); !ok {
		t.Fatal("record before the tear lost")
	}
	if _, ok := restored.Drive("B"); ok {
		t.Fatal("torn record partially applied")
	}

	// The torn tail was truncated away: appends continue cleanly and a
	// third Open replays them all.
	extra := []fleet.Observation{{Serial: "C", Record: record(2, 0.9)}}
	if _, _, err := m2.LogBatch(extra, func() fleet.BatchResult { return restored.IngestBatch(extra) }); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	m3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	again, rec3, err := m3.Restore(fleet.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rec3.TornTail || rec3.WALBatches != 2 {
		t.Fatalf("post-truncation recovery = %+v", rec3)
	}
	want := canonical(restored.ExportState())
	got := canonical(again.ExportState())
	if !reflect.DeepEqual(want, got) {
		t.Fatal("state after torn-tail truncation does not round trip")
	}
}

func TestRestoreDiscardsStaleWAL(t *testing.T) {
	dir := t.TempDir()
	store := testStore(t, fleet.Config{Shards: 4})
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	obs := []fleet.Observation{{Serial: "A", Record: record(1, 0.9)}}
	if _, _, err := m.LogBatch(obs, func() fleet.BatchResult { return store.IngestBatch(obs) }); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Snapshot(store); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between snapshot commit and WAL reset: put back a
	// pre-snapshot WAL (epoch 0) containing the already-snapshotted batch.
	f, err := createWAL(filepath.Join(dir, "wal.bin"), 0)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := encodeWALRecord(obs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	restored, rec, err := m2.Restore(fleet.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.StaleWAL {
		t.Fatal("StaleWAL = false for a pre-snapshot WAL")
	}
	if rec.WALBatches != 0 {
		t.Fatalf("stale WAL replayed %d batches — double-applied", rec.WALBatches)
	}
	// The batch must be applied exactly once (from the snapshot).
	if q := restored.Quality(); q.RowsRead != 1 {
		t.Fatalf("RowsRead = %d after stale-WAL restore, want 1", q.RowsRead)
	}
	want := canonical(store.ExportState())
	got := canonical(restored.ExportState())
	if !reflect.DeepEqual(want, got) {
		t.Fatal("stale-WAL restore diverged from the snapshotted state")
	}
}

func TestRestoreWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Even with WAL content, no snapshot means a cold start.
	obs := []fleet.Observation{{Serial: "A", Record: record(1, 0.9)}}
	store := testStore(t, fleet.Config{})
	if _, _, err := m.LogBatch(obs, func() fleet.BatchResult { return store.IngestBatch(obs) }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Restore(fleet.Config{}); err != ErrNoSnapshot {
		t.Fatalf("Restore = %v, want ErrNoSnapshot", err)
	}
}

func TestRestoreRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	store := testStore(t, fleet.Config{Shards: 2})
	store.IngestBatch(dirtyBatches(10, 6, 1000)[0])
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Snapshot(store); err != nil {
		t.Fatal(err)
	}
	m.Close()

	path := filepath.Join(dir, "snapshot.bin")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: the checksum must catch it.
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if _, _, err := m2.Restore(fleet.Config{Shards: 2}); err == nil {
		t.Fatal("corrupt snapshot restored without error")
	}
}

func TestOpenContinuesEpochAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	store := testStore(t, fleet.Config{})
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Epoch; got != 0 {
		t.Fatalf("fresh epoch = %d", got)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Snapshot(store); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Stats().Epoch; got != 3 {
		t.Fatalf("epoch after 3 snapshots = %d", got)
	}
	m.Close()
	m2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.Stats().Epoch; got != 3 {
		t.Fatalf("epoch after reopen = %d, want 3", got)
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	obs := []fleet.Observation{
		{Serial: "", Record: record(0, 0)},
		{Serial: "SN-1", Record: record(-12345, 0.5)},
		{Serial: "unicode-序列", Record: record(math.MaxInt, -1)},
	}
	obs[1].Record.Values[0] = math.Inf(1)
	obs[2].Record.Values[3] = math.NaN()
	frame, err := encodeWALRecord(obs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeWALRecord(frame[8:])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(obs) {
		t.Fatalf("decoded %d observations, want %d", len(got), len(obs))
	}
	for i := range obs {
		if got[i].Serial != obs[i].Serial || got[i].Record.Hour != obs[i].Record.Hour {
			t.Fatalf("observation %d differs: %+v vs %+v", i, got[i], obs[i])
		}
		for a := range obs[i].Record.Values {
			w, g := obs[i].Record.Values[a], got[i].Record.Values[a]
			if math.Float64bits(w) != math.Float64bits(g) {
				t.Fatalf("observation %d attr %d: %v vs %v (bits differ)", i, a, g, w)
			}
		}
	}
}

// TestWALRecordClassTail pins the mixed-fleet WAL shape: an all-HDD
// record encodes byte-identically to the pre-class format (no tail), a
// mixed record round-trips every class through its tail, and a tail
// naming an unknown class fails decode.
func TestWALRecordClassTail(t *testing.T) {
	hdd := []fleet.Observation{
		{Serial: "SN-1", Record: record(1, 0.5)},
		{Serial: "SN-2", Record: record(2, -0.5)},
	}
	frame, err := encodeWALRecord(hdd)
	if err != nil {
		t.Fatal(err)
	}
	// No class tail: 8-byte frame header + count varint + per-obs bytes.
	per := 1 + 4 + 1 + 8*int(smart.NumAttrs) // slen varint + serial + hour varint + values
	if want := 8 + 1 + len(hdd)*per; len(frame) != want {
		t.Fatalf("all-HDD record is %d bytes, want %d (class tail must be absent)", len(frame), want)
	}

	mixed := []fleet.Observation{
		{Serial: "SN-1", Record: record(1, 0.5)},
		{Serial: "SSD-1", Class: smart.SSD, Record: record(2, -0.5)},
		{Serial: "SN-3", Record: record(3, 0)},
	}
	frame, err = encodeWALRecord(mixed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeWALRecord(frame[8:])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(mixed) {
		t.Fatalf("decoded %d observations, want %d", len(got), len(mixed))
	}
	for i := range mixed {
		if got[i].Class != mixed[i].Class || got[i].Serial != mixed[i].Serial {
			t.Fatalf("observation %d: class %v serial %q, want %v %q",
				i, got[i].Class, got[i].Serial, mixed[i].Class, mixed[i].Serial)
		}
	}

	// An unknown class in the tail is corruption, not a new device type.
	bad := append([]byte(nil), frame[8:]...)
	bad[len(bad)-2] = 0x7f
	if _, err := decodeWALRecord(bad); err == nil {
		t.Fatal("decode accepted an unknown device class in the tail")
	}

	// An invalid class never encodes in the first place.
	if _, err := encodeWALRecord([]fleet.Observation{{Serial: "x", Class: smart.DeviceClass(9)}}); err == nil {
		t.Fatal("encode accepted an invalid device class")
	}
}

func BenchmarkSnapshot(b *testing.B) {
	dir := b.TempDir()
	store, err := fleet.New(testModels(), testNormalizer(), fleet.Config{Shards: 16, Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range dirtyBatches(2000, 24, 5000) {
		store.IngestBatch(batch)
	}
	m, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Snapshot(store); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRestore(b *testing.B) {
	dir := b.TempDir()
	store, err := fleet.New(testModels(), testNormalizer(), fleet.Config{Shards: 16, Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range dirtyBatches(2000, 24, 5000) {
		store.IngestBatch(batch)
	}
	m, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Snapshot(store); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Restore(fleet.Config{Shards: 16, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
