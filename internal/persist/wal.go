package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"

	"disksig/internal/fleet"
	"disksig/internal/smart"
)

// WAL file layout:
//
//	header:  8-byte magic "DSKWAL\x00\x01" | u64 epoch (little endian)
//	records: u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// Record payload:
//
//	uvarint observation count
//	per observation:
//	  uvarint serial length | serial bytes
//	  zigzag varint hour
//	  smart.NumAttrs x u64 float64 bits (little endian)
//	class tail (only when any observation is non-HDD):
//	  one u8 device class per observation, in observation order
//
// The class tail keeps mixed fleets replayable without touching the
// record layout pre-class readers parse: an all-HDD record encodes
// byte-identically to the old format, and the decoder distinguishes the
// two shapes by the exact byte count left after the observations — zero
// means all HDD, exactly count means a class tail, anything else is the
// corruption it always was.
//
// Appends are unbuffered single writes: a record is either fully in the
// file or it is the torn tail the next restore quarantines. There is no
// fsync per record — the WAL bounds data loss to the records written
// after the last completed write-back, which is the usual trade for an
// ingest path that must keep up with telemetry.
var walMagic = [8]byte{'D', 'S', 'K', 'W', 'A', 'L', 0x00, 0x01}

const (
	walHeaderSize = 16
	// maxWALRecord caps one record's payload so a corrupt length field
	// cannot make the reader attempt a multi-gigabyte allocation.
	maxWALRecord = 64 << 20
	// maxSerialLen caps one serial so a corrupt record fails fast.
	maxSerialLen = 4096
)

// errWALEnd reports a clean end of WAL: the previous record ended
// exactly at EOF.
var errWALEnd = errors.New("persist: end of WAL")

// dirSyncs counts directory fsyncs, so tests can pin that file
// creation and snapshot commits actually flush the directory entry.
var dirSyncs atomic.Uint64

// syncDir fsyncs a directory: on POSIX filesystems a freshly created
// (or renamed-over) file is only crash-durable once its directory
// entry is, and that takes an fsync of the directory itself. Failure
// is returned, not ignored — a WAL whose file can vanish across a
// crash is not a write-ahead log.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: opening state dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("persist: syncing state dir: %w", err)
	}
	dirSyncs.Add(1)
	return nil
}

// createWAL truncates/creates the WAL file and writes the header for
// the given epoch.
func createWAL(path string, epoch uint64) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: creating WAL: %w", err)
	}
	var hdr [walHeaderSize]byte
	copy(hdr[:8], walMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], epoch)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: writing WAL header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: syncing WAL header: %w", err)
	}
	// The file's data is synced; its directory entry is not until the
	// directory itself is. Without this, a crash right after the reset
	// can resurface the old WAL (or no WAL at all) under a new epoch.
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// readWALEpoch reads and validates the WAL header, returning its epoch.
func readWALEpoch(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("persist: reading WAL header: %w", err)
	}
	if [8]byte(hdr[:8]) != walMagic {
		return 0, fmt.Errorf("persist: bad WAL magic")
	}
	return binary.LittleEndian.Uint64(hdr[8:]), nil
}

// encodeWALRecord frames one batch of observations as a WAL record.
func encodeWALRecord(obs []fleet.Observation) ([]byte, error) {
	payload := make([]byte, 0, 64+len(obs)*(17+8*int(smart.NumAttrs)))
	payload = binary.AppendUvarint(payload, uint64(len(obs)))
	mixed := false
	for _, o := range obs {
		if len(o.Serial) > maxSerialLen {
			return nil, fmt.Errorf("persist: serial %q exceeds %d bytes", o.Serial[:32]+"...", maxSerialLen)
		}
		if !o.Class.Valid() {
			return nil, fmt.Errorf("persist: observation %q has invalid device class %d", o.Serial, o.Class)
		}
		if o.Class != smart.HDD {
			mixed = true
		}
		payload = binary.AppendUvarint(payload, uint64(len(o.Serial)))
		payload = append(payload, o.Serial...)
		payload = binary.AppendVarint(payload, int64(o.Record.Hour))
		for a := 0; a < int(smart.NumAttrs); a++ {
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(o.Record.Values[a]))
		}
	}
	if mixed {
		for _, o := range obs {
			payload = append(payload, byte(o.Class))
		}
	}
	if len(payload) > maxWALRecord {
		return nil, fmt.Errorf("persist: batch of %d observations exceeds the %d-byte record cap", len(obs), maxWALRecord)
	}
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	return append(frame, payload...), nil
}

// decodeWALRecord parses one record payload back into observations.
func decodeWALRecord(payload []byte) ([]fleet.Observation, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("persist: WAL record: bad observation count")
	}
	payload = payload[n:]
	// Each observation needs at least 1 (serial len) + 1 (hour) +
	// 8*NumAttrs bytes; reject counts the payload cannot hold.
	minPer := 2 + 8*int(smart.NumAttrs)
	if count > uint64(len(payload)/minPer) {
		return nil, fmt.Errorf("persist: WAL record: count %d exceeds payload size", count)
	}
	obs := make([]fleet.Observation, 0, count)
	for i := uint64(0); i < count; i++ {
		slen, n := binary.Uvarint(payload)
		if n <= 0 || slen > maxSerialLen || uint64(len(payload)-n) < slen {
			return nil, fmt.Errorf("persist: WAL record: bad serial length in observation %d", i)
		}
		payload = payload[n:]
		serial := string(payload[:slen])
		payload = payload[slen:]
		hour, n := binary.Varint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("persist: WAL record: bad hour in observation %d", i)
		}
		payload = payload[n:]
		if len(payload) < 8*int(smart.NumAttrs) {
			return nil, fmt.Errorf("persist: WAL record: truncated values in observation %d", i)
		}
		var o fleet.Observation
		o.Serial = serial
		o.Record.Hour = int(hour)
		for a := 0; a < int(smart.NumAttrs); a++ {
			o.Record.Values[a] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*a:]))
		}
		payload = payload[8*int(smart.NumAttrs):]
		obs = append(obs, o)
	}
	switch {
	case len(payload) == 0:
		// No class tail: every observation is HDD (the zero value).
	case uint64(len(payload)) == count:
		for i := range obs {
			c := smart.DeviceClass(payload[i])
			if !c.Valid() {
				return nil, fmt.Errorf("persist: WAL record: observation %d names device class %d", i, payload[i])
			}
			obs[i].Class = c
		}
	default:
		return nil, fmt.Errorf("persist: WAL record: %d trailing bytes", len(payload))
	}
	return obs, nil
}

// walReader iterates the records of a WAL file, tracking the offset of
// the end of the last successfully decoded record so a torn tail can be
// truncated away precisely.
type walReader struct {
	f      *os.File
	br     *bufio.Reader
	epoch  uint64
	size   int64
	offset int64 // end of the last good record (starts after the header)
}

// openWALReader opens the WAL and validates its header.
func openWALReader(path string) (*walReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: stat WAL: %w", err)
	}
	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: reading WAL header: %w", err)
	}
	if [8]byte(hdr[:8]) != walMagic {
		f.Close()
		return nil, fmt.Errorf("persist: bad WAL magic")
	}
	return &walReader{
		f:      f,
		br:     bufio.NewReaderSize(f, 1<<20),
		epoch:  binary.LittleEndian.Uint64(hdr[8:]),
		size:   fi.Size(),
		offset: walHeaderSize,
	}, nil
}

// Epoch returns the WAL's epoch.
func (r *walReader) Epoch() uint64 { return r.epoch }

// Offset returns the end of the last successfully decoded record.
func (r *walReader) Offset() int64 { return r.offset }

// Remaining returns how many bytes follow the last good record.
func (r *walReader) Remaining() int64 { return r.size - r.offset }

// Next returns the next record's observations, errWALEnd at a clean end
// of file, or a decode error at a torn/corrupt record.
func (r *walReader) Next() ([]fleet.Observation, error) {
	var frame [8]byte
	if _, err := io.ReadFull(r.br, frame[:]); err != nil {
		if err == io.EOF {
			return nil, errWALEnd
		}
		return nil, fmt.Errorf("persist: torn record frame: %w", err)
	}
	length := binary.LittleEndian.Uint32(frame[:4])
	sum := binary.LittleEndian.Uint32(frame[4:8])
	if length > maxWALRecord {
		return nil, fmt.Errorf("persist: record length %d exceeds cap", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return nil, fmt.Errorf("persist: torn record payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("persist: record checksum mismatch")
	}
	obs, err := decodeWALRecord(payload)
	if err != nil {
		return nil, err
	}
	r.offset += 8 + int64(length)
	return obs, nil
}

// Close releases the file handle.
func (r *walReader) Close() error { return r.f.Close() }
