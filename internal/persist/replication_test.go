package persist

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"disksig/internal/fleet"
)

func TestPositionOrdering(t *testing.T) {
	cases := []struct {
		p, q   Position
		before bool
	}{
		{Position{1, 16}, Position{1, 64}, true},
		{Position{1, 64}, Position{1, 16}, false},
		{Position{1, 16}, Position{1, 16}, false},
		{Position{1, 9999}, Position{2, 16}, true}, // epoch dominates offset
		{Position{2, 16}, Position{1, 9999}, false},
	}
	for _, c := range cases {
		if got := c.p.Before(c.q); got != c.before {
			t.Errorf("%s.Before(%s) = %v, want %v", c.p, c.q, got, c.before)
		}
	}
	if got := StartPosition(3); got != (Position{Epoch: 3, Offset: walHeaderSize}) {
		t.Errorf("StartPosition(3) = %s", got)
	}
}

func TestShipRequestRoundTrip(t *testing.T) {
	frames := []byte{0xde, 0xad, 0xbe, 0xef}
	body := EncodeShipRequest(7, Position{Epoch: 3, Offset: 99}, frames)
	term, from, got, err := DecodeShipRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if term != 7 || from != (Position{Epoch: 3, Offset: 99}) || !reflect.DeepEqual(got, frames) {
		t.Fatalf("round trip = term %d, from %s, frames %x", term, from, got)
	}

	// A heartbeat carries no frames at all.
	_, _, hb, err := DecodeShipRequest(EncodeShipRequest(1, StartPosition(0), nil))
	if err != nil || len(hb) != 0 {
		t.Fatalf("heartbeat round trip: frames %x, err %v", hb, err)
	}

	if _, _, _, err := DecodeShipRequest(body[:10]); err == nil {
		t.Fatal("truncated ship request decoded")
	}
	bad := append([]byte(nil), body...)
	bad[0] ^= 0xff
	if _, _, _, err := DecodeShipRequest(bad); err == nil {
		t.Fatal("bad magic decoded")
	}
	// An offset inside the WAL header can never be a frame boundary.
	if _, _, _, err := DecodeShipRequest(EncodeShipRequest(1, Position{Epoch: 1, Offset: 3}, nil)); err == nil {
		t.Fatal("header-interior offset decoded")
	}
}

func TestBootstrapImageRoundTripAtDifferentLayout(t *testing.T) {
	store := testStore(t, fleet.Config{Shards: 2})
	for _, b := range dirtyBatches(12, 5, 40) {
		store.IngestBatch(b)
	}
	img, err := EncodeBootstrap(store.ExportState(), 5, Position{Epoch: 2, Offset: 123})
	if err != nil {
		t.Fatal(err)
	}
	st, term, pos, err := DecodeBootstrap(img)
	if err != nil {
		t.Fatal(err)
	}
	if term != 5 || pos != (Position{Epoch: 2, Offset: 123}) {
		t.Fatalf("decoded term %d pos %s, want 5 and 2:123", term, pos)
	}
	// The image restores at a different shard count bit-identically: the
	// export format is layout-independent.
	restored, err := fleet.Restore(st, fleet.Config{Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Shards() != 16 {
		t.Fatalf("restored at %d shards, want 16", restored.Shards())
	}
	if got, want := canonical(restored.ExportState()), canonical(store.ExportState()); !reflect.DeepEqual(got, want) {
		t.Fatal("bootstrapped state differs from the source state")
	}

	corrupt := append([]byte(nil), img...)
	corrupt[len(corrupt)-6] ^= 0xff
	if _, _, _, err := DecodeBootstrap(corrupt); err == nil {
		t.Fatal("corrupt bootstrap image decoded")
	}
	if _, _, _, err := DecodeBootstrap(img[:12]); err == nil {
		t.Fatal("truncated bootstrap image decoded")
	}
}

func TestReadWALFramesChunksOnFrameBoundaries(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	store := testStore(t, fleet.Config{Shards: 2})
	start := m.Position()
	rows := 0
	for _, b := range dirtyBatches(8, 4, 25) {
		b := b
		if _, _, err := m.LogBatch(b, func() fleet.BatchResult { return store.IngestBatch(b) }); err != nil {
			t.Fatal(err)
		}
		rows += len(b)
	}
	end := m.Position()

	full, fullEnd, err := m.ReadWALFrames(start.Epoch, start.Offset, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if fullEnd != end.Offset {
		t.Fatalf("full read ends at %d, want %d", fullEnd, end.Offset)
	}

	// Chunked reads must cover exactly the same bytes, never splitting a
	// frame, and always make progress.
	var joined []byte
	for off := start.Offset; off < end.Offset; {
		chunk, next, err := m.ReadWALFrames(start.Epoch, off, 64)
		if err != nil {
			t.Fatal(err)
		}
		if next <= off {
			t.Fatalf("chunked read stalled at offset %d", off)
		}
		joined = append(joined, chunk...)
		off = next
	}
	if !reflect.DeepEqual(joined, full) {
		t.Fatalf("chunked reads reassemble %d bytes, full read has %d", len(joined), len(full))
	}

	// A first frame larger than maxBytes ships whole anyway.
	one, next, err := m.ReadWALFrames(start.Epoch, start.Offset, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) <= 1 || next <= start.Offset {
		t.Fatalf("oversized-frame read returned %d bytes ending at %d", len(one), next)
	}

	// Every frame decodes and the decoded rows cover the whole workload.
	it := NewFrameIter(full)
	decoded := 0
	for {
		obs, _, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		decoded += len(obs)
	}
	if decoded != rows {
		t.Fatalf("frames decode to %d rows, logged %d", decoded, rows)
	}

	if _, _, err := m.ReadWALFrames(start.Epoch+7, start.Offset, 0); !errors.Is(err, errEpochGone) {
		t.Fatalf("stale epoch read err = %v, want errEpochGone", err)
	}
	if _, _, err := m.ReadWALFrames(start.Epoch, end.Offset+999, 0); err == nil {
		t.Fatal("read past the durable end succeeded")
	}
}

// fakeFollower is a minimal in-test follower for the ship protocol: it
// fences lower terms, insists on position continuity, dedups frames at
// or below its high-water mark, and acks its position — without any of
// the server package (importing it here would be a cycle).
type fakeFollower struct {
	mu   sync.Mutex
	term uint64
	exp  Position
	rows int
	hb   int
}

func (f *fakeFollower) serve(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	term, from, frames, err := DecodeShipRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ack := func(status int) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]any{"term": f.term, "epoch": f.exp.Epoch, "offset": f.exp.Offset})
	}
	if term < f.term {
		ack(http.StatusForbidden)
		return
	}
	switch {
	case from.Epoch > f.exp.Epoch:
		if from != StartPosition(from.Epoch) {
			ack(http.StatusConflict)
			return
		}
		f.exp = from
	case from.Epoch < f.exp.Epoch:
		ack(http.StatusOK)
		return
	case from.Offset > f.exp.Offset:
		ack(http.StatusConflict)
		return
	}
	if len(frames) == 0 {
		f.hb++
	}
	pos := from.Offset
	it := NewFrameIter(frames)
	for {
		obs, size, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			ack(http.StatusConflict)
			return
		}
		end := pos + size
		if end <= f.exp.Offset {
			pos = end
			continue
		}
		f.rows += len(obs)
		pos = end
		f.exp.Offset = end
	}
	ack(http.StatusOK)
}

func (f *fakeFollower) snapshot() (rows, hb int, exp Position) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rows, f.hb, f.exp
}

func TestShipperReplicatesEverythingAndAcks(t *testing.T) {
	m, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	store := testStore(t, fleet.Config{Shards: 2})
	f := &fakeFollower{term: 1, exp: m.Position()}
	ts := httptest.NewServer(http.HandlerFunc(f.serve))
	defer ts.Close()

	sh := m.AttachShipper(ShipperConfig{FollowerURL: ts.URL, Term: 1, Heartbeat: 10 * time.Millisecond}, m.Position())
	defer m.DetachShipper()
	want := 0
	var last Position
	for _, b := range dirtyBatches(10, 6, 50) {
		b := b
		_, pos, err := m.LogBatch(b, func() fleet.BatchResult { return store.IngestBatch(b) })
		if err != nil {
			t.Fatal(err)
		}
		want += len(b)
		last = pos
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sh.WaitAcked(ctx, last); err != nil {
		t.Fatal(err)
	}
	rows, _, exp := f.snapshot()
	if rows != want {
		t.Fatalf("follower applied %d rows, primary logged %d", rows, want)
	}
	if exp != last {
		t.Fatalf("follower high-water mark %s, want %s", exp, last)
	}
	st := sh.Stats()
	if st.FramesShipped == 0 || st.BytesShipped == 0 || st.Acked != last {
		t.Fatalf("shipper stats after full ack: %+v", st)
	}
}

// A shipper attached ahead of the follower's position gets a 409 with
// the follower's actual high-water mark and resyncs from there — the
// heartbeat is what exposes the gap when nothing is pending.
func TestShipperHeartbeatExposesGapAndConflictResyncs(t *testing.T) {
	m, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	store := testStore(t, fleet.Config{Shards: 2})
	start := m.Position()
	want := 0
	for _, b := range dirtyBatches(6, 3, 30) {
		b := b
		if _, _, err := m.LogBatch(b, func() fleet.BatchResult { return store.IngestBatch(b) }); err != nil {
			t.Fatal(err)
		}
		want += len(b)
	}
	f := &fakeFollower{term: 1, exp: start}
	ts := httptest.NewServer(http.HandlerFunc(f.serve))
	defer ts.Close()

	sh := m.AttachShipper(ShipperConfig{FollowerURL: ts.URL, Term: 1, Heartbeat: 5 * time.Millisecond}, m.Position())
	defer m.DetachShipper()
	// The shipper believes it is caught up (it attached at the end), so
	// only the heartbeat can surface the follower's 409. Poll the
	// follower until the resynced frames land.
	deadline := time.Now().Add(10 * time.Second)
	for {
		rows, _, _ := f.snapshot()
		if rows == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower applied %d rows after resync, want %d", rows, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := sh.Stats(); st.Conflicts == 0 {
		t.Fatalf("resync recorded no conflicts: %+v", st)
	}
}

func TestShipperFencedByHigherTerm(t *testing.T) {
	m, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	store := testStore(t, fleet.Config{Shards: 2})
	f := &fakeFollower{term: 9, exp: m.Position()}
	ts := httptest.NewServer(http.HandlerFunc(f.serve))
	defer ts.Close()

	var fencedBy atomic.Uint64
	sh := m.AttachShipper(ShipperConfig{
		FollowerURL: ts.URL,
		Term:        2,
		Heartbeat:   5 * time.Millisecond,
		OnFenced:    func(peer uint64) { fencedBy.Store(peer) },
	}, m.Position())
	defer m.DetachShipper()
	obs := dirtyBatches(2, 1, 10)[0]
	_, pos, err := m.LogBatch(obs, func() fleet.BatchResult { return store.IngestBatch(obs) })
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sh.WaitAcked(ctx, pos); !errors.Is(err, ErrFenced) {
		t.Fatalf("WaitAcked err = %v, want ErrFenced", err)
	}
	if fenced, peer := sh.Fenced(); !fenced || peer != 9 {
		t.Fatalf("Fenced() = %v, %d; want true, 9", fenced, peer)
	}
	if fencedBy.Load() != 9 {
		t.Fatalf("OnFenced got term %d, want 9", fencedBy.Load())
	}
	if rows, _, _ := f.snapshot(); rows != 0 {
		t.Fatalf("fenced shipper still applied %d rows", rows)
	}
}

// Snapshot must drain the shipper before resetting the WAL (no shipped
// frame may be destroyed unacked) and advance it to the new epoch after.
func TestSnapshotDrainsShipperThenAdvancesEpoch(t *testing.T) {
	m, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	store := testStore(t, fleet.Config{Shards: 2})
	f := &fakeFollower{term: 1, exp: m.Position()}
	ts := httptest.NewServer(http.HandlerFunc(f.serve))
	defer ts.Close()
	sh := m.AttachShipper(ShipperConfig{FollowerURL: ts.URL, Term: 1, Heartbeat: 10 * time.Millisecond}, m.Position())
	defer m.DetachShipper()

	before := 0
	for _, b := range dirtyBatches(6, 4, 40) {
		b := b
		if _, _, err := m.LogBatch(b, func() fleet.BatchResult { return store.IngestBatch(b) }); err != nil {
			t.Fatal(err)
		}
		before += len(b)
	}
	if _, err := m.Snapshot(store); err != nil {
		t.Fatal(err)
	}
	// The drain barrier ran inside Snapshot: by the time it returns the
	// follower holds every pre-snapshot row, the shipper survives, and
	// both stand at the start of the new epoch.
	rows, _, _ := f.snapshot()
	if rows != before {
		t.Fatalf("follower has %d rows right after snapshot, want %d (drain barrier broken)", rows, before)
	}
	if m.AttachedShipper() != sh {
		t.Fatal("healthy shipper detached by snapshot")
	}
	newStart := StartPosition(m.Position().Epoch)
	if got := sh.Acked(); got != newStart {
		t.Fatalf("shipper acked %s after epoch advance, want %s", got, newStart)
	}
	if st := m.Stats(); st.FollowerLost != 0 {
		t.Fatalf("FollowerLost = %d after clean drain, want 0", st.FollowerLost)
	}

	// The stream keeps flowing in the new epoch.
	obs := dirtyBatches(3, 1, 20)[0]
	_, pos, err := m.LogBatch(obs, func() fleet.BatchResult { return store.IngestBatch(obs) })
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sh.WaitAcked(ctx, pos); err != nil {
		t.Fatal(err)
	}
	rows, _, exp := f.snapshot()
	if rows != before+len(obs) {
		t.Fatalf("follower has %d rows after epoch hop, want %d", rows, before+len(obs))
	}
	if exp.Epoch != pos.Epoch {
		t.Fatalf("follower epoch %d, want %d", exp.Epoch, pos.Epoch)
	}
}

// A follower that cannot confirm the drain loses its stream — Snapshot
// detaches the shipper and proceeds rather than blocking on a dead peer
// or silently destroying unshipped frames.
func TestSnapshotDetachesUndrainableShipper(t *testing.T) {
	m, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	store := testStore(t, fleet.Config{Shards: 2})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "follower on fire", http.StatusInternalServerError)
	}))
	defer ts.Close()
	sh := m.AttachShipper(ShipperConfig{
		FollowerURL:  ts.URL,
		Term:         1,
		RetryWait:    2 * time.Millisecond,
		DrainTimeout: 50 * time.Millisecond,
	}, m.Position())
	obs := dirtyBatches(2, 1, 10)[0]
	if _, _, err := m.LogBatch(obs, func() fleet.BatchResult { return store.IngestBatch(obs) }); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Snapshot(store); err != nil {
		t.Fatalf("snapshot must survive a dead follower, got %v", err)
	}
	if m.AttachedShipper() != nil {
		t.Fatal("undrainable shipper still attached after snapshot")
	}
	if st := m.Stats(); st.FollowerLost != 1 {
		t.Fatalf("FollowerLost = %d, want 1", st.FollowerLost)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := sh.WaitAcked(ctx, m.Position()); !errors.Is(err, ErrShipperStopped) {
		t.Fatalf("WaitAcked on detached shipper = %v, want ErrShipperStopped", err)
	}
}

// The state directory itself is fsynced when the WAL is created and when
// a snapshot renames into place — otherwise a power cut can forget the
// files' directory entries even though their contents were synced.
func TestStateDirectoryFsyncPinned(t *testing.T) {
	base := dirSyncs.Load()
	m, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	afterOpen := dirSyncs.Load()
	if afterOpen == base {
		t.Fatal("creating the WAL did not fsync the state directory")
	}
	store := testStore(t, fleet.Config{Shards: 2})
	if _, err := m.Snapshot(store); err != nil {
		t.Fatal(err)
	}
	if dirSyncs.Load() == afterOpen {
		t.Fatal("committing a snapshot did not fsync the state directory")
	}
}
