package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"disksig/internal/monitor"
	"disksig/internal/smart"
)

// ModelArtifact is one versioned model set produced by a training or
// retraining run: everything a store needs to score records, plus the
// provenance that makes the run auditable and reproducible.
type ModelArtifact struct {
	// Version is the model-set version; promoted artifacts carry the
	// version the fleet swapped to.
	Version int
	// Fingerprint is the deterministic FNV-64a digest of the training
	// inputs (drive serials, hours, labels and the training config).
	// Two retrains over identical telemetry produce identical
	// fingerprints.
	Fingerprint string
	// TrainedMaxHour is the fleet telemetry hour the training snapshot
	// was taken at.
	TrainedMaxHour int
	// FailedDrives/GoodDrives are the harvested training cohort sizes.
	FailedDrives int
	GoodDrives   int
	// Models and Norm are the trained scoring models and normalizer.
	Models []monitor.GroupModel
	Norm   *smart.Normalizer
	// Notes carries training-quality caveats (e.g. clamped windows).
	Notes []string
}

// Model artifact file layout (all integers little endian) — the same
// framing discipline as snapshots under a distinct magic:
//
//	8-byte magic "DSKMODL\x01"
//	u32 version (currently 1)
//	u64 model-set version
//	u64 payload length
//	payload — gob-encoded *ModelArtifact
//	u32 CRC-32 (IEEE) over version..payload
//
// Artifacts are written tmp+fsync+rename like snapshots: a crash
// mid-write never corrupts the previous artifact.
var modelMagic = [8]byte{'D', 'S', 'K', 'M', 'O', 'D', 'L', 0x01}

const (
	modelFileVersion = 1
	modelsName       = "models.bin"
	modelsTmp        = "models.tmp"
)

// ModelsPath returns the artifact path inside a state directory.
func ModelsPath(dir string) string { return filepath.Join(dir, modelsName) }

// SaveModels commits a model artifact atomically into the state
// directory, returning the file size.
func SaveModels(dir string, art *ModelArtifact) (int64, error) {
	if art == nil {
		return 0, fmt.Errorf("persist: saving nil model artifact")
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(art); err != nil {
		return 0, fmt.Errorf("persist: encoding model artifact: %w", err)
	}

	var buf bytes.Buffer
	buf.Grow(payload.Len() + 32)
	buf.Write(modelMagic[:])
	var fixed [20]byte
	binary.LittleEndian.PutUint32(fixed[0:4], modelFileVersion)
	binary.LittleEndian.PutUint64(fixed[4:12], uint64(art.Version))
	binary.LittleEndian.PutUint64(fixed[12:20], uint64(payload.Len()))
	buf.Write(fixed[:])
	buf.Write(payload.Bytes())
	sum := crc32.ChecksumIEEE(buf.Bytes()[len(modelMagic):])
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	buf.Write(tail[:])

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("persist: creating state dir: %w", err)
	}
	tmp := filepath.Join(dir, modelsTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("persist: creating models.tmp: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("persist: writing model artifact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("persist: syncing model artifact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("persist: closing model artifact: %w", err)
	}
	if err := os.Rename(tmp, ModelsPath(dir)); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("persist: committing model artifact: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	return int64(buf.Len()), nil
}

// LoadModels reads, checksums and decodes the committed model artifact
// of a state directory. os.IsNotExist on the error distinguishes "no
// artifact yet" from corruption.
func LoadModels(dir string) (*ModelArtifact, error) {
	path := ModelsPath(dir)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("persist: stat model artifact: %w", err)
	}
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, fmt.Errorf("persist: reading model artifact magic: %w", err)
	}
	if magic != modelMagic {
		return nil, fmt.Errorf("persist: bad model artifact magic")
	}
	var fixed [20]byte
	if _, err := io.ReadFull(f, fixed[:]); err != nil {
		return nil, fmt.Errorf("persist: reading model artifact header: %w", err)
	}
	fileVer := binary.LittleEndian.Uint32(fixed[0:4])
	payloadLen := binary.LittleEndian.Uint64(fixed[12:20])
	if fileVer != modelFileVersion {
		return nil, fmt.Errorf("persist: model artifact version %d not supported (want %d)", fileVer, modelFileVersion)
	}
	if payloadLen > maxSnapshotPayload {
		return nil, fmt.Errorf("persist: model artifact payload length %d exceeds cap", payloadLen)
	}
	wantSize := int64(len(modelMagic)) + 20 + int64(payloadLen) + 4
	if fi.Size() != wantSize {
		return nil, fmt.Errorf("persist: model artifact is %d bytes, header implies %d", fi.Size(), wantSize)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, fmt.Errorf("persist: reading model artifact payload: %w", err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(f, tail[:]); err != nil {
		return nil, fmt.Errorf("persist: reading model artifact checksum: %w", err)
	}
	sum := crc32.NewIEEE()
	sum.Write(fixed[:])
	sum.Write(payload)
	if sum.Sum32() != binary.LittleEndian.Uint32(tail[:]) {
		return nil, fmt.Errorf("persist: model artifact checksum mismatch")
	}
	art := &ModelArtifact{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(art); err != nil {
		return nil, fmt.Errorf("persist: decoding model artifact: %w", err)
	}
	if art.Version <= 0 || int64(art.Version) != int64(binary.LittleEndian.Uint64(fixed[4:12])) {
		return nil, fmt.Errorf("persist: model artifact header version %d disagrees with payload version %d",
			binary.LittleEndian.Uint64(fixed[4:12]), art.Version)
	}
	return art, nil
}
