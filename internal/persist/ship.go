package persist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Shipper errors surfaced through WaitAcked.
var (
	// ErrFenced reports that the follower rejected this shipper's term:
	// another node promoted itself, and this primary is deposed. Frames
	// after the fence were never applied remotely.
	ErrFenced = errors.New("persist: shipper fenced by a higher term")
	// ErrShipperStopped reports that the shipper was stopped or detached
	// while a caller was waiting on an ack.
	ErrShipperStopped = errors.New("persist: shipper stopped")
)

// ShipperConfig parameterizes WAL shipping to one follower.
type ShipperConfig struct {
	// FollowerURL is the follower's base URL; frames POST to
	// FollowerURL + "/v1/replication/ship".
	FollowerURL string
	// Term is the leadership term stamped on every ship request; the
	// follower fences requests whose term is below its own.
	Term uint64
	// Client is the HTTP client; nil means a dedicated one.
	Client *http.Client
	// Heartbeat is how often an empty ship request goes out when there
	// is nothing to ship, keeping the follower's last-contact (and its
	// readiness) fresh and propagating epoch advances promptly. <= 0
	// means 500ms.
	Heartbeat time.Duration
	// RetryWait is the pause after a transport error or unexpected
	// status before the loop retries. <= 0 means 50ms.
	RetryWait time.Duration
	// DrainTimeout bounds Drain (the snapshot path's pre-reset barrier).
	// <= 0 means 5s.
	DrainTimeout time.Duration
	// MaxChunk is the per-request frame byte target. <= 0 means 1 MiB.
	MaxChunk int
	// OnFenced fires (once, from the ship loop) when the follower fences
	// this shipper, carrying the follower's higher term. The server uses
	// it to step the deposed primary down.
	OnFenced func(peerTerm uint64)
}

func (c ShipperConfig) withDefaults() ShipperConfig {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 500 * time.Millisecond
	}
	if c.RetryWait <= 0 {
		c.RetryWait = 50 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.MaxChunk <= 0 {
		c.MaxChunk = 1 << 20
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// Shipper tails the primary's WAL and pushes frames to one follower,
// tracking the follower's acked high-water mark. Ingestion blocks on
// WaitAcked, which is what turns "200 from the primary" into "this
// batch is on two nodes".
type Shipper struct {
	mgr *Manager
	cfg ShipperConfig

	notify chan struct{} // buffered wake-up: new frames are durable
	stopc  chan struct{}

	mu       sync.Mutex
	acked    Position // follower's high-water mark
	next     Position // next offset to ship from
	fenced   bool
	peerTerm uint64
	stopped  bool
	lastErr  error
	lastAck  time.Time
	wake     chan struct{} // closed and replaced on every state change

	framesShipped uint64
	bytesShipped  uint64
	heartbeats    uint64
	conflicts     uint64
	shipErrors    uint64
}

// ShipperStats is a point-in-time view for /metrics and the
// replication status endpoint.
type ShipperStats struct {
	FollowerURL   string
	Term          uint64
	Acked         Position
	Next          Position
	Fenced        bool
	PeerTerm      uint64
	LastAckAge    time.Duration
	LastError     string
	FramesShipped uint64
	BytesShipped  uint64
	Heartbeats    uint64
	Conflicts     uint64
	ShipErrors    uint64
}

func newShipper(m *Manager, cfg ShipperConfig, from Position) *Shipper {
	return &Shipper{
		mgr:    m,
		cfg:    cfg.withDefaults(),
		notify: make(chan struct{}, 1),
		stopc:  make(chan struct{}),
		acked:  from,
		next:   from,
		wake:   make(chan struct{}),
	}
}

// nudge wakes the ship loop without blocking.
func (s *Shipper) nudge() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// broadcastLocked wakes every WaitAcked. Callers hold s.mu.
func (s *Shipper) broadcastLocked() {
	close(s.wake)
	s.wake = make(chan struct{})
}

// Stop terminates the ship loop and fails pending WaitAcked calls.
func (s *Shipper) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.broadcastLocked()
	s.mu.Unlock()
	close(s.stopc)
}

// run is the ship loop: it pushes pending frames when nudged and sends
// heartbeats when idle.
func (s *Shipper) run() {
	t := time.NewTicker(s.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-s.stopc:
			return
		case <-s.notify:
			s.shipPending(false)
		case <-t.C:
			s.shipPending(true)
		}
		s.mu.Lock()
		done := s.fenced || s.stopped
		s.mu.Unlock()
		if done {
			return
		}
	}
}

// shipPending ships until the follower has acked everything durable (or
// an error defers to the next wake-up). With heartbeat set, at least
// one request goes out even when nothing is pending.
func (s *Shipper) shipPending(heartbeat bool) {
	for {
		s.mu.Lock()
		if s.fenced || s.stopped {
			s.mu.Unlock()
			return
		}
		next := s.next
		s.mu.Unlock()

		durable := s.mgr.Position()
		var frames []byte
		if next.Epoch == durable.Epoch && next.Offset < durable.Offset {
			var err error
			frames, _, err = s.mgr.ReadWALFrames(next.Epoch, next.Offset, s.cfg.MaxChunk)
			if err != nil {
				// An epoch superseded mid-read means a snapshot is resetting
				// the WAL; Snapshot advances this shipper right after.
				if !errors.Is(err, errEpochGone) {
					s.noteError(err)
				}
				return
			}
		} else if !heartbeat {
			return
		}

		again, err := s.shipOnce(next, frames)
		if err != nil {
			s.noteError(err)
			select {
			case <-time.After(s.cfg.RetryWait):
			case <-s.stopc:
			}
			return
		}
		if len(frames) > 0 {
			s.mu.Lock()
			s.framesShipped++
			s.bytesShipped += uint64(len(frames))
			s.mu.Unlock()
		} else if heartbeat {
			s.mu.Lock()
			s.heartbeats++
			s.mu.Unlock()
			heartbeat = false
		}
		if !again && len(frames) == 0 {
			return
		}
	}
}

// shipAck is the follower's ship response body: its post-apply
// high-water mark (and, on a 403 fence, its term).
type shipAck struct {
	Term   uint64 `json:"term"`
	Epoch  uint64 `json:"epoch"`
	Offset int64  `json:"offset"`
}

// shipOnce sends one ship request. again=true means the caller should
// continue the loop immediately (progress was made or a conflict
// resynced the cursor).
func (s *Shipper) shipOnce(from Position, frames []byte) (again bool, err error) {
	body := EncodeShipRequest(s.cfg.Term, from, frames)
	req, err := http.NewRequest(http.MethodPost, s.cfg.FollowerURL+"/v1/replication/ship", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", ShipContentType)
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	var ack shipAck
	derr := json.NewDecoder(resp.Body).Decode(&ack)
	switch resp.StatusCode {
	case http.StatusOK:
		if derr != nil {
			return false, fmt.Errorf("persist: decoding ship ack: %w", derr)
		}
		pos := Position{Epoch: ack.Epoch, Offset: ack.Offset}
		s.mu.Lock()
		if s.acked.Before(pos) {
			s.acked = pos
		}
		if s.next.Before(pos) {
			s.next = pos
		}
		s.lastAck = time.Now()
		s.lastErr = nil
		s.broadcastLocked()
		s.mu.Unlock()
		return len(frames) > 0, nil
	case http.StatusConflict:
		// Position mismatch (or a frame torn in transit): the follower
		// answered with its actual high-water mark; resume from there.
		if derr != nil {
			return false, fmt.Errorf("persist: decoding ship conflict: %w", derr)
		}
		pos := Position{Epoch: ack.Epoch, Offset: ack.Offset}
		s.mu.Lock()
		s.conflicts++
		s.next = pos
		if s.acked.Before(pos) {
			s.acked = pos
			s.broadcastLocked()
		}
		s.mu.Unlock()
		return true, nil
	case http.StatusForbidden:
		// Fenced: a higher term deposed us. Terminal for this shipper.
		s.mu.Lock()
		alreadyFenced := s.fenced
		s.fenced = true
		s.peerTerm = ack.Term
		s.broadcastLocked()
		s.mu.Unlock()
		if !alreadyFenced && s.cfg.OnFenced != nil {
			s.cfg.OnFenced(ack.Term)
		}
		return false, nil
	default:
		return false, fmt.Errorf("persist: ship request: status %d", resp.StatusCode)
	}
}

func (s *Shipper) noteError(err error) {
	s.mu.Lock()
	s.lastErr = err
	s.shipErrors++
	s.mu.Unlock()
}

// WaitAcked blocks until the follower's high-water mark reaches pos,
// the shipper is fenced or stopped, or ctx expires. A nil return means
// every WAL byte up to pos is applied on the follower.
func (s *Shipper) WaitAcked(ctx context.Context, pos Position) error {
	s.nudge()
	for {
		s.mu.Lock()
		switch {
		case !s.acked.Before(pos):
			s.mu.Unlock()
			return nil
		case s.fenced:
			s.mu.Unlock()
			return ErrFenced
		case s.stopped:
			s.mu.Unlock()
			return ErrShipperStopped
		}
		wake := s.wake
		s.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Drain blocks until the follower has acked everything durable — the
// barrier Snapshot runs before resetting the WAL, so a reset can never
// destroy frames the follower has not yet received.
func (s *Shipper) Drain() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.WaitAcked(ctx, s.mgr.Position())
}

// advanceEpoch moves the stream cursor to the start of a fresh WAL
// epoch after a snapshot reset. The caller (Snapshot) guarantees the
// follower acked everything in the previous epoch first.
func (s *Shipper) advanceEpoch(epoch uint64) {
	s.mu.Lock()
	pos := StartPosition(epoch)
	s.acked = pos
	s.next = pos
	s.broadcastLocked()
	s.mu.Unlock()
	s.nudge()
}

// Fenced reports whether the follower rejected this shipper's term, and
// the follower's term when it did.
func (s *Shipper) Fenced() (bool, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fenced, s.peerTerm
}

// Acked returns the follower's current high-water mark.
func (s *Shipper) Acked() Position {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked
}

// Stats returns a point-in-time view of the shipper.
func (s *Shipper) Stats() ShipperStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ShipperStats{
		FollowerURL:   s.cfg.FollowerURL,
		Term:          s.cfg.Term,
		Acked:         s.acked,
		Next:          s.next,
		Fenced:        s.fenced,
		PeerTerm:      s.peerTerm,
		FramesShipped: s.framesShipped,
		BytesShipped:  s.bytesShipped,
		Heartbeats:    s.heartbeats,
		Conflicts:     s.conflicts,
		ShipErrors:    s.shipErrors,
	}
	if !s.lastAck.IsZero() {
		st.LastAckAge = time.Since(s.lastAck)
	}
	if s.lastErr != nil {
		st.LastError = s.lastErr.Error()
	}
	return st
}
