package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"disksig/internal/fleet"
)

// Replication wire formats. The ship request carries raw WAL frames —
// exactly the bytes the primary appended, CRC and all — prefixed with
// the sender's leadership term and the frames' position in the
// primary's WAL, so the follower can both fence deposed senders and
// dedup re-shipped frames against its high-water mark. The bootstrap
// image is the full fleet state (the same gob payload a snapshot
// holds) plus the WAL position the follower must stream from.
//
//	ship request:    8-byte magic "DSKSHP\x00\x01" | u64 term |
//	                 u64 walEpoch | u64 fromOffset | raw WAL frames
//	bootstrap image: 8-byte magic "DSKBTS\x00\x01" | u64 term |
//	                 u64 walEpoch | u64 walOffset | u64 payloadLen |
//	                 gob(fleet.State) | u32 CRC-32 (IEEE) of
//	                 term..payload
var (
	shipMagic = [8]byte{'D', 'S', 'K', 'S', 'H', 'P', 0x00, 0x01}
	bootMagic = [8]byte{'D', 'S', 'K', 'B', 'T', 'S', 0x00, 0x01}
)

const (
	// ShipContentType labels a replication ship request body.
	ShipContentType = "application/x-disksig-wal"
	// BootstrapContentType labels a bootstrap image body.
	BootstrapContentType = "application/x-disksig-bootstrap"
	// MaxShipBody caps a ship request body: the shipper chunks at ~1 MiB
	// but a single WAL frame can legally reach maxWALRecord.
	MaxShipBody = maxWALRecord + (1 << 20)

	shipHeaderSize = 8 + 8 + 8 + 8
	bootHeaderSize = 8 + 8 + 8 + 8 + 8
)

// Position is a point in the primary's WAL stream: the WAL epoch and
// the byte offset within that epoch's file. Offsets always land on
// frame boundaries (walHeaderSize is the empty-WAL position). The
// follower's acked Position is the replication high-water mark.
type Position struct {
	Epoch  uint64 `json:"epoch"`
	Offset int64  `json:"offset"`
}

// Before reports whether p is strictly earlier in the stream than q.
// Epochs only ever advance (each snapshot bumps one), so ordering by
// (epoch, offset) is total.
func (p Position) Before(q Position) bool {
	if p.Epoch != q.Epoch {
		return p.Epoch < q.Epoch
	}
	return p.Offset < q.Offset
}

func (p Position) String() string {
	return fmt.Sprintf("%d:%d", p.Epoch, p.Offset)
}

// StartPosition returns the position of an empty WAL at the given
// epoch — the offset just past the header, where the first frame goes.
func StartPosition(epoch uint64) Position {
	return Position{Epoch: epoch, Offset: walHeaderSize}
}

// EncodeShipRequest frames raw WAL bytes for one ship request.
func EncodeShipRequest(term uint64, from Position, frames []byte) []byte {
	buf := make([]byte, shipHeaderSize, shipHeaderSize+len(frames))
	copy(buf[:8], shipMagic[:])
	binary.LittleEndian.PutUint64(buf[8:16], term)
	binary.LittleEndian.PutUint64(buf[16:24], from.Epoch)
	binary.LittleEndian.PutUint64(buf[24:32], uint64(from.Offset))
	return append(buf, frames...)
}

// DecodeShipRequest splits a ship request into its header and the raw
// WAL frame bytes (which may be empty — a heartbeat).
func DecodeShipRequest(body []byte) (term uint64, from Position, frames []byte, err error) {
	if len(body) < shipHeaderSize {
		return 0, Position{}, nil, fmt.Errorf("persist: ship request truncated at %d bytes", len(body))
	}
	if [8]byte(body[:8]) != shipMagic {
		return 0, Position{}, nil, fmt.Errorf("persist: bad ship request magic")
	}
	term = binary.LittleEndian.Uint64(body[8:16])
	from = Position{
		Epoch:  binary.LittleEndian.Uint64(body[16:24]),
		Offset: int64(binary.LittleEndian.Uint64(body[24:32])),
	}
	if from.Offset < walHeaderSize {
		return 0, Position{}, nil, fmt.Errorf("persist: ship request offset %d is inside the WAL header", from.Offset)
	}
	return term, from, body[shipHeaderSize:], nil
}

// FrameIter walks raw WAL frame bytes (a ship request payload) frame by
// frame, validating each frame's checksum and decoding its batch.
type FrameIter struct {
	data []byte
}

// NewFrameIter iterates the frames in data.
func NewFrameIter(data []byte) *FrameIter { return &FrameIter{data: data} }

// Next decodes the next frame, returning its observations and its
// on-the-wire size. It returns io.EOF at a clean end and a descriptive
// error at a torn or corrupt frame (the remaining bytes cannot be
// trusted; the receiver should ask the sender to re-ship from its
// high-water mark).
func (it *FrameIter) Next() ([]fleet.Observation, int64, error) {
	if len(it.data) == 0 {
		return nil, 0, io.EOF
	}
	if len(it.data) < 8 {
		return nil, 0, fmt.Errorf("persist: torn frame header (%d bytes)", len(it.data))
	}
	length := binary.LittleEndian.Uint32(it.data[:4])
	sum := binary.LittleEndian.Uint32(it.data[4:8])
	if length > maxWALRecord {
		return nil, 0, fmt.Errorf("persist: frame length %d exceeds cap", length)
	}
	if uint32(len(it.data)-8) < length {
		return nil, 0, fmt.Errorf("persist: torn frame payload (%d of %d bytes)", len(it.data)-8, length)
	}
	payload := it.data[8 : 8+length]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, fmt.Errorf("persist: frame checksum mismatch")
	}
	obs, err := decodeWALRecord(payload)
	if err != nil {
		return nil, 0, err
	}
	it.data = it.data[8+length:]
	return obs, 8 + int64(length), nil
}

// EncodeBootstrap serializes a bootstrap image: the full fleet state
// plus the WAL position replication resumes from and the sender's term.
func EncodeBootstrap(st *fleet.State, term uint64, pos Position) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return nil, fmt.Errorf("persist: encoding bootstrap image: %w", err)
	}
	buf := make([]byte, bootHeaderSize, bootHeaderSize+payload.Len()+4)
	copy(buf[:8], bootMagic[:])
	binary.LittleEndian.PutUint64(buf[8:16], term)
	binary.LittleEndian.PutUint64(buf[16:24], pos.Epoch)
	binary.LittleEndian.PutUint64(buf[24:32], uint64(pos.Offset))
	binary.LittleEndian.PutUint64(buf[32:40], uint64(payload.Len()))
	buf = append(buf, payload.Bytes()...)
	sum := crc32.ChecksumIEEE(buf[8:])
	buf = binary.LittleEndian.AppendUint32(buf, sum)
	return buf, nil
}

// DecodeBootstrap parses and checksums a bootstrap image.
func DecodeBootstrap(body []byte) (*fleet.State, uint64, Position, error) {
	if len(body) < bootHeaderSize+4 {
		return nil, 0, Position{}, fmt.Errorf("persist: bootstrap image truncated at %d bytes", len(body))
	}
	if [8]byte(body[:8]) != bootMagic {
		return nil, 0, Position{}, fmt.Errorf("persist: bad bootstrap image magic")
	}
	term := binary.LittleEndian.Uint64(body[8:16])
	pos := Position{
		Epoch:  binary.LittleEndian.Uint64(body[16:24]),
		Offset: int64(binary.LittleEndian.Uint64(body[24:32])),
	}
	payloadLen := binary.LittleEndian.Uint64(body[32:40])
	if payloadLen > maxSnapshotPayload || uint64(len(body)-bootHeaderSize-4) != payloadLen {
		return nil, 0, Position{}, fmt.Errorf("persist: bootstrap payload length %d does not match body", payloadLen)
	}
	payload := body[bootHeaderSize : bootHeaderSize+payloadLen]
	sum := binary.LittleEndian.Uint32(body[len(body)-4:])
	if crc32.ChecksumIEEE(body[8:len(body)-4]) != sum {
		return nil, 0, Position{}, fmt.Errorf("persist: bootstrap image checksum mismatch")
	}
	st := &fleet.State{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(st); err != nil {
		return nil, 0, Position{}, fmt.Errorf("persist: decoding bootstrap image: %w", err)
	}
	return st, term, pos, nil
}

// Position returns the durable end of the live WAL: every frame at an
// offset below it is fully on disk (modulo the OS write-back the WAL
// has always traded for throughput).
func (m *Manager) Position() Position {
	m.walMu.Lock()
	defer m.walMu.Unlock()
	return Position{Epoch: m.epoch, Offset: m.walEnd}
}

// errEpochGone reports that ReadWALFrames asked for an epoch the live
// WAL no longer has — a snapshot reset it underneath the reader. The
// shipper treats it as transient: Snapshot advances the shipper to the
// new epoch right after the reset.
var errEpochGone = fmt.Errorf("persist: WAL epoch superseded")

// ReadWALFrames reads whole frames from the live WAL starting at from,
// up to roughly maxBytes (always at least one whole frame when one is
// durable). It returns the raw frame bytes and the offset of the end of
// the last frame read. The read races no writer: walEnd only covers
// fully appended frames.
func (m *Manager) ReadWALFrames(epoch uint64, from int64, maxBytes int) ([]byte, int64, error) {
	m.walMu.Lock()
	curEpoch, end := m.epoch, m.walEnd
	m.walMu.Unlock()
	if epoch != curEpoch {
		return nil, 0, fmt.Errorf("%w (want %d, live %d)", errEpochGone, epoch, curEpoch)
	}
	if from < walHeaderSize || from > end {
		return nil, 0, fmt.Errorf("persist: WAL offset %d outside [%d, %d]", from, walHeaderSize, end)
	}
	if from == end {
		return nil, from, nil
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	f, err := os.Open(filepath.Join(m.dir, walName))
	if err != nil {
		return nil, 0, fmt.Errorf("persist: opening WAL for shipping: %w", err)
	}
	defer f.Close()

	size := int64(maxBytes)
	if end-from < size {
		size = end - from
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, from, size), buf); err != nil {
		return nil, 0, fmt.Errorf("persist: reading WAL frames at %d: %w", from, err)
	}
	// Trim to whole frames; [from, end) holds only complete frames, so a
	// partial frame at the end of buf is purely a chunking artifact.
	n := 0
	for n+8 <= len(buf) {
		l := int(binary.LittleEndian.Uint32(buf[n:]))
		if l > maxWALRecord {
			return nil, 0, fmt.Errorf("persist: WAL frame at %d has length %d beyond cap", from+int64(n), l)
		}
		if n+8+l > len(buf) {
			break
		}
		n += 8 + l
	}
	if n == 0 {
		// The first frame alone exceeds maxBytes (which may be smaller
		// than even the frame header): ship it whole anyway, progress
		// beats the chunk target.
		var hdr [8]byte
		if _, err := io.ReadFull(io.NewSectionReader(f, from, 8), hdr[:]); err != nil {
			return nil, 0, fmt.Errorf("persist: reading WAL frame header at %d: %w", from, err)
		}
		l := int(binary.LittleEndian.Uint32(hdr[:4]))
		if l > maxWALRecord {
			return nil, 0, fmt.Errorf("persist: WAL frame at %d has length %d beyond cap", from, l)
		}
		whole := make([]byte, 8+l)
		if _, err := io.ReadFull(io.NewSectionReader(f, from, int64(len(whole))), whole); err != nil {
			return nil, 0, fmt.Errorf("persist: reading oversized WAL frame at %d: %w", from, err)
		}
		return whole, from + int64(len(whole)), nil
	}
	return buf[:n], from + int64(n), nil
}

// BootstrapImage captures a consistent full-state image and the WAL
// position replication continues from, holding out ingestion for the
// export exactly like Snapshot does.
func (m *Manager) BootstrapImage(s *fleet.Store) (*fleet.State, Position) {
	m.gate.Lock()
	defer m.gate.Unlock()
	st := s.ExportState()
	m.walMu.Lock()
	pos := Position{Epoch: m.epoch, Offset: m.walEnd}
	m.walMu.Unlock()
	return st, pos
}

// AttachShipper starts (replacing any previous) WAL shipping to a
// follower from the given position. The previous shipper, if any, is
// stopped — a follower re-bootstrapping supersedes its old stream.
func (m *Manager) AttachShipper(cfg ShipperConfig, from Position) *Shipper {
	sh := newShipper(m, cfg, from)
	m.shipMu.Lock()
	old := m.ship
	m.ship = sh
	m.shipMu.Unlock()
	if old != nil {
		old.Stop()
	}
	go sh.run()
	return sh
}

// AttachedShipper returns the live shipper, or nil when no follower is
// attached.
func (m *Manager) AttachedShipper() *Shipper {
	m.shipMu.Lock()
	defer m.shipMu.Unlock()
	return m.ship
}

// DetachShipper stops shipping (the follower, if it returns, must
// re-bootstrap).
func (m *Manager) DetachShipper() {
	m.shipMu.Lock()
	old := m.ship
	m.ship = nil
	m.shipMu.Unlock()
	if old != nil {
		old.Stop()
	}
}
