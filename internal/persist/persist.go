// Package persist is the durability layer of the serving subsystem: a
// versioned, checksummed binary snapshot of the full fleet state plus
// an append-only write-ahead log (WAL) of ingested batches. Together
// they give diskserve warm restarts — a restore rebuilds the exact
// fleet state (drive histories, severities, quality accounting, trained
// models and normalizer) of the process that wrote them, without
// retraining and without replaying the whole telemetry history.
//
// # Protocol
//
// Every ingested batch is appended to the WAL before it is applied to
// the store; a snapshot captures the store's full state and then resets
// the WAL. Crash-consistency across that reset uses epochs: the WAL
// header carries an epoch number, the snapshot records the epoch of the
// WAL that starts after it, and a snapshot is committed by an atomic
// rename. On restore, the WAL is replayed only when its epoch matches
// the snapshot's — a WAL from an earlier epoch is already covered by
// the snapshot (the crash hit between snapshot rename and WAL reset)
// and is discarded, never double-applied. Replay is not idempotent
// (duplicate-hour records move quality counters), so this matters.
//
// A torn record at the WAL tail — the tail being written when the
// process died — fails its checksum, is counted as quarantined input
// through the standard quality taxonomy, and replay stops there: a torn
// tail is data loss of the records that never finished writing, not a
// failed restore.
package persist

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"disksig/internal/fleet"
	"disksig/internal/quality"
	"disksig/internal/tree"
)

func init() {
	// Predictors live inside fleet.State as interface values; the
	// concrete trained types must be registered for gob.
	gob.Register(&tree.Tree{})
	gob.Register(&tree.Forest{})
}

// ErrNoSnapshot reports that the state directory holds no snapshot to
// restore from (a cold start).
var ErrNoSnapshot = errors.New("persist: no snapshot in state directory")

const (
	snapshotName = "snapshot.bin"
	snapshotTmp  = "snapshot.tmp"
	walName      = "wal.bin"
)

// Manager owns one state directory: the current snapshot, the live WAL,
// and the epoch protocol between them. All methods are safe for
// concurrent use; LogBatch calls proceed concurrently with each other
// and are excluded only while a snapshot captures the store.
type Manager struct {
	dir string

	// gate orders batches against snapshots: LogBatch holds it shared
	// for the whole append-then-apply sequence, Snapshot holds it
	// exclusively, so no batch is ever half-applied (in the WAL but not
	// in the store, or vice versa) at the moment the store is captured.
	gate sync.RWMutex

	// walMu serializes appends to the WAL file itself. walEnd is the
	// durable end of the file — it advances by whole frames only, which
	// is what lets the replication shipper read [offset, walEnd) without
	// racing a half-written frame.
	walMu  sync.Mutex
	wal    *os.File
	epoch  uint64
	walEnd int64

	// shipMu guards the attached replication shipper (nil when no
	// follower is attached).
	shipMu sync.Mutex
	ship   *Shipper

	// followerLost counts shipper detachments forced by a failed
	// pre-snapshot drain: the follower missed frames the WAL reset
	// destroyed and must re-bootstrap.
	followerLost atomic.Uint64

	snapshots    atomic.Uint64
	snapFailures atomic.Uint64
	walBatches   atomic.Uint64
	walRows      atomic.Uint64
	walBytes     atomic.Uint64
	lastSnapNs   atomic.Int64
	lastSnapSize atomic.Int64
}

// Stats is a point-in-time view of the manager's counters, surfaced in
// /metrics.
type Stats struct {
	// Epoch is the live WAL's epoch number.
	Epoch uint64
	// Snapshots and SnapshotFailures count Snapshot outcomes since open.
	Snapshots        uint64
	SnapshotFailures uint64
	// WALBatches/WALRows/WALBytes count appends to the current manager
	// (across WAL resets) since open.
	WALBatches uint64
	WALRows    uint64
	WALBytes   uint64
	// LastSnapshotDuration and LastSnapshotBytes describe the most
	// recent successful snapshot; zero before the first one.
	LastSnapshotDuration time.Duration
	LastSnapshotBytes    int64
	// FollowerLost counts replication shippers detached because a
	// pre-snapshot drain could not confirm the follower received every
	// old-epoch frame (the follower must re-bootstrap).
	FollowerLost uint64
}

// SnapshotInfo describes one committed snapshot.
type SnapshotInfo struct {
	Drives   int
	Bytes    int64
	Duration time.Duration
	Epoch    uint64
}

// Recovery describes what a Restore rebuilt and what it had to drop.
type Recovery struct {
	// SnapshotDrives is the number of drives in the snapshot itself.
	SnapshotDrives int
	// SnapshotEpoch is the epoch the snapshot committed.
	SnapshotEpoch uint64
	// WALBatches/WALRows count the replayed write-ahead records.
	WALBatches int
	WALRows    int
	// WALAlerts counts alerts re-raised during replay (suppressed — the
	// original process already delivered them).
	WALAlerts int
	// StaleWAL reports that the WAL predated the snapshot (the crash hit
	// between snapshot commit and WAL reset) and was discarded unreplayed.
	StaleWAL bool
	// TornTail reports that replay stopped at a corrupt or half-written
	// record; DroppedBytes is how much of the WAL tail was discarded.
	TornTail     bool
	DroppedBytes int64
	// Quality accounts for recovery-level quarantine (the torn tail);
	// Replayed merges the per-batch quality ledgers of the replay.
	Quality  quality.Report
	Replayed quality.Report
}

// String summarizes the recovery for startup logs.
func (r *Recovery) String() string {
	s := fmt.Sprintf("restored %d drives from snapshot (epoch %d), replayed %d WAL batches / %d rows",
		r.SnapshotDrives, r.SnapshotEpoch, r.WALBatches, r.WALRows)
	if r.StaleWAL {
		s += "; discarded stale pre-snapshot WAL"
	}
	if r.TornTail {
		s += fmt.Sprintf("; quarantined torn WAL tail (%d bytes)", r.DroppedBytes)
	}
	return s
}

// Open attaches a manager to a state directory, creating it (and an
// empty epoch-0 WAL) if needed. A stale snapshot.tmp from a crashed
// snapshot attempt is removed; the committed snapshot is never touched.
func Open(dir string) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating state dir: %w", err)
	}
	if err := os.Remove(filepath.Join(dir, snapshotTmp)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("persist: removing stale snapshot.tmp: %w", err)
	}
	m := &Manager{dir: dir}

	// Align the starting epoch with the files on disk: continue the live
	// WAL's epoch if it is readable, else start the epoch after the
	// snapshot's (or zero on a truly cold start).
	walPath := filepath.Join(dir, walName)
	if epoch, err := readWALEpoch(walPath); err == nil {
		f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("persist: opening WAL: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: stat WAL: %w", err)
		}
		m.wal = f
		m.epoch = epoch
		m.walEnd = fi.Size()
		return m, nil
	}
	epoch := uint64(0)
	if hdr, err := readSnapshotHeader(filepath.Join(dir, snapshotName)); err == nil {
		epoch = hdr.walEpoch
	}
	if err := m.resetWALLocked(epoch); err != nil {
		return nil, err
	}
	return m, nil
}

// Dir returns the state directory.
func (m *Manager) Dir() string { return m.dir }

// HasSnapshot reports whether the directory holds a committed snapshot.
func (m *Manager) HasSnapshot() bool {
	_, err := os.Stat(filepath.Join(m.dir, snapshotName))
	return err == nil
}

// LogBatch makes one ingested batch durable and applies it: the
// observations are appended to the WAL first, then apply (the store
// mutation) runs, all under the shared side of the snapshot gate. If
// the WAL append fails the batch is NOT applied — the caller must
// surface the error instead of acknowledging an ingest that would not
// survive a restart. The returned Position is the WAL stream position
// just past this batch's frame: replication callers wait for the
// follower's high-water mark to reach it before acknowledging.
func (m *Manager) LogBatch(obs []fleet.Observation, apply func() fleet.BatchResult) (fleet.BatchResult, Position, error) {
	m.gate.RLock()
	defer m.gate.RUnlock()

	frame, err := encodeWALRecord(obs)
	if err != nil {
		return fleet.BatchResult{}, Position{}, err
	}
	m.walMu.Lock()
	_, werr := m.wal.Write(frame)
	if werr != nil {
		m.walMu.Unlock()
		return fleet.BatchResult{}, Position{}, fmt.Errorf("persist: appending to WAL: %w", werr)
	}
	m.walEnd += int64(len(frame))
	pos := Position{Epoch: m.epoch, Offset: m.walEnd}
	m.walMu.Unlock()
	m.walBatches.Add(1)
	m.walRows.Add(uint64(len(obs)))
	m.walBytes.Add(uint64(len(frame)))
	if sh := m.AttachedShipper(); sh != nil {
		sh.nudge()
	}
	return apply(), pos, nil
}

// Snapshot captures the store's full state and commits it atomically,
// then resets the WAL to the next epoch. Ingestion (LogBatch) is held
// out for the duration of the state export and the commit.
func (m *Manager) Snapshot(s *fleet.Store) (SnapshotInfo, error) {
	return m.SnapshotWith(s, nil)
}

// SnapshotWith runs mutate — typically a model hot swap — inside the
// exclusive snapshot gate and immediately captures the mutated store.
// Coupling the two makes a promotion crash-consistent: every WAL frame
// is logged under the model version of the snapshot that precedes it,
// so replay never crosses a swap. If the process dies after mutate but
// before the snapshot commits, the WAL still matches the old snapshot
// (the swap simply didn't become durable); if it dies between commit
// and WAL reset, the stale-epoch WAL is discarded as usual. A mutate
// error aborts the snapshot with the store unchanged on disk.
func (m *Manager) SnapshotWith(s *fleet.Store, mutate func() error) (SnapshotInfo, error) {
	m.gate.Lock()
	defer m.gate.Unlock()

	if mutate != nil {
		if err := mutate(); err != nil {
			return SnapshotInfo{}, err
		}
	}
	start := time.Now()
	st := s.ExportState()
	newEpoch := m.epoch + 1
	size, err := writeSnapshot(m.dir, st, newEpoch)
	if err != nil {
		m.snapFailures.Add(1)
		return SnapshotInfo{}, err
	}
	// The WAL reset below destroys the old epoch's frames. A follower
	// that has not received all of them yet would be left with a hole it
	// can never fill, so the shipper is drained first (the gate is held:
	// no new frames can appear). If the follower cannot confirm in time,
	// shipping stops — it must re-bootstrap — rather than blocking
	// snapshots on a dead peer or silently skipping its frames.
	if sh := m.AttachedShipper(); sh != nil {
		if derr := sh.Drain(); derr != nil {
			m.DetachShipper()
			m.followerLost.Add(1)
		}
	}
	// The snapshot now covers everything in the old WAL. Reset it to the
	// epoch the snapshot names; if the process dies before this
	// completes, the old WAL's stale epoch tells Restore to discard it.
	m.walMu.Lock()
	err = m.resetWALLocked(newEpoch)
	m.walMu.Unlock()
	if err != nil {
		m.snapFailures.Add(1)
		return SnapshotInfo{}, err
	}
	if sh := m.AttachedShipper(); sh != nil {
		sh.advanceEpoch(newEpoch)
	}
	d := time.Since(start)
	m.snapshots.Add(1)
	m.lastSnapNs.Store(int64(d))
	m.lastSnapSize.Store(size)
	return SnapshotInfo{Drives: len(st.Drives), Bytes: size, Duration: d, Epoch: newEpoch}, nil
}

// resetWALLocked truncates the WAL and writes a fresh header for the
// given epoch. Callers hold walMu (or are single-threaded in Open).
func (m *Manager) resetWALLocked(epoch uint64) error {
	if m.wal != nil {
		m.wal.Close()
		m.wal = nil
	}
	f, err := createWAL(filepath.Join(m.dir, walName), epoch)
	if err != nil {
		return err
	}
	m.wal = f
	m.epoch = epoch
	m.walEnd = walHeaderSize
	return nil
}

// Restore rebuilds a fleet store from the snapshot and replays the WAL
// through the normal ingestion (and therefore quarantine) path. cfg
// supplies the deployment knobs (shards, TTL, workers); the monitor
// configuration and trained models come from the snapshot. The manager
// stays open for appends afterwards: a torn WAL tail is truncated away
// so subsequent LogBatch appends start at the last good record.
func (m *Manager) Restore(cfg fleet.Config) (*fleet.Store, *Recovery, error) {
	m.gate.Lock()
	defer m.gate.Unlock()

	snapPath := filepath.Join(m.dir, snapshotName)
	st, hdr, err := readSnapshot(snapPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, ErrNoSnapshot
		}
		return nil, nil, err
	}
	store, err := fleet.Restore(st, cfg)
	if err != nil {
		return nil, nil, err
	}
	rec := &Recovery{SnapshotDrives: len(st.Drives), SnapshotEpoch: hdr.walEpoch}

	walPath := filepath.Join(m.dir, walName)
	m.walMu.Lock()
	defer m.walMu.Unlock()
	if m.wal != nil {
		m.wal.Close()
		m.wal = nil
	}
	replayEnd, err := m.replayWAL(walPath, hdr.walEpoch, store, rec)
	if err != nil {
		return nil, nil, err
	}
	if rec.StaleWAL || replayEnd < 0 {
		// Pre-snapshot WAL (or unreadable header): discard and restart
		// at the snapshot's epoch.
		if err := m.resetWALLocked(hdr.walEpoch); err != nil {
			return nil, nil, err
		}
		return store, rec, nil
	}
	if rec.TornTail {
		if err := os.Truncate(walPath, replayEnd); err != nil {
			return nil, nil, fmt.Errorf("persist: truncating torn WAL tail: %w", err)
		}
	}
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: reopening WAL: %w", err)
	}
	m.wal = f
	m.epoch = hdr.walEpoch
	m.walEnd = replayEnd
	return store, rec, nil
}

// replayWAL replays the WAL into the store when its epoch matches the
// snapshot's. It returns the offset of the end of the last good record
// (the truncation point when the tail is torn), or -1 when the WAL is
// missing or its header is unreadable (rec.StaleWAL is set: the file
// cannot be continued).
func (m *Manager) replayWAL(path string, wantEpoch uint64, store *fleet.Store, rec *Recovery) (int64, error) {
	r, err := openWALReader(path)
	if err != nil {
		if os.IsNotExist(err) {
			rec.StaleWAL = false
			return -1, nil
		}
		// Unreadable header: treat like a torn file with nothing
		// recoverable — quarantine it, don't fail the restore.
		rec.TornTail = true
		if fi, serr := os.Stat(path); serr == nil {
			rec.DroppedBytes = fi.Size()
		}
		rec.Quality.Note(quality.Issue{
			Kind:   quality.TruncatedInput,
			Detail: fmt.Sprintf("WAL header unreadable: %v", err),
		}, quality.Config{})
		rec.StaleWAL = true
		return -1, nil
	}
	defer r.Close()

	if r.Epoch() != wantEpoch {
		// The WAL predates (or impossibly postdates) the snapshot: its
		// batches are already inside the snapshot. Replaying them would
		// double-apply (replay is not idempotent).
		rec.StaleWAL = true
		return -1, nil
	}
	for {
		obs, err := r.Next()
		if err == errWALEnd {
			return r.Offset(), nil
		}
		if err != nil {
			// Torn or corrupt record: everything up to here is applied,
			// the rest of the file is quarantined.
			rec.TornTail = true
			rec.DroppedBytes = r.Remaining()
			rec.Quality.Note(quality.Issue{
				Kind:   quality.TruncatedInput,
				Detail: fmt.Sprintf("WAL record at offset %d: %v", r.Offset(), err),
			}, quality.Config{})
			return r.Offset(), nil
		}
		res := store.IngestBatch(obs)
		rec.WALBatches++
		rec.WALRows += res.Ingested
		rec.WALAlerts += len(res.Alerts)
		rec.Replayed.Merge(&res.Quality)
	}
}

// Stats returns a point-in-time view of the manager's counters.
func (m *Manager) Stats() Stats {
	m.walMu.Lock()
	epoch := m.epoch
	m.walMu.Unlock()
	return Stats{
		Epoch:                epoch,
		Snapshots:            m.snapshots.Load(),
		SnapshotFailures:     m.snapFailures.Load(),
		WALBatches:           m.walBatches.Load(),
		WALRows:              m.walRows.Load(),
		WALBytes:             m.walBytes.Load(),
		LastSnapshotDuration: time.Duration(m.lastSnapNs.Load()),
		LastSnapshotBytes:    m.lastSnapSize.Load(),
		FollowerLost:         m.followerLost.Load(),
	}
}

// Close stops any attached shipper and releases the WAL handle. It
// does not snapshot; callers that want a final snapshot take one first.
func (m *Manager) Close() error {
	m.DetachShipper()
	m.gate.Lock()
	defer m.gate.Unlock()
	m.walMu.Lock()
	defer m.walMu.Unlock()
	if m.wal == nil {
		return nil
	}
	err := m.wal.Close()
	m.wal = nil
	return err
}
