package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"disksig/internal/fleet"
)

// Snapshot file layout (all integers little endian):
//
//	8-byte magic "DSKSNAP\x01"
//	u32 version (currently 1)
//	u64 walEpoch — the epoch of the WAL that begins after this snapshot
//	u64 payload length
//	payload — gob-encoded *fleet.State
//	u32 CRC-32 (IEEE) over version..payload
//
// The snapshot is written to snapshot.tmp, fsynced, and renamed over
// snapshot.bin: a crash mid-write leaves the previous snapshot intact.
var snapMagic = [8]byte{'D', 'S', 'K', 'S', 'N', 'A', 'P', 0x01}

const (
	snapVersion = 1
	// maxSnapshotPayload caps the decoded payload so a corrupt length
	// field cannot drive a huge allocation.
	maxSnapshotPayload = 1 << 32
)

type snapshotHeader struct {
	version  uint32
	walEpoch uint64
	// payloadLen is the gob payload's size in bytes.
	payloadLen uint64
}

// writeSnapshot serializes the state and commits it atomically,
// returning the file size.
func writeSnapshot(dir string, st *fleet.State, walEpoch uint64) (int64, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return 0, fmt.Errorf("persist: encoding snapshot: %w", err)
	}

	var buf bytes.Buffer
	buf.Grow(payload.Len() + 32)
	buf.Write(snapMagic[:])
	var fixed [20]byte
	binary.LittleEndian.PutUint32(fixed[0:4], snapVersion)
	binary.LittleEndian.PutUint64(fixed[4:12], walEpoch)
	binary.LittleEndian.PutUint64(fixed[12:20], uint64(payload.Len()))
	buf.Write(fixed[:])
	buf.Write(payload.Bytes())
	sum := crc32.ChecksumIEEE(buf.Bytes()[len(snapMagic):])
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	buf.Write(tail[:])

	tmp := filepath.Join(dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("persist: creating snapshot.tmp: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("persist: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("persist: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotName)); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("persist: committing snapshot: %w", err)
	}
	// The rename is only crash-durable once the directory entry is on
	// disk; without the directory fsync a crash can roll the commit back
	// to the previous snapshot after the WAL was already reset.
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	return int64(buf.Len()), nil
}

// readSnapshotHeader reads and validates only the fixed-size header.
func readSnapshotHeader(path string) (snapshotHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return snapshotHeader{}, err
	}
	defer f.Close()
	return decodeSnapshotHeader(f)
}

func decodeSnapshotHeader(r io.Reader) (snapshotHeader, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return snapshotHeader{}, fmt.Errorf("persist: reading snapshot magic: %w", err)
	}
	if magic != snapMagic {
		return snapshotHeader{}, fmt.Errorf("persist: bad snapshot magic")
	}
	var fixed [20]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return snapshotHeader{}, fmt.Errorf("persist: reading snapshot header: %w", err)
	}
	hdr := snapshotHeader{
		version:    binary.LittleEndian.Uint32(fixed[0:4]),
		walEpoch:   binary.LittleEndian.Uint64(fixed[4:12]),
		payloadLen: binary.LittleEndian.Uint64(fixed[12:20]),
	}
	if hdr.version != snapVersion {
		return snapshotHeader{}, fmt.Errorf("persist: snapshot version %d not supported (want %d)", hdr.version, snapVersion)
	}
	if hdr.payloadLen > maxSnapshotPayload {
		return snapshotHeader{}, fmt.Errorf("persist: snapshot payload length %d exceeds cap", hdr.payloadLen)
	}
	return hdr, nil
}

// readSnapshot reads, checksums and decodes a committed snapshot.
func readSnapshot(path string) (*fleet.State, snapshotHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, snapshotHeader{}, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, snapshotHeader{}, fmt.Errorf("persist: stat snapshot: %w", err)
	}
	hdr, err := decodeSnapshotHeader(f)
	if err != nil {
		return nil, snapshotHeader{}, err
	}
	wantSize := int64(len(snapMagic)) + 20 + int64(hdr.payloadLen) + 4
	if fi.Size() != wantSize {
		return nil, hdr, fmt.Errorf("persist: snapshot is %d bytes, header implies %d", fi.Size(), wantSize)
	}
	payload := make([]byte, hdr.payloadLen)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, hdr, fmt.Errorf("persist: reading snapshot payload: %w", err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(f, tail[:]); err != nil {
		return nil, hdr, fmt.Errorf("persist: reading snapshot checksum: %w", err)
	}
	sum := crc32.NewIEEE()
	var fixed [20]byte
	binary.LittleEndian.PutUint32(fixed[0:4], hdr.version)
	binary.LittleEndian.PutUint64(fixed[4:12], hdr.walEpoch)
	binary.LittleEndian.PutUint64(fixed[12:20], hdr.payloadLen)
	sum.Write(fixed[:])
	sum.Write(payload)
	if sum.Sum32() != binary.LittleEndian.Uint32(tail[:]) {
		return nil, hdr, fmt.Errorf("persist: snapshot checksum mismatch")
	}
	st := &fleet.State{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(st); err != nil {
		return nil, hdr, fmt.Errorf("persist: decoding snapshot payload: %w", err)
	}
	return st, hdr, nil
}
