package persist

import (
	"os"
	"reflect"
	"testing"

	"disksig/internal/fleet"
)

func testArtifact(version int) *ModelArtifact {
	return &ModelArtifact{
		Version:        version,
		Fingerprint:    "deadbeefcafef00d",
		TrainedMaxHour: 480,
		FailedDrives:   12,
		GoodDrives:     88,
		Models:         testModels(),
		Norm:           testNormalizer(),
		Notes:          []string{"group 2: window clamped to 24h"},
	}
}

func TestModelArtifactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testArtifact(3)
	size, err := SaveModels(dir, want)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(ModelsPath(dir)); err != nil || fi.Size() != size {
		t.Fatalf("artifact on disk = %v bytes (%v), SaveModels reported %d", fi.Size(), err, size)
	}
	got, err := LoadModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-tripped artifact = %+v, want %+v", got, want)
	}
	// A newer artifact replaces the old one atomically.
	if _, err := SaveModels(dir, testArtifact(4)); err != nil {
		t.Fatal(err)
	}
	if got, err := LoadModels(dir); err != nil || got.Version != 4 {
		t.Fatalf("after re-save: version %d (%v), want 4", got.Version, err)
	}
	if _, err := os.Stat(ModelsPath(dir) + ".tmp"); !os.IsNotExist(err) {
		t.Error("models.tmp left behind after commit")
	}
	// Nil artifact is an input error, not a file write.
	if _, err := SaveModels(dir, nil); err == nil {
		t.Error("SaveModels(nil) succeeded")
	}
}

func TestLoadModelsMissing(t *testing.T) {
	_, err := LoadModels(t.TempDir())
	if !os.IsNotExist(err) {
		t.Fatalf("LoadModels on an empty dir = %v, want os.IsNotExist", err)
	}
}

func TestLoadModelsCorruption(t *testing.T) {
	dir := t.TempDir()
	if _, err := SaveModels(dir, testArtifact(2)); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(ModelsPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(ModelsPath(dir), pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Flip one payload byte: the checksum must catch it.
	corrupt := append([]byte(nil), pristine...)
	corrupt[len(corrupt)/2] ^= 0x40
	if err := os.WriteFile(ModelsPath(dir), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModels(dir); err == nil || os.IsNotExist(err) {
		t.Fatalf("flipped byte loaded: %v", err)
	}

	// Truncation: the size check must catch it before decoding.
	restore()
	if err := os.WriteFile(ModelsPath(dir), pristine[:len(pristine)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModels(dir); err == nil || os.IsNotExist(err) {
		t.Fatalf("truncated artifact loaded: %v", err)
	}

	// Wrong magic: refused outright.
	restore()
	bad := append([]byte(nil), pristine...)
	bad[0] = 'X'
	if err := os.WriteFile(ModelsPath(dir), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModels(dir); err == nil || os.IsNotExist(err) {
		t.Fatalf("bad magic loaded: %v", err)
	}

	// Corruption errors must never look like "no artifact yet": the boot
	// path treats os.IsNotExist as benign and everything else as fatal.
	restore()
	if _, err := LoadModels(dir); err != nil {
		t.Fatalf("pristine artifact failed to load after restore: %v", err)
	}
}

// TestSnapshotWithSwap covers the crash-consistent promotion path: the
// swap runs inside the snapshot gate, so the committed snapshot carries
// the new version and a restore comes back on it.
func TestSnapshotWithSwap(t *testing.T) {
	dir := t.TempDir()
	mgr, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	store := testStore(t, fleet.Config{Shards: 4})
	for h := 0; h < 5; h++ {
		store.Ingest("SER-1", record(h, 0.9))
	}
	next := []fleet.Observation{{Serial: "SER-1", Record: record(5, 0.9)}}

	if _, err := mgr.SnapshotWith(store, func() error {
		return store.SwapModels(testModels(), testNormalizer(), 2)
	}); err != nil {
		t.Fatal(err)
	}
	// Post-promotion traffic lands in the new epoch's WAL.
	if _, _, err := mgr.LogBatch(next, func() fleet.BatchResult {
		return store.IngestBatch(next)
	}); err != nil {
		t.Fatal(err)
	}

	restored, _, err := mgr.Restore(fleet.Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if v := restored.ModelVersion(); v != 2 {
		t.Fatalf("restored ModelVersion = %d, want 2", v)
	}
	if !reflect.DeepEqual(store.ExportState(), restored.ExportState()) {
		t.Fatal("restored state differs from live state after promotion")
	}

	// A failing mutate aborts the snapshot: nothing newer is committed,
	// and a restore still sees the promoted version from before.
	if _, err := mgr.SnapshotWith(store, func() error {
		return store.SwapModels(testModels(), testNormalizer(), 2) // refused: not newer
	}); err == nil {
		t.Fatal("SnapshotWith committed despite a failing mutate")
	}
	restored2, _, err := mgr.Restore(fleet.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if v := restored2.ModelVersion(); v != 2 {
		t.Fatalf("after aborted snapshot, restored ModelVersion = %d, want 2", v)
	}
}
