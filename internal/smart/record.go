package smart

import "fmt"

// Values holds one value per selected attribute, in Table I order.
type Values [NumAttrs]float64

// Slice returns the values as a fresh []float64.
func (v Values) Slice() []float64 {
	out := make([]float64, NumAttrs)
	copy(out, v[:])
	return out
}

// Select returns the values of the given attributes, in order.
func (v Values) Select(attrs []Attr) []float64 {
	out := make([]float64, len(attrs))
	for i, a := range attrs {
		out[i] = v[a]
	}
	return out
}

// Record is one hourly health sample of one drive.
type Record struct {
	// Hour is the sample time as hours since the drive entered monitoring.
	Hour int
	// Values are the 12 selected attribute values. Depending on pipeline
	// stage they are either vendor health values / raw counters (as
	// produced by MapToRecord) or Eq. (1)-normalized values in [-1, 1].
	Values Values
}

// Profile is the monitored health history of one drive.
type Profile struct {
	// DriveID uniquely identifies the drive within its dataset.
	DriveID int
	// Class is the drive's device class. The zero value is HDD, so
	// profiles (and gob snapshots) that predate device classes load as
	// the paper's HDD population.
	Class DeviceClass
	// Failed reports whether the drive was replaced due to failure. For
	// failed drives the last record is the failure record (the paper's
	// definition: the last recorded health state before replacement).
	Failed bool
	// TrueGroup is the generative failure mode for synthetic drives
	// (1..3), or 0 when unknown/not failed. The analysis pipeline must
	// never read it; it exists so experiments can score cluster recovery.
	TrueGroup int
	// Records are the hourly samples in chronological order.
	Records []Record
}

// Len returns the number of records in the profile.
func (p *Profile) Len() int { return len(p.Records) }

// FailureRecord returns the last recorded health state of a failed drive.
// It panics if the profile is empty or the drive did not fail.
func (p *Profile) FailureRecord() Record {
	if !p.Failed {
		panic(fmt.Sprintf("smart: drive %d did not fail; it has no failure record", p.DriveID))
	}
	if len(p.Records) == 0 {
		panic(fmt.Sprintf("smart: drive %d has an empty profile", p.DriveID))
	}
	return p.Records[len(p.Records)-1]
}

// AttrSeries returns the time series of one attribute across the profile.
func (p *Profile) AttrSeries(a Attr) []float64 {
	out := make([]float64, len(p.Records))
	for i, r := range p.Records {
		out[i] = r.Values[a]
	}
	return out
}

// Tail returns the last n records (fewer if the profile is shorter). The
// returned slice aliases the profile's storage.
func (p *Profile) Tail(n int) []Record {
	if n >= len(p.Records) {
		return p.Records
	}
	return p.Records[len(p.Records)-n:]
}

// Clone returns a deep copy of the profile.
func (p *Profile) Clone() *Profile {
	c := *p
	c.Records = make([]Record, len(p.Records))
	copy(c.Records, p.Records)
	return &c
}
