// Package smart models SMART (Self-Monitoring, Analysis and Reporting
// Technology) disk-health telemetry: the 12 attributes the paper selects
// (Table I), a vendor-style mapping from raw sensor counters to one-byte
// health values, hourly health records and per-drive profiles, and the
// paper's Eq. (1) min-max normalization to [-1, 1].
package smart

import "fmt"

// Attr identifies one of the 12 selected disk health attributes.
type Attr int

// The attribute order matches Table I of the paper. The first eight are
// read/write-related health values, RawRSC and RawCPSC are the two raw
// counters kept because their normalized counterparts lose accuracy, and
// POH / TC are environmental attributes.
const (
	RRER    Attr = iota // Raw Read Error Rate (health value)
	RSC                 // Reallocated Sectors Count (health value)
	SER                 // Seek Error Rate (health value)
	RUE                 // Reported Uncorrectable Errors (health value)
	HFW                 // High Fly Writes (health value)
	HER                 // Hardware ECC Recovered (health value)
	CPSC                // Current Pending Sector Count (health value)
	SUT                 // Spin Up Time (health value)
	RawRSC              // Reallocated Sectors Count (raw counter)
	RawCPSC             // Current Pending Sector Count (raw counter)
	POH                 // Power On Hours (health value, environmental)
	TC                  // Temperature Celsius (health value, environmental)

	NumAttrs // number of selected attributes
)

// Kind distinguishes read/write-related attributes from environmental ones.
type Kind int

const (
	// ReadWrite attributes are directly related to disk read/write
	// operations; the paper uses them (and only them) for failure
	// categorization.
	ReadWrite Kind = iota
	// Environmental attributes (POH, TC) do not result from read/write
	// activity; the paper analyzes their influence separately (Sec. IV-D).
	Environmental
)

// ValueKind distinguishes normalized one-byte health values from six-byte
// raw counters.
type ValueKind int

const (
	// HealthValue is the vendor-normalized one-byte relative health.
	HealthValue ValueKind = iota
	// RawData is the raw sensor/counter measurement.
	RawData
)

// Info describes one attribute (one row of Table I).
type Info struct {
	Attr      Attr
	Symbol    string
	Name      string
	Kind      Kind
	ValueKind ValueKind
}

var infos = [NumAttrs]Info{
	{RRER, "RRER", "Raw Read Error Rate", ReadWrite, HealthValue},
	{RSC, "RSC", "Reallocated Sectors Count", ReadWrite, HealthValue},
	{SER, "SER", "Seek Error Rate", ReadWrite, HealthValue},
	{RUE, "RUE", "Reported Uncorrectable Errors", ReadWrite, HealthValue},
	{HFW, "HFW", "High Fly Writes", ReadWrite, HealthValue},
	{HER, "HER", "Hardware ECC Recovered", ReadWrite, HealthValue},
	{CPSC, "CPSC", "Current Pending Sector Count", ReadWrite, HealthValue},
	{SUT, "SUT", "Spin Up Time", ReadWrite, HealthValue},
	{RawRSC, "R-RSC", "Reallocated Sectors Count", ReadWrite, RawData},
	{RawCPSC, "R-CPSC", "Current Pending Sector Count", ReadWrite, RawData},
	{POH, "POH", "Power On Hours", Environmental, HealthValue},
	{TC, "TC", "Temperature Celsius", Environmental, HealthValue},
}

// InfoOf returns the descriptor for a.
func InfoOf(a Attr) Info {
	if a < 0 || a >= NumAttrs {
		panic(fmt.Sprintf("smart: invalid attribute %d", int(a)))
	}
	return infos[a]
}

// All returns every attribute in Table I order.
func All() []Attr {
	out := make([]Attr, NumAttrs)
	for i := range out {
		out[i] = Attr(i)
	}
	return out
}

// ReadWriteAttrs returns the ten R/W-related attributes, the feature basis
// for failure categorization (Sec. IV-B).
func ReadWriteAttrs() []Attr {
	var out []Attr
	for _, info := range infos {
		if info.Kind == ReadWrite {
			out = append(out, info.Attr)
		}
	}
	return out
}

// EnvironmentalAttrs returns POH and TC.
func EnvironmentalAttrs() []Attr {
	var out []Attr
	for _, info := range infos {
		if info.Kind == Environmental {
			out = append(out, info.Attr)
		}
	}
	return out
}

// String returns the attribute's symbol (e.g. "R-RSC").
func (a Attr) String() string { return InfoOf(a).Symbol }

// ParseAttr resolves a symbol like "RRER" or "R-RSC" to its Attr.
func ParseAttr(symbol string) (Attr, error) {
	for _, info := range infos {
		if info.Symbol == symbol {
			return info.Attr, nil
		}
	}
	return 0, fmt.Errorf("smart: unknown attribute symbol %q", symbol)
}
