package smart

import "fmt"

// DeviceClass distinguishes the device populations of a heterogeneous
// fleet. The paper's analysis is HDD-only; SSDs reuse the same 12
// attribute slots but with different semantics (wear-leveling instead of
// read errors, program/erase cycles instead of reallocated sectors) and
// different failure dynamics (gradual wear-out vs. sudden death), so
// every class must be normalized, clustered and modeled separately.
//
// HDD is the zero value: every pre-existing profile, snapshot, WAL
// record and wire frame that predates device classes decodes as an HDD
// fleet unchanged.
type DeviceClass uint8

const (
	// HDD is a rotational drive: the paper's population and the zero value.
	HDD DeviceClass = iota
	// SSD is a flash drive with wear-driven attribute semantics.
	SSD

	NumClasses // number of device classes
)

// Valid reports whether c names a known device class.
func (c DeviceClass) Valid() bool { return c < NumClasses }

// String returns the canonical lowercase class name.
func (c DeviceClass) String() string {
	switch c {
	case HDD:
		return "hdd"
	case SSD:
		return "ssd"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ParseClass resolves a class name. The empty string parses as HDD so
// wire formats and JSON bodies can omit the field for the legacy
// population.
func ParseClass(s string) (DeviceClass, error) {
	switch s {
	case "", "hdd", "HDD":
		return HDD, nil
	case "ssd", "SSD":
		return SSD, nil
	}
	return 0, fmt.Errorf("smart: unknown device class %q", s)
}

// Classes returns every device class in enum order.
func Classes() []DeviceClass {
	out := make([]DeviceClass, NumClasses)
	for i := range out {
		out[i] = DeviceClass(i)
	}
	return out
}

// ssdInfos reinterprets the 12 attribute slots for flash devices. The
// slot positions (and therefore Values layout, wire encodings and the
// Eq. (1) machinery) are shared with Table I; only the semantics differ:
// the read/write health slots carry wear and block-retirement health,
// the two raw slots carry program/erase cycles and used reserved blocks,
// and the environmental slots keep their HDD meaning.
var ssdInfos = [NumAttrs]Info{
	{RRER, "WLC", "Wear Leveling Count", ReadWrite, HealthValue},
	{RSC, "RNBC", "Retired NAND Block Count", ReadWrite, HealthValue},
	{SER, "PFC", "Program Fail Count", ReadWrite, HealthValue},
	{RUE, "RUE", "Reported Uncorrectable Errors", ReadWrite, HealthValue},
	{HFW, "RBR", "Reserved Blocks Remaining", ReadWrite, HealthValue},
	{HER, "EFC", "Erase Fail Count", ReadWrite, HealthValue},
	{CPSC, "UECC", "Uncorrectable ECC Errors", ReadWrite, HealthValue},
	{SUT, "SSDR", "SATA Downshift Rate", ReadWrite, HealthValue},
	{RawRSC, "R-PEC", "Program Erase Cycles", ReadWrite, RawData},
	{RawCPSC, "R-RBU", "Reserved Blocks Used", ReadWrite, RawData},
	{POH, "POH", "Power On Hours", Environmental, HealthValue},
	{TC, "TC", "Temperature Celsius", Environmental, HealthValue},
}

// InfoFor returns the descriptor of attribute a under device class c.
// For HDD it is identical to InfoOf.
func InfoFor(c DeviceClass, a Attr) Info {
	if a < 0 || a >= NumAttrs {
		panic(fmt.Sprintf("smart: invalid attribute %d", int(a)))
	}
	if c == SSD {
		return ssdInfos[a]
	}
	return infos[a]
}

// ssdRawBounds is the admission ceiling of the SSD raw slots. Unlike
// HDD sector counters (bounded only by the six-byte field), program/
// erase cycles and reserved-block counts are physically bounded: no
// flash cell survives millions of P/E cycles and no drive carries a
// billion spare blocks. A tighter ceiling keeps one corrupt raw reading
// from stretching the SSD min-max span by orders of magnitude.
const ssdRawBounds = 5e6

// BoundsFor returns the plausible vendor-space range [lo, hi] of
// attribute a under device class c. Health-value slots are one-byte
// scores under every class; raw slots are class-dependent (see
// ssdRawBounds). BoundsFor(HDD, a) equals Bounds(a).
func BoundsFor(c DeviceClass, a Attr) (lo, hi float64) {
	if InfoFor(c, a).ValueKind == HealthValue {
		return 0, 255
	}
	if c == SSD {
		return 0, ssdRawBounds
	}
	return 0, 1e15
}

// InBoundsFor reports whether x is a plausible vendor-space value for
// attribute a under class c. NaN and infinities are never in bounds.
func InBoundsFor(c DeviceClass, a Attr, x float64) bool {
	lo, hi := BoundsFor(c, a)
	return x >= lo && x <= hi // NaN fails both comparisons
}
