package smart

// Bounds returns the plausible vendor-space range [lo, hi] of attribute a.
// Vendor health values are one-byte relative health scores, so anything
// outside [0, 255] is telemetry corruption rather than degradation; raw
// counters are non-negative and bounded far above any count a six-byte
// SMART field can report. These bounds are the admission check applied
// before the Eq. (1) normalization fit: a corrupt extremum that slipped
// into the fit would stretch the min-max span and crush every legitimate
// value toward the middle of [-1, 1].
func Bounds(a Attr) (lo, hi float64) {
	if InfoOf(a).ValueKind == HealthValue {
		return 0, 255
	}
	return 0, 1e15
}

// InBounds reports whether x is a plausible vendor-space value for a.
// NaN and infinities are never in bounds.
func InBounds(a Attr, x float64) bool {
	lo, hi := Bounds(a)
	return x >= lo && x <= hi // NaN fails both comparisons
}
