package smart

import (
	"math"
	"testing"
)

// FuzzNormalize is the property suite for Eq. (1): for any normalizer
// fitted on finite data, (a) every normalized finite value lands in
// [-1, 1], (b) the fitted state round-trips bit-for-bit through its gob
// wire form, and (c) non-finite observations never poison the extrema.
func FuzzNormalize(f *testing.F) {
	f.Add(0.0, 1.0, 0.5, 0.0)
	f.Add(-1.0, 1.0, 0.0, 2.0)
	f.Add(1e300, -1e300, 12.5, -0.25)
	f.Add(3.14, 3.14, 3.14, 3.14) // constant attribute: span 0
	f.Add(math.MaxFloat64, -math.MaxFloat64, 0.0, 1.0)
	f.Add(math.Inf(1), 0.0, 1.0, 2.0)  // +Inf must be rejected
	f.Add(math.NaN(), 0.0, 1.0, 2.0)   // NaN must be rejected
	f.Add(0.0, math.Inf(-1), 1.0, 2.0) // -Inf must be rejected

	f.Fuzz(func(t *testing.T, a, b, c, x float64) {
		n := NewNormalizer()
		var va, vb, vc Values
		for i := range va {
			va[i], vb[i], vc[i] = a, b, c
		}
		n.Observe(va)
		n.Observe(vb)
		n.Observe(vc)

		anyFinite := false
		for _, s := range []float64{a, b, c} {
			if !math.IsNaN(s) && !math.IsInf(s, 0) {
				anyFinite = true
			}
		}
		if n.Fitted() != anyFinite {
			t.Fatalf("Fitted() = %v after observing %v %v %v, want %v", n.Fitted(), a, b, c, anyFinite)
		}
		if !anyFinite {
			return
		}

		// (c) Non-finite observations must not have reached the extrema.
		for i := 0; i < int(NumAttrs); i++ {
			if math.IsNaN(n.Min[i]) || math.IsInf(n.Min[i], 0) ||
				math.IsNaN(n.Max[i]) || math.IsInf(n.Max[i], 0) {
				t.Fatalf("non-finite extrema after observing %v %v %v: Min=%v Max=%v", a, b, c, n.Min[i], n.Max[i])
			}
		}

		// (a) Any finite input normalizes into [-1, 1] — including inputs
		// far outside the fitted range, which must saturate.
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			var vx Values
			for i := range vx {
				vx[i] = x
			}
			out := n.Normalize(vx)
			for i, v := range out {
				if math.IsNaN(v) || v < -1 || v > 1 {
					t.Fatalf("Normalize(%v) attr %d = %v, want in [-1, 1] (fit over %v %v %v)", x, i, v, a, b, c)
				}
			}
		}

		// (b) Gob round-trip: the restored normalizer carries the same
		// extrema and fitted flag and normalizes identically.
		blob, err := n.GobEncode()
		if err != nil {
			t.Fatal(err)
		}
		var back Normalizer
		if err := back.GobDecode(blob); err != nil {
			t.Fatal(err)
		}
		if back.Fitted() != n.Fitted() || back.Min != n.Min || back.Max != n.Max {
			t.Fatalf("gob round-trip changed state: %v -> %v", n, &back)
		}
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			for i := 0; i < int(NumAttrs); i++ {
				want := n.NormalizeValue(Attr(i), x)
				if got := back.NormalizeValue(Attr(i), x); got != want {
					t.Fatalf("restored normalizer: NormalizeValue(%d, %v) = %v, want %v", i, x, got, want)
				}
			}
		}
	})
}

// TestObserveRejectsNonFinite pins the quarantine property with explicit
// cases the fuzz corpus seeds.
func TestObserveRejectsNonFinite(t *testing.T) {
	n := NewNormalizer()
	var inf Values
	for a := range inf {
		inf[a] = math.Inf(1)
	}
	n.Observe(inf)
	if n.Fitted() {
		t.Fatal("normalizer fitted by an all-Inf observation")
	}

	var lo, hi Values
	for a := range lo {
		lo[a], hi[a] = -2, 2
	}
	n.Observe(lo)
	n.Observe(hi)
	var poison Values
	for a := range poison {
		poison[a] = math.Inf(-1)
	}
	n.Observe(poison)
	for a := 0; a < int(NumAttrs); a++ {
		if n.Min[a] != -2 || n.Max[a] != 2 {
			t.Fatalf("attr %d extrema [%v, %v] poisoned by Inf, want [-2, 2]", a, n.Min[a], n.Max[a])
		}
	}
	// The span survives, so normalization still spreads values.
	var mid Values
	if got := n.Normalize(mid)[0]; got != 0 {
		t.Fatalf("Normalize(0) = %v over [-2, 2], want 0", got)
	}
}

// TestMergePreservesFiniteExtrema checks the sharded-fit path: merging
// an unfitted (or Inf-poisoned-input) shard is a no-op.
func TestMergePreservesFiniteExtrema(t *testing.T) {
	a := NewNormalizer()
	var v Values
	for i := range v {
		v[i] = 1
	}
	a.Observe(v)

	empty := NewNormalizer()
	a.Merge(empty)
	if !a.Fitted() || a.Min[0] != 1 || a.Max[0] != 1 {
		t.Fatalf("merge with unfitted shard changed state: %v", a)
	}
}
