package smart

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
)

// Normalizer implements the paper's Eq. (1) min-max normalization,
//
//	x_norm = 2*(x - x_min)/(x_max - x_min) - 1,
//
// where x_min and x_max are the dataset-wide extrema of each attribute.
// Normalization makes values of different attributes comparable so that
// Euclidean distances and clustering treat them uniformly.
type Normalizer struct {
	Min    Values
	Max    Values
	fitted bool
}

// NewNormalizer returns an empty normalizer ready for Observe calls.
func NewNormalizer() *Normalizer {
	n := &Normalizer{}
	for a := 0; a < int(NumAttrs); a++ {
		n.Min[a] = math.Inf(1)
		n.Max[a] = math.Inf(-1)
	}
	return n
}

// Observe extends the per-attribute extrema with one record's values.
// Non-finite values are ignored: a NaN never orders against the extrema
// anyway, and an Inf would widen the span to infinity and silently
// flatten every later normalized value of that attribute to 0. The
// normalizer becomes fitted only once at least one finite value has
// been observed.
func (n *Normalizer) Observe(v Values) {
	any := false
	for a := 0; a < int(NumAttrs); a++ {
		x := v[a]
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		any = true
		if x < n.Min[a] {
			n.Min[a] = x
		}
		if x > n.Max[a] {
			n.Max[a] = x
		}
	}
	if any {
		n.fitted = true
	}
}

// ObserveProfile extends the extrema with every record of a profile.
func (n *Normalizer) ObserveProfile(p *Profile) {
	for _, r := range p.Records {
		n.Observe(r.Values)
	}
}

// Fitted reports whether at least one record has been observed.
func (n *Normalizer) Fitted() bool { return n.fitted }

// Merge extends the extrema with another normalizer's. Min/max merging
// is exact and order-independent, so a fit sharded across goroutines and
// merged reproduces a sequential fit over the same records bit-for-bit.
func (n *Normalizer) Merge(other *Normalizer) {
	if !other.fitted {
		return
	}
	for a := 0; a < int(NumAttrs); a++ {
		if other.Min[a] < n.Min[a] {
			n.Min[a] = other.Min[a]
		}
		if other.Max[a] > n.Max[a] {
			n.Max[a] = other.Max[a]
		}
	}
	n.fitted = true
}

// NormalizeValue maps a single attribute value into [-1, 1] per Eq. (1).
// Attributes that are constant across the dataset map to 0.
func (n *Normalizer) NormalizeValue(a Attr, x float64) float64 {
	if !n.fitted {
		panic("smart: Normalizer used before observing any data")
	}
	span := n.Max[a] - n.Min[a]
	if span == 0 || math.IsInf(span, 0) {
		return 0
	}
	v := 2*(x-n.Min[a])/span - 1
	// Clamp: values outside the fitted range (e.g. from a held-out drive)
	// saturate rather than escaping [-1, 1].
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}

// Normalize maps all attribute values of v into [-1, 1].
func (n *Normalizer) Normalize(v Values) Values {
	var out Values
	for a := 0; a < int(NumAttrs); a++ {
		out[a] = n.NormalizeValue(Attr(a), v[a])
	}
	return out
}

// Denormalize inverts Eq. (1) for a single attribute value.
func (n *Normalizer) Denormalize(a Attr, x float64) float64 {
	if !n.fitted {
		panic("smart: Normalizer used before observing any data")
	}
	span := n.Max[a] - n.Min[a]
	return n.Min[a] + (x+1)/2*span
}

// NormalizeProfile returns a copy of p with all records normalized.
func (n *Normalizer) NormalizeProfile(p *Profile) *Profile {
	c := p.Clone()
	for i := range c.Records {
		c.Records[i].Values = n.Normalize(c.Records[i].Values)
	}
	return c
}

// gobNormalizer is the gob wire form of a Normalizer: the fitted flag is
// unexported and would otherwise be dropped, silently turning a restored
// normalizer into one that panics on first use.
type gobNormalizer struct {
	Min, Max Values
	Fitted   bool
}

// GobEncode implements gob.GobEncoder.
func (n *Normalizer) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&gobNormalizer{Min: n.Min, Max: n.Max, Fitted: n.fitted}); err != nil {
		return nil, fmt.Errorf("smart: encoding normalizer: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (n *Normalizer) GobDecode(data []byte) error {
	var g gobNormalizer
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return fmt.Errorf("smart: decoding normalizer: %w", err)
	}
	n.Min, n.Max, n.fitted = g.Min, g.Max, g.Fitted
	return nil
}

// String summarizes the fitted ranges.
func (n *Normalizer) String() string {
	if !n.fitted {
		return "Normalizer(unfitted)"
	}
	s := "Normalizer{"
	for a := 0; a < int(NumAttrs); a++ {
		if a > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:[%.3g,%.3g]", Attr(a), n.Min[a], n.Max[a])
	}
	return s + "}"
}
