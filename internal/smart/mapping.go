package smart

import "math"

// RawState is the physical sensor/counter state of a drive at one sample.
// The synthetic fleet simulator produces RawState streams; MapToRecord
// converts them into the 12 selected attribute values the way a drive's
// firmware would.
type RawState struct {
	ReadErrorRate   float64 // raw read errors per million operations
	Reallocated     int     // cumulative reallocated sectors
	SeekErrorRate   float64 // seek errors per million seeks
	Uncorrectable   int     // cumulative reported uncorrectable errors
	HighFlyWrites   int     // cumulative high-fly write incidents
	ECCRecovered    float64 // hardware-ECC-recovered errors per million reads
	PendingSectors  int     // current pending (unstable) sectors
	SpinUpMillis    float64 // last spin-up time in milliseconds
	PowerOnHours    float64 // total powered-on hours
	TemperatureC    float64 // current drive temperature, Celsius
	SpareSectorPool int     // size of the spare sector pool (vendor constant)
}

// Firmware parameters of the vendor health-value mapping. Health values
// start at Best and decrease linearly with the raw measurement, clamped to
// [Worst, Best]. A linear-with-saturation map keeps the degradation
// polynomial visible after Eq. (1) normalization (see DESIGN.md).
const (
	healthBest  = 100.0
	healthWorst = 1.0

	// Per-unit health penalty of each raw measurement.
	readErrPenalty   = 0.35 // per raw read error/1e6 ops
	reallocPenalty   = 0.02 // per reallocated sector
	seekErrPenalty   = 0.5  // per seek error/1e6 seeks
	uncorrPenalty    = 0.9  // per uncorrectable error
	hfwPenalty       = 0.6  // per high-fly write
	eccPenalty       = 0.12 // per ECC-recovered error/1e6 reads
	pendingPenalty   = 0.8  // per pending sector
	nominalSpinUpMs  = 4200.0
	spinUpPenaltyPer = 0.02 // per millisecond above nominal

	// POHDecrementHours reproduces the paper's quirk: the POH health value
	// drops by one for every 876 powered-on hours (about 1/10 of a year).
	POHDecrementHours = 876.0
)

// clampHealth clamps v into the legal one-byte health range.
func clampHealth(v float64) float64 {
	if v > healthBest {
		return healthBest
	}
	if v < healthWorst {
		return healthWorst
	}
	return v
}

// HealthRRER maps a raw read error rate to its health value.
func HealthRRER(rate float64) float64 { return clampHealth(healthBest - readErrPenalty*rate) }

// HealthRSC maps a reallocated sector count to its health value.
func HealthRSC(realloc int) float64 {
	return clampHealth(healthBest - reallocPenalty*float64(realloc))
}

// HealthSER maps a seek error rate to its health value.
func HealthSER(rate float64) float64 { return clampHealth(healthBest - seekErrPenalty*rate) }

// HealthRUE maps an uncorrectable error count to its health value.
func HealthRUE(uncorr int) float64 {
	return clampHealth(healthBest - uncorrPenalty*float64(uncorr))
}

// HealthHFW maps a high-fly write count to its health value.
func HealthHFW(hfw int) float64 { return clampHealth(healthBest - hfwPenalty*float64(hfw)) }

// HealthHER maps an ECC-recovered error rate to its health value.
func HealthHER(rate float64) float64 { return clampHealth(healthBest - eccPenalty*rate) }

// HealthCPSC maps a pending sector count to its health value.
func HealthCPSC(pending int) float64 {
	return clampHealth(healthBest - pendingPenalty*float64(pending))
}

// HealthSUT maps a spin-up time to its health value.
func HealthSUT(ms float64) float64 {
	excess := ms - nominalSpinUpMs
	if excess < 0 {
		excess = 0
	}
	return clampHealth(healthBest - spinUpPenaltyPer*excess)
}

// HealthPOH maps power-on hours to the quirky stepped health value the
// paper describes: reduced by one for every 876 hours of operation.
func HealthPOH(hours float64) float64 {
	if hours < 0 {
		hours = 0
	}
	return clampHealth(healthBest - math.Floor(hours/POHDecrementHours))
}

// SmoothPOH is the paper's preprocessing of the stepped POH value: a very
// small constant is added between consecutive hourly samples so the value
// reflects the one-hour sampling interval while preserving the step scale.
func SmoothPOH(hours float64) float64 {
	if hours < 0 {
		hours = 0
	}
	return clampHealth(healthBest - hours/POHDecrementHours)
}

// HealthTC maps drive temperature to its health value (hotter is worse).
func HealthTC(celsius float64) float64 { return clampHealth(healthBest - celsius) }

// MapToRecord converts a raw drive state into the 12 selected attribute
// values (Table I order): eight R/W health values, the two raw counters,
// and the two environmental health values.
func MapToRecord(s RawState) Values {
	var v Values
	v[RRER] = HealthRRER(s.ReadErrorRate)
	v[RSC] = HealthRSC(s.Reallocated)
	v[SER] = HealthSER(s.SeekErrorRate)
	v[RUE] = HealthRUE(s.Uncorrectable)
	v[HFW] = HealthHFW(s.HighFlyWrites)
	v[HER] = HealthHER(s.ECCRecovered)
	v[CPSC] = HealthCPSC(s.PendingSectors)
	v[SUT] = HealthSUT(s.SpinUpMillis)
	v[RawRSC] = float64(s.Reallocated)
	v[RawCPSC] = float64(s.PendingSectors)
	v[POH] = SmoothPOH(s.PowerOnHours)
	v[TC] = HealthTC(s.TemperatureC)
	return v
}
