package smart

// SSDRawState is the physical counter state of a flash drive at one
// sample. The synthetic fleet simulator produces SSDRawState streams;
// MapSSDToRecord converts them into the 12 attribute slots the way SSD
// firmware would, using the SSD registry semantics (see ssdInfos).
type SSDRawState struct {
	PECycles       float64 // average program/erase cycles per cell
	RatedPECycles  float64 // vendor endurance rating (cycles)
	RetiredBlocks  int     // cumulative retired NAND blocks
	ProgramFails   int     // cumulative program failures
	EraseFails     int     // cumulative erase failures
	Uncorrectable  int     // cumulative reported uncorrectable errors
	UncorrectedECC int     // cumulative uncorrectable ECC events
	ReservedTotal  int     // size of the reserved (spare) block pool
	ReservedUsed   int     // reserved blocks consumed by retirement
	SATADownshifts int     // cumulative interface speed downshifts
	PowerOnHours   float64 // total powered-on hours
	TemperatureC   float64 // current controller temperature, Celsius
}

// Firmware parameters of the SSD health-value mapping. Like the HDD
// mapping these are linear-with-saturation so degradation trajectories
// survive Eq. (1) normalization.
const (
	retiredBlockPenalty = 0.05 // per retired NAND block
	programFailPenalty  = 0.4  // per program failure
	eraseFailPenalty    = 0.5  // per erase failure
	ueccPenalty         = 0.8  // per uncorrectable ECC event
	downshiftPenalty    = 2.0  // per SATA downshift
)

// HealthWLC maps wear (consumed endurance fraction) to the wear-leveling
// health value: 100 when unworn, decreasing linearly to the floor as the
// average cell reaches its rated program/erase cycles.
func HealthWLC(pe, rated float64) float64 {
	if rated <= 0 {
		return healthBest
	}
	return clampHealth(healthBest - (healthBest-healthWorst)*pe/rated)
}

// HealthRBR maps reserved-pool consumption to the reserved-blocks-
// remaining health value: the percentage of the spare pool still free.
func HealthRBR(used, total int) float64 {
	if total <= 0 {
		return healthBest
	}
	return clampHealth(healthBest * (1 - float64(used)/float64(total)))
}

// MapSSDToRecord converts a raw flash-drive state into the 12 attribute
// slots under the SSD registry: eight R/W wear and error health values,
// raw program/erase cycles and reserved blocks used, and the two
// environmental health values shared with HDD.
func MapSSDToRecord(s SSDRawState) Values {
	var v Values
	v[RRER] = HealthWLC(s.PECycles, s.RatedPECycles)
	v[RSC] = clampHealth(healthBest - retiredBlockPenalty*float64(s.RetiredBlocks))
	v[SER] = clampHealth(healthBest - programFailPenalty*float64(s.ProgramFails))
	v[RUE] = HealthRUE(s.Uncorrectable)
	v[HFW] = HealthRBR(s.ReservedUsed, s.ReservedTotal)
	v[HER] = clampHealth(healthBest - eraseFailPenalty*float64(s.EraseFails))
	v[CPSC] = clampHealth(healthBest - ueccPenalty*float64(s.UncorrectedECC))
	v[SUT] = clampHealth(healthBest - downshiftPenalty*float64(s.SATADownshifts))
	v[RawRSC] = s.PECycles
	v[RawCPSC] = float64(s.ReservedUsed)
	v[POH] = SmoothPOH(s.PowerOnHours)
	v[TC] = HealthTC(s.TemperatureC)
	return v
}
