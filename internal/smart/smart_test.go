package smart

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAttrRegistry(t *testing.T) {
	if int(NumAttrs) != 12 {
		t.Fatalf("NumAttrs = %d, want 12 (Table I)", NumAttrs)
	}
	if len(ReadWriteAttrs()) != 10 {
		t.Errorf("ReadWriteAttrs = %d, want 10", len(ReadWriteAttrs()))
	}
	if len(EnvironmentalAttrs()) != 2 {
		t.Errorf("EnvironmentalAttrs = %d, want 2", len(EnvironmentalAttrs()))
	}
	if RRER.String() != "RRER" || RawRSC.String() != "R-RSC" {
		t.Errorf("symbols: %s %s", RRER, RawRSC)
	}
}

func TestParseAttr(t *testing.T) {
	for _, a := range All() {
		got, err := ParseAttr(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAttr(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAttr("NOPE"); err == nil {
		t.Error("expected error for unknown symbol")
	}
}

func TestInfoOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid attr")
		}
	}()
	InfoOf(Attr(99))
}

func TestHealthMappingsMonotone(t *testing.T) {
	// Every health mapping must be non-increasing in its raw measurement
	// and clamped to [1, 100].
	maps := []struct {
		name string
		f    func(float64) float64
	}{
		{"RRER", HealthRRER},
		{"SER", HealthSER},
		{"HER", HealthHER},
		{"SUT", HealthSUT},
		{"TC", HealthTC},
		{"POH", HealthPOH},
		{"SmoothPOH", SmoothPOH},
	}
	for _, m := range maps {
		prev := math.Inf(1)
		for raw := 0.0; raw <= 20000; raw += 97 {
			h := m.f(raw)
			if h > prev {
				t.Errorf("%s not monotone at raw=%v", m.name, raw)
				break
			}
			if h < 1 || h > 100 {
				t.Errorf("%s out of range at raw=%v: %v", m.name, raw, h)
				break
			}
			prev = h
		}
	}
	intMaps := []struct {
		name string
		f    func(int) float64
	}{
		{"RSC", HealthRSC},
		{"RUE", HealthRUE},
		{"HFW", HealthHFW},
		{"CPSC", HealthCPSC},
	}
	for _, m := range intMaps {
		prev := math.Inf(1)
		for raw := 0; raw <= 20000; raw += 37 {
			h := m.f(raw)
			if h > prev || h < 1 || h > 100 {
				t.Errorf("%s violated monotone/clamp at raw=%d: %v", m.name, raw, h)
				break
			}
			prev = h
		}
	}
}

func TestHealthPOHQuirk(t *testing.T) {
	// The stepped POH value must drop exactly at 876-hour boundaries.
	if HealthPOH(0) != 100 || HealthPOH(875) != 100 {
		t.Errorf("POH(0)=%v POH(875)=%v, want 100", HealthPOH(0), HealthPOH(875))
	}
	if HealthPOH(876) != 99 {
		t.Errorf("POH(876) = %v, want 99", HealthPOH(876))
	}
	if HealthPOH(876*3) != 97 {
		t.Errorf("POH(2628) = %v, want 97", HealthPOH(876*3))
	}
	// SmoothPOH must strictly decrease between samples inside a step.
	if !(SmoothPOH(101) < SmoothPOH(100)) {
		t.Error("SmoothPOH not strictly decreasing within a step")
	}
	// And agree with the stepped value at step boundaries.
	if SmoothPOH(876) != HealthPOH(876) {
		t.Errorf("SmoothPOH(876)=%v != HealthPOH(876)=%v", SmoothPOH(876), HealthPOH(876))
	}
}

func TestMapToRecordHealthyDrive(t *testing.T) {
	s := RawState{SpinUpMillis: 4000, TemperatureC: 30, PowerOnHours: 100}
	v := MapToRecord(s)
	for _, a := range []Attr{RRER, RSC, SER, RUE, HFW, HER, CPSC, SUT} {
		if v[a] != 100 {
			t.Errorf("%s = %v, want 100 for pristine drive", a, v[a])
		}
	}
	if v[RawRSC] != 0 || v[RawCPSC] != 0 {
		t.Errorf("raw counters = %v/%v, want 0", v[RawRSC], v[RawCPSC])
	}
	if v[TC] != 70 {
		t.Errorf("TC = %v, want 70 for 30C", v[TC])
	}
}

func TestMapToRecordDegradedDrive(t *testing.T) {
	s := RawState{
		ReadErrorRate: 100, Reallocated: 2000, SeekErrorRate: 40,
		Uncorrectable: 80, HighFlyWrites: 50, ECCRecovered: 300,
		PendingSectors: 60, SpinUpMillis: 6000, PowerOnHours: 20000,
		TemperatureC: 48,
	}
	v := MapToRecord(s)
	healthy := MapToRecord(RawState{SpinUpMillis: 4000, TemperatureC: 30})
	for _, a := range []Attr{RRER, RSC, SER, RUE, HFW, HER, CPSC, SUT, TC} {
		if v[a] >= healthy[a] {
			t.Errorf("%s = %v, want below healthy %v", a, v[a], healthy[a])
		}
	}
	if v[RawRSC] != 2000 || v[RawCPSC] != 60 {
		t.Errorf("raw counters = %v/%v", v[RawRSC], v[RawCPSC])
	}
}

func TestValuesSelect(t *testing.T) {
	var v Values
	for i := range v {
		v[i] = float64(i)
	}
	got := v.Select([]Attr{TC, RRER})
	if got[0] != float64(TC) || got[1] != 0 {
		t.Errorf("Select = %v", got)
	}
	s := v.Slice()
	s[0] = 99
	if v[0] == 99 {
		t.Error("Slice should copy")
	}
}

func TestProfileAccessors(t *testing.T) {
	p := &Profile{DriveID: 7, Failed: true}
	for h := 0; h < 5; h++ {
		var v Values
		v[RRER] = float64(h)
		p.Records = append(p.Records, Record{Hour: h, Values: v})
	}
	if p.Len() != 5 {
		t.Errorf("Len = %d", p.Len())
	}
	if fr := p.FailureRecord(); fr.Hour != 4 {
		t.Errorf("FailureRecord.Hour = %d, want 4", fr.Hour)
	}
	series := p.AttrSeries(RRER)
	if len(series) != 5 || series[3] != 3 {
		t.Errorf("AttrSeries = %v", series)
	}
	if got := p.Tail(2); len(got) != 2 || got[0].Hour != 3 {
		t.Errorf("Tail(2) = %v", got)
	}
	if got := p.Tail(99); len(got) != 5 {
		t.Errorf("Tail(99) len = %d", len(got))
	}
	c := p.Clone()
	c.Records[0].Values[RRER] = 42
	if p.Records[0].Values[RRER] == 42 {
		t.Error("Clone shares record storage")
	}
}

func TestFailureRecordPanicsOnGoodDrive(t *testing.T) {
	p := &Profile{DriveID: 1, Failed: false, Records: []Record{{}}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.FailureRecord()
}

func TestNormalizerEq1(t *testing.T) {
	n := NewNormalizer()
	var lo, hi Values
	for a := range lo {
		lo[a] = 0
		hi[a] = 10
	}
	n.Observe(lo)
	n.Observe(hi)
	var mid Values
	for a := range mid {
		mid[a] = 5
	}
	got := n.Normalize(mid)
	for a, v := range got {
		if v != 0 {
			t.Errorf("attr %d: normalize(5) = %v, want 0", a, v)
		}
	}
	if n.NormalizeValue(RRER, 0) != -1 || n.NormalizeValue(RRER, 10) != 1 {
		t.Error("extremes should map to -1 and 1")
	}
	// Out-of-range values saturate.
	if n.NormalizeValue(RRER, 20) != 1 || n.NormalizeValue(RRER, -5) != -1 {
		t.Error("out-of-range values should clamp")
	}
}

func TestNormalizerConstantAttr(t *testing.T) {
	n := NewNormalizer()
	var v Values
	v[TC] = 55
	n.Observe(v)
	n.Observe(v)
	if got := n.NormalizeValue(TC, 55); got != 0 {
		t.Errorf("constant attribute should normalize to 0, got %v", got)
	}
}

func TestNormalizerRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := NewNormalizer()
		var samples []Values
		for i := 0; i < 20; i++ {
			var v Values
			for a := range v {
				v[a] = rng.Float64() * 100
			}
			n.Observe(v)
			samples = append(samples, v)
		}
		for _, v := range samples {
			norm := n.Normalize(v)
			for a := 0; a < int(NumAttrs); a++ {
				if norm[a] < -1 || norm[a] > 1 {
					return false
				}
				back := n.Denormalize(Attr(a), norm[a])
				if math.Abs(back-v[a]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNormalizerUnfittedPanics(t *testing.T) {
	n := NewNormalizer()
	if n.Fitted() {
		t.Error("fresh normalizer should not be fitted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unfitted use")
		}
	}()
	n.NormalizeValue(RRER, 1)
}

func TestNormalizeProfile(t *testing.T) {
	n := NewNormalizer()
	p := &Profile{DriveID: 1, Failed: true}
	for h := 0; h < 3; h++ {
		var v Values
		for a := range v {
			v[a] = float64(h * 10)
		}
		p.Records = append(p.Records, Record{Hour: h, Values: v})
	}
	n.ObserveProfile(p)
	np := n.NormalizeProfile(p)
	if np.Records[0].Values[RRER] != -1 || np.Records[2].Values[RRER] != 1 {
		t.Errorf("normalized profile = %v", np.Records)
	}
	// Original untouched.
	if p.Records[0].Values[RRER] != 0 {
		t.Error("NormalizeProfile mutated the original")
	}
	if n.String() == "" || NewNormalizer().String() != "Normalizer(unfitted)" {
		t.Error("String rendering")
	}
}
