package smart

import (
	"math"
	"testing"
)

func TestDeviceClassNames(t *testing.T) {
	cases := []struct {
		in   string
		want DeviceClass
	}{
		{"", HDD}, {"hdd", HDD}, {"HDD", HDD}, {"ssd", SSD}, {"SSD", SSD},
	}
	for _, tc := range cases {
		got, err := ParseClass(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseClass(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseClass("tape"); err == nil {
		t.Error("ParseClass accepted an unknown class")
	}
	if HDD.String() != "hdd" || SSD.String() != "ssd" {
		t.Errorf("class names: %q, %q", HDD, SSD)
	}
	if !HDD.Valid() || !SSD.Valid() || NumClasses.Valid() {
		t.Error("Valid misclassifies a class constant")
	}
	if len(Classes()) != int(NumClasses) {
		t.Errorf("Classes() has %d entries, want %d", len(Classes()), NumClasses)
	}
}

func TestClassRegistry(t *testing.T) {
	for a := Attr(0); a < NumAttrs; a++ {
		if InfoFor(HDD, a) != InfoOf(a) {
			t.Errorf("InfoFor(HDD, %v) diverges from InfoOf", a)
		}
		lo, hi := BoundsFor(HDD, a)
		blo, bhi := Bounds(a)
		if lo != blo || hi != bhi {
			t.Errorf("BoundsFor(HDD, %v) = [%g, %g], want [%g, %g]", a, lo, hi, blo, bhi)
		}
		if InfoFor(SSD, a).Attr != a {
			t.Errorf("ssd registry slot %v mislabeled as %v", a, InfoFor(SSD, a).Attr)
		}
		if InfoFor(SSD, a).ValueKind != InfoOf(a).ValueKind {
			t.Errorf("slot %v changes ValueKind across classes; wire layouts assume it is shared", a)
		}
	}
	// The SSD raw slots carry P/E cycles and reserved-block counts, which
	// are physically bounded far below the HDD six-byte counter ceiling.
	if _, hi := BoundsFor(SSD, RawRSC); hi >= 1e15 {
		t.Errorf("SSD raw bounds ceiling %g is not class-keyed", hi)
	}
	if !InBoundsFor(SSD, RawRSC, 45_000) {
		t.Error("a realistic P/E cycle count must be in SSD bounds")
	}
	if InBoundsFor(SSD, RawRSC, 1e12) {
		t.Error("an HDD-scale raw counter must be out of SSD bounds")
	}
	if InBoundsFor(SSD, RawRSC, math.NaN()) || InBoundsFor(SSD, TC, math.Inf(1)) {
		t.Error("non-finite values must never be in bounds")
	}
}

// TestClassKeyedNormalizerBounds pins the satellite fix: normalizer
// extrema must be fitted per device class. A global fit over a mixed
// fleet lets SSD program/erase cycles (tens of thousands in the RawRSC
// slot) stretch the min-max span so far that every HDD reallocated-
// sector reading of the same slot flattens into a sliver of [-1, 1];
// class-keyed fits keep the HDD span fully resolved.
func TestClassKeyedNormalizerBounds(t *testing.T) {
	hddVals := []float64{0, 40, 120, 400} // HDD raw reallocated sectors
	ssdVals := []float64{28_000, 45_000}  // SSD raw P/E cycles, same slot
	obs := func(n *Normalizer, xs []float64) {
		for _, x := range xs {
			var v Values
			v[RawRSC] = x
			n.Observe(v)
		}
	}

	global := NewNormalizer()
	obs(global, hddVals)
	obs(global, ssdVals)

	perClass := [NumClasses]*Normalizer{NewNormalizer(), NewNormalizer()}
	obs(perClass[HDD], hddVals)
	obs(perClass[SSD], ssdVals)

	span := func(n *Normalizer) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range hddVals {
			y := n.NormalizeValue(RawRSC, x)
			lo, hi = math.Min(lo, y), math.Max(hi, y)
		}
		return hi - lo
	}
	if s := span(global); s > 0.05 {
		t.Fatalf("global fit no longer flattens the HDD span (span %.4f): the regression premise changed", s)
	}
	if s := span(perClass[HDD]); s < 1.99 {
		t.Fatalf("class-keyed fit resolves only %.4f of the HDD span; want the full [-1, 1]", s)
	}
	// And the SSD partition normalizes on its own wear scale.
	if y := perClass[SSD].NormalizeValue(RawRSC, 45_000); y != 1 {
		t.Fatalf("SSD max P/E cycles normalized to %g, want 1", y)
	}
}
