// Package parallel is the deterministic parallel execution layer of the
// characterization pipeline: a bounded worker pool with ForEach/Map/shard
// helpers, an errgroup-style fan-out, and the seed-derivation scheme used
// to give independent parallel tasks (K-means restarts, reservoir shards)
// decorrelated but reproducible RNG streams.
//
// Every helper guarantees that results are independent of the worker
// count and of goroutine scheduling as long as the supplied callbacks
// are themselves deterministic and write only to their own index/shard:
// work is identified by index, outputs land in index-addressed slots,
// shard boundaries depend only on the data size, and errors are reported
// by the lowest failing index. Running with one worker therefore
// produces bit-for-bit the same output as running with many.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: values > 0 are used as
// given, anything else means runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (Workers semantics: <= 0 means GOMAXPROCS). Indices are handed out
// dynamically, so callers must not depend on execution order; for
// deterministic results fn(i) should write only to slot i of shared
// state. With one worker (or n <= 1) it degenerates to a plain loop.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachErr is ForEach for fallible work: it runs every index to
// completion (no early abort) and returns the error of the lowest
// failing index, so the reported error is independent of scheduling.
func ForEachErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	ForEach(workers, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns the results in index order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// Shard is a contiguous index range [Lo, Hi) with its position in the
// shard sequence.
type Shard struct {
	Index  int
	Lo, Hi int
}

// Len returns the number of indices in the shard.
func (s Shard) Len() int { return s.Hi - s.Lo }

// Shards splits [0, n) into contiguous ranges of at most size indices.
// Boundaries depend only on n and size — never on the worker count — so
// per-shard results (and RNG streams seeded from Shard.Index) are stable
// across machines and parallelism levels.
func Shards(n, size int) []Shard {
	if n <= 0 {
		return nil
	}
	if size <= 0 {
		size = n
	}
	out := make([]Shard, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Shard{Index: len(out), Lo: lo, Hi: hi})
	}
	return out
}

// MapShards runs fn over every shard on up to workers goroutines and
// returns the per-shard results in shard order, ready for an in-order
// (and therefore deterministic) merge by the caller.
func MapShards[T any](workers int, shards []Shard, fn func(s Shard) T) []T {
	return Map(workers, len(shards), func(i int) T { return fn(shards[i]) })
}

// Group runs heterogeneous tasks concurrently, errgroup-style. Errors
// are collected per task and Wait returns the error of the earliest
// submitted task that failed, independent of completion order.
type Group struct {
	wg   sync.WaitGroup
	mu   sync.Mutex
	errs []error
}

// Go submits one task.
func (g *Group) Go(fn func() error) {
	g.mu.Lock()
	slot := len(g.errs)
	g.errs = append(g.errs, nil)
	g.mu.Unlock()
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		err := fn()
		g.mu.Lock()
		g.errs[slot] = err
		g.mu.Unlock()
	}()
}

// Wait blocks until every submitted task finishes and returns the error
// of the earliest submission that failed, or nil.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, err := range g.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DeriveSeed mixes a base seed with a stream number into an independent
// 64-bit seed using the SplitMix64 finalizer, so parallel restarts and
// shards get decorrelated deterministic RNG streams. Equal inputs always
// produce equal outputs; nearby stream numbers produce unrelated seeds.
func DeriveSeed(seed, stream int64) int64 {
	z := uint64(seed) + uint64(stream)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
