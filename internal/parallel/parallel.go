// Package parallel is the deterministic parallel execution layer of the
// characterization pipeline: a bounded worker pool with ForEach/Map/shard
// helpers, an errgroup-style fan-out, and the seed-derivation scheme used
// to give independent parallel tasks (K-means restarts, reservoir shards)
// decorrelated but reproducible RNG streams.
//
// Every helper guarantees that results are independent of the worker
// count and of goroutine scheduling as long as the supplied callbacks
// are themselves deterministic and write only to their own index/shard:
// work is identified by index, outputs land in index-addressed slots,
// shard boundaries depend only on the data size, and errors are reported
// by the lowest failing index. Running with one worker therefore
// produces bit-for-bit the same output as running with many.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a worker panic converted into an error: the recovered
// value, the index of the work item (or -1 for a Group task), and the
// stack of the panicking goroutine at recovery time. Converting panics
// to errors keeps one poisoned record or model from crashing a whole
// characterization run.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Index is the ForEach work index, or -1 for a Group task.
	Index int
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error renders the recovered value and the captured stack.
func (e *PanicError) Error() string {
	where := "task"
	if e.Index >= 0 {
		where = fmt.Sprintf("index %d", e.Index)
	}
	return fmt.Sprintf("parallel: panic at %s: %v\n%s", where, e.Value, e.Stack)
}

// Workers resolves a configured worker count: values > 0 are used as
// given, anything else means runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (Workers semantics: <= 0 means GOMAXPROCS). Indices are handed out
// dynamically, so callers must not depend on execution order; for
// deterministic results fn(i) should write only to slot i of shared
// state. With one worker (or n <= 1) it degenerates to a plain loop.
//
// A panic in fn does not crash the process the way an uncaught panic on
// a worker goroutine would: every index still runs, and the panic of the
// lowest panicking index is re-raised on the calling goroutine as a
// *PanicError carrying the recovered value and the worker's stack, where
// the caller can recover it.
func ForEach(workers, n int, fn func(i int)) {
	if pe, _ := forEach(nil, workers, n, fn); pe != nil {
		panic(pe)
	}
}

// ForEachCtx is ForEach with cancellation: once ctx is done, no new
// index is dispatched (in-flight calls finish) and ctx.Err() is
// returned. Panics in fn are returned as a *PanicError instead of being
// re-raised. Without cancellation or panics it returns nil.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	pe, err := forEach(ctx, workers, n, fn)
	if err != nil {
		return err
	}
	if pe != nil {
		return pe
	}
	return nil
}

// forEach is the shared pool loop: it runs fn over [0, n) honoring an
// optional context and captures worker panics, returning the panic of
// the lowest panicking index (every other index still runs) and the
// context error if cancellation stopped dispatch early. The guarded
// call and the lowest-index rule make the outcome independent of the
// worker count: one worker hits the same lowest panicking index a
// worker fleet reports.
func forEach(ctx context.Context, workers, n int, fn func(i int)) (*PanicError, error) {
	if n <= 0 {
		return nil, nil
	}
	var (
		mu     sync.Mutex
		lowest *PanicError
	)
	guarded := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				pe := &PanicError{Value: v, Index: i, Stack: debug.Stack()}
				mu.Lock()
				if lowest == nil || pe.Index < lowest.Index {
					lowest = pe
				}
				mu.Unlock()
			}
		}()
		fn(i)
	}
	cancelled := func() bool {
		return ctx != nil && ctx.Err() != nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if cancelled() {
				return lowest, ctx.Err()
			}
			guarded(i)
		}
		return lowest, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if cancelled() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				guarded(i)
			}
		}()
	}
	wg.Wait()
	if cancelled() {
		return lowest, ctx.Err()
	}
	return lowest, nil
}

// ForEachErr is ForEach for fallible work: it runs every index to
// completion (no early abort) and returns the error of the lowest
// failing index, so the reported error is independent of scheduling.
// A panic in fn counts as that index failing with a *PanicError.
func ForEachErr(workers, n int, fn func(i int) error) error {
	return ForEachErrCtx(nil, workers, n, fn)
}

// ForEachErrCtx is ForEachErr with cancellation: once ctx is done, no
// new index is dispatched (in-flight calls finish) and ctx.Err() is
// returned — cancellation takes precedence over per-index errors, since
// the set of indices that ran under cancellation is schedule-dependent.
// A nil ctx means no cancellation.
func ForEachErrCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	pe, ctxErr := forEach(ctx, workers, n, func(i int) { errs[i] = fn(i) })
	if ctxErr != nil {
		return ctxErr
	}
	if pe != nil {
		errs[pe.Index] = pe
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns the results in index order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// Shard is a contiguous index range [Lo, Hi) with its position in the
// shard sequence.
type Shard struct {
	Index  int
	Lo, Hi int
}

// Len returns the number of indices in the shard.
func (s Shard) Len() int { return s.Hi - s.Lo }

// Shards splits [0, n) into contiguous ranges of at most size indices.
// Boundaries depend only on n and size — never on the worker count — so
// per-shard results (and RNG streams seeded from Shard.Index) are stable
// across machines and parallelism levels.
func Shards(n, size int) []Shard {
	if n <= 0 {
		return nil
	}
	if size <= 0 {
		size = n
	}
	out := make([]Shard, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Shard{Index: len(out), Lo: lo, Hi: hi})
	}
	return out
}

// MapShards runs fn over every shard on up to workers goroutines and
// returns the per-shard results in shard order, ready for an in-order
// (and therefore deterministic) merge by the caller.
func MapShards[T any](workers int, shards []Shard, fn func(s Shard) T) []T {
	return Map(workers, len(shards), func(i int) T { return fn(shards[i]) })
}

// Group runs heterogeneous tasks concurrently, errgroup-style. Errors
// are collected per task and Wait returns the error of the earliest
// submitted task that failed, independent of completion order. A panic
// in a task is captured as that task failing with a *PanicError rather
// than crashing the process. The zero Group is ready to use;
// GroupWithContext builds one that stops admitting tasks on
// cancellation.
type Group struct {
	wg   sync.WaitGroup
	mu   sync.Mutex
	errs []error
	ctx  context.Context
}

// GroupWithContext returns a Group bound to ctx: a task submitted after
// ctx is done is not started — its slot records ctx.Err() instead — so
// a cancelled pipeline stops fanning out promptly. Tasks already
// running are not interrupted; they observe ctx themselves.
func GroupWithContext(ctx context.Context) *Group {
	return &Group{ctx: ctx}
}

// Go submits one task.
func (g *Group) Go(fn func() error) {
	g.mu.Lock()
	slot := len(g.errs)
	g.errs = append(g.errs, nil)
	g.mu.Unlock()
	if g.ctx != nil && g.ctx.Err() != nil {
		g.mu.Lock()
		g.errs[slot] = g.ctx.Err()
		g.mu.Unlock()
		return
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		err := func() (err error) {
			defer func() {
				if v := recover(); v != nil {
					err = &PanicError{Value: v, Index: -1, Stack: debug.Stack()}
				}
			}()
			return fn()
		}()
		g.mu.Lock()
		g.errs[slot] = err
		g.mu.Unlock()
	}()
}

// Wait blocks until every submitted task finishes and returns the error
// of the earliest submission that failed, or nil.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, err := range g.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DeriveSeed mixes a base seed with a stream number into an independent
// 64-bit seed using the SplitMix64 finalizer, so parallel restarts and
// shards get decorrelated deterministic RNG streams. Equal inputs always
// produce equal outputs; nearby stream numbers produce unrelated seeds.
func DeriveSeed(seed, stream int64) int64 {
	z := uint64(seed) + uint64(stream)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
