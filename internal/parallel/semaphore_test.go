package parallel

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestSemaphoreTryAcquire(t *testing.T) {
	s := NewSemaphore(2)
	if !s.TryAcquire(1) || !s.TryAcquire(1) {
		t.Fatal("TryAcquire failed with capacity available")
	}
	if s.TryAcquire(1) {
		t.Fatal("TryAcquire succeeded beyond capacity")
	}
	if got := s.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	s.Release(1)
	if !s.TryAcquire(1) {
		t.Fatal("TryAcquire failed after Release")
	}
	s.Release(2)
	if got := s.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d, want 0", got)
	}
}

func TestSemaphoreWeighted(t *testing.T) {
	s := NewSemaphore(4)
	if err := s.Acquire(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if s.TryAcquire(2) {
		t.Fatal("TryAcquire(2) succeeded with only 1 unit free")
	}
	if !s.TryAcquire(1) {
		t.Fatal("TryAcquire(1) failed with 1 unit free")
	}
	s.Release(4)
}

func TestSemaphoreAcquireOverCapacity(t *testing.T) {
	s := NewSemaphore(2)
	if err := s.Acquire(context.Background(), 3); err == nil {
		t.Fatal("Acquire beyond total capacity should error, not deadlock")
	}
}

func TestSemaphoreCancelWhileWaiting(t *testing.T) {
	s := NewSemaphore(1)
	if err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.Acquire(ctx, 1) }()
	// Let the goroutine reach the wait queue, then cancel it.
	for {
		s.mu.Lock()
		queued := s.waiters.Len() == 1
		s.mu.Unlock()
		if queued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled Acquire returned %v, want context.Canceled", err)
	}
	// The cancelled waiter must not have consumed capacity.
	s.Release(1)
	if !s.TryAcquire(1) {
		t.Fatal("capacity leaked by cancelled waiter")
	}
	s.Release(1)
}

func TestSemaphoreCancelUnblocksSmallerWaiters(t *testing.T) {
	s := NewSemaphore(2)
	if err := s.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	// Queue a heavy waiter, then a light one behind it.
	heavyCtx, cancelHeavy := context.WithCancel(context.Background())
	heavyErr := make(chan error, 1)
	go func() { heavyErr <- s.Acquire(heavyCtx, 2) }()
	waitQueued(t, s, 1)
	lightErr := make(chan error, 1)
	go func() { lightErr <- s.Acquire(context.Background(), 1) }()
	waitQueued(t, s, 2)

	// FIFO: one free unit must not let the light waiter overtake.
	s.Release(1)
	select {
	case err := <-lightErr:
		t.Fatalf("light waiter overtook queued heavy waiter (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	// Cancelling the blocked head must hand the free unit onward.
	cancelHeavy()
	if err := <-heavyErr; err != context.Canceled {
		t.Fatalf("heavy waiter returned %v, want context.Canceled", err)
	}
	if err := <-lightErr; err != nil {
		t.Fatalf("light waiter returned %v after head cancelled", err)
	}
	s.Release(2)
}

func TestSemaphoreConcurrentStress(t *testing.T) {
	s := NewSemaphore(3)
	var (
		mu      sync.Mutex
		cur, mx int
	)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Acquire(context.Background(), 1); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			cur++
			if cur > mx {
				mx = cur
			}
			mu.Unlock()
			time.Sleep(time.Microsecond)
			mu.Lock()
			cur--
			mu.Unlock()
			s.Release(1)
		}()
	}
	wg.Wait()
	if mx > 3 {
		t.Fatalf("max concurrency %d exceeded capacity 3", mx)
	}
	if got := s.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after all releases, want 0", got)
	}
}

func waitQueued(t *testing.T, s *Semaphore, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		queued := s.waiters.Len()
		s.mu.Unlock()
		if queued == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d queued waiters (have %d)", n, queued)
		}
		time.Sleep(time.Millisecond)
	}
}
