package parallel

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// Semaphore is a weighted counting semaphore with context-aware blocking
// acquisition, in the style of x/sync/semaphore but dependency-free.
// Grants are FIFO: a waiter never overtakes an earlier one, so a heavy
// acquisition cannot be starved by a stream of light ones. The serving
// layer's concurrency-limit middleware uses TryAcquire to shed load
// instead of queueing unboundedly.
type Semaphore struct {
	size    int64
	mu      sync.Mutex
	cur     int64
	waiters list.List
}

type semWaiter struct {
	n     int64
	ready chan struct{}
}

// NewSemaphore returns a semaphore with the given capacity. It panics if
// size is not positive.
func NewSemaphore(size int64) *Semaphore {
	if size <= 0 {
		panic(fmt.Sprintf("parallel: semaphore capacity %d, want > 0", size))
	}
	return &Semaphore{size: size}
}

// Acquire obtains n units of capacity, blocking until they are available
// or ctx is done, in which case it returns ctx.Err() and leaves the
// semaphore unchanged. Requesting more than the total capacity is an
// immediate error rather than a guaranteed deadlock. A nil ctx never
// cancels.
func (s *Semaphore) Acquire(ctx context.Context, n int64) error {
	if n < 0 {
		panic(fmt.Sprintf("parallel: semaphore acquire %d, want >= 0", n))
	}
	if n > s.size {
		return fmt.Errorf("parallel: semaphore acquire %d exceeds capacity %d", n, s.size)
	}
	var done <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
		done = ctx.Done()
	}
	s.mu.Lock()
	// Fast path: capacity available and nobody queued ahead.
	if s.cur+n <= s.size && s.waiters.Len() == 0 {
		s.cur += n
		s.mu.Unlock()
		return nil
	}
	w := semWaiter{n: n, ready: make(chan struct{})}
	elem := s.waiters.PushBack(w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-done:
		s.mu.Lock()
		select {
		case <-w.ready:
			// The grant raced the cancellation and won: the units are
			// ours, so the acquisition succeeds.
			s.mu.Unlock()
			return nil
		default:
		}
		front := s.waiters.Front() == elem
		s.waiters.Remove(elem)
		if front {
			// Removing the blocked head may unblock smaller waiters
			// queued behind it.
			s.grantLocked()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// TryAcquire obtains n units of capacity without blocking, reporting
// whether it succeeded. It fails when waiters are queued even if raw
// capacity is available, preserving FIFO order.
func (s *Semaphore) TryAcquire(n int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur+n <= s.size && s.waiters.Len() == 0 {
		s.cur += n
		return true
	}
	return false
}

// Release returns n units of capacity and wakes queued waiters in FIFO
// order. Releasing more than is held panics: it indicates a bookkeeping
// bug that would silently raise the capacity.
func (s *Semaphore) Release(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cur -= n
	if s.cur < 0 {
		panic("parallel: semaphore released more capacity than held")
	}
	s.grantLocked()
}

// InFlight returns the capacity currently held.
func (s *Semaphore) InFlight() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// grantLocked hands capacity to queued waiters front-to-back, stopping
// at the first one that does not fit so later (smaller) waiters cannot
// starve it.
func (s *Semaphore) grantLocked() {
	for {
		front := s.waiters.Front()
		if front == nil {
			return
		}
		w := front.Value.(semWaiter)
		if s.cur+w.n > s.size {
			return
		}
		s.cur += w.n
		s.waiters.Remove(front)
		close(w.ready)
	}
}
