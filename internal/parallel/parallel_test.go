package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(4) != 4 {
		t.Error("explicit worker count not respected")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("defaulted worker count must be >= 1")
	}
}

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 1000
		hits := make([]int32, n)
		ForEach(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
	// n <= 0 is a no-op.
	ForEach(4, 0, func(int) { t.Fatal("called for n=0") })
	ForEach(4, -1, func(int) { t.Fatal("called for n<0") })
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 8} {
		out := Map(workers, 100, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := ForEachErr(workers, 50, func(i int) error {
			if i == 41 || i == 7 || i == 33 {
				return fmt.Errorf("failed at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "failed at 7" {
			t.Fatalf("workers=%d: err = %v, want lowest-index failure", workers, err)
		}
		if err := ForEachErr(workers, 50, func(int) error { return nil }); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
	}
}

func TestShards(t *testing.T) {
	shards := Shards(10, 3)
	want := []Shard{{0, 0, 3}, {1, 3, 6}, {2, 6, 9}, {3, 9, 10}}
	if len(shards) != len(want) {
		t.Fatalf("shards = %v", shards)
	}
	for i, s := range shards {
		if s != want[i] {
			t.Errorf("shard %d = %v, want %v", i, s, want[i])
		}
		if s.Len() != s.Hi-s.Lo {
			t.Errorf("shard %d Len = %d", i, s.Len())
		}
	}
	if Shards(0, 3) != nil {
		t.Error("empty range should produce no shards")
	}
	// size <= 0 means one shard.
	if got := Shards(5, 0); len(got) != 1 || got[0].Hi != 5 {
		t.Errorf("Shards(5, 0) = %v", got)
	}
}

func TestMapShardsInOrder(t *testing.T) {
	shards := Shards(100, 7)
	sums := MapShards(8, shards, func(s Shard) int {
		total := 0
		for i := s.Lo; i < s.Hi; i++ {
			total += i
		}
		return total
	})
	grand := 0
	for _, s := range sums {
		grand += s
	}
	if grand != 99*100/2 {
		t.Errorf("sharded sum = %d", grand)
	}
}

func TestGroupReturnsEarliestSubmittedError(t *testing.T) {
	var g Group
	g.Go(func() error { return nil })
	g.Go(func() error { return errors.New("second") })
	g.Go(func() error { return errors.New("third") })
	if err := g.Wait(); err == nil || err.Error() != "second" {
		t.Errorf("err = %v, want earliest submitted failure", err)
	}
	var ok Group
	ok.Go(func() error { return nil })
	if err := ok.Wait(); err != nil {
		t.Errorf("unexpected error %v", err)
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, 0) != DeriveSeed(1, 0) {
		t.Error("DeriveSeed must be deterministic")
	}
	seen := map[int64]bool{}
	for s := int64(-4); s < 4; s++ {
		for stream := int64(0); stream < 16; stream++ {
			v := DeriveSeed(s, stream)
			if seen[v] {
				t.Fatalf("collision at seed=%d stream=%d", s, stream)
			}
			seen[v] = true
		}
	}
}
