package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if Workers(4) != 4 {
		t.Error("explicit worker count not respected")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("defaulted worker count must be >= 1")
	}
}

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 1000
		hits := make([]int32, n)
		ForEach(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
	// n <= 0 is a no-op.
	ForEach(4, 0, func(int) { t.Fatal("called for n=0") })
	ForEach(4, -1, func(int) { t.Fatal("called for n<0") })
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 8} {
		out := Map(workers, 100, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := ForEachErr(workers, 50, func(i int) error {
			if i == 41 || i == 7 || i == 33 {
				return fmt.Errorf("failed at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "failed at 7" {
			t.Fatalf("workers=%d: err = %v, want lowest-index failure", workers, err)
		}
		if err := ForEachErr(workers, 50, func(int) error { return nil }); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
	}
}

func TestShards(t *testing.T) {
	shards := Shards(10, 3)
	want := []Shard{{0, 0, 3}, {1, 3, 6}, {2, 6, 9}, {3, 9, 10}}
	if len(shards) != len(want) {
		t.Fatalf("shards = %v", shards)
	}
	for i, s := range shards {
		if s != want[i] {
			t.Errorf("shard %d = %v, want %v", i, s, want[i])
		}
		if s.Len() != s.Hi-s.Lo {
			t.Errorf("shard %d Len = %d", i, s.Len())
		}
	}
	if Shards(0, 3) != nil {
		t.Error("empty range should produce no shards")
	}
	// size <= 0 means one shard.
	if got := Shards(5, 0); len(got) != 1 || got[0].Hi != 5 {
		t.Errorf("Shards(5, 0) = %v", got)
	}
}

func TestMapShardsInOrder(t *testing.T) {
	shards := Shards(100, 7)
	sums := MapShards(8, shards, func(s Shard) int {
		total := 0
		for i := s.Lo; i < s.Hi; i++ {
			total += i
		}
		return total
	})
	grand := 0
	for _, s := range sums {
		grand += s
	}
	if grand != 99*100/2 {
		t.Errorf("sharded sum = %d", grand)
	}
}

func TestGroupReturnsEarliestSubmittedError(t *testing.T) {
	var g Group
	g.Go(func() error { return nil })
	g.Go(func() error { return errors.New("second") })
	g.Go(func() error { return errors.New("third") })
	if err := g.Wait(); err == nil || err.Error() != "second" {
		t.Errorf("err = %v, want earliest submitted failure", err)
	}
	var ok Group
	ok.Go(func() error { return nil })
	if err := ok.Wait(); err != nil {
		t.Errorf("unexpected error %v", err)
	}
}

func TestForEachErrCapturesPanicAsError(t *testing.T) {
	// The same lowest panicking index must be reported at any worker
	// count, as a *PanicError carrying the recovered value and a stack.
	for _, workers := range []int{1, 8} {
		var ran atomic.Int32
		err := ForEachErr(workers, 40, func(i int) error {
			ran.Add(1)
			if i == 31 || i == 12 {
				panic(fmt.Sprintf("boom at %d", i))
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 12 || pe.Value != "boom at 12" {
			t.Errorf("workers=%d: panic = index %d value %v, want lowest index 12", workers, pe.Index, pe.Value)
		}
		if len(pe.Stack) == 0 || !strings.Contains(err.Error(), "boom at 12") {
			t.Errorf("workers=%d: PanicError missing stack or value: %v", workers, err)
		}
		if got := ran.Load(); got != 40 {
			t.Errorf("workers=%d: only %d/40 indices ran after panic", workers, got)
		}
	}
}

func TestForEachErrPanicVsErrorLowestIndexWins(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := ForEachErr(workers, 20, func(i int) error {
			if i == 9 {
				panic("later panic")
			}
			if i == 4 {
				return errors.New("earlier error")
			}
			return nil
		})
		if err == nil || err.Error() != "earlier error" {
			t.Errorf("workers=%d: err = %v, want the lower-index plain error", workers, err)
		}
	}
}

func TestForEachRepanicsOnCaller(t *testing.T) {
	for _, workers := range []int{1, 8} {
		func() {
			defer func() {
				v := recover()
				pe, ok := v.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered %v, want *PanicError", workers, v)
				}
				if pe.Index != 3 {
					t.Errorf("workers=%d: panic index = %d, want lowest 3", workers, pe.Index)
				}
			}()
			ForEach(workers, 10, func(i int) {
				if i == 3 || i == 7 {
					panic(i)
				}
			})
			t.Fatalf("workers=%d: ForEach did not re-panic", workers)
		}()
	}
}

func TestForEachErrCtxCancellation(t *testing.T) {
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		start := time.Now()
		err := ForEachErrCtx(ctx, workers, 1_000_000, func(i int) error {
			if ran.Add(1) == 10 {
				cancel()
			}
			time.Sleep(10 * time.Microsecond)
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() > 10_000 {
			t.Errorf("workers=%d: %d indices ran after cancellation", workers, ran.Load())
		}
		if time.Since(start) > 10*time.Second {
			t.Errorf("workers=%d: cancellation not prompt", workers)
		}
	}
}

func TestForEachErrCtxNilAndDone(t *testing.T) {
	if err := ForEachErrCtx(nil, 4, 10, func(int) error { return nil }); err != nil {
		t.Errorf("nil ctx: err = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEachErrCtx(ctx, 4, 10, func(int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("done ctx: err = %v", err)
	}
	if ran.Load() != 0 {
		t.Errorf("done ctx: %d indices ran", ran.Load())
	}
}

func TestGroupCapturesPanic(t *testing.T) {
	var g Group
	g.Go(func() error { return nil })
	g.Go(func() error { panic("task exploded") })
	err := g.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "task exploded" || pe.Index != -1 {
		t.Errorf("panic = %v at index %d", pe.Value, pe.Index)
	}
}

func TestGroupWithContextSkipsAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := GroupWithContext(ctx)
	g.Go(func() error { return nil })
	cancel()
	ran := false
	g.Go(func() error { ran = true; return nil })
	if err := g.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("task started after cancellation")
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, 0) != DeriveSeed(1, 0) {
		t.Error("DeriveSeed must be deterministic")
	}
	seen := map[int64]bool{}
	for s := int64(-4); s < 4; s++ {
		for stream := int64(0); stream < 16; stream++ {
			v := DeriveSeed(s, stream)
			if seen[v] {
				t.Fatalf("collision at seed=%d stream=%d", s, stream)
			}
			seen[v] = true
		}
	}
}
