package monitor

import (
	"math"
	"reflect"
	"testing"

	"disksig/internal/quality"
	"disksig/internal/regression"
	"disksig/internal/smart"
)

func TestHoursToFailureBoundaries(t *testing.T) {
	quad := GroupModel{Form: regression.FormQuadratic, WindowD: 24}
	cubic := GroupModel{Form: regression.FormCubic, WindowD: 24}
	cases := []struct {
		name string
		gm   GroupModel
		deg  float64
		want float64 // math.Inf(1) for "not in window"
	}{
		{"healthy", quad, 1, math.Inf(1)},
		{"window edge", quad, 0, math.Inf(1)},
		{"just above edge", quad, math.SmallestNonzeroFloat64, math.Inf(1)},
		// Just inside the window: (s+1)^(1/2) ~= 1, so ~= d. The t²/d²-1
		// inversion must not divide by the vanishing degradation.
		{"just inside window", quad, -1e-300, 24},
		{"just inside window cubic", cubic, -1e-300, 24},
		{"mid window", quad, -0.75, 12},
		{"failure event", quad, -1, 0},
		{"beyond fitted range", quad, -1.5, 0},
		{"deeply out of range", cubic, math.Inf(-1), 0},
		{"nan degradation", quad, math.NaN(), math.Inf(1)},
		{"unknown form", GroupModel{Form: regression.SignatureForm(99), WindowD: 24}, -0.5, math.Inf(1)},
		{"zero window", GroupModel{Form: regression.FormQuadratic}, -0.5, math.Inf(1)},
		{"negative window", GroupModel{Form: regression.FormQuadratic, WindowD: -3}, -0.5, math.Inf(1)},
		{"nan window", GroupModel{Form: regression.FormQuadratic, WindowD: math.NaN()}, -0.5, math.Inf(1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := hoursToFailure(tc.gm, tc.deg)
			if math.IsNaN(got) {
				t.Fatalf("hoursToFailure(%v) = NaN", tc.deg)
			}
			if got < 0 {
				t.Fatalf("hoursToFailure(%v) = %v, negative estimate", tc.deg, got)
			}
			if math.IsInf(tc.want, 1) {
				if !math.IsInf(got, 1) {
					t.Fatalf("hoursToFailure(%v) = %v, want +Inf", tc.deg, got)
				}
				return
			}
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("hoursToFailure(%v) = %v, want %v", tc.deg, got, tc.want)
			}
		})
	}
}

// nonFiniteRecord poisons one attribute so the record is quarantined.
func nonFiniteRecord(hour int) smart.Record {
	var v smart.Values
	v[smart.RRER] = math.NaN()
	return smart.Record{Hour: hour, Values: v}
}

func TestForgetReleasesQualityLedger(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Drive 1: one clean record, one duplicate, one stale, one non-finite.
	m.Ingest(1, record(5, 0.9))
	m.Ingest(1, record(5, 0.8))
	m.Ingest(1, record(3, 0.7))
	m.Ingest(1, nonFiniteRecord(6))
	// Drive 2 keeps its own dirt so Forget(1) must subtract only 1's share.
	m.Ingest(2, record(0, 0.9))
	m.Ingest(2, nonFiniteRecord(1))

	if got := m.Quality().RowsRead; got != 6 {
		t.Fatalf("RowsRead = %d, want 6", got)
	}
	if !m.Forget(1) {
		t.Fatal("Forget(1) = false")
	}
	q := m.Quality()
	if q.RowsRead != 2 || q.RowsQuarantined != 1 {
		t.Fatalf("after Forget: %d read, %d quarantined, want 2/1", q.RowsRead, q.RowsQuarantined)
	}
	if q.Count(quality.DuplicateTimestamp) != 0 || q.Count(quality.OutOfOrderTimestamp) != 0 {
		t.Fatalf("forgotten drive's duplicate/out-of-order counts leaked: %v", q.Summary())
	}
	if q.Count(quality.NonFinite) != 1 {
		t.Fatalf("NonFinite = %d after Forget, want drive 2's single count", q.Count(quality.NonFinite))
	}
	if got := q.ByField[smart.RRER.String()]; got != 1 {
		t.Fatalf("ByField[%s] = %d after Forget, want 1", smart.RRER, got)
	}
	// Forgetting drive 2 empties the ledger completely (ByField keys
	// must be deleted, not left at zero).
	m.Forget(2)
	q = m.Quality()
	if q.RowsRead != 0 || q.RowsQuarantined != 0 || len(q.ByField) != 0 {
		t.Fatalf("ledger not empty after forgetting all drives: %v", q.Summary())
	}
	for k := 0; k < 16; k++ {
		if q.Count(quality.Kind(k)) != 0 {
			t.Fatalf("kind %v count leaked after forgetting all drives", quality.Kind(k))
		}
	}
}

func TestForgetQuarantineOnlyDrive(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(7, nonFiniteRecord(0))
	if m.Tracked() != 0 {
		t.Fatalf("quarantine-only drive counted as tracked")
	}
	if m.Quality().RowsQuarantined != 1 {
		t.Fatal("quarantine not accounted")
	}
	// The drive was never tracked, so Forget reports false — but it must
	// still release the quarantine accounting.
	if m.Forget(7) {
		t.Fatal("Forget of quarantine-only drive returned true")
	}
	if q := m.Quality(); q.RowsRead != 0 || q.RowsQuarantined != 0 {
		t.Fatalf("quarantine-only ledger leaked: %v", q.Summary())
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	src, err := New(testModels(), testNormalizer(), Config{Smoothing: 3})
	if err != nil {
		t.Fatal(err)
	}
	src.Ingest(1, record(0, 0.9))
	src.Ingest(1, record(1, 0.3))
	src.Ingest(1, record(2, -0.2))
	src.Ingest(1, record(2, -0.3)) // duplicate hour
	src.Ingest(2, record(10, -0.9))
	src.Ingest(3, nonFiniteRecord(0)) // quarantine-only drive

	exported := src.ExportDrives()
	if len(exported) != 3 {
		t.Fatalf("exported %d drives, want 3", len(exported))
	}
	if exported[3].Tracked {
		t.Fatal("quarantine-only drive exported as tracked")
	}

	dst, err := New(testModels(), testNormalizer(), Config{Smoothing: 3})
	if err != nil {
		t.Fatal(err)
	}
	for id, st := range exported {
		if err := dst.ImportDrive(id, st); err != nil {
			t.Fatalf("ImportDrive(%d): %v", id, err)
		}
	}
	if dst.Tracked() != src.Tracked() {
		t.Fatalf("Tracked = %d after import, want %d", dst.Tracked(), src.Tracked())
	}
	if !reflect.DeepEqual(dst.ExportDrives(), exported) {
		t.Fatal("re-export of imported state differs from the original export")
	}
	for _, id := range []int{1, 2} {
		a, aok := src.Status(id)
		b, bok := dst.Status(id)
		if !aok || !bok || !reflect.DeepEqual(a, b) {
			t.Fatalf("Status(%d) differs after import: %+v vs %+v", id, a, b)
		}
	}
	if !dst.Quality().CountersEqual(src.Quality()) {
		t.Fatalf("quality counters differ after import:\n%v\nvs\n%v", dst.Quality(), src.Quality())
	}
	// Behavior parity after restore: the same next record yields the
	// same alert decision on both monitors.
	a1 := src.Ingest(1, record(3, -0.8))
	a2 := dst.Ingest(1, record(3, -0.8))
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("post-import alerts diverge: %v vs %v", a1, a2)
	}
}

func TestImportDriveRejectsCorruptState(t *testing.T) {
	fresh := func() *Monitor {
		m, err := New(testModels(), testNormalizer(), Config{Smoothing: 3})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	okTracked := DriveState{
		Tracked: true, LastHour: 4, Seen: true, Severity: Watch,
		Recent: [][]float64{{0.4}},
		Ledger: DriveLedger{RowsRead: 1},
	}
	m := fresh()
	if err := m.ImportDrive(1, okTracked); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
	if err := m.ImportDrive(1, okTracked); err == nil {
		t.Fatal("duplicate import accepted")
	}
	cases := []struct {
		name   string
		mutate func(*DriveState)
	}{
		{"negative rows", func(s *DriveState) { s.Ledger.RowsRead = -1 }},
		{"quarantined over read", func(s *DriveState) { s.Ledger.RowsQuarantined = 2 }},
		{"invalid kind", func(s *DriveState) { s.Ledger.ByKind = map[quality.Kind]int{quality.Kind(99): 1} }},
		{"negative kind count", func(s *DriveState) { s.Ledger.ByKind = map[quality.Kind]int{quality.NonFinite: -1} }},
		{"empty field key", func(s *DriveState) { s.Ledger.ByField = map[string]int{"": 1} }},
		{"bad severity", func(s *DriveState) { s.Severity = Severity(9) }},
		{"wrong window count", func(s *DriveState) { s.Recent = [][]float64{{0.4}, {0.4}} }},
		{"window over smoothing cap", func(s *DriveState) { s.Recent = [][]float64{{1, 2, 3, 4}} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := okTracked
			st.Recent = [][]float64{append([]float64(nil), okTracked.Recent[0]...)}
			tc.mutate(&st)
			if err := fresh().ImportDrive(2, st); err == nil {
				t.Fatal("corrupt state accepted")
			}
		})
	}
}
