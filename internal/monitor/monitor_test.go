package monitor

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"disksig/internal/core"
	"disksig/internal/quality"
	"disksig/internal/regression"
	"disksig/internal/smart"
)

// rampPredictor scores records by their RRER value directly, making test
// trajectories easy to construct.
type rampPredictor struct{}

func (rampPredictor) Predict(x []float64) float64 { return x[smart.RRER] }

// testNormalizer returns an identity-ish normalizer over [-1, 1].
func testNormalizer() *smart.Normalizer {
	n := smart.NewNormalizer()
	var lo, hi smart.Values
	for a := range lo {
		lo[a] = -1
		hi[a] = 1
	}
	n.Observe(lo)
	n.Observe(hi)
	return n
}

func testModels() []GroupModel {
	return []GroupModel{{
		Group:     1,
		Type:      core.Logical,
		Form:      regression.FormQuadratic,
		WindowD:   12,
		Predictor: rampPredictor{},
	}}
}

func record(hour int, score float64) smart.Record {
	var v smart.Values
	v[smart.RRER] = score
	return smart.Record{Hour: hour, Values: v}
}

func TestNewValidation(t *testing.T) {
	norm := testNormalizer()
	if _, err := New(nil, norm, Config{}); err == nil {
		t.Error("expected error for no models")
	}
	if _, err := New([]GroupModel{{Group: 1, WindowD: 12}}, norm, Config{}); err == nil {
		t.Error("expected error for missing predictor")
	}
	if _, err := New([]GroupModel{{Group: 1, Predictor: rampPredictor{}}}, norm, Config{}); err == nil {
		t.Error("expected error for missing window")
	}
	if _, err := New(testModels(), smart.NewNormalizer(), Config{}); err == nil {
		t.Error("expected error for unfitted normalizer")
	}
	if _, err := New(testModels(), nil, Config{}); err == nil {
		t.Error("expected error for nil normalizer")
	}
}

func TestEscalationLadder(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Healthy: no alert.
	if a := m.Ingest(1, record(0, 0.9)); a != nil {
		t.Errorf("healthy record alerted: %v", a)
	}
	// Watch.
	a := m.Ingest(1, record(1, 0.3))
	if a == nil || a.Severity != Watch {
		t.Fatalf("watch alert = %v", a)
	}
	if math.IsInf(a.HoursToFailure, 1) == false {
		t.Errorf("watch-stage drive should have no failure ETA, got %v", a.HoursToFailure)
	}
	// Warning: inside the window.
	a = m.Ingest(1, record(2, -0.2))
	if a == nil || a.Severity != Warning {
		t.Fatalf("warning alert = %v", a)
	}
	// ETA from s = -0.2, quadratic d=12: t = 12*sqrt(0.8).
	want := 12 * math.Sqrt(0.8)
	if math.Abs(a.HoursToFailure-want) > 1e-9 {
		t.Errorf("ETA = %v, want %v", a.HoursToFailure, want)
	}
	// Critical.
	a = m.Ingest(1, record(3, -0.8))
	if a == nil || a.Severity != Critical {
		t.Fatalf("critical alert = %v", a)
	}
	if a.String() == "" || !strings.Contains(a.String(), "critical") {
		t.Errorf("alert string: %q", a.String())
	}
	// Staying critical: no repeated alert.
	if a := m.Ingest(1, record(4, -0.9)); a != nil {
		t.Errorf("repeated critical alerted: %v", a)
	}
	st, ok := m.Status(1)
	if !ok || st.Severity != Critical || st.DriveID != 1 || st.LastHour != 4 {
		t.Errorf("status = %+v", st)
	}
	if m.Tracked() != 1 {
		t.Errorf("tracked = %d", m.Tracked())
	}
}

func TestDeescalationSilent(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(5, record(0, -0.8)) // straight to critical
	if a := m.Ingest(5, record(1, 0.9)); a != nil {
		t.Errorf("de-escalation alerted: %v", a)
	}
	st, _ := m.Status(5)
	if st.Severity != Healthy {
		t.Errorf("severity after recovery = %v", st.Severity)
	}
	// Re-escalation alerts again.
	if a := m.Ingest(5, record(2, -0.8)); a == nil {
		t.Error("re-escalation should alert")
	}
}

func TestSmoothingSuppressesSpikes(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 3})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(9, record(0, 0.9))
	m.Ingest(9, record(1, 0.9))
	// A single bad sample: the median of {0.9, 0.9, -0.9} is 0.9.
	if a := m.Ingest(9, record(2, -0.9)); a != nil {
		t.Errorf("single spike alerted: %v", a)
	}
	// Two consecutive bad samples flip the median.
	if a := m.Ingest(9, record(3, -0.9)); a == nil {
		t.Error("sustained degradation should alert")
	}
}

func TestStatusUnknownDrive(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Status(42); ok {
		t.Error("unknown drive should not have status")
	}
}

func TestHoursToFailureInversion(t *testing.T) {
	gm := GroupModel{Form: regression.FormCubic, WindowD: 24}
	// s = -1 => 0 hours; s = 0 => not in window; s = (t/d)^3 - 1 inverts.
	if got := hoursToFailure(gm, -1); got != 0 {
		t.Errorf("t(-1) = %v", got)
	}
	if got := hoursToFailure(gm, 0.2); !math.IsInf(got, 1) {
		t.Errorf("t(0.2) = %v, want +Inf", got)
	}
	s := regression.FormCubic.Eval(10, 24)
	if got := hoursToFailure(gm, s); math.Abs(got-10) > 1e-9 {
		t.Errorf("inverted t = %v, want 10", got)
	}
	// Deep scores clamp to the failure event.
	if got := hoursToFailure(gm, -1.5); got != 0 {
		t.Errorf("t(-1.5) = %v", got)
	}
}

func TestSeverityString(t *testing.T) {
	for _, s := range []Severity{Healthy, Watch, Warning, Critical} {
		if s.String() == "" {
			t.Error("empty severity name")
		}
	}
	if Severity(9).String() == "" {
		t.Error("unknown severity should render")
	}
}

func TestFromCharacterizationRejectsSkipPrediction(t *testing.T) {
	ch := &core.Characterization{
		Results: []*core.GroupResult{{Group: &core.Group{Number: 1}}},
	}
	if _, err := FromCharacterization(ch, Config{}); err == nil {
		t.Error("expected error for missing prediction")
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(1, record(0, 0.9))  // healthy
	m.Ingest(2, record(0, -0.8)) // critical
	m.Ingest(3, record(0, -0.1)) // warning
	snap := m.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %d entries", len(snap))
	}
	// Most at-risk first.
	if snap[0].DriveID != 2 || snap[2].DriveID != 1 {
		t.Errorf("snapshot order = %v %v %v", snap[0].DriveID, snap[1].DriveID, snap[2].DriveID)
	}
	var buf strings.Builder
	if err := m.WriteSnapshotJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]interface{}
	if err := json.Unmarshal([]byte(buf.String()), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed) != 3 {
		t.Fatalf("parsed = %d entries", len(parsed))
	}
	if parsed[0]["severity"] != "critical" {
		t.Errorf("first entry severity = %v", parsed[0]["severity"])
	}
	// Healthy drive has null hours_to_failure.
	if parsed[2]["hours_to_failure"] != nil {
		t.Errorf("healthy drive ETA = %v, want null", parsed[2]["hours_to_failure"])
	}
	// Critical drive has a finite ETA.
	if parsed[0]["hours_to_failure"] == nil {
		t.Error("critical drive should have a finite ETA")
	}
}

func TestIngestQuarantinesNonFinite(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(7, record(0, 0.9))
	// A NaN record must be quarantined, not scored: the drive's state and
	// smoothing window stay untouched.
	if a := m.Ingest(7, record(1, math.NaN())); a != nil {
		t.Errorf("NaN record alerted: %v", a)
	}
	st, _ := m.Status(7)
	if st.LastHour != 0 {
		t.Errorf("NaN record advanced LastHour to %d", st.LastHour)
	}
	q := m.Quality()
	if q.Count(quality.NonFinite) == 0 {
		t.Error("NaN record not counted as non-finite")
	}
	if q.RowsRead != 2 || q.RowsQuarantined != 1 {
		t.Errorf("quality accounting = %d read / %d quarantined", q.RowsRead, q.RowsQuarantined)
	}
	// An Inf record likewise.
	if a := m.Ingest(7, record(1, math.Inf(-1))); a != nil {
		t.Errorf("Inf record alerted: %v", a)
	}
	if q.RowsQuarantined != 2 {
		t.Errorf("quarantined = %d after Inf record", q.RowsQuarantined)
	}
	// The drive still degrades normally afterwards.
	if a := m.Ingest(7, record(1, -0.8)); a == nil || a.Severity != Critical {
		t.Fatalf("post-quarantine degradation alert = %v", a)
	}
}

func TestIngestOutOfOrderDropped(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(8, record(5, 0.9))
	// A stale record (earlier hour) is dropped: severity stays healthy
	// even though the stale score is critical.
	if a := m.Ingest(8, record(3, -0.9)); a != nil {
		t.Errorf("stale record alerted: %v", a)
	}
	st, _ := m.Status(8)
	if st.LastHour != 5 || st.Severity != Healthy {
		t.Errorf("state after stale record = hour %d severity %v", st.LastHour, st.Severity)
	}
	if m.Quality().Count(quality.OutOfOrderTimestamp) != 1 {
		t.Error("stale record not counted as out-of-order")
	}
}

func TestIngestDuplicateHourKeepsLatest(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 3})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(9, record(0, 0.9))
	m.Ingest(9, record(1, 0.9))
	m.Ingest(9, record(2, -0.9))
	// Repeating hour 2 with a healthy score replaces the bad sample
	// instead of widening the window: the median stays healthy when the
	// next bad sample arrives (it would flip with {0.9, -0.9, -0.9}).
	m.Ingest(9, record(2, 0.9))
	if a := m.Ingest(9, record(3, -0.9)); a != nil {
		t.Errorf("alert after superseded spike: %v", a)
	}
	if m.Quality().Count(quality.DuplicateTimestamp) != 1 {
		t.Error("duplicate hour not counted")
	}
	// The duplicate counts as quarantined (the superseded sample).
	if q := m.Quality(); q.RowsRead != 5 || q.RowsQuarantined != 1 {
		t.Errorf("quality accounting = %d read / %d quarantined", q.RowsRead, q.RowsQuarantined)
	}
}

func TestForget(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(1, record(0, -0.9))
	if m.Tracked() != 1 {
		t.Fatalf("Tracked = %d, want 1", m.Tracked())
	}
	if !m.Forget(1) {
		t.Fatal("Forget(1) = false for a tracked drive")
	}
	if m.Forget(1) || m.Forget(2) {
		t.Fatal("Forget of an untracked drive returned true")
	}
	if m.Tracked() != 0 {
		t.Fatalf("Tracked = %d after Forget, want 0", m.Tracked())
	}
	if _, ok := m.Status(1); ok {
		t.Fatal("Status succeeded for a forgotten drive")
	}
	// A forgotten drive that reports again starts fresh: its first
	// record may be any hour, and escalation restarts from Healthy.
	if a := m.Ingest(1, record(0, 0.9)); a != nil {
		t.Errorf("fresh record after Forget alerted: %v", a)
	}
	if q := m.Quality(); q.Count(quality.OutOfOrderTimestamp) != 0 {
		t.Error("record after Forget counted as out-of-order")
	}
}
