package monitor

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"disksig/internal/core"
	"disksig/internal/regression"
	"disksig/internal/smart"
)

// rampPredictor scores records by their RRER value directly, making test
// trajectories easy to construct.
type rampPredictor struct{}

func (rampPredictor) Predict(x []float64) float64 { return x[smart.RRER] }

// testNormalizer returns an identity-ish normalizer over [-1, 1].
func testNormalizer() *smart.Normalizer {
	n := smart.NewNormalizer()
	var lo, hi smart.Values
	for a := range lo {
		lo[a] = -1
		hi[a] = 1
	}
	n.Observe(lo)
	n.Observe(hi)
	return n
}

func testModels() []GroupModel {
	return []GroupModel{{
		Group:     1,
		Type:      core.Logical,
		Form:      regression.FormQuadratic,
		WindowD:   12,
		Predictor: rampPredictor{},
	}}
}

func record(hour int, score float64) smart.Record {
	var v smart.Values
	v[smart.RRER] = score
	return smart.Record{Hour: hour, Values: v}
}

func TestNewValidation(t *testing.T) {
	norm := testNormalizer()
	if _, err := New(nil, norm, Config{}); err == nil {
		t.Error("expected error for no models")
	}
	if _, err := New([]GroupModel{{Group: 1, WindowD: 12}}, norm, Config{}); err == nil {
		t.Error("expected error for missing predictor")
	}
	if _, err := New([]GroupModel{{Group: 1, Predictor: rampPredictor{}}}, norm, Config{}); err == nil {
		t.Error("expected error for missing window")
	}
	if _, err := New(testModels(), smart.NewNormalizer(), Config{}); err == nil {
		t.Error("expected error for unfitted normalizer")
	}
	if _, err := New(testModels(), nil, Config{}); err == nil {
		t.Error("expected error for nil normalizer")
	}
}

func TestEscalationLadder(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Healthy: no alert.
	if a := m.Ingest(1, record(0, 0.9)); a != nil {
		t.Errorf("healthy record alerted: %v", a)
	}
	// Watch.
	a := m.Ingest(1, record(1, 0.3))
	if a == nil || a.Severity != Watch {
		t.Fatalf("watch alert = %v", a)
	}
	if math.IsInf(a.HoursToFailure, 1) == false {
		t.Errorf("watch-stage drive should have no failure ETA, got %v", a.HoursToFailure)
	}
	// Warning: inside the window.
	a = m.Ingest(1, record(2, -0.2))
	if a == nil || a.Severity != Warning {
		t.Fatalf("warning alert = %v", a)
	}
	// ETA from s = -0.2, quadratic d=12: t = 12*sqrt(0.8).
	want := 12 * math.Sqrt(0.8)
	if math.Abs(a.HoursToFailure-want) > 1e-9 {
		t.Errorf("ETA = %v, want %v", a.HoursToFailure, want)
	}
	// Critical.
	a = m.Ingest(1, record(3, -0.8))
	if a == nil || a.Severity != Critical {
		t.Fatalf("critical alert = %v", a)
	}
	if a.String() == "" || !strings.Contains(a.String(), "critical") {
		t.Errorf("alert string: %q", a.String())
	}
	// Staying critical: no repeated alert.
	if a := m.Ingest(1, record(4, -0.9)); a != nil {
		t.Errorf("repeated critical alerted: %v", a)
	}
	st, ok := m.Status(1)
	if !ok || st.Severity != Critical || st.DriveID != 1 || st.LastHour != 4 {
		t.Errorf("status = %+v", st)
	}
	if m.Tracked() != 1 {
		t.Errorf("tracked = %d", m.Tracked())
	}
}

func TestDeescalationSilent(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(5, record(0, -0.8)) // straight to critical
	if a := m.Ingest(5, record(1, 0.9)); a != nil {
		t.Errorf("de-escalation alerted: %v", a)
	}
	st, _ := m.Status(5)
	if st.Severity != Healthy {
		t.Errorf("severity after recovery = %v", st.Severity)
	}
	// Re-escalation alerts again.
	if a := m.Ingest(5, record(2, -0.8)); a == nil {
		t.Error("re-escalation should alert")
	}
}

func TestSmoothingSuppressesSpikes(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 3})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(9, record(0, 0.9))
	m.Ingest(9, record(1, 0.9))
	// A single bad sample: the median of {0.9, 0.9, -0.9} is 0.9.
	if a := m.Ingest(9, record(2, -0.9)); a != nil {
		t.Errorf("single spike alerted: %v", a)
	}
	// Two consecutive bad samples flip the median.
	if a := m.Ingest(9, record(3, -0.9)); a == nil {
		t.Error("sustained degradation should alert")
	}
}

func TestStatusUnknownDrive(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Status(42); ok {
		t.Error("unknown drive should not have status")
	}
}

func TestHoursToFailureInversion(t *testing.T) {
	gm := GroupModel{Form: regression.FormCubic, WindowD: 24}
	// s = -1 => 0 hours; s = 0 => not in window; s = (t/d)^3 - 1 inverts.
	if got := hoursToFailure(gm, -1); got != 0 {
		t.Errorf("t(-1) = %v", got)
	}
	if got := hoursToFailure(gm, 0.2); !math.IsInf(got, 1) {
		t.Errorf("t(0.2) = %v, want +Inf", got)
	}
	s := regression.FormCubic.Eval(10, 24)
	if got := hoursToFailure(gm, s); math.Abs(got-10) > 1e-9 {
		t.Errorf("inverted t = %v, want 10", got)
	}
	// Deep scores clamp to the failure event.
	if got := hoursToFailure(gm, -1.5); got != 0 {
		t.Errorf("t(-1.5) = %v", got)
	}
}

func TestSeverityString(t *testing.T) {
	for _, s := range []Severity{Healthy, Watch, Warning, Critical} {
		if s.String() == "" {
			t.Error("empty severity name")
		}
	}
	if Severity(9).String() == "" {
		t.Error("unknown severity should render")
	}
}

func TestFromCharacterizationRejectsSkipPrediction(t *testing.T) {
	ch := &core.Characterization{
		Results: []*core.GroupResult{{Group: &core.Group{Number: 1}}},
	}
	if _, err := FromCharacterization(ch, Config{}); err == nil {
		t.Error("expected error for missing prediction")
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(1, record(0, 0.9))  // healthy
	m.Ingest(2, record(0, -0.8)) // critical
	m.Ingest(3, record(0, -0.1)) // warning
	snap := m.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %d entries", len(snap))
	}
	// Most at-risk first.
	if snap[0].DriveID != 2 || snap[2].DriveID != 1 {
		t.Errorf("snapshot order = %v %v %v", snap[0].DriveID, snap[1].DriveID, snap[2].DriveID)
	}
	var buf strings.Builder
	if err := m.WriteSnapshotJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]interface{}
	if err := json.Unmarshal([]byte(buf.String()), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed) != 3 {
		t.Fatalf("parsed = %d entries", len(parsed))
	}
	if parsed[0]["severity"] != "critical" {
		t.Errorf("first entry severity = %v", parsed[0]["severity"])
	}
	// Healthy drive has null hours_to_failure.
	if parsed[2]["hours_to_failure"] != nil {
		t.Errorf("healthy drive ETA = %v, want null", parsed[2]["hours_to_failure"])
	}
	// Critical drive has a finite ETA.
	if parsed[0]["hours_to_failure"] == nil {
		t.Error("critical drive should have a finite ETA")
	}
}
