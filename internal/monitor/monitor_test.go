package monitor

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"disksig/internal/core"
	"disksig/internal/predict"
	"disksig/internal/quality"
	"disksig/internal/regression"
	"disksig/internal/signature"
	"disksig/internal/smart"
	"disksig/internal/tree"
)

// rampPredictor scores records by their RRER value directly, making test
// trajectories easy to construct.
type rampPredictor struct{}

func (rampPredictor) Predict(x []float64) float64 { return x[smart.RRER] }

// testNormalizer returns an identity-ish normalizer over [-1, 1].
func testNormalizer() *smart.Normalizer {
	n := smart.NewNormalizer()
	var lo, hi smart.Values
	for a := range lo {
		lo[a] = -1
		hi[a] = 1
	}
	n.Observe(lo)
	n.Observe(hi)
	return n
}

func testModels() []GroupModel {
	return []GroupModel{{
		Group:     1,
		Type:      core.Logical,
		Form:      regression.FormQuadratic,
		WindowD:   12,
		Predictor: rampPredictor{},
	}}
}

func record(hour int, score float64) smart.Record {
	var v smart.Values
	v[smart.RRER] = score
	return smart.Record{Hour: hour, Values: v}
}

func TestNewValidation(t *testing.T) {
	norm := testNormalizer()
	if _, err := New(nil, norm, Config{}); err == nil {
		t.Error("expected error for no models")
	}
	if _, err := New([]GroupModel{{Group: 1, WindowD: 12}}, norm, Config{}); err == nil {
		t.Error("expected error for missing predictor")
	}
	if _, err := New([]GroupModel{{Group: 1, Predictor: rampPredictor{}}}, norm, Config{}); err == nil {
		t.Error("expected error for missing window")
	}
	if _, err := New(testModels(), smart.NewNormalizer(), Config{}); err == nil {
		t.Error("expected error for unfitted normalizer")
	}
	if _, err := New(testModels(), nil, Config{}); err == nil {
		t.Error("expected error for nil normalizer")
	}
}

func TestEscalationLadder(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Healthy: no alert.
	if a := m.Ingest(1, record(0, 0.9)); a != nil {
		t.Errorf("healthy record alerted: %v", a)
	}
	// Watch.
	a := m.Ingest(1, record(1, 0.3))
	if a == nil || a.Severity != Watch {
		t.Fatalf("watch alert = %v", a)
	}
	if math.IsInf(a.HoursToFailure, 1) == false {
		t.Errorf("watch-stage drive should have no failure ETA, got %v", a.HoursToFailure)
	}
	// Warning: inside the window.
	a = m.Ingest(1, record(2, -0.2))
	if a == nil || a.Severity != Warning {
		t.Fatalf("warning alert = %v", a)
	}
	// ETA from s = -0.2, quadratic d=12: t = 12*sqrt(0.8).
	want := 12 * math.Sqrt(0.8)
	if math.Abs(a.HoursToFailure-want) > 1e-9 {
		t.Errorf("ETA = %v, want %v", a.HoursToFailure, want)
	}
	// Critical.
	a = m.Ingest(1, record(3, -0.8))
	if a == nil || a.Severity != Critical {
		t.Fatalf("critical alert = %v", a)
	}
	if a.String() == "" || !strings.Contains(a.String(), "critical") {
		t.Errorf("alert string: %q", a.String())
	}
	// Staying critical: no repeated alert.
	if a := m.Ingest(1, record(4, -0.9)); a != nil {
		t.Errorf("repeated critical alerted: %v", a)
	}
	st, ok := m.Status(1)
	if !ok || st.Severity != Critical || st.DriveID != 1 || st.LastHour != 4 {
		t.Errorf("status = %+v", st)
	}
	if m.Tracked() != 1 {
		t.Errorf("tracked = %d", m.Tracked())
	}
}

func TestDeescalationSilent(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(5, record(0, -0.8)) // straight to critical
	if a := m.Ingest(5, record(1, 0.9)); a != nil {
		t.Errorf("de-escalation alerted: %v", a)
	}
	st, _ := m.Status(5)
	if st.Severity != Healthy {
		t.Errorf("severity after recovery = %v", st.Severity)
	}
	// Re-escalation alerts again.
	if a := m.Ingest(5, record(2, -0.8)); a == nil {
		t.Error("re-escalation should alert")
	}
}

func TestSmoothingSuppressesSpikes(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 3})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(9, record(0, 0.9))
	m.Ingest(9, record(1, 0.9))
	// A single bad sample: the median of {0.9, 0.9, -0.9} is 0.9.
	if a := m.Ingest(9, record(2, -0.9)); a != nil {
		t.Errorf("single spike alerted: %v", a)
	}
	// Two consecutive bad samples flip the median.
	if a := m.Ingest(9, record(3, -0.9)); a == nil {
		t.Error("sustained degradation should alert")
	}
}

func TestStatusUnknownDrive(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Status(42); ok {
		t.Error("unknown drive should not have status")
	}
}

func TestHoursToFailureInversion(t *testing.T) {
	gm := GroupModel{Form: regression.FormCubic, WindowD: 24}
	// s = -1 => 0 hours; s = 0 => not in window; s = (t/d)^3 - 1 inverts.
	if got := hoursToFailure(gm, -1); got != 0 {
		t.Errorf("t(-1) = %v", got)
	}
	if got := hoursToFailure(gm, 0.2); !math.IsInf(got, 1) {
		t.Errorf("t(0.2) = %v, want +Inf", got)
	}
	s := regression.FormCubic.Eval(10, 24)
	if got := hoursToFailure(gm, s); math.Abs(got-10) > 1e-9 {
		t.Errorf("inverted t = %v, want 10", got)
	}
	// Deep scores clamp to the failure event.
	if got := hoursToFailure(gm, -1.5); got != 0 {
		t.Errorf("t(-1.5) = %v", got)
	}
}

func TestSeverityString(t *testing.T) {
	for _, s := range []Severity{Healthy, Watch, Warning, Critical} {
		if s.String() == "" {
			t.Error("empty severity name")
		}
	}
	if Severity(9).String() == "" {
		t.Error("unknown severity should render")
	}
}

func TestFromCharacterizationRejectsSkipPrediction(t *testing.T) {
	ch := &core.Characterization{
		Results: []*core.GroupResult{{Group: &core.Group{Number: 1}}},
	}
	if _, err := FromCharacterization(ch, Config{}); err == nil {
		t.Error("expected error for missing prediction")
	}
}

// TestModelsFromCharacterizationClampsDegenerateWindow pins the fix for
// the zero-window bug: a tiny group whose members all failed within one
// sample has MedianD == 0, which used to make New reject the entire
// model set ("invalid window") and fail fleet startup.
func TestModelsFromCharacterizationClampsDegenerateWindow(t *testing.T) {
	stump, err := tree.Train([][]float64{{0}, {1}, {0}, {1}}, []float64{0, 1, 0, 1}, tree.Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch := &core.Characterization{
		Results: []*core.GroupResult{
			{
				Group:      &core.Group{Number: 1, Type: core.Logical},
				Summary:    &signature.GroupSummary{MajorityForm: regression.FormQuadratic, MedianD: 0},
				Prediction: &predict.DegradationResult{Tree: stump},
			},
			{
				Group:      &core.Group{Number: 2, Type: core.BadSector},
				Summary:    &signature.GroupSummary{MajorityForm: regression.FormLinear, MedianD: 120},
				Prediction: &predict.DegradationResult{Tree: stump},
			},
		},
	}
	models, err := ModelsFromCharacterization(ch)
	if err != nil {
		t.Fatal(err)
	}
	if models[0].WindowD != MinWindowHours {
		t.Errorf("degenerate window = %v, want clamp to %v", models[0].WindowD, MinWindowHours)
	}
	if models[0].Note == "" {
		t.Error("clamped model carries no quality note")
	}
	if models[1].WindowD != 120 || models[1].Note != "" {
		t.Errorf("healthy group altered: window %v note %q", models[1].WindowD, models[1].Note)
	}
	// The clamped set must pass New's validation (no fleet-wide failure).
	if _, err := New(models, testNormalizer(), Config{}); err != nil {
		t.Errorf("New rejected clamped model set: %v", err)
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(1, record(0, 0.9))  // healthy
	m.Ingest(2, record(0, -0.8)) // critical
	m.Ingest(3, record(0, -0.1)) // warning
	snap := m.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %d entries", len(snap))
	}
	// Most at-risk first.
	if snap[0].DriveID != 2 || snap[2].DriveID != 1 {
		t.Errorf("snapshot order = %v %v %v", snap[0].DriveID, snap[1].DriveID, snap[2].DriveID)
	}
	var buf strings.Builder
	if err := m.WriteSnapshotJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]interface{}
	if err := json.Unmarshal([]byte(buf.String()), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed) != 3 {
		t.Fatalf("parsed = %d entries", len(parsed))
	}
	if parsed[0]["severity"] != "critical" {
		t.Errorf("first entry severity = %v", parsed[0]["severity"])
	}
	// Healthy drive has null hours_to_failure.
	if parsed[2]["hours_to_failure"] != nil {
		t.Errorf("healthy drive ETA = %v, want null", parsed[2]["hours_to_failure"])
	}
	// Critical drive has a finite ETA.
	if parsed[0]["hours_to_failure"] == nil {
		t.Error("critical drive should have a finite ETA")
	}
}

func TestIngestQuarantinesNonFinite(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(7, record(0, 0.9))
	// A NaN record must be quarantined, not scored: the drive's state and
	// smoothing window stay untouched.
	if a := m.Ingest(7, record(1, math.NaN())); a != nil {
		t.Errorf("NaN record alerted: %v", a)
	}
	st, _ := m.Status(7)
	if st.LastHour != 0 {
		t.Errorf("NaN record advanced LastHour to %d", st.LastHour)
	}
	q := m.Quality()
	if q.Count(quality.NonFinite) == 0 {
		t.Error("NaN record not counted as non-finite")
	}
	if q.RowsRead != 2 || q.RowsQuarantined != 1 {
		t.Errorf("quality accounting = %d read / %d quarantined", q.RowsRead, q.RowsQuarantined)
	}
	// An Inf record likewise.
	if a := m.Ingest(7, record(1, math.Inf(-1))); a != nil {
		t.Errorf("Inf record alerted: %v", a)
	}
	if q.RowsQuarantined != 2 {
		t.Errorf("quarantined = %d after Inf record", q.RowsQuarantined)
	}
	// The drive still degrades normally afterwards.
	if a := m.Ingest(7, record(1, -0.8)); a == nil || a.Severity != Critical {
		t.Fatalf("post-quarantine degradation alert = %v", a)
	}
}

func TestIngestOutOfOrderDropped(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(8, record(5, 0.9))
	// A stale record (earlier hour) is dropped: severity stays healthy
	// even though the stale score is critical.
	if a := m.Ingest(8, record(3, -0.9)); a != nil {
		t.Errorf("stale record alerted: %v", a)
	}
	st, _ := m.Status(8)
	if st.LastHour != 5 || st.Severity != Healthy {
		t.Errorf("state after stale record = hour %d severity %v", st.LastHour, st.Severity)
	}
	if m.Quality().Count(quality.OutOfOrderTimestamp) != 1 {
		t.Error("stale record not counted as out-of-order")
	}
}

func TestIngestDuplicateHourKeepsLatest(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 3})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(9, record(0, 0.9))
	m.Ingest(9, record(1, 0.9))
	m.Ingest(9, record(2, -0.9))
	// Repeating hour 2 with a healthy score replaces the bad sample
	// instead of widening the window: the median stays healthy when the
	// next bad sample arrives (it would flip with {0.9, -0.9, -0.9}).
	m.Ingest(9, record(2, 0.9))
	if a := m.Ingest(9, record(3, -0.9)); a != nil {
		t.Errorf("alert after superseded spike: %v", a)
	}
	if m.Quality().Count(quality.DuplicateTimestamp) != 1 {
		t.Error("duplicate hour not counted")
	}
	// The duplicate is kept-with-issue, not quarantined: it replaced the
	// superseded sample in the smoothing window, so it must show up in
	// the kept count. Only flagged, never dropped.
	if q := m.Quality(); q.RowsRead != 5 || q.RowsQuarantined != 0 || q.RowsKept() != 5 {
		t.Errorf("quality accounting = %d read / %d kept / %d quarantined, want 5/5/0",
			q.RowsRead, q.RowsKept(), q.RowsQuarantined)
	}
}

// TestLedgerInvariantWithDirtyStream pins read = kept + quarantined +
// dropped across every dirty-record class, and that records which
// mutated monitor state (clean, duplicate-replacement) are exactly the
// kept ones.
func TestLedgerInvariantWithDirtyStream(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 3})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(4, record(0, 0.9))     // kept
	m.Ingest(4, record(1, 0.9))     // kept
	m.Ingest(4, record(1, 0.8))     // duplicate: kept-with-issue (replaces)
	m.Ingest(4, record(0, -0.9))    // stale: quarantined
	m.Ingest(4, nonFiniteRecord(2)) // non-finite: quarantined
	m.Ingest(4, record(2, 0.7))     // kept
	q := m.Quality()
	if q.RowsRead != q.RowsKept()+q.RowsQuarantined+q.RowsDropped {
		t.Fatalf("ledger invariant broken: read=%d kept=%d quarantined=%d dropped=%d",
			q.RowsRead, q.RowsKept(), q.RowsQuarantined, q.RowsDropped)
	}
	if q.RowsRead != 6 || q.RowsKept() != 4 || q.RowsQuarantined != 2 {
		t.Fatalf("accounting = %d read / %d kept / %d quarantined, want 6/4/2",
			q.RowsRead, q.RowsKept(), q.RowsQuarantined)
	}
	if q.Count(quality.DuplicateTimestamp) != 1 {
		t.Errorf("DuplicateTimestamp = %d, want 1 (flagged even though kept)", q.Count(quality.DuplicateTimestamp))
	}
	// The kept count equals the records that reached the scoring path:
	// drive state reflects exactly 3 distinct hours with hour 1 replaced.
	st, ok := m.Status(4)
	if !ok || st.LastHour != 2 {
		t.Fatalf("drive status = %+v, %v", st, ok)
	}
}

func TestForget(t *testing.T) {
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(1, record(0, -0.9))
	if m.Tracked() != 1 {
		t.Fatalf("Tracked = %d, want 1", m.Tracked())
	}
	if !m.Forget(1) {
		t.Fatal("Forget(1) = false for a tracked drive")
	}
	if m.Forget(1) || m.Forget(2) {
		t.Fatal("Forget of an untracked drive returned true")
	}
	if m.Tracked() != 0 {
		t.Fatalf("Tracked = %d after Forget, want 0", m.Tracked())
	}
	if _, ok := m.Status(1); ok {
		t.Fatal("Status succeeded for a forgotten drive")
	}
	// A forgotten drive that reports again starts fresh: its first
	// record may be any hour, and escalation restarts from Healthy.
	if a := m.Ingest(1, record(0, 0.9)); a != nil {
		t.Errorf("fresh record after Forget alerted: %v", a)
	}
	if q := m.Quality(); q.Count(quality.OutOfOrderTimestamp) != 0 {
		t.Error("record after Forget counted as out-of-order")
	}
}
