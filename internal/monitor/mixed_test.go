package monitor

import (
	"testing"

	"disksig/internal/core"
	"disksig/internal/quality"
	"disksig/internal/smart"
)

// negPredictor inverts the RRER score, so the same record yields
// opposite degradation under the two classes — any cross-class scoring
// leak flips a test verdict.
type negPredictor struct{}

func (negPredictor) Predict(x []float64) float64 { return -x[smart.RRER] }

// mixedTestModels returns one HDD and one SSD model with deliberately
// opposite predictors, plus identity-ish per-class normalizers.
func mixedTestModels() ([]GroupModel, ClassNorms) {
	hdd := testModels()[0]
	ssd := hdd
	ssd.Class = smart.SSD
	ssd.Type = core.BadSector
	ssd.Predictor = negPredictor{}
	return []GroupModel{hdd, ssd}, ClassNorms{HDD: testNormalizer(), SSD: testNormalizer()}
}

func TestIngestClassRoutesToClassModels(t *testing.T) {
	models, norms := mixedTestModels()
	m, err := NewMulti(models, norms, Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	// RRER 0.9 is healthy under the HDD model but deeply degraded under
	// the inverted SSD model: the record must be scored only by its own
	// class's models.
	if a, kept := m.IngestClass(1, smart.HDD, record(0, 0.9)); !kept || a != nil {
		t.Errorf("HDD healthy record: alert=%v kept=%v", a, kept)
	}
	a, kept := m.IngestClass(2, smart.SSD, record(0, 0.9))
	if !kept || a == nil || a.Severity != Critical {
		t.Fatalf("SSD record scored by wrong class: alert=%v kept=%v", a, kept)
	}
	if a.Class != smart.SSD || a.Type != core.BadSector {
		t.Errorf("alert carries class %v type %v, want ssd/bad-sector", a.Class, a.Type)
	}
}

func TestIngestClassUnservedQuarantined(t *testing.T) {
	// A monitor built with HDD models only must quarantine SSD records
	// rather than score flash wear against rotational signatures.
	m, err := New(testModels(), testNormalizer(), Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, kept := m.IngestClass(1, smart.SSD, record(0, 0.5))
	if kept || a != nil {
		t.Fatalf("unserved class ingested: alert=%v kept=%v", a, kept)
	}
	rep := m.Quality()
	if rep.ByField["device_class"] == 0 {
		t.Errorf("quarantine not attributed to device_class: %v", rep.ByField)
	}
	if rep.RowsQuarantined != 1 {
		t.Errorf("quarantined = %d, want 1", rep.RowsQuarantined)
	}
}

func TestIngestClassFlipFlopQuarantined(t *testing.T) {
	models, norms := mixedTestModels()
	m, err := NewMulti(models, norms, Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, kept := m.IngestClass(7, smart.HDD, record(0, 0.9)); !kept {
		t.Fatal("first record not kept")
	}
	// The same drive reporting as SSD one hour later is corrupt
	// telemetry: a serial cannot change hardware mid-stream.
	a, kept := m.IngestClass(7, smart.SSD, record(1, 0.9))
	if kept || a != nil {
		t.Fatalf("class flip-flop ingested: alert=%v kept=%v", a, kept)
	}
	if m.Quality().ByKind[quality.BadField] == 0 {
		t.Error("flip-flop not quarantined as bad field")
	}
	// The drive's state is untouched: still HDD, still scoring.
	if _, kept := m.IngestClass(7, smart.HDD, record(2, 0.8)); !kept {
		t.Error("drive stopped scoring after rejected flip-flop")
	}
}

// TestSSDCliffStraightToCritical pins the sudden-death dynamic: a cliff
// failure jumps from healthy to Critical on a single record, without
// ever passing through Watch or Warning — the alert a mixed fleet's
// pager must treat as "already dead", not "worth watching".
func TestSSDCliffStraightToCritical(t *testing.T) {
	models, norms := mixedTestModels()
	// Smoothing 1 so the cliff record is not averaged away; the SSD
	// model scores -RRER, so a healthy drive reports RRER -0.9.
	m, err := NewMulti(models, norms, Config{Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 5; h++ {
		if a, kept := m.IngestClass(3, smart.SSD, record(h, -0.9)); !kept || a != nil {
			t.Fatalf("healthy plateau hour %d: alert=%v kept=%v", h, a, kept)
		}
	}
	a, kept := m.IngestClass(3, smart.SSD, record(5, 0.85))
	if !kept || a == nil {
		t.Fatalf("cliff record: alert=%v kept=%v", a, kept)
	}
	if a.Severity != Critical {
		t.Fatalf("cliff escalated to %v, want straight to Critical", a.Severity)
	}
	if a.Hour != 5 {
		t.Errorf("critical at hour %d, want 5", a.Hour)
	}
}

func TestModelsFromMixedClassStamping(t *testing.T) {
	// Guard NewMulti's validation: an SSD model without an SSD
	// normalizer must be rejected, as must a normalizer-less class set.
	models, norms := mixedTestModels()
	if _, err := NewMulti(models, ClassNorms{HDD: testNormalizer()}, Config{}); err == nil {
		t.Error("SSD model accepted without SSD normalizer")
	}
	if _, err := NewMulti(nil, norms, Config{}); err == nil {
		t.Error("empty model set accepted")
	}
	bad := append([]GroupModel{}, models...)
	bad[1].Class = smart.DeviceClass(9)
	if _, err := NewMulti(bad, norms, Config{}); err == nil {
		t.Error("invalid model class accepted")
	}
}
