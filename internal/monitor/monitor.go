// Package monitor is the online application of the characterization
// results: a streaming drive-health monitor that scores every incoming
// SMART record against the per-group degradation predictors, estimates
// the remaining time to failure by inverting the group's degradation
// signature, and escalates alerts as a drive deteriorates. It implements
// the "middleware software that will enhance storage reliability" the
// paper describes as future work (Sec. VI).
package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"disksig/internal/core"
	"disksig/internal/quality"
	"disksig/internal/regression"
	"disksig/internal/smart"
)

// Predictor scores a normalized attribute vector with a degradation value
// in [-1, 1] (1 = healthy, -1 = failure event). *tree.Tree and
// *tree.Forest satisfy it.
type Predictor interface {
	Predict(x []float64) float64
}

// GroupModel is one failure category's trained scoring model.
type GroupModel struct {
	// Class is the device class the model was trained on. Records are
	// scored only against models of their own class; the zero value
	// (HDD) keeps pre-class model sets and snapshots valid.
	Class smart.DeviceClass
	// Group is the paper group number, unique within its class.
	Group int
	// Type is the semantic failure category.
	Type core.FailureType
	// Form is the group's degradation signature.
	Form regression.SignatureForm
	// WindowD is the signature's window size used for time-to-failure
	// estimates.
	WindowD float64
	// Predictor scores normalized records.
	Predictor Predictor
	// Note records a training-quality caveat (e.g. a degenerate
	// signature window clamped to MinWindowHours). Informational only;
	// empty for a clean model.
	Note string
}

// MinWindowHours is the floor for a group's signature window. A tiny
// group can characterize with a degenerate MedianD of 0 (every member
// failed abruptly within one sample), which would make time-to-failure
// inversion divide by zero and New reject the model set. Such windows
// are clamped here instead of failing fleet startup.
const MinWindowHours = 24.0

// Severity grades a monitored drive's state.
type Severity int

const (
	// Healthy drives score near 1.
	Healthy Severity = iota
	// Watch drives have drifted from the good population.
	Watch
	// Warning drives have entered a degradation window.
	Warning
	// Critical drives are deep in degradation; data rescue should start.
	Critical
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Watch:
		return "watch"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Config parameterizes the monitor.
type Config struct {
	// WatchBelow, WarnBelow and CriticalBelow are the degradation
	// thresholds of the escalation ladder. A zero WatchBelow selects 0.5
	// and a zero CriticalBelow selects -0.5; WarnBelow's useful default
	// is exactly 0 (the degradation-window edge).
	WatchBelow    float64
	WarnBelow     float64
	CriticalBelow float64
	// Smoothing is the number of recent predictions median-filtered per
	// drive to suppress single-sample noise; 0 means 3.
	Smoothing int
}

func (c Config) withDefaults() Config {
	if c.WatchBelow == 0 {
		c.WatchBelow = 0.5
	}
	if c.CriticalBelow == 0 {
		c.CriticalBelow = -0.5
	}
	if c.Smoothing <= 0 {
		c.Smoothing = 3
	}
	return c
}

// Alert reports an escalation of a monitored drive.
type Alert struct {
	DriveID int
	// Class is the drive's device class.
	Class smart.DeviceClass
	Hour  int
	// Severity is the new severity level.
	Severity Severity
	// Group and Type identify the most pessimistic failure-mode model.
	Group int
	Type  core.FailureType
	// Degradation is the smoothed degradation score in [-1, 1].
	Degradation float64
	// HoursToFailure estimates the remaining time from the group
	// signature; +Inf when the drive has not entered a degradation
	// window.
	HoursToFailure float64
}

// String renders the alert for logs.
func (a Alert) String() string {
	ttf := "not in degradation window"
	if !math.IsInf(a.HoursToFailure, 1) {
		ttf = fmt.Sprintf("~%.0fh to failure", a.HoursToFailure)
	}
	return fmt.Sprintf("drive %d [hour %d] %s: %s failure signature, degradation %+.2f, %s",
		a.DriveID, a.Hour, a.Severity, a.Type, a.Degradation, ttf)
}

// DriveStatus is the monitor's current view of one drive.
type DriveStatus struct {
	DriveID        int
	Class          smart.DeviceClass
	LastHour       int
	Severity       Severity
	Group          int
	Type           core.FailureType
	Degradation    float64
	HoursToFailure float64
}

type driveState struct {
	class    smart.DeviceClass
	lastHour int
	seen     bool
	severity Severity
	// recent holds the last Smoothing raw scores per group model.
	// Windows of models whose class differs from the drive's stay empty
	// forever, and an empty window medians to +Inf — other-class models
	// are therefore structurally excluded from worstGroup.
	recent [][]float64
}

// ClassNorms bundles the per-class Eq. (1) normalizers of a mixed
// fleet. A class with no population (and no models) keeps a nil entry;
// nil-ness is significant and survives gob (struct pointer fields are
// simply omitted when nil).
type ClassNorms struct {
	HDD *smart.Normalizer
	SSD *smart.Normalizer
}

// For returns the normalizer of a class (nil when the class is not
// served).
func (cn ClassNorms) For(c smart.DeviceClass) *smart.Normalizer {
	switch c {
	case smart.HDD:
		return cn.HDD
	case smart.SSD:
		return cn.SSD
	}
	return nil
}

// set returns a copy with class c's normalizer replaced.
func (cn ClassNorms) set(c smart.DeviceClass, n *smart.Normalizer) ClassNorms {
	switch c {
	case smart.HDD:
		cn.HDD = n
	case smart.SSD:
		cn.SSD = n
	}
	return cn
}

// Monitor scores streaming SMART records.
type Monitor struct {
	cfg    Config
	models []GroupModel
	norms  ClassNorms
	// classModels counts models per device class; records of a class
	// with no models are quarantined rather than silently scored healthy.
	classModels [smart.NumClasses]int
	drives      map[int]*driveState
	// ledgers holds each drive's contribution to the quality report so
	// Forget can subtract it exactly. A drive can have a ledger without
	// being tracked: all of its records were quarantined.
	ledgers map[int]*DriveLedger
	quality quality.Report
	// normBuf is the reusable normalized-vector scratch of Ingest; a
	// Monitor is single-goroutine (each fleet shard owns one behind its
	// mutex), so one buffer suffices.
	normBuf []float64
}

// DriveLedger is one drive's share of the monitor's quality accounting.
// It exists so that forgetting a drive releases exactly the counts the
// drive contributed, and so snapshots can restore per-drive accounting.
type DriveLedger struct {
	RowsRead        int
	RowsQuarantined int
	ByKind          map[quality.Kind]int
	ByField         map[string]int
}

// clone deep-copies the ledger, keeping empty maps nil so exported and
// re-imported states compare equal.
func (l *DriveLedger) clone() DriveLedger {
	c := DriveLedger{RowsRead: l.RowsRead, RowsQuarantined: l.RowsQuarantined}
	if len(l.ByKind) > 0 {
		c.ByKind = make(map[quality.Kind]int, len(l.ByKind))
		for k, n := range l.ByKind {
			c.ByKind[k] = n
		}
	}
	if len(l.ByField) > 0 {
		c.ByField = make(map[string]int, len(l.ByField))
		for f, n := range l.ByField {
			c.ByField[f] = n
		}
	}
	return c
}

// New builds a monitor from trained group models and the fleet
// normalizer used during training. Every model must be HDD-class (the
// single-class legacy path); use NewMulti for a mixed fleet.
func New(models []GroupModel, norm *smart.Normalizer, cfg Config) (*Monitor, error) {
	for _, m := range models {
		if m.Class != smart.HDD {
			return nil, fmt.Errorf("monitor: group %d is %v-class; a mixed model set needs NewMulti", m.Group, m.Class)
		}
	}
	return NewMulti(models, ClassNorms{HDD: norm}, cfg)
}

// NewMulti builds a monitor serving a heterogeneous fleet: models carry
// their device class, and norms holds one Eq. (1) normalizer per served
// class. A class is served iff it has at least one model and a fitted
// normalizer; records of unserved classes are quarantined on ingest.
func NewMulti(models []GroupModel, norms ClassNorms, cfg Config) (*Monitor, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("monitor: no group models")
	}
	var classModels [smart.NumClasses]int
	for _, m := range models {
		if !m.Class.Valid() {
			return nil, fmt.Errorf("monitor: group %d has invalid device class %d", m.Group, m.Class)
		}
		if m.Predictor == nil {
			return nil, fmt.Errorf("monitor: %v group %d has no predictor", m.Class, m.Group)
		}
		if m.WindowD <= 0 {
			return nil, fmt.Errorf("monitor: %v group %d has invalid window %v", m.Class, m.Group, m.WindowD)
		}
		classModels[m.Class]++
	}
	for c := smart.DeviceClass(0); c < smart.NumClasses; c++ {
		n := norms.For(c)
		if classModels[c] > 0 && (n == nil || !n.Fitted()) {
			return nil, fmt.Errorf("monitor: %v models without a fitted %v normalizer", c, c)
		}
	}
	return &Monitor{
		cfg:         cfg.withDefaults(),
		models:      models,
		norms:       norms,
		classModels: classModels,
		drives:      map[int]*driveState{},
		ledgers:     map[int]*DriveLedger{},
		normBuf:     make([]float64, smart.NumAttrs),
	}, nil
}

// ModelsFromCharacterization extracts the per-group scoring models of a
// pipeline run that included the prediction stage. It is the hook the
// fleet store uses to build many monitors (one per shard) from a single
// training run.
func ModelsFromCharacterization(ch *core.Characterization) ([]GroupModel, error) {
	var models []GroupModel
	for _, gr := range ch.Results {
		if gr.Prediction == nil {
			return nil, fmt.Errorf("monitor: group %d has no trained predictor (pipeline ran with SkipPrediction)", gr.Group.Number)
		}
		gm := GroupModel{
			Group:     gr.Group.Number,
			Type:      gr.Group.Type,
			Form:      gr.Summary.MajorityForm,
			WindowD:   float64(gr.Summary.MedianD),
			Predictor: gr.Prediction.Tree,
		}
		if gm.WindowD <= 0 {
			// A degenerate window (tiny group, abrupt failures) would
			// fail New's validation and take the whole fleet down with
			// it; clamp and note instead.
			gm.Note = fmt.Sprintf("degenerate signature window %v clamped to %v", gm.WindowD, MinWindowHours)
			gm.WindowD = MinWindowHours
		}
		models = append(models, gm)
	}
	return models, nil
}

// ModelsFromMixed extracts the scoring models of a class-partitioned
// pipeline run, each stamped with its class, along with the per-class
// normalizers. The combined list is ordered by class then group number,
// so model sets from the same mixed characterization are always laid
// out identically.
func ModelsFromMixed(mc *core.MixedCharacterization) ([]GroupModel, ClassNorms, error) {
	var models []GroupModel
	var norms ClassNorms
	for c := smart.DeviceClass(0); c < smart.NumClasses; c++ {
		ch := mc.ByClass[c]
		if ch == nil {
			continue
		}
		cms, err := ModelsFromCharacterization(ch)
		if err != nil {
			return nil, ClassNorms{}, fmt.Errorf("monitor: %v models: %w", c, err)
		}
		for i := range cms {
			cms[i].Class = c
		}
		models = append(models, cms...)
		norms = norms.set(c, ch.Dataset.Norm)
	}
	return models, norms, nil
}

// FromCharacterization builds a monitor directly from a pipeline run that
// included the prediction stage.
func FromCharacterization(ch *core.Characterization, cfg Config) (*Monitor, error) {
	models, err := ModelsFromCharacterization(ch)
	if err != nil {
		return nil, err
	}
	return New(models, ch.Dataset.Norm, cfg)
}

// Ingest scores one raw (vendor health-value) record of a drive. It
// returns a non-nil alert when the drive's severity escalates.
//
// Dirty telemetry never corrupts the smoothed-median window: a record
// with NaN/Inf or out-of-range values is quarantined, a record older
// than the drive's latest hour is dropped (keep-latest), and a repeated
// hour replaces the previous sample instead of widening the window.
// Every such event is counted in Quality.
func (m *Monitor) Ingest(driveID int, rec smart.Record) *Alert {
	a, _ := m.IngestClass(driveID, smart.HDD, rec)
	return a
}

// IngestKept scores one record like Ingest and additionally reports
// whether the record was kept — it entered (or, for a repeated hour,
// replaced the tail of) the smoothing window — as opposed to being
// quarantined or dropped. Callers that retain raw telemetry for
// retraining use the kept flag to mirror exactly the records that
// shaped monitor state.
func (m *Monitor) IngestKept(driveID int, rec smart.Record) (*Alert, bool) {
	return m.IngestClass(driveID, smart.HDD, rec)
}

// IngestClass is IngestKept with an explicit device class: the record is
// normalized with its class's normalizer and scored only against models
// of that class. Records of a class the monitor has no models for, and
// records that contradict the class a drive first reported with, are
// quarantined (a serial cannot change hardware mid-stream; one of the
// two reports is corrupt).
func (m *Monitor) IngestClass(driveID int, class smart.DeviceClass, rec smart.Record) (*Alert, bool) {
	if !class.Valid() || m.classModels[class] == 0 {
		m.note(driveID, quality.Issue{
			Kind: quality.BadField, Drive: strconv.Itoa(driveID),
			Field:  "device_class",
			Detail: fmt.Sprintf("no models for class %v", class),
		})
		m.addRows(driveID, 1, 1)
		return nil, false
	}
	if st, ok := m.drives[driveID]; ok && st.class != class {
		m.note(driveID, quality.Issue{
			Kind: quality.BadField, Drive: strconv.Itoa(driveID),
			Field:  "device_class",
			Detail: fmt.Sprintf("drive is %v, record claims %v", st.class, class),
		})
		m.addRows(driveID, 1, 1)
		return nil, false
	}
	// Only non-finite values poison the window: finite out-of-range
	// values are clamped by the normalizer and score fine. The scan is
	// inlined (rather than quality.CheckValues) so a clean record — the
	// steady state — formats no drive label and builds no issue list.
	bad := false
	for a := 0; a < int(smart.NumAttrs); a++ {
		if x := rec.Values[a]; math.IsNaN(x) || math.IsInf(x, 0) {
			bad = true
			m.note(driveID, quality.Issue{
				Kind: quality.NonFinite, Drive: strconv.Itoa(driveID),
				Field:  smart.Attr(a).String(),
				Detail: fmt.Sprintf("value %v", x),
			})
		}
	}
	if bad {
		m.addRows(driveID, 1, 1)
		return nil, false
	}

	st, ok := m.drives[driveID]
	if !ok {
		st = &driveState{class: class, recent: make([][]float64, len(m.models))}
		for gi := range st.recent {
			st.recent[gi] = make([]float64, 0, m.cfg.Smoothing)
		}
		m.drives[driveID] = st
	}
	replace := false
	if st.seen {
		switch {
		case rec.Hour < st.lastHour:
			// Stale sample: the drive already reported a later state.
			m.note(driveID, quality.Issue{
				Kind: quality.OutOfOrderTimestamp, Drive: strconv.Itoa(driveID),
				Detail: fmt.Sprintf("hour %d after hour %d", rec.Hour, st.lastHour),
			})
			m.addRows(driveID, 1, 1)
			return nil, false
		case rec.Hour == st.lastHour:
			// Keep-latest: the repeat supersedes the previous sample. It
			// is kept-with-issue, not quarantined — the record mutates
			// the smoothing window (it replaces the superseded score),
			// so counting it quarantined would hide a state change from
			// the kept count and break read = kept + quarantined as an
			// accounting of records that reached the scoring path.
			m.note(driveID, quality.Issue{
				Kind: quality.DuplicateTimestamp, Drive: strconv.Itoa(driveID),
				Detail: fmt.Sprintf("hour %d repeated", rec.Hour),
			})
			m.addRows(driveID, 1, 0)
			replace = true
		default:
			m.addRows(driveID, 1, 0)
		}
	} else {
		m.addRows(driveID, 1, 0)
	}
	st.seen = true
	st.lastHour = rec.Hour

	normalized := m.norms.For(class).Normalize(rec.Values)
	copy(m.normBuf, normalized[:])
	for gi, gm := range m.models {
		if gm.Class != class {
			continue
		}
		score := gm.Predictor.Predict(m.normBuf)
		w := st.recent[gi]
		switch {
		case replace && len(w) > 0:
			w[len(w)-1] = score
		case len(w) < m.cfg.Smoothing:
			st.recent[gi] = append(w, score)
		default:
			// Window full: slide in place instead of reslicing, so the
			// steady state never re-allocates the window.
			copy(w, w[1:])
			w[len(w)-1] = score
		}
	}

	group, deg := m.worstGroup(st)
	severity := m.severityOf(deg)
	if severity > st.severity {
		st.severity = severity
		gm := m.models[group]
		return &Alert{
			DriveID:        driveID,
			Class:          class,
			Hour:           rec.Hour,
			Severity:       severity,
			Group:          gm.Group,
			Type:           gm.Type,
			Degradation:    deg,
			HoursToFailure: hoursToFailure(gm, deg),
		}, true
	}
	// De-escalate silently: transient dips recover without alert spam.
	st.severity = severity
	return nil, true
}

// ledger returns (creating if needed) a drive's quality ledger.
func (m *Monitor) ledger(driveID int) *DriveLedger {
	led, ok := m.ledgers[driveID]
	if !ok {
		led = &DriveLedger{}
		m.ledgers[driveID] = led
	}
	return led
}

// note records an issue in both the monitor-wide report and the drive's
// ledger, so the contribution can later be released by Forget.
func (m *Monitor) note(driveID int, iss quality.Issue) {
	m.quality.Note(iss, quality.Config{})
	led := m.ledger(driveID)
	if led.ByKind == nil {
		led.ByKind = map[quality.Kind]int{}
	}
	led.ByKind[iss.Kind]++
	if iss.Field != "" {
		if led.ByField == nil {
			led.ByField = map[string]int{}
		}
		led.ByField[iss.Field]++
	}
}

// addRows accounts rows in both the monitor-wide report and the drive's
// ledger.
func (m *Monitor) addRows(driveID, read, quarantined int) {
	m.quality.AddRows(read, quarantined, 0)
	led := m.ledger(driveID)
	led.RowsRead += read
	led.RowsQuarantined += quarantined
}

// worstGroup returns the model index with the lowest smoothed score and
// that score.
func (m *Monitor) worstGroup(st *driveState) (int, float64) {
	best, bestScore := 0, math.Inf(1)
	for gi := range m.models {
		s := smoothedMedian(st.recent[gi])
		if s < bestScore {
			best, bestScore = gi, s
		}
	}
	return best, bestScore
}

func smoothedMedian(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(1)
	}
	// Smoothing windows are tiny (default 3), so sort a stack copy by
	// insertion — sort.Float64s would heap-allocate the copy on every
	// scored record.
	var buf [16]float64
	var cp []float64
	if len(xs) <= len(buf) {
		cp = buf[:len(xs)]
	} else {
		cp = make([]float64, len(xs))
	}
	copy(cp, xs)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func (m *Monitor) severityOf(deg float64) Severity {
	switch {
	case deg < m.cfg.CriticalBelow:
		return Critical
	case deg < m.cfg.WarnBelow:
		return Warning
	case deg < m.cfg.WatchBelow:
		return Watch
	default:
		return Healthy
	}
}

// hoursToFailure inverts the group signature: s(t) = (t/d)^k - 1 gives
// t = d * (s+1)^(1/k). The boundary behavior is pinned:
//
//   - NaN degradation (a predictor fed pathological input) or s >= 0
//     means the drive is not in a degradation window: +Inf. Propagating
//     NaN would otherwise surface as "~NaNh to failure" in alerts.
//   - s <= -1 is at or beyond the failure event itself: 0 hours. Values
//     below -1 (outside the signature's fitted range) clamp rather than
//     producing a negative or complex-root estimate.
//   - An unknown signature form (order 0) or a non-positive/NaN window
//     cannot be inverted: +Inf, never a division by zero.
func hoursToFailure(gm GroupModel, deg float64) float64 {
	if math.IsNaN(deg) || deg >= 0 {
		return math.Inf(1)
	}
	k := float64(gm.Form.Order())
	if k <= 0 || math.IsNaN(gm.WindowD) || gm.WindowD <= 0 {
		return math.Inf(1)
	}
	if deg <= -1 {
		return 0
	}
	return gm.WindowD * math.Pow(deg+1, 1/k)
}

// Status returns the monitor's current view of a drive.
func (m *Monitor) Status(driveID int) (DriveStatus, bool) {
	st, ok := m.drives[driveID]
	if !ok {
		return DriveStatus{}, false
	}
	group, deg := m.worstGroup(st)
	gm := m.models[group]
	return DriveStatus{
		DriveID:        driveID,
		Class:          st.class,
		LastHour:       st.lastHour,
		Severity:       st.severity,
		Group:          gm.Group,
		Type:           gm.Type,
		Degradation:    deg,
		HoursToFailure: hoursToFailure(gm, deg),
	}, true
}

// Tracked returns the number of drives the monitor has seen.
func (m *Monitor) Tracked() int { return len(m.drives) }

// Forget discards a drive's state, reporting whether the drive was
// tracked. It is the eviction hook for decommissioned or long-silent
// drives; if the drive reports again it restarts with a fresh smoothing
// window. The drive's contribution to the quality ledger is released
// along with it, so Quality() only accounts for drives the monitor
// still knows — a fleet that forgets a drive and re-summarizes must not
// leak the forgotten drive's counts.
func (m *Monitor) Forget(driveID int) bool {
	if led, ok := m.ledgers[driveID]; ok {
		m.quality.RowsRead -= led.RowsRead
		m.quality.RowsQuarantined -= led.RowsQuarantined
		for k, n := range led.ByKind {
			m.quality.ByKind[k] -= n
		}
		for f, n := range led.ByField {
			if m.quality.ByField[f] -= n; m.quality.ByField[f] == 0 {
				delete(m.quality.ByField, f)
			}
		}
		delete(m.ledgers, driveID)
	}
	if _, ok := m.drives[driveID]; !ok {
		return false
	}
	delete(m.drives, driveID)
	return true
}

// Quality reports how many ingested records were clean, quarantined
// (non-finite values, stale hours) or superseded by a duplicate hour.
func (m *Monitor) Quality() *quality.Report { return &m.quality }

// Snapshot returns the current status of every tracked drive, ordered by
// ascending degradation (most at-risk first, ties by drive ID). It is the
// fleet dashboard view of the middleware.
func (m *Monitor) Snapshot() []DriveStatus {
	out := make([]DriveStatus, 0, len(m.drives))
	for id := range m.drives {
		st, _ := m.Status(id)
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Degradation != out[j].Degradation {
			return out[i].Degradation < out[j].Degradation
		}
		return out[i].DriveID < out[j].DriveID
	})
	return out
}

// WriteSnapshotJSON writes the Snapshot as JSON, the integration format
// for external dashboards and ticketing systems. Severity and failure
// types are rendered as strings; +Inf hours-to-failure becomes null.
func (m *Monitor) WriteSnapshotJSON(w io.Writer) error {
	type jsonStatus struct {
		DriveID        int      `json:"drive_id"`
		LastHour       int      `json:"last_hour"`
		Severity       string   `json:"severity"`
		Group          int      `json:"group"`
		Type           string   `json:"type"`
		Degradation    float64  `json:"degradation"`
		HoursToFailure *float64 `json:"hours_to_failure"`
	}
	snapshot := m.Snapshot()
	out := make([]jsonStatus, len(snapshot))
	for i, st := range snapshot {
		js := jsonStatus{
			DriveID:     st.DriveID,
			LastHour:    st.LastHour,
			Severity:    st.Severity.String(),
			Group:       st.Group,
			Type:        st.Type.String(),
			Degradation: st.Degradation,
		}
		if !math.IsInf(st.HoursToFailure, 1) {
			ttf := st.HoursToFailure
			js.HoursToFailure = &ttf
		}
		out[i] = js
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("monitor: encoding snapshot: %w", err)
	}
	return nil
}
