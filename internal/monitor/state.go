package monitor

import (
	"fmt"

	"disksig/internal/smart"
)

// DriveState is the serializable per-drive state of a monitor: the
// smoothing windows and severity for tracked drives, plus the drive's
// quality-ledger contribution. Drives whose every record was
// quarantined have a ledger but Tracked is false — restoring them must
// not make them count as tracked.
type DriveState struct {
	// Tracked reports whether the drive has monitor state (smoothing
	// windows, severity); false for quarantine-only drives.
	Tracked bool
	// Class is the drive's device class. The zero value is HDD, so
	// snapshots that predate device classes restore as HDD drives.
	Class    smart.DeviceClass
	LastHour int
	Seen     bool
	Severity Severity
	// Recent holds the last Smoothing raw scores per group model.
	Recent [][]float64
	// Ledger is the drive's contribution to the quality report.
	Ledger DriveLedger
}

// ExportDrives deep-copies the per-drive state of every drive the
// monitor knows — tracked or quarantine-only. The result is
// serialization-ready: the caller owns it, and re-importing it into a
// fresh monitor reproduces the original state exactly.
func (m *Monitor) ExportDrives() map[int]DriveState {
	out := make(map[int]DriveState, len(m.ledgers))
	for id, led := range m.ledgers {
		out[id] = DriveState{Ledger: led.clone()}
	}
	for id, st := range m.drives {
		ds := out[id]
		ds.Tracked = true
		ds.Class = st.class
		ds.LastHour = st.lastHour
		ds.Seen = st.seen
		ds.Severity = st.severity
		ds.Recent = make([][]float64, len(st.recent))
		for gi, w := range st.recent {
			ds.Recent[gi] = append([]float64(nil), w...)
		}
		out[id] = ds
	}
	return out
}

// ImportDrive installs one exported drive state into a monitor built
// with the same models and config. The state is validated first — a
// corrupted snapshot yields an error, never an out-of-range index or a
// smoothing window wider than the configuration allows. The drive's
// ledger is re-added to the monitor-wide quality report, so restored
// accounting sums back up and a later Forget releases it cleanly.
func (m *Monitor) ImportDrive(driveID int, st DriveState) error {
	if _, ok := m.drives[driveID]; ok {
		return fmt.Errorf("monitor: drive %d already tracked", driveID)
	}
	if _, ok := m.ledgers[driveID]; ok {
		return fmt.Errorf("monitor: drive %d already has a ledger", driveID)
	}
	if st.Ledger.RowsRead < 0 || st.Ledger.RowsQuarantined < 0 || st.Ledger.RowsQuarantined > st.Ledger.RowsRead {
		return fmt.Errorf("monitor: drive %d ledger rows invalid (%d read, %d quarantined)",
			driveID, st.Ledger.RowsRead, st.Ledger.RowsQuarantined)
	}
	for k, n := range st.Ledger.ByKind {
		if !k.Valid() || n < 0 {
			return fmt.Errorf("monitor: drive %d ledger has invalid kind %d count %d", driveID, int(k), n)
		}
	}
	for f, n := range st.Ledger.ByField {
		if f == "" || n < 0 {
			return fmt.Errorf("monitor: drive %d ledger has invalid field count %q=%d", driveID, f, n)
		}
	}
	if st.Tracked {
		if !st.Class.Valid() || m.classModels[st.Class] == 0 {
			return fmt.Errorf("monitor: drive %d has class %v, which this monitor has no models for", driveID, st.Class)
		}
		if st.Severity < Healthy || st.Severity > Critical {
			return fmt.Errorf("monitor: drive %d has invalid severity %d", driveID, int(st.Severity))
		}
		if len(st.Recent) != len(m.models) {
			return fmt.Errorf("monitor: drive %d has %d score windows, monitor has %d models",
				driveID, len(st.Recent), len(m.models))
		}
		for gi, w := range st.Recent {
			if len(w) > m.cfg.Smoothing {
				return fmt.Errorf("monitor: drive %d group window %d has %d scores, smoothing cap is %d",
					driveID, gi, len(w), m.cfg.Smoothing)
			}
		}
	}

	led := st.Ledger.clone()
	m.ledgers[driveID] = &led
	m.quality.AddRows(led.RowsRead, led.RowsQuarantined, 0)
	for k, n := range led.ByKind {
		m.quality.ByKind[k] += n
	}
	for f, n := range led.ByField {
		if m.quality.ByField == nil {
			m.quality.ByField = map[string]int{}
		}
		m.quality.ByField[f] += n
	}
	if st.Tracked {
		recent := make([][]float64, len(st.Recent))
		for gi, w := range st.Recent {
			recent[gi] = append([]float64(nil), w...)
		}
		m.drives[driveID] = &driveState{
			class:    st.Class,
			lastHour: st.LastHour,
			seen:     st.Seen,
			severity: st.Severity,
			recent:   recent,
		}
	}
	return nil
}
