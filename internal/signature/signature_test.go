package signature

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"disksig/internal/regression"
	"disksig/internal/smart"
)

// syntheticCurve builds a distance curve with a plateau at level followed
// by a polynomial descent to zero over the last d hours.
func syntheticCurve(total, d int, level float64, order int) []float64 {
	curve := make([]float64, total)
	for i := range curve {
		t := total - 1 - i // hours before failure
		if t <= d {
			x := float64(t) / float64(d)
			switch order {
			case 1:
				curve[i] = level * x
			case 2:
				curve[i] = level * x * x
			default:
				curve[i] = level * x * x * x
			}
		} else {
			curve[i] = level
		}
	}
	return curve
}

func TestExtractWindowCleanRamp(t *testing.T) {
	curve := syntheticCurve(100, 20, 2.0, 1)
	w, err := ExtractWindow(curve, 0.02, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// Plateau trimming shaves ~trim of the window: expect d in [18, 20].
	if w.D < 18 || w.D > 20 {
		t.Errorf("window D = %d, want ~20", w.D)
	}
	if w.Curve[len(w.Curve)-1] != 0 {
		t.Error("window must end at the failure record")
	}
	times := w.WindowTimes()
	if times[0] != float64(w.D) || times[len(times)-1] != 0 {
		t.Errorf("times = %v", times)
	}
	if len(w.WindowCurve()) != w.D+1 {
		t.Errorf("window curve length = %d, want %d", len(w.WindowCurve()), w.D+1)
	}
}

func TestExtractWindowStopsAtBump(t *testing.T) {
	// A dip (bump episode) 30 hours before failure must bound the window
	// even though the plateau continues beyond it.
	curve := syntheticCurve(200, 15, 2.0, 2)
	for i := 200 - 1 - 40; i < 200-1-25; i++ {
		curve[i] = 0.8 // transient dip well below the plateau
	}
	w, err := ExtractWindow(curve, 0.02, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if w.D > 25 {
		t.Errorf("window D = %d, should not extend past the dip at t=25", w.D)
	}
	if w.D < 13 {
		t.Errorf("window D = %d, should cover most of the 15-hour ramp", w.D)
	}
}

func TestExtractWindowPlateauTrimmed(t *testing.T) {
	// Without any dips, the monotone-with-tolerance walk would reach the
	// profile head; the plateau trim must still isolate the final ramp.
	curve := syntheticCurve(480, 377, 1.5, 1)
	w, err := ExtractWindow(curve, 0.02, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if w.D < 350 || w.D > 380 {
		t.Errorf("window D = %d, want ~370 (377 generated)", w.D)
	}
}

func TestExtractWindowErrorsAndDegenerate(t *testing.T) {
	if _, err := ExtractWindow([]float64{0}, 0.02, 0.02); err == nil {
		t.Error("expected error for single-point curve")
	}
	// A flat-zero curve degenerates to a minimal 1-hour window.
	w, err := ExtractWindow([]float64{0, 0, 0}, 0.02, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if w.D != 1 {
		t.Errorf("degenerate window D = %d, want 1", w.D)
	}
}

// Property: the window always ends at the last record and D >= 1.
func TestExtractWindowBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		curve := make([]float64, n)
		for i := range curve {
			curve[i] = rng.Float64() * 3
		}
		curve[n-1] = 0
		w, err := ExtractWindow(curve, 0.02, 0.02)
		if err != nil {
			return false
		}
		return w.D >= 1 && w.Start >= 0 && w.Start+w.D == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// profileWithSignature builds a normalized profile whose every attribute
// ramps toward the failure record with the given polynomial order over the
// final d hours.
func profileWithSignature(id, total, d, order int, noise float64, rng *rand.Rand) *smart.Profile {
	p := &smart.Profile{DriveID: id, Failed: true}
	for h := 0; h < total; h++ {
		t := total - 1 - h
		var sev float64
		if t <= d {
			x := float64(t) / float64(d)
			switch order {
			case 1:
				sev = 1 - x
			case 2:
				sev = 1 - x*x
			default:
				sev = 1 - x*x*x
			}
		}
		var v smart.Values
		for a := range v {
			v[a] = -0.5 + sev*0.8
			if noise > 0 && t > d {
				v[a] += rng.NormFloat64() * noise
			}
		}
		p.Records = append(p.Records, smart.Record{Hour: h, Values: v})
	}
	return p
}

func TestDeriveSelectsGeneratingForm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		order int
		d     int
		want  regression.SignatureForm
	}{
		{1, 377, regression.FormLinear},
		{2, 4, regression.FormQuadratic},
		{3, 12, regression.FormCubic},
	}
	for _, c := range cases {
		p := profileWithSignature(1, 480, c.d, c.order, 0.002, rng)
		sig, err := Derive(p, Options{})
		if err != nil {
			t.Fatalf("order %d: %v", c.order, err)
		}
		if sig.Best != c.want {
			t.Errorf("order %d: selected %v, want %v (D=%d, RMSE=%v)",
				c.order, sig.Best, c.want, sig.Window.D, sig.BestRMSE)
		}
		if sig.BestRMSE > 0.1 {
			t.Errorf("order %d: RMSE = %v", c.order, sig.BestRMSE)
		}
		if math.Abs(float64(sig.Window.D-c.d)) > float64(c.d)/8+1 {
			t.Errorf("order %d: window D = %d, want ~%d", c.order, sig.Window.D, c.d)
		}
		if len(sig.FormFits) != 3 {
			t.Errorf("form fits = %d", len(sig.FormFits))
		}
		if len(sig.FreeFits) == 0 {
			t.Error("expected free polynomial fits")
		}
	}
}

func TestDeriveRejectsGoodDrive(t *testing.T) {
	p := &smart.Profile{DriveID: 1, Failed: false, Records: []smart.Record{{}, {}}}
	if _, err := Derive(p, Options{}); err == nil {
		t.Fatal("expected error for good drive")
	}
}

func TestDeriveAttrSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := profileWithSignature(1, 100, 10, 2, 0.002, rng)
	sig, err := Derive(p, Options{Attrs: []smart.Attr{smart.RRER, smart.RUE}})
	if err != nil {
		t.Fatal(err)
	}
	if sig.Best != regression.FormQuadratic {
		t.Errorf("subset-derived form = %v", sig.Best)
	}
}

func TestDeriveGroupMajority(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var profiles []*smart.Profile
	for i := 0; i < 10; i++ {
		profiles = append(profiles, profileWithSignature(i, 480, 8+rng.Intn(5), 2, 0.002, rng))
	}
	g, err := DeriveGroup(profiles, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.MajorityForm != regression.FormQuadratic {
		t.Errorf("majority form = %v, want quadratic (votes %v)", g.MajorityForm, g.FormVotes)
	}
	if len(g.Signatures) != 10 {
		t.Errorf("signatures = %d", len(g.Signatures))
	}
	if g.MinD > g.MedianD || g.MedianD > g.MaxD {
		t.Errorf("window summary out of order: %d/%d/%d", g.MinD, g.MedianD, g.MaxD)
	}
	if g.MinD < 6 || g.MaxD > 14 {
		t.Errorf("window range [%d, %d], want within [6, 14]", g.MinD, g.MaxD)
	}
}

func TestDeriveGroupEmpty(t *testing.T) {
	if _, err := DeriveGroup(nil, Options{}); err == nil {
		t.Error("expected error for empty group")
	}
	bad := []*smart.Profile{{DriveID: 1, Failed: true, Records: []smart.Record{{}}}}
	if _, err := DeriveGroup(bad, Options{}); err == nil {
		t.Error("expected error when no profile yields a signature")
	}
}
