// Package signature implements Sec. IV-C of the paper: extraction of the
// degradation window (the final stretch of a failed drive's profile where
// the distance to the failure record changes monotonically), the [-1, 0]
// degradation normalization, and the automated derivation tool that fits
// free polynomials and the fixed signature forms and selects the best
// model by RMSE.
package signature

import (
	"fmt"

	"disksig/internal/distance"
	"disksig/internal/regression"
	"disksig/internal/smart"
)

// Options configures signature derivation.
type Options struct {
	// Metric measures record dissimilarity; nil means Euclidean.
	Metric distance.Metric
	// Attrs restricts the distance to a subset of attributes; nil means
	// all 12.
	Attrs []smart.Attr
	// Tol is the relative tolerance (fraction of the curve maximum) for
	// accepting small non-monotonic jitter during window extraction;
	// <= 0 means 0.05 (measurement noise near the failure floor is a few
	// percent of the curve scale, while real pre-window dips are much
	// deeper).
	Tol float64
	// PlateauTrim is the relative level threshold used to place the
	// window start: the window begins at the latest record whose distance
	// reaches (1-PlateauTrim) of the estimated pre-window level; <= 0
	// means 0.02 for plateau-free curves (a floor of 0.10 applies when a
	// plateau precedes the window, since plateau noise sits a few percent
	// under its own peak).
	PlateauTrim float64
	// MaxOrder bounds the free polynomial fits (the paper's tool makes
	// this configurable); <= 0 means 3.
	MaxOrder int
}

func (o Options) withDefaults() Options {
	if o.Metric == nil {
		o.Metric = distance.Euclidean{}
	}
	if o.Tol <= 0 {
		o.Tol = 0.05
	}
	if o.PlateauTrim <= 0 {
		o.PlateauTrim = 0.02
	}
	if o.MaxOrder <= 0 {
		o.MaxOrder = 3
	}
	return o
}

// Window is an extracted degradation window.
type Window struct {
	// Start is the index of the first record inside the window.
	Start int
	// D is the window size in hours (samples from Start to the failure
	// record, exclusive of Start's own hour: D = lastIndex - Start).
	D int
	// Curve is the distance-to-failure series of the whole profile.
	Curve []float64
}

// ExtractWindow finds the degradation window of a distance-to-failure
// curve: starting from the failure record (last element, distance zero) it
// walks backwards while the distance keeps increasing (within tol of the
// curve maximum as jitter allowance), then places the window start at the
// latest record whose distance reaches (1-trim) of the pre-window level.
// The returned start index is in [0, len(curve)-1).
func ExtractWindow(curve []float64, tol, trim float64) (Window, error) {
	n := len(curve)
	if n < 2 {
		return Window{}, fmt.Errorf("signature: curve with %d points has no window", n)
	}
	// Boundary detection runs on a median-of-3 smoothed copy so isolated
	// measurement spikes neither stop the walk early nor inflate the
	// plateau maximum; the window itself keeps the raw distances.
	smoothed := median3(curve)
	var curveMax float64
	for _, v := range smoothed {
		if v > curveMax {
			curveMax = v
		}
	}
	absTol := tol * curveMax
	// Walk backwards while monotone (distance non-decreasing as we move
	// away from the failure). The tolerance bounds the drop below the
	// running maximum rather than per-step changes, so a gradual decline
	// (a transient pre-window episode) stops the walk even when every
	// individual step is small.
	start := n - 1
	runMax := smoothed[start]
	for start > 0 && smoothed[start-1] >= runMax-absTol {
		start--
		if smoothed[start] > runMax {
			runMax = smoothed[start]
		}
	}
	// Estimate the level the curve rises to. When the walk stopped inside
	// the profile, the samples just before the stop belong to the flat
	// pre-window plateau (or to a transient dip, which the max ignores),
	// so they estimate the plateau level; when the walk reached the
	// profile head there is no plateau and the window maximum itself is
	// the level. The window start is then the latest record whose
	// distance reaches (1-trim) of that level — a level-crossing boundary
	// that leaves the in-window polynomial shape intact.
	var level float64
	if start > 0 {
		lo := start - 24
		if lo < 0 {
			lo = 0
		}
		for i := lo; i <= start; i++ {
			if smoothed[i] > level {
				level = smoothed[i]
			}
		}
		// Deeper trim when a plateau exists: plateau noise sits a few
		// percent under its own peak.
		if trim < 0.10 {
			trim = 0.10
		}
	} else {
		for i := start; i < n; i++ {
			if smoothed[i] > level {
				level = smoothed[i]
			}
		}
	}
	if level > 0 {
		threshold := (1 - trim) * level
		for i := n - 1; i >= start; i-- {
			if smoothed[i] >= threshold {
				start = i
				break
			}
		}
	} else {
		// A flat-zero curve carries no degradation information; keep the
		// minimal window.
		start = n - 2
	}
	if start >= n-1 {
		// Degenerate: no rise at all before the failure record; keep a
		// minimal 1-hour window.
		start = n - 2
	}
	return Window{Start: start, D: n - 1 - start, Curve: curve}, nil
}

// WindowTimes returns the hours-before-failure value of each record in the
// window, chronologically (D, D-1, ..., 0).
func (w Window) WindowTimes() []float64 {
	out := make([]float64, w.D+1)
	for i := range out {
		out[i] = float64(w.D - i)
	}
	return out
}

// WindowCurve returns the distance values inside the window.
func (w Window) WindowCurve() []float64 {
	return w.Curve[w.Start:]
}

// Signature is the derived degradation signature of one failed drive.
type Signature struct {
	// DriveID identifies the drive.
	DriveID int
	// Window is the extracted degradation window; Window.D is the
	// signature's d parameter.
	Window Window
	// Times are hours before failure for each window record.
	Times []float64
	// Degradation is the [-1, 0]-normalized distance inside the window.
	Degradation []float64
	// FreeFits are the order-1..MaxOrder free polynomial fits (Fig. 8).
	FreeFits []regression.FitReport
	// FormFits are the fixed-form fits compared by RMSE.
	FormFits []regression.FormFit
	// Best is the selected fixed form (lowest RMSE) — the drive's
	// degradation signature.
	Best regression.SignatureForm
	// BestRMSE is the selected form's RMSE.
	BestRMSE float64
}

// Derive runs the automated signature tool on one failed drive's
// normalized profile: compute the distance-to-failure curve, extract the
// degradation window, normalize the degradation to [-1, 0], fit free
// polynomials and the fixed forms, and select the lowest-RMSE fixed form.
func Derive(p *smart.Profile, opts Options) (*Signature, error) {
	if !p.Failed {
		return nil, fmt.Errorf("signature: drive %d did not fail", p.DriveID)
	}
	opts = opts.withDefaults()
	var curve []float64
	if opts.Attrs == nil {
		curve = distance.ToFailureCurve(p, opts.Metric)
	} else {
		curve = distance.ToFailureCurveAttrs(p, opts.Metric, opts.Attrs)
	}
	w, err := ExtractWindow(curve, opts.Tol, opts.PlateauTrim)
	if err != nil {
		return nil, fmt.Errorf("signature: drive %d: %w", p.DriveID, err)
	}
	sig := &Signature{
		DriveID:     p.DriveID,
		Window:      w,
		Times:       w.WindowTimes(),
		Degradation: distance.NormalizeDegradation(w.WindowCurve()),
	}
	// Free polynomial fits (best-effort: tiny windows support fewer
	// orders).
	if fits, err := regression.FitOrders(sig.Times, sig.Degradation, opts.MaxOrder); err == nil {
		sig.FreeFits = fits
	}
	formFits, best, err := regression.SelectForm(sig.Times, sig.Degradation, float64(w.D))
	if err != nil {
		return nil, fmt.Errorf("signature: drive %d: %w", p.DriveID, err)
	}
	sig.FormFits = formFits
	sig.Best = formFits[best].Form
	sig.BestRMSE = formFits[best].RMSE
	return sig, nil
}

// GroupSummary aggregates the signatures of one failure group.
type GroupSummary struct {
	// Signatures holds the per-drive results.
	Signatures []*Signature
	// FormVotes counts how many drives selected each fixed form.
	FormVotes map[regression.SignatureForm]int
	// MajorityForm is the form most drives selected — the group's
	// degradation signature.
	MajorityForm regression.SignatureForm
	// MinD, MedianD and MaxD summarize the window sizes.
	MinD, MedianD, MaxD int
}

// DeriveGroup derives signatures for every profile (normalized failed
// drives of one cluster) and aggregates them. Profiles whose derivation
// fails (e.g. single-record censored profiles) are skipped.
func DeriveGroup(profiles []*smart.Profile, opts Options) (*GroupSummary, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("signature: empty group")
	}
	g := &GroupSummary{FormVotes: map[regression.SignatureForm]int{}}
	var ds []int
	for _, p := range profiles {
		sig, err := Derive(p, opts)
		if err != nil {
			continue
		}
		g.Signatures = append(g.Signatures, sig)
		g.FormVotes[sig.Best]++
		ds = append(ds, sig.Window.D)
	}
	if len(g.Signatures) == 0 {
		return nil, fmt.Errorf("signature: no profile in the group yielded a signature")
	}
	bestVotes := -1
	for _, f := range regression.AllForms() {
		if v := g.FormVotes[f]; v > bestVotes {
			g.MajorityForm, bestVotes = f, v
		}
	}
	// Window-size summary.
	sortInts(ds)
	g.MinD, g.MedianD, g.MaxD = ds[0], ds[len(ds)/2], ds[len(ds)-1]
	return g, nil
}

// median3 returns the running median-of-3 of xs (endpoints copied).
func median3(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	for i := 1; i < len(xs)-1; i++ {
		a, b, c := xs[i-1], xs[i], xs[i+1]
		// Median of three without sorting.
		switch {
		case (a <= b && b <= c) || (c <= b && b <= a):
			out[i] = b
		case (b <= a && a <= c) || (c <= a && a <= b):
			out[i] = a
		default:
			out[i] = c
		}
	}
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
