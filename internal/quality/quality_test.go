package quality

import (
	"errors"
	"math"
	"strings"
	"testing"

	"disksig/internal/smart"
)

func cleanValues() smart.Values {
	var v smart.Values
	for a := 0; a < int(smart.NumAttrs); a++ {
		if smart.InfoOf(smart.Attr(a)).ValueKind == smart.HealthValue {
			v[a] = 100
		} else {
			v[a] = 5
		}
	}
	return v
}

func profile(hours ...int) *smart.Profile {
	p := &smart.Profile{DriveID: 42}
	for _, h := range hours {
		p.Records = append(p.Records, smart.Record{Hour: h, Values: cleanValues()})
	}
	return p
}

func TestParsePolicy(t *testing.T) {
	for _, want := range []Policy{Strict, Lenient, Repair} {
		got, err := ParsePolicy(want.String())
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", want.String(), got, err)
		}
	}
	if _, err := ParsePolicy("yolo"); err == nil {
		t.Error("unknown policy should error")
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy should render")
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d unnamed: %q", int(k), s)
		}
	}
}

func TestCheckValues(t *testing.T) {
	if got := CheckValues(cleanValues()); got != nil {
		t.Errorf("clean values flagged: %v", got)
	}
	v := cleanValues()
	v[smart.RRER] = math.NaN()
	v[smart.POH] = math.Inf(1)
	v[smart.TC] = -3
	issues := CheckValues(v)
	if len(issues) != 3 {
		t.Fatalf("issues = %v", issues)
	}
	kinds := map[Kind]int{}
	for _, iss := range issues {
		kinds[iss.Kind]++
		if iss.Error() == "" {
			t.Error("empty issue rendering")
		}
	}
	if kinds[NonFinite] != 2 || kinds[OutOfRange] != 1 {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestRepairValues(t *testing.T) {
	prev := cleanValues()
	v := cleanValues()
	v[smart.RRER] = math.NaN()
	v[smart.TC] = 1000 // health-value attr: clamps to 255
	v[smart.RSC] = -7
	repaired, n := RepairValues(v, prev)
	if n != 3 {
		t.Errorf("repaired %d fields, want 3", n)
	}
	if repaired[smart.RRER] != prev[smart.RRER] {
		t.Error("NaN not carried forward")
	}
	if _, hi := smart.Bounds(smart.TC); repaired[smart.TC] != hi {
		t.Errorf("over-range not clamped: %v", repaired[smart.TC])
	}
	if lo, _ := smart.Bounds(smart.RSC); repaired[smart.RSC] != lo {
		t.Errorf("under-range not clamped: %v", repaired[smart.RSC])
	}
	if got := CheckValues(repaired); got != nil {
		t.Errorf("repair left defects: %v", got)
	}
}

func TestCheckProfileTimestamps(t *testing.T) {
	if got := CheckProfile(profile(0, 1, 2), Config{}); got != nil {
		t.Errorf("clean profile flagged: %v", got)
	}
	issues := CheckProfile(profile(0, 2, 2, 1), Config{})
	kinds := map[Kind]int{}
	for _, iss := range issues {
		kinds[iss.Kind]++
		if iss.Drive != "42" {
			t.Errorf("issue not labeled with drive: %+v", iss)
		}
	}
	if kinds[DuplicateTimestamp] != 1 || kinds[OutOfOrderTimestamp] != 1 {
		t.Errorf("kinds = %v", kinds)
	}
	short := CheckProfile(profile(0), Config{})
	if len(short) != 1 || short[0].Kind != ShortProfile {
		t.Errorf("short profile issues = %v", short)
	}
}

func TestSanitizeProfileCleanIsShared(t *testing.T) {
	p := profile(0, 1, 2)
	var rep Report
	c, err := SanitizeProfile(p, Config{}, &rep)
	if err != nil || c != p {
		t.Errorf("clean profile copied or errored: %v %v", c == p, err)
	}
	if rep.RowsRead != 3 || rep.RowsQuarantined != 0 || rep.DrivesRead != 1 {
		t.Errorf("report = %+v", rep)
	}
}

func TestSanitizeProfileLenient(t *testing.T) {
	p := profile(0, 3, 1, 1, 2)
	p.Records[1].Values[smart.RRER] = math.NaN() // hour 3, defective
	var rep Report
	c, err := SanitizeProfile(p, Config{}, &rep)
	if err != nil {
		t.Fatal(err)
	}
	// Hours sort to 0,1,1,2,3; the first hour-1 duplicate is superseded
	// and the NaN record quarantined: hours 0,1,2 remain.
	want := []int{0, 1, 2}
	if len(c.Records) != len(want) {
		t.Fatalf("kept %d records, want %d", len(c.Records), len(want))
	}
	for i, r := range c.Records {
		if r.Hour != want[i] {
			t.Errorf("record %d hour = %d, want %d", i, r.Hour, want[i])
		}
	}
	if rep.RowsQuarantined != 2 || rep.RowsRead != 5 {
		t.Errorf("report = %+v", rep)
	}
	if rep.RowsRead != rep.RowsKept()+rep.RowsQuarantined+rep.RowsDropped {
		t.Error("accounting broken")
	}
	// The input profile is untouched.
	if len(p.Records) != 5 || !math.IsNaN(p.Records[1].Values[smart.RRER]) {
		t.Error("input profile modified")
	}
}

func TestSanitizeProfileRepair(t *testing.T) {
	p := profile(0, 1, 2)
	p.Records[1].Values[smart.RRER] = math.NaN()
	var rep Report
	c, err := SanitizeProfile(p, Config{Policy: Repair}, &rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Records) != 3 {
		t.Fatalf("repair dropped records: %d", len(c.Records))
	}
	// Carried forward from hour 0.
	if got := c.Records[1].Values[smart.RRER]; got != p.Records[0].Values[smart.RRER] {
		t.Errorf("NaN repaired to %v", got)
	}
	if rep.FieldsRepaired != 1 || rep.RowsQuarantined != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestSanitizeProfileStrict(t *testing.T) {
	p := profile(0, 1, 2)
	p.Records[2].Values[smart.POH] = math.Inf(-1)
	var rep Report
	_, err := SanitizeProfile(p, Config{Policy: Strict}, &rep)
	var iss Issue
	if !errors.As(err, &iss) || iss.Kind != NonFinite {
		t.Errorf("strict error = %v", err)
	}
}

func TestSanitizeProfileDropsShort(t *testing.T) {
	p := profile(0, 1)
	p.Records[1].Values[smart.RRER] = math.NaN()
	var rep Report
	c, err := SanitizeProfile(p, Config{}, &rep)
	if err != nil || c != nil {
		t.Fatalf("short drive survived: %v %v", c, err)
	}
	if rep.DrivesDropped() != 1 || len(rep.Dropped) != 1 || rep.Dropped[0].Drive != "42" {
		t.Errorf("dropped = %+v", rep.Dropped)
	}
	if rep.RowsRead != rep.RowsKept()+rep.RowsQuarantined+rep.RowsDropped {
		t.Errorf("accounting: %+v", rep)
	}
}

func TestSanitizeProfilesBudget(t *testing.T) {
	var ps []*smart.Profile
	for i := 0; i < 10; i++ {
		p := profile(0, 1, 2)
		p.Records[0].Values[smart.RRER] = math.NaN()
		ps = append(ps, p)
	}
	var rep Report
	_, err := SanitizeProfiles(ps, Config{MaxBadRows: 3}, &rep)
	if err == nil {
		t.Fatal("budget of 3 bad rows not enforced over 10 defects")
	}
	if !strings.Contains(err.Error(), "max-bad-rows") {
		t.Errorf("budget error = %v", err)
	}
}

func TestReportMergeAndSummary(t *testing.T) {
	var a, b Report
	a.Note(Issue{Kind: NonFinite, Field: "x"}, Config{})
	a.AddRows(10, 1, 0)
	a.AddDrives(2)
	b.Note(Issue{Kind: BadDate}, Config{})
	b.AddRows(5, 1, 2)
	b.DropDrive("d", 3, 1, "too short")
	a.Merge(&b)
	if a.RowsRead != 15 || a.RowsQuarantined != 2 || a.FieldsRepaired != 2 || a.RowsDropped != 1 {
		t.Errorf("merged = %+v", a)
	}
	if a.Count(NonFinite) != 1 || a.Count(BadDate) != 1 {
		t.Error("kind counters not merged")
	}
	if a.Clean() {
		t.Error("dirty report claims clean")
	}
	s := a.Summary()
	for _, want := range []string{"non-finite", "bad-date", "dropped"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	var empty Report
	if !empty.Clean() {
		t.Error("empty report not clean")
	}
	if empty.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestReportExampleCap(t *testing.T) {
	var rep Report
	cfg := Config{MaxExamples: 2}.WithDefaults()
	for i := 0; i < 5; i++ {
		rep.Note(Issue{Kind: BadField, Line: i + 1}, cfg)
	}
	if len(rep.Examples) != 2 {
		t.Errorf("examples = %d, want 2", len(rep.Examples))
	}
	if rep.Count(BadField) != 5 {
		t.Error("counter must stay exact past the example cap")
	}
	if !strings.Contains(rep.Summary(), "more issues") {
		t.Errorf("summary should note truncation:\n%s", rep.Summary())
	}
}
