package quality

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strings"
)

// DroppedDrive records one drive removed from the dataset and why.
type DroppedDrive struct {
	// Drive is the serial number or numeric drive ID.
	Drive string
	// Records is the drive's original record count.
	Records int
	// Reason explains the drop, e.g. "1 clean records, need >= 2".
	Reason string
}

// Report is the quarantine ledger of one ingestion or sanitization pass.
// Counters are exact; Examples retains the first Config.MaxExamples
// issues verbatim for diagnosis. The accounting invariant is
//
//	RowsRead = RowsKept() + RowsQuarantined + RowsDropped,
//
// where RowsDropped counts the clean rows lost because their drive was
// dropped. A zero Report is ready to use.
type Report struct {
	// RowsRead is the number of data rows (records) examined.
	RowsRead int
	// RowsQuarantined is the number of rows rejected for defects.
	RowsQuarantined int
	// RowsDropped is the number of otherwise-clean rows discarded
	// because their drive fell below MinRecords.
	RowsDropped int
	// FieldsRepaired is the number of individual field values fixed
	// under the Repair policy (clamped or carried forward).
	FieldsRepaired int
	// DrivesRead is the number of distinct drives examined (set by
	// readers; profile-level sanitization counts one per profile).
	DrivesRead int
	// ByKind counts issues per taxonomy kind.
	ByKind [numKinds]int
	// ByField counts issues per column/attribute name.
	ByField map[string]int
	// Dropped lists every dropped drive with its reason.
	Dropped []DroppedDrive
	// Examples holds the first few issues verbatim.
	Examples []Issue

	truncatedExamples int
}

// RowsKept returns the number of rows that survived into the dataset.
func (r *Report) RowsKept() int { return r.RowsRead - r.RowsQuarantined - r.RowsDropped }

// DrivesDropped returns the number of dropped drives.
func (r *Report) DrivesDropped() int { return len(r.Dropped) }

// Clean reports whether the pass found no defects at all.
func (r *Report) Clean() bool {
	if r.RowsQuarantined != 0 || r.RowsDropped != 0 || r.FieldsRepaired != 0 || len(r.Dropped) != 0 {
		return false
	}
	for _, n := range r.ByKind {
		if n != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of issues of one kind.
func (r *Report) Count(k Kind) int {
	if k < 0 || k >= numKinds {
		return 0
	}
	return r.ByKind[k]
}

// Note records one issue in the counters and, capacity permitting, the
// examples.
func (r *Report) Note(iss Issue, cfg Config) {
	r.ByKind[iss.Kind]++
	if iss.Field != "" {
		if r.ByField == nil {
			r.ByField = map[string]int{}
		}
		r.ByField[iss.Field]++
	}
	if len(r.Examples) < cfg.WithDefaults().MaxExamples {
		r.Examples = append(r.Examples, iss)
	} else {
		r.truncatedExamples++
	}
}

// AddRows accounts for one batch of examined rows.
func (r *Report) AddRows(read, quarantined, repairedFields int) {
	r.RowsRead += read
	r.RowsQuarantined += quarantined
	r.FieldsRepaired += repairedFields
}

// AddDrives accounts for examined drives.
func (r *Report) AddDrives(n int) { r.DrivesRead += n }

// DropDrive records a dropped drive. records is the drive's original
// record count; surviving is how many of its rows were still clean when
// the drive was dropped (they move from kept to dropped — the
// quarantined share was already accounted by addRows).
func (r *Report) DropDrive(drive string, records, surviving int, reason string) {
	r.RowsDropped += surviving
	r.Dropped = append(r.Dropped, DroppedDrive{Drive: drive, Records: records, Reason: reason})
}

// CheckBudget returns an error once the quarantined-row count exceeds
// cfg.MaxBadRows (> 0), signaling that the input is too dirty to trust.
func (r *Report) CheckBudget(cfg Config) error {
	if cfg.MaxBadRows > 0 && r.RowsQuarantined > cfg.MaxBadRows {
		return fmt.Errorf("quality: %d rows quarantined, exceeding the -max-bad-rows budget of %d: input too dirty",
			r.RowsQuarantined, cfg.MaxBadRows)
	}
	return nil
}

// Merge folds another report into r (counters add, examples concatenate
// up to the default cap).
func (r *Report) Merge(other *Report) {
	if other == nil {
		return
	}
	r.RowsRead += other.RowsRead
	r.RowsQuarantined += other.RowsQuarantined
	r.RowsDropped += other.RowsDropped
	r.FieldsRepaired += other.FieldsRepaired
	r.DrivesRead += other.DrivesRead
	for k, n := range other.ByKind {
		r.ByKind[k] += n
	}
	for f, n := range other.ByField {
		if r.ByField == nil {
			r.ByField = map[string]int{}
		}
		r.ByField[f] += n
	}
	r.Dropped = append(r.Dropped, other.Dropped...)
	cap := Config{}.WithDefaults().MaxExamples
	for _, e := range other.Examples {
		if len(r.Examples) < cap {
			r.Examples = append(r.Examples, e)
		} else {
			r.truncatedExamples++
		}
	}
	r.truncatedExamples += other.truncatedExamples
}

// CountersEqual reports whether two ledgers agree on every exact
// counter (rows, drives, per-kind and per-field counts). Diagnostic
// fields — Examples, the truncated-example count, and the dropped-drive
// list — are best-effort and excluded, so a ledger reconstructed from
// per-drive contributions compares equal to the original it must add
// back up to.
func (r *Report) CountersEqual(other *Report) bool {
	if r.RowsRead != other.RowsRead || r.RowsQuarantined != other.RowsQuarantined ||
		r.RowsDropped != other.RowsDropped || r.FieldsRepaired != other.FieldsRepaired ||
		r.DrivesRead != other.DrivesRead || r.ByKind != other.ByKind {
		return false
	}
	for f, n := range r.ByField {
		if other.ByField[f] != n {
			return false
		}
	}
	for f, n := range other.ByField {
		if r.ByField[f] != n {
			return false
		}
	}
	return true
}

// StripDiagnostics clears the best-effort diagnostic fields (the
// verbatim examples and their truncation count), leaving only the exact
// counters. Restores and state comparisons use it: counters survive a
// snapshot/replay cycle bit-for-bit, examples need not.
func (r *Report) StripDiagnostics() {
	r.Examples = nil
	r.truncatedExamples = 0
}

// gobReport is the gob wire form of a Report: truncatedExamples is
// unexported and would otherwise be silently dropped in snapshots.
type gobReport struct {
	RowsRead          int
	RowsQuarantined   int
	RowsDropped       int
	FieldsRepaired    int
	DrivesRead        int
	ByKind            [numKinds]int
	ByField           map[string]int
	Dropped           []DroppedDrive
	Examples          []Issue
	TruncatedExamples int
}

// GobEncode implements gob.GobEncoder.
func (r *Report) GobEncode() ([]byte, error) {
	g := gobReport{
		RowsRead:          r.RowsRead,
		RowsQuarantined:   r.RowsQuarantined,
		RowsDropped:       r.RowsDropped,
		FieldsRepaired:    r.FieldsRepaired,
		DrivesRead:        r.DrivesRead,
		ByKind:            r.ByKind,
		ByField:           r.ByField,
		Dropped:           r.Dropped,
		Examples:          r.Examples,
		TruncatedExamples: r.truncatedExamples,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&g); err != nil {
		return nil, fmt.Errorf("quality: encoding report: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (r *Report) GobDecode(data []byte) error {
	var g gobReport
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return fmt.Errorf("quality: decoding report: %w", err)
	}
	*r = Report{
		RowsRead:          g.RowsRead,
		RowsQuarantined:   g.RowsQuarantined,
		RowsDropped:       g.RowsDropped,
		FieldsRepaired:    g.FieldsRepaired,
		DrivesRead:        g.DrivesRead,
		ByKind:            g.ByKind,
		ByField:           g.ByField,
		Dropped:           g.Dropped,
		Examples:          g.Examples,
		truncatedExamples: g.TruncatedExamples,
	}
	return nil
}

// Summary renders the report for CLI output. A clean report is a single
// line; a dirty one lists per-kind counts, the worst fields, and dropped
// drives.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "quality: %d rows read, %d kept, %d quarantined, %d dropped with drives",
		r.RowsRead, r.RowsKept(), r.RowsQuarantined, r.RowsDropped)
	if r.FieldsRepaired > 0 {
		fmt.Fprintf(&b, ", %d fields repaired", r.FieldsRepaired)
	}
	if len(r.Dropped) > 0 {
		fmt.Fprintf(&b, "; %d drives dropped", len(r.Dropped))
	}
	if r.Clean() {
		b.WriteString(" (clean)")
		return b.String()
	}
	var kinds []string
	for k, n := range r.ByKind {
		if n > 0 {
			kinds = append(kinds, fmt.Sprintf("%s=%d", Kind(k), n))
		}
	}
	if len(kinds) > 0 {
		b.WriteString("\n  issues: ")
		b.WriteString(strings.Join(kinds, " "))
	}
	if len(r.ByField) > 0 {
		fields := make([]string, 0, len(r.ByField))
		for f := range r.ByField {
			fields = append(fields, f)
		}
		sort.Slice(fields, func(i, j int) bool {
			if r.ByField[fields[i]] != r.ByField[fields[j]] {
				return r.ByField[fields[i]] > r.ByField[fields[j]]
			}
			return fields[i] < fields[j]
		})
		if len(fields) > 5 {
			fields = fields[:5]
		}
		parts := make([]string, len(fields))
		for i, f := range fields {
			parts[i] = fmt.Sprintf("%s=%d", f, r.ByField[f])
		}
		b.WriteString("\n  worst fields: ")
		b.WriteString(strings.Join(parts, " "))
	}
	for i, d := range r.Dropped {
		if i >= 5 {
			fmt.Fprintf(&b, "\n  ... and %d more dropped drives", len(r.Dropped)-i)
			break
		}
		fmt.Fprintf(&b, "\n  dropped drive %s (%d records): %s", d.Drive, d.Records, d.Reason)
	}
	if r.truncatedExamples > 0 {
		fmt.Fprintf(&b, "\n  ... and %d more issues beyond the example cap (counters are exact)", r.truncatedExamples)
	}
	return b.String()
}

// String is Summary.
func (r *Report) String() string { return r.Summary() }
