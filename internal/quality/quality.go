// Package quality is the data-quality layer of the pipeline: a typed
// taxonomy of telemetry defects (NaN/Inf fields, out-of-range values,
// non-monotone or duplicate timestamps, truncated rows, too-short
// profiles), three handling policies (Strict, Lenient, Repair), and a
// QuarantineReport that accounts for every row and drive the pipeline
// refused or fixed. Production disk telemetry is dirty — Backblaze-style
// dumps routinely contain garbage fields and truncated drives — so the
// ingestion path quarantines and counts bad data instead of aborting.
package quality

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"disksig/internal/smart"
)

// Policy selects how detected defects are handled.
type Policy int

const (
	// Lenient (the default) quarantines defective rows and drives,
	// counts them in the report, and keeps going with the clean rest.
	Lenient Policy = iota
	// Strict turns the first defect into an error; nothing is dropped
	// silently. Use it when the input is supposed to be pristine.
	Strict
	// Repair fixes what is mechanically fixable — clamps out-of-range
	// values, carries the previous value forward over NaN/Inf, sorts
	// out-of-order timestamps, keeps the latest duplicate — and
	// quarantines only what cannot be repaired.
	Repair
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Lenient:
		return "lenient"
	case Strict:
		return "strict"
	case Repair:
		return "repair"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses a policy name as accepted by the -quality CLI flag.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "lenient":
		return Lenient, nil
	case "strict":
		return Strict, nil
	case "repair":
		return Repair, nil
	}
	return 0, fmt.Errorf("quality: unknown policy %q (want strict, lenient or repair)", s)
}

// Kind classifies one defect in the taxonomy.
type Kind int

const (
	// BadField is an unparseable (non-numeric) field.
	BadField Kind = iota
	// NonFinite is a NaN or infinite attribute value.
	NonFinite
	// OutOfRange is a finite value outside the attribute's plausible
	// vendor-space bounds (smart.Bounds) — it would corrupt the Eq. (1)
	// normalization extrema.
	OutOfRange
	// BadDate is a row whose date field fails to parse.
	BadDate
	// BadFailureFlag is a failure field that is neither 0 nor 1.
	BadFailureFlag
	// ShortRow is a row with fewer fields than the header promises.
	ShortRow
	// MalformedRow is a row the CSV layer could not parse at all.
	MalformedRow
	// DuplicateTimestamp is a second record for an hour/date the drive
	// already reported.
	DuplicateTimestamp
	// OutOfOrderTimestamp is a record older than the drive's latest.
	OutOfOrderTimestamp
	// ShortProfile is a drive with fewer records than MinRecords.
	ShortProfile
	// TruncatedInput is a mid-stream EOF or unrecoverable read error;
	// rows already parsed are kept.
	TruncatedInput

	numKinds
)

// Valid reports whether k is a defined taxonomy kind. Deserialized
// ledgers must check it before indexing per-kind counters.
func (k Kind) Valid() bool { return k >= 0 && k < numKinds }

// String names the kind.
func (k Kind) String() string {
	switch k {
	case BadField:
		return "bad-field"
	case NonFinite:
		return "non-finite"
	case OutOfRange:
		return "out-of-range"
	case BadDate:
		return "bad-date"
	case BadFailureFlag:
		return "bad-failure-flag"
	case ShortRow:
		return "short-row"
	case MalformedRow:
		return "malformed-row"
	case DuplicateTimestamp:
		return "duplicate-timestamp"
	case OutOfOrderTimestamp:
		return "out-of-order-timestamp"
	case ShortProfile:
		return "short-profile"
	case TruncatedInput:
		return "truncated-input"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Issue is one detected defect. It implements error so Strict mode can
// surface it directly.
type Issue struct {
	Kind Kind
	// Drive identifies the affected drive (serial or "drive <id>"),
	// empty for input-level issues.
	Drive string
	// Line is the 1-based input line, 0 when not applicable.
	Line int
	// Field is the affected column or attribute name, empty when the
	// issue concerns a whole row or drive.
	Field string
	// Detail is a human-readable specific, e.g. the offending value.
	Detail string
}

// Error renders the issue.
func (i Issue) Error() string {
	var b strings.Builder
	b.WriteString("quality: ")
	b.WriteString(i.Kind.String())
	if i.Line > 0 {
		fmt.Fprintf(&b, " at line %d", i.Line)
	}
	if i.Drive != "" {
		fmt.Fprintf(&b, " (drive %s)", i.Drive)
	}
	if i.Field != "" {
		fmt.Fprintf(&b, " in %s", i.Field)
	}
	if i.Detail != "" {
		b.WriteString(": ")
		b.WriteString(i.Detail)
	}
	return b.String()
}

// Config parameterizes defect handling.
type Config struct {
	// Policy selects Strict, Lenient (zero value) or Repair.
	Policy Policy
	// MinRecords is the minimum profile length; shorter drives are
	// dropped with a recorded reason. <= 0 means 2 (a degradation
	// window needs at least two samples).
	MinRecords int
	// MaxBadRows aborts ingestion with an error once more than this
	// many rows have been quarantined — the input is too dirty to
	// trust. <= 0 means unlimited.
	MaxBadRows int
	// MaxExamples caps the verbatim issues retained in the report
	// (counters are always exact). <= 0 means 20.
	MaxExamples int
}

// WithDefaults resolves the zero values.
func (c Config) WithDefaults() Config {
	if c.MinRecords <= 0 {
		c.MinRecords = 2
	}
	if c.MaxExamples <= 0 {
		c.MaxExamples = 20
	}
	return c
}

// CheckValues returns the per-attribute defects of one record's values:
// NonFinite for NaN/Inf, OutOfRange for finite values outside
// smart.Bounds. A nil result means the values are clean.
func CheckValues(v smart.Values) []Issue {
	var issues []Issue
	for a := 0; a < int(smart.NumAttrs); a++ {
		x := v[a]
		switch {
		case math.IsNaN(x) || math.IsInf(x, 0):
			issues = append(issues, Issue{
				Kind:   NonFinite,
				Field:  smart.Attr(a).String(),
				Detail: fmt.Sprintf("value %v", x),
			})
		case !smart.InBounds(smart.Attr(a), x):
			lo, hi := smart.Bounds(smart.Attr(a))
			issues = append(issues, Issue{
				Kind:   OutOfRange,
				Field:  smart.Attr(a).String(),
				Detail: fmt.Sprintf("value %g outside [%g, %g]", x, lo, hi),
			})
		}
	}
	return issues
}

// RepairValues clamps out-of-range values into smart.Bounds and replaces
// non-finite values with the corresponding value of prev (the previous
// clean record, or the healthy default for the drive's first record). It
// returns the repaired values and the number of fields touched.
func RepairValues(v, prev smart.Values) (smart.Values, int) {
	repaired := 0
	for a := 0; a < int(smart.NumAttrs); a++ {
		x := v[a]
		if math.IsNaN(x) || math.IsInf(x, 0) {
			v[a] = prev[a]
			repaired++
			continue
		}
		lo, hi := smart.Bounds(smart.Attr(a))
		if x < lo {
			v[a] = lo
			repaired++
		} else if x > hi {
			v[a] = hi
			repaired++
		}
	}
	return v, repaired
}

// HealthyDefaults returns the values RepairValues falls back to when a
// drive's first record is defective: full vendor health, zero raw
// counters.
func HealthyDefaults() smart.Values {
	var v smart.Values
	for a := 0; a < int(smart.NumAttrs); a++ {
		if smart.InfoOf(smart.Attr(a)).ValueKind == smart.HealthValue {
			v[a] = 100
		}
	}
	return v
}

// CheckProfile returns the defects of one profile without modifying it:
// value defects per record, duplicate and out-of-order hours, and a too
// short profile. The profile's DriveID labels the issues.
func CheckProfile(p *smart.Profile, cfg Config) []Issue {
	cfg = cfg.WithDefaults()
	drive := fmt.Sprintf("%d", p.DriveID)
	var issues []Issue
	lastHour := math.MinInt
	for _, r := range p.Records {
		for _, iss := range CheckValues(r.Values) {
			iss.Drive = drive
			issues = append(issues, iss)
		}
		switch {
		case r.Hour == lastHour:
			issues = append(issues, Issue{
				Kind: DuplicateTimestamp, Drive: drive,
				Detail: fmt.Sprintf("hour %d repeated", r.Hour),
			})
		case r.Hour < lastHour:
			issues = append(issues, Issue{
				Kind: OutOfOrderTimestamp, Drive: drive,
				Detail: fmt.Sprintf("hour %d after hour %d", r.Hour, lastHour),
			})
		}
		if r.Hour > lastHour {
			lastHour = r.Hour
		}
	}
	if len(p.Records) < cfg.MinRecords {
		issues = append(issues, Issue{
			Kind: ShortProfile, Drive: drive,
			Detail: fmt.Sprintf("%d records, need >= %d", len(p.Records), cfg.MinRecords),
		})
	}
	return issues
}

// SanitizeProfile applies the policy to one profile and accounts for
// every change in rep. It returns the cleaned profile, or nil when the
// drive is dropped (too short after cleaning). A clean profile is
// returned unmodified (same pointer, no copy). Under Strict the first
// defect is returned as an error.
func SanitizeProfile(p *smart.Profile, cfg Config, rep *Report) (*smart.Profile, error) {
	cfg = cfg.WithDefaults()
	rep.AddDrives(1)
	issues := CheckProfile(p, cfg)
	if len(issues) == 0 {
		rep.AddRows(len(p.Records), 0, 0)
		return p, nil
	}
	if cfg.Policy == Strict {
		return nil, issues[0]
	}
	for _, iss := range issues {
		rep.Note(iss, cfg)
	}

	// Order records chronologically (stable, so the latest duplicate of
	// an hour stays last), then walk them once: dedup keep-latest and
	// either repair or quarantine defective values.
	recs := make([]smart.Record, len(p.Records))
	copy(recs, p.Records)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Hour < recs[j].Hour })

	prev := HealthyDefaults()
	clean := recs[:0]
	quarantined, repaired := 0, 0
	for _, r := range recs {
		if n := len(clean); n > 0 && clean[n-1].Hour == r.Hour {
			// Keep-latest: the newer sample replaces the older one, so
			// the earlier record is the quarantined duplicate.
			clean = clean[:n-1]
			quarantined++
		}
		if bad := CheckValues(r.Values); len(bad) > 0 {
			if cfg.Policy == Repair {
				var n int
				r.Values, n = RepairValues(r.Values, prev)
				repaired += n
			} else {
				quarantined++
				continue
			}
		}
		prev = r.Values
		clean = append(clean, r)
	}
	rep.AddRows(len(p.Records), quarantined, repaired)

	if len(clean) < cfg.MinRecords {
		rep.DropDrive(fmt.Sprintf("%d", p.DriveID), len(p.Records), len(clean),
			fmt.Sprintf("%d clean records, need >= %d", len(clean), cfg.MinRecords))
		return nil, nil
	}
	c := *p
	c.Records = clean
	return &c, nil
}

// SanitizeProfiles sanitizes a slice of profiles in order, dropping nil
// results. The input slice is not modified; clean profiles are shared,
// not copied. Errors (Strict policy, MaxBadRows exceeded) abort.
func SanitizeProfiles(profiles []*smart.Profile, cfg Config, rep *Report) ([]*smart.Profile, error) {
	cfg = cfg.WithDefaults()
	out := make([]*smart.Profile, 0, len(profiles))
	for _, p := range profiles {
		c, err := SanitizeProfile(p, cfg, rep)
		if err != nil {
			return nil, err
		}
		if err := rep.CheckBudget(cfg); err != nil {
			return nil, err
		}
		if c != nil {
			out = append(out, c)
		}
	}
	return out, nil
}
