package server

import (
	"fmt"
	"io"
	"net/http/httptest"
	"strconv"
	"testing"

	"bytes"
	"encoding/json"
	"net/http"

	"disksig/internal/fleet"
	"disksig/internal/smart"
	"disksig/internal/wire"
)

// nullResponseWriter swallows responses so the benchmarks measure the
// server, not httptest.ResponseRecorder's buffer growth.
type nullResponseWriter struct {
	h http.Header
}

func (w *nullResponseWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header, 4)
	}
	return w.h
}
func (w *nullResponseWriter) WriteHeader(int)             {}
func (w *nullResponseWriter) Write(p []byte) (int, error) { return len(p), nil }

// benchObs builds one steady-state batch: every drive reports the same
// healthy score at the same hour.
func benchObs(drives, hour int) []fleet.Observation {
	obs := make([]fleet.Observation, drives)
	for d := range obs {
		var v smart.Values
		v[smart.RRER] = 0.9
		obs[d] = fleet.Observation{
			Serial: fmt.Sprintf("SER-%04d", d),
			Record: smart.Record{Hour: hour, Values: v},
		}
	}
	return obs
}

// reusableBody is a resettable request body so the benchmark loop does
// not allocate a fresh reader per request.
type reusableBody struct{ bytes.Reader }

func (reusableBody) Close() error { return nil }

// serveBatch drives one POST /v1/ingest through the full handler chain.
func serveBatch(h http.Handler, req *http.Request, body *reusableBody, frame []byte, w *nullResponseWriter) {
	body.Reset(frame)
	req.Body = body
	h.ServeHTTP(w, req)
}

// BenchmarkIngestBinary measures the binary ingest hot path end to end
// (handler chain, wire decode, fleet scoring, ack encoding) in
// steady state: all drives known, hours advancing. The acceptance budget
// is < 1 alloc per record.
func BenchmarkIngestBinary(b *testing.B) {
	const drives = 512
	srv := testServer(b, fleet.Config{Shards: 16, Workers: 8}, Config{})
	h := srv.Handler()
	obs := benchObs(drives, 0)
	frame := wire.EncodeBatch(obs)

	req := httptest.NewRequest("POST", "/v1/ingest", nil)
	req.Header.Set("Content-Type", wire.ContentType)
	var body reusableBody
	w := &nullResponseWriter{}
	serveBatch(h, req, &body, frame, w) // warm-up: creates all drive state

	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range obs {
			obs[j].Record.Hour = i + 1
		}
		var err error
		frame, err = wire.AppendBatch(frame[:0], obs)
		if err != nil {
			b.Fatal(err)
		}
		serveBatch(h, req, &body, frame, w)
	}
	b.ReportMetric(float64(b.N*drives)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkIngestJSON is the same workload through the JSON path, the
// baseline the binary format is judged against. The request body is
// patched in place (fixed-width hour digits), so client-side encoding
// does not pollute the server-side allocation count.
func BenchmarkIngestJSON(b *testing.B) {
	const drives = 512
	const hourBase = 1000000 // 7 digits, never a leading zero
	srv := testServer(b, fleet.Config{Shards: 16, Workers: 8}, Config{})
	h := srv.Handler()

	type rec struct {
		Serial string     `json:"serial"`
		Hour   int        `json:"hour"`
		Values []*float64 `json:"values"`
	}
	rs := make([]rec, drives)
	for d := range rs {
		vals := make([]*float64, int(smart.NumAttrs))
		for a := range vals {
			z := 0.0
			vals[a] = &z
		}
		score := 0.9
		vals[smart.RRER] = &score
		rs[d] = rec{Serial: fmt.Sprintf("SER-%04d", d), Hour: hourBase, Values: vals}
	}
	frame, err := json.Marshal(map[string]any{"records": rs})
	if err != nil {
		b.Fatal(err)
	}
	// Locate every fixed-width hour so iterations can renumber in place.
	marker := []byte(`"hour":` + strconv.Itoa(hourBase))
	var hourOffs []int
	for off := 0; ; {
		i := bytes.Index(frame[off:], marker)
		if i < 0 {
			break
		}
		hourOffs = append(hourOffs, off+i+len(`"hour":`))
		off += i + len(marker)
	}
	if len(hourOffs) != drives {
		b.Fatalf("found %d hour fields, want %d", len(hourOffs), drives)
	}

	req := httptest.NewRequest("POST", "/v1/ingest", nil)
	req.Header.Set("Content-Type", "application/json")
	var body reusableBody
	w := &nullResponseWriter{}
	serveBatch(h, req, &body, frame, w) // warm-up

	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	var digits [8]byte
	for i := 0; i < b.N; i++ {
		hs := strconv.AppendInt(digits[:0], int64(hourBase+i+1), 10)
		if len(hs) != 7 {
			b.Fatalf("hour %d is not 7 digits", hourBase+i+1)
		}
		for _, off := range hourOffs {
			copy(frame[off:], hs)
		}
		serveBatch(h, req, &body, frame, w)
	}
	b.ReportMetric(float64(b.N*drives)/b.Elapsed().Seconds(), "records/s")
}

var _ io.ReadCloser = (*reusableBody)(nil)
