// Replicated serving: a primary ships its WAL to one warm follower and
// withholds ingest acks until the follower confirms, so a 200 means the
// batch is applied on two nodes. Promotion is fenced by a leadership
// term: the follower bumps its term when it promotes, and the deposed
// primary's late ship requests bounce off a 403 instead of being
// double-applied. Terms order leaders; WAL epochs (a persist concept)
// order snapshot generations within one leader's stream — the two are
// deliberately distinct.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"disksig/internal/fleet"
	"disksig/internal/persist"
)

// Role is a node's place in a replicated pair.
type Role int

const (
	// RolePrimary accepts writes and ships its WAL to the follower.
	RolePrimary Role = iota
	// RoleFollower applies shipped frames and rejects direct writes.
	RoleFollower
	// RoleCandidate is mid-promotion: no writes, no ship applies.
	RoleCandidate
)

func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleFollower:
		return "follower"
	case RoleCandidate:
		return "candidate"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// ReplicationOptions configures a server's place in a replicated pair.
type ReplicationOptions struct {
	// Role is the node's starting role.
	Role Role
	// Term is the leadership term the node starts at. A follower adopts
	// the term from its bootstrap image; promotion bumps it.
	Term uint64
	// LeaderURL is the primary's base URL (follower only); it is handed
	// to rejected writers as the place to retry.
	LeaderURL string
	// SelfURL is this node's own advertised base URL, which becomes the
	// leader hint after promotion.
	SelfURL string
	// Expected is the WAL position the follower expects the next shipped
	// frame at (follower only; the bootstrap image carries it).
	Expected persist.Position
	// AckTimeout bounds how long an ingest request waits for the
	// follower's ack before failing. <= 0 means 5s.
	AckTimeout time.Duration
	// ReadyLag is how stale a follower's last primary contact may be
	// before readiness flips to 503. <= 0 means 3s.
	ReadyLag time.Duration
	// Heartbeat is the shipper's idle heartbeat period for followers this
	// primary bootstraps. <= 0 takes the shipper default (500ms).
	Heartbeat time.Duration
}

func (o ReplicationOptions) withDefaults() ReplicationOptions {
	if o.AckTimeout <= 0 {
		o.AckTimeout = 5 * time.Second
	}
	if o.ReadyLag <= 0 {
		o.ReadyLag = 3 * time.Second
	}
	return o
}

// replication is the server's mutable role state plus counters. Ship
// applies run under mu, which also serializes them against promotion:
// Promote's first step (becoming candidate) waits out any in-flight
// apply, so a frame is never applied concurrently with a role change.
type replication struct {
	opts ReplicationOptions

	mu          sync.Mutex
	role        Role
	term        uint64
	leaderURL   string
	expected    persist.Position
	lastContact time.Time

	framesApplied   uint64
	rowsApplied     uint64
	alertsSupp      uint64
	duplicateFrames uint64
	fencedRejects   uint64
	shipConflicts   uint64
	promotions      uint64
	demotions       uint64
	bootstraps      uint64
}

func newReplication(opts ReplicationOptions) *replication {
	opts = opts.withDefaults()
	return &replication{
		opts:        opts,
		role:        opts.Role,
		term:        opts.Term,
		leaderURL:   opts.LeaderURL,
		expected:    opts.Expected,
		lastContact: time.Now(),
	}
}

// Role returns the node's current role. A server without replication
// configured is a standalone primary: it accepts writes.
func (s *Server) Role() Role {
	if s.repl == nil {
		return RolePrimary
	}
	s.repl.mu.Lock()
	defer s.repl.mu.Unlock()
	return s.repl.role
}

// Term returns the node's current leadership term (0 when replication
// is not configured).
func (s *Server) Term() uint64 {
	if s.repl == nil {
		return 0
	}
	s.repl.mu.Lock()
	defer s.repl.mu.Unlock()
	return s.repl.term
}

// notPrimary answers a write that landed on a non-primary: 503 plus a
// leader hint the failover-aware client follows.
func (s *Server) notPrimary(w http.ResponseWriter, role Role, leader string) {
	s.m.ingestNotPrimary.Add(1)
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":  fmt.Sprintf("not the primary (role %s); writes go to the leader", role),
		"leader": leader,
	})
}

// waitReplicated blocks an acked ingest until the follower confirms the
// batch's WAL position. nil when no follower is attached (single-node
// operation) or the shipper was detached mid-wait: the guarantee is
// "applied everywhere replication currently reaches".
func (s *Server) waitReplicated(ctx context.Context, pos persist.Position) error {
	sh := s.cfg.Persist.AttachedShipper()
	if sh == nil {
		return nil
	}
	tctx, cancel := context.WithTimeout(ctx, s.repl.opts.AckTimeout)
	defer cancel()
	err := sh.WaitAcked(tctx, pos)
	if errors.Is(err, persist.ErrShipperStopped) {
		return nil
	}
	return err
}

// stepDown demotes a fenced primary to follower. It runs from the
// shipper's OnFenced callback: the follower we were shipping to has a
// higher term, meaning it promoted itself while we were still acting as
// leader (typically after a partition, or an operator promote).
func (s *Server) stepDown(peerTerm uint64) {
	rp := s.repl
	if rp == nil {
		return
	}
	rp.mu.Lock()
	was := rp.role
	if rp.role == RolePrimary {
		rp.role = RoleFollower
		// The fence does not say where the new leader is; readiness stays
		// 503-stale until a bootstrap or operator re-points this node.
		rp.leaderURL = ""
		rp.demotions++
	}
	if peerTerm > rp.term {
		rp.term = peerTerm
	}
	rp.mu.Unlock()
	if was == RolePrimary && s.cfg.Persist != nil {
		s.cfg.Persist.DetachShipper()
	}
	if s.cfg.Log != nil {
		s.cfg.Log.Printf("fenced by term %d: stepping down to follower", peerTerm)
	}
}

// Promote turns a follower into the primary: bump the term (the fence),
// snapshot the warm state so the new leader's WAL lineage starts clean,
// then start answering writes. Idempotent on an existing primary.
func (s *Server) Promote() (uint64, error) {
	rp := s.repl
	if rp == nil {
		return 0, fmt.Errorf("server: replication is not configured")
	}
	rp.mu.Lock()
	if rp.role == RolePrimary {
		term := rp.term
		rp.mu.Unlock()
		return term, nil
	}
	rp.role = RoleCandidate
	rp.term++
	term := rp.term
	rp.mu.Unlock()

	// The snapshot makes promotion restore-fast for whoever follows this
	// node next, and compacts the replicated WAL into a clean epoch. Its
	// failure is not fatal: the WAL still holds everything applied.
	if s.cfg.Persist != nil {
		if _, err := s.cfg.Persist.Snapshot(s.store); err != nil && s.cfg.Log != nil {
			s.cfg.Log.Printf("promotion snapshot failed (continuing, WAL intact): %v", err)
		}
	}

	rp.mu.Lock()
	rp.role = RolePrimary
	rp.leaderURL = rp.opts.SelfURL
	rp.promotions++
	rp.mu.Unlock()
	if s.cfg.Log != nil {
		s.cfg.Log.Printf("promoted to primary at term %d", term)
	}
	return term, nil
}

// WatchPrimary polls the leader's liveness endpoint and promotes this
// follower after the leader has been continuously unreachable for
// promoteAfter. It returns when ctx ends or a promotion (from any
// source) resolves the watch.
func (s *Server) WatchPrimary(ctx context.Context, interval, promoteAfter time.Duration) {
	if s.repl == nil || promoteAfter <= 0 {
		return
	}
	if interval <= 0 {
		interval = promoteAfter / 5
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	client := &http.Client{Timeout: max(interval, 100*time.Millisecond)}
	t := time.NewTicker(interval)
	defer t.Stop()
	var downSince time.Time
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		s.repl.mu.Lock()
		role, leader := s.repl.role, s.repl.leaderURL
		s.repl.mu.Unlock()
		if role != RoleFollower || leader == "" {
			return
		}
		if probeLive(client, leader) {
			downSince = time.Time{}
			continue
		}
		if downSince.IsZero() {
			downSince = time.Now()
			continue
		}
		if time.Since(downSince) >= promoteAfter {
			if s.cfg.Log != nil {
				s.cfg.Log.Printf("primary %s unreachable for %s: promoting", leader, time.Since(downSince).Round(time.Millisecond))
			}
			if _, err := s.Promote(); err != nil && s.cfg.Log != nil {
				s.cfg.Log.Printf("promotion failed: %v", err)
			}
			return
		}
	}
}

func probeLive(client *http.Client, base string) bool {
	resp, err := client.Get(base + "/healthz/live")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// BootstrapFollower asks a running primary for its bootstrap image,
// restores the fleet state locally (at whatever shard/worker layout
// fcfg picks — the export format is layout-independent), and returns
// the store plus the ReplicationOptions a follower server should start
// with. When mgr is non-nil the restored state is snapshotted
// immediately so the follower is durable from its first frame.
func BootstrapFollower(primaryURL, selfURL string, fcfg fleet.Config, mgr *persist.Manager) (*fleet.Store, ReplicationOptions, error) {
	reqBody, err := json.Marshal(map[string]string{"follower_url": selfURL})
	if err != nil {
		return nil, ReplicationOptions{}, err
	}
	resp, err := http.Post(primaryURL+"/v1/replication/bootstrap", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		return nil, ReplicationOptions{}, fmt.Errorf("server: bootstrap request: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, ReplicationOptions{}, fmt.Errorf("server: reading bootstrap image: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		snippet := body
		if len(snippet) > 200 {
			snippet = snippet[:200]
		}
		return nil, ReplicationOptions{}, fmt.Errorf("server: bootstrap: primary answered %d: %s", resp.StatusCode, snippet)
	}
	st, term, pos, err := persist.DecodeBootstrap(body)
	if err != nil {
		return nil, ReplicationOptions{}, err
	}
	store, err := fleet.Restore(st, fcfg)
	if err != nil {
		return nil, ReplicationOptions{}, fmt.Errorf("server: restoring bootstrap image: %w", err)
	}
	if mgr != nil {
		if _, err := mgr.Snapshot(store); err != nil {
			return nil, ReplicationOptions{}, fmt.Errorf("server: seeding follower snapshot: %w", err)
		}
	}
	opts := ReplicationOptions{
		Role:      RoleFollower,
		Term:      term,
		LeaderURL: primaryURL,
		SelfURL:   selfURL,
		Expected:  pos,
	}
	return store, opts, nil
}

// handleBootstrap serves a follower's bootstrap request: export a
// consistent state image, attach the WAL shipper at the image's
// position, and stream the image back. Registered only with both
// replication and persistence configured.
func (s *Server) handleBootstrap(w http.ResponseWriter, r *http.Request) {
	rp := s.repl
	var req struct {
		FollowerURL string `json:"follower_url"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil || req.FollowerURL == "" {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": "bootstrap request needs a follower_url",
		})
		return
	}
	rp.mu.Lock()
	role, term, leader := rp.role, rp.term, rp.leaderURL
	rp.mu.Unlock()
	if role != RolePrimary {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":  fmt.Sprintf("not the primary (role %s)", role),
			"leader": leader,
		})
		return
	}

	st, pos := s.cfg.Persist.BootstrapImage(s.store)
	img, err := persist.EncodeBootstrap(st, term, pos)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error": fmt.Sprintf("encoding bootstrap image: %v", err),
		})
		return
	}
	// Attach before responding: frames appended after pos ship to the
	// follower even if they land while the image is still in flight (the
	// follower dedups anything at or below its restored position).
	s.cfg.Persist.AttachShipper(persist.ShipperConfig{
		FollowerURL: req.FollowerURL,
		Term:        term,
		Heartbeat:   rp.opts.Heartbeat,
		OnFenced:    s.stepDown,
	}, pos)
	rp.mu.Lock()
	rp.bootstraps++
	rp.mu.Unlock()
	if s.cfg.Log != nil {
		s.cfg.Log.Printf("follower %s bootstrapped at %s (term %d, %d bytes)", req.FollowerURL, pos, term, len(img))
	}
	w.Header().Set("Content-Type", persist.BootstrapContentType)
	w.Header().Set("Content-Length", fmt.Sprint(len(img)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(img)
}

// shipAckJSON writes the follower's high-water mark (its term rides
// along so a fenced sender learns what deposed it).
func shipAckJSON(w http.ResponseWriter, status int, term uint64, pos persist.Position) {
	writeJSON(w, status, map[string]any{
		"term":   term,
		"epoch":  pos.Epoch,
		"offset": pos.Offset,
	})
}

// handleShip applies one chunk of shipped WAL frames. The protocol in
// one breath: 403 = your term lost (fence, terminal), 409 = position
// mismatch or torn frame (resync from the acked position and re-ship —
// nothing past the ack was applied), 200 = everything up to the acked
// position is applied. Duplicate frames (end at or below the expected
// offset) are skipped, never re-applied: WAL replay is not idempotent.
func (s *Server) handleShip(w http.ResponseWriter, r *http.Request) {
	rp := s.repl
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, persist.MaxShipBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("reading ship request: %v", err),
		})
		return
	}
	term, from, frames, err := persist.DecodeShipRequest(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}

	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.role == RoleCandidate {
		// Mid-promotion: the sender retries, and once the term bump lands
		// it gets fenced properly.
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": "promotion in progress",
		})
		return
	}
	if rp.role != RoleFollower || term < rp.term {
		rp.fencedRejects++
		shipAckJSON(w, http.StatusForbidden, rp.term, rp.expected)
		return
	}
	if term > rp.term {
		// The same stream under a newer term (a re-promoted primary).
		// Position continuity below still gates every byte.
		rp.term = term
	}

	exp := rp.expected
	switch {
	case from.Epoch < exp.Epoch:
		// A whole stale epoch: everything in it was applied before the
		// snapshot that advanced us. Ack so the sender resyncs forward.
		rp.duplicateFrames++
		rp.lastContact = time.Now()
		shipAckJSON(w, http.StatusOK, rp.term, exp)
		return
	case from.Epoch > exp.Epoch:
		// Epoch advance after a primary snapshot. The drain-before-reset
		// barrier guarantees we acked all of the old epoch, so the new one
		// must start at its very first frame.
		if from != persist.StartPosition(from.Epoch) {
			rp.shipConflicts++
			shipAckJSON(w, http.StatusConflict, rp.term, exp)
			return
		}
		exp = from
	case from.Offset > exp.Offset:
		// A gap: frames we never saw would be skipped. Resync.
		rp.shipConflicts++
		shipAckJSON(w, http.StatusConflict, rp.term, exp)
		return
	}

	pos := from.Offset
	it := persist.NewFrameIter(frames)
	for {
		obs, size, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn or corrupt frame: the applied prefix is acked via 409 so
			// the sender re-ships from exactly where we stopped.
			rp.shipConflicts++
			rp.expected = exp
			rp.lastContact = time.Now()
			shipAckJSON(w, http.StatusConflict, rp.term, exp)
			return
		}
		end := pos + size
		if end <= exp.Offset {
			// Already applied (a re-shipped chunk after a lost ack).
			rp.duplicateFrames++
			pos = end
			continue
		}
		if pos != exp.Offset {
			// A frame straddling the high-water mark means the sender's
			// framing disagrees with what we applied. Resync, apply nothing.
			rp.shipConflicts++
			shipAckJSON(w, http.StatusConflict, rp.term, exp)
			return
		}
		res, err := s.applyReplicated(obs)
		if err != nil {
			rp.expected = exp
			writeJSON(w, http.StatusInternalServerError, map[string]any{
				"error": fmt.Sprintf("applying shipped frame: %v", err),
			})
			return
		}
		rp.framesApplied++
		rp.rowsApplied += uint64(res.Ingested)
		rp.alertsSupp += uint64(len(res.Alerts))
		pos = end
		exp.Offset = end
	}
	rp.expected = exp
	rp.lastContact = time.Now()
	shipAckJSON(w, http.StatusOK, rp.term, exp)
}

// applyReplicated applies one shipped batch through the follower's own
// WAL (durable follower) or straight to the store. Alerts are returned
// for counting but never surfaced: the primary already surfaced them to
// its client, and a follower re-alerting on replay would double-page.
func (s *Server) applyReplicated(obs []fleet.Observation) (fleet.BatchResult, error) {
	if s.cfg.Persist != nil {
		res, _, err := s.cfg.Persist.LogBatch(obs, func() fleet.BatchResult { return s.store.IngestBatch(obs) })
		return res, err
	}
	return s.store.IngestBatch(obs), nil
}

// handlePromote is the operator's promotion trigger.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	term, err := s.Promote()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"role": s.Role().String(),
		"term": term,
	})
}

// handleReplStatus reports role, term, stream positions, and counters.
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.replicationDoc())
}

// replicationDoc renders the replication state for both the status
// endpoint and /metrics.
func (s *Server) replicationDoc() map[string]any {
	rp := s.repl
	rp.mu.Lock()
	doc := map[string]any{
		"role":              rp.role.String(),
		"term":              rp.term,
		"leader":            rp.leaderURL,
		"self":              rp.opts.SelfURL,
		"frames_applied":    rp.framesApplied,
		"rows_applied":      rp.rowsApplied,
		"alerts_suppressed": rp.alertsSupp,
		"duplicate_frames":  rp.duplicateFrames,
		"fenced_rejects":    rp.fencedRejects,
		"ship_conflicts":    rp.shipConflicts,
		"promotions":        rp.promotions,
		"demotions":         rp.demotions,
		"bootstraps":        rp.bootstraps,
	}
	if rp.role == RoleFollower {
		doc["expected"] = rp.expected
		doc["contact_age_ms"] = float64(time.Since(rp.lastContact)) / float64(time.Millisecond)
	}
	rp.mu.Unlock()
	if s.cfg.Persist != nil {
		doc["position"] = s.cfg.Persist.Position()
		if sh := s.cfg.Persist.AttachedShipper(); sh != nil {
			st := sh.Stats()
			shipper := map[string]any{
				"follower":       st.FollowerURL,
				"term":           st.Term,
				"acked":          st.Acked,
				"next":           st.Next,
				"fenced":         st.Fenced,
				"frames_shipped": st.FramesShipped,
				"bytes_shipped":  st.BytesShipped,
				"heartbeats":     st.Heartbeats,
				"conflicts":      st.Conflicts,
				"ship_errors":    st.ShipErrors,
			}
			if st.LastError != "" {
				shipper["last_error"] = st.LastError
			}
			doc["shipper"] = shipper
		}
	}
	return doc
}

// handleLive is pure liveness: the process is up and serving.
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"drives": s.store.Tracked(),
	})
}

// handleReady is readiness: whether this node should receive traffic.
// A standalone server and a primary are always ready; a candidate is
// not (promotion in progress); a follower is ready only while its view
// of the primary is fresh — a stale follower would serve stale reads
// and is the wrong place to point clients.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	rp := s.repl
	if rp == nil {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "role": "standalone"})
		return
	}
	rp.mu.Lock()
	role := rp.role
	lag := time.Since(rp.lastContact)
	rp.mu.Unlock()
	switch {
	case role == RolePrimary:
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "role": role.String()})
	case role == RoleCandidate:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "promoting", "role": role.String()})
	case lag <= rp.opts.ReadyLag:
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ready", "role": role.String(),
			"lag_ms":       float64(lag) / float64(time.Millisecond),
			"ready_lag_ms": float64(rp.opts.ReadyLag) / float64(time.Millisecond),
		})
	default:
		// A stale follower names both the lag it measured and the gate it
		// failed, so the router and operators can see *how far* behind it
		// is, not just that it is.
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "stale", "role": role.String(),
			"lag_ms":       float64(lag) / float64(time.Millisecond),
			"ready_lag_ms": float64(rp.opts.ReadyLag) / float64(time.Millisecond),
		})
	}
}
