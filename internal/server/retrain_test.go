package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"disksig/internal/core"
	"disksig/internal/fleet"
	"disksig/internal/learn"
	"disksig/internal/monitor"
)

func TestModelStatusWithoutRetrainer(t *testing.T) {
	srv := testServer(t, fleet.Config{Shards: 2}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Status is always served: every store has a model version.
	resp, err := http.Get(ts.URL + "/v1/models/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("models status = %d, want 200", resp.StatusCode)
	}
	doc := decodeJSON(t, resp.Body)
	if doc["active_version"].(float64) != 1 || doc["retrain_enabled"].(bool) {
		t.Fatalf("status = %v, want active_version 1 with retraining disabled", doc)
	}
	if doc["last_retrain"] != nil {
		t.Fatalf("last_retrain = %v before any cycle, want absent/null", doc["last_retrain"])
	}
	if len(doc["groups"].([]any)) != 1 {
		t.Fatalf("groups = %v, want the 1 trained model", doc["groups"])
	}

	// The trigger endpoint only exists when a retrainer is wired.
	resp2, err := http.Post(ts.URL+"/v1/admin/retrain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("retrain without retrainer = %d, want 404", resp2.StatusCode)
	}
}

func TestRetrainEndpointSkippedCycle(t *testing.T) {
	store := testStore(t, fleet.Config{Shards: 2, HistoryHours: 100, Monitor: monitor.Config{Smoothing: 1}})
	// No Promote hook: the cycle evaluates only, which is all a fleet
	// this small can reach anyway (the cohort guard skips it first).
	srv := New(store, Config{Retrain: &learn.Retrainer{
		Store: store,
		Cfg:   learn.Config{Core: core.Config{Seed: 1}},
	}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A couple of drives with short histories: the cycle runs, reports a
	// skipped promotion, and the result is surfaced on the status page.
	body := ingestBody(t,
		[3]any{"SER-1", 0, 0.9},
		[3]any{"SER-1", 1, 0.9},
		[3]any{"SER-2", 0, 0.9},
	)
	if resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(body)); err != nil {
		t.Fatal(err)
	} else {
		ack := decodeJSON(t, resp.Body)
		resp.Body.Close()
		if ack["model_version"].(float64) != 1 {
			t.Fatalf("ingest ack model_version = %v, want 1", ack["model_version"])
		}
	}

	resp, err := http.Post(ts.URL+"/v1/admin/retrain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retrain = %d, want 200", resp.StatusCode)
	}
	res := decodeJSON(t, resp.Body)
	if res["promoted"].(bool) {
		t.Fatalf("tiny fleet promoted: %v", res)
	}
	if res["reason"] == "" || res["serving_version"].(float64) != 1 {
		t.Fatalf("cycle result = %v", res)
	}

	// Status now reports the cycle and still serves version 1.
	resp2, err := http.Get(ts.URL + "/v1/models/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	doc := decodeJSON(t, resp2.Body)
	if doc["active_version"].(float64) != 1 || !doc["retrain_enabled"].(bool) {
		t.Fatalf("status = %v, want active_version 1 with retraining enabled", doc)
	}
	last, ok := doc["last_retrain"].(map[string]any)
	if !ok || last["promoted"].(bool) {
		t.Fatalf("last_retrain = %v, want the skipped cycle", doc["last_retrain"])
	}

	// The metrics models section tallies the cycle and the batch version.
	resp3, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	met := decodeJSON(t, resp3.Body)
	mm := met["models"].(map[string]any)
	if mm["retrains"].(float64) != 1 || mm["promotions"].(float64) != 0 || mm["active_version"].(float64) != 1 {
		t.Fatalf("metrics models = %v", mm)
	}
	if mm["batches_by_version"].(map[string]any)["v1"].(float64) != 1 {
		t.Fatalf("batches_by_version = %v, want v1: 1", mm["batches_by_version"])
	}
}
