package server

import (
	"bytes"
	"hash/crc32"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"disksig/internal/fleet"
	"disksig/internal/monitor"
	"disksig/internal/smart"
	"disksig/internal/wire"
)

// binaryObs builds the observations matching ingestBody's JSON shape:
// all values zero except the score in the RRER slot.
func binaryObs(recs ...[3]any) []fleet.Observation {
	obs := make([]fleet.Observation, len(recs))
	for i, r := range recs {
		var v smart.Values
		v[smart.RRER] = r[2].(float64)
		obs[i] = fleet.Observation{
			Serial: r[0].(string),
			Record: smart.Record{Hour: r[1].(int), Values: v},
		}
	}
	return obs
}

// refitCRC rewrites a frame's CRC-32C trailer after a test mutation.
func refitCRC(frame []byte) []byte {
	sum := crc32.Checksum(frame[:len(frame)-4], crc32.MakeTable(crc32.Castagnoli))
	frame[len(frame)-4] = byte(sum)
	frame[len(frame)-3] = byte(sum >> 8)
	frame[len(frame)-2] = byte(sum >> 16)
	frame[len(frame)-1] = byte(sum >> 24)
	return frame
}

func postIngest(t *testing.T, url, contentType string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest", contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestIngestUnsupportedContentType(t *testing.T) {
	srv := testServer(t, fleet.Config{Shards: 4}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postIngest(t, ts.URL, "text/plain", []byte("hello"))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("status = %d, want 415", resp.StatusCode)
	}
	doc := decodeJSON(t, resp.Body)
	if !strings.Contains(doc["error"].(string), wire.ContentType) {
		t.Fatalf("error %q does not name the supported binary type", doc["error"])
	}

	// Parameters and case on a supported type must still negotiate.
	resp2 := postIngest(t, ts.URL, "Application/JSON; charset=utf-8",
		ingestBody(t, [3]any{"SER-1", 0, 0.9}))
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("parameterized JSON Content-Type: status = %d, want 200", resp2.StatusCode)
	}
}

func TestIngestBinaryHappyPath(t *testing.T) {
	srv := testServer(t, fleet.Config{Shards: 4, Monitor: monitor.Config{Smoothing: 1}}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := wire.EncodeBatch(binaryObs(
		[3]any{"SER-1", 0, 0.9},
		[3]any{"SER-1", 1, -0.9}, // escalates straight to critical
		[3]any{"SER-2", 0, 0.9},
	))
	resp := postIngest(t, ts.URL, wire.ContentType, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	doc := decodeJSON(t, resp.Body)
	if doc["ingested"].(float64) != 3 || doc["kept"].(float64) != 3 || doc["quarantined"].(float64) != 0 {
		t.Fatalf("accounting = %v/%v/%v, want 3/3/0", doc["ingested"], doc["kept"], doc["quarantined"])
	}
	alerts := doc["alerts"].([]any)
	if len(alerts) != 1 {
		t.Fatalf("%d alerts, want 1", len(alerts))
	}
	a := alerts[0].(map[string]any)
	if a["serial"] != "SER-1" || a["severity"] != "critical" {
		t.Fatalf("alert = %v, want critical SER-1", a)
	}
}

// TestIngestFormatsEquivalent replays one workload as JSON into one
// server and as binary into another; every response and the resulting
// fleet views must agree — the formats are encodings, not dialects.
func TestIngestFormatsEquivalent(t *testing.T) {
	workload := [][3]any{
		{"SER-A", 0, 0.9}, {"SER-B", 0, 0.8},
		{"SER-A", 1, 0.2}, {"SER-B", 1, -0.7},
		{"SER-A", 2, -0.2}, {"SER-B", 2, -0.9},
	}
	fcfg := fleet.Config{Shards: 4, Monitor: monitor.Config{Smoothing: 2}}
	jsonSrv := httptest.NewServer(testServer(t, fcfg, Config{}).Handler())
	defer jsonSrv.Close()
	binSrv := httptest.NewServer(testServer(t, fcfg, Config{}).Handler())
	defer binSrv.Close()

	for _, rec := range workload {
		jr := postIngest(t, jsonSrv.URL, "application/json", ingestBody(t, rec))
		jdoc := decodeJSON(t, jr.Body)
		jr.Body.Close()
		br := postIngest(t, binSrv.URL, wire.ContentType, wire.EncodeBatch(binaryObs(rec)))
		bdoc := decodeJSON(t, br.Body)
		br.Body.Close()
		if jr.StatusCode != http.StatusOK || br.StatusCode != http.StatusOK {
			t.Fatalf("statuses %d/%d, want 200/200", jr.StatusCode, br.StatusCode)
		}
		for _, k := range []string{"ingested", "kept", "quarantined"} {
			if jdoc[k] != bdoc[k] {
				t.Fatalf("rec %v: ack %s diverges: json %v, binary %v", rec, k, jdoc[k], bdoc[k])
			}
		}
		if len(jdoc["alerts"].([]any)) != len(bdoc["alerts"].([]any)) {
			t.Fatalf("rec %v: alert counts diverge", rec)
		}
	}
	for _, serial := range []string{"SER-A", "SER-B"} {
		jr, err := http.Get(jsonSrv.URL + "/v1/drives/" + serial)
		if err != nil {
			t.Fatal(err)
		}
		jdoc := decodeJSON(t, jr.Body)
		jr.Body.Close()
		br, err := http.Get(binSrv.URL + "/v1/drives/" + serial)
		if err != nil {
			t.Fatal(err)
		}
		bdoc := decodeJSON(t, br.Body)
		br.Body.Close()
		for k, jv := range jdoc {
			if bv := bdoc[k]; jv != bv {
				t.Fatalf("drive %s field %s diverges: json %v, binary %v", serial, k, jv, bv)
			}
		}
	}
}

func TestIngestBinaryUnderJSONContentType(t *testing.T) {
	srv := testServer(t, fleet.Config{Shards: 4}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := wire.EncodeBatch(binaryObs([3]any{"SER-1", 0, 0.9}))
	resp := postIngest(t, ts.URL, "application/json", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	doc := decodeJSON(t, resp.Body)
	q := doc["quality"].(map[string]any)
	if q["rows_read"].(float64) != 0 || q["rows_kept"].(float64) != 0 || q["rows_quarantined"].(float64) != 0 {
		t.Fatalf("ledger rows = %v/%v/%v, want 0/0/0 (nothing ingested)",
			q["rows_read"], q["rows_kept"], q["rows_quarantined"])
	}
	if byKind := q["by_kind"].(map[string]any); byKind["malformed-row"].(float64) != 1 {
		t.Fatalf("by_kind = %v, want malformed-row=1", byKind)
	}
	// The store's cumulative ledger must be untouched: the batch never
	// reached it.
	if rep := srv.store.Quality(); rep.RowsRead != 0 || !rep.Clean() {
		t.Fatalf("store ledger touched by rejected batch: %+v", rep)
	}
}

func TestIngestBinaryCorruptFrame(t *testing.T) {
	srv := testServer(t, fleet.Config{Shards: 4}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := wire.EncodeBatch(binaryObs([3]any{"SER-1", 0, 0.9}, [3]any{"SER-2", 0, 0.8}))
	body[len(body)/2] ^= 0x10 // flip a payload bit; CRC catches it
	resp := postIngest(t, ts.URL, wire.ContentType, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	doc := decodeJSON(t, resp.Body)
	if !strings.Contains(doc["error"].(string), "checksum") {
		t.Fatalf("error %q does not name the checksum failure", doc["error"])
	}
	q := doc["quality"].(map[string]any)
	if byKind := q["by_kind"].(map[string]any); byKind["malformed-row"].(float64) != 1 {
		t.Fatalf("by_kind = %v, want malformed-row=1", byKind)
	}
	if srv.store.Tracked() != 0 {
		t.Fatalf("%d drives tracked after rejected frame, want 0", srv.store.Tracked())
	}
}

// TestIngestBinaryRecordQuarantine fault-injects an infinite value into
// one record of a three-record frame: that record is quarantined, the
// others land, and ingested = kept + quarantined holds.
func TestIngestBinaryRecordQuarantine(t *testing.T) {
	srv := testServer(t, fleet.Config{Shards: 4}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := wire.EncodeBatch(binaryObs(
		[3]any{"SER-1", 0, 0.9}, [3]any{"SER-2", 0, 0.8}, [3]any{"SER-3", 0, 0.7},
	))
	// Each record is a 5-byte header + 5-byte serial + 12 triples; patch
	// the value bits of the middle record's first triple to +Inf.
	const recSize = 2 + 4 + 2 + 5 + 12*10
	off := 1 + 4 + recSize + (2 + 4 + 2 + 5) + 2
	bits := math.Float64bits(math.Inf(1))
	for k := 0; k < 8; k++ {
		body[off+k] = byte(bits >> (8 * k))
	}
	refitCRC(body)

	resp := postIngest(t, ts.URL, wire.ContentType, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	doc := decodeJSON(t, resp.Body)
	if doc["ingested"].(float64) != 3 || doc["kept"].(float64) != 2 || doc["quarantined"].(float64) != 1 {
		t.Fatalf("accounting = %v/%v/%v, want 3/2/1", doc["ingested"], doc["kept"], doc["quarantined"])
	}
	q := doc["quality"].(map[string]any)
	if byKind := q["by_kind"].(map[string]any); byKind["non-finite"].(float64) != 1 {
		t.Fatalf("by_kind = %v, want non-finite=1", byKind)
	}
	if srv.store.Tracked() != 2 {
		t.Fatalf("%d drives tracked, want 2 (SER-2 quarantined)", srv.store.Tracked())
	}
}

// TestIngestBinaryBodyLimit pins the MaxBytesReader boundary on the
// binary path: a body exactly at the limit is served, one byte over is
// shed with 413.
func TestIngestBinaryBodyLimit(t *testing.T) {
	body := wire.EncodeBatch(binaryObs([3]any{"SER-1", 0, 0.9}, [3]any{"SER-2", 0, 0.8}))
	for _, tc := range []struct {
		name  string
		limit int64
		want  int
	}{
		{"at limit", int64(len(body)), http.StatusOK},
		{"one under", int64(len(body)) - 1, http.StatusRequestEntityTooLarge},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := testServer(t, fleet.Config{Shards: 4}, Config{MaxBodyBytes: tc.limit})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			resp := postIngest(t, ts.URL, wire.ContentType, body)
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("limit %d: status = %d, want %d", tc.limit, resp.StatusCode, tc.want)
			}
		})
	}
}
