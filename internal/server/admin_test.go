package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"disksig/internal/fleet"
	"disksig/internal/monitor"
	"disksig/internal/persist"
)

// sealChunk frames a payload slice as one transfer chunk: payload +
// CRC-32C trailer.
func sealChunk(payload []byte) []byte {
	sum := crc32.Checksum(payload, transferCRC)
	return append(append([]byte{}, payload...),
		byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
}

func postChunk(t *testing.T, url, id string, offset int, chunk []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/v1/admin/transfer/"+id, bytes.NewReader(chunk))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TransferOffsetHeader, strconv.Itoa(offset))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestTransferHandoff walks the whole handoff plane HTTP-level: export
// from a populated node, stream to an empty node in chunks (with a
// resume mid-way), commit, verify the drives answer on the target, then
// drop from the source.
func TestTransferHandoff(t *testing.T) {
	mcfg := monitor.Config{Smoothing: 1}
	src := testServer(t, fleet.Config{Shards: 4, Monitor: mcfg}, Config{})
	dst := testServer(t, fleet.Config{Shards: 2, Monitor: mcfg}, Config{})
	tsSrc := httptest.NewServer(src.Handler())
	defer tsSrc.Close()
	tsDst := httptest.NewServer(dst.Handler())
	defer tsDst.Close()

	body := ingestBody(t,
		[3]any{"SER-1", 0, 0.9},
		[3]any{"SER-1", 1, 0.8},
		[3]any{"SER-2", 0, 0.9},
	)
	resp, err := http.Post(tsSrc.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Export.
	resp, err = http.Get(tsSrc.URL + "/v1/admin/export")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != persist.BootstrapContentType {
		t.Fatalf("export Content-Type %q", ct)
	}
	var img bytes.Buffer
	if _, err := img.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st, _, _, err := persist.DecodeBootstrap(img.Bytes())
	if err != nil {
		t.Fatalf("exported image does not decode: %v", err)
	}
	if len(st.Drives) != 2 {
		t.Fatalf("exported %d drives, want 2", len(st.Drives))
	}

	// Stream in two chunks; repeat the first to prove 409-resume.
	const id = "handoff-test"
	half := img.Len() / 2
	c1, c2 := img.Bytes()[:half], img.Bytes()[half:]
	resp = postChunk(t, tsDst.URL, id, 0, sealChunk(c1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk 1 status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postChunk(t, tsDst.URL, id, 0, sealChunk(c1)) // duplicate
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate chunk status %d, want 409", resp.StatusCode)
	}
	doc := decodeJSON(t, resp.Body)
	resp.Body.Close()
	if int(doc["expected"].(float64)) != half {
		t.Fatalf("409 expected=%v, want %d", doc["expected"], half)
	}
	resp = postChunk(t, tsDst.URL, id, half, sealChunk(c2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk 2 status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Commit and query the moved drive on the target.
	resp, err = http.Post(tsDst.URL+"/v1/admin/transfer/"+id+"/commit", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit status %d", resp.StatusCode)
	}
	doc = decodeJSON(t, resp.Body)
	resp.Body.Close()
	if int(doc["imported"].(float64)) != 2 {
		t.Fatalf("imported %v, want 2", doc["imported"])
	}
	resp, err = http.Get(tsDst.URL + "/v1/drives/SER-1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("moved drive status %d", resp.StatusCode)
	}
	doc = decodeJSON(t, resp.Body)
	resp.Body.Close()
	if doc["last_hour"].(float64) != 1 {
		t.Fatalf("moved drive last_hour %v, want 1", doc["last_hour"])
	}

	// Re-commit of a consumed session is 404; re-import conflicts 409.
	resp, _ = http.Post(tsDst.URL+"/v1/admin/transfer/"+id+"/commit", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("re-commit status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postChunk(t, tsDst.URL, "again", 0, sealChunk(img.Bytes()))
	resp.Body.Close()
	resp, _ = http.Post(tsDst.URL+"/v1/admin/transfer/again/commit", "", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting import status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// Drop from the source; the drive must stop answering there.
	drop, _ := json.Marshal(map[string]any{"serials": []string{"SER-1", "SER-2", "SER-GONE"}})
	resp, err = http.Post(tsSrc.URL+"/v1/admin/drop", "application/json", bytes.NewReader(drop))
	if err != nil {
		t.Fatal(err)
	}
	doc = decodeJSON(t, resp.Body)
	resp.Body.Close()
	if int(doc["dropped"].(float64)) != 2 || int(doc["requested"].(float64)) != 3 {
		t.Fatalf("drop = %v, want dropped 2 of 3", doc)
	}
	resp, _ = http.Get(tsSrc.URL + "/v1/drives/SER-1")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("dropped drive still answers %d on source", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestTransferChunkValidation(t *testing.T) {
	srv := testServer(t, fleet.Config{Shards: 2}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Bad offset header.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/admin/transfer/x", bytes.NewReader(sealChunk([]byte("abc"))))
	req.Header.Set(TransferOffsetHeader, "nope")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad offset status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Chunk shorter than its trailer.
	resp = postChunk(t, ts.URL, "x", 0, []byte{1, 2})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short chunk status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Corrupt CRC.
	chunk := sealChunk([]byte("payload"))
	chunk[len(chunk)-1] ^= 1
	resp = postChunk(t, ts.URL, "x", 0, chunk)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt chunk status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Garbage image fails commit with 400 and consumes the session.
	resp = postChunk(t, ts.URL, "garbage", 0, sealChunk([]byte("not a bootstrap image")))
	resp.Body.Close()
	resp, _ = http.Post(ts.URL+"/v1/admin/transfer/garbage/commit", "", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage commit status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(ts.URL+"/v1/admin/transfer/garbage/commit", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("consumed garbage session status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Abort is idempotent.
	resp = postChunk(t, ts.URL, "gone", 0, sealChunk([]byte("x")))
	resp.Body.Close()
	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest("DELETE", ts.URL+"/v1/admin/transfer/gone", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("abort %d status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Session cap.
	for i := 0; i < maxTransferSessions; i++ {
		resp = postChunk(t, ts.URL, fmt.Sprintf("s%d", i), 0, sealChunk([]byte("x")))
		resp.Body.Close()
	}
	resp = postChunk(t, ts.URL, "one-too-many", 0, sealChunk([]byte("x")))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap session status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	// Malformed drop body.
	resp, _ = http.Post(ts.URL+"/v1/admin/drop", "application/json", bytes.NewReader([]byte(`{"nope":1}`)))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad drop status %d", resp.StatusCode)
	}
	resp.Body.Close()
}
