package server

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"disksig/internal/fleet"
	"disksig/internal/monitor"
	"disksig/internal/persist"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/ with the observed responses")

// Snapshots gob-encode the store, predictors included, so the test
// predictor must be registered like any production model form.
func init() { gob.Register(rampPredictor{}) }

// TestGoldenResponses pins the canonical JSON of the read API —
// /v1/fleet/summary, /v1/drives/{serial} and /metrics (including the
// persist and latency sections) — against golden files. The store is
// fed a fixed request sequence, so everything except timing-derived
// leaves is byte-deterministic; those leaves are scrubbed on both sides
// before comparison. Run with -update to regenerate.
func TestGoldenResponses(t *testing.T) {
	dir := t.TempDir()
	mgr, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv := testServer(t,
		fleet.Config{Shards: 4, Monitor: monitor.Config{Smoothing: 1}},
		Config{SummaryTopN: 10, Persist: mgr})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A fixed ingest sequence: one healthy drive, one that degrades to
	// critical (alerting), one quarantined record.
	body := ingestBody(t,
		[3]any{"SER-OK", 0, 0.9},
		[3]any{"SER-OK", 1, 0.9},
		[3]any{"SER-BAD", 0, 0.9},
		[3]any{"SER-BAD", 1, -0.9},
	)
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed ingest: status %d", resp.StatusCode)
	}
	// Quarantine path: a record with a missing (null) value.
	quarantine := []byte(`{"records":[{"serial":"SER-Q","hour":0,"values":[null,0,0,0,0,0,0,0,0,0,0,0]}]}`)
	resp, err = http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(quarantine))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// A snapshot so the persist section shows a full cycle.
	resp, err = http.Post(ts.URL+"/v1/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin snapshot: status %d", resp.StatusCode)
	}

	cases := []struct {
		name   string
		path   string
		golden string
		// scrub lists dotted paths whose leaves are timing-dependent.
		scrub []string
	}{
		{name: "summary", path: "/v1/fleet/summary?top=5", golden: "summary.golden.json"},
		{name: "drive", path: "/v1/drives/SER-BAD", golden: "drive.golden.json"},
		{name: "metrics", path: "/metrics", golden: "metrics.golden.json", scrub: []string{
			"latency.buckets_ms",
			"latency.mean_us",
			"persist.last_snapshot_ms",
			"persist.last_snapshot_bytes",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(ts.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: status %d", tc.path, resp.StatusCode)
			}
			got := canonicalJSON(t, resp.Body, tc.scrub)

			gpath := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(gpath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", gpath)
				return
			}
			want, err := os.ReadFile(gpath)
			if err != nil {
				t.Fatalf("%v (run 'go test ./internal/server -run TestGoldenResponses -update' to create it)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("GET %s diverges from %s:\n%s\n(run with -update if the change is intentional)",
					tc.path, gpath, diffLines(string(want), string(got)))
			}
		})
	}
}

// canonicalJSON decodes, scrubs the named paths, and re-encodes with
// sorted keys and fixed indentation, so golden comparisons are
// insensitive to map iteration order.
func canonicalJSON(t *testing.T, r interface{ Read([]byte) (int, error) }, scrub []string) []byte {
	t.Helper()
	var doc map[string]any
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	for _, path := range scrub {
		scrubPath(doc, strings.Split(path, "."))
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// scrubPath replaces the leaf at a dotted path with a fixed marker (a
// missing path is fine: the persist section only exists when
// persistence is on).
func scrubPath(doc map[string]any, path []string) {
	for len(path) > 1 {
		next, ok := doc[path[0]].(map[string]any)
		if !ok {
			return
		}
		doc, path = next, path[1:]
	}
	if _, ok := doc[path[0]]; ok {
		doc[path[0]] = "<scrubbed>"
	}
}

// diffLines renders a small line diff of two texts.
func diffLines(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	shown := 0
	for i := 0; i < n && shown < 20; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			fmt.Fprintf(&b, "  line %d: want %q, got %q\n", i+1, w, g)
			shown++
		}
	}
	return b.String()
}
