package server

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"disksig/internal/smart"
)

// latencyBoundsMs are the upper bounds (milliseconds) of the request
// latency histogram buckets; the last bucket is open-ended.
var latencyBoundsMs = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 1000}

// metrics is the server's expvar-style counter set. Everything is an
// atomic so the hot path never takes a lock; /metrics renders a
// consistent-enough snapshot for dashboards.
type metrics struct {
	requests     atomic.Int64
	requestsShed atomic.Int64
	byStatus     [6]atomic.Int64 // index status/100 (1xx..5xx; 0 unused)

	rowsIngested    atomic.Int64
	rowsKept        atomic.Int64
	rowsQuarantined atomic.Int64
	// rowsByClass counts decode-kept observations per device class —
	// the mixed-fleet dashboard's view of which population the ingest
	// traffic actually is.
	rowsByClass      [smart.NumClasses]atomic.Int64
	ingestReqJSON    atomic.Int64 // ingest requests per negotiated format
	ingestReqBinary  atomic.Int64
	ingestNotPrimary atomic.Int64 // writes rejected for landing on a non-primary

	alertsBySeverity [4]atomic.Int64 // indexed by monitor.Severity

	retrains        atomic.Int64 // completed retraining cycles
	retrainFailures atomic.Int64
	promotions      atomic.Int64 // cycles that swapped a new version in

	// batchesByVersion counts ingest batches per model version that
	// scored them — the counter that proves no batch straddled a swap.
	// Swaps are rare and the map tiny, so a mutex (not an atomic) is
	// fine here; the per-batch cost is one uncontended lock.
	verMu            sync.Mutex
	batchesByVersion map[int]int64

	latencyBuckets [len(latencyBoundsMs) + 1]atomic.Int64
	latencyCount   atomic.Int64
	latencySumUs   atomic.Int64
}

// observeBatchVersion counts one ingest batch against the model version
// that scored it.
func (m *metrics) observeBatchVersion(v int) {
	m.verMu.Lock()
	if m.batchesByVersion == nil {
		m.batchesByVersion = map[int]int64{}
	}
	m.batchesByVersion[v]++
	m.verMu.Unlock()
}

func (m *metrics) observeRequest(status int, elapsed time.Duration) {
	m.requests.Add(1)
	if c := status / 100; c >= 1 && c < len(m.byStatus) {
		m.byStatus[c].Add(1)
	}
	ms := float64(elapsed) / float64(time.Millisecond)
	bucket := len(latencyBoundsMs)
	for i, hi := range latencyBoundsMs {
		if ms <= hi {
			bucket = i
			break
		}
	}
	m.latencyBuckets[bucket].Add(1)
	m.latencyCount.Add(1)
	m.latencySumUs.Add(elapsed.Microseconds())
}

// snapshot renders the counters as the /metrics JSON document. The
// fleet-level fields (drives, shard occupancy, cumulative quarantine
// ledger) are added by the handler, which owns the store.
func (m *metrics) snapshot() map[string]any {
	byStatus := map[string]int64{}
	for c := 1; c < len(m.byStatus); c++ {
		if n := m.byStatus[c].Load(); n > 0 {
			byStatus[statusClass(c)] = n
		}
	}
	buckets := map[string]int64{}
	for i := range m.latencyBuckets {
		label := "+inf"
		if i < len(latencyBoundsMs) {
			label = formatMs(latencyBoundsMs[i])
		}
		buckets["le_"+label] = m.latencyBuckets[i].Load()
	}
	byVersion := map[string]int64{}
	m.verMu.Lock()
	for v, n := range m.batchesByVersion {
		byVersion["v"+strconv.Itoa(v)] = n
	}
	m.verMu.Unlock()
	latency := map[string]any{
		"count":      m.latencyCount.Load(),
		"buckets_ms": buckets,
	}
	if n := m.latencyCount.Load(); n > 0 {
		latency["mean_us"] = m.latencySumUs.Load() / n
	}
	return map[string]any{
		"requests": map[string]any{
			"total":     m.requests.Load(),
			"shed":      m.requestsShed.Load(),
			"by_status": byStatus,
		},
		"ingest": map[string]int64{
			"rows_ingested":        m.rowsIngested.Load(),
			"rows_kept":            m.rowsKept.Load(),
			"rows_quarantined":     m.rowsQuarantined.Load(),
			"rows_hdd":             m.rowsByClass[smart.HDD].Load(),
			"rows_ssd":             m.rowsByClass[smart.SSD].Load(),
			"requests_json":        m.ingestReqJSON.Load(),
			"requests_binary":      m.ingestReqBinary.Load(),
			"rejected_not_primary": m.ingestNotPrimary.Load(),
		},
		"alerts": map[string]int64{
			"watch":    m.alertsBySeverity[1].Load(),
			"warning":  m.alertsBySeverity[2].Load(),
			"critical": m.alertsBySeverity[3].Load(),
		},
		"models": map[string]any{
			"retrains":           m.retrains.Load(),
			"retrain_failures":   m.retrainFailures.Load(),
			"promotions":         m.promotions.Load(),
			"batches_by_version": byVersion,
		},
		"latency": latency,
	}
}

func statusClass(c int) string {
	return string(rune('0'+c)) + "xx"
}

func formatMs(ms float64) string {
	return strconv.FormatFloat(ms, 'g', -1, 64) + "ms"
}
