package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net/http"
	"strconv"

	"disksig/internal/persist"
)

// The admin transfer plane is the receive/serve side of a live shard
// handoff: the router exports the old owner's state (GET
// /v1/admin/export), streams the moving subset to the new owner as a
// resumable CRC-framed upload (POST /v1/admin/transfer/{id} chunks, then
// /commit), and finally drops the moved serials from the old owner
// (POST /v1/admin/drop). Every chunk carries its start offset in
// X-Transfer-Offset and a CRC-32C trailer over its payload; a chunk at
// the wrong offset is answered 409 with the offset the server expects,
// which is what makes the upload resumable after a dropped connection —
// the sender re-queries the high-water mark instead of restarting.

const (
	// TransferOffsetHeader carries a chunk's start offset into the
	// accumulated transfer body.
	TransferOffsetHeader = "X-Transfer-Offset"
	// transferTrailerSize is the CRC-32C trailer on every chunk.
	transferTrailerSize = 4
	// maxTransferSessions bounds concurrently open transfer buffers.
	maxTransferSessions = 16
	// maxTransferBytes bounds one accumulated transfer body.
	maxTransferBytes = 1 << 30
)

// transferCRC is the chunk-trailer checksum table.
var transferCRC = crc32.MakeTable(crc32.Castagnoli)

// handleExport serves the full fleet state as a bootstrap image — the
// same encoding the replication bootstrap uses, so the handoff pipeline
// reuses its framing and CRC. The image carries state, not WAL lineage;
// term and position are zero.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	img, err := persist.EncodeBootstrap(s.store.ExportState(), 0, persist.Position{})
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error": fmt.Sprintf("encoding state export: %v", err),
		})
		return
	}
	w.Header().Set("Content-Type", persist.BootstrapContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(img)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(img)
}

// handleTransferChunk appends one CRC-framed chunk to a transfer buffer.
func (s *Server) handleTransferChunk(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	offset, err := strconv.ParseInt(r.Header.Get(TransferOffsetHeader), 10, 64)
	if err != nil || offset < 0 {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("bad %s header %q", TransferOffsetHeader, r.Header.Get(TransferOffsetHeader)),
		})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]any{
				"error": fmt.Sprintf("chunk exceeds %d bytes", s.cfg.MaxBodyBytes),
			})
			return
		}
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("reading chunk: %v", err),
		})
		return
	}
	if buf.Len() < transferTrailerSize {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("chunk of %d bytes is shorter than its %d-byte CRC trailer", buf.Len(), transferTrailerSize),
		})
		return
	}
	chunk := buf.Bytes()
	payload, trailer := chunk[:len(chunk)-transferTrailerSize], chunk[len(chunk)-transferTrailerSize:]
	wantSum := uint32(trailer[0]) | uint32(trailer[1])<<8 | uint32(trailer[2])<<16 | uint32(trailer[3])<<24
	if sum := crc32.Checksum(payload, transferCRC); sum != wantSum {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("chunk checksum mismatch (computed %08x, trailer %08x)", sum, wantSum),
		})
		return
	}

	s.xferMu.Lock()
	defer s.xferMu.Unlock()
	t, ok := s.xfers[id]
	if !ok {
		if len(s.xfers) >= maxTransferSessions {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"error": fmt.Sprintf("%d transfer sessions already open", len(s.xfers)),
			})
			return
		}
		if s.xfers == nil {
			s.xfers = map[string]*transferBuf{}
		}
		t = &transferBuf{}
		s.xfers[id] = t
	}
	if offset != int64(len(t.buf)) {
		// Wrong offset: the sender lost track (dropped connection, retry
		// of an already-applied chunk). Telling it the high-water mark is
		// what makes the transfer resumable.
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":    fmt.Sprintf("chunk at offset %d, transfer %q is at %d", offset, id, len(t.buf)),
			"expected": len(t.buf),
		})
		return
	}
	if int64(len(t.buf))+int64(len(payload)) > maxTransferBytes {
		delete(s.xfers, id)
		writeJSON(w, http.StatusRequestEntityTooLarge, map[string]any{
			"error": fmt.Sprintf("transfer %q exceeds %d bytes", id, maxTransferBytes),
		})
		return
	}
	t.buf = append(t.buf, payload...)
	writeJSON(w, http.StatusOK, map[string]any{
		"received": len(payload),
		"offset":   len(t.buf),
	})
}

// handleTransferCommit decodes the accumulated image and merges its
// drives into the live store. The session is consumed on success and on
// decode failure (the image is corrupt; resending chunks into it cannot
// help), but kept on an import conflict so the error is inspectable.
func (s *Server) handleTransferCommit(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.xferMu.Lock()
	t, ok := s.xfers[id]
	s.xferMu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{
			"error": fmt.Sprintf("unknown transfer %q", id),
		})
		return
	}
	st, _, _, err := persist.DecodeBootstrap(t.buf)
	if err != nil {
		s.dropTransfer(id)
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("decoding transfer %q: %v", id, err),
		})
		return
	}
	imported, err := s.store.ImportEntries(st)
	if err != nil {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":    fmt.Sprintf("importing transfer %q: %v", id, err),
			"imported": imported,
		})
		return
	}
	s.dropTransfer(id)
	doc := map[string]any{
		"imported": imported,
		"bytes":    len(t.buf),
	}
	// A durable node must persist what it just absorbed: WAL replay knows
	// nothing of imported drives, so without a snapshot a restart would
	// forget them. The import itself is already live either way.
	if s.cfg.Persist != nil {
		if _, err := s.cfg.Persist.Snapshot(s.store); err != nil {
			if s.cfg.Log != nil {
				s.cfg.Log.Printf("post-import snapshot failed: %v", err)
			}
			doc["snapshot_error"] = err.Error()
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleTransferAbort discards a transfer buffer. Idempotent.
func (s *Server) handleTransferAbort(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.dropTransfer(id)
	writeJSON(w, http.StatusOK, map[string]any{"aborted": id})
}

func (s *Server) dropTransfer(id string) {
	s.xferMu.Lock()
	delete(s.xfers, id)
	s.xferMu.Unlock()
}

// handleDrop removes serials from the store — the final step of a
// handoff, after the new owner has committed and the map has flipped.
// Removal releases each drive's quality-ledger contribution too, so a
// moved drive's accounting lives on exactly one node.
func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req struct {
		Serials []string `json:"serials"`
	}
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("malformed request body: %v", err),
		})
		return
	}
	dropped := 0
	for _, serial := range req.Serials {
		// Remove reports false for quarantine-only drives but still
		// releases their ledger contribution; both count as moved.
		if s.store.Remove(serial) {
			dropped++
		}
	}
	doc := map[string]any{
		"requested": len(req.Serials),
		"dropped":   dropped,
	}
	if s.cfg.Persist != nil && len(req.Serials) > 0 {
		if _, err := s.cfg.Persist.Snapshot(s.store); err != nil {
			if s.cfg.Log != nil {
				s.cfg.Log.Printf("post-drop snapshot failed: %v", err)
			}
			doc["snapshot_error"] = err.Error()
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// transferBuf accumulates one resumable transfer.
type transferBuf struct {
	buf []byte
}
