package server

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// statusWriter captures the status code and body size for access logs
// and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// logLinePool recycles access-log line buffers: the line is appended
// into a pooled []byte instead of being fmt-formatted, so logging a
// request costs one string conversion, not a box per operand.
var logLinePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 192)
	return &b
}}

// instrument wraps a handler with metrics and structured access logging.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.m.observeRequest(sw.status, elapsed)
		if s.cfg.Log != nil {
			bp := logLinePool.Get().(*[]byte)
			b := (*bp)[:0]
			b = append(b, "method="...)
			b = append(b, r.Method...)
			b = append(b, " path="...)
			b = append(b, r.URL.Path...)
			b = append(b, " status="...)
			b = strconv.AppendInt(b, int64(sw.status), 10)
			b = append(b, " bytes="...)
			b = strconv.AppendInt(b, int64(sw.bytes), 10)
			b = append(b, " dur="...)
			b = append(b, elapsed.Round(time.Microsecond).String()...)
			b = append(b, " remote="...)
			b = append(b, r.RemoteAddr...)
			_ = s.cfg.Log.Output(2, string(b))
			*bp = b
			logLinePool.Put(bp)
		}
	})
}

// limitConcurrency is the load-shedding middleware: each request must
// hold one unit of the in-flight semaphore. A request that cannot get a
// slot immediately waits up to Config.QueueWait (bounded additionally by
// its own context) and is then shed with 429 instead of queueing
// unboundedly — bounded queues are what keep tail latency finite under
// overload.
func (s *Server) limitConcurrency(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.sem.TryAcquire(1) {
			acquired := false
			if s.cfg.QueueWait > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueueWait)
				acquired = s.sem.Acquire(ctx, 1) == nil
				cancel()
			}
			if !acquired {
				s.m.requestsShed.Add(1)
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.QueueWait)))
				writeJSON(w, http.StatusTooManyRequests, map[string]any{
					"error": "server at concurrency limit, retry later",
				})
				return
			}
		}
		defer s.sem.Release(1)
		next.ServeHTTP(w, r)
	})
}

// retryAfterSeconds derives the Retry-After hint from the queue-wait
// budget, rounding UP to whole seconds. Retry-After carries integral
// seconds, and a sub-second QueueWait naively truncated would emit
// "Retry-After: 0" — an instruction to hammer an overloaded server.
// The floor is always 1 second.
func retryAfterSeconds(wait time.Duration) int {
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
