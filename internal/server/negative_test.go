package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"disksig/internal/fleet"
	"disksig/internal/monitor"
	"disksig/internal/persist"
)

// sizedIngestBody builds a syntactically valid ingest body of exactly n
// bytes by padding the record's serial. The padding sits INSIDE the
// JSON value, so a decoder must read every byte to finish parsing —
// trailing whitespace would not do, since Decode stops at the end of
// the value and never touches bytes beyond it.
func sizedIngestBody(t *testing.T, n int) []byte {
	t.Helper()
	shape := func(pad int) []byte {
		return []byte(fmt.Sprintf(
			`{"records":[{"serial":"%s","hour":0,"values":[0,0,0,0,0,0,0,0,0,0,0,0]}]}`,
			strings.Repeat("a", pad)))
	}
	base := len(shape(0))
	if n < base {
		t.Fatalf("cannot build a %d-byte body; minimum is %d", n, base)
	}
	body := shape(n - base)
	if len(body) != n {
		t.Fatalf("built %d bytes, want %d", len(body), n)
	}
	return body
}

// TestIngestBodySizeBoundary pins the MaxBytesReader limit exactly: a
// body of MaxBodyBytes is accepted, one byte more is 413.
func TestIngestBodySizeBoundary(t *testing.T) {
	const limit = 512
	srv := testServer(t, fleet.Config{Shards: 2, Monitor: monitor.Config{Smoothing: 1}},
		Config{MaxBodyBytes: limit})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		size int
		want int
	}{
		{name: "at-limit", size: limit, want: http.StatusOK},
		{name: "one-over", size: limit + 1, want: http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := sizedIngestBody(t, tc.size)
			resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("%d-byte body: status %d, want %d", tc.size, resp.StatusCode, tc.want)
			}
			if tc.want != http.StatusOK {
				return
			}
			doc := decodeJSON(t, resp.Body)
			if doc["ingested"].(float64) != 1 {
				t.Fatalf("at-limit body ingested %v records, want 1", doc["ingested"])
			}
		})
	}
}

// TestIngestMalformedBodies drives the 400/200 edges of the ingest
// decoder: empty batches are fine, unknown fields anywhere are not.
func TestIngestMalformedBodies(t *testing.T) {
	srv := testServer(t, fleet.Config{Shards: 2, Monitor: monitor.Config{Smoothing: 1}}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
		// wantIngested only checked for 200s.
		wantIngested float64
	}{
		{name: "empty-batch", body: `{"records":[]}`, want: http.StatusOK, wantIngested: 0},
		{name: "missing-records-key", body: `{}`, want: http.StatusOK, wantIngested: 0},
		{name: "unknown-top-level-field", body: `{"records":[],"extre":1}`, want: http.StatusBadRequest},
		{name: "unknown-record-field",
			body: `{"records":[{"serial":"X","hour":0,"values":[0,0,0,0,0,0,0,0,0,0,0,0],"huor":3}]}`,
			want: http.StatusBadRequest},
		{name: "not-json", body: `{not json`, want: http.StatusBadRequest},
		{name: "wrong-shape", body: `{"records":42}`, want: http.StatusBadRequest},
		{name: "empty-body", body: ``, want: http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			doc := decodeJSON(t, resp.Body)
			if tc.want == http.StatusOK {
				if doc["ingested"].(float64) != tc.wantIngested {
					t.Fatalf("ingested %v, want %v", doc["ingested"], tc.wantIngested)
				}
			} else if doc["error"] == nil {
				t.Fatal("400 response has no error field")
			}
		})
	}
}

// TestShedResponseFormat holds one request in flight on a 1-slot server
// and checks the shed response end-to-end: 429, a Retry-After header
// that parses as an integer >= 1, and a JSON error body.
func TestShedResponseFormat(t *testing.T) {
	srv := testServer(t, fleet.Config{Shards: 2, Monitor: monitor.Config{Smoothing: 1}},
		Config{MaxInFlight: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.testHoldIngest = func() { close(entered); <-release }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json",
			bytes.NewReader(ingestBody(t, [3]any{"SER-1", 0, 0.5})))
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	<-entered

	resp, err := http.Get(ts.URL + "/v1/fleet/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", ra, err)
	}
	if secs < 1 {
		t.Fatalf("Retry-After %d, want >= 1", secs)
	}
	doc := decodeJSON(t, resp.Body)
	if doc["error"] == nil {
		t.Fatal("shed response has no error field")
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestMethodNegotiation sweeps HEAD and OPTIONS (plus a wrong method)
// across every route. Go 1.22 method patterns answer HEAD on GET routes
// and reject everything unregistered with 405 + Allow.
func TestMethodNegotiation(t *testing.T) {
	dir := t.TempDir()
	mgr, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv := testServer(t, fleet.Config{Shards: 2, Monitor: monitor.Config{Smoothing: 1}},
		Config{Persist: mgr})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Seed one drive so GET routes have something to serve.
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json",
		bytes.NewReader(ingestBody(t, [3]any{"SER-1", 0, 0.5})))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	routes := []struct {
		path string
		// allowed is the registered method; HEAD is implicitly allowed on
		// GET routes by the Go 1.22 mux.
		allowed string
	}{
		{path: "/v1/ingest", allowed: http.MethodPost},
		{path: "/v1/drives/SER-1", allowed: http.MethodGet},
		{path: "/v1/fleet/summary", allowed: http.MethodGet},
		{path: "/v1/admin/snapshot", allowed: http.MethodPost},
		{path: "/healthz", allowed: http.MethodGet},
		{path: "/metrics", allowed: http.MethodGet},
	}
	for _, rt := range routes {
		for _, method := range []string{http.MethodHead, http.MethodOptions, http.MethodDelete} {
			t.Run(method+" "+rt.path, func(t *testing.T) {
				req, err := http.NewRequest(method, ts.URL+rt.path, nil)
				if err != nil {
					t.Fatal(err)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()

				want := http.StatusMethodNotAllowed
				if method == http.MethodHead && rt.allowed == http.MethodGet {
					want = http.StatusOK
				}
				if resp.StatusCode != want {
					t.Fatalf("%s %s: status %d, want %d", method, rt.path, resp.StatusCode, want)
				}
				if want == http.StatusMethodNotAllowed {
					allow := resp.Header.Get("Allow")
					if !strings.Contains(allow, rt.allowed) {
						t.Fatalf("%s %s: Allow %q does not include %s", method, rt.path, allow, rt.allowed)
					}
				} else if n, _ := resp.Body.Read(make([]byte, 1)); n != 0 {
					t.Fatalf("HEAD %s returned a body", rt.path)
				}
			})
		}
	}

	// Without persistence the admin route does not exist at all.
	srvNoPersist := testServer(t, fleet.Config{Shards: 2, Monitor: monitor.Config{Smoothing: 1}}, Config{})
	ts2 := httptest.NewServer(srvNoPersist.Handler())
	defer ts2.Close()
	resp2, err := http.Post(ts2.URL+"/v1/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("admin snapshot without persistence: status %d, want 404", resp2.StatusCode)
	}
}
