package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"disksig/internal/fleet"
	"disksig/internal/monitor"
	"disksig/internal/persist"
	"disksig/internal/smart"
)

// shipObs builds a one-observation batch scored by RRER, the attribute
// every test predictor in this package reads.
func shipObs(serial string, hour int, score float64) []fleet.Observation {
	var v smart.Values
	v[smart.RRER] = score
	return []fleet.Observation{{Serial: serial, Record: smart.Record{Hour: hour, Values: v}}}
}

// sourceFrames logs batches through a scratch WAL and returns the raw
// frame bytes plus the positions bracketing them — exactly what a
// primary would ship.
func sourceFrames(t *testing.T, batches ...[]fleet.Observation) (frames []byte, start, end persist.Position) {
	t.Helper()
	m, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	start = m.Position()
	for _, b := range batches {
		if _, _, err := m.LogBatch(b, func() fleet.BatchResult { return fleet.BatchResult{} }); err != nil {
			t.Fatal(err)
		}
	}
	end = m.Position()
	frames, got, err := m.ReadWALFrames(start.Epoch, start.Offset, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got != end.Offset {
		t.Fatalf("read frames end at %d, want %d", got, end.Offset)
	}
	return frames, start, end
}

// shipPost sends one raw ship request and returns the status plus the
// decoded ack body.
func shipPost(t *testing.T, base string, term uint64, from persist.Position, frames []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/v1/replication/ship", persist.ShipContentType,
		bytes.NewReader(persist.EncodeShipRequest(term, from, frames)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, decodeJSON(t, resp.Body)
}

func replStatus(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/v1/replication/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return decodeJSON(t, resp.Body)
}

func TestFollowerRejectsDirectWritesWithLeaderHint(t *testing.T) {
	srv := testServer(t, fleet.Config{}, Config{Replication: &ReplicationOptions{
		Role:      RoleFollower,
		Term:      1,
		LeaderURL: "http://leader.example",
	}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json",
		bytes.NewReader(ingestBody(t, [3]any{"SER-1", 0, 0.9})))
	if err != nil {
		t.Fatal(err)
	}
	doc := decodeJSON(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write on follower = %d, want 503", resp.StatusCode)
	}
	if doc["leader"] != "http://leader.example" {
		t.Fatalf("503 leader hint = %v, want the leader URL", doc["leader"])
	}
	if got := srv.store.Tracked(); got != 0 {
		t.Fatalf("rejected write still tracked %d drives", got)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met := decodeJSON(t, mresp.Body)
	mresp.Body.Close()
	if got := met["ingest"].(map[string]any)["rejected_not_primary"]; got != float64(1) {
		t.Fatalf("rejected_not_primary = %v, want 1", got)
	}
}

// The ship protocol end to end against a real follower server: fencing,
// apply, idempotent duplicate skip, gap conflict, and term adoption.
func TestShipFenceApplyDuplicateAndGap(t *testing.T) {
	frames, start, end := sourceFrames(t,
		shipObs("SER-A", 0, 0.9),
		shipObs("SER-B", 0, 0.9),
	)
	srv := testServer(t, fleet.Config{Shards: 2, Monitor: monitor.Config{Smoothing: 1}},
		Config{Replication: &ReplicationOptions{Role: RoleFollower, Term: 3, Expected: start}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A deposed primary's term bounces off with the follower's term in
	// the body, and nothing is applied.
	code, ack := shipPost(t, ts.URL, 2, start, frames)
	if code != http.StatusForbidden {
		t.Fatalf("stale-term ship = %d, want 403", code)
	}
	if ack["term"] != float64(3) {
		t.Fatalf("fence ack term = %v, want 3", ack["term"])
	}
	if srv.store.Tracked() != 0 {
		t.Fatal("fenced frames were applied")
	}

	// The live term applies and acks the new high-water mark.
	code, ack = shipPost(t, ts.URL, 3, start, frames)
	if code != http.StatusOK {
		t.Fatalf("ship = %d, want 200", code)
	}
	if ack["offset"] != float64(end.Offset) {
		t.Fatalf("ack offset = %v, want %d", ack["offset"], end.Offset)
	}
	if srv.store.Tracked() != 2 {
		t.Fatalf("follower tracks %d drives, want 2", srv.store.Tracked())
	}

	// A re-shipped chunk (lost ack) is skipped frame by frame, never
	// re-applied: WAL replay is not idempotent.
	code, ack = shipPost(t, ts.URL, 3, start, frames)
	if code != http.StatusOK || ack["offset"] != float64(end.Offset) {
		t.Fatalf("duplicate ship = %d ack %v, want 200 at %d", code, ack["offset"], end.Offset)
	}
	st := replStatus(t, ts.URL)
	if st["rows_applied"] != float64(2) {
		t.Fatalf("rows_applied = %v after duplicate ship, want 2", st["rows_applied"])
	}
	if st["duplicate_frames"].(float64) == 0 {
		t.Fatal("duplicate frames not counted")
	}

	// A gap — frames the follower never saw would be skipped — conflicts
	// with the actual high-water mark in the ack so the sender resyncs.
	code, ack = shipPost(t, ts.URL, 3, persist.Position{Epoch: end.Epoch, Offset: end.Offset + 64}, nil)
	if code != http.StatusConflict {
		t.Fatalf("gapped ship = %d, want 409", code)
	}
	if ack["offset"] != float64(end.Offset) {
		t.Fatalf("conflict ack offset = %v, want %d", ack["offset"], end.Offset)
	}

	// A newer term on the same stream (a re-promoted primary) is adopted.
	code, _ = shipPost(t, ts.URL, 5, end, nil)
	if code != http.StatusOK {
		t.Fatalf("newer-term heartbeat = %d, want 200", code)
	}
	if got := srv.Term(); got != 5 {
		t.Fatalf("follower term after adoption = %d, want 5", got)
	}
}

// A frame torn in transit: the intact prefix applies, the 409 ack names
// exactly where the sender must resume, and the re-ship completes
// without double-applying the prefix.
func TestShipTornFrameAppliesPrefixAndRecovers(t *testing.T) {
	frames, start, end := sourceFrames(t,
		shipObs("SER-A", 0, 0.9),
		shipObs("SER-B", 0, 0.9),
	)
	srv := testServer(t, fleet.Config{Shards: 2, Monitor: monitor.Config{Smoothing: 1}},
		Config{Replication: &ReplicationOptions{Role: RoleFollower, Term: 1, Expected: start}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, ack := shipPost(t, ts.URL, 1, start, frames[:len(frames)-4])
	if code != http.StatusConflict {
		t.Fatalf("torn ship = %d, want 409", code)
	}
	resume := int64(ack["offset"].(float64))
	if resume <= start.Offset || resume >= end.Offset {
		t.Fatalf("torn ack offset %d outside (%d, %d): prefix not applied or tear swallowed", resume, start.Offset, end.Offset)
	}
	if srv.store.Tracked() != 1 {
		t.Fatalf("follower tracks %d drives after torn ship, want 1 (the intact prefix)", srv.store.Tracked())
	}

	code, ack = shipPost(t, ts.URL, 1, persist.Position{Epoch: start.Epoch, Offset: resume}, frames[resume-start.Offset:])
	if code != http.StatusOK || ack["offset"] != float64(end.Offset) {
		t.Fatalf("re-ship = %d ack %v, want 200 at %d", code, ack["offset"], end.Offset)
	}
	if srv.store.Tracked() != 2 {
		t.Fatalf("follower tracks %d drives after recovery, want 2", srv.store.Tracked())
	}
	st := replStatus(t, ts.URL)
	if st["rows_applied"] != float64(2) {
		t.Fatalf("rows_applied = %v, want 2 (no double apply)", st["rows_applied"])
	}
}

// An epoch advance (the primary snapshotted) is accepted only at the
// very start of the new epoch — anything else means frames were lost.
func TestShipEpochAdvanceOnlyAtStart(t *testing.T) {
	_, start, _ := sourceFrames(t, shipObs("SER-A", 0, 0.9))
	srv := testServer(t, fleet.Config{Shards: 2},
		Config{Replication: &ReplicationOptions{Role: RoleFollower, Term: 1, Expected: start}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _ := shipPost(t, ts.URL, 1, persist.Position{Epoch: start.Epoch + 1, Offset: start.Offset + 999}, nil)
	if code != http.StatusConflict {
		t.Fatalf("mid-epoch jump = %d, want 409", code)
	}
	code, ack := shipPost(t, ts.URL, 1, persist.StartPosition(start.Epoch+1), nil)
	if code != http.StatusOK {
		t.Fatalf("epoch-start heartbeat = %d, want 200", code)
	}
	if ack["epoch"] != float64(start.Epoch+1) {
		t.Fatalf("ack epoch = %v, want %d", ack["epoch"], start.Epoch+1)
	}
}

// Bootstrap hands a follower the primary's live state — restorable at a
// different shard count — plus the exact stream position, and attaches
// the shipper before the response leaves.
func TestBootstrapFollowerAtDifferentShardCount(t *testing.T) {
	dir := t.TempDir()
	mgr, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	fcfg := fleet.Config{Shards: 2, Monitor: monitor.Config{Smoothing: 1}}
	store := persistStore(t, fcfg)
	srv := New(store, Config{Persist: mgr, Replication: &ReplicationOptions{
		Role: RolePrimary, Term: 1, SelfURL: "http://primary.example",
	}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer mgr.DetachShipper()

	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json",
		bytes.NewReader(ingestBody(t, [3]any{"SER-1", 0, 0.9}, [3]any{"SER-2", 0, -0.9})))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("primary ingest = %d, want 200 (no follower attached yet)", resp.StatusCode)
	}

	fst, bopts, err := BootstrapFollower(ts.URL, "http://follower.example",
		fleet.Config{Shards: 8, Monitor: fcfg.Monitor}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fst.Shards() != 8 {
		t.Fatalf("follower restored at %d shards, want 8", fst.Shards())
	}
	want := store.ExportState()
	want.Quality.StripDiagnostics()
	got := fst.ExportState()
	got.Quality.StripDiagnostics()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("bootstrapped follower state differs from the primary")
	}
	if bopts.Role != RoleFollower || bopts.Term != 1 || bopts.LeaderURL != ts.URL {
		t.Fatalf("bootstrap options = %+v", bopts)
	}
	if bopts.Expected != mgr.Position() {
		t.Fatalf("bootstrap expects %s, primary WAL is at %s", bopts.Expected, mgr.Position())
	}
	sh := mgr.AttachedShipper()
	if sh == nil {
		t.Fatal("bootstrap did not attach the shipper")
	}
	if st := sh.Stats(); st.FollowerURL != "http://follower.example" {
		t.Fatalf("shipper follows %q", st.FollowerURL)
	}

	// A non-primary refuses to hand out bootstrap images.
	mgr2, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	fsrv := testServer(t, fcfg, Config{Persist: mgr2, Replication: &ReplicationOptions{Role: RoleFollower, Term: 1}})
	fts := httptest.NewServer(fsrv.Handler())
	defer fts.Close()
	if _, _, err := BootstrapFollower(fts.URL, "http://x.example", fcfg, nil); err == nil {
		t.Fatal("bootstrapping from a follower succeeded")
	}
}

func TestPromoteBumpsTermIdempotentlyAndOpensWrites(t *testing.T) {
	srv := testServer(t, fleet.Config{Shards: 2, Monitor: monitor.Config{Smoothing: 1}},
		Config{Replication: &ReplicationOptions{Role: RoleFollower, Term: 3, SelfURL: "http://me.example"}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	promote := func() map[string]any {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/replication/promote", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("promote = %d, want 200", resp.StatusCode)
		}
		return decodeJSON(t, resp.Body)
	}
	doc := promote()
	if doc["role"] != "primary" || doc["term"] != float64(4) {
		t.Fatalf("promote doc = %v, want primary at term 4", doc)
	}
	// Idempotent: promoting a primary changes nothing.
	if doc = promote(); doc["term"] != float64(4) {
		t.Fatalf("second promote term = %v, want 4", doc["term"])
	}

	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json",
		bytes.NewReader(ingestBody(t, [3]any{"SER-1", 0, 0.9})))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after promotion = %d, want 200", resp.StatusCode)
	}
	st := replStatus(t, ts.URL)
	if st["leader"] != "http://me.example" {
		t.Fatalf("promoted leader = %v, want own SelfURL", st["leader"])
	}
}

func TestReadinessReflectsRoleAndLag(t *testing.T) {
	ready := func(srv *Server) (int, map[string]any) {
		t.Helper()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		resp, err := http.Get(ts.URL + "/healthz/ready")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode, decodeJSON(t, resp.Body)
	}

	// Standalone and primary are always ready.
	if code, doc := ready(testServer(t, fleet.Config{}, Config{})); code != http.StatusOK || doc["role"] != "standalone" {
		t.Fatalf("standalone ready = %d %v", code, doc)
	}
	if code, _ := ready(testServer(t, fleet.Config{}, Config{Replication: &ReplicationOptions{Role: RolePrimary, Term: 1}})); code != http.StatusOK {
		t.Fatalf("primary ready = %d, want 200", code)
	}

	// A fresh follower is ready; one past its ReadyLag is stale. Both
	// answers carry the measured lag AND the gate it is judged against,
	// so a router can see how far behind a follower is.
	fresh := testServer(t, fleet.Config{}, Config{Replication: &ReplicationOptions{Role: RoleFollower, Term: 1}})
	if code, doc := ready(fresh); code != http.StatusOK || doc["role"] != "follower" {
		t.Fatalf("fresh follower ready = %d %v", code, doc)
	} else if doc["ready_lag_ms"].(float64) <= 0 {
		t.Fatalf("fresh follower does not report its gate: %v", doc)
	}
	stale := testServer(t, fleet.Config{}, Config{Replication: &ReplicationOptions{Role: RoleFollower, Term: 1, ReadyLag: time.Millisecond}})
	time.Sleep(10 * time.Millisecond)
	if code, doc := ready(stale); code != http.StatusServiceUnavailable {
		t.Fatalf("stale follower ready = %d %v, want 503", code, doc)
	} else if doc["ready_lag_ms"].(float64) != 1 || doc["lag_ms"].(float64) <= doc["ready_lag_ms"].(float64) {
		t.Fatalf("stale follower must report lag vs gate: %v", doc)
	}

	// Mid-promotion, the node takes no traffic.
	cand := testServer(t, fleet.Config{}, Config{Replication: &ReplicationOptions{Role: RoleFollower, Term: 1}})
	cand.repl.mu.Lock()
	cand.repl.role = RoleCandidate
	cand.repl.mu.Unlock()
	if code, doc := ready(cand); code != http.StatusServiceUnavailable || doc["status"] != "promoting" {
		t.Fatalf("candidate ready = %d %v, want 503 promoting", code, doc)
	}

	// The bare /healthz alias stays pure liveness: a stale follower is
	// alive even when it is not ready.
	ts := httptest.NewServer(stale.Handler())
	defer ts.Close()
	for _, path := range []string{"/healthz", "/healthz/live"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s on stale follower = %d, want 200", path, resp.StatusCode)
		}
	}
}

// A ship request mid-promotion is answered 503 (retry), not applied and
// not fenced — the term bump has not landed yet.
func TestShipDuringPromotionBounces(t *testing.T) {
	_, start, _ := sourceFrames(t, shipObs("SER-A", 0, 0.9))
	srv := testServer(t, fleet.Config{Shards: 2},
		Config{Replication: &ReplicationOptions{Role: RoleFollower, Term: 1, Expected: start}})
	srv.repl.mu.Lock()
	srv.repl.role = RoleCandidate
	srv.repl.mu.Unlock()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _ := shipPost(t, ts.URL, 1, start, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("ship during promotion = %d, want 503", code)
	}
}

// The whole pair, end to end over real HTTP: bootstrap, synchronous
// replicated writes, a snapshot's drain barrier, auto-promotion when
// the primary dies, the deposed primary fencing itself on its next
// shipped frame, and writes resuming on the survivor.
func TestReplicatedPairEndToEndFailover(t *testing.T) {
	fcfg := fleet.Config{Shards: 2, Monitor: monitor.Config{Smoothing: 1}}
	mgr1, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer mgr1.Close()
	srv1 := New(persistStore(t, fcfg), Config{Persist: mgr1, Replication: &ReplicationOptions{
		Role: RolePrimary, Term: 1,
	}})
	ts1 := httptest.NewServer(srv1.Handler())
	primaryDown := false
	defer func() {
		if !primaryDown {
			ts1.Close()
		}
	}()

	// The follower must know its own URL before it can bootstrap, and
	// needs the bootstrap before it has a handler — so the listener comes
	// up first, behind an indirection.
	var follower atomic.Pointer[http.Handler]
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h := follower.Load(); h != nil {
			(*h).ServeHTTP(w, r)
			return
		}
		http.Error(w, "still bootstrapping", http.StatusServiceUnavailable)
	}))
	defer ts2.Close()
	mgr2, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	store2, bopts, err := BootstrapFollower(ts1.URL, ts2.URL,
		fleet.Config{Shards: 8, Monitor: fcfg.Monitor}, mgr2)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(store2, Config{Persist: mgr2, Replication: &bopts})
	h := srv2.Handler()
	follower.Store(&h)

	ingest := func(ts *httptest.Server, recs ...[3]any) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json",
			bytes.NewReader(ingestBody(t, recs...)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// A replicated write: the primary's 200 is issued only after the
	// follower acked, and the ack only after the apply — so the rows are
	// on the follower the moment the client hears back.
	if code := ingest(ts1, [3]any{"SER-1", 0, 0.9}, [3]any{"SER-2", 0, 0.9}); code != http.StatusOK {
		t.Fatalf("replicated ingest = %d, want 200", code)
	}
	if got := store2.Tracked(); got != 2 {
		t.Fatalf("follower tracks %d drives after acked write, want 2", got)
	}
	st := replStatus(t, ts1.URL)
	if st["shipper"] == nil {
		t.Fatalf("primary status shows no shipper: %v", st)
	}

	// A snapshot resets the primary's WAL; the drain barrier means the
	// stream survives it and the next write replicates in the new epoch.
	resp, err := http.Post(ts1.URL+"/v1/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot = %d, want 200", resp.StatusCode)
	}
	if mgr1.AttachedShipper() == nil {
		t.Fatal("snapshot detached a healthy shipper")
	}
	if code := ingest(ts1, [3]any{"SER-3", 0, 0.9}); code != http.StatusOK {
		t.Fatalf("post-snapshot ingest = %d, want 200", code)
	}
	if got := store2.Tracked(); got != 3 {
		t.Fatalf("follower tracks %d drives after epoch advance, want 3", got)
	}

	// Kill the primary; the watcher notices and self-promotes.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		srv2.WatchPrimary(ctx, 10*time.Millisecond, 40*time.Millisecond)
		close(done)
	}()
	ts1.Close()
	primaryDown = true
	deadline := time.Now().Add(10 * time.Second)
	for srv2.Role() != RolePrimary {
		if time.Now().After(deadline) {
			t.Fatal("follower never promoted itself")
		}
		time.Sleep(2 * time.Millisecond)
	}
	<-done
	if got := srv2.Term(); got != 2 {
		t.Fatalf("promoted term = %d, want 2", got)
	}

	// The deposed primary logs one more batch; its shipper carries the
	// old term, the promoted node 403s it, and the fence callback steps
	// the deposed node down. The ghost never lands.
	if _, _, err := mgr1.LogBatch(shipObs("GHOST", 0, 0.9), func() fleet.BatchResult { return fleet.BatchResult{} }); err != nil {
		t.Fatal(err)
	}
	for srv1.Role() != RoleFollower {
		if time.Now().After(deadline) {
			t.Fatal("deposed primary never stepped down")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := store2.Tracked(); got != 3 {
		t.Fatalf("promoted node tracks %d drives, want 3 (ghost fenced out)", got)
	}

	// Writes flow on the survivor.
	if code := ingest(ts2, [3]any{"SER-4", 0, 0.9}); code != http.StatusOK {
		t.Fatalf("ingest on promoted node = %d, want 200", code)
	}
	if doc := replStatus(t, ts2.URL); doc["role"] != "primary" {
		t.Fatalf("survivor role = %v, want primary", doc["role"])
	}
}
