// Package server is the network surface of the fleet health service: a
// net/http JSON API over the sharded fleet store. It ingests batched
// SMART telemetry (POST /v1/ingest), serves per-drive health and
// fleet-wide roll-ups (GET /v1/drives/{serial}, GET /v1/fleet/summary),
// and exposes liveness and expvar-style counters (GET /healthz,
// GET /metrics). The request path is defended the way a production
// ingest tier has to be: request bodies are size-capped (413), in-flight
// requests are bounded by a semaphore that sheds overload with 429,
// defective records are quarantined per-record with a quality ledger in
// the response instead of failing the batch, and shutdown drains
// in-flight requests before returning.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"disksig/internal/fleet"
	"disksig/internal/learn"
	"disksig/internal/monitor"
	"disksig/internal/parallel"
	"disksig/internal/persist"
	"disksig/internal/quality"
	"disksig/internal/smart"
	"disksig/internal/wire"
)

// Config parameterizes the server.
type Config struct {
	// MaxBodyBytes caps the POST /v1/ingest request body; larger bodies
	// get 413. <= 0 means 8 MiB.
	MaxBodyBytes int64
	// MaxInFlight bounds concurrently served requests (healthz and
	// metrics are exempt: observability must work during overload).
	// <= 0 means 64.
	MaxInFlight int
	// QueueWait is how long a request may wait for an in-flight slot
	// before being shed with 429; 0 sheds immediately.
	QueueWait time.Duration
	// SummaryTopN caps the at_risk list of /v1/fleet/summary (the "top"
	// query parameter can lower it per request). <= 0 means 10.
	SummaryTopN int
	// Log receives structured access logs and server errors; nil
	// disables logging.
	Log *log.Logger
	// Persist, when set, makes ingestion durable: every batch is
	// appended to the write-ahead log before it is applied (WAL failures
	// fail the request with 500 — an unlogged batch would not survive a
	// restart), POST /v1/admin/snapshot is served, and persistence
	// counters appear in /metrics.
	Persist *persist.Manager
	// SnapshotEvery starts a background snapshot ticker at this period
	// when Persist is set; <= 0 disables the ticker (snapshots then
	// happen only via the admin endpoint and shutdown).
	SnapshotEvery time.Duration
	// IngestDelay artificially holds every ingest request inside the
	// concurrency limiter for this long before it is processed — a
	// load-testing knob modelling slow, disk-backed ingestion so
	// overload tests can drive the server into its shedding regime
	// regardless of host speed. 0 (production) disables it.
	IngestDelay time.Duration
	// Replication, when set, puts the server in a replicated pair: a
	// primary ships its WAL to a follower and holds ingest acks for the
	// follower's confirmation; a follower applies shipped frames and
	// sends writers to the leader with a 503 hint. nil means standalone.
	Replication *ReplicationOptions
	// Retrain, when set, enables the online-learning surface: POST
	// /v1/admin/retrain runs a retraining cycle on demand and
	// GET /v1/models/status reports the serving model set and the last
	// cycle's outcome. The retrainer's Promote hook decides what a
	// promotion does (typically persist + hot swap).
	Retrain *learn.Retrainer
	// RetrainEvery starts a background retraining ticker at this period
	// when Retrain is set; <= 0 disables the ticker (cycles then run
	// only via the admin endpoint).
	RetrainEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.SummaryTopN <= 0 {
		c.SummaryTopN = 10
	}
	return c
}

// Server serves the fleet health API.
type Server struct {
	store *fleet.Store
	cfg   Config
	m     metrics
	sem   *parallel.Semaphore
	repl  *replication

	mu          sync.Mutex
	http        *http.Server
	snapStop    chan struct{}
	retrainStop chan struct{}

	// lastRetrain is the most recent retraining cycle's outcome, served
	// by GET /v1/models/status.
	retrainMu   sync.Mutex
	lastRetrain *learn.Result

	// xfers holds in-progress resumable state transfers (admin.go).
	xferMu sync.Mutex
	xfers  map[string]*transferBuf

	// testHoldIngest, when set, is called by the ingest handler after
	// decoding and before responding — the shutdown-drain test uses it
	// to keep a request in flight deterministically.
	testHoldIngest func()
}

// New builds a server over a fleet store.
func New(store *fleet.Store, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		store: store,
		cfg:   cfg,
		sem:   parallel.NewSemaphore(int64(cfg.MaxInFlight)),
	}
	if cfg.Replication != nil {
		s.repl = newReplication(*cfg.Replication)
	}
	return s
}

// Handler returns the fully middleware-wrapped API handler.
func (s *Server) Handler() http.Handler {
	limited := http.NewServeMux()
	limited.HandleFunc("POST /v1/ingest", s.handleIngest)
	limited.HandleFunc("GET /v1/drives/{serial}", s.handleDrive)
	limited.HandleFunc("GET /v1/fleet/summary", s.handleSummary)
	if s.cfg.Persist != nil {
		limited.HandleFunc("POST /v1/admin/snapshot", s.handleSnapshot)
	}
	limited.HandleFunc("GET /v1/models/status", s.handleModelStatus)
	if s.cfg.Retrain != nil {
		limited.HandleFunc("POST /v1/admin/retrain", s.handleRetrain)
	}
	// The handoff plane: state export, resumable transfer-in, drop-out.
	limited.HandleFunc("GET /v1/admin/export", s.handleExport)
	limited.HandleFunc("POST /v1/admin/transfer/{id}", s.handleTransferChunk)
	limited.HandleFunc("POST /v1/admin/transfer/{id}/commit", s.handleTransferCommit)
	limited.HandleFunc("DELETE /v1/admin/transfer/{id}", s.handleTransferAbort)
	limited.HandleFunc("POST /v1/admin/drop", s.handleDrop)

	mux := http.NewServeMux()
	mux.Handle("/v1/", s.limitConcurrency(limited))
	// Liveness, readiness, metrics, and the replication surface sit
	// outside the concurrency limiter: health probes and WAL shipping
	// must keep working while ingest is overloaded, and bare /healthz
	// stays as a liveness alias for pre-split probes.
	mux.HandleFunc("GET /healthz", s.handleLive)
	mux.HandleFunc("GET /healthz/live", s.handleLive)
	mux.HandleFunc("GET /healthz/ready", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.repl != nil {
		mux.HandleFunc("POST /v1/replication/ship", s.handleShip)
		mux.HandleFunc("POST /v1/replication/promote", s.handlePromote)
		mux.HandleFunc("GET /v1/replication/status", s.handleReplStatus)
		if s.cfg.Persist != nil {
			mux.HandleFunc("POST /v1/replication/bootstrap", s.handleBootstrap)
		}
	}
	return s.instrument(mux)
}

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http. The
// first Serve also starts the background snapshot ticker when
// persistence is configured with SnapshotEvery > 0, and the background
// retraining ticker when a retrainer is configured with RetrainEvery > 0.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.http == nil {
		s.http = &http.Server{
			Handler:           s.Handler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
	}
	if s.snapStop == nil && s.cfg.Persist != nil && s.cfg.SnapshotEvery > 0 {
		s.snapStop = make(chan struct{})
		go s.snapshotLoop(s.snapStop)
	}
	if s.retrainStop == nil && s.cfg.Retrain != nil && s.cfg.RetrainEvery > 0 {
		s.retrainStop = make(chan struct{})
		go s.retrainLoop(s.retrainStop)
	}
	srv := s.http
	s.mu.Unlock()
	return srv.Serve(l)
}

// snapshotLoop takes periodic snapshots until stop closes. Failures are
// logged, never fatal: the previous committed snapshot stays intact and
// the WAL keeps every batch since it.
func (s *Server) snapshotLoop(stop chan struct{}) {
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			info, err := s.cfg.Persist.Snapshot(s.store)
			if err != nil {
				if s.cfg.Log != nil {
					s.cfg.Log.Printf("background snapshot failed: %v", err)
				}
				continue
			}
			if s.cfg.Log != nil {
				s.cfg.Log.Printf("snapshot: drives=%d bytes=%d dur=%s epoch=%d",
					info.Drives, info.Bytes, info.Duration.Round(time.Millisecond), info.Epoch)
			}
		}
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown gracefully stops the server: the snapshot ticker stops,
// listeners close immediately, and it blocks until every in-flight
// request has drained or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.snapStop != nil {
		close(s.snapStop)
		s.snapStop = nil
	}
	if s.retrainStop != nil {
		close(s.retrainStop)
		s.retrainStop = nil
	}
	srv := s.http
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// ingestRecord is the wire form of one observation. Values must have
// exactly smart.NumAttrs entries in Table I order; a null entry means
// the field was missing at the source and is treated as NaN, which the
// store quarantines (or repairs, per its monitor policy) — JSON cannot
// carry NaN directly. Values are decoded as json.Number, not float64:
// a magnitude beyond float64's range (e.g. 1e999) parses to ±Inf with
// only a range error to show for it, and letting that through would
// silently coerce the wire value. Such records are quarantined
// per-record here instead of failing the whole batch.
type ingestRecord struct {
	Serial string `json:"serial"`
	Hour   int    `json:"hour"`
	// Class names the device class ("hdd" or "ssd"); absent or empty
	// means HDD, so pre-class agents keep working unchanged. An unknown
	// name quarantines the record — DisallowUnknownFields already rejects
	// typo'd field names, so a typo'd value must not slip through either.
	Class  string         `json:"class,omitempty"`
	Values []*json.Number `json:"values"`
}

type ingestRequest struct {
	Records []ingestRecord `json:"records"`
}

// mediaType extracts the bare media type of a Content-Type header value,
// dropping parameters like charset. An absent header negotiates as JSON
// (the format the API launched with).
func mediaType(ct string) string {
	ct, _, _ = strings.Cut(ct, ";")
	ct = strings.TrimSpace(ct)
	if strings.ContainsFunc(ct, func(r rune) bool { return r >= 'A' && r <= 'Z' }) {
		ct = strings.ToLower(ct)
	}
	return ct
}

// handleIngest negotiates the batch format by Content-Type: JSON (the
// default) or the binary frame format of internal/wire. Anything else is
// a 415 — silently parsing a mislabeled body would quarantine the whole
// batch as garbage instead of telling the client it spoke the wrong
// format.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if rp := s.repl; rp != nil {
		rp.mu.Lock()
		role, leader := rp.role, rp.leaderURL
		rp.mu.Unlock()
		if role != RolePrimary {
			s.notPrimary(w, role, leader)
			return
		}
	}
	if s.cfg.IngestDelay > 0 {
		// The sleep happens while holding an in-flight slot, so overload
		// tests see a server whose capacity is genuinely bounded.
		time.Sleep(s.cfg.IngestDelay)
	}
	switch ct := mediaType(r.Header.Get("Content-Type")); ct {
	case "", "application/json":
		s.m.ingestReqJSON.Add(1)
		s.handleIngestJSON(w, r)
	case wire.ContentType:
		s.m.ingestReqBinary.Add(1)
		s.handleIngestBinary(w, r)
	default:
		writeJSON(w, http.StatusUnsupportedMediaType, map[string]any{
			"error": fmt.Sprintf("unsupported Content-Type %q (want application/json or %s)", ct, wire.ContentType),
		})
	}
}

func (s *Server) handleIngestJSON(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	// Unknown fields are rejected rather than silently dropped: a typo'd
	// field name in a telemetry agent would otherwise discard data with a
	// 200.
	dec.DisallowUnknownFields()
	var req ingestRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]any{
				"error": fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes),
			})
			return
		}
		// Malformed JSON: nothing was ingested; the ledger names the
		// defect so clients can account for the lost batch.
		var rep quality.Report
		rep.Note(quality.Issue{Kind: quality.MalformedRow, Detail: err.Error()}, quality.Config{})
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error":   fmt.Sprintf("malformed request body: %v", err),
			"quality": ledgerJSON(&rep),
		})
		return
	}

	// Per-record validation: structurally defective records are
	// quarantined here (they cannot be scored at all); value-level
	// defects are the store's quarantine to judge.
	var rep quality.Report
	obs := make([]fleet.Observation, 0, len(req.Records))
	for i, rec := range req.Records {
		class, classErr := smart.ParseClass(rec.Class)
		switch {
		case rec.Serial == "":
			rep.Note(quality.Issue{
				Kind: quality.BadField, Field: "serial",
				Detail: fmt.Sprintf("record %d has no serial", i),
			}, quality.Config{})
			rep.AddRows(1, 1, 0)
		case classErr != nil:
			rep.Note(quality.Issue{
				Kind: quality.BadField, Field: "device_class", Drive: rec.Serial,
				Detail: fmt.Sprintf("record %d: %v", i, classErr),
			}, quality.Config{})
			rep.AddRows(1, 1, 0)
		case len(rec.Values) != int(smart.NumAttrs):
			rep.Note(quality.Issue{
				Kind: quality.ShortRow, Drive: rec.Serial,
				Detail: fmt.Sprintf("record %d has %d values, want %d", i, len(rec.Values), smart.NumAttrs),
			}, quality.Config{})
			rep.AddRows(1, 1, 0)
		default:
			var v smart.Values
			bad := false
			for a, p := range rec.Values {
				if p == nil {
					// Missing at source: NaN, judged by the store-side
					// quarantine like any other non-finite value.
					v[a] = math.NaN()
					continue
				}
				x, err := strconv.ParseFloat(p.String(), 64)
				if err != nil || math.IsInf(x, 0) {
					rep.Note(quality.Issue{
						Kind: quality.NonFinite, Drive: rec.Serial, Field: smart.Attr(a).String(),
						Detail: fmt.Sprintf("record %d value %q is not a finite float64", i, p.String()),
					}, quality.Config{})
					bad = true
					continue
				}
				v[a] = x
			}
			if bad {
				rep.AddRows(1, 1, 0)
				continue
			}
			obs = append(obs, fleet.Observation{
				Serial: rec.Serial,
				Class:  class,
				Record: smart.Record{Hour: rec.Hour, Values: v},
			})
		}
	}

	s.finishIngest(w, r, obs, &rep)
}

// bodyPool recycles the binary-path request body buffers; sized bodies
// are the norm (loadgen batches are tens of KiB), so reuse matters.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// decoderPool recycles wire decoders across requests. A warm decoder
// carries its interned serial table and observation buffer, which is
// what makes the steady-state binary path allocation-free.
var decoderPool = sync.Pool{New: func() any { return new(wire.Decoder) }}

func (s *Server) handleIngestBinary(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bodyPool.Put(buf)
	if _, err := buf.ReadFrom(r.Body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]any{
				"error": fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes),
			})
			return
		}
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("reading request body: %v", err),
		})
		return
	}

	dec := decoderPool.Get().(*wire.Decoder)
	defer decoderPool.Put(dec)
	var rep quality.Report
	obs, err := dec.Decode(buf.Bytes(), &rep)
	if err != nil {
		// Frame-level failure: nothing in the batch can be trusted, so
		// nothing was ingested — the same contract as malformed JSON, with
		// the frame defect named in the ledger.
		if fe, ok := wire.IsFrameError(err); ok {
			rep.Note(fe.Issue(), quality.Config{})
		} else {
			rep.Note(quality.Issue{Kind: quality.MalformedRow, Detail: err.Error()}, quality.Config{})
		}
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error":   fmt.Sprintf("malformed request body: %v", err),
			"quality": ledgerJSON(&rep),
		})
		return
	}
	s.finishIngest(w, r, obs, &rep)
}

// ingestAck is the POST /v1/ingest response. It is a struct, not a
// map[string]any, so the hot path hands the encoder a shape it can walk
// without per-field boxing.
type ingestAck struct {
	Ingested     int            `json:"ingested"`
	Kept         int            `json:"kept"`
	Quarantined  int            `json:"quarantined"`
	ModelVersion int            `json:"model_version"`
	Alerts       []alertPayload `json:"alerts"`
	Quality      ledgerPayload  `json:"quality"`
}

// finishIngest applies decoded observations to the store (through the
// WAL when persistence is on) and writes the ack. rep carries the
// decode-stage quarantines; the batch's total record count is recovered
// from kept + quarantined, which both wire formats account identically.
func (s *Server) finishIngest(w http.ResponseWriter, r *http.Request, obs []fleet.Observation, rep *quality.Report) {
	ingested := len(obs) + rep.RowsQuarantined
	if s.testHoldIngest != nil {
		s.testHoldIngest()
	}
	var res fleet.BatchResult
	if s.cfg.Persist != nil {
		var err error
		var pos persist.Position
		res, pos, err = s.cfg.Persist.LogBatch(obs, func() fleet.BatchResult { return s.store.IngestBatch(obs) })
		if err != nil {
			// The batch was NOT applied: acknowledging it would hand the
			// client an ingest that cannot survive a restart.
			if s.cfg.Log != nil {
				s.cfg.Log.Printf("WAL append failed, batch rejected: %v", err)
			}
			writeJSON(w, http.StatusInternalServerError, map[string]any{
				"error": "write-ahead log append failed; batch not applied",
			})
			return
		}
		if s.repl != nil {
			// A replicated primary's 200 means "on two nodes": hold the ack
			// until the follower confirms this batch's WAL position.
			if rerr := s.waitReplicated(r.Context(), pos); rerr != nil {
				if errors.Is(rerr, persist.ErrFenced) {
					// Deposed mid-request. The batch is applied locally but
					// this node's lineage is dead — the client must retry
					// against the new primary, which never saw the batch.
					s.m.ingestNotPrimary.Add(1)
					writeJSON(w, http.StatusServiceUnavailable, map[string]any{
						"error": "deposed during replication; retry against the new primary",
					})
					return
				}
				// Ack timeout: the batch is durable locally but its remote
				// fate is unknown. 500 is honest — and a client retry here is
				// at-least-once, the documented caveat of a lost follower.
				if s.cfg.Log != nil {
					s.cfg.Log.Printf("replication ack wait failed: %v", rerr)
				}
				writeJSON(w, http.StatusInternalServerError, map[string]any{
					"error": "replication ack timeout; batch durable locally but unconfirmed on the follower",
				})
				return
			}
		}
	} else {
		res = s.store.IngestBatch(obs)
	}
	rep.Merge(&res.Quality)

	s.m.rowsIngested.Add(int64(ingested))
	s.m.rowsKept.Add(int64(rep.RowsKept()))
	s.m.rowsQuarantined.Add(int64(rep.RowsQuarantined))
	for i := range obs {
		s.m.rowsByClass[obs[i].Class].Add(1)
	}
	s.m.observeBatchVersion(res.ModelVersion)
	ack := ingestAck{
		Ingested:     ingested,
		Kept:         rep.RowsKept(),
		Quarantined:  rep.RowsQuarantined,
		ModelVersion: res.ModelVersion,
		Alerts:       make([]alertPayload, len(res.Alerts)),
		Quality:      ledgerPayloadOf(rep),
	}
	for i, a := range res.Alerts {
		s.m.alertsBySeverity[int(a.Severity)].Add(1)
		ack.Alerts[i] = alertPayloadOf(a)
	}
	writeJSON(w, http.StatusOK, &ack)
}

func (s *Server) handleDrive(w http.ResponseWriter, r *http.Request) {
	serial := r.PathValue("serial")
	dh, ok := s.store.Drive(serial)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{
			"error": fmt.Sprintf("unknown drive %q", serial),
		})
		return
	}
	writeJSON(w, http.StatusOK, driveJSON(dh))
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	topN := s.cfg.SummaryTopN
	if v := r.URL.Query().Get("top"); v != "" {
		n := 0
		if _, err := fmt.Sscanf(v, "%d", &n); err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": fmt.Sprintf("bad top parameter %q", v),
			})
			return
		}
		topN = n
	}
	evicted := s.store.EvictStale()
	sum := s.store.Summary(topN)
	atRisk := make([]map[string]any, len(sum.AtRisk))
	for i, dh := range sum.AtRisk {
		atRisk[i] = driveJSON(dh)
	}
	shards := make([]map[string]int, len(sum.Shards))
	for i, ss := range sum.Shards {
		shards[i] = map[string]int{"shard": ss.Shard, "drives": ss.Drives}
	}
	byClass := map[string]any{}
	for cname, cs := range sum.ByClass {
		classRisk := make([]map[string]any, len(cs.AtRisk))
		for i, dh := range cs.AtRisk {
			classRisk[i] = driveJSON(dh)
		}
		byClass[cname] = map[string]any{
			"drives":      cs.Drives,
			"by_severity": cs.BySeverity,
			"at_risk":     classRisk,
		}
	}
	q := s.store.Quality()
	writeJSON(w, http.StatusOK, map[string]any{
		"drives":           sum.Drives,
		"max_hour":         sum.MaxHour,
		"by_severity":      sum.BySeverity,
		"alerting_by_type": sum.ByType,
		"by_class":         byClass,
		"at_risk":          atRisk,
		"shards":           shards,
		"evicted_now":      evicted,
		"quality":          ledgerJSON(&q),
	})
}

// handleSnapshot triggers a snapshot on demand (POST /v1/admin/snapshot,
// registered only when persistence is configured).
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	info, err := s.cfg.Persist.Snapshot(s.store)
	if err != nil {
		if s.cfg.Log != nil {
			s.cfg.Log.Printf("admin snapshot failed: %v", err)
		}
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error": fmt.Sprintf("snapshot failed: %v", err),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"drives":      info.Drives,
		"bytes":       info.Bytes,
		"duration_ms": float64(info.Duration) / float64(time.Millisecond),
		"epoch":       info.Epoch,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	doc := s.m.snapshot()
	sum := s.store.Summary(0)
	shards := make([]map[string]int, len(sum.Shards))
	for i, ss := range sum.Shards {
		shards[i] = map[string]int{"shard": ss.Shard, "drives": ss.Drives}
	}
	doc["fleet"] = map[string]any{
		"drives":   sum.Drives,
		"max_hour": sum.MaxHour,
		"shards":   shards,
	}
	if mm, ok := doc["models"].(map[string]any); ok {
		mm["active_version"] = s.store.ModelVersion()
	}
	doc["in_flight"] = s.sem.InFlight()
	if s.cfg.Persist != nil {
		ps := s.cfg.Persist.Stats()
		doc["persist"] = map[string]any{
			"epoch":               ps.Epoch,
			"snapshots":           ps.Snapshots,
			"snapshot_failures":   ps.SnapshotFailures,
			"wal_batches":         ps.WALBatches,
			"wal_rows":            ps.WALRows,
			"wal_bytes":           ps.WALBytes,
			"last_snapshot_ms":    float64(ps.LastSnapshotDuration) / float64(time.Millisecond),
			"last_snapshot_bytes": ps.LastSnapshotBytes,
			"follower_lost":       ps.FollowerLost,
		}
	}
	if s.repl != nil {
		doc["replication"] = s.replicationDoc()
	}
	writeJSON(w, http.StatusOK, doc)
}

// driveJSON renders a drive health snapshot; +Inf hours-to-failure
// becomes null (JSON has no Inf).
func driveJSON(dh fleet.DriveHealth) map[string]any {
	out := map[string]any{
		"serial":      dh.Serial,
		"class":       dh.Class.String(),
		"last_hour":   dh.LastHour,
		"severity":    dh.Severity.String(),
		"group":       dh.Group,
		"type":        dh.Type.String(),
		"degradation": dh.Degradation,
	}
	out["hours_to_failure"] = finiteOrNil(dh.HoursToFailure)
	return out
}

// alertPayload is one alert in the ingest ack, shaped like the
// map-based drive rendering but encodable without boxing.
type alertPayload struct {
	Serial         string   `json:"serial"`
	Class          string   `json:"class"`
	Hour           int      `json:"hour"`
	Severity       string   `json:"severity"`
	Group          int      `json:"group"`
	Type           string   `json:"type"`
	Degradation    float64  `json:"degradation"`
	HoursToFailure *float64 `json:"hours_to_failure"`
	ModelVersion   int      `json:"model_version"`
}

func alertPayloadOf(a fleet.Alert) alertPayload {
	p := alertPayload{
		Serial:       a.Serial,
		Class:        a.Class.String(),
		Hour:         a.Hour,
		Severity:     a.Severity.String(),
		Group:        a.Group,
		Type:         a.Type.String(),
		Degradation:  a.Degradation,
		ModelVersion: a.ModelVersion,
	}
	if !math.IsInf(a.HoursToFailure, 0) && !math.IsNaN(a.HoursToFailure) {
		ttf := a.HoursToFailure
		p.HoursToFailure = &ttf
	}
	return p
}

// ledgerPayload is the quarantine ledger in the ingest ack, the struct
// form of ledgerJSON.
type ledgerPayload struct {
	RowsRead        int            `json:"rows_read"`
	RowsKept        int            `json:"rows_kept"`
	RowsQuarantined int            `json:"rows_quarantined"`
	ByKind          map[string]int `json:"by_kind"`
}

func ledgerPayloadOf(rep *quality.Report) ledgerPayload {
	byKind := map[string]int{}
	for k := range rep.ByKind {
		if rep.ByKind[k] != 0 {
			byKind[quality.Kind(k).String()] = rep.ByKind[k]
		}
	}
	return ledgerPayload{
		RowsRead:        rep.RowsRead,
		RowsKept:        rep.RowsKept(),
		RowsQuarantined: rep.RowsQuarantined,
		ByKind:          byKind,
	}
}

func finiteOrNil(v float64) any {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return v
}

// ledgerJSON renders a quality report as the API's quarantine ledger:
// exact counters plus per-kind counts.
func ledgerJSON(rep *quality.Report) map[string]any {
	byKind := map[string]int{}
	for k := range rep.ByKind {
		if rep.ByKind[k] != 0 {
			byKind[quality.Kind(k).String()] = rep.ByKind[k]
		}
	}
	return map[string]any{
		"rows_read":        rep.RowsRead,
		"rows_kept":        rep.RowsKept(),
		"rows_quarantined": rep.RowsQuarantined,
		"by_kind":          byKind,
	}
}

// jsonScratch is a pooled response-encoding buffer with its encoder
// permanently bound, so writeJSON allocates neither per request.
type jsonScratch struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonPool = sync.Pool{New: func() any {
	sc := &jsonScratch{}
	sc.enc = json.NewEncoder(&sc.buf)
	sc.enc.SetIndent("", "  ")
	return sc
}}

func writeJSON(w http.ResponseWriter, status int, v any) {
	sc := jsonPool.Get().(*jsonScratch)
	sc.buf.Reset()
	if err := sc.enc.Encode(v); err != nil {
		// An unencodable response value is a programming error; surface it
		// instead of a silent empty body.
		jsonPool.Put(sc)
		http.Error(w, fmt.Sprintf("encoding response: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(sc.buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(sc.buf.Bytes())
	jsonPool.Put(sc)
}

// Severity index sanity: the alerts metric array is indexed by
// monitor.Severity, which must stay 4 values wide.
var _ = [4]struct{}{}[monitor.Critical]
