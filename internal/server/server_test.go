package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"disksig/internal/core"
	"disksig/internal/fleet"
	"disksig/internal/monitor"
	"disksig/internal/regression"
	"disksig/internal/smart"
)

// rampPredictor scores records by their RRER value directly (same idiom
// as the monitor and fleet tests).
type rampPredictor struct{}

func (rampPredictor) Predict(x []float64) float64 { return x[smart.RRER] }

func testStore(t testing.TB, cfg fleet.Config) *fleet.Store {
	t.Helper()
	norm := smart.NewNormalizer()
	var lo, hi smart.Values
	for a := range lo {
		lo[a] = -1
		hi[a] = 1
	}
	norm.Observe(lo)
	norm.Observe(hi)
	models := []monitor.GroupModel{{
		Group:     1,
		Type:      core.Logical,
		Form:      regression.FormQuadratic,
		WindowD:   12,
		Predictor: rampPredictor{},
	}}
	s, err := fleet.New(models, norm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testServer(t testing.TB, fcfg fleet.Config, scfg Config) *Server {
	t.Helper()
	return New(testStore(t, fcfg), scfg)
}

// ingestBody builds a JSON ingest request: one record per (serial, hour,
// score) triple, score carried in the RRER slot.
func ingestBody(t *testing.T, recs ...[3]any) []byte {
	t.Helper()
	type rec struct {
		Serial string     `json:"serial"`
		Hour   int        `json:"hour"`
		Values []*float64 `json:"values"`
	}
	var rs []rec
	for _, r := range recs {
		vals := make([]*float64, int(smart.NumAttrs))
		for a := range vals {
			z := 0.0
			vals[a] = &z
		}
		score := r[2].(float64)
		vals[smart.RRER] = &score
		rs = append(rs, rec{Serial: r[0].(string), Hour: r[1].(int), Values: vals})
	}
	body, err := json.Marshal(map[string]any{"records": rs})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func decodeJSON(t *testing.T, r io.Reader) map[string]any {
	t.Helper()
	var doc map[string]any
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestIngestHappyPath(t *testing.T) {
	srv := testServer(t, fleet.Config{Shards: 4, Monitor: monitor.Config{Smoothing: 1}}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := ingestBody(t,
		[3]any{"SER-1", 0, 0.9},
		[3]any{"SER-1", 1, -0.9}, // escalates straight to critical
		[3]any{"SER-2", 0, 0.9},
	)
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	doc := decodeJSON(t, resp.Body)
	if doc["ingested"].(float64) != 3 || doc["kept"].(float64) != 3 || doc["quarantined"].(float64) != 0 {
		t.Fatalf("accounting = %v/%v/%v, want 3/3/0", doc["ingested"], doc["kept"], doc["quarantined"])
	}
	alerts := doc["alerts"].([]any)
	if len(alerts) != 1 {
		t.Fatalf("%d alerts, want 1", len(alerts))
	}
	a := alerts[0].(map[string]any)
	if a["serial"] != "SER-1" || a["severity"] != "critical" || a["type"] != "logical" {
		t.Fatalf("alert = %v", a)
	}
	if a["hours_to_failure"] == nil {
		t.Fatal("critical alert has null hours_to_failure")
	}

	// Drive query: known serial.
	resp2, err := http.Get(ts.URL + "/v1/drives/SER-1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("drive status = %d, want 200", resp2.StatusCode)
	}
	d := decodeJSON(t, resp2.Body)
	if d["serial"] != "SER-1" || d["severity"] != "critical" || d["last_hour"].(float64) != 1 {
		t.Fatalf("drive = %v", d)
	}

	// Unknown serial → 404.
	resp3, err := http.Get(ts.URL + "/v1/drives/NOPE")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown drive status = %d, want 404", resp3.StatusCode)
	}

	// Summary.
	resp4, err := http.Get(ts.URL + "/v1/fleet/summary?top=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	sum := decodeJSON(t, resp4.Body)
	if sum["drives"].(float64) != 2 {
		t.Fatalf("summary drives = %v, want 2", sum["drives"])
	}
	atRisk := sum["at_risk"].([]any)
	if len(atRisk) != 1 || atRisk[0].(map[string]any)["serial"] != "SER-1" {
		t.Fatalf("at_risk = %v", atRisk)
	}

	// Healthz.
	resp5, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp5.Body.Close()
	hz := decodeJSON(t, resp5.Body)
	if resp5.StatusCode != http.StatusOK || hz["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp5.StatusCode, hz)
	}
}

func TestIngestQuarantineAccounting(t *testing.T) {
	srv := testServer(t, fleet.Config{Shards: 2}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One clean record, one with a null (missing → NaN) value, one with
	// no serial, one with a short values array.
	clean := ingestBody(t, [3]any{"SER-1", 0, 0.9})
	var req map[string]any
	if err := json.Unmarshal(clean, &req); err != nil {
		t.Fatal(err)
	}
	recs := req["records"].([]any)
	nullVal := map[string]any{"serial": "SER-2", "hour": 0, "values": make([]any, int(smart.NumAttrs))}
	noSerial := map[string]any{"hour": 0, "values": make([]any, int(smart.NumAttrs))}
	short := map[string]any{"serial": "SER-3", "hour": 0, "values": []any{1.0, 2.0}}
	req["records"] = append(recs, nullVal, noSerial, short)
	body, _ := json.Marshal(req)

	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	doc := decodeJSON(t, resp.Body)
	if doc["ingested"].(float64) != 4 || doc["kept"].(float64) != 1 || doc["quarantined"].(float64) != 3 {
		t.Fatalf("accounting = %v/%v/%v, want 4/1/3", doc["ingested"], doc["kept"], doc["quarantined"])
	}
	byKind := doc["quality"].(map[string]any)["by_kind"].(map[string]any)
	for _, kind := range []string{"non-finite", "bad-field", "short-row"} {
		if byKind[kind] == nil {
			t.Errorf("ledger missing %q: %v", kind, byKind)
		}
	}

	// Metrics reflect the invariant ingested = kept + quarantined.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	m := decodeJSON(t, mresp.Body)
	ing := m["ingest"].(map[string]any)
	if ing["rows_ingested"].(float64) != ing["rows_kept"].(float64)+ing["rows_quarantined"].(float64) {
		t.Fatalf("metrics invariant violated: %v", ing)
	}
	if ing["rows_ingested"].(float64) != 4 {
		t.Fatalf("rows_ingested = %v, want 4", ing["rows_ingested"])
	}
}

func TestIngestMalformedJSON(t *testing.T) {
	srv := testServer(t, fleet.Config{}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(`{"records": [{]`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	doc := decodeJSON(t, resp.Body)
	q, ok := doc["quality"].(map[string]any)
	if !ok {
		t.Fatalf("400 response has no quarantine ledger: %v", doc)
	}
	byKind := q["by_kind"].(map[string]any)
	if byKind["malformed-row"] == nil {
		t.Fatalf("ledger does not name malformed-row: %v", byKind)
	}
}

func TestIngestOversizedBody(t *testing.T) {
	srv := testServer(t, fleet.Config{}, Config{MaxBodyBytes: 128})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := ingestBody(t,
		[3]any{"SER-1", 0, 0.9}, [3]any{"SER-2", 0, 0.9}, [3]any{"SER-3", 0, 0.9},
		[3]any{"SER-4", 0, 0.9}, [3]any{"SER-5", 0, 0.9},
	)
	if len(body) <= 128 {
		t.Fatalf("test body is only %d bytes, need > 128", len(body))
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestLoadShedding(t *testing.T) {
	srv := testServer(t, fleet.Config{}, Config{MaxInFlight: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.testHoldIngest = func() {
		close(entered)
		<-release
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// First request occupies the only slot...
	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json",
			bytes.NewReader(ingestBody(t, [3]any{"SER-1", 0, 0.9})))
		if err != nil {
			firstDone <- -1
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	<-entered

	// ...so the second is shed with 429 (API routes only; healthz and
	// metrics stay reachable during overload).
	resp, err := http.Get(ts.URL + "/v1/fleet/summary")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status under load = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response has no Retry-After header")
	}
	for _, path := range []string{"/healthz", "/metrics"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s = %d during overload, want 200", path, r.StatusCode)
		}
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("held request finished with %d, want 200", code)
	}

	// The shed counter moved.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	m := decodeJSON(t, mresp.Body)
	if shed := m["requests"].(map[string]any)["shed"].(float64); shed != 1 {
		t.Fatalf("shed = %v, want 1", shed)
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	srv := testServer(t, fleet.Config{}, Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.testHoldIngest = func() {
		close(entered)
		<-release
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	url := "http://" + l.Addr().String()

	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(url+"/v1/ingest", "application/json",
			bytes.NewReader(ingestBody(t, [3]any{"SER-1", 0, 0.9})))
		if err != nil {
			reqDone <- -1
			return
		}
		defer resp.Body.Close()
		io.ReadAll(resp.Body)
		reqDone <- resp.StatusCode
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Shutdown must block while the request is in flight.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	if code := <-reqDone; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200 (drained)", code)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve = %v, want http.ErrServerClosed", err)
	}
}

func TestSummaryEvictsStaleDrives(t *testing.T) {
	srv := testServer(t, fleet.Config{Shards: 2, TTLHours: 10}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := ingestBody(t, [3]any{"OLD-1", 0, 0.9}, [3]any{"NEW-1", 100, 0.9})
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sresp, err := http.Get(ts.URL + "/v1/fleet/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	sum := decodeJSON(t, sresp.Body)
	if sum["evicted_now"].(float64) != 1 || sum["drives"].(float64) != 1 {
		t.Fatalf("evicted_now = %v, drives = %v; want 1 and 1", sum["evicted_now"], sum["drives"])
	}
}

func TestMethodAndRouteErrors(t *testing.T) {
	srv := testServer(t, fleet.Config{}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Wrong method on a known route.
	resp, err := http.Get(ts.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/ingest = %d, want 405", resp.StatusCode)
	}
	// Unknown route under /v1.
	resp2, err := http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/nope = %d, want 404", resp2.StatusCode)
	}
	// Bad summary parameter.
	resp3, err := http.Get(ts.URL + "/v1/fleet/summary?top=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("bad top parameter = %d, want 400", resp3.StatusCode)
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	srv := testServer(t, fleet.Config{}, Config{Log: log.New(&buf, "", 0)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	line := buf.String()
	for _, want := range []string{"method=GET", "path=/healthz", "status=200", "dur="} {
		if !strings.Contains(line, want) {
			t.Errorf("access log %q missing %q", line, want)
		}
	}
}
