package server

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"disksig/internal/core"
	"disksig/internal/fleet"
	"disksig/internal/monitor"
	"disksig/internal/persist"
	"disksig/internal/regression"
	"disksig/internal/smart"
)

// wirePredictor scores by a configurable attribute. Unlike rampPredictor
// it carries an exported field, which gob requires to round-trip a
// predictor through a snapshot as an interface value.
type wirePredictor struct{ Attr int }

func (p wirePredictor) Predict(x []float64) float64 { return x[p.Attr] }

func init() { gob.Register(wirePredictor{}) }

// persistStore is testStore with a snapshot-serializable predictor.
func persistStore(t *testing.T, cfg fleet.Config) *fleet.Store {
	t.Helper()
	norm := smart.NewNormalizer()
	var lo, hi smart.Values
	for a := range lo {
		lo[a] = -1
		hi[a] = 1
	}
	norm.Observe(lo)
	norm.Observe(hi)
	models := []monitor.GroupModel{{
		Group:     1,
		Type:      core.Logical,
		Form:      regression.FormQuadratic,
		WindowD:   12,
		Predictor: wirePredictor{Attr: int(smart.RRER)},
	}}
	s, err := fleet.New(models, norm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		wait time.Duration
		want int
	}{
		{0, 1},
		{-time.Second, 1},
		{time.Millisecond, 1}, // sub-second must not truncate to 0
		{10 * time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2}, // round up, not down
		{2 * time.Second, 2},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.wait); got != c.want {
			t.Errorf("retryAfterSeconds(%s) = %d, want %d", c.wait, got, c.want)
		}
		if got := retryAfterSeconds(c.wait); got < 1 {
			t.Errorf("retryAfterSeconds(%s) = %d; Retry-After below 1s invites a retry storm", c.wait, got)
		}
	}
}

// A shed request with a sub-second queue budget must still advertise a
// whole, nonzero Retry-After — "Retry-After: 0" tells clients to hammer
// an already overloaded server.
func TestRetryAfterNeverZeroUnderSubSecondQueueWait(t *testing.T) {
	srv := testServer(t, fleet.Config{}, Config{MaxInFlight: 1, QueueWait: 10 * time.Millisecond})
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.testHoldIngest = func() {
		close(entered)
		<-release
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	firstDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json",
			bytes.NewReader(ingestBody(t, [3]any{"SER-1", 0, 0.9})))
		if err == nil {
			resp.Body.Close()
		}
		firstDone <- err
	}()
	<-entered
	defer func() {
		close(release)
		if err := <-firstDone; err != nil {
			t.Fatal(err)
		}
	}()

	resp, err := http.Get(ts.URL + "/v1/fleet/summary")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status under load = %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	if secs < 1 {
		t.Fatalf("Retry-After = %d with QueueWait=10ms, want >= 1", secs)
	}
}

// infinityBody builds a raw ingest body by hand: 1e999 overflows
// float64, so it cannot be produced by marshaling Go values — the wire
// is the only place it exists.
func infinityBody(t *testing.T, badValue string) []byte {
	t.Helper()
	zeros := make([]string, int(smart.NumAttrs))
	for i := range zeros {
		zeros[i] = "0"
	}
	bad := make([]string, int(smart.NumAttrs))
	copy(bad, zeros)
	bad[smart.RRER] = badValue
	return []byte(fmt.Sprintf(
		`{"records":[{"serial":"INF-1","hour":0,"values":[%s]},{"serial":"OK-1","hour":0,"values":[%s]}]}`,
		strings.Join(bad, ","), strings.Join(zeros, ",")))
}

func TestIngestRejectsInfinityOnTheWire(t *testing.T) {
	for _, badValue := range []string{"1e999", "-1e999", "1e400"} {
		t.Run(badValue, func(t *testing.T) {
			srv := testServer(t, fleet.Config{Shards: 2, Monitor: monitor.Config{Smoothing: 1}}, Config{})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			resp, err := http.Post(ts.URL+"/v1/ingest", "application/json",
				bytes.NewReader(infinityBody(t, badValue)))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			// The defect is per-record: the batch succeeds, the record
			// is quarantined (not silently coerced to +Inf and scored).
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d, want 200 (per-record quarantine, not batch failure)", resp.StatusCode)
			}
			doc := decodeJSON(t, resp.Body)
			if got := doc["quarantined"].(float64); got != 1 {
				t.Fatalf("quarantined = %v, want 1", got)
			}
			if got := doc["kept"].(float64); got != 1 {
				t.Fatalf("kept = %v, want 1", got)
			}
			byKind := doc["quality"].(map[string]any)["by_kind"].(map[string]any)
			if got := byKind["non-finite"]; got != float64(1) {
				t.Fatalf("by_kind[non-finite] = %v, want 1 (ledger must name the defect)", got)
			}

			// The overflowing drive never entered the store; the clean
			// record in the same batch did.
			r, err := http.Get(ts.URL + "/v1/drives/INF-1")
			if err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			if r.StatusCode != http.StatusNotFound {
				t.Errorf("GET /v1/drives/INF-1 = %d, want 404", r.StatusCode)
			}
			r, err = http.Get(ts.URL + "/v1/drives/OK-1")
			if err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			if r.StatusCode != http.StatusOK {
				t.Errorf("GET /v1/drives/OK-1 = %d, want 200", r.StatusCode)
			}
		})
	}
}

func TestAdminSnapshotNotFoundWithoutPersist(t *testing.T) {
	srv := testServer(t, fleet.Config{}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /v1/admin/snapshot without persistence = %d, want 404", resp.StatusCode)
	}
}

// The full durable-server loop: ingest over HTTP (WAL), snapshot via the
// admin endpoint, ingest more (WAL after snapshot), kill, and restore a
// bit-identical fleet.
func TestAdminSnapshotAndWarmRestartParity(t *testing.T) {
	dir := t.TempDir()
	fcfg := fleet.Config{Shards: 4, Monitor: monitor.Config{Smoothing: 1}}
	m1, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	store := persistStore(t, fcfg)
	srv := New(store, Config{Persist: m1})
	ts := httptest.NewServer(srv.Handler())

	post := func(body []byte) map[string]any {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status = %d, want 200", resp.StatusCode)
		}
		return decodeJSON(t, resp.Body)
	}

	post(ingestBody(t,
		[3]any{"SER-1", 0, 0.9},
		[3]any{"SER-2", 0, 0.9},
	))

	resp, err := http.Post(ts.URL+"/v1/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := decodeJSON(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/admin/snapshot = %d, want 200", resp.StatusCode)
	}
	if got := snap["drives"].(float64); got != 2 {
		t.Errorf("snapshot drives = %v, want 2", got)
	}
	if snap["bytes"].(float64) <= 0 {
		t.Errorf("snapshot bytes = %v, want > 0", snap["bytes"])
	}

	// Post-snapshot traffic lives only in the WAL until restore.
	post(ingestBody(t,
		[3]any{"SER-1", 1, -0.9}, // escalates to critical
		[3]any{"SER-3", 0, 0.9},
	))

	// Persistence counters are part of /metrics when a Manager is wired.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := decodeJSON(t, mresp.Body)
	mresp.Body.Close()
	ps, ok := metrics["persist"].(map[string]any)
	if !ok {
		t.Fatalf("metrics has no persist section: %v", metrics)
	}
	if got := ps["snapshots"].(float64); got != 1 {
		t.Errorf("metrics persist.snapshots = %v, want 1", got)
	}
	if got := ps["wal_batches"].(float64); got != 2 {
		t.Errorf("metrics persist.wal_batches = %v, want 2", got)
	}
	if got := ps["wal_rows"].(float64); got != 4 {
		t.Errorf("metrics persist.wal_rows = %v, want 4", got)
	}

	want := store.ExportState()
	want.Quality.StripDiagnostics()

	// Kill: abandon the server and manager without Close — nothing is
	// buffered, so the state directory is what a crash would leave.
	ts.Close()

	m2, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	restored, rec, err := m2.Restore(fleet.Config{Shards: 16, Monitor: fcfg.Monitor})
	if err != nil {
		t.Fatal(err)
	}
	if rec.WALBatches != 1 || rec.TornTail {
		t.Fatalf("recovery = %+v, want 1 clean WAL batch replayed", rec)
	}
	got := restored.ExportState()
	got.Quality.StripDiagnostics()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored fleet state differs from pre-kill state\n got: %+v\nwant: %+v", got, want)
	}

	// The restored store serves the same answers over HTTP.
	srv2 := New(restored, Config{Persist: m2})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	r, err := http.Get(ts2.URL + "/v1/drives/SER-1")
	if err != nil {
		t.Fatal(err)
	}
	doc := decodeJSON(t, r.Body)
	r.Body.Close()
	if doc["severity"] != "critical" {
		t.Fatalf("restored SER-1 severity = %v, want critical", doc["severity"])
	}
}
