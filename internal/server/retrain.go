package server

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"disksig/internal/learn"
)

// retrainLoop runs periodic retraining cycles until stop closes. A
// failed cycle is logged and skipped, never fatal: the serving models
// stay in place and the next tick tries again.
func (s *Server) retrainLoop(stop chan struct{}) {
	t := time.NewTicker(s.cfg.RetrainEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			res, err := s.runRetrain(context.Background())
			if err != nil {
				if s.cfg.Log != nil {
					s.cfg.Log.Printf("background retrain failed: %v", err)
				}
				continue
			}
			if s.cfg.Log != nil {
				s.cfg.Log.Printf("retrain: promoted=%v serving=v%d candidate=v%d fp=%s reason=%q",
					res.Promoted, res.ServingVersion, res.CandidateVersion, res.Fingerprint, res.Reason)
			}
		}
	}
}

// runRetrain executes one retraining cycle and records its outcome for
// the status endpoint and metrics. The admin handler and the background
// ticker share it, so both surface identically.
func (s *Server) runRetrain(ctx context.Context) (*learn.Result, error) {
	res, err := s.cfg.Retrain.RetrainOnce(ctx)
	if err != nil {
		s.m.retrainFailures.Add(1)
		return nil, err
	}
	s.m.retrains.Add(1)
	if res.Promoted {
		s.m.promotions.Add(1)
	}
	s.retrainMu.Lock()
	s.lastRetrain = res
	s.retrainMu.Unlock()
	return res, nil
}

// handleRetrain runs a retraining cycle on demand (POST
// /v1/admin/retrain, registered only when a retrainer is configured)
// and returns the full cycle result. The cycle trains off the ingest
// hot path; only a promotion briefly pauses ingestion for the swap.
func (s *Server) handleRetrain(w http.ResponseWriter, r *http.Request) {
	res, err := s.runRetrain(r.Context())
	if err != nil {
		if s.cfg.Log != nil {
			s.cfg.Log.Printf("admin retrain failed: %v", err)
		}
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error": fmt.Sprintf("retrain failed: %v", err),
		})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleModelStatus reports the serving model set (GET
// /v1/models/status): active version, per-group model metadata
// including training-quality notes, and the last retraining cycle's
// outcome when one has run.
func (s *Server) handleModelStatus(w http.ResponseWriter, r *http.Request) {
	models := s.store.Models()
	groups := make([]map[string]any, len(models))
	for i, gm := range models {
		g := map[string]any{
			"group":        gm.Group,
			"type":         gm.Type.String(),
			"window_hours": gm.WindowD,
		}
		if gm.Note != "" {
			g["note"] = gm.Note
		}
		groups[i] = g
	}
	doc := map[string]any{
		"active_version":  s.store.ModelVersion(),
		"groups":          groups,
		"retrain_enabled": s.cfg.Retrain != nil,
	}
	s.retrainMu.Lock()
	last := s.lastRetrain
	s.retrainMu.Unlock()
	if last != nil {
		doc["last_retrain"] = last
	}
	writeJSON(w, http.StatusOK, doc)
}
