package regression

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPolyFitExactQuadratic(t *testing.T) {
	// y = 2 - 3x + 0.5x^2 sampled exactly.
	truth := Polynomial{Coeffs: []float64{2, -3, 0.5}}
	var xs, ys []float64
	for x := -3.0; x <= 3; x += 0.5 {
		xs = append(xs, x)
		ys = append(ys, truth.Eval(x))
	}
	got, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range truth.Coeffs {
		if !almostEq(got.Coeffs[i], c, 1e-9) {
			t.Errorf("coeff %d = %v, want %v", i, got.Coeffs[i], c)
		}
	}
	if got.Degree() != 2 {
		t.Errorf("degree = %d", got.Degree())
	}
	pred := got.Predict(xs)
	if RMSE(pred, ys) > 1e-9 {
		t.Errorf("RMSE = %v", RMSE(pred, ys))
	}
	if r2 := RSquared(pred, ys); !almostEq(r2, 1, 1e-12) {
		t.Errorf("R^2 = %v", r2)
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1}, []float64{1}, -1); err == nil {
		t.Error("expected error for negative degree")
	}
	if _, err := PolyFit([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("expected error for length mismatch")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, 2); err == nil {
		t.Error("expected error for underdetermined fit")
	}
	// Duplicate x values make the system singular for high degree.
	if _, err := PolyFit([]float64{1, 1, 1}, []float64{1, 2, 3}, 2); err == nil {
		t.Error("expected singular system error")
	}
}

func TestPolyFitConstant(t *testing.T) {
	p, err := PolyFit([]float64{1, 2, 3}, []float64{4, 4, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(p.Coeffs[0], 4, 1e-12) {
		t.Errorf("constant fit = %v", p.Coeffs)
	}
}

// Property: OLS recovers polynomial coefficients from noiseless samples.
func TestPolyFitRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		deg := 1 + rng.Intn(3)
		truth := Polynomial{Coeffs: make([]float64, deg+1)}
		for i := range truth.Coeffs {
			truth.Coeffs[i] = rng.NormFloat64()
		}
		n := deg + 2 + rng.Intn(10)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + rng.Float64() // strictly increasing
			ys[i] = truth.Eval(xs[i])
		}
		got, err := PolyFit(xs, ys, deg)
		if err != nil {
			return false
		}
		for i := range truth.Coeffs {
			if !almostEq(got.Coeffs[i], truth.Coeffs[i], 1e-5*(1+math.Abs(truth.Coeffs[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRSquaredEdgeCases(t *testing.T) {
	if !math.IsNaN(RSquared(nil, nil)) {
		t.Error("empty should be NaN")
	}
	if got := RSquared([]float64{1, 1}, []float64{1, 1}); got != 1 {
		t.Errorf("exact constant fit R^2 = %v", got)
	}
	if !math.IsNaN(RSquared([]float64{1, 2}, []float64{3, 3})) {
		t.Error("inexact constant truth should be NaN")
	}
	// A bad fit can have negative R^2.
	if got := RSquared([]float64{10, -10}, []float64{1, 2}); got >= 0 {
		t.Errorf("bad fit R^2 = %v, want negative", got)
	}
}

func TestRMSEKnown(t *testing.T) {
	if got := RMSE([]float64{1, 2}, []float64{1, 4}); !almostEq(got, math.Sqrt2, 1e-12) {
		t.Errorf("RMSE = %v", got)
	}
	if !math.IsNaN(RMSE(nil, nil)) {
		t.Error("empty RMSE should be NaN")
	}
}

func TestFitOrders(t *testing.T) {
	// Cubic data: order-3 fit should dominate order-1.
	var xs, ys []float64
	for x := 0.0; x <= 10; x++ {
		xs = append(xs, x)
		ys = append(ys, x*x*x/1000-1)
	}
	reports, err := FitOrders(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	if !(reports[2].RSquared > reports[0].RSquared) {
		t.Errorf("cubic R^2 %v should exceed linear %v", reports[2].RSquared, reports[0].RSquared)
	}
	if !almostEq(reports[2].RSquared, 1, 1e-9) {
		t.Errorf("cubic fit R^2 = %v, want 1", reports[2].RSquared)
	}
	if _, err := FitOrders(xs, ys, 0); err == nil {
		t.Error("expected error for maxOrder 0")
	}
	if _, err := FitOrders([]float64{1}, []float64{1}, 2); err == nil {
		t.Error("expected error for too few samples")
	}
}

func TestSignatureFormsBoundary(t *testing.T) {
	d := 12.0
	for _, f := range AllForms() {
		if got := f.Eval(0, d); !almostEq(got, -1, 1e-12) {
			t.Errorf("%v at t=0: %v, want -1 (failure event)", f, got)
		}
		if got := f.Eval(d, d); !almostEq(got, 0, 1e-12) {
			t.Errorf("%v at t=d: %v, want 0", f, got)
		}
	}
	// The unrevised Eq. 2 fails the boundary condition: s(d) = -1/3.
	if got := FormFullQuadratic.Eval(d, d); !almostEq(got, -1.0/3, 1e-12) {
		t.Errorf("full quadratic at t=d: %v, want -1/3", got)
	}
}

func TestSignatureFormOrders(t *testing.T) {
	if FormLinear.Order() != 1 || FormQuadratic.Order() != 2 || FormCubic.Order() != 3 || FormFullQuadratic.Order() != 2 {
		t.Error("form orders wrong")
	}
	for _, f := range []SignatureForm{FormLinear, FormQuadratic, FormCubic, FormFullQuadratic} {
		if f.String() == "" {
			t.Error("empty form name")
		}
	}
	if math.IsNaN(FormLinear.Eval(1, 2)) {
		t.Error("valid eval returned NaN")
	}
	if !math.IsNaN(FormLinear.Eval(1, 0)) {
		t.Error("d=0 should be NaN")
	}
}

func TestSelectFormPicksGeneratingForm(t *testing.T) {
	d := 20.0
	ts := make([]float64, 21)
	for i := range ts {
		ts[i] = float64(i)
	}
	for want, f := range AllForms() {
		ys := f.EvalSeries(ts, d)
		fits, best, err := SelectForm(ts, ys, d)
		if err != nil {
			t.Fatal(err)
		}
		if best != want {
			t.Errorf("generating form %v: selected %v", f, fits[best].Form)
		}
		if fits[best].RMSE > 1e-12 {
			t.Errorf("perfect data RMSE = %v", fits[best].RMSE)
		}
	}
}

func TestSelectFormErrors(t *testing.T) {
	if _, _, err := SelectForm([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("expected mismatch error")
	}
	if _, _, err := SelectForm(nil, nil, 1); err == nil {
		t.Error("expected empty error")
	}
	if _, _, err := SelectForm([]float64{1}, []float64{1}, 0); err == nil {
		t.Error("expected bad-window error")
	}
}

func TestPolynomialString(t *testing.T) {
	p := Polynomial{Coeffs: []float64{-1, 0.5, 2}}
	if p.String() == "" {
		t.Error("empty string")
	}
}
