package regression

import (
	"fmt"
	"math"
)

// SignatureForm is one of the paper's fixed degradation-signature model
// forms: a polynomial in t parameterized only by the degradation-window
// size d (and, for the full second-order Group 1/3 forms, an extra shape
// term). All forms satisfy s(0) = -1 (the failure event).
type SignatureForm int

const (
	// FormLinear is s(t) = t/d - 1 (Eq. 4, Group 2's signature).
	FormLinear SignatureForm = iota
	// FormQuadratic is the revised second-order s(t) = (t/d)^2 - 1
	// (Eq. 3, Group 1's signature).
	FormQuadratic
	// FormCubic is the simplified third-order s(t) = (t/d)^3 - 1
	// (Eq. 6, Group 3's signature).
	FormCubic
	// FormFullQuadratic is the unrevised Eq. 2, s(t) = t^2/d^2 - t/(3d) - 1,
	// kept for the Sec. IV-C model comparison (it fails s(d) = 0).
	FormFullQuadratic

	numForms
)

// String names the form.
func (f SignatureForm) String() string {
	switch f {
	case FormLinear:
		return "t/d - 1"
	case FormQuadratic:
		return "(t/d)^2 - 1"
	case FormCubic:
		return "(t/d)^3 - 1"
	case FormFullQuadratic:
		return "t^2/d^2 - t/(3d) - 1"
	default:
		return fmt.Sprintf("SignatureForm(%d)", int(f))
	}
}

// Order returns the polynomial order of the form.
func (f SignatureForm) Order() int {
	switch f {
	case FormLinear:
		return 1
	case FormQuadratic, FormFullQuadratic:
		return 2
	case FormCubic:
		return 3
	default:
		return 0
	}
}

// AllForms returns the candidate fixed forms the automatic signature tool
// compares (Sec. IV-C): linear, revised quadratic and simplified cubic.
func AllForms() []SignatureForm {
	return []SignatureForm{FormLinear, FormQuadratic, FormCubic}
}

// Eval evaluates the form at time-to-failure t with window size d.
func (f SignatureForm) Eval(t, d float64) float64 {
	if d <= 0 {
		return math.NaN()
	}
	x := t / d
	switch f {
	case FormLinear:
		return x - 1
	case FormQuadratic:
		return x*x - 1
	case FormCubic:
		return x*x*x - 1
	case FormFullQuadratic:
		return x*x - t/(3*d) - 1
	default:
		return math.NaN()
	}
}

// EvalSeries evaluates the form at each time-to-failure value.
func (f SignatureForm) EvalSeries(ts []float64, d float64) []float64 {
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = f.Eval(t, d)
	}
	return out
}

// FormFit is a fixed form evaluated against an observed degradation
// window.
type FormFit struct {
	Form SignatureForm
	// D is the degradation-window size the form was evaluated with.
	D    float64
	RMSE float64
}

// SelectForm evaluates every candidate fixed form against the observed
// degradation values (ts = hours before failure, ys = normalized
// degradation in [-1, 0]) and returns all fits sorted as given by
// AllForms plus the index of the best (lowest-RMSE) one. This is the
// model selection the paper's automated signature tool performs.
func SelectForm(ts, ys []float64, d float64) ([]FormFit, int, error) {
	if len(ts) != len(ys) {
		return nil, 0, fmt.Errorf("regression: SelectForm length mismatch %d vs %d", len(ts), len(ys))
	}
	if len(ts) == 0 {
		return nil, 0, fmt.Errorf("regression: SelectForm requires samples")
	}
	if d <= 0 {
		return nil, 0, fmt.Errorf("regression: window size d = %v must be positive", d)
	}
	forms := AllForms()
	fits := make([]FormFit, len(forms))
	best := 0
	for i, f := range forms {
		fits[i] = FormFit{Form: f, D: d, RMSE: RMSE(f.EvalSeries(ts, d), ys)}
		if fits[i].RMSE < fits[best].RMSE {
			best = i
		}
	}
	return fits, best, nil
}
