// Package regression implements ordinary-least-squares polynomial
// regression and the paper's degradation-signature model forms: the free
// polynomial fits of Fig. 8 and the revised fixed-form signatures
// s(t) = (t/d)^k - 1 compared by RMSE in Sec. IV-C.
package regression

import (
	"fmt"
	"math"

	"disksig/internal/linalg"
)

// Polynomial is a fitted polynomial y = c0 + c1*x + ... + cn*x^n.
type Polynomial struct {
	// Coeffs holds the coefficients in ascending-degree order.
	Coeffs []float64
}

// Degree returns the polynomial degree.
func (p Polynomial) Degree() int { return len(p.Coeffs) - 1 }

// Eval evaluates the polynomial at x via Horner's scheme.
func (p Polynomial) Eval(x float64) float64 {
	var y float64
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		y = y*x + p.Coeffs[i]
	}
	return y
}

// String renders the polynomial for reports.
func (p Polynomial) String() string {
	s := ""
	for i, c := range p.Coeffs {
		if i > 0 {
			s += " + "
		}
		switch i {
		case 0:
			s += fmt.Sprintf("%.4g", c)
		case 1:
			s += fmt.Sprintf("%.4g*t", c)
		default:
			s += fmt.Sprintf("%.4g*t^%d", c, i)
		}
	}
	return s
}

// PolyFit fits a polynomial of the given degree to the samples (xs, ys)
// by ordinary least squares on the normal equations. It requires at least
// degree+1 samples.
func PolyFit(xs, ys []float64, degree int) (Polynomial, error) {
	if degree < 0 {
		return Polynomial{}, fmt.Errorf("regression: negative degree %d", degree)
	}
	if len(xs) != len(ys) {
		return Polynomial{}, fmt.Errorf("regression: sample length mismatch %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	k := degree + 1
	if n < k {
		return Polynomial{}, fmt.Errorf("regression: %d samples cannot determine a degree-%d polynomial", n, degree)
	}
	// Least squares on the Vandermonde matrix via Householder QR, which
	// keeps roughly twice the significant digits of the normal equations
	// when the design is ill-conditioned (wide x ranges, higher orders).
	vand := linalg.NewMatrix(n, k)
	for i := 0; i < n; i++ {
		p := 1.0
		for e := 0; e < k; e++ {
			vand.Set(i, e, p)
			p *= xs[i]
		}
	}
	coeffs, err := linalg.LeastSquares(vand, ys)
	if err != nil {
		return Polynomial{}, fmt.Errorf("regression: least-squares fit: %w", err)
	}
	return Polynomial{Coeffs: coeffs}, nil
}

// Predict evaluates the polynomial at each x.
func (p Polynomial) Predict(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = p.Eval(x)
	}
	return out
}

// RMSE returns the root-mean-square error of predictions against truth.
func RMSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("regression: RMSE length mismatch %d vs %d", len(pred), len(truth)))
	}
	if len(pred) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// RSquared returns the coefficient of determination of predictions
// against truth: 1 - SS_res/SS_tot. Constant truth yields NaN unless the
// fit is exact (then 1).
func RSquared(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("regression: RSquared length mismatch %d vs %d", len(pred), len(truth)))
	}
	if len(truth) == 0 {
		return math.NaN()
	}
	var mean float64
	for _, y := range truth {
		mean += y
	}
	mean /= float64(len(truth))
	var ssRes, ssTot float64
	for i := range truth {
		ssRes += (truth[i] - pred[i]) * (truth[i] - pred[i])
		ssTot += (truth[i] - mean) * (truth[i] - mean)
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}

// FitReport couples a fitted polynomial with its goodness-of-fit on the
// training samples, as annotated in Fig. 8.
type FitReport struct {
	Poly     Polynomial
	RSquared float64
	RMSE     float64
}

// FitOrders fits polynomials of order 1..maxOrder to the samples and
// reports each fit (the Fig. 8 panel contents).
func FitOrders(xs, ys []float64, maxOrder int) ([]FitReport, error) {
	if maxOrder < 1 {
		return nil, fmt.Errorf("regression: maxOrder must be >= 1, got %d", maxOrder)
	}
	var out []FitReport
	for deg := 1; deg <= maxOrder; deg++ {
		if len(xs) < deg+1 {
			break
		}
		poly, err := PolyFit(xs, ys, deg)
		if err != nil {
			return nil, err
		}
		pred := poly.Predict(xs)
		out = append(out, FitReport{Poly: poly, RSquared: RSquared(pred, ys), RMSE: RMSE(pred, ys)})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("regression: %d samples support no fit of order >= 1", len(xs))
	}
	return out, nil
}
