package linalg

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEigenSymKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Errorf("eigenvalues = %v, want [3 1]", vals)
	}
	// Eigenvector for lambda=3 is (1,1)/sqrt(2) up to sign.
	v0 := vecs.Col(0)
	if !almostEq(math.Abs(v0[0]), 1/math.Sqrt2, 1e-10) || !almostEq(math.Abs(v0[1]), 1/math.Sqrt2, 1e-10) {
		t.Errorf("first eigenvector = %v", v0)
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a := Diag([]float64{5, -1, 2})
	vals, _, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 2, -1}
	for i := range want {
		if !almostEq(vals[i], want[i], 1e-12) {
			t.Errorf("vals = %v, want %v", vals, want)
		}
	}
}

func TestEigenSymRejectsAsymmetric(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, _, err := EigenSym(a); err == nil {
		t.Fatal("expected error for asymmetric input")
	}
}

func TestEigenSymRejectsNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, _, err := EigenSym(a); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

// Property: A*v = lambda*v for every returned eigenpair, eigenvalues are
// sorted descending, and eigenvectors are orthonormal.
func TestEigenSymProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		b := randomMatrix(rng, n, n)
		a := b.Add(b.Transpose()).Scale(0.5) // symmetrize
		vals, vecs, err := EigenSym(a)
		if err != nil {
			return false
		}
		if !sort.IsSorted(sort.Reverse(sort.Float64Slice(vals))) {
			return false
		}
		tol := 1e-7 * (1 + a.MaxAbs())
		for k := 0; k < n; k++ {
			v := vecs.Col(k)
			av := a.MulVec(v)
			for i := range v {
				if !almostEq(av[i], vals[k]*v[i], tol) {
					return false
				}
			}
		}
		// Orthonormality: V^T V = I.
		return matAlmostEq(vecs.Transpose().Mul(vecs), Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: trace equals sum of eigenvalues.
func TestEigenSymTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		vals, _, err := EigenSym(a)
		if err != nil {
			return false
		}
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		for _, v := range vals {
			sum += v
		}
		return almostEq(trace, sum, 1e-8*(1+math.Abs(trace)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := AddVec(a, b); got[0] != 5 || got[2] != 9 {
		t.Errorf("AddVec = %v", got)
	}
	if got := SubVec(b, a); got[0] != 3 || got[2] != 3 {
		t.Errorf("SubVec = %v", got)
	}
	if got := ScaleVec(a, 2); got[1] != 4 {
		t.Errorf("ScaleVec = %v", got)
	}
	o := Outer(a, b)
	if o.At(1, 2) != 12 {
		t.Errorf("Outer(1,2) = %v, want 12", o.At(1, 2))
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}
