package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi rotation method. It returns the eigenvalues in descending
// order and a matrix whose columns are the corresponding unit eigenvectors.
//
// Jacobi iteration is quadratically convergent and unconditionally stable
// for symmetric matrices; the covariance matrices produced by the pipeline
// are at most a few dozen columns wide, so performance is a non-issue.
func EigenSym(a *Matrix) (values []float64, vectors *Matrix, err error) {
	n := a.rows
	if a.cols != n {
		return nil, nil, fmt.Errorf("linalg: EigenSym requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	if !a.IsSymmetric(1e-9 * (1 + a.MaxAbs())) {
		return nil, nil, fmt.Errorf("linalg: EigenSym requires a symmetric matrix")
	}
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off < 1e-14*(1+w.MaxAbs()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Compute the Jacobi rotation angle.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyRotation(w, v, p, q, c, s)
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })

	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

// applyRotation applies the Jacobi rotation G(p,q,c,s) as w = G^T w G and
// accumulates the rotation into v.
func applyRotation(w, v *Matrix, p, q int, c, s float64) {
	n := w.rows
	for i := 0; i < n; i++ {
		wip := w.At(i, p)
		wiq := w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj := w.At(p, j)
		wqj := w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip := v.At(i, p)
		viq := v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if i != j {
				s += m.At(i, j) * m.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}
