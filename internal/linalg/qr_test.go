package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRRequiresTallMatrix(t *testing.T) {
	if _, err := NewQR(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for wide matrix")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square full-rank system: least squares equals the exact solution.
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := LeastSquares(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-10) || !almostEq(x[1], 3, 1e-10) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x to noiseless overdetermined data with an outlier-free
	// residual structure: x minimizes ||Ax-b||.
	a := FromRows([][]float64{{1}, {2}, {3}, {4}})
	b := []float64{2, 4, 6, 8}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 2, 1e-10) {
		t.Errorf("slope = %v, want 2", x[0])
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected ErrSingular for rank-deficient matrix")
	}
}

func TestQRSolveRHSLength(t *testing.T) {
	f, err := NewQR(FromRows([][]float64{{1}, {2}}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Fatal("expected rhs length error")
	}
}

// Property: QR least squares matches the normal-equations solution on
// well-conditioned random systems.
func TestLeastSquaresMatchesNormalEquations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 5 + rng.Intn(15)
		n := 1 + rng.Intn(4)
		a := randomMatrix(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		qr, err := LeastSquares(a, b)
		if err != nil {
			return false
		}
		at := a.Transpose()
		ne, err := Solve(at.Mul(a), at.MulVec(b))
		if err != nil {
			return false
		}
		for i := range qr {
			if !almostEq(qr[i], ne[i], 1e-6*(1+math.Abs(ne[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the least-squares residual is orthogonal to the column space.
func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 4 + rng.Intn(12)
		n := 1 + rng.Intn(3)
		a := randomMatrix(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return false
		}
		ax := a.MulVec(x)
		resid := SubVec(b, ax)
		// A^T r must be ~0.
		atr := a.Transpose().MulVec(resid)
		for _, v := range atr {
			if math.Abs(v) > 1e-8*(1+Norm(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQRIllConditionedVandermonde(t *testing.T) {
	// A degree-5 Vandermonde on [0, 20]: the normal equations lose ~2x
	// the digits QR does. QR must still recover exact polynomial data.
	coeffs := []float64{1, -2, 0.5, 0.01, -0.002, 0.0001}
	var rows [][]float64
	var b []float64
	for x := 0.0; x <= 20; x += 0.5 {
		row := make([]float64, 6)
		p := 1.0
		y := 0.0
		for e := 0; e < 6; e++ {
			row[e] = p
			y += coeffs[e] * p
			p *= x
		}
		rows = append(rows, row)
		b = append(b, y)
	}
	x, err := LeastSquares(FromRows(rows), b)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range coeffs {
		if !almostEq(x[i], c, 1e-6*(1+math.Abs(c))) {
			t.Errorf("coeff %d = %v, want %v", i, x[i], c)
		}
	}
}
