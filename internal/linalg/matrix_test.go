package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func matAlmostEq(a, b *Matrix, tol float64) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if !almostEq(a.At(i, j), b.At(i, j), tol) {
				return false
			}
		}
	}
	return true
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// randomSPD builds a random symmetric positive-definite matrix A = B^T B + eps*I.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := randomMatrix(rng, n, n)
	a := b.Transpose().Mul(b)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+0.5)
	}
	return a
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestFromRowsRoundTrip(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	m := FromRows(rows)
	for i, r := range rows {
		for j, v := range r {
			if m.At(i, j) != v {
				t.Errorf("At(%d,%d) = %v, want %v", i, j, m.At(i, j), v)
			}
		}
	}
	// Mutating the source must not affect the matrix.
	rows[0][0] = 99
	if m.At(0, 0) != 1 {
		t.Error("FromRows did not copy the input")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	m.At(2, 0)
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 4, 4)
	if !matAlmostEq(a.Mul(Identity(4)), a, 1e-12) {
		t.Error("A*I != A")
	}
	if !matAlmostEq(Identity(4).Mul(a), a, 1e-12) {
		t.Error("I*A != A")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !matAlmostEq(got, want, 1e-12) {
		t.Errorf("Mul = \n%v want \n%v", got, want)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 5, 3)
	v := []float64{1.5, -2, 0.25}
	got := a.MulVec(v)
	col := NewMatrix(3, 1)
	for i, x := range v {
		col.Set(i, 0, x)
	}
	want := a.Mul(col)
	for i := range got {
		if !almostEq(got[i], want.At(i, 0), 1e-12) {
			t.Errorf("MulVec[%d] = %v, want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 1+rng.Intn(6), 1+rng.Intn(6))
		return matAlmostEq(m.Transpose().Transpose(), m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransposeMulProperty(t *testing.T) {
	// (A*B)^T == B^T * A^T
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k, p := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := randomMatrix(rng, n, k)
		b := randomMatrix(rng, k, p)
		return matAlmostEq(a.Mul(b).Transpose(), b.Transpose().Mul(a.Transpose()), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	if got := a.Add(b); !matAlmostEq(got, FromRows([][]float64{{5, 5}, {5, 5}}), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(a); got.MaxAbs() != 0 {
		t.Errorf("A-A nonzero: %v", got)
	}
	if got := a.Scale(2); !matAlmostEq(got, FromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Errorf("Scale = %v", got)
	}
}

func TestRowColClone(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	r := a.Row(1)
	c := a.Col(2)
	if r[0] != 4 || r[2] != 6 {
		t.Errorf("Row = %v", r)
	}
	if c[0] != 3 || c[1] != 6 {
		t.Errorf("Col = %v", c)
	}
	cl := a.Clone()
	cl.Set(0, 0, 42)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestIsSymmetric(t *testing.T) {
	if !FromRows([][]float64{{1, 2}, {2, 1}}).IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	if FromRows([][]float64{{1, 2}, {3, 1}}).IsSymmetric(1e-9) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if FromRows([][]float64{{1, 2, 3}}).IsSymmetric(1e-9) {
		t.Error("non-square matrix reported symmetric")
	}
}

func TestDiag(t *testing.T) {
	d := Diag([]float64{1, 2, 3})
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = float64(i + 1)
			}
			if d.At(i, j) != want {
				t.Errorf("Diag(%d,%d) = %v, want %v", i, j, d.At(i, j), want)
			}
		}
	}
}
