package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-10) || !almostEq(x[1], 3, 1e-10) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("expected ErrSingular for rank-deficient system")
	}
}

func TestSolveNonSquare(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}})
	if _, err := Solve(a, []float64{1}); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	a := Identity(3)
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("expected error for rhs length mismatch")
	}
}

// Property: for random well-conditioned A and x, Solve(A, A*x) recovers x.
func TestSolveRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n) // SPD => well conditioned enough
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-6*(1+a.MaxAbs())) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	b := []float64{5, 10}
	orig := a.Clone()
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if !matAlmostEq(a, orig, 0) {
		t.Error("Solve mutated its matrix argument")
	}
	if b[0] != 5 || b[1] != 10 {
		t.Error("Solve mutated its rhs argument")
	}
}

func TestInverseKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{0.6, -0.7}, {-0.2, 0.4}})
	if !matAlmostEq(inv, want, 1e-10) {
		t.Errorf("Inverse = \n%v want \n%v", inv, want)
	}
}

func TestInverseProperty(t *testing.T) {
	// A * A^-1 == I for random SPD matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return matAlmostEq(a.Mul(inv), Identity(n), 1e-7*(1+a.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInverseSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Inverse(a); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 5}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !matAlmostEq(l.Mul(l.Transpose()), a, 1e-10) {
		t.Errorf("L*L^T != A; L = \n%v", l)
	}
	if l.At(0, 1) != 0 {
		t.Error("Cholesky factor is not lower triangular")
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected failure for indefinite matrix")
	}
}

func TestCholeskyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		return matAlmostEq(l.Mul(l.Transpose()), a, 1e-8*(1+a.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRegularizedInverseHandlesSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {1, 1}}) // singular
	inv, err := RegularizedInverse(a, 1e-3)
	if err != nil {
		t.Fatalf("regularized inverse failed: %v", err)
	}
	if inv.MaxAbs() == 0 {
		t.Error("regularized inverse is zero")
	}
}
