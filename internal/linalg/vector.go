package linalg

import (
	"fmt"
	"math"
)

// Dot returns the dot product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of v.
func Norm(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// AddVec returns a + b as a new slice.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: AddVec length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// SubVec returns a - b as a new slice.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: SubVec length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// ScaleVec returns v scaled by s as a new slice.
func ScaleVec(v []float64, s float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x * s
	}
	return out
}

// Outer returns the outer product a * b^T as a len(a) x len(b) matrix.
func Outer(a, b []float64) *Matrix {
	m := NewMatrix(len(a), len(b))
	for i, av := range a {
		for j, bv := range b {
			m.Set(i, j, av*bv)
		}
	}
	return m
}
