// Package linalg provides the dense linear-algebra substrate used by the
// analysis pipeline: matrices, linear solvers, matrix inversion, Cholesky
// factorization and a Jacobi eigendecomposition for symmetric matrices.
//
// The package is deliberately small and allocation-conscious: the paper's
// pipeline only needs solves of tiny normal-equation systems (polynomial
// regression), inversion of covariance matrices (Mahalanobis distance) and
// symmetric eigendecomposition (PCA), all at dimension <= a few dozen.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64 values.
//
// The zero value is an empty 0x0 matrix. Use NewMatrix or FromRows to
// construct matrices with content.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows. The data is
// copied; the caller retains ownership of rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("linalg: ragged rows: row 0 has %d cols, row %d has %d", cols, i, len(r)))
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Matrix {
	m := NewMatrix(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: col %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.cols != other.rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d * %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	out := NewMatrix(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := other.data[k*other.cols : (k+1)*other.cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.cols != len(v) {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d * vec(%d)", m.rows, m.cols, len(v)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// Add returns m + other element-wise.
func (m *Matrix) Add(other *Matrix) *Matrix {
	if m.rows != other.rows || m.cols != other.cols {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d + %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	out := m.Clone()
	for i, v := range other.data {
		out.data[i] += v
	}
	return out
}

// Sub returns m - other element-wise.
func (m *Matrix) Sub(other *Matrix) *Matrix {
	if m.rows != other.rows || m.cols != other.cols {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d - %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	out := m.Clone()
	for i, v := range other.data {
		out.data[i] -= v
	}
	return out
}

// Scale returns m scaled by s.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute value of any element, or 0 for an
// empty matrix.
func (m *Matrix) MaxAbs() float64 {
	var max float64
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}
