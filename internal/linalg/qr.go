package linalg

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization of an m x n matrix (m >= n):
// A = Q*R with Q orthogonal (m x m, stored implicitly as reflectors) and
// R upper triangular (n x n).
type QR struct {
	// qr stores R in its upper triangle and the Householder vectors below
	// the diagonal.
	qr    *Matrix
	rdiag []float64
}

// NewQR factors a. It requires at least as many rows as columns.
func NewQR(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Householder reflector annihilating column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if norm == 0 {
			rdiag[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdiag[k] = -norm
	}
	return &QR{qr: qr, rdiag: rdiag}, nil
}

// FullRank reports whether R has no (numerically) zero diagonal entries.
func (f *QR) FullRank() bool {
	scale := 0.0
	for _, d := range f.rdiag {
		if a := math.Abs(d); a > scale {
			scale = a
		}
	}
	tol := 1e-12 * (1 + scale)
	for _, d := range f.rdiag {
		if math.Abs(d) < tol {
			return false
		}
	}
	return true
}

// Solve returns the least-squares solution x minimizing ||A*x - b||2.
// Returns ErrSingular when A is rank-deficient.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows(), f.qr.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: QR solve rhs has length %d, want %d", len(b), m)
	}
	if !f.FullRank() {
		return nil, ErrSingular
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply Q^T to b.
	for k := 0; k < n; k++ {
		if f.qr.At(k, k) == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R*x = (Q^T b)[:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdiag[i]
	}
	return x, nil
}

// LeastSquares solves min ||A*x - b||2 by Householder QR — numerically
// preferable to forming the normal equations when A is ill-conditioned
// (e.g. Vandermonde matrices of polynomial regression).
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
