package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a matrix is singular (or numerically so)
// and cannot be solved or inverted.
var ErrSingular = errors.New("linalg: matrix is singular")

// Solve solves the linear system a*x = b for x using Gaussian elimination
// with partial pivoting. a must be square and len(b) must equal a.Rows().
// a and b are not modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("linalg: Solve requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Solve dimension mismatch: %dx%d matrix with rhs of length %d", n, n, len(b))
	}
	// Augmented working copy.
	w := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot: find the row with the largest magnitude in col.
		pivot := col
		best := math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(w, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		pv := w.At(col, col)
		for r := col + 1; r < n; r++ {
			f := w.At(r, col) / pv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				w.Set(r, c, w.At(r, c)-f*w.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= w.At(i, j) * x[j]
		}
		x[i] = s / w.At(i, i)
	}
	return x, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Inverse returns the inverse of a square matrix using Gauss-Jordan
// elimination with partial pivoting. Returns ErrSingular if the matrix is
// not invertible.
func Inverse(a *Matrix) (*Matrix, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("linalg: Inverse requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	w := a.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(w, pivot, col)
			swapRows(inv, pivot, col)
		}
		pv := w.At(col, col)
		for c := 0; c < n; c++ {
			w.Set(col, c, w.At(col, c)/pv)
			inv.Set(col, c, inv.At(col, c)/pv)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := w.At(r, col)
			if f == 0 {
				continue
			}
			for c := 0; c < n; c++ {
				w.Set(r, c, w.At(r, c)-f*w.At(col, c))
				inv.Set(r, c, inv.At(r, c)-f*inv.At(col, c))
			}
		}
	}
	return inv, nil
}

// Cholesky computes the lower-triangular Cholesky factor L of a symmetric
// positive-definite matrix a, so that a = L * L^T. Returns ErrSingular if
// a is not positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("linalg: Cholesky requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// RegularizedInverse inverts a after adding ridge*I to the diagonal. It is
// used for covariance matrices that may be rank-deficient (e.g. constant
// SMART attributes make the sample covariance singular).
func RegularizedInverse(a *Matrix, ridge float64) (*Matrix, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("linalg: RegularizedInverse requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	w := a.Clone()
	for i := 0; i < n; i++ {
		w.Set(i, i, w.At(i, i)+ridge)
	}
	return Inverse(w)
}
