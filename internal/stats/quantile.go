package stats

import "math"

// Quantile returns the q-th quantile of xs (0 <= q <= 1) using linear
// interpolation between order statistics (the "type 7" estimator used by
// R and NumPy). It returns NaN for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		min, _ := MinMax(xs)
		return min
	}
	if q >= 1 {
		_, max := MinMax(xs)
		return max
	}
	s := sortedCopy(xs)
	return quantileSorted(s, q)
}

// quantileSorted is Quantile for an already-sorted slice.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	if hi >= len(s) {
		return s[len(s)-1]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Deciles returns the first nine deciles (10%..90%) of xs, the summary the
// paper uses in Fig. 6 to compare failure groups against good drives while
// avoiding outlier skew. It returns nil for an empty slice.
func Deciles(xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	s := sortedCopy(xs)
	out := make([]float64, 9)
	for i := 1; i <= 9; i++ {
		out[i-1] = quantileSorted(s, float64(i)/10)
	}
	return out
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// BoxPlot is the five-number summary (plus whiskers) used for Fig. 2.
type BoxPlot struct {
	Min    float64 // smallest observation
	Q1     float64 // 25th percentile
	Median float64 // 50th percentile
	Q3     float64 // 75th percentile
	Max    float64 // largest observation
	// LowWhisker and HighWhisker are the most extreme observations within
	// 1.5*IQR of the quartiles (Tukey convention); observations outside
	// them are Outliers.
	LowWhisker  float64
	HighWhisker float64
	Outliers    int
}

// IQR returns the interquartile range Q3 - Q1.
func (b BoxPlot) IQR() float64 { return b.Q3 - b.Q1 }

// NewBoxPlot computes the boxplot summary of xs. It returns a zero BoxPlot
// with NaN fields for an empty slice.
func NewBoxPlot(xs []float64) BoxPlot {
	if len(xs) == 0 {
		nan := math.NaN()
		return BoxPlot{Min: nan, Q1: nan, Median: nan, Q3: nan, Max: nan, LowWhisker: nan, HighWhisker: nan}
	}
	s := sortedCopy(xs)
	b := BoxPlot{
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
	}
	iqr := b.IQR()
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.LowWhisker, b.HighWhisker = b.Max, b.Min
	for _, x := range s {
		if x < loFence || x > hiFence {
			b.Outliers++
			continue
		}
		if x < b.LowWhisker {
			b.LowWhisker = x
		}
		if x > b.HighWhisker {
			b.HighWhisker = x
		}
	}
	return b
}

// Histogram is a fixed-width-bin histogram over [Min, Max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	total    int
}

// NewHistogram bins xs into the given number of equal-width bins spanning
// [min, max]. Values outside the range are clamped into the end bins,
// which matches how the paper's Fig. 1 buckets censored profile lengths.
func NewHistogram(xs []float64, min, max float64, bins int) *Histogram {
	if bins <= 0 {
		bins = 1
	}
	if max <= min {
		max = min + 1
	}
	h := &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
	width := (max - min) / float64(bins)
	for _, x := range xs {
		i := int((x - min) / width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
		h.total++
	}
	return h
}

// Total returns the number of observations binned.
func (h *Histogram) Total() int { return h.total }

// BinEdges returns the lower edge of each bin plus the final upper edge.
func (h *Histogram) BinEdges() []float64 {
	width := (h.Max - h.Min) / float64(len(h.Counts))
	edges := make([]float64, len(h.Counts)+1)
	for i := range edges {
		edges[i] = h.Min + float64(i)*width
	}
	return edges
}

// FractionAtLeast returns the fraction of observations with value >= x.
func (h *Histogram) FractionAtLeast(x float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	width := (h.Max - h.Min) / float64(len(h.Counts))
	var n int
	for i, c := range h.Counts {
		lower := h.Min + float64(i)*width
		if lower >= x {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}
