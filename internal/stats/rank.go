package stats

import (
	"math"
	"sort"
)

// Ranks returns the 1-based ranks of xs with ties receiving the average of
// the ranks they span (midrank method), as required by the Wilcoxon
// rank-sum baseline detector.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group spanning sorted positions i..j.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// RankSumZ computes the normal approximation z statistic of the Wilcoxon
// rank-sum (Mann-Whitney) test for sample against reference. A large |z|
// indicates the sample's distribution is shifted relative to the
// reference. Returns NaN when either sample is empty.
func RankSumZ(sample, reference []float64) float64 {
	n1, n2 := len(sample), len(reference)
	if n1 == 0 || n2 == 0 {
		return math.NaN()
	}
	all := make([]float64, 0, n1+n2)
	all = append(all, sample...)
	all = append(all, reference...)
	ranks := Ranks(all)
	var w float64
	for i := 0; i < n1; i++ {
		w += ranks[i]
	}
	fn1, fn2 := float64(n1), float64(n2)
	mean := fn1 * (fn1 + fn2 + 1) / 2
	// Tie correction for the variance.
	variance := fn1 * fn2 * (fn1 + fn2 + 1) / 12
	variance -= fn1 * fn2 / (12 * (fn1 + fn2) * (fn1 + fn2 - 1)) * tieCorrection(all)
	if variance <= 0 {
		return 0
	}
	return (w - mean) / math.Sqrt(variance)
}

// KolmogorovSmirnov returns the two-sample KS statistic: the maximum
// absolute difference between the empirical CDFs of a and b. Values near
// 1 mean the distributions barely overlap — the quantitative form of the
// Fig. 6 decile separations. Returns NaN when either sample is empty.
func KolmogorovSmirnov(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.NaN()
	}
	sa, sb := sortedCopy(a), sortedCopy(b)
	var i, j int
	var d float64
	for i < len(sa) && j < len(sb) {
		// Advance past every copy of the smaller value; ties advance both
		// sides so the CDFs are compared only between distinct values.
		v := math.Min(sa[i], sb[j])
		for i < len(sa) && sa[i] == v {
			i++
		}
		for j < len(sb) && sb[j] == v {
			j++
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// tieCorrection returns sum over tie groups of t^3 - t.
func tieCorrection(xs []float64) float64 {
	s := sortedCopy(xs)
	var total float64
	for i := 0; i < len(s); {
		j := i
		for j+1 < len(s) && s[j+1] == s[i] {
			j++
		}
		t := float64(j - i + 1)
		if t > 1 {
			total += t*t*t - t
		}
		i = j + 1
	}
	return total
}
