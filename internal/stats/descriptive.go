// Package stats implements the descriptive and inferential statistics the
// characterization pipeline relies on: moments, quantiles and deciles,
// boxplot summaries, histograms, Pearson correlation, covariance matrices,
// the paper's Welch-style z-score (Eq. 7), and rank utilities for the
// rank-sum baseline detector.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n), or NaN
// for an empty slice.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance of xs (dividing by
// n-1), or NaN when len(xs) < 2.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SampleStdDev returns the sample standard deviation of xs.
func SampleStdDev(xs []float64) float64 { return math.Sqrt(SampleVariance(xs)) }

// MinMax returns the smallest and largest values in xs. It returns
// (NaN, NaN) for an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// ChangeRate returns the average per-step change of a series,
// (last-first)/(n-1), used as one of the paper's clustering features.
// It returns 0 for series shorter than 2.
func ChangeRate(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return (xs[len(xs)-1] - xs[0]) / float64(len(xs)-1)
}

// Running accumulates streaming mean and variance using Welford's
// algorithm. It lets the pipeline aggregate millions of good-drive records
// without materializing them.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// AddAll incorporates every observation in xs.
func (r *Running) AddAll(xs []float64) {
	for _, x := range xs {
		r.Add(x)
	}
}

// Merge combines another accumulator into r (parallel Welford merge).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.mean += d * float64(o.n) / float64(n)
	r.n = n
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the running mean, or NaN if empty.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the running population variance, or NaN if empty.
func (r *Running) Variance() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.m2 / float64(r.n)
}

// SampleVariance returns the running sample variance, or NaN if n < 2.
func (r *Running) SampleVariance() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return r.m2 / float64(r.n-1)
}

// Describe summarizes a sample for reporting.
type Describe struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Describe for xs.
func Summarize(xs []float64) Describe {
	min, max := MinMax(xs)
	return Describe{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    min,
		Max:    max,
	}
}

// String renders the summary compactly.
func (d Describe) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g", d.N, d.Mean, d.StdDev, d.Min, d.Max)
}

// sortedCopy returns xs sorted ascending without mutating the input.
func sortedCopy(xs []float64) []float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return s
}
