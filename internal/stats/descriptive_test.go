package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := SampleVariance(xs); !almostEq(got, 32.0/7, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", got, 32.0/7)
	}
}

func TestEmptySlices(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("Mean/Variance of empty slice should be NaN")
	}
	if !math.IsNaN(SampleVariance([]float64{1})) {
		t.Error("SampleVariance of single element should be NaN")
	}
	min, max := MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Error("MinMax of empty slice should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
}

func TestChangeRate(t *testing.T) {
	if got := ChangeRate([]float64{0, 2, 4, 6}); got != 2 {
		t.Errorf("ChangeRate = %v, want 2", got)
	}
	if got := ChangeRate([]float64{5}); got != 0 {
		t.Errorf("ChangeRate single = %v, want 0", got)
	}
	if got := ChangeRate(nil); got != 0 {
		t.Errorf("ChangeRate nil = %v, want 0", got)
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		var r Running
		r.AddAll(xs)
		return almostEq(r.Mean(), Mean(xs), 1e-9) &&
			almostEq(r.Variance(), Variance(xs), 1e-7) &&
			r.N() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRunningMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1, n2 := rng.Intn(50), 1+rng.Intn(50)
		xs := make([]float64, n1+n2)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		var a, b, whole Running
		a.AddAll(xs[:n1])
		b.AddAll(xs[n1:])
		whole.AddAll(xs)
		a.Merge(b)
		return a.N() == whole.N() &&
			almostEq(a.Mean(), whole.Mean(), 1e-9) &&
			almostEq(a.Variance(), whole.Variance(), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Variance()) {
		t.Error("empty Running should report NaN")
	}
	var o Running
	o.Add(3)
	r.Merge(o)
	if r.N() != 1 || r.Mean() != 3 {
		t.Errorf("merge into empty: n=%d mean=%v", r.N(), r.Mean())
	}
}

func TestSummarize(t *testing.T) {
	d := Summarize([]float64{1, 2, 3, 4})
	if d.N != 4 || d.Mean != 2.5 || d.Min != 1 || d.Max != 4 {
		t.Errorf("Summarize = %+v", d)
	}
	if d.String() == "" {
		t.Error("String should not be empty")
	}
}
