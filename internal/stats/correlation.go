package stats

import (
	"fmt"
	"math"

	"disksig/internal/linalg"
)

// Pearson returns the Pearson product-moment correlation coefficient of
// the paired samples xs and ys. If either sample has zero variance the
// correlation is undefined and 0 is returned (the convention the pipeline
// uses for constant SMART attributes).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(xs), len(ys)))
	}
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Covariance returns the population covariance of the paired samples.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Covariance length mismatch %d vs %d", len(xs), len(ys)))
	}
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var s float64
	for i := 0; i < n; i++ {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n)
}

// CovarianceMatrix returns the population covariance matrix of the row
// observations in data (each row is one observation, each column one
// variable).
func CovarianceMatrix(data *linalg.Matrix) *linalg.Matrix {
	n, d := data.Rows(), data.Cols()
	cov := linalg.NewMatrix(d, d)
	if n == 0 {
		return cov
	}
	means := make([]float64, d)
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < n; i++ {
			s += data.At(i, j)
		}
		means[j] = s / float64(n)
	}
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			var s float64
			for i := 0; i < n; i++ {
				s += (data.At(i, a) - means[a]) * (data.At(i, b) - means[b])
			}
			c := s / float64(n)
			cov.Set(a, b, c)
			cov.Set(b, a, c)
		}
	}
	return cov
}

// ColumnMeans returns the per-column means of the row observations in data.
func ColumnMeans(data *linalg.Matrix) []float64 {
	n, d := data.Rows(), data.Cols()
	means := make([]float64, d)
	if n == 0 {
		return means
	}
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < n; i++ {
			s += data.At(i, j)
		}
		means[j] = s / float64(n)
	}
	return means
}
