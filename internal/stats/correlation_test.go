package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"disksig/internal/linalg"
)

func TestPearsonKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Pearson(xs, xs); !almostEq(got, 1, 1e-12) {
		t.Errorf("Pearson(x,x) = %v, want 1", got)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Errorf("Pearson(x,-x) = %v, want -1", got)
	}
}

func TestPearsonConstant(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("Pearson with constant series = %v, want 0", got)
	}
}

func TestPearsonEmptyAndMismatch(t *testing.T) {
	if !math.IsNaN(Pearson(nil, nil)) {
		t.Error("Pearson of empty should be NaN")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

// Property: Pearson is invariant under positive affine transforms and
// bounded in [-1, 1].
func TestPearsonAffineInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r := Pearson(xs, ys)
		if r < -1-1e-12 || r > 1+1e-12 {
			return false
		}
		a := 0.5 + rng.Float64()*3
		b := rng.NormFloat64() * 10
		xs2 := make([]float64, n)
		for i := range xs {
			xs2[i] = a*xs[i] + b
		}
		return almostEq(Pearson(xs2, ys), r, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCovariance(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{2, 4, 6}
	// cov = mean((x-2)(y-4)) = (2 + 0 + 2)/3
	if got := Covariance(xs, ys); !almostEq(got, 4.0/3, 1e-12) {
		t.Errorf("Covariance = %v, want %v", got, 4.0/3)
	}
	if got := Covariance(xs, xs); !almostEq(got, Variance(xs), 1e-12) {
		t.Errorf("Cov(x,x) = %v, want Var(x) = %v", got, Variance(xs))
	}
}

func TestCovarianceMatrix(t *testing.T) {
	data := linalg.FromRows([][]float64{
		{1, 2},
		{2, 4},
		{3, 6},
	})
	cov := CovarianceMatrix(data)
	if !almostEq(cov.At(0, 0), Variance([]float64{1, 2, 3}), 1e-12) {
		t.Errorf("cov(0,0) = %v", cov.At(0, 0))
	}
	if !almostEq(cov.At(0, 1), 4.0/3, 1e-12) {
		t.Errorf("cov(0,1) = %v", cov.At(0, 1))
	}
	if !cov.IsSymmetric(1e-12) {
		t.Error("covariance matrix should be symmetric")
	}
}

func TestCovarianceMatrixPSDProperty(t *testing.T) {
	// Covariance matrices are positive semi-definite: all eigenvalues >= 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 3+rng.Intn(30), 1+rng.Intn(5)
		data := linalg.NewMatrix(n, d)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				data.Set(i, j, rng.NormFloat64())
			}
		}
		cov := CovarianceMatrix(data)
		vals, _, err := linalg.EigenSym(cov)
		if err != nil {
			return false
		}
		for _, v := range vals {
			if v < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestColumnMeans(t *testing.T) {
	data := linalg.FromRows([][]float64{{1, 10}, {3, 20}})
	m := ColumnMeans(data)
	if m[0] != 2 || m[1] != 15 {
		t.Errorf("ColumnMeans = %v", m)
	}
	if m := ColumnMeans(linalg.NewMatrix(0, 3)); len(m) != 3 {
		t.Errorf("empty ColumnMeans = %v", m)
	}
}

func TestZScore(t *testing.T) {
	// Identical populations => z = 0.
	if got := ZScore(5, 1, 100, 5, 1, 100); got != 0 {
		t.Errorf("z = %v, want 0", got)
	}
	// Failed mean below good mean => negative z.
	if got := ZScore(3, 1, 100, 5, 1, 100); got >= 0 {
		t.Errorf("z = %v, want negative", got)
	}
	if !math.IsNaN(ZScore(1, 1, 0, 1, 1, 5)) {
		t.Error("z with empty sample should be NaN")
	}
	if !math.IsNaN(ZScore(1, 0, 5, 1, 0, 5)) {
		t.Error("z with zero variance should be NaN")
	}
}

func TestZScoreSamples(t *testing.T) {
	failed := []float64{1, 2, 3}
	good := []float64{5, 6, 7}
	z := ZScoreSamples(failed, good)
	if z >= 0 {
		t.Errorf("z = %v, want negative", z)
	}
	// Known value: means 2 vs 6, variances 2/3 each, n=3 each.
	want := (2.0 - 6.0) / math.Sqrt(2.0/3/3+2.0/3/3)
	if !almostEq(z, want, 1e-12) {
		t.Errorf("z = %v, want %v", z, want)
	}
}

func TestStandardize(t *testing.T) {
	z := Standardize([]float64{1, 2, 3})
	if !almostEq(Mean(z), 0, 1e-12) || !almostEq(StdDev(z), 1, 1e-12) {
		t.Errorf("standardized mean/sd = %v/%v", Mean(z), StdDev(z))
	}
	zc := Standardize([]float64{4, 4, 4})
	for _, v := range zc {
		if v != 0 {
			t.Errorf("constant standardize = %v", zc)
		}
	}
}
