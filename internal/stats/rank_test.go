package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRanksNoTies(t *testing.T) {
	ranks := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if ranks[i] != want[i] {
			t.Errorf("Ranks = %v, want %v", ranks, want)
			break
		}
	}
}

func TestRanksWithTies(t *testing.T) {
	ranks := Ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if ranks[i] != want[i] {
			t.Errorf("Ranks = %v, want %v", ranks, want)
			break
		}
	}
}

func TestRanksSumProperty(t *testing.T) {
	// Rank sum is always n(n+1)/2 regardless of ties.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(10)) // many ties
		}
		return almostEq(Sum(Ranks(xs)), float64(n*(n+1))/2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRankSumZShifted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sample := make([]float64, 50)
	ref := make([]float64, 200)
	for i := range sample {
		sample[i] = rng.NormFloat64() + 3 // clearly shifted up
	}
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	z := RankSumZ(sample, ref)
	if z < 5 {
		t.Errorf("z = %v, want strongly positive for shifted sample", z)
	}
	zDown := RankSumZ(ScaledBy(sample, -1), ScaledBy(ref, -1))
	if zDown > -5 {
		t.Errorf("z = %v, want strongly negative for downward shift", zDown)
	}
}

// ScaledBy is a test helper returning xs*k.
func ScaledBy(xs []float64, k float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * k
	}
	return out
}

func TestRankSumZIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	z := RankSumZ(a, b)
	if math.Abs(z) > 3 {
		t.Errorf("z = %v for identically distributed samples, want near 0", z)
	}
}

func TestRankSumZEmpty(t *testing.T) {
	if !math.IsNaN(RankSumZ(nil, []float64{1})) {
		t.Error("expected NaN for empty sample")
	}
}

func TestRankSumZAllTies(t *testing.T) {
	z := RankSumZ([]float64{1, 1}, []float64{1, 1, 1})
	if z != 0 {
		t.Errorf("z = %v for fully tied data, want 0", z)
	}
}

func TestKolmogorovSmirnovKnown(t *testing.T) {
	// Disjoint supports: D = 1.
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if got := KolmogorovSmirnov(a, b); got != 1 {
		t.Errorf("disjoint KS = %v, want 1", got)
	}
	// Identical samples: D = 0.
	if got := KolmogorovSmirnov(a, a); got != 0 {
		t.Errorf("identical KS = %v, want 0", got)
	}
	if !math.IsNaN(KolmogorovSmirnov(nil, a)) {
		t.Error("empty sample should be NaN")
	}
}

func TestKolmogorovSmirnovShiftSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := make([]float64, 500)
	shifted := make([]float64, 500)
	for i := range base {
		base[i] = rng.NormFloat64()
		shifted[i] = rng.NormFloat64() + 0.5
	}
	small := KolmogorovSmirnov(base, base[:250])
	big := KolmogorovSmirnov(base, shifted)
	if !(big > small+0.1) {
		t.Errorf("shifted KS %v should exceed same-distribution KS %v", big, small)
	}
}

// Property: KS is symmetric and in [0, 1].
func TestKolmogorovSmirnovProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(50), 1+rng.Intn(50)
		a := make([]float64, n)
		b := make([]float64, m)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		d1 := KolmogorovSmirnov(a, b)
		d2 := KolmogorovSmirnov(b, a)
		return d1 >= 0 && d1 <= 1 && math.Abs(d1-d2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
