package stats

import "math"

// ZScore computes the paper's Eq. (7): the standardized difference between
// the mean of a disk health attribute over failed drives and over good
// drives,
//
//	z = (m_f - m_g) / sqrt(var_f/n_f + var_g/n_g)
//
// A strongly negative z means the failed drives' attribute health value is
// far below the good drives' (e.g. hotter temperature in Fig. 11).
// Returns NaN when either sample is empty or both variance terms are zero.
func ZScore(meanF, varF float64, nF int, meanG, varG float64, nG int) float64 {
	if nF == 0 || nG == 0 {
		return math.NaN()
	}
	den := varF/float64(nF) + varG/float64(nG)
	if den <= 0 {
		return math.NaN()
	}
	return (meanF - meanG) / math.Sqrt(den)
}

// ZScoreSamples computes Eq. (7) directly from the two samples.
func ZScoreSamples(failed, good []float64) float64 {
	return ZScore(Mean(failed), Variance(failed), len(failed), Mean(good), Variance(good), len(good))
}

// Standardize returns (x - mean)/sd per element; sd == 0 yields zeros.
func Standardize(xs []float64) []float64 {
	m := Mean(xs)
	sd := StdDev(xs)
	out := make([]float64, len(xs))
	if sd == 0 || math.IsNaN(sd) {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m) / sd
	}
	return out
}
