package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Errorf("Quantile single = %v, want 7", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func TestDeciles(t *testing.T) {
	// 0..100 inclusive: decile i should be ~10*i.
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	d := Deciles(xs)
	if len(d) != 9 {
		t.Fatalf("len = %d, want 9", len(d))
	}
	for i, v := range d {
		want := float64((i + 1) * 10)
		if !almostEq(v, want, 1e-9) {
			t.Errorf("decile %d = %v, want %v", i+1, v, want)
		}
	}
	if Deciles(nil) != nil {
		t.Error("Deciles of empty should be nil")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 5
		}
		min, max := MinMax(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-12 || v < min-1e-12 || v > max+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBoxPlot(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100} // 100 is an outlier
	b := NewBoxPlot(xs)
	if b.Min != 1 || b.Max != 100 {
		t.Errorf("Min/Max = %v/%v", b.Min, b.Max)
	}
	if b.Median != 5 {
		t.Errorf("Median = %v, want 5", b.Median)
	}
	if b.Outliers != 1 {
		t.Errorf("Outliers = %d, want 1", b.Outliers)
	}
	if b.HighWhisker != 8 {
		t.Errorf("HighWhisker = %v, want 8", b.HighWhisker)
	}
	if b.IQR() <= 0 {
		t.Errorf("IQR = %v", b.IQR())
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	b := NewBoxPlot(nil)
	if !math.IsNaN(b.Median) {
		t.Error("empty boxplot should have NaN fields")
	}
}

func TestBoxPlotOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		b := NewBoxPlot(xs)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max &&
			b.LowWhisker >= b.Min && b.HighWhisker <= b.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h := NewHistogram(xs, 0, 10, 5)
	if h.Total() != 10 {
		t.Errorf("Total = %d", h.Total())
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Errorf("bin %d = %d, want 2", i, c)
		}
	}
	edges := h.BinEdges()
	if len(edges) != 6 || edges[0] != 0 || edges[5] != 10 {
		t.Errorf("edges = %v", edges)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram([]float64{-5, 15}, 0, 10, 2)
	if h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("clamped counts = %v", h.Counts)
	}
}

func TestHistogramFractionAtLeast(t *testing.T) {
	xs := []float64{1, 3, 5, 7, 9}
	h := NewHistogram(xs, 0, 10, 5)
	if got := h.FractionAtLeast(6); !almostEq(got, 0.4, 1e-12) {
		t.Errorf("FractionAtLeast(6) = %v, want 0.4", got)
	}
	empty := NewHistogram(nil, 0, 1, 2)
	if !math.IsNaN(empty.FractionAtLeast(0)) {
		t.Error("empty histogram fraction should be NaN")
	}
}

func TestMedianMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + 2*rng.Intn(25) // odd n: median is the middle element
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		s := make([]float64, n)
		copy(s, xs)
		sort.Float64s(s)
		return almostEq(Median(xs), s[n/2], 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
