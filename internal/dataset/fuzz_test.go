package dataset

import (
	"bytes"
	"strings"
	"testing"

	"disksig/internal/quality"
	"disksig/internal/smart"
)

// assertSanitized checks the guarantees every Lenient Q-reader makes on
// success: the accounting invariant holds, and no record bypassed
// quarantine (all values finite and in bounds, hours strictly
// increasing, profiles at least MinRecords long).
func assertSanitized(t *testing.T, ds *Dataset, rep *quality.Report) {
	t.Helper()
	if rep.RowsRead != rep.RowsKept()+rep.RowsQuarantined+rep.RowsDropped {
		t.Fatalf("accounting: read %d != kept %d + quarantined %d + dropped %d",
			rep.RowsRead, rep.RowsKept(), rep.RowsQuarantined, rep.RowsDropped)
	}
	min := quality.Config{}.WithDefaults().MinRecords
	for _, p := range append(append([]*smart.Profile{}, ds.Failed...), ds.Good...) {
		if len(p.Records) < min {
			t.Fatalf("drive %d kept with %d records, min is %d", p.DriveID, len(p.Records), min)
		}
		if !p.Class.Valid() {
			t.Fatalf("drive %d kept with invalid class %d", p.DriveID, p.Class)
		}
		last := p.Records[0].Hour - 1
		for _, r := range p.Records {
			if r.Hour <= last {
				t.Fatalf("drive %d hours not strictly increasing: %d after %d", p.DriveID, r.Hour, last)
			}
			last = r.Hour
			if issues := quality.CheckValues(r.Values); len(issues) > 0 {
				t.Fatalf("drive %d kept defective values: %v", p.DriveID, issues)
			}
		}
	}
}

func FuzzReadBackblazeCSV(f *testing.F) {
	f.Add(backblazeFixture())
	f.Add("date,serial_number,model,capacity_bytes,failure,smart_1_normalized\n" +
		"2026-07-01,S1,M,1,0,100\n2026-07-02,S1,M,1,0,99\n")
	f.Add("date,serial_number,model,capacity_bytes,failure\nnot-a-date,S1,M,1,2\n")
	f.Add("date,serial_number,model,capacity_bytes,failure,smart_9_normalized\n" +
		"2026-07-01,S1,M,1,0,NaN\n2026-07-01,S1,M,1,0,1e99\n\"unterminated")
	f.Add(backblazeSSDFixture())
	// SSD rows detected by wear columns alone (no model, no capacity),
	// including an out-of-bounds raw P/E count.
	f.Add("date,serial_number,failure,smart_173_normalized,smart_173_raw\n" +
		"2026-07-01,F1,0,100,500\n2026-07-02,F1,0,95,9e9\n2026-07-03,F1,1,90,1500\n")
	// A drive that flip-flops between classes mid-stream.
	f.Add("date,serial_number,failure,smart_1_normalized,smart_173_normalized\n" +
		"2026-07-01,X,0,100,\n2026-07-02,X,0,,90\n2026-07-03,X,0,100,\n")
	f.Fuzz(func(t *testing.T, input string) {
		ds, rep, err := ReadBackblazeCSVQ(strings.NewReader(input), quality.Config{Policy: quality.Lenient})
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		assertSanitized(t, ds, rep)
	})
}

func FuzzReadCSV(f *testing.F) {
	var buf bytes.Buffer
	if err := testDataset().WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	buf.Reset()
	if err := nonFiniteDataset().WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("drive_id,failed,true_group,hour\n0,true,1,0\n0,true,1,0\n")
	f.Fuzz(func(t *testing.T, input string) {
		for _, policy := range []quality.Policy{quality.Lenient, quality.Repair} {
			ds, rep, err := ReadCSVQ(strings.NewReader(input), quality.Config{Policy: policy})
			if err != nil {
				continue
			}
			assertSanitized(t, ds, rep)
		}
		// The strict path must never panic either.
		_, _ = ReadCSV(strings.NewReader(input))
	})
}
