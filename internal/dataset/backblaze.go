package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"disksig/internal/quality"
	"disksig/internal/smart"
)

// backblazeColumns maps Backblaze smart_<id> columns to Table I
// attributes; used by both the reader and the writer.
var backblazeColumns = []struct {
	column string
	attr   smart.Attr
}{
	{"smart_1_normalized", smart.RRER},
	{"smart_3_normalized", smart.SUT},
	{"smart_5_normalized", smart.RSC},
	{"smart_5_raw", smart.RawRSC},
	{"smart_7_normalized", smart.SER},
	{"smart_9_normalized", smart.POH},
	{"smart_187_normalized", smart.RUE},
	{"smart_189_normalized", smart.HFW},
	{"smart_194_normalized", smart.TC},
	{"smart_195_normalized", smart.HER},
	{"smart_197_normalized", smart.CPSC},
	{"smart_197_raw", smart.RawCPSC},
}

// backblazeSSDColumns maps the SMART columns flash drives actually
// populate in Backblaze dumps onto the SSD attribute registry (see
// smart.InfoFor): 173 wear leveling, 5 retired NAND blocks, 171/172
// program/erase fails, 170 reserved blocks, 187 reported uncorrectable,
// 195 uncorrectable ECC, 183 SATA downshifts, plus the shared
// environmental columns 9 and 194. The raw slots carry program/erase
// cycles (173_raw) and reserved blocks used (170_raw).
var backblazeSSDColumns = []struct {
	column string
	attr   smart.Attr
}{
	{"smart_173_normalized", smart.RRER}, // WLC
	{"smart_5_normalized", smart.RSC},    // RNBC
	{"smart_171_normalized", smart.SER},  // PFC
	{"smart_187_normalized", smart.RUE},
	{"smart_170_normalized", smart.HFW},  // RBR
	{"smart_172_normalized", smart.HER},  // EFC
	{"smart_195_normalized", smart.CPSC}, // UECC
	{"smart_183_normalized", smart.SUT},  // SSDR
	{"smart_173_raw", smart.RawRSC},      // R-PEC
	{"smart_170_raw", smart.RawCPSC},     // R-RBU
	{"smart_9_normalized", smart.POH},
	{"smart_194_normalized", smart.TC},
}

// ssdMarkerColumns are the wear columns only flash firmware reports: a
// row carrying any of them is an SSD row even when the model string
// doesn't say so.
var ssdMarkerColumns = []string{
	"smart_173_normalized", "smart_173_raw",
	"smart_170_normalized", "smart_170_raw",
	"smart_171_normalized", "smart_172_normalized",
	"smart_183_normalized",
}

// classColumns returns the column mapping for one device class.
func classColumns(c smart.DeviceClass) []struct {
	column string
	attr   smart.Attr
} {
	if c == smart.SSD {
		return backblazeSSDColumns
	}
	return backblazeColumns
}

// detectRowClass classifies one raw CSV row: the model string naming an
// SSD wins, otherwise any populated wear column marks the row SSD, and
// everything else is the legacy HDD population.
func detectRowClass(row []string, col map[string]int) smart.DeviceClass {
	if idx, ok := col["model"]; ok && idx < len(row) &&
		strings.Contains(strings.ToLower(row[idx]), "ssd") {
		return smart.SSD
	}
	for _, name := range ssdMarkerColumns {
		if idx, ok := col[name]; ok && idx < len(row) && row[idx] != "" {
			return smart.SSD
		}
	}
	return smart.HDD
}

// Backblaze-style daily SMART dumps are the most common public disk
// telemetry format (date, serial_number, model, capacity_bytes, failure,
// then smart_<id>_normalized / smart_<id>_raw columns). ReadBackblazeCSV
// adapts such a dump into a Dataset so the pipeline can run on real data:
// each drive's rows become one profile (one record per day, Hour counted
// in days since the drive's first row), and a drive whose final row has
// failure=1 is labeled failed.
//
// The SMART attribute IDs mapped to Table I are:
//
//	1 -> RRER, 3 -> SUT, 5 -> RSC (+raw -> R-RSC), 7 -> SER, 9 -> POH,
//	187 -> RUE, 189 -> HFW, 194 -> TC, 195 -> HER,
//	197 -> CPSC (+raw -> R-CPSC)
//
// Rows missing a mapped column inherit the drive's previous value (or the
// healthy default 100 / raw 0 for the first row).
//
// ReadBackblazeCSV runs with the default Lenient quality policy: rows
// with unparseable dates, failure flags outside {0, 1}, garbled or
// out-of-range attribute values, and truncated lines are quarantined
// (not treated as healthy data, not fatal), duplicate dates keep the
// latest row, out-of-order dates are re-sorted, and drives left with
// fewer than two records are dropped. Use ReadBackblazeCSVQ to choose
// the policy and inspect the quarantine ledger.
func ReadBackblazeCSV(r io.Reader) (*Dataset, error) {
	ds, _, err := ReadBackblazeCSVQ(r, quality.Config{})
	return ds, err
}

// bbRow is one parsed Backblaze row before per-drive assembly: only the
// explicitly present attribute fields are set (mask), so inheritance can
// be applied in date order even when the file is out of order.
type bbRow struct {
	date    time.Time
	vals    smart.Values
	present [smart.NumAttrs]bool
	failed  bool
	class   smart.DeviceClass
}

// ReadBackblazeCSVQ is ReadBackblazeCSV under an explicit quality
// policy. It returns the dataset, the quarantine report accounting for
// every row and drive that was rejected, repaired or dropped, and an
// error under Strict (first defect), when cfg.MaxBadRows is exceeded,
// or when no usable drive rows remain.
func ReadBackblazeCSVQ(r io.Reader, cfg quality.Config) (*Dataset, *quality.Report, error) {
	cfg = cfg.WithDefaults()
	rep := &quality.Report{}
	strict := cfg.Policy == quality.Strict

	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, rep, fmt.Errorf("dataset: reading Backblaze header: %w", err)
	}
	col := map[string]int{}
	for i, h := range header {
		col[h] = i
	}
	for _, required := range []string{"date", "serial_number", "failure"} {
		if _, ok := col[required]; !ok {
			return nil, rep, fmt.Errorf("dataset: Backblaze CSV missing column %q", required)
		}
	}

	drives := map[string][]bbRow{}
	classBySerial := map[string]smart.DeviceClass{}
	var serials []string

	// quarantineRow accounts for one rejected row; under Strict the
	// issue itself aborts the read.
	quarantineRow := func(iss quality.Issue) error {
		if strict {
			return iss
		}
		rep.Note(iss, cfg)
		rep.AddRows(1, 1, 0)
		return rep.CheckBudget(cfg)
	}

	line := 1
rows:
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			var pe *csv.ParseError
			if errors.As(err, &pe) && !errors.Is(err, io.ErrUnexpectedEOF) {
				// The CSV layer resynchronizes at the next line, so a
				// malformed row costs one row, not the stream.
				line++
				if qerr := quarantineRow(quality.Issue{
					Kind: quality.MalformedRow, Line: pe.Line, Detail: err.Error(),
				}); qerr != nil {
					return nil, rep, qerr
				}
				continue
			}
			// Mid-stream EOF or an unrecoverable reader error: keep the
			// rows parsed so far.
			iss := quality.Issue{Kind: quality.TruncatedInput, Line: line, Detail: err.Error()}
			if strict {
				return nil, rep, iss
			}
			rep.Note(iss, cfg)
			break
		}
		line++

		// Required fields must be inside the row even when truncated.
		for _, required := range []string{"date", "serial_number", "failure"} {
			if col[required] >= len(row) {
				if err := quarantineRow(quality.Issue{
					Kind: quality.ShortRow, Line: line, Field: required,
					Detail: fmt.Sprintf("row has %d fields, want %d", len(row), len(header)),
				}); err != nil {
					return nil, rep, err
				}
				continue rows
			}
		}
		shortRow := len(row) != len(header)
		if shortRow && cfg.Policy != quality.Repair {
			// A truncated row may carry a silently cut numeric value
			// ("85.3" -> "85"), so Lenient rejects the whole row; Repair
			// keeps the intact fields and lets the rest inherit.
			if err := quarantineRow(quality.Issue{
				Kind: quality.ShortRow, Line: line,
				Detail: fmt.Sprintf("row has %d fields, want %d", len(row), len(header)),
			}); err != nil {
				return nil, rep, err
			}
			continue
		}

		serial := row[col["serial_number"]]
		if serial == "" {
			if err := quarantineRow(quality.Issue{
				Kind: quality.BadField, Line: line, Field: "serial_number", Detail: "empty serial",
			}); err != nil {
				return nil, rep, err
			}
			continue
		}
		date, err := time.Parse("2006-01-02", row[col["date"]])
		if err != nil {
			if err := quarantineRow(quality.Issue{
				Kind: quality.BadDate, Line: line, Drive: serial, Field: "date",
				Detail: fmt.Sprintf("%q", row[col["date"]]),
			}); err != nil {
				return nil, rep, err
			}
			continue
		}
		var rowFailed bool
		switch row[col["failure"]] {
		case "0":
		case "1":
			rowFailed = true
		default:
			if err := quarantineRow(quality.Issue{
				Kind: quality.BadFailureFlag, Line: line, Drive: serial, Field: "failure",
				Detail: fmt.Sprintf("%q is neither 0 nor 1", row[col["failure"]]),
			}); err != nil {
				return nil, rep, err
			}
			continue
		}

		class := detectRowClass(row, col)
		if known, seen := classBySerial[serial]; seen && known != class {
			// A serial flip-flopping between classes is defective
			// telemetry, not a population change: quarantine the row
			// rather than mix wear semantics into a rotational profile
			// (or vice versa).
			if err := quarantineRow(quality.Issue{
				Kind: quality.BadField, Line: line, Drive: serial, Field: "device_class",
				Detail: fmt.Sprintf("row is %s but drive is %s", class, known),
			}); err != nil {
				return nil, rep, err
			}
			continue
		}

		br := bbRow{date: date, failed: rowFailed, class: class}
		repairedFields := 0
		for _, m := range classColumns(class) {
			idx, ok := col[m.column]
			if !ok || idx >= len(row) || row[idx] == "" {
				continue
			}
			v, perr := strconv.ParseFloat(row[idx], 64)
			var iss quality.Issue
			switch {
			case perr != nil:
				iss = quality.Issue{Kind: quality.BadField, Line: line, Drive: serial,
					Field: m.column, Detail: fmt.Sprintf("%q", row[idx])}
			case math.IsNaN(v) || math.IsInf(v, 0):
				iss = quality.Issue{Kind: quality.NonFinite, Line: line, Drive: serial,
					Field: m.column, Detail: fmt.Sprintf("value %v", v)}
			case !smart.InBoundsFor(class, m.attr, v):
				iss = quality.Issue{Kind: quality.OutOfRange, Line: line, Drive: serial,
					Field: m.column, Detail: fmt.Sprintf("value %g", v)}
			default:
				br.vals[m.attr] = v
				br.present[m.attr] = true
				continue
			}
			if cfg.Policy == quality.Repair {
				// Treat the defective field as absent: the value
				// inherits from the previous record in date order.
				rep.Note(iss, cfg)
				repairedFields++
				continue
			}
			if err := quarantineRow(iss); err != nil {
				return nil, rep, err
			}
			continue rows
		}
		if shortRow {
			rep.Note(quality.Issue{
				Kind: quality.ShortRow, Line: line,
				Detail: fmt.Sprintf("row has %d fields, want %d", len(row), len(header)),
			}, cfg)
		}
		rep.AddRows(1, 0, repairedFields)
		if _, ok := drives[serial]; !ok {
			serials = append(serials, serial)
			classBySerial[serial] = class
		}
		drives[serial] = append(drives[serial], br)
	}

	// Per-drive assembly in deterministic serial order: order rows by
	// date (keep-latest on duplicates), then apply inheritance and the
	// days-since-first-seen Hour scale.
	sort.Strings(serials)
	rep.AddDrives(len(serials))
	type driveAcc struct {
		records []smart.Record
		failed  bool
	}
	accs := map[string]*driveAcc{}
	for _, serial := range serials {
		rows := drives[serial]
		outOfOrder := 0
		for i := 1; i < len(rows); i++ {
			if rows[i].date.Before(rows[i-1].date) {
				outOfOrder++
			}
		}
		if outOfOrder > 0 {
			iss := quality.Issue{Kind: quality.OutOfOrderTimestamp, Drive: serial,
				Detail: fmt.Sprintf("%d rows out of date order", outOfOrder)}
			if strict {
				return nil, rep, iss
			}
			rep.Note(iss, cfg)
		}
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].date.Before(rows[j].date) })

		acc := &driveAcc{}
		prev := quality.HealthyDefaults()
		for i, br := range rows {
			if i+1 < len(rows) && rows[i+1].date.Equal(br.date) {
				// Keep-latest: a later row for the same date supersedes
				// this one.
				iss := quality.Issue{Kind: quality.DuplicateTimestamp, Drive: serial,
					Detail: fmt.Sprintf("date %s repeated", br.date.Format("2006-01-02"))}
				if strict {
					return nil, rep, iss
				}
				rep.Note(iss, cfg)
				rep.AddRows(0, 1, 0)
				if err := rep.CheckBudget(cfg); err != nil {
					return nil, rep, err
				}
				continue
			}
			vals := prev
			for a := 0; a < int(smart.NumAttrs); a++ {
				if br.present[a] {
					vals[a] = br.vals[a]
				}
			}
			hour := int(br.date.Sub(rows[0].date).Hours()) / 24
			acc.records = append(acc.records, smart.Record{Hour: hour, Values: vals})
			acc.failed = acc.failed || br.failed
			prev = vals
		}
		if len(acc.records) < cfg.MinRecords {
			iss := quality.Issue{Kind: quality.ShortProfile, Drive: serial,
				Detail: fmt.Sprintf("%d records, need >= %d", len(acc.records), cfg.MinRecords)}
			if strict {
				return nil, rep, iss
			}
			rep.Note(iss, cfg)
			rep.DropDrive(serial, len(rows), len(acc.records),
				fmt.Sprintf("%d clean records, need >= %d", len(acc.records), cfg.MinRecords))
			continue
		}
		accs[serial] = acc
	}

	if len(accs) == 0 {
		return nil, rep, fmt.Errorf("dataset: Backblaze CSV contains no drive rows (%d rows read, %d quarantined)",
			rep.RowsRead, rep.RowsQuarantined)
	}

	// Deterministic drive IDs: failed drives first, then good, both in
	// serial order.
	var failed, good []*smart.Profile
	id := 0
	for _, pass := range []bool{true, false} {
		for _, serial := range serials {
			acc, ok := accs[serial]
			if !ok || acc.failed != pass {
				continue
			}
			p := &smart.Profile{DriveID: id, Class: classBySerial[serial], Failed: acc.failed, Records: acc.records}
			id++
			if acc.failed {
				failed = append(failed, p)
			} else {
				good = append(good, p)
			}
		}
	}
	return New(failed, good), rep, nil
}

// WriteBackblazeCSV exports the dataset in the Backblaze daily-dump
// schema (one row per record; Hour becomes a synthetic date offset from
// 2026-01-01 and the drive's serial number is derived from its ID). The
// export is lossy only in metadata: ReadBackblazeCSV(WriteBackblazeCSV(d))
// reproduces every attribute value and label.
func (d *Dataset) WriteBackblazeCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"date", "serial_number", "model", "capacity_bytes", "failure"}
	colIdx := map[string]int{}
	for _, table := range [][]struct {
		column string
		attr   smart.Attr
	}{backblazeColumns, backblazeSSDColumns} {
		for _, m := range table {
			if _, ok := colIdx[m.column]; ok {
				continue
			}
			colIdx[m.column] = len(header)
			header = append(header, m.column)
		}
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing Backblaze header: %w", err)
	}
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	row := make([]string, len(header))
	emit := func(p *smart.Profile) error {
		serial := fmt.Sprintf("SN%08d", p.DriveID)
		model := "DSIG-SYNTH"
		if p.Class == smart.SSD {
			model = "DSIG-SYNTH-SSD"
		}
		cols := classColumns(p.Class)
		for i, r := range p.Records {
			for j := range row {
				row[j] = ""
			}
			row[0] = epoch.AddDate(0, 0, r.Hour).Format("2006-01-02")
			row[1] = serial
			row[2] = model
			row[3] = "4000000000000"
			row[4] = "0"
			if p.Failed && i == p.Len()-1 {
				row[4] = "1"
			}
			for _, m := range cols {
				row[colIdx[m.column]] = strconv.FormatFloat(r.Values[m.attr], 'g', -1, 64)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		return nil
	}
	for _, p := range d.Failed {
		if err := emit(p); err != nil {
			return fmt.Errorf("dataset: exporting failed drive %d: %w", p.DriveID, err)
		}
	}
	for _, p := range d.Good {
		if err := emit(p); err != nil {
			return fmt.Errorf("dataset: exporting good drive %d: %w", p.DriveID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
