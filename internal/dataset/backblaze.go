package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"disksig/internal/smart"
)

// backblazeColumns maps Backblaze smart_<id> columns to Table I
// attributes; used by both the reader and the writer.
var backblazeColumns = []struct {
	column string
	attr   smart.Attr
}{
	{"smart_1_normalized", smart.RRER},
	{"smart_3_normalized", smart.SUT},
	{"smart_5_normalized", smart.RSC},
	{"smart_5_raw", smart.RawRSC},
	{"smart_7_normalized", smart.SER},
	{"smart_9_normalized", smart.POH},
	{"smart_187_normalized", smart.RUE},
	{"smart_189_normalized", smart.HFW},
	{"smart_194_normalized", smart.TC},
	{"smart_195_normalized", smart.HER},
	{"smart_197_normalized", smart.CPSC},
	{"smart_197_raw", smart.RawCPSC},
}

// Backblaze-style daily SMART dumps are the most common public disk
// telemetry format (date, serial_number, model, capacity_bytes, failure,
// then smart_<id>_normalized / smart_<id>_raw columns). ReadBackblazeCSV
// adapts such a dump into a Dataset so the pipeline can run on real data:
// each drive's rows become one profile (one record per day, Hour counted
// in days since the drive's first row), and a drive whose final row has
// failure=1 is labeled failed.
//
// The SMART attribute IDs mapped to Table I are:
//
//	1 -> RRER, 3 -> SUT, 5 -> RSC (+raw -> R-RSC), 7 -> SER, 9 -> POH,
//	187 -> RUE, 189 -> HFW, 194 -> TC, 195 -> HER,
//	197 -> CPSC (+raw -> R-CPSC)
//
// Rows missing a mapped column inherit the drive's previous value (or the
// healthy default 100 / raw 0 for the first row).
func ReadBackblazeCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading Backblaze header: %w", err)
	}
	col := map[string]int{}
	for i, h := range header {
		col[h] = i
	}
	for _, required := range []string{"date", "serial_number", "failure"} {
		if _, ok := col[required]; !ok {
			return nil, fmt.Errorf("dataset: Backblaze CSV missing column %q", required)
		}
	}

	mappings := backblazeColumns

	type driveAcc struct {
		firstSeen int
		rows      []smart.Record
		failed    bool
		last      smart.Values
		hasLast   bool
	}
	drives := map[string]*driveAcc{}
	var serials []string

	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading Backblaze CSV: %w", err)
		}
		line++
		serial := row[col["serial_number"]]
		acc, ok := drives[serial]
		if !ok {
			acc = &driveAcc{}
			drives[serial] = acc
			serials = append(serials, serial)
		}
		var vals smart.Values
		if acc.hasLast {
			vals = acc.last
		} else {
			// Healthy defaults: full health values, zero raw counters.
			for a := 0; a < int(smart.NumAttrs); a++ {
				if smart.InfoOf(smart.Attr(a)).ValueKind == smart.HealthValue {
					vals[a] = 100
				}
			}
		}
		for _, m := range mappings {
			idx, ok := col[m.column]
			if !ok || idx >= len(row) || row[idx] == "" {
				continue
			}
			v, err := strconv.ParseFloat(row[idx], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad value %q in %s", line, row[idx], m.column)
			}
			vals[m.attr] = v
		}
		acc.last = vals
		acc.hasLast = true
		acc.rows = append(acc.rows, smart.Record{Hour: len(acc.rows), Values: vals})
		if f := row[col["failure"]]; f == "1" {
			acc.failed = true
		}
	}
	if len(drives) == 0 {
		return nil, fmt.Errorf("dataset: Backblaze CSV contains no drive rows")
	}

	// Deterministic drive IDs: failed drives first, then good, both in
	// serial order.
	sort.Strings(serials)
	var failed, good []*smart.Profile
	id := 0
	for _, pass := range []bool{true, false} {
		for _, serial := range serials {
			acc := drives[serial]
			if acc.failed != pass {
				continue
			}
			p := &smart.Profile{DriveID: id, Failed: acc.failed, Records: acc.rows}
			id++
			if acc.failed {
				failed = append(failed, p)
			} else {
				good = append(good, p)
			}
		}
	}
	return New(failed, good), nil
}

// WriteBackblazeCSV exports the dataset in the Backblaze daily-dump
// schema (one row per record; Hour becomes a synthetic date offset from
// 2026-01-01 and the drive's serial number is derived from its ID). The
// export is lossy only in metadata: ReadBackblazeCSV(WriteBackblazeCSV(d))
// reproduces every attribute value and label.
func (d *Dataset) WriteBackblazeCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"date", "serial_number", "model", "capacity_bytes", "failure"}
	for _, m := range backblazeColumns {
		header = append(header, m.column)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing Backblaze header: %w", err)
	}
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	row := make([]string, len(header))
	emit := func(p *smart.Profile) error {
		serial := fmt.Sprintf("SN%08d", p.DriveID)
		for i, r := range p.Records {
			row[0] = epoch.AddDate(0, 0, r.Hour).Format("2006-01-02")
			row[1] = serial
			row[2] = "DSIG-SYNTH"
			row[3] = "4000000000000"
			row[4] = "0"
			if p.Failed && i == p.Len()-1 {
				row[4] = "1"
			}
			for j, m := range backblazeColumns {
				row[5+j] = strconv.FormatFloat(r.Values[m.attr], 'g', -1, 64)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		return nil
	}
	for _, p := range d.Failed {
		if err := emit(p); err != nil {
			return fmt.Errorf("dataset: exporting failed drive %d: %w", p.DriveID, err)
		}
	}
	for _, p := range d.Good {
		if err := emit(p); err != nil {
			return fmt.Errorf("dataset: exporting good drive %d: %w", p.DriveID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
