package dataset

import (
	"bytes"
	"math"
	"testing"

	"disksig/internal/quality"
	"disksig/internal/smart"
)

// nonFiniteDataset is testDataset with a NaN and an Inf planted in one
// failed drive.
func nonFiniteDataset() *Dataset {
	d := testDataset()
	d.Failed[0].Records[1].Values[smart.RRER] = math.NaN()
	d.Failed[0].Records[2].Values[smart.POH] = math.Inf(1)
	return d
}

func TestGobRoundTripPreservesNonFinite(t *testing.T) {
	d := nonFiniteDataset()
	var buf bytes.Buffer
	if err := d.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	// Raw gob decode is bit-for-bit: the defects survive untouched.
	back, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.Failed[0].Records[1].Values[smart.RRER]) {
		t.Error("NaN lost in gob round-trip")
	}
	if !math.IsInf(back.Failed[0].Records[2].Values[smart.POH], 1) {
		t.Error("+Inf lost in gob round-trip")
	}
}

func TestReadGobQQuarantinesNonFinite(t *testing.T) {
	d := nonFiniteDataset()
	var buf bytes.Buffer
	if err := d.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	back, rep, err := ReadGobQ(&buf, quality.Config{Policy: quality.Lenient})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(quality.NonFinite) != 2 || rep.RowsQuarantined != 2 {
		t.Errorf("report = %s", rep)
	}
	if got := len(back.Failed[0].Records); got != 3 {
		t.Errorf("failed[0] kept %d records, want 3", got)
	}
	if rep.RowsRead != rep.RowsKept()+rep.RowsQuarantined+rep.RowsDropped {
		t.Error("accounting broken")
	}
}

func TestReadGobQRepairsNonFinite(t *testing.T) {
	d := nonFiniteDataset()
	var buf bytes.Buffer
	if err := d.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	back, rep, err := ReadGobQ(&buf, quality.Config{Policy: quality.Repair})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FieldsRepaired != 2 || rep.RowsQuarantined != 0 {
		t.Errorf("report = %s", rep)
	}
	if got := len(back.Failed[0].Records); got != 5 {
		t.Errorf("repair kept %d records, want 5", got)
	}
	// Carried forward from the previous record.
	if got := back.Failed[0].Records[1].Values[smart.RRER]; got != back.Failed[0].Records[0].Values[smart.RRER] {
		t.Errorf("NaN repaired to %v", got)
	}
}

func TestCSVRoundTripNonFinite(t *testing.T) {
	d := nonFiniteDataset()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csvBytes := buf.Bytes()

	// The native schema is machine-written, so the legacy strict reader
	// refuses NaN.
	if _, err := ReadCSV(bytes.NewReader(csvBytes)); err == nil {
		t.Error("strict ReadCSV accepted a NaN field")
	}

	back, rep, err := ReadCSVQ(bytes.NewReader(csvBytes), quality.Config{Policy: quality.Lenient})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(quality.NonFinite) == 0 {
		t.Errorf("NaN/Inf not counted: %s", rep)
	}
	if rep.RowsRead != rep.RowsKept()+rep.RowsQuarantined+rep.RowsDropped {
		t.Error("accounting broken")
	}
	for _, p := range append(append([]*smart.Profile{}, back.Failed...), back.Good...) {
		for _, r := range p.Records {
			for a := 0; a < int(smart.NumAttrs); a++ {
				if math.IsNaN(r.Values[a]) || math.IsInf(r.Values[a], 0) {
					t.Fatalf("drive %d kept a non-finite value", p.DriveID)
				}
			}
		}
	}
}

func TestLoadFileQRoutesByExtension(t *testing.T) {
	d := nonFiniteDataset()
	dir := t.TempDir()
	for _, name := range []string{"fleet.gob", "fleet.csv"} {
		path := dir + "/" + name
		if err := d.SaveFile(path); err != nil {
			t.Fatalf("saving %s: %v", name, err)
		}
		back, rep, err := LoadFileQ(path, quality.Config{Policy: quality.Lenient})
		if err != nil {
			t.Fatalf("loading %s: %v", name, err)
		}
		if rep.RowsQuarantined == 0 {
			t.Errorf("%s: defects not quarantined: %s", name, rep)
		}
		if len(back.Failed) != 2 || len(back.Good) != 2 {
			t.Errorf("%s: population = %d/%d", name, len(back.Failed), len(back.Good))
		}
	}
	if _, _, err := LoadFileQ(dir+"/fleet.xyz", quality.Config{}); err == nil {
		t.Error("unknown extension should error")
	}
}
