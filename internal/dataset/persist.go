package dataset

import (
	"bufio"
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"strconv"

	"disksig/internal/smart"
)

// csvHeader is the column layout of the CSV persistence format: one row
// per health record, identified by drive and hour, with the 12 attribute
// values in Table I order.
func csvHeader() []string {
	h := []string{"drive_id", "failed", "true_group", "hour"}
	for _, a := range smart.All() {
		h = append(h, a.String())
	}
	return h
}

// WriteCSV streams the dataset to w as CSV (one row per record, failed
// drives first).
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader()); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	row := make([]string, 4+int(smart.NumAttrs))
	emit := func(p *smart.Profile) error {
		row[0] = strconv.Itoa(p.DriveID)
		row[1] = strconv.FormatBool(p.Failed)
		row[2] = strconv.Itoa(p.TrueGroup)
		for _, r := range p.Records {
			row[3] = strconv.Itoa(r.Hour)
			for a := 0; a < int(smart.NumAttrs); a++ {
				row[4+a] = strconv.FormatFloat(r.Values[a], 'g', -1, 64)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		return nil
	}
	for _, p := range d.Failed {
		if err := emit(p); err != nil {
			return fmt.Errorf("dataset: writing failed drive %d: %w", p.DriveID, err)
		}
	}
	for _, p := range d.Good {
		if err := emit(p); err != nil {
			return fmt.Errorf("dataset: writing good drive %d: %w", p.DriveID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset previously written by WriteCSV. Records of the
// same drive must be contiguous and in chronological order (WriteCSV
// guarantees this).
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	want := csvHeader()
	if len(header) != len(want) {
		return nil, fmt.Errorf("dataset: CSV has %d columns, want %d", len(header), len(want))
	}
	for i, h := range header {
		if h != want[i] {
			return nil, fmt.Errorf("dataset: CSV column %d is %q, want %q", i, h, want[i])
		}
	}

	var failed, good []*smart.Profile
	var cur *smart.Profile
	flush := func() {
		if cur == nil {
			return
		}
		if cur.Failed {
			failed = append(failed, cur)
		} else {
			good = append(good, cur)
		}
		cur = nil
	}
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV: %w", err)
		}
		line++
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad drive_id %q", line, row[0])
		}
		isFailed, err := strconv.ParseBool(row[1])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad failed flag %q", line, row[1])
		}
		group, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad true_group %q", line, row[2])
		}
		hour, err := strconv.Atoi(row[3])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad hour %q", line, row[3])
		}
		var vals smart.Values
		for a := 0; a < int(smart.NumAttrs); a++ {
			v, err := strconv.ParseFloat(row[4+a], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad value %q for %s", line, row[4+a], smart.Attr(a))
			}
			vals[a] = v
		}
		if cur == nil || cur.DriveID != id {
			flush()
			cur = &smart.Profile{DriveID: id, Failed: isFailed, TrueGroup: group}
		}
		cur.Records = append(cur.Records, smart.Record{Hour: hour, Values: vals})
	}
	flush()
	return New(failed, good), nil
}

// gobDataset is the gob wire form of a Dataset (profiles only; the
// normalizer is refitted on load).
type gobDataset struct {
	Failed []*smart.Profile
	Good   []*smart.Profile
}

// WriteGob streams the dataset to w in gob encoding (compact and fast;
// preferred for large fleets).
func (d *Dataset) WriteGob(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(gobDataset{Failed: d.Failed, Good: d.Good}); err != nil {
		return fmt.Errorf("dataset: encoding gob: %w", err)
	}
	return nil
}

// ReadGob parses a dataset previously written by WriteGob.
func ReadGob(r io.Reader) (*Dataset, error) {
	var g gobDataset
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("dataset: decoding gob: %w", err)
	}
	return New(g.Failed, g.Good), nil
}

// SaveFile writes the dataset to path, choosing the format by extension:
// ".csv" (native schema), ".bbcsv" (Backblaze daily-dump schema) or
// ".gob".
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := d.writeAuto(bw, path); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func (d *Dataset) writeAuto(w io.Writer, path string) error {
	switch ext(path) {
	case ".bbcsv":
		return d.WriteBackblazeCSV(w)
	case ".csv":
		return d.WriteCSV(w)
	case ".gob":
		return d.WriteGob(w)
	}
	return fmt.Errorf("dataset: unknown extension in %q (want .csv, .bbcsv or .gob)", path)
}

// LoadFile reads a dataset from path, choosing the format by extension.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	switch ext(path) {
	case ".bbcsv":
		return ReadBackblazeCSV(br)
	case ".csv":
		return ReadCSV(br)
	case ".gob":
		return ReadGob(br)
	}
	return nil, fmt.Errorf("dataset: unknown extension in %q (want .csv, .bbcsv or .gob)", path)
}

func ext(path string) string {
	for i := len(path) - 1; i >= 0 && path[i] != '/'; i-- {
		if path[i] == '.' {
			return path[i:]
		}
	}
	return ""
}
