package dataset

import (
	"bufio"
	"encoding/csv"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"disksig/internal/quality"
	"disksig/internal/smart"
)

// csvHeader is the column layout of the CSV persistence format: one row
// per health record, identified by drive and hour, with the 12 attribute
// values in Table I order.
func csvHeader() []string {
	h := []string{"drive_id", "failed", "true_group", "hour"}
	for _, a := range smart.All() {
		h = append(h, a.String())
	}
	return h
}

// WriteCSV streams the dataset to w as CSV (one row per record, failed
// drives first).
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader()); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	row := make([]string, 4+int(smart.NumAttrs))
	emit := func(p *smart.Profile) error {
		row[0] = strconv.Itoa(p.DriveID)
		row[1] = strconv.FormatBool(p.Failed)
		row[2] = strconv.Itoa(p.TrueGroup)
		for _, r := range p.Records {
			row[3] = strconv.Itoa(r.Hour)
			for a := 0; a < int(smart.NumAttrs); a++ {
				row[4+a] = strconv.FormatFloat(r.Values[a], 'g', -1, 64)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		return nil
	}
	for _, p := range d.Failed {
		if err := emit(p); err != nil {
			return fmt.Errorf("dataset: writing failed drive %d: %w", p.DriveID, err)
		}
	}
	for _, p := range d.Good {
		if err := emit(p); err != nil {
			return fmt.Errorf("dataset: writing good drive %d: %w", p.DriveID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset previously written by WriteCSV. Records of the
// same drive must be contiguous and in chronological order (WriteCSV
// guarantees this). The native schema is machine-written, so ReadCSV
// runs under the Strict policy: the first defect (unparseable field,
// NaN/Inf or out-of-range value, non-monotone hours) is an error. Use
// ReadCSVQ with a Lenient or Repair policy to salvage a damaged file.
func ReadCSV(r io.Reader) (*Dataset, error) {
	ds, _, err := ReadCSVQ(r, quality.Config{Policy: quality.Strict})
	return ds, err
}

// ReadCSVQ is ReadCSV under an explicit quality policy: defective rows
// are quarantined (Lenient), repaired where mechanically possible
// (Repair — an unparseable attribute value inherits the previous
// record's value), or fatal (Strict). The report accounts for every
// rejected row and dropped drive.
func ReadCSVQ(r io.Reader, cfg quality.Config) (*Dataset, *quality.Report, error) {
	cfg = cfg.WithDefaults()
	rep := &quality.Report{}
	strict := cfg.Policy == quality.Strict

	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, rep, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	want := csvHeader()
	if len(header) != len(want) {
		return nil, rep, fmt.Errorf("dataset: CSV has %d columns, want %d", len(header), len(want))
	}
	for i, h := range header {
		if h != want[i] {
			return nil, rep, fmt.Errorf("dataset: CSV column %d is %q, want %q", i, h, want[i])
		}
	}

	quarantineRow := func(iss quality.Issue) error {
		if strict {
			return iss
		}
		rep.Note(iss, cfg)
		rep.AddRows(1, 1, 0)
		return rep.CheckBudget(cfg)
	}

	var failed, good []*smart.Profile
	var cur *smart.Profile
	flush := func() {
		if cur == nil {
			return
		}
		if cur.Failed {
			failed = append(failed, cur)
		} else {
			good = append(good, cur)
		}
		cur = nil
	}
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			var pe *csv.ParseError
			if errors.As(err, &pe) && !errors.Is(err, io.ErrUnexpectedEOF) {
				line++
				if qerr := quarantineRow(quality.Issue{
					Kind: quality.MalformedRow, Line: pe.Line, Detail: err.Error(),
				}); qerr != nil {
					return nil, rep, qerr
				}
				continue
			}
			iss := quality.Issue{Kind: quality.TruncatedInput, Line: line, Detail: err.Error()}
			if strict {
				return nil, rep, fmt.Errorf("dataset: reading CSV: %w", err)
			}
			rep.Note(iss, cfg)
			break
		}
		line++
		if len(row) != len(want) {
			if err := quarantineRow(quality.Issue{
				Kind: quality.ShortRow, Line: line,
				Detail: fmt.Sprintf("row has %d fields, want %d", len(row), len(want)),
			}); err != nil {
				return nil, rep, err
			}
			continue
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			if err := quarantineRow(quality.Issue{
				Kind: quality.BadField, Line: line, Field: "drive_id",
				Detail: fmt.Sprintf("%q", row[0]),
			}); err != nil {
				return nil, rep, err
			}
			continue
		}
		isFailed, err := strconv.ParseBool(row[1])
		if err != nil {
			if err := quarantineRow(quality.Issue{
				Kind: quality.BadFailureFlag, Line: line, Field: "failed",
				Detail: fmt.Sprintf("%q", row[1]),
			}); err != nil {
				return nil, rep, err
			}
			continue
		}
		group, err := strconv.Atoi(row[2])
		if err != nil {
			if err := quarantineRow(quality.Issue{
				Kind: quality.BadField, Line: line, Field: "true_group",
				Detail: fmt.Sprintf("%q", row[2]),
			}); err != nil {
				return nil, rep, err
			}
			continue
		}
		hour, err := strconv.Atoi(row[3])
		if err != nil {
			if err := quarantineRow(quality.Issue{
				Kind: quality.BadField, Line: line, Field: "hour",
				Detail: fmt.Sprintf("%q", row[3]),
			}); err != nil {
				return nil, rep, err
			}
			continue
		}
		var vals smart.Values
		badValue := false
		for a := 0; a < int(smart.NumAttrs); a++ {
			v, err := strconv.ParseFloat(row[4+a], 64)
			if err != nil {
				iss := quality.Issue{Kind: quality.BadField, Line: line,
					Field: smart.Attr(a).String(), Detail: fmt.Sprintf("%q", row[4+a])}
				if cfg.Policy == quality.Repair {
					// NaN sentinel: the profile-level sanitizer carries
					// the previous record's value forward.
					rep.Note(iss, cfg)
					v = math.NaN()
				} else {
					if err := quarantineRow(iss); err != nil {
						return nil, rep, err
					}
					badValue = true
					break
				}
			}
			vals[a] = v
		}
		if badValue {
			continue
		}
		rep.AddRows(1, 0, 0)
		if cur == nil || cur.DriveID != id {
			flush()
			cur = &smart.Profile{DriveID: id, Failed: isFailed, TrueGroup: group}
		}
		cur.Records = append(cur.Records, smart.Record{Hour: hour, Values: vals})
	}
	flush()

	// Profile-level pass: value sanity (NaN/Inf, bounds), hour
	// monotonicity and duplicates, minimum length.
	sanRep := &quality.Report{}
	failed, err = quality.SanitizeProfiles(failed, cfg, sanRep)
	if err != nil {
		return nil, rep, err
	}
	good, err = quality.SanitizeProfiles(good, cfg, sanRep)
	if err != nil {
		return nil, rep, err
	}
	// The sanitizer re-reads rows this reader already counted; fold in
	// only its verdicts (quarantines, repairs, drops), not RowsRead.
	sanRep.RowsRead = 0
	sanRep.DrivesRead = 0
	rep.Merge(sanRep)
	if err := rep.CheckBudget(cfg); err != nil {
		return nil, rep, err
	}
	if len(failed)+len(good) == 0 && rep.RowsRead > 0 {
		return nil, rep, fmt.Errorf("dataset: CSV contains no usable rows (%d read, %d quarantined)",
			rep.RowsRead, rep.RowsQuarantined)
	}
	return New(failed, good), rep, nil
}

// gobDataset is the gob wire form of a Dataset (profiles only; the
// normalizer is refitted on load).
type gobDataset struct {
	Failed []*smart.Profile
	Good   []*smart.Profile
}

// WriteGob streams the dataset to w in gob encoding (compact and fast;
// preferred for large fleets).
func (d *Dataset) WriteGob(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(gobDataset{Failed: d.Failed, Good: d.Good}); err != nil {
		return fmt.Errorf("dataset: encoding gob: %w", err)
	}
	return nil
}

// ReadGob parses a dataset previously written by WriteGob. The decode is
// raw — profiles round-trip bit-for-bit, including NaN/Inf values; use
// ReadGobQ to validate and sanitize the decoded fleet.
func ReadGob(r io.Reader) (*Dataset, error) {
	var g gobDataset
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("dataset: decoding gob: %w", err)
	}
	return New(g.Failed, g.Good), nil
}

// ReadGobQ is ReadGob followed by a profile-level quality pass: value
// sanity (NaN/Inf, vendor bounds), hour monotonicity and duplicates,
// and the minimum-records threshold, handled per cfg.Policy and
// accounted in the returned report.
func ReadGobQ(r io.Reader, cfg quality.Config) (*Dataset, *quality.Report, error) {
	cfg = cfg.WithDefaults()
	rep := &quality.Report{}
	var g gobDataset
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, rep, fmt.Errorf("dataset: decoding gob: %w", err)
	}
	failed, err := quality.SanitizeProfiles(g.Failed, cfg, rep)
	if err != nil {
		return nil, rep, err
	}
	good, err := quality.SanitizeProfiles(g.Good, cfg, rep)
	if err != nil {
		return nil, rep, err
	}
	return New(failed, good), rep, nil
}

// SaveFile writes the dataset to path, choosing the format by extension:
// ".csv" (native schema), ".bbcsv" (Backblaze daily-dump schema) or
// ".gob".
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := d.writeAuto(bw, path); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func (d *Dataset) writeAuto(w io.Writer, path string) error {
	switch ext(path) {
	case ".bbcsv":
		return d.WriteBackblazeCSV(w)
	case ".csv":
		return d.WriteCSV(w)
	case ".gob":
		return d.WriteGob(w)
	}
	return fmt.Errorf("dataset: unknown extension in %q (want .csv, .bbcsv or .gob)", path)
}

// LoadFile reads a dataset from path, choosing the format by extension.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	switch ext(path) {
	case ".bbcsv":
		return ReadBackblazeCSV(br)
	case ".csv":
		return ReadCSV(br)
	case ".gob":
		return ReadGob(br)
	}
	return nil, fmt.Errorf("dataset: unknown extension in %q (want .csv, .bbcsv or .gob)", path)
}

// LoadFileQ is LoadFile under an explicit quality policy: every format
// goes through its quality-aware reader and returns the quarantine
// report alongside the dataset.
func LoadFileQ(path string, cfg quality.Config) (*Dataset, *quality.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	switch ext(path) {
	case ".bbcsv":
		return ReadBackblazeCSVQ(br, cfg)
	case ".csv":
		return ReadCSVQ(br, cfg)
	case ".gob":
		return ReadGobQ(br, cfg)
	}
	return nil, nil, fmt.Errorf("dataset: unknown extension in %q (want .csv, .bbcsv or .gob)", path)
}

func ext(path string) string {
	for i := len(path) - 1; i >= 0 && path[i] != '/'; i-- {
		if path[i] == '.' {
			return path[i:]
		}
	}
	return ""
}
