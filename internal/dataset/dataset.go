// Package dataset holds a disk-fleet SMART dataset — the health profiles
// of failed and good drives — together with the fleet-wide Eq. (1)
// normalizer, and provides CSV and gob persistence.
package dataset

import (
	"fmt"
	"math/rand"
	"sync"

	"disksig/internal/parallel"
	"disksig/internal/smart"
	"disksig/internal/stats"
)

// normFitShardProfiles is the shard size (in profiles) of the parallel
// normalizer fit. Min/max merging is exact, so the shard size only
// affects scheduling granularity, never the fitted extrema.
const normFitShardProfiles = 64

// goodSampleShards is the fixed shard count of the sharded good-record
// reservoir. It depends on nothing but this constant, so the drawn
// sample is identical at every worker count.
const goodSampleShards = 16

// Dataset is a labeled fleet of drive health profiles.
//
// Profiles are stored in vendor health-value / raw-counter space (as
// produced by smart.MapToRecord); Norm is fitted over every record so the
// analysis pipeline can work in Eq. (1)-normalized space.
//
// All methods are safe for concurrent use once construction finishes;
// the derived views (normalized profiles, failure records, the ID index)
// are computed once, in parallel, and cached.
type Dataset struct {
	// Failed holds one profile per replaced drive; the last record of
	// each is its failure record.
	Failed []*smart.Profile
	// Good holds the profiles of drives that experienced no failure.
	Good []*smart.Profile
	// Norm is the fleet-wide min-max normalizer (Eq. 1).
	Norm *smart.Normalizer

	// workers bounds the parallelism of derived-view computation;
	// <= 0 means GOMAXPROCS. It is a throughput hint only: every
	// result is identical at any worker count.
	workers int

	normFailedOnce sync.Once
	normFailed     []*smart.Profile

	failRecordsOnce sync.Once
	failRecords     []smart.Values

	idIndexOnce sync.Once
	idIndex     map[int]int
}

// New builds a dataset from failed and good profiles and fits the
// normalizer over every record of both populations. The fit runs on
// per-shard normalizers merged in shard order, which reproduces a
// sequential fit exactly (min/max merging is order-independent).
func New(failed, good []*smart.Profile) *Dataset {
	d := &Dataset{Failed: failed, Good: good, Norm: smart.NewNormalizer()}
	total := len(failed) + len(good)
	profile := func(i int) *smart.Profile {
		if i < len(failed) {
			return failed[i]
		}
		return good[i-len(failed)]
	}
	shards := parallel.Shards(total, normFitShardProfiles)
	norms := parallel.MapShards(0, shards, func(s parallel.Shard) *smart.Normalizer {
		n := smart.NewNormalizer()
		for i := s.Lo; i < s.Hi; i++ {
			n.ObserveProfile(profile(i))
		}
		return n
	})
	for _, n := range norms {
		d.Norm.Merge(n)
	}
	return d
}

// SetWorkers bounds the parallelism used to compute derived views
// (normalized profiles, samples); <= 0 means GOMAXPROCS. Worker count
// never changes any result — call it to pin resource usage, not output.
// Not safe to call concurrently with other methods.
func (d *Dataset) SetWorkers(n int) { d.workers = n }

// Counts summarizes the dataset populations.
type Counts struct {
	FailedDrives  int
	GoodDrives    int
	FailedRecords int
	GoodRecords   int
}

// Counts returns record and drive counts.
func (d *Dataset) Counts() Counts {
	var c Counts
	c.FailedDrives = len(d.Failed)
	c.GoodDrives = len(d.Good)
	for _, p := range d.Failed {
		c.FailedRecords += p.Len()
	}
	for _, p := range d.Good {
		c.GoodRecords += p.Len()
	}
	return c
}

// FailureRate returns the fraction of drives that failed.
func (d *Dataset) FailureRate() float64 {
	total := len(d.Failed) + len(d.Good)
	if total == 0 {
		return 0
	}
	return float64(len(d.Failed)) / float64(total)
}

// NormalizedFailed returns the failed profiles normalized per Eq. (1).
// The result is computed once (in parallel, one profile per slot) and
// cached; callers must not mutate it.
func (d *Dataset) NormalizedFailed() []*smart.Profile {
	d.normFailedOnce.Do(func() {
		d.normFailed = parallel.Map(d.workers, len(d.Failed), func(i int) *smart.Profile {
			return d.Norm.NormalizeProfile(d.Failed[i])
		})
	})
	return d.normFailed
}

// NormalizedFailureRecords returns the Eq. (1)-normalized failure record
// (last health state) of every failed drive, in Failed order. The result
// is computed once and cached; callers must not mutate it.
func (d *Dataset) NormalizedFailureRecords() []smart.Values {
	d.failRecordsOnce.Do(func() {
		d.failRecords = parallel.Map(d.workers, len(d.Failed), func(i int) smart.Values {
			return d.Norm.Normalize(d.Failed[i].FailureRecord().Values)
		})
	})
	return d.failRecords
}

// GoodAttrValues returns the normalized values of attribute a across every
// good-drive record. At paper scale this is a few million float64s; use
// GoodAttrStats when only moments are needed.
func (d *Dataset) GoodAttrValues(a smart.Attr) []float64 {
	var out []float64
	for _, p := range d.Good {
		for _, r := range p.Records {
			out = append(out, d.Norm.NormalizeValue(a, r.Values[a]))
		}
	}
	return out
}

// GoodAttrStats streams the normalized values of attribute a across all
// good records into a running mean/variance accumulator.
func (d *Dataset) GoodAttrStats(a smart.Attr) stats.Running {
	var r stats.Running
	for _, p := range d.Good {
		for _, rec := range p.Records {
			r.Add(d.Norm.NormalizeValue(a, rec.Values[a]))
		}
	}
	return r
}

// NormalizedGoodSample reservoir-samples up to n good-drive records and
// returns them Eq. (1)-normalized.
//
// The good population is split into a fixed number of shards (boundaries
// depend only on the population, never on the worker count); each shard
// runs its own reservoir with an RNG seeded from (seed, shard index),
// and the shard reservoirs are merged in shard order with a seeded
// weighted merge. The sample is therefore deterministic in seed at every
// parallelism level. A population that fits within the per-shard
// capacities comes back whole, in stream order, exactly as a single
// sequential reservoir would return it.
func (d *Dataset) NormalizedGoodSample(n int, seed int64) []smart.Values {
	if n <= 0 {
		return nil
	}
	shardSize := (len(d.Good) + goodSampleShards - 1) / goodSampleShards
	shards := parallel.Shards(len(d.Good), shardSize)
	// Per-shard capacity: enough headroom that balanced shards are never
	// the binding constraint on the merged sample, without holding the
	// whole population in memory the way capacity n per shard would.
	capPerShard := n
	if len(shards) > 1 {
		capPerShard = (4*n + len(shards) - 1) / len(shards)
		if capPerShard < 1 {
			capPerShard = 1
		}
	}
	type shardSample struct {
		vals []smart.Values
		seen int
	}
	samples := parallel.MapShards(d.workers, shards, func(s parallel.Shard) shardSample {
		rng := rand.New(rand.NewSource(parallel.DeriveSeed(seed, int64(s.Index))))
		reservoir := make([]smart.Values, 0, capPerShard)
		seen := 0
		for _, p := range d.Good[s.Lo:s.Hi] {
			for _, r := range p.Records {
				seen++
				if len(reservoir) < capPerShard {
					reservoir = append(reservoir, r.Values)
				} else if j := rng.Intn(seen); j < capPerShard {
					reservoir[j] = r.Values
				}
			}
		}
		return shardSample{vals: reservoir, seen: seen}
	})
	// Merge in shard order with an RNG stream reserved for the merge, so
	// the result depends only on (population, n, seed).
	mergeRNG := rand.New(rand.NewSource(parallel.DeriveSeed(seed, int64(len(shards)))))
	var merged []smart.Values
	var seen int
	for _, s := range samples {
		merged = mergeReservoirs(merged, seen, s.vals, s.seen, n, mergeRNG)
		seen += s.seen
	}
	parallel.ForEach(d.workers, len(merged), func(i int) {
		merged[i] = d.Norm.Normalize(merged[i])
	})
	return merged
}

// mergeReservoirs combines reservoirs drawn from two disjoint streams
// into one of capacity n. Every retained value stands for seen/len(vals)
// records of its stream; slots are filled by weighted draws so each
// stream contributes in proportion to its size.
func mergeReservoirs(a []smart.Values, seenA int, b []smart.Values, seenB int, n int, rng *rand.Rand) []smart.Values {
	if len(a) == 0 {
		if len(b) <= n {
			return b
		}
		return b[:n]
	}
	if len(b) == 0 {
		return a
	}
	if len(a)+len(b) <= n {
		return append(a, b...)
	}
	wa := float64(seenA) / float64(len(a))
	wb := float64(seenB) / float64(len(b))
	out := make([]smart.Values, 0, n)
	ia, ib := 0, 0
	for len(out) < n && (ia < len(a) || ib < len(b)) {
		ra := wa * float64(len(a)-ia)
		rb := wb * float64(len(b)-ib)
		if ib >= len(b) || (ia < len(a) && rng.Float64()*(ra+rb) < ra) {
			out = append(out, a[ia])
			ia++
		} else {
			out = append(out, b[ib])
			ib++
		}
	}
	return out
}

// FailedProfileHours returns the profile length in hours of every failed
// drive (the quantity histogrammed in Fig. 1).
func (d *Dataset) FailedProfileHours() []float64 {
	out := make([]float64, len(d.Failed))
	for i, p := range d.Failed {
		out[i] = float64(p.Len())
	}
	return out
}

// FailedByID returns the failed profile with the given drive ID, or an
// error if absent. The ID index is built lazily on first use and cached.
func (d *Dataset) FailedByID(id int) (*smart.Profile, error) {
	d.idIndexOnce.Do(func() {
		d.idIndex = make(map[int]int, len(d.Failed))
		for i, p := range d.Failed {
			// Keep the first occurrence, matching the former linear scan.
			if _, ok := d.idIndex[p.DriveID]; !ok {
				d.idIndex[p.DriveID] = i
			}
		}
	})
	if i, ok := d.idIndex[id]; ok {
		return d.Failed[i], nil
	}
	return nil, fmt.Errorf("dataset: no failed drive with ID %d", id)
}
