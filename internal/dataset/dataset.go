// Package dataset holds a disk-fleet SMART dataset — the health profiles
// of failed and good drives — together with the fleet-wide Eq. (1)
// normalizer, and provides CSV and gob persistence.
package dataset

import (
	"fmt"
	"math/rand"
	"sync"

	"disksig/internal/smart"
	"disksig/internal/stats"
)

// Dataset is a labeled fleet of drive health profiles.
//
// Profiles are stored in vendor health-value / raw-counter space (as
// produced by smart.MapToRecord); Norm is fitted over every record so the
// analysis pipeline can work in Eq. (1)-normalized space.
type Dataset struct {
	// Failed holds one profile per replaced drive; the last record of
	// each is its failure record.
	Failed []*smart.Profile
	// Good holds the profiles of drives that experienced no failure.
	Good []*smart.Profile
	// Norm is the fleet-wide min-max normalizer (Eq. 1).
	Norm *smart.Normalizer

	normFailedOnce sync.Once
	normFailed     []*smart.Profile
}

// New builds a dataset from failed and good profiles and fits the
// normalizer over every record of both populations.
func New(failed, good []*smart.Profile) *Dataset {
	d := &Dataset{Failed: failed, Good: good, Norm: smart.NewNormalizer()}
	for _, p := range failed {
		d.Norm.ObserveProfile(p)
	}
	for _, p := range good {
		d.Norm.ObserveProfile(p)
	}
	return d
}

// Counts summarizes the dataset populations.
type Counts struct {
	FailedDrives  int
	GoodDrives    int
	FailedRecords int
	GoodRecords   int
}

// Counts returns record and drive counts.
func (d *Dataset) Counts() Counts {
	var c Counts
	c.FailedDrives = len(d.Failed)
	c.GoodDrives = len(d.Good)
	for _, p := range d.Failed {
		c.FailedRecords += p.Len()
	}
	for _, p := range d.Good {
		c.GoodRecords += p.Len()
	}
	return c
}

// FailureRate returns the fraction of drives that failed.
func (d *Dataset) FailureRate() float64 {
	total := len(d.Failed) + len(d.Good)
	if total == 0 {
		return 0
	}
	return float64(len(d.Failed)) / float64(total)
}

// NormalizedFailed returns the failed profiles normalized per Eq. (1).
// The result is computed once and cached; callers must not mutate it.
func (d *Dataset) NormalizedFailed() []*smart.Profile {
	d.normFailedOnce.Do(func() {
		d.normFailed = make([]*smart.Profile, len(d.Failed))
		for i, p := range d.Failed {
			d.normFailed[i] = d.Norm.NormalizeProfile(p)
		}
	})
	return d.normFailed
}

// NormalizedFailureRecords returns the Eq. (1)-normalized failure record
// (last health state) of every failed drive, in Failed order.
func (d *Dataset) NormalizedFailureRecords() []smart.Values {
	out := make([]smart.Values, len(d.Failed))
	for i, p := range d.Failed {
		out[i] = d.Norm.Normalize(p.FailureRecord().Values)
	}
	return out
}

// GoodAttrValues returns the normalized values of attribute a across every
// good-drive record. At paper scale this is a few million float64s; use
// GoodAttrStats when only moments are needed.
func (d *Dataset) GoodAttrValues(a smart.Attr) []float64 {
	var out []float64
	for _, p := range d.Good {
		for _, r := range p.Records {
			out = append(out, d.Norm.NormalizeValue(a, r.Values[a]))
		}
	}
	return out
}

// GoodAttrStats streams the normalized values of attribute a across all
// good records into a running mean/variance accumulator.
func (d *Dataset) GoodAttrStats(a smart.Attr) stats.Running {
	var r stats.Running
	for _, p := range d.Good {
		for _, rec := range p.Records {
			r.Add(d.Norm.NormalizeValue(a, rec.Values[a]))
		}
	}
	return r
}

// NormalizedGoodSample reservoir-samples up to n good-drive records and
// returns them Eq. (1)-normalized. The sample is deterministic in seed and
// streams over the good population, so it stays cheap at paper scale.
func (d *Dataset) NormalizedGoodSample(n int, seed int64) []smart.Values {
	if n <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	reservoir := make([]smart.Values, 0, n)
	seen := 0
	for _, p := range d.Good {
		for _, r := range p.Records {
			seen++
			if len(reservoir) < n {
				reservoir = append(reservoir, r.Values)
			} else if j := rng.Intn(seen); j < n {
				reservoir[j] = r.Values
			}
		}
	}
	for i := range reservoir {
		reservoir[i] = d.Norm.Normalize(reservoir[i])
	}
	return reservoir
}

// FailedProfileHours returns the profile length in hours of every failed
// drive (the quantity histogrammed in Fig. 1).
func (d *Dataset) FailedProfileHours() []float64 {
	out := make([]float64, len(d.Failed))
	for i, p := range d.Failed {
		out[i] = float64(p.Len())
	}
	return out
}

// FailedByID returns the failed profile with the given drive ID, or an
// error if absent.
func (d *Dataset) FailedByID(id int) (*smart.Profile, error) {
	for _, p := range d.Failed {
		if p.DriveID == id {
			return p, nil
		}
	}
	return nil, fmt.Errorf("dataset: no failed drive with ID %d", id)
}
