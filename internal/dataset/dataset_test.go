package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"disksig/internal/smart"
)

// makeProfile builds a simple profile whose RRER ramps linearly.
func makeProfile(id int, failed bool, group, n int, base float64) *smart.Profile {
	p := &smart.Profile{DriveID: id, Failed: failed, TrueGroup: group}
	for h := 0; h < n; h++ {
		var v smart.Values
		for a := range v {
			v[a] = base + float64(h)
		}
		p.Records = append(p.Records, smart.Record{Hour: h, Values: v})
	}
	return p
}

func testDataset() *Dataset {
	failed := []*smart.Profile{
		makeProfile(0, true, 1, 5, 0),
		makeProfile(1, true, 2, 3, 10),
	}
	good := []*smart.Profile{
		makeProfile(2, false, 0, 4, 5),
		makeProfile(3, false, 0, 4, 6),
	}
	return New(failed, good)
}

func TestCounts(t *testing.T) {
	d := testDataset()
	c := d.Counts()
	if c.FailedDrives != 2 || c.GoodDrives != 2 {
		t.Errorf("drives = %+v", c)
	}
	if c.FailedRecords != 8 || c.GoodRecords != 8 {
		t.Errorf("records = %+v", c)
	}
	if got := d.FailureRate(); got != 0.5 {
		t.Errorf("FailureRate = %v", got)
	}
	if (&Dataset{}).FailureRate() != 0 {
		t.Error("empty dataset failure rate should be 0")
	}
}

func TestNormalizerFitsWholeFleet(t *testing.T) {
	d := testDataset()
	// Values span [0, 12] for every attribute (failed 0..12, good 5..9).
	if d.Norm.Min[smart.RRER] != 0 || d.Norm.Max[smart.RRER] != 12 {
		t.Errorf("norm range = [%v, %v], want [0, 12]", d.Norm.Min[smart.RRER], d.Norm.Max[smart.RRER])
	}
}

func TestNormalizedFailedCached(t *testing.T) {
	d := testDataset()
	a := d.NormalizedFailed()
	b := d.NormalizedFailed()
	if &a[0] != &b[0] {
		t.Error("NormalizedFailed should cache")
	}
	// First record of drive 0 has raw value 0 => normalized -1.
	if got := a[0].Records[0].Values[smart.RRER]; got != -1 {
		t.Errorf("normalized = %v, want -1", got)
	}
	// Raw profiles untouched.
	if d.Failed[0].Records[0].Values[smart.RRER] != 0 {
		t.Error("normalization mutated raw profiles")
	}
}

func TestNormalizedFailureRecords(t *testing.T) {
	d := testDataset()
	frs := d.NormalizedFailureRecords()
	if len(frs) != 2 {
		t.Fatalf("len = %d", len(frs))
	}
	// Drive 1's failure record value is 12 => normalized 1.
	if frs[1][smart.RRER] != 1 {
		t.Errorf("failure record = %v, want 1", frs[1][smart.RRER])
	}
}

func TestGoodAttrValuesAndStats(t *testing.T) {
	d := testDataset()
	vals := d.GoodAttrValues(smart.TC)
	if len(vals) != 8 {
		t.Fatalf("len = %d, want 8", len(vals))
	}
	st := d.GoodAttrStats(smart.TC)
	if st.N() != 8 {
		t.Errorf("stats N = %d", st.N())
	}
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	if math.Abs(st.Mean()-mean) > 1e-12 {
		t.Errorf("stats mean %v != batch mean %v", st.Mean(), mean)
	}
}

func TestFailedProfileHours(t *testing.T) {
	d := testDataset()
	hrs := d.FailedProfileHours()
	if hrs[0] != 5 || hrs[1] != 3 {
		t.Errorf("hours = %v", hrs)
	}
}

func TestFailedByID(t *testing.T) {
	d := testDataset()
	p, err := d.FailedByID(1)
	if err != nil || p.DriveID != 1 {
		t.Errorf("FailedByID(1) = %v, %v", p, err)
	}
	if _, err := d.FailedByID(99); err == nil {
		t.Error("expected error for missing drive")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := testDataset()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualDatasets(t, d, back)
}

func TestGobRoundTrip(t *testing.T) {
	d := testDataset()
	var buf bytes.Buffer
	if err := d.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualDatasets(t, d, back)
}

func assertEqualDatasets(t *testing.T, a, b *Dataset) {
	t.Helper()
	if len(a.Failed) != len(b.Failed) || len(a.Good) != len(b.Good) {
		t.Fatalf("population mismatch: %d/%d vs %d/%d", len(a.Failed), len(a.Good), len(b.Failed), len(b.Good))
	}
	for i := range a.Failed {
		pa, pb := a.Failed[i], b.Failed[i]
		if pa.DriveID != pb.DriveID || pa.Failed != pb.Failed || pa.TrueGroup != pb.TrueGroup || pa.Len() != pb.Len() {
			t.Fatalf("failed[%d] metadata mismatch", i)
		}
		for j := range pa.Records {
			if pa.Records[j] != pb.Records[j] {
				t.Fatalf("failed[%d] record %d mismatch", i, j)
			}
		}
	}
	for i := range a.Good {
		if a.Good[i].DriveID != b.Good[i].DriveID || a.Good[i].Len() != b.Good[i].Len() {
			t.Fatalf("good[%d] mismatch", i)
		}
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	cases := []string{
		"",                    // no header
		"not,a,real,header\n", // wrong header
		validHeader() + "x,true,1,0" + strings.Repeat(",1", 12) + "\n",   // bad id
		validHeader() + "1,maybe,1,0" + strings.Repeat(",1", 12) + "\n",  // bad failed flag
		validHeader() + "1,true,x,0" + strings.Repeat(",1", 12) + "\n",   // bad group
		validHeader() + "1,true,1,x" + strings.Repeat(",1", 12) + "\n",   // bad hour
		validHeader() + "1,true,1,0" + strings.Repeat(",zzz", 12) + "\n", // bad value
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func validHeader() string {
	h := "drive_id,failed,true_group,hour"
	for _, a := range smart.All() {
		h += "," + a.String()
	}
	return h + "\n"
}

func TestSaveLoadFile(t *testing.T) {
	d := testDataset()
	for _, name := range []string{"ds.csv", "ds.gob"} {
		path := filepath.Join(t.TempDir(), name)
		if err := d.SaveFile(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertEqualDatasets(t, d, back)
	}
	if err := d.SaveFile(filepath.Join(t.TempDir(), "ds.txt")); err == nil {
		t.Error("expected error for unknown extension")
	}
	if _, err := LoadFile("/nonexistent/ds.gob"); err == nil {
		t.Error("expected error for missing file")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "ds.txt")); err == nil {
		t.Error("expected error for unknown load extension")
	}
}

// biggerDataset builds a fleet large enough to span several normalizer
// and reservoir shards.
func biggerDataset() *Dataset {
	var failed, good []*smart.Profile
	for i := 0; i < 40; i++ {
		failed = append(failed, makeProfile(i, true, 1+i%3, 30+i%7, float64(i)))
	}
	for i := 0; i < 200; i++ {
		good = append(good, makeProfile(1000+i, false, 0, 50+i%11, float64(i)/3))
	}
	return New(failed, good)
}

func TestGoodSampleWorkerEquivalence(t *testing.T) {
	const n, seed = 500, 7
	var want []smart.Values
	for _, workers := range []int{1, 2, 4, 16} {
		d := biggerDataset()
		d.SetWorkers(workers)
		got := d.NormalizedGoodSample(n, seed)
		if len(got) != n {
			t.Fatalf("workers=%d: sample size = %d, want %d", workers, len(got), n)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: sample record %d differs from workers=1", workers, i)
			}
		}
	}
}

func TestGoodSampleDifferentSeedsDiffer(t *testing.T) {
	d := biggerDataset()
	a := d.NormalizedGoodSample(200, 1)
	b := d.NormalizedGoodSample(200, 2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("samples for seeds 1 and 2 are identical")
	}
}

func TestNormalizerShardedFitMatchesSequential(t *testing.T) {
	// The parallel per-shard min/max fit must reproduce a plain
	// sequential pass over every record.
	d := biggerDataset()
	seq := smart.NewNormalizer()
	for _, p := range d.Failed {
		seq.ObserveProfile(p)
	}
	for _, p := range d.Good {
		seq.ObserveProfile(p)
	}
	probe := d.Failed[3].Records[7].Values
	if got, want := d.Norm.Normalize(probe), seq.Normalize(probe); got != want {
		t.Errorf("sharded fit normalizes to %v, sequential fit to %v", got, want)
	}
}

func TestNormalizedFailureRecordsCached(t *testing.T) {
	d := testDataset()
	a := d.NormalizedFailureRecords()
	b := d.NormalizedFailureRecords()
	if &a[0] != &b[0] {
		t.Error("NormalizedFailureRecords is not cached")
	}
	if len(a) != len(d.Failed) {
		t.Errorf("records = %d, want %d", len(a), len(d.Failed))
	}
}

func TestFailedByIDIndexed(t *testing.T) {
	d := biggerDataset()
	// Every drive resolves through the lazy index, including after
	// repeated lookups.
	for _, p := range d.Failed {
		got, err := d.FailedByID(p.DriveID)
		if err != nil || got != p {
			t.Fatalf("FailedByID(%d) = %v, %v", p.DriveID, got, err)
		}
	}
	if _, err := d.FailedByID(-5); err == nil {
		t.Error("expected error for missing drive")
	}
}
