package dataset

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"disksig/internal/quality"
	"disksig/internal/smart"
)

// backblazeFixture builds a miniature Backblaze-style daily dump with two
// drives: SN-BAD degrades and fails on its last day; SN-OK stays healthy.
func backblazeFixture() string {
	var b strings.Builder
	b.WriteString("date,serial_number,model,capacity_bytes,failure," +
		"smart_1_normalized,smart_3_normalized,smart_5_normalized,smart_5_raw," +
		"smart_7_normalized,smart_9_normalized,smart_187_normalized," +
		"smart_189_normalized,smart_194_normalized,smart_195_normalized," +
		"smart_197_normalized,smart_197_raw\n")
	for day := 0; day < 5; day++ {
		fail := 0
		if day == 4 {
			fail = 1
		}
		health := 100 - day*15
		raw := day * 100
		fmt.Fprintf(&b, "2026-07-%02d,SN-BAD,ModelX,4000000000000,%d,%d,100,%d,%d,100,95,%d,100,60,100,%d,%d\n",
			day+1, fail, health, health, raw, health, health, day*2)
		fmt.Fprintf(&b, "2026-07-%02d,SN-OK,ModelX,4000000000000,0,100,100,100,0,100,97,100,100,65,100,100,0\n",
			day+1)
	}
	return b.String()
}

func TestReadBackblazeCSV(t *testing.T) {
	ds, err := ReadBackblazeCSV(strings.NewReader(backblazeFixture()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Failed) != 1 || len(ds.Good) != 1 {
		t.Fatalf("population = %d/%d", len(ds.Failed), len(ds.Good))
	}
	bad := ds.Failed[0]
	if bad.Len() != 5 {
		t.Fatalf("failed drive has %d records", bad.Len())
	}
	fr := bad.FailureRecord()
	if fr.Values[smart.RRER] != 40 {
		t.Errorf("failure RRER = %v, want 40", fr.Values[smart.RRER])
	}
	if fr.Values[smart.RawRSC] != 400 {
		t.Errorf("failure R-RSC = %v, want 400", fr.Values[smart.RawRSC])
	}
	if fr.Values[smart.RawCPSC] != 8 {
		t.Errorf("failure R-CPSC = %v, want 8", fr.Values[smart.RawCPSC])
	}
	// Hours count days since the drive appeared.
	if bad.Records[0].Hour != 0 || bad.Records[4].Hour != 4 {
		t.Errorf("hours = %d..%d", bad.Records[0].Hour, bad.Records[4].Hour)
	}
	// The good drive stays at full health.
	good := ds.Good[0]
	for _, r := range good.Records {
		if r.Values[smart.RRER] != 100 {
			t.Errorf("good drive RRER = %v", r.Values[smart.RRER])
		}
	}
	// Normalizer fitted across both drives.
	if !ds.Norm.Fitted() {
		t.Error("normalizer not fitted")
	}
}

func TestReadBackblazeMissingValuesInherit(t *testing.T) {
	csv := "date,serial_number,failure,smart_1_normalized\n" +
		"2026-07-01,SN-A,0,80\n" +
		"2026-07-02,SN-A,0,\n" + // missing: inherit 80
		"2026-07-03,SN-A,0,60\n"
	ds, err := ReadBackblazeCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	p := ds.Good[0]
	if p.Records[1].Values[smart.RRER] != 80 {
		t.Errorf("inherited value = %v, want 80", p.Records[1].Values[smart.RRER])
	}
	// Unmapped attributes default to healthy values on the first row.
	if p.Records[0].Values[smart.RUE] != 100 {
		t.Errorf("default RUE = %v, want 100", p.Records[0].Values[smart.RUE])
	}
	if p.Records[0].Values[smart.RawRSC] != 0 {
		t.Errorf("default raw = %v, want 0", p.Records[0].Values[smart.RawRSC])
	}
}

func TestReadBackblazeErrors(t *testing.T) {
	cases := []string{
		"",                             // no header
		"date,serial_number\nx,y\n",    // missing failure column
		"date,serial_number,failure\n", // no rows
		"date,serial_number,failure,smart_1_normalized\n2026-07-01,SN,0,notanumber\n", // bad value
	}
	for i, c := range cases {
		if _, err := ReadBackblazeCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadBackblazeDeterministicIDs(t *testing.T) {
	a, err := ReadBackblazeCSV(strings.NewReader(backblazeFixture()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadBackblazeCSV(strings.NewReader(backblazeFixture()))
	if err != nil {
		t.Fatal(err)
	}
	if a.Failed[0].DriveID != b.Failed[0].DriveID || a.Good[0].DriveID != b.Good[0].DriveID {
		t.Error("drive IDs not deterministic")
	}
	// Failed drives get the lowest IDs.
	if a.Failed[0].DriveID != 0 || a.Good[0].DriveID != 1 {
		t.Errorf("IDs = %d/%d", a.Failed[0].DriveID, a.Good[0].DriveID)
	}
}

func TestBackblazeRoundTrip(t *testing.T) {
	d := testDataset()
	var buf strings.Builder
	if err := d.WriteBackblazeCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBackblazeCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Failed) != len(d.Failed) || len(back.Good) != len(d.Good) {
		t.Fatalf("population = %d/%d, want %d/%d",
			len(back.Failed), len(back.Good), len(d.Failed), len(d.Good))
	}
	// Every attribute value survives the round trip (drive order within
	// each population is by serial, which preserves ID order here).
	for i, p := range d.Failed {
		q := back.Failed[i]
		if q.Len() != p.Len() {
			t.Fatalf("failed[%d] length %d != %d", i, q.Len(), p.Len())
		}
		for j := range p.Records {
			if p.Records[j].Values != q.Records[j].Values {
				t.Fatalf("failed[%d] record %d values differ", i, j)
			}
		}
	}
}

// backblazeSSDFixture is a mixed dump: SN-FLASH is an SSD (model string
// plus wear columns) wearing out toward failure; SN-DISK is a healthy
// HDD whose wear columns are empty.
func backblazeSSDFixture() string {
	var b strings.Builder
	b.WriteString("date,serial_number,model,capacity_bytes,failure," +
		"smart_1_normalized,smart_5_normalized,smart_9_normalized," +
		"smart_173_normalized,smart_173_raw,smart_170_normalized,smart_170_raw," +
		"smart_187_normalized,smart_194_normalized\n")
	for day := 0; day < 4; day++ {
		fail := 0
		if day == 3 {
			fail = 1
		}
		fmt.Fprintf(&b, "2026-07-%02d,SN-FLASH,Vendor SSD 1T,1000000000000,%d,,98,95,%d,%d,100,%d,100,60\n",
			day+1, fail, 100-day*20, day*500, day)
		fmt.Fprintf(&b, "2026-07-%02d,SN-DISK,ModelX,4000000000000,0,100,100,97,,,,,100,65\n",
			day+1)
	}
	return b.String()
}

func TestReadBackblazeSSD(t *testing.T) {
	ds, err := ReadBackblazeCSV(strings.NewReader(backblazeSSDFixture()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Failed) != 1 || len(ds.Good) != 1 {
		t.Fatalf("population = %d/%d", len(ds.Failed), len(ds.Good))
	}
	flash, disk := ds.Failed[0], ds.Good[0]
	if flash.Class != smart.SSD {
		t.Fatalf("SSD drive classified %v", flash.Class)
	}
	if disk.Class != smart.HDD {
		t.Fatalf("HDD drive classified %v", disk.Class)
	}
	// smart_173 lands in the wear-leveling slot, its raw twin in R-PEC,
	// and smart_170_raw in reserved-blocks-used.
	fr := flash.FailureRecord()
	if fr.Values[smart.RRER] != 40 {
		t.Errorf("failure WLC = %v, want 40", fr.Values[smart.RRER])
	}
	if fr.Values[smart.RawRSC] != 1500 {
		t.Errorf("failure R-PEC = %v, want 1500", fr.Values[smart.RawRSC])
	}
	if fr.Values[smart.RawCPSC] != 3 {
		t.Errorf("failure R-RBU = %v, want 3", fr.Values[smart.RawCPSC])
	}
	// smart_1 (an HDD-only column) is ignored on SSD rows: the slot
	// carries wear-leveling health, not read-error health.
	if flash.Records[0].Values[smart.RRER] != 100 {
		t.Errorf("first WLC = %v, want 100", flash.Records[0].Values[smart.RRER])
	}
}

func TestReadBackblazeClassConflict(t *testing.T) {
	// Without a model column, class detection rides on the wear columns:
	// SN-X's first two rows carry smart_173 (SSD), the third doesn't
	// (HDD) — a class flip-flop, so the third row is quarantined and the
	// drive survives as a two-record SSD.
	csv := "date,serial_number,failure,smart_173_normalized\n" +
		"2026-07-01,SN-X,0,90\n" +
		"2026-07-02,SN-X,0,80\n" +
		"2026-07-03,SN-X,0,\n"
	ds, rep, err := ReadBackblazeCSVQ(strings.NewReader(csv), quality.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsQuarantined != 1 {
		t.Fatalf("quarantined %d rows, want 1", rep.RowsQuarantined)
	}
	p := ds.Good[0]
	if p.Class != smart.SSD || p.Len() != 2 {
		t.Fatalf("drive = class %v with %d records, want 2-record SSD", p.Class, p.Len())
	}
}

func TestBackblazeMixedRoundTrip(t *testing.T) {
	ssd := &smart.Profile{DriveID: 0, Class: smart.SSD, Failed: true}
	for h := 0; h < 4; h++ {
		var v smart.Values
		for a := range v {
			v[a] = float64(100 - h*10)
		}
		v[smart.RawRSC] = float64(h * 700) // P/E cycles
		v[smart.RawCPSC] = float64(h)      // reserved blocks used
		ssd.Records = append(ssd.Records, smart.Record{Hour: h, Values: v})
	}
	hdd := makeProfile(1, false, 0, 4, 50)
	d := New([]*smart.Profile{ssd}, []*smart.Profile{hdd})

	var buf strings.Builder
	if err := d.WriteBackblazeCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBackblazeCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Failed) != 1 || len(back.Good) != 1 {
		t.Fatalf("population = %d/%d", len(back.Failed), len(back.Good))
	}
	if back.Failed[0].Class != smart.SSD || back.Good[0].Class != smart.HDD {
		t.Fatalf("classes = %v/%v", back.Failed[0].Class, back.Good[0].Class)
	}
	for j := range ssd.Records {
		if back.Failed[0].Records[j].Values != ssd.Records[j].Values {
			t.Fatalf("SSD record %d values differ after round trip", j)
		}
	}
	for j := range hdd.Records {
		if back.Good[0].Records[j].Values != hdd.Records[j].Values {
			t.Fatalf("HDD record %d values differ after round trip", j)
		}
	}
}

func TestBackblazeSaveLoadFile(t *testing.T) {
	d := testDataset()
	path := filepath.Join(t.TempDir(), "fleet.bbcsv")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Failed) != len(d.Failed) || len(back.Good) != len(d.Good) {
		t.Errorf("population = %d/%d", len(back.Failed), len(back.Good))
	}
}
