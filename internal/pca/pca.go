// Package pca implements principal component analysis over row-observation
// matrices, used to project the 30-feature failure records onto the two
// principal components plotted in the paper's Fig. 4.
package pca

import (
	"fmt"

	"disksig/internal/linalg"
	"disksig/internal/stats"
)

// Model is a fitted PCA basis.
type Model struct {
	// Means are the per-feature means subtracted before projection.
	Means []float64
	// Components holds the principal axes as columns, ordered by
	// decreasing explained variance.
	Components *linalg.Matrix
	// Variances are the eigenvalues (variance along each component).
	Variances []float64
}

// Fit computes a PCA basis from data (rows are observations, columns are
// features) via eigendecomposition of the covariance matrix.
func Fit(data [][]float64) (*Model, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("pca: no observations")
	}
	m := linalg.FromRows(data)
	cov := stats.CovarianceMatrix(m)
	vals, vecs, err := linalg.EigenSym(cov)
	if err != nil {
		return nil, fmt.Errorf("pca: eigendecomposition failed: %w", err)
	}
	// Numerical noise can make near-zero eigenvalues slightly negative.
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0
		}
	}
	return &Model{
		Means:      stats.ColumnMeans(m),
		Components: vecs,
		Variances:  vals,
	}, nil
}

// Transform projects one observation onto the first k principal
// components.
func (m *Model) Transform(x []float64, k int) []float64 {
	if len(x) != len(m.Means) {
		panic(fmt.Sprintf("pca: observation has %d features, model has %d", len(x), len(m.Means)))
	}
	if k > m.Components.Cols() {
		k = m.Components.Cols()
	}
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		var s float64
		for j := range x {
			s += (x[j] - m.Means[j]) * m.Components.At(j, c)
		}
		out[c] = s
	}
	return out
}

// TransformAll projects every observation onto the first k components.
func (m *Model) TransformAll(data [][]float64, k int) [][]float64 {
	out := make([][]float64, len(data))
	for i, x := range data {
		out[i] = m.Transform(x, k)
	}
	return out
}

// ExplainedVarianceRatio returns the fraction of total variance captured
// by each component.
func (m *Model) ExplainedVarianceRatio() []float64 {
	var total float64
	for _, v := range m.Variances {
		total += v
	}
	out := make([]float64, len(m.Variances))
	if total == 0 {
		return out
	}
	for i, v := range m.Variances {
		out[i] = v / total
	}
	return out
}

// Project is a convenience that fits a PCA on data and returns the
// k-dimensional projection of every observation.
func Project(data [][]float64, k int) ([][]float64, *Model, error) {
	model, err := Fit(data)
	if err != nil {
		return nil, nil, err
	}
	return model.TransformAll(data, k), model, nil
}
