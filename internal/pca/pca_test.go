package pca

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFitKnownDirection(t *testing.T) {
	// Data spread along the (1,1) diagonal with tiny orthogonal noise: the
	// first component must align with (1,1)/sqrt(2).
	rng := rand.New(rand.NewSource(1))
	var data [][]float64
	for i := 0; i < 200; i++ {
		tt := rng.NormFloat64() * 5
		n := rng.NormFloat64() * 0.01
		data = append(data, []float64{tt + n, tt - n})
	}
	m, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	c0 := []float64{m.Components.At(0, 0), m.Components.At(1, 0)}
	if !almostEq(math.Abs(c0[0]), 1/math.Sqrt2, 1e-2) || !almostEq(math.Abs(c0[1]), 1/math.Sqrt2, 1e-2) {
		t.Errorf("first component = %v, want +-(0.707, 0.707)", c0)
	}
	ratios := m.ExplainedVarianceRatio()
	if ratios[0] < 0.99 {
		t.Errorf("first component explains %v, want > 0.99", ratios[0])
	}
	if s := ratios[0] + ratios[1]; !almostEq(s, 1, 1e-9) {
		t.Errorf("ratios sum to %v", s)
	}
}

func TestFitEmpty(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Fatal("expected error for empty data")
	}
}

func TestTransformCentering(t *testing.T) {
	data := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	m, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	// Projecting the mean point must give the origin.
	got := m.Transform([]float64{3, 4}, 2)
	for _, v := range got {
		if !almostEq(v, 0, 1e-10) {
			t.Errorf("projection of mean = %v, want origin", got)
		}
	}
	// k larger than dimensionality is clipped.
	if got := m.Transform([]float64{1, 2}, 10); len(got) != 2 {
		t.Errorf("clipped projection length = %d", len(got))
	}
}

func TestTransformDimensionPanics(t *testing.T) {
	m, _ := Fit([][]float64{{1, 2}, {3, 4}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Transform([]float64{1}, 1)
}

// Property: full-rank projection preserves pairwise Euclidean distances
// (PCA is a rotation plus centering).
func TestTransformIsometryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 5+rng.Intn(20), 2+rng.Intn(4)
		data := make([][]float64, n)
		for i := range data {
			data[i] = make([]float64, d)
			for j := range data[i] {
				data[i][j] = rng.NormFloat64()
			}
		}
		proj, _, err := Project(data, d)
		if err != nil {
			return false
		}
		dist := func(a, b []float64) float64 {
			var s float64
			for i := range a {
				s += (a[i] - b[i]) * (a[i] - b[i])
			}
			return math.Sqrt(s)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if !almostEq(dist(data[i], data[j]), dist(proj[i], proj[j]), 1e-6) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: variance of the first component's scores equals the first
// eigenvalue.
func TestComponentVarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 10+rng.Intn(40), 2+rng.Intn(3)
		data := make([][]float64, n)
		for i := range data {
			data[i] = make([]float64, d)
			for j := range data[i] {
				data[i][j] = rng.NormFloat64() * float64(j+1)
			}
		}
		proj, m, err := Project(data, 1)
		if err != nil {
			return false
		}
		var mean float64
		for _, p := range proj {
			mean += p[0]
		}
		mean /= float64(n)
		var v float64
		for _, p := range proj {
			v += (p[0] - mean) * (p[0] - mean)
		}
		v /= float64(n)
		return almostEq(v, m.Variances[0], 1e-6*(1+m.Variances[0]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestExplainedVarianceZeroData(t *testing.T) {
	m, err := Fit([][]float64{{1, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range m.ExplainedVarianceRatio() {
		if r != 0 {
			t.Errorf("constant data ratio = %v", r)
		}
	}
}
