// Package predict implements Sec. V-B of the paper — regression-tree
// prediction of disk degradation with signature-derived targets — and the
// baseline failure detectors of Sec. II-C (vendor threshold test,
// Wilcoxon rank-sum test, Mahalanobis anomaly detection) evaluated by
// failure detection rate (FDR) and false alarm rate (FAR).
package predict

import (
	"fmt"

	"disksig/internal/regression"
	"disksig/internal/smart"
	"disksig/internal/tree"
)

// DegradationConfig parameterizes TrainDegradation.
type DegradationConfig struct {
	// Form is the failure group's degradation signature (Eqs. 3/4/6).
	Form regression.SignatureForm
	// WindowD is the fixed window size used to compute sample targets;
	// the paper sets 12 / 380 / 24 for Groups 1-3.
	WindowD float64
	// GoodFactor mixes GoodFactor times as many good samples as failed
	// samples into the dataset (paper: 10). <= 0 means 10.
	GoodFactor int
	// TrainFrac is the training split fraction (paper: 0.7). <= 0 means
	// 0.7.
	TrainFrac float64
	// Seed drives sampling and the split.
	Seed int64
	// Tree configures the regression tree.
	Tree tree.Config
}

func (c DegradationConfig) withDefaults() DegradationConfig {
	if c.GoodFactor <= 0 {
		c.GoodFactor = 10
	}
	if c.TrainFrac <= 0 {
		c.TrainFrac = 0.7
	}
	if c.Tree.MaxDepth == 0 {
		c.Tree.MaxDepth = 10
	}
	if c.Tree.MinLeaf == 0 {
		c.Tree.MinLeaf = 20
	}
	return c
}

// DegradationResult reports a trained degradation predictor and its test
// performance (one row of Table III).
type DegradationResult struct {
	// Tree is the trained regression tree over the 12 normalized
	// attributes.
	Tree *tree.Tree
	// RMSE is the root-mean-square prediction error on the test split.
	RMSE float64
	// ErrorRate is RMSE divided by the target range (the paper's
	// "error rate"; targets span [-1, 1], range 2).
	ErrorRate float64
	// TrainSamples and TestSamples are the split sizes.
	TrainSamples int
	TestSamples  int
	// Importance is the per-attribute SSE-reduction share on the training
	// set, identifying the critical attributes of each group's model.
	Importance []float64
}

// TrainDegradation trains and evaluates a degradation predictor for one
// failure group.
//
// failed must hold the group's normalized failed profiles; every record of
// each profile becomes a sample whose target is the group signature
// evaluated at the record's hours-before-failure. Records older than
// WindowD have not entered the degradation window and take the
// window-edge target 0. goodPool provides normalized good-drive records;
// targets of good samples are 1.
func TrainDegradation(failed []*smart.Profile, goodPool []smart.Values, cfg DegradationConfig) (*DegradationResult, error) {
	cfg = cfg.withDefaults()
	trainX, trainY, testX, testY, err := buildSamples(failed, goodPool, cfg)
	if err != nil {
		return nil, err
	}
	tr, err := tree.Train(trainX, trainY, cfg.Tree)
	if err != nil {
		return nil, fmt.Errorf("predict: training tree: %w", err)
	}
	pred := tr.PredictAll(testX)
	rmse := regression.RMSE(pred, testY)
	return &DegradationResult{
		Tree:         tr,
		RMSE:         rmse,
		ErrorRate:    rmse / 2, // targets span [-1, 1]
		TrainSamples: len(trainX),
		TestSamples:  len(testX),
		Importance:   tr.FeatureImportance(trainX, trainY),
	}, nil
}

// AttrNames returns the 12 attribute symbols in Table I order, the feature
// labels of the degradation trees.
func AttrNames() []string {
	names := make([]string, smart.NumAttrs)
	for i, a := range smart.All() {
		names[i] = a.String()
	}
	return names
}

// PaperWindowD returns the fixed window size the paper uses for the
// group's prediction targets (12 / 380 / 24 for Groups 1-3).
func PaperWindowD(group int) float64 {
	switch group {
	case 1:
		return 12
	case 2:
		return 380
	case 3:
		return 24
	default:
		panic(fmt.Sprintf("predict: invalid group %d", group))
	}
}

// PaperForm returns the group's signature form (Eqs. 3/4/6).
func PaperForm(group int) regression.SignatureForm {
	switch group {
	case 1:
		return regression.FormQuadratic
	case 2:
		return regression.FormLinear
	case 3:
		return regression.FormCubic
	default:
		panic(fmt.Sprintf("predict: invalid group %d", group))
	}
}
