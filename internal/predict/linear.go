package predict

import (
	"fmt"

	"disksig/internal/linalg"
)

// LinearModel is an ordinary-least-squares linear regressor over the 12
// normalized attributes — the simplest of the extra prediction methods
// the paper leaves for future work, and a useful floor for the tree and
// forest models.
type LinearModel struct {
	// Coeffs holds the intercept followed by one weight per feature.
	Coeffs []float64
}

// TrainLinear fits y ≈ b0 + b·x by OLS with a small ridge term for
// numerical stability on collinear attributes (RSC is a linear transform
// of R-RSC, so the plain normal equations are singular).
func TrainLinear(x [][]float64, y []float64, ridge float64) (*LinearModel, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("predict: no training samples")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("predict: %d observations but %d targets", len(x), len(y))
	}
	if ridge <= 0 {
		ridge = 1e-6
	}
	d := len(x[0])
	k := d + 1
	xtx := linalg.NewMatrix(k, k)
	xty := make([]float64, k)
	row := make([]float64, k)
	for i, obs := range x {
		if len(obs) != d {
			return nil, fmt.Errorf("predict: observation %d has %d features, want %d", i, len(obs), d)
		}
		row[0] = 1
		copy(row[1:], obs)
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				xtx.Set(a, b, xtx.At(a, b)+row[a]*row[b])
			}
			xty[a] += row[a] * y[i]
		}
	}
	for a := 1; a < k; a++ { // don't penalize the intercept
		xtx.Set(a, a, xtx.At(a, a)+ridge*float64(len(x)))
	}
	coeffs, err := linalg.Solve(xtx, xty)
	if err != nil {
		return nil, fmt.Errorf("predict: solving linear normal equations: %w", err)
	}
	return &LinearModel{Coeffs: coeffs}, nil
}

// Predict returns the linear prediction for one observation.
func (m *LinearModel) Predict(x []float64) float64 {
	if len(x) != len(m.Coeffs)-1 {
		panic(fmt.Sprintf("predict: observation has %d features, model has %d", len(x), len(m.Coeffs)-1))
	}
	yhat := m.Coeffs[0]
	for i, v := range x {
		yhat += m.Coeffs[i+1] * v
	}
	return yhat
}

// PredictAll predicts every observation.
func (m *LinearModel) PredictAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = m.Predict(row)
	}
	return out
}
