package predict

import (
	"fmt"
	"math"
	"math/rand"

	"disksig/internal/distance"
	"disksig/internal/smart"
	"disksig/internal/stats"
)

// Detector decides, from a drive's normalized health profile, whether the
// drive is failing. Detectors model the prior-work baselines of Sec. II-C.
type Detector interface {
	// Flag reports whether the detector raises an alarm for the profile.
	Flag(p *smart.Profile) bool
	// Name identifies the detector in reports.
	Name() string
}

// Evaluation is the standard detector scorecard.
type Evaluation struct {
	// FDR is the failure detection rate: the fraction of failed drives
	// flagged.
	FDR float64
	// FAR is the false alarm rate: the fraction of good drives flagged.
	FAR float64
	// Flagged counts raised alarms over both populations.
	Flagged int
}

// Evaluate runs the detector over both populations (normalized profiles).
func Evaluate(det Detector, failed, good []*smart.Profile) Evaluation {
	var e Evaluation
	var hits int
	for _, p := range failed {
		if det.Flag(p) {
			hits++
			e.Flagged++
		}
	}
	if len(failed) > 0 {
		e.FDR = float64(hits) / float64(len(failed))
	}
	var false_ int
	for _, p := range good {
		if det.Flag(p) {
			false_++
			e.Flagged++
		}
	}
	if len(good) > 0 {
		e.FAR = float64(false_) / float64(len(good))
	}
	return e
}

// ThresholdDetector is the vendor-firmware baseline: raise an alarm when
// any monitored attribute's health value drops below its threshold.
// Vendors set thresholds very conservatively to keep FAR near zero, which
// is why the paper cites only 3-10 % FDR for this scheme.
type ThresholdDetector struct {
	// Attrs are the monitored attributes; nil means the R/W health values.
	Attrs []smart.Attr
	// Threshold is the normalized health value below which an attribute
	// trips the alarm.
	Threshold float64
	// Window is how many of the latest records are inspected; 0 means 24.
	Window int
}

// Flag implements Detector.
func (d *ThresholdDetector) Flag(p *smart.Profile) bool {
	attrs := d.Attrs
	if attrs == nil {
		attrs = thresholdDefaultAttrs()
	}
	window := d.Window
	if window <= 0 {
		window = 24
	}
	for _, r := range p.Tail(window) {
		for _, a := range attrs {
			if r.Values[a] < d.Threshold {
				return true
			}
		}
	}
	return false
}

// thresholdDefaultAttrs monitors the error-counting health values, as
// drive firmware does.
func thresholdDefaultAttrs() []smart.Attr {
	return []smart.Attr{smart.RRER, smart.RSC, smart.SER, smart.RUE, smart.HFW, smart.CPSC}
}

// Name implements Detector.
func (d *ThresholdDetector) Name() string { return "threshold" }

// RankSumDetector is the Hughes et al. baseline: a Wilcoxon rank-sum test
// of the drive's recent attribute values against a good-drive reference
// sample, OR-ed over attributes.
type RankSumDetector struct {
	// Reference holds per-attribute reference samples from good drives.
	Reference map[smart.Attr][]float64
	// Attrs are the tested attributes; nil means the R/W health values.
	Attrs []smart.Attr
	// ZCrit is the one-sided critical value: an alarm requires the recent
	// sample to rank significantly BELOW the reference (health values
	// fall as drives degrade; the upper tail only reflects benign
	// baseline spread). 0 selects 97% of the maximum attainable |z| for
	// the window/reference sizes — near-total rank separation, the
	// conservative regime that keeps FAR low on heterogeneous fleets.
	ZCrit float64
	// Window is how many of the latest records form the test sample; 0
	// means 24.
	Window int
}

// NewRankSumDetector builds the reference samples from good profiles,
// subsampling refPerAttr values per attribute.
func NewRankSumDetector(good []*smart.Profile, refPerAttr int, seed int64) (*RankSumDetector, error) {
	if len(good) == 0 {
		return nil, fmt.Errorf("predict: rank-sum reference requires good profiles")
	}
	if refPerAttr <= 0 {
		refPerAttr = 2000
	}
	rng := rand.New(rand.NewSource(seed))
	d := &RankSumDetector{Reference: map[smart.Attr][]float64{}}
	attrs := thresholdDefaultAttrs()
	for _, a := range attrs {
		sample := make([]float64, 0, refPerAttr)
		for i := 0; i < refPerAttr; i++ {
			p := good[rng.Intn(len(good))]
			r := p.Records[rng.Intn(p.Len())]
			sample = append(sample, r.Values[a])
		}
		d.Reference[a] = sample
	}
	return d, nil
}

// Flag implements Detector.
func (d *RankSumDetector) Flag(p *smart.Profile) bool {
	attrs := d.Attrs
	if attrs == nil {
		attrs = thresholdDefaultAttrs()
	}
	window := d.Window
	if window <= 0 {
		window = 24
	}
	tail := p.Tail(window)
	sample := make([]float64, len(tail))
	for _, a := range attrs {
		ref, ok := d.Reference[a]
		if !ok {
			continue
		}
		zcrit := d.ZCrit
		if zcrit == 0 {
			// 97% of the maximum |z| attainable when every sample value
			// ranks below the whole reference.
			n1, n2 := float64(len(tail)), float64(len(ref))
			zcrit = 0.97 * math.Sqrt(3*n1*n2/(n1+n2+1))
		}
		for i, r := range tail {
			sample[i] = r.Values[a]
		}
		if z := stats.RankSumZ(sample, ref); z < -zcrit {
			return true
		}
	}
	return false
}

// Name implements Detector.
func (d *RankSumDetector) Name() string { return "rank-sum" }

// MahalanobisDetector is the Wang et al. baseline: flag a drive when the
// Mahalanobis distance of its recent records from the good-drive
// distribution exceeds a threshold calibrated on good data.
type MahalanobisDetector struct {
	metric    *distance.Mahalanobis
	center    []float64
	threshold float64
	window    int
	attrs     []smart.Attr
}

// NewMahalanobisDetector fits the metric on good records and calibrates
// the alarm threshold at the given quantile of good-record distances
// (e.g. 0.999 targets a 0.1 % per-record false-positive budget).
func NewMahalanobisDetector(good []*smart.Profile, quantile float64, seed int64) (*MahalanobisDetector, error) {
	if len(good) == 0 {
		return nil, fmt.Errorf("predict: Mahalanobis detector requires good profiles")
	}
	if quantile <= 0 || quantile >= 1 {
		return nil, fmt.Errorf("predict: quantile %v outside (0, 1)", quantile)
	}
	attrs := thresholdDefaultAttrs()
	rng := rand.New(rand.NewSource(seed))
	const refN = 4000
	ref := make([][]float64, 0, refN)
	for i := 0; i < refN; i++ {
		p := good[rng.Intn(len(good))]
		r := p.Records[rng.Intn(p.Len())]
		ref = append(ref, r.Values.Select(attrs))
	}
	metric, err := distance.NewMahalanobis(ref)
	if err != nil {
		return nil, err
	}
	center := make([]float64, len(attrs))
	for _, v := range ref {
		for i, x := range v {
			center[i] += x
		}
	}
	for i := range center {
		center[i] /= float64(len(ref))
	}
	dists := make([]float64, len(ref))
	for i, v := range ref {
		dists[i] = metric.Distance(v, center)
	}
	return &MahalanobisDetector{
		metric:    metric,
		center:    center,
		threshold: stats.Quantile(dists, quantile),
		window:    24,
		attrs:     attrs,
	}, nil
}

// Flag implements Detector: the alarm fires when the median recent
// distance exceeds the calibrated threshold (median over the window
// suppresses single-sample noise).
func (d *MahalanobisDetector) Flag(p *smart.Profile) bool {
	tail := p.Tail(d.window)
	dists := make([]float64, len(tail))
	for i, r := range tail {
		dists[i] = d.metric.Distance(r.Values.Select(d.attrs), d.center)
	}
	return stats.Median(dists) > d.threshold
}

// Name implements Detector.
func (d *MahalanobisDetector) Name() string { return "mahalanobis" }
