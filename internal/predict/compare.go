package predict

import (
	"fmt"
	"math/rand"

	"disksig/internal/regression"
	"disksig/internal/smart"
	"disksig/internal/tree"
)

// MethodResult is one row of the prediction-method comparison (the
// paper's future-work item "test more prediction methods").
type MethodResult struct {
	Method    string
	RMSE      float64
	ErrorRate float64
}

// buildSamples assembles the mixed failed/good degradation dataset and
// the 70/30 split exactly as TrainDegradation does.
func buildSamples(failed []*smart.Profile, goodPool []smart.Values, cfg DegradationConfig) (trainX [][]float64, trainY []float64, testX [][]float64, testY []float64, err error) {
	if len(failed) == 0 {
		return nil, nil, nil, nil, fmt.Errorf("predict: no failed profiles")
	}
	if len(goodPool) == 0 {
		return nil, nil, nil, nil, fmt.Errorf("predict: empty good-record pool")
	}
	if cfg.WindowD <= 0 {
		return nil, nil, nil, nil, fmt.Errorf("predict: WindowD must be positive, got %v", cfg.WindowD)
	}
	var xs [][]float64
	var ys []float64
	for _, p := range failed {
		n := p.Len()
		for i, r := range p.Records {
			t := float64(n - 1 - i)
			target := cfg.Form.Eval(t, cfg.WindowD)
			if t > cfg.WindowD {
				target = 0
			}
			xs = append(xs, r.Values.Slice())
			ys = append(ys, target)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	goodN := cfg.GoodFactor * len(xs)
	for i := 0; i < goodN; i++ {
		v := goodPool[rng.Intn(len(goodPool))]
		xs = append(xs, v.Slice())
		ys = append(ys, 1)
	}
	perm := rng.Perm(len(xs))
	split := int(cfg.TrainFrac * float64(len(xs)))
	if split < 1 || split >= len(xs) {
		return nil, nil, nil, nil, fmt.Errorf("predict: degenerate split %d of %d", split, len(xs))
	}
	for i, pi := range perm {
		if i < split {
			trainX = append(trainX, xs[pi])
			trainY = append(trainY, ys[pi])
		} else {
			testX = append(testX, xs[pi])
			testY = append(testY, ys[pi])
		}
	}
	return trainX, trainY, testX, testY, nil
}

// CompareMethods trains a regression tree, a random forest, and a ridge
// linear model on the same degradation dataset and reports each method's
// test RMSE and error rate.
func CompareMethods(failed []*smart.Profile, goodPool []smart.Values, cfg DegradationConfig) ([]MethodResult, error) {
	cfg = cfg.withDefaults()
	trainX, trainY, testX, testY, err := buildSamples(failed, goodPool, cfg)
	if err != nil {
		return nil, err
	}
	evaluate := func(pred []float64) (float64, float64) {
		rmse := regression.RMSE(pred, testY)
		return rmse, rmse / 2
	}
	var out []MethodResult

	tr, err := tree.Train(trainX, trainY, cfg.Tree)
	if err != nil {
		return nil, fmt.Errorf("predict: training tree: %w", err)
	}
	rmse, er := evaluate(tr.PredictAll(testX))
	out = append(out, MethodResult{Method: "regression tree", RMSE: rmse, ErrorRate: er})

	forest, err := tree.TrainForest(trainX, trainY, tree.ForestConfig{
		Trees:          20,
		Tree:           cfg.Tree,
		SampleFraction: 0.5,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("predict: training forest: %w", err)
	}
	rmse, er = evaluate(forest.PredictAll(testX))
	out = append(out, MethodResult{Method: "random forest", RMSE: rmse, ErrorRate: er})

	lin, err := TrainLinear(trainX, trainY, 1e-4)
	if err != nil {
		return nil, fmt.Errorf("predict: training linear model: %w", err)
	}
	rmse, er = evaluate(lin.PredictAll(testX))
	out = append(out, MethodResult{Method: "linear (ridge OLS)", RMSE: rmse, ErrorRate: er})

	return out, nil
}
