package predict

import (
	"math"
	"math/rand"
	"testing"

	"disksig/internal/regression"
	"disksig/internal/smart"
)

func TestTrainLinearExact(t *testing.T) {
	// y = 2 + 3a - b sampled exactly.
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x = append(x, []float64{a, b})
		y = append(y, 2+3*a-b)
	}
	m, err := TrainLinear(x, y, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i, w := range want {
		if math.Abs(m.Coeffs[i]-w) > 1e-4 {
			t.Errorf("coeff %d = %v, want %v", i, m.Coeffs[i], w)
		}
	}
	pred := m.PredictAll(x)
	for i := range pred {
		if math.Abs(pred[i]-y[i]) > 1e-3 {
			t.Fatalf("prediction %d off: %v vs %v", i, pred[i], y[i])
		}
	}
}

func TestTrainLinearCollinear(t *testing.T) {
	// Second feature is an exact linear transform of the first (like RSC
	// vs R-RSC); the ridge must keep the system solvable.
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		v := float64(i)
		x = append(x, []float64{v, 2 * v})
		y = append(y, v)
	}
	m, err := TrainLinear(x, y, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Predict([]float64{10, 20})-10) > 0.5 {
		t.Errorf("collinear prediction = %v, want ~10", m.Predict([]float64{10, 20}))
	}
}

func TestTrainLinearErrors(t *testing.T) {
	if _, err := TrainLinear(nil, nil, 0); err == nil {
		t.Error("expected error for empty data")
	}
	if _, err := TrainLinear([][]float64{{1}}, []float64{1, 2}, 0); err == nil {
		t.Error("expected error for mismatch")
	}
	if _, err := TrainLinear([][]float64{{1}, {1, 2}}, []float64{1, 2}, 0); err == nil {
		t.Error("expected error for ragged rows")
	}
}

func TestLinearPredictPanics(t *testing.T) {
	m := &LinearModel{Coeffs: []float64{0, 1}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Predict([]float64{1, 2})
}

func TestCompareMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var failedP []*smart.Profile
	for i := 0; i < 15; i++ {
		failedP = append(failedP, degradedProfile(i, 120, 12, rng))
	}
	pool := goodValues(4000, rng)
	results, err := CompareMethods(failedP, pool, DegradationConfig{
		Form:    regression.FormQuadratic,
		WindowD: 12,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("methods = %d", len(results))
	}
	names := map[string]bool{}
	for _, r := range results {
		names[r.Method] = true
		if r.RMSE <= 0 || r.RMSE > 1 {
			t.Errorf("%s RMSE = %v", r.Method, r.RMSE)
		}
		if math.Abs(r.ErrorRate-r.RMSE/2) > 1e-12 {
			t.Errorf("%s error rate inconsistent", r.Method)
		}
	}
	if !names["regression tree"] || !names["random forest"] || !names["linear (ridge OLS)"] {
		t.Errorf("methods = %v", names)
	}
	// Tree-based methods should beat the linear floor on this nonlinear
	// target.
	var treeR, linR float64
	for _, r := range results {
		switch r.Method {
		case "regression tree":
			treeR = r.RMSE
		case "linear (ridge OLS)":
			linR = r.RMSE
		}
	}
	if !(treeR < linR) {
		t.Errorf("tree RMSE %v should beat linear %v", treeR, linR)
	}
}

func TestCompareMethodsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := goodValues(10, rng)
	if _, err := CompareMethods(nil, pool, DegradationConfig{Form: regression.FormLinear, WindowD: 10}); err == nil {
		t.Error("expected error for no profiles")
	}
}
